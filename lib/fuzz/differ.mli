(** The cross-product differential oracle for one generated program.

    One case fans out into ~53 simulations of the {e same} Liquid binary
    — pure scalar (the reference), fixed-width, VLA and RVV accelerators
    at widths 2/4/8/16, each with the block engine and trace-superblock
    tier on and off, all three oracle-translation flavours, and a
    handful of seeded translation-path faults — plus the inline-loop
    baseline binary. Every accelerated run must reproduce the reference's
    architectural state: all of data memory byte-for-byte and every
    register outside the image's dead-scratch mask
    ({!Liquid_faults.Oracle.mask_of_image}). *)

open Liquid_scalarize

type kind =
  | K_regs  (** live registers diverged, memory matched *)
  | K_mem  (** data memory diverged, live registers matched *)
  | K_both  (** both diverged *)
  | K_crash of string  (** the run died with a diagnostic or exception *)

type divergence = { d_label : string; d_kind : kind }
(** One failing cell of the matrix; [d_label] names the variant, engine
    flags and any injected fault. *)

type outcome = {
  o_runs : int;  (** simulations executed for this case *)
  o_installs : int;  (** regions that completed translation, summed *)
  o_aborts : (string * int) list;
      (** translation-abort class histogram ({!Liquid_translate.Abort.class_name}) *)
  o_divergences : divergence list;  (** empty = the case is clean *)
}

val widths : int list
(** The accelerator widths the matrix covers, [\[2; 4; 8; 16\]]. *)

val run_case : ?fault_seed:int -> Vloop.program -> outcome
(** Run the whole matrix on one program. [fault_seed] additionally runs
    three seeded translation-path faults (forced abort, corrupted feed,
    microcode eviction) on randomly drawn variants; omit it for a
    fault-free matrix (the shrinker does, unless reproducing a
    fault-dependent bug). Never raises: generation-to-run failures
    surface as [K_crash] divergences. *)

val diverging : ?fault_seed:int -> Vloop.program -> bool
(** [run_case] compressed to the shrinker's predicate: does any cell of
    the matrix diverge? *)

val kind_to_string : kind -> string
(** ["regs"], ["mem"], ["both"] or ["crash:<diag>"]. *)

val signature : outcome -> (string * string) list
(** The divergence signature of a failing outcome: the (label, kind
    constructor) pairs, deduplicated — [K_crash] details dropped so a
    shrunk crash with a different pc still counts as the same bug. *)

val fails_like : ?fault_seed:int -> (string * string) list -> Vloop.program -> bool
(** [fails_like sig_ p]: does [p] still exhibit at least one divergence
    with a (label, kind) in [sig_]? This is the shrinker predicate —
    unlike {!diverging} it refuses candidates whose only failures are
    {e new} bug classes (e.g. a mutilated program crashing in
    generation), so minimization cannot wander off the original bug. *)

val pp_outcome : Format.formatter -> outcome -> unit
(** One line per divergence plus the abort histogram. *)
