open Liquid_scalarize
open Liquid_harness
module Hist = Liquid_obs.Hist
module Json = Liquid_obs.Json
module Schema = Liquid_obs.Schema

type report = {
  r_seed : int;
  r_cases : int;
  r_faults : bool;
  r_runs : int;
  r_installs : int;
  r_clean : int;
  r_divergent : (int * Differ.divergence list) list;
  r_aborts : (string * int) list;
  r_div_hist : (string * int) list;
  r_trip_hist : Hist.t;
}

(* Distinct per-case fault stream, decorrelated from the generator's
   own stream (which mixes the index differently). *)
let fault_seed_of ~seed ~index = seed lxor ((index * 0x9E3779B9) + 0x61C88647)

let trip_counts (p : Vloop.program) =
  List.filter_map
    (function Vloop.Loop l -> Some l.Vloop.count | Vloop.Code _ -> None)
    p.Vloop.sections

let bump tbl key n =
  Hashtbl.replace tbl key (n + Option.value ~default:0 (Hashtbl.find_opt tbl key))

let sorted_bindings tbl =
  List.sort compare (Hashtbl.fold (fun k v l -> (k, v) :: l) tbl [])

let run ?domains ?(faults = true) ~seed ~cases () =
  let one index =
    let p = Gen.generate ~seed ~index in
    let fault_seed = if faults then Some (fault_seed_of ~seed ~index) else None in
    (trip_counts p, Differ.run_case ?fault_seed p)
  in
  let results = Runner.run_many_result ?domains one (List.init cases Fun.id) in
  let aborts = Hashtbl.create 16 in
  let div_hist = Hashtbl.create 16 in
  let trip_hist = Hist.create () in
  let runs = ref 0 and installs = ref 0 and clean = ref 0 in
  let divergent = ref [] in
  List.iteri
    (fun index result ->
      match result with
      | Error (f : int Runner.failure) ->
          (* a case that crashed the worker is itself a divergence *)
          let d =
            {
              Differ.d_label = "worker";
              d_kind = Differ.K_crash (Printexc.to_string f.Runner.f_exn);
            }
          in
          bump div_hist "worker crash" 1;
          divergent := (index, [ d ]) :: !divergent
      | Ok (trips, (o : Differ.outcome)) ->
          List.iter (Hist.add trip_hist) trips;
          runs := !runs + o.Differ.o_runs;
          installs := !installs + o.Differ.o_installs;
          List.iter (fun (cls, n) -> bump aborts cls n) o.Differ.o_aborts;
          if o.Differ.o_divergences = [] then incr clean
          else begin
            List.iter
              (fun (d : Differ.divergence) ->
                bump div_hist
                  (d.Differ.d_label ^ " "
                  ^ Differ.kind_to_string
                      (match d.Differ.d_kind with
                      | Differ.K_crash _ -> Differ.K_crash ""
                      | k -> k))
                  1)
              o.Differ.o_divergences;
            divergent := (index, o.Differ.o_divergences) :: !divergent
          end)
    results;
  {
    r_seed = seed;
    r_cases = cases;
    r_faults = faults;
    r_runs = !runs;
    r_installs = !installs;
    r_clean = !clean;
    r_divergent = List.rev !divergent;
    r_aborts = sorted_bindings aborts;
    r_div_hist = sorted_bindings div_hist;
    r_trip_hist = trip_hist;
  }

let shrunk_repro ?(faults = true) ~seed ~index () =
  let p = Gen.generate ~seed ~index in
  let fault_seed = if faults then Some (fault_seed_of ~seed ~index) else None in
  let o = Differ.run_case ?fault_seed p in
  match o.Differ.o_divergences with
  | [] -> None
  | _ ->
      let sig_ = Differ.signature o in
      Some (Shrink.minimize ~failing:(Differ.fails_like ?fault_seed sig_) p)

let to_json r =
  let counts kvs = Json.Obj (List.map (fun (k, n) -> (k, Json.Int n)) kvs) in
  let doc =
    Json.Obj
      [
        ("schema", Json.Str "liquid-fuzz-report/1");
        ("seed", Json.Int r.r_seed);
        ("cases", Json.Int r.r_cases);
        ("faults", Json.Bool r.r_faults);
        ("runs", Json.Int r.r_runs);
        ("installs", Json.Int r.r_installs);
        ("clean_cases", Json.Int r.r_clean);
        ("divergent_cases", Json.Int (List.length r.r_divergent));
        ("abort_classes", counts r.r_aborts);
        ("divergences", counts r.r_div_hist);
        ("trip_counts", Hist.to_json r.r_trip_hist);
        ( "divergent",
          Json.List
            (List.map
               (fun (index, divs) ->
                 Json.Obj
                   [
                     ("case", Json.Int index);
                     ( "failures",
                       Json.List
                         (List.map
                            (fun (d : Differ.divergence) ->
                              Json.Obj
                                [
                                  ("label", Json.Str d.Differ.d_label);
                                  ( "kind",
                                    Json.Str (Differ.kind_to_string d.Differ.d_kind)
                                  );
                                ])
                            divs) );
                   ])
               r.r_divergent) );
      ]
  in
  (match Schema.fuzz_report doc with
  | [] -> ()
  | errs ->
      invalid_arg
        (Printf.sprintf "Campaign.to_json: invalid document: %s"
           (String.concat "; " errs)));
  doc

let pp ppf r =
  Format.fprintf ppf
    "@[<v>fuzz campaign seed %d: %d cases (%s), %d runs, %d installs@ \
     clean %d, divergent %d@ "
    r.r_seed r.r_cases
    (if r.r_faults then "with faults" else "no faults")
    r.r_runs r.r_installs r.r_clean
    (List.length r.r_divergent);
  if r.r_aborts <> [] then begin
    Format.fprintf ppf "abort classes:@ ";
    List.iter
      (fun (cls, n) -> Format.fprintf ppf "  %-28s %d@ " cls n)
      r.r_aborts
  end;
  Format.fprintf ppf "trip counts: %d loops, min %d, max %d, mean %.1f@ "
    (Hist.count r.r_trip_hist)
    (Hist.min_value r.r_trip_hist)
    (Hist.max_value r.r_trip_hist)
    (Hist.mean r.r_trip_hist);
  if r.r_div_hist <> [] then begin
    Format.fprintf ppf "divergences:@ ";
    List.iter
      (fun (k, n) -> Format.fprintf ppf "  %-36s %d@ " k n)
      r.r_div_hist;
    Format.fprintf ppf "failing cases:@ ";
    List.iter
      (fun (index, divs) ->
        Format.fprintf ppf "  case %d: %s@ " index
          (String.concat ", "
             (List.map
                (fun (d : Differ.divergence) ->
                  d.Differ.d_label ^ " " ^ Differ.kind_to_string d.Differ.d_kind)
                divs)))
      r.r_divergent
  end;
  Format.fprintf ppf "@]"
