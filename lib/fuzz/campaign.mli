(** The seeded differential fuzzing campaign over the {!Gen} stream.

    [run ~seed ~cases] fans case indices across the {!Liquid_harness}
    domain pool, pushes every generated program through the {!Differ}
    matrix, and folds the results into one report: clean/divergent
    counts, the translation-abort class histogram, a per-(variant, kind)
    divergence histogram, and a power-of-two trip-count histogram — all
    emitted as a schema-validated {!Liquid_obs.Json} document
    (["liquid-fuzz-report/1"], {!Liquid_obs.Schema.fuzz_report}). *)

open Liquid_scalarize

type report = {
  r_seed : int;
  r_cases : int;
  r_faults : bool;  (** seeded fault runs were included in the matrix *)
  r_runs : int;  (** simulations executed, all cases summed *)
  r_installs : int;  (** regions that completed translation, summed *)
  r_clean : int;  (** cases with an empty divergence list *)
  r_divergent : (int * Differ.divergence list) list;
      (** failing cases by index, in index order *)
  r_aborts : (string * int) list;  (** abort-class histogram, summed *)
  r_div_hist : (string * int) list;
      (** divergences bucketed by ["label kind"] *)
  r_trip_hist : Liquid_obs.Hist.t;  (** trip counts of generated loops *)
}

val fault_seed_of : seed:int -> index:int -> int
(** The per-case fault seed the campaign derives — exposed so a repro
    of case [index] can replay the exact same fault draws. *)

val run : ?domains:int -> ?faults:bool -> seed:int -> cases:int -> unit -> report
(** Run the campaign. [faults] (default [true]) adds the three seeded
    translation-path fault runs to every case's matrix. *)

val shrunk_repro : ?faults:bool -> seed:int -> index:int -> unit -> Vloop.program option
(** Regenerate case [index], and if it diverges, shrink it with
    {!Shrink.minimize} under the case's own divergence signature
    ({!Differ.fails_like}); [None] if the case is clean. *)

val to_json : report -> Liquid_obs.Json.t
(** The validated campaign document; raises [Invalid_argument] if the
    emitted document fails its own schema (a bug). *)

val pp : Format.formatter -> report -> unit
(** Human summary: totals, both histograms, and the failing case
    indices with their divergence labels. *)
