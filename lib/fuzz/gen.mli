(** Seeded random generation of {!Liquid_scalarize.Vloop} programs.

    Each generated program is a valid IR program (it passes
    {!Liquid_scalarize.Vloop.validate_program} and the cross-iteration
    aliasing rules by construction) exercising the translator's whole
    input grammar: arbitrary data-processing mixes over every element
    size and signedness, saturating idioms, reductions, strided and
    gathered memory, load-fused / store-fused / fission-inducing
    mid-loop permutations, constant-vector and immediate operands,
    in-place array updates, loops chained through shared arrays, and
    repeated region calls through a scalar frame loop.

    Trip counts are adversarial on purpose: 1, W-1, W, W+1 for every
    hardware width W in 2/4/8/16, plus counts no fixed width divides
    (so the fixed-width backend must abort to scalar while the VLA
    backend predicates the final iteration).

    Generation is deterministic: the same (seed, index) pair always
    produces the same program, which is how the campaign driver, the
    shrinker and the pinned regression corpus all name a case. *)

open Liquid_scalarize

val generate : seed:int -> index:int -> Vloop.program
(** The [index]-th program of campaign [seed]. Every reduction
    accumulator is stored to a result array by glue code after its
    loop, so reduction outputs are observable through the memory
    fingerprint (region-scratch registers are masked by the oracle). *)

val case_name : seed:int -> index:int -> string
(** The program name {!generate} assigns, ["fuzz-<seed>-<index>"]. *)

val pp_program : Format.formatter -> Vloop.program -> unit
(** Print a generated (or shrunk) program: every section — glue item
    counts and full loop bodies — plus every data array with its
    element size, signedness and values. The printout is the human
    half of a repro; the (seed, index) pair is the machine half. *)
