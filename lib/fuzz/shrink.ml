open Liquid_isa
open Liquid_visa
open Liquid_scalarize
module P = Liquid_prog.Program

let size (p : Vloop.program) =
  List.fold_left
    (fun n -> function
      | Vloop.Code items -> n + List.length items
      | Vloop.Loop l ->
          n + List.length l.Vloop.body
          + List.length l.Vloop.reductions
          + (l.Vloop.count / 8))
    (List.fold_left
       (fun n (d : Liquid_prog.Data.t) -> n + (Array.length d.Liquid_prog.Data.values / 16))
       0 p.Vloop.data)
    p.Vloop.sections

(* --- structural helpers --- *)

let rec gcd a b = if b = 0 then a else gcd b (a mod b)
let lcm a b = a * b / gcd a b

let loop_period (l : Vloop.t) =
  List.fold_left
    (fun acc -> function
      | Vinsn.Vperm { pattern; _ } -> lcm acc (Perm.period pattern)
      | _ -> acc)
    1 l.Vloop.body

(* Every vector-register use must be preceded by a def: dropping an
   instruction must never create a read of uninitialized lanes, whose
   junk could differ between the scalar and translated forms and fake a
   divergence. *)
let def_before_use body =
  let defined = Hashtbl.create 8 in
  List.for_all
    (fun insn ->
      let ok =
        List.for_all
          (fun vr -> Hashtbl.mem defined (Vreg.index vr))
          (Vinsn.uses_vector insn)
      in
      List.iter
        (fun vr -> Hashtbl.replace defined (Vreg.index vr) ())
        (Vinsn.defs_vector insn);
      ok)
    body

(* After a region executes, the scalar aliases of its body vector defs
   hold junk (they differ between scalar and SIMD execution and are
   masked out of the register comparison) — but a glue read of one
   leaks the junk into memory, faking a divergence. Accept only
   candidates whose glue never reads a junk alias: a section drop that
   separates a loop from another loop's accumulator store would
   otherwise shrink toward a contract-violating program. *)
let scalar_sound (p : Vloop.program) =
  let junk = Hashtbl.create 8 in
  List.for_all
    (function
      | Vloop.Loop l ->
          List.iter
            (fun insn ->
              List.iter
                (fun vr -> Hashtbl.replace junk (Vreg.index vr) ())
                (Vinsn.defs_vector insn))
            l.Vloop.body;
          (* accumulators and the induction register are committed *)
          List.iter
            (fun (acc, _) -> Hashtbl.remove junk (Reg.index acc))
            l.Vloop.reductions;
          Hashtbl.remove junk 0;
          true
      | Vloop.Code items ->
          List.for_all
            (function
              | P.Label _ | P.I (Minsn.V _) -> true
              | P.I (Minsn.S insn) ->
                  let ok =
                    Hashtbl.fold
                      (fun idx () ok ->
                        ok && not (Insn.uses_reg insn (Reg.make idx)))
                      junk true
                  in
                  List.iter
                    (fun r -> Hashtbl.remove junk (Reg.index r))
                    (Insn.defs insn);
                  ok)
            items)
    p.Vloop.sections

let with_section p i s =
  { p with Vloop.sections = List.mapi (fun j s0 -> if i = j then s else s0) p.Vloop.sections }

let drop_section p i =
  { p with Vloop.sections = List.filteri (fun j _ -> i <> j) p.Vloop.sections }

(* --- candidates, in decreasing order of payoff --- *)

let loop_candidates p i (l : Vloop.t) =
  let period = loop_period l in
  let counts =
    List.sort_uniq compare
      (List.filter
         (fun c -> c > 0 && c < l.Vloop.count && c mod period = 0)
         [ period; 2 * period; l.Vloop.count / 2 / period * period; 1; 2; 4; 8; 16 ])
  in
  let count_shrinks =
    List.map (fun c -> with_section p i (Vloop.Loop { l with Vloop.count = c })) counts
  in
  let body_drops =
    List.filter_map Fun.id
      (List.mapi
         (fun j _ ->
           let body = List.filteri (fun k _ -> k <> j) l.Vloop.body in
           if def_before_use body then
             Some (with_section p i (Vloop.Loop { l with Vloop.body = body }))
           else None)
         l.Vloop.body)
  in
  let red_drops =
    List.mapi
      (fun j (acc, _) ->
        let reductions = List.filteri (fun k _ -> k <> j) l.Vloop.reductions in
        let body =
          List.filter
            (function Vinsn.Vred { acc = a; _ } -> a <> acc | _ -> true)
            l.Vloop.body
        in
        (* also drop the glue items reading the accumulator (the result
           store after the loop), anywhere in the program *)
        let p' = with_section p i (Vloop.Loop { l with Vloop.body; reductions }) in
        {
          p' with
          Vloop.sections =
            List.map
              (function
                | Vloop.Code items ->
                    Vloop.Code
                      (List.filter
                         (function
                           | P.Label _ -> true
                           | P.I (Minsn.V _) -> true
                           | P.I (Minsn.S insn) ->
                               (not (Insn.uses_reg insn acc))
                               && not (List.mem acc (Insn.defs insn)))
                         items)
                | s -> s)
              p'.Vloop.sections;
        })
      l.Vloop.reductions
  in
  let operand_simpl =
    List.concat
      (List.mapi
         (fun j insn ->
           let replacements =
             match insn with
             | Vinsn.Vdp ({ src2 = Vinsn.VConst a; _ } as d) when Array.length a > 0
               ->
                 [ Vinsn.Vdp { d with src2 = Vinsn.VImm a.(0) } ]
             | Vinsn.Vdp ({ src2 = Vinsn.VImm v; _ } as d) when abs v > 8 ->
                 [ Vinsn.Vdp { d with src2 = Vinsn.VImm 1 } ]
             | _ -> []
           in
           List.map
             (fun insn' ->
               let body =
                 List.mapi (fun k i0 -> if k = j then insn' else i0) l.Vloop.body
               in
               with_section p i (Vloop.Loop { l with Vloop.body }))
             replacements)
         l.Vloop.body)
  in
  body_drops @ count_shrinks @ red_drops @ operand_simpl

let zero_data p =
  List.concat
    (List.mapi
       (fun i (d : Liquid_prog.Data.t) ->
         if Array.for_all (fun v -> v = 0) d.Liquid_prog.Data.values then []
         else
           [
             {
               p with
               Vloop.data =
                 List.mapi
                   (fun j d0 ->
                     if i = j then
                       Liquid_prog.Data.make ~name:d.Liquid_prog.Data.name
                         ~esize:d.Liquid_prog.Data.esize
                         (Array.make (Array.length d.Liquid_prog.Data.values) 0)
                     else d0)
                   p.Vloop.data;
             };
           ])
       p.Vloop.data)

let candidates (p : Vloop.program) =
  let n = List.length p.Vloop.sections in
  let section_drops = List.init n (fun i -> drop_section p (n - 1 - i)) in
  let per_loop =
    List.concat
      (List.mapi
         (fun i -> function
           | Vloop.Loop l -> loop_candidates p i l
           | Vloop.Code _ -> [])
         p.Vloop.sections)
  in
  section_drops @ per_loop @ zero_data p

let minimize ?(max_evals = 600) ~failing p =
  let evals = ref 0 in
  let ok c =
    if !evals >= max_evals then false
    else begin
      incr evals;
      match Vloop.validate_program c with
      | Error _ -> false
      | Ok () when not (scalar_sound c) -> false
      | Ok () -> ( try failing c with _ -> false)
    end
  in
  let rec go p =
    match List.find_opt ok (candidates p) with
    | Some c -> go c
    | None -> p
  in
  go p
