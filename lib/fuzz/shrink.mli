(** Deterministic greedy shrinking of a failing {!Liquid_scalarize.Vloop}
    program.

    Candidates — dropping whole loops and glue sections, dropping body
    instructions and reductions, halving trip counts toward the
    permutation period, simplifying constant-vector and large immediate
    operands, trimming and zeroing data arrays — are tried in a fixed
    order and accepted whenever the program still validates and still
    fails, until a full pass accepts nothing. The result is the minimal
    repro that lands in the pinned corpus. *)

open Liquid_scalarize

val minimize :
  ?max_evals:int ->
  failing:(Vloop.program -> bool) ->
  Vloop.program ->
  Vloop.program
(** [minimize ~failing p] requires [failing p = true] and returns a
    (weakly) smaller program that still fails. [failing] is typically
    {!Differ.diverging} with the seed that exposed the bug; candidates
    for which it raises count as not failing. At most [max_evals]
    (default 600) predicate evaluations are spent. *)

val size : Vloop.program -> int
(** The measure shrinking decreases: total body instructions + glue
    items + reductions + trip counts / 8 + data elements / 16. *)
