open Liquid_isa
open Liquid_visa
open Liquid_scalarize
module Rng = Liquid_faults.Fault.Rng

let case_name ~seed ~index = Printf.sprintf "fuzz-%d-%d" seed index

(* --- the array registry ---

   Arrays are shared across loops on purpose: a later loop reading what
   an earlier loop wrote (or the same loop updating an array in place)
   is exactly the data flow that stresses the translator's observed
   value streams. Lengths are grown as uses accumulate and the values
   are drawn once at the end. *)

type arr = {
  a_name : string;
  a_esize : Esize.t;
  a_signed : bool;
  mutable a_len : int;  (* elements the program may touch *)
  a_frozen : bool;  (* gather-index arrays: never a store target *)
  a_bound : int option;  (* value range restriction (gather indices) *)
}

type g = {
  rng : Rng.t;
  mutable arrays : arr list;
  mutable next_arr : int;
}

let new_array ?bound g ~esize ~signed ~len ~frozen =
  let a =
    {
      a_name = Printf.sprintf "a%d" g.next_arr;
      a_esize = esize;
      a_signed = signed;
      a_len = len;
      a_frozen = frozen;
      a_bound = bound;
    }
  in
  g.next_arr <- g.next_arr + 1;
  g.arrays <- a :: g.arrays;
  a

let need a len = if len > a.a_len then a.a_len <- len

(* --- draws --- *)

let esize_pool = [ Esize.Word; Esize.Word; Esize.Word; Esize.Half; Esize.Byte ]

let imm g =
  if Rng.int g.rng 4 = 0 then
    Rng.pick g.rng
      [ 255; -1; -8; 1024; 32767; 32768; 65536; -32768; 0x55AA; 1 lsl 20 ]
  else Rng.int g.rng 32

let weird_value rng esize signed =
  Rng.pick rng
    [
      0;
      1;
      -1;
      2;
      Esize.max_signed esize;
      Esize.min_signed esize;
      Esize.max_signed esize - 1;
      (if signed then Esize.min_signed esize + 1 else Esize.max_unsigned esize);
      0x55;
      1 lsl 16;
    ]

let plain_value rng signed =
  if signed then Rng.int rng 201 - 100 else Rng.int rng 200

(* Mostly-arithmetic opcode mix; shifts get immediate shift amounts so
   lane values stay in a meaningful range. *)
let op_pool =
  Opcode.
    [
      Add; Add; Add; Sub; Sub; Mul; Mul; And; Orr; Eor; Smin; Smax; Bic; Rsb;
      Lsl; Lsr; Asr;
    ]

let is_shift = function Opcode.Lsl | Opcode.Lsr | Opcode.Asr -> true | _ -> false

(* Reduction ops are restricted to what the translator can legally fold
   across lanes (associative + commutative start value handling). *)
let red_pool = Opcode.[ Add; Add; Add; Mul; And; Orr; Eor; Smin; Smax ]

(* Adversarial trip-count nucleus: 0/1/W-1/W/W+1 neighbourhoods for
   every hardware width plus counts no fixed width divides. (0 itself is
   rejected by Vloop.validate — the IR's contract — so 1 is the floor.) *)
let count_pool =
  [ 1; 2; 3; 4; 5; 7; 8; 9; 12; 15; 16; 17; 24; 31; 32; 33; 48; 63; 64; 65 ]

(* --- one loop --- *)

type loop_ctx = {
  mutable defined : int list;  (* vreg indices with a def so far *)
  mutable plain_loaded : arr list;
  mutable strided_here : arr list;
  mutable gathered_here : arr list;
}

let fresh_vreg g lc =
  let free =
    List.filter
      (fun i -> not (List.mem i lc.defined))
      [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11 ]
  in
  match free with
  | [] -> Rng.pick g.rng lc.defined
  | _ when lc.defined <> [] && Rng.int g.rng 4 = 0 -> Rng.pick g.rng lc.defined
  | _ ->
      let i = Rng.pick g.rng free in
      lc.defined <- i :: lc.defined;
      i

let pick_defined g lc = Rng.pick g.rng lc.defined

let maybe g p = Rng.int g.rng 100 < p

let pick_perm g = Rng.pick g.rng Perm.catalog

(* An array a plain load may target: anything not strided in this loop
   (per-loop mixing rule). *)
let plain_load_candidates g lc =
  List.filter (fun a -> not (List.memq a lc.strided_here)) g.arrays

let gen_loop g ~name =
  let open Build in
  let lc =
    { defined = []; plain_loaded = []; strided_here = []; gathered_here = [] }
  in
  (* 1. the permutation plan decides the legal trip counts. Weighted
     high on purpose: fixed-geometry permutes exercise both lowerings —
     native register permutes on the fixed backend and the table-lookup
     recovery path on VLA — so most generated loops should carry one. *)
  let load_perm = if maybe g 40 then Some (pick_perm g) else None in
  let mid_perm = if maybe g 35 then Some (pick_perm g) else None in
  let store_perm = if maybe g 28 then Some (pick_perm g) else None in
  let period =
    List.fold_left
      (fun acc p -> match p with None -> acc | Some p -> max acc (Perm.period p))
      1
      [ load_perm; mid_perm; store_perm ]
  in
  let base_count =
    if maybe g 75 then Rng.pick g.rng count_pool else 1 + Rng.int g.rng 96
  in
  let count = (base_count + period - 1) / period * period in
  let count = if count > 128 then 128 / period * period else count in
  let count = max period count in
  (* 2. loads *)
  let n_loads = 1 + Rng.int g.rng 2 in
  let loads = ref [] in
  let emit l = loads := l :: !loads in
  for _ = 1 to n_loads do
    match Rng.int g.rng 10 with
    | 0 | 1 ->
        (* strided de-interleave, possibly both phases *)
        let stride = Rng.pick g.rng [ 2; 2; 4 ] in
        let a =
          new_array g
            ~esize:(Rng.pick g.rng esize_pool)
            ~signed:(maybe g 70) ~len:(stride * count) ~frozen:false
        in
        lc.strided_here <- a :: lc.strided_here;
        let phase = Rng.int g.rng stride in
        let d = fresh_vreg g lc in
        emit
          (vlds ~esize:a.a_esize ~signed:a.a_signed ~stride ~phase (v d)
             a.a_name);
        if maybe g 50 then begin
          let phase' = (phase + 1 + Rng.int g.rng (stride - 1)) mod stride in
          let d' = fresh_vreg g lc in
          emit
            (vlds ~esize:a.a_esize ~signed:a.a_signed ~stride ~phase:phase'
               (v d') a.a_name)
        end
    | 2 ->
        (* gather: a frozen index array driving a table lookup *)
        let table =
          new_array g
            ~esize:(Rng.pick g.rng esize_pool)
            ~signed:(maybe g 70) ~len:16 ~frozen:false
        in
        let idx =
          new_array g ~esize:Esize.Word ~signed:false ~len:count ~frozen:true
            ~bound:16
        in
        lc.gathered_here <- table :: lc.gathered_here;
        let iv = fresh_vreg g lc in
        let d = fresh_vreg g lc in
        emit (vld ~esize:Esize.Word ~signed:false (v iv) idx.a_name);
        emit (vtbl ~esize:table.a_esize ~signed:table.a_signed (v d) table.a_name (v iv))
    | _ ->
        (* plain contiguous load, often from a shared array *)
        let candidates = plain_load_candidates g lc in
        let a =
          if candidates <> [] && maybe g 45 then Rng.pick g.rng candidates
          else
            new_array g
              ~esize:(Rng.pick g.rng esize_pool)
              ~signed:(maybe g 70) ~len:count ~frozen:false
        in
        need a count;
        lc.plain_loaded <- a :: lc.plain_loaded;
        let d = fresh_vreg g lc in
        emit (vld ~esize:a.a_esize ~signed:a.a_signed (v d) a.a_name)
  done;
  let loads = List.rev !loads in
  (* 3. optionally permute a loaded value right away (fusable position) *)
  let load_perm_items =
    match load_perm with
    | None -> []
    | Some p ->
        let d = pick_defined g lc in
        [ Vinsn.Vperm { pattern = p; dst = v d; src = v d } ]
  in
  (* 4. compute chain, with an optional fission-inducing mid permute *)
  let computes = ref [] in
  let n_computes = 1 + Rng.int g.rng 5 in
  let mid_at = Rng.int g.rng n_computes in
  for k = 0 to n_computes - 1 do
    (if k = mid_at then
       match mid_perm with
       | None -> ()
       | Some p ->
           let s = pick_defined g lc in
           let d = if maybe g 50 then s else fresh_vreg g lc in
           computes := Vinsn.Vperm { pattern = p; dst = v d; src = v s } :: !computes);
    let op = Rng.pick g.rng op_pool in
    let s1 = pick_defined g lc in
    let src2 =
      if is_shift op then vi (Rng.int g.rng 9)
      else
        match Rng.int g.rng 10 with
        | 0 | 1 | 2 -> vi (imm g)
        | 3 | 4 ->
            let p = Rng.pick g.rng [ 1; 2; 4; 8; 16 ] in
            vc
              (Array.init p (fun _ ->
                   if maybe g 20 then weird_value g.rng Esize.Word true
                   else Rng.int g.rng 64))
        | _ -> vr (v (pick_defined g lc))
    in
    let d = fresh_vreg g lc in
    computes := vdp op (v d) (v s1) src2 :: !computes
  done;
  (if maybe g 30 then
     let s1 = pick_defined g lc in
     let s2 = pick_defined g lc in
     let d = fresh_vreg g lc in
     let op = if maybe g 50 then `Add else `Sub in
     computes :=
       Vinsn.Vsat
         {
           op;
           esize = Rng.pick g.rng esize_pool;
           signed = maybe g 60;
           dst = v d;
           src1 = v s1;
           src2 = v s2;
         }
       :: !computes);
  let computes = List.rev !computes in
  (* 5. reductions: accumulator indices must not alias any body vreg
     index, and every body vreg is in [lc.defined] (stores and fused
     permutes below only reuse already-defined vregs) *)
  let reductions = ref [] in
  let red_items = ref [] in
  if maybe g 40 then begin
    let free_accs =
      List.filter
        (fun i -> not (List.mem i lc.defined))
        [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11 ]
    in
    let n_red = min (List.length free_accs) (1 + Rng.int g.rng 2) in
    let accs = ref free_accs in
    for _ = 1 to n_red do
      match !accs with
      | [] -> ()
      | ai :: rest ->
          accs := rest;
          let op = Rng.pick g.rng red_pool in
          let init =
            match op with
            | Opcode.Mul -> 1
            | Opcode.And -> -1
            | _ -> Rng.int g.rng 16
          in
          reductions := (r ai, init) :: !reductions;
          red_items := vred op (r ai) (v (pick_defined g lc)) :: !red_items
    done
  end;
  (* 6. stores (at least one), optionally preceded by a fusable permute *)
  let stores = ref [] in
  let n_stores = 1 + Rng.int g.rng 2 in
  for k = 1 to n_stores do
    let src = pick_defined g lc in
    if k = 1 then
      (match store_perm with
      | None -> ()
      | Some p ->
          stores := Vinsn.Vperm { pattern = p; dst = v src; src = v src } :: !stores);
    match Rng.int g.rng 10 with
    | 0 ->
        (* interleaving strided store into a dedicated array *)
        let stride = Rng.pick g.rng [ 2; 2; 4 ] in
        let a =
          new_array g
            ~esize:(Rng.pick g.rng esize_pool)
            ~signed:(maybe g 70) ~len:(stride * count) ~frozen:false
        in
        lc.strided_here <- a :: lc.strided_here;
        let phase = Rng.int g.rng stride in
        stores := vsts ~esize:a.a_esize ~stride ~phase (v src) a.a_name :: !stores
    | 1 | 2
      when List.exists
             (fun a ->
               (not a.a_frozen)
               && (not (List.memq a lc.gathered_here))
               && not (List.memq a lc.strided_here))
             lc.plain_loaded ->
        (* in-place update of an array this loop also reads *)
        let candidates =
          List.filter
            (fun a ->
              (not a.a_frozen)
              && (not (List.memq a lc.gathered_here))
              && not (List.memq a lc.strided_here))
            lc.plain_loaded
        in
        let a = Rng.pick g.rng candidates in
        stores := vst ~esize:a.a_esize (v src) a.a_name :: !stores
    | _ ->
        let a =
          new_array g
            ~esize:(Rng.pick g.rng esize_pool)
            ~signed:(maybe g 70) ~len:count ~frozen:false
        in
        stores := vst ~esize:a.a_esize (v src) a.a_name :: !stores
  done;
  let stores = List.rev !stores in
  let body = loads @ load_perm_items @ computes @ List.rev !red_items @ stores in
  let loop = { Vloop.name; count; body; reductions = List.rev !reductions } in
  (match Vloop.validate loop with
  | Ok () -> ()
  | Error m -> invalid_arg (Printf.sprintf "Gen: generated invalid loop: %s" m));
  loop

(* --- whole programs --- *)

let gen_values g (a : arr) =
  Array.init a.a_len (fun _ ->
      match a.a_bound with
      | Some b -> Rng.int g.rng b
      | None ->
          if Rng.int g.rng 10 = 0 then weird_value g.rng a.a_esize a.a_signed
          else plain_value g.rng a.a_signed)

let store_acc res_name acc idx = Build.st acc res_name (Build.i idx)

let generate ~seed ~index =
  let open Build in
  let rng = Rng.make ((seed * 1_000_003) + (index * 7919) + 17) in
  let g = { rng; arrays = []; next_arr = 0 } in
  let n_loops = Rng.pick rng [ 1; 1; 1; 2; 2; 3 ] in
  let frames = Rng.pick rng [ 1; 1; 1; 2 ] in
  let loop_sections =
    List.concat
      (List.init n_loops (fun k ->
           let name = Printf.sprintf "fl%d" k in
           let loop = gen_loop g ~name in
           let glue =
             match loop.Vloop.reductions with
             | [] -> []
             | reds ->
                 let res =
                   new_array g ~esize:Esize.Word ~signed:true
                     ~len:(List.length reds) ~frozen:true
                 in
                 [
                   Vloop.Code
                     (List.mapi
                        (fun i (acc, _) -> store_acc res.a_name acc i)
                        reds);
                 ]
           in
           Vloop.Loop loop :: glue))
  in
  let frame_reg = r 15 in
  let pre = Vloop.Code [ mov frame_reg 0; label "frame_top" ] in
  let post =
    Vloop.Code
      [
        addi frame_reg frame_reg 1;
        cmp frame_reg (i frames);
        b ~cond:Cond.Lt "frame_top";
      ]
  in
  let data =
    List.rev_map
      (fun a ->
        Liquid_prog.Data.make ~name:a.a_name ~esize:a.a_esize (gen_values g a))
      g.arrays
  in
  {
    Vloop.name = case_name ~seed ~index;
    sections = (pre :: loop_sections) @ [ post ];
    data;
  }

(* --- printing --- *)

let pp_program ppf (p : Vloop.program) =
  Format.fprintf ppf "@[<v>program %s@ " p.Vloop.name;
  List.iter
    (function
      | Vloop.Code items ->
          Format.fprintf ppf "code:@ ";
          List.iter
            (function
              | Liquid_prog.Program.Label l -> Format.fprintf ppf "  %s:@ " l
              | Liquid_prog.Program.I m ->
                  Format.fprintf ppf "  %a@ " Minsn.pp_asm m)
            items
      | Vloop.Loop l -> Format.fprintf ppf "%a@ " Vloop.pp l)
    p.Vloop.sections;
  List.iter
    (fun (d : Liquid_prog.Data.t) ->
      Format.fprintf ppf "data %s (%a): @[<hov>%a@]@ " d.Liquid_prog.Data.name
        Esize.pp d.Liquid_prog.Data.esize
        (Format.pp_print_list ~pp_sep:Format.pp_print_space Format.pp_print_int)
        (Array.to_list d.Liquid_prog.Data.values))
    p.Vloop.data;
  Format.fprintf ppf "@]"
