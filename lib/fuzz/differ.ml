open Liquid_prog
open Liquid_pipeline
open Liquid_translate
open Liquid_scalarize
open Liquid_harness
module Fault = Liquid_faults.Fault
module Oracle = Liquid_faults.Oracle
module Fingerprint = Liquid_faults.Fingerprint

type kind = K_regs | K_mem | K_both | K_crash of string
type divergence = { d_label : string; d_kind : kind }

type outcome = {
  o_runs : int;
  o_installs : int;
  o_aborts : (string * int) list;
  o_divergences : divergence list;
}

let widths = [ 2; 4; 8; 16 ]

let kind_to_string = function
  | K_regs -> "regs"
  | K_mem -> "mem"
  | K_both -> "both"
  | K_crash d -> "crash:" ^ d

(* accumulator for one case *)
type acc = {
  mutable runs : int;
  mutable installs : int;
  aborts : (string, int) Hashtbl.t;
  mutable divs : divergence list;
}

let bump_abort acc cls =
  Hashtbl.replace acc.aborts cls (1 + Option.value ~default:0 (Hashtbl.find_opt acc.aborts cls))

let record_regions acc (run : Cpu.run) =
  List.iter
    (fun (r : Cpu.region_report) ->
      match r.Cpu.outcome with
      | Cpu.R_untried -> ()
      | Cpu.R_installed _ -> acc.installs <- acc.installs + 1
      | Cpu.R_failed a -> bump_abort acc (Abort.class_name a))
    run.Cpu.regions

type reference = { ref_regs : int; ref_mem : int; mask : bool array }

(* Execute [image] under [config] and compare against the reference
   fingerprint. [regs_checked] is false for the baseline binary, whose
   register file legitimately differs (different code layout). *)
let check acc refc ~label ?(regs_checked = true) image config =
  acc.runs <- acc.runs + 1;
  match Cpu.run_result ~config image with
  | Error diag ->
      acc.divs <- { d_label = label; d_kind = K_crash (Diag.to_string diag) } :: acc.divs
  | Ok run ->
      record_regions acc run;
      let mem_ok = Fingerprint.mem_hash image run.Cpu.memory = refc.ref_mem in
      let regs_ok =
        (not regs_checked)
        || Fingerprint.regs_hash_masked ~mask:refc.mask run.Cpu.regs = refc.ref_regs
      in
      let kind =
        match (regs_ok, mem_ok) with
        | true, true -> None
        | false, true -> Some K_regs
        | true, false -> Some K_mem
        | false, false -> Some K_both
      in
      Option.iter
        (fun k -> acc.divs <- { d_label = label; d_kind = k } :: acc.divs)
        kind

let engine_label blocks superblocks =
  match (blocks, superblocks) with
  | true, true -> ""
  | true, false -> "/nosuper"
  | false, _ -> "/noblocks"

let fault_variants =
  Runner.
    [
      Liquid 2;
      Liquid 4;
      Liquid 8;
      Liquid 16;
      Liquid_vla 2;
      Liquid_vla 4;
      Liquid_vla 8;
      Liquid_vla 16;
      Liquid_rvv 2;
      Liquid_rvv 4;
      Liquid_rvv 8;
      Liquid_rvv 16;
    ]

let draw_fault rng =
  match Fault.Rng.int rng 3 with
  | 0 ->
      Fault.Force_abort
        { site = Fault.Rng.int rng 48; abort = Fault.Rng.pick rng Abort.all }
  | 1 -> Fault.Corrupt_feed { site = Fault.Rng.int rng 48 }
  | _ -> Fault.Evict_ucode { call = Fault.Rng.int rng 6 }

let finish acc =
  {
    o_runs = acc.runs;
    o_installs = acc.installs;
    o_aborts =
      List.sort compare (Hashtbl.fold (fun k v l -> (k, v) :: l) acc.aborts []);
    o_divergences = List.rev acc.divs;
  }

let run_case ?fault_seed (p : Vloop.program) =
  let acc = { runs = 0; installs = 0; aborts = Hashtbl.create 8; divs = [] } in
  (try
     let liquid = Codegen.liquid p in
     let image = Image.of_program liquid in
     let mask = Oracle.mask_of_image image in
     acc.runs <- acc.runs + 1;
     match Cpu.run_result ~config:Cpu.scalar_config image with
     | Error diag ->
         acc.divs <-
           [ { d_label = "scalar-reference"; d_kind = K_crash (Diag.to_string diag) } ]
     | Ok ref_run ->
         let refc =
           {
             ref_regs = Fingerprint.regs_hash_masked ~mask ref_run.Cpu.regs;
             ref_mem = Fingerprint.mem_hash image ref_run.Cpu.memory;
             mask;
           }
         in
         (* the inline-loop baseline binary: same arrays, memory must agree *)
         (try
            let base_image = Image.of_program (Codegen.baseline p) in
            check acc refc ~label:"baseline" ~regs_checked:false base_image
              Cpu.scalar_config
          with e ->
            acc.divs <-
              { d_label = "baseline"; d_kind = K_crash (Printexc.to_string e) }
              :: acc.divs);
         (* fixed, VLA and RVV at every width, engine tiers on/off *)
         List.iter
           (fun w ->
             List.iter
               (fun variant ->
                 let base_label = Runner.variant_to_string variant in
                 List.iter
                   (fun (blocks, superblocks) ->
                     let config =
                       { (Runner.config_of variant) with blocks; superblocks }
                     in
                     check acc refc
                       ~label:(base_label ^ engine_label blocks superblocks)
                       image config)
                   [ (true, true); (true, false); (false, false) ])
               Runner.[ Liquid w; Liquid_vla w; Liquid_rvv w ];
             (* oracle translation (microcode ready at first call) *)
             List.iter
               (fun variant ->
                 check acc refc
                   ~label:(Runner.variant_to_string variant)
                   image (Runner.config_of variant))
               Runner.[ Liquid_oracle w; Liquid_vla_oracle w; Liquid_rvv_oracle w ])
           widths;
         (* seeded translation-path faults *)
         (match fault_seed with
         | None -> ()
         | Some seed ->
             let rng = Fault.Rng.make seed in
             for _ = 1 to 3 do
               let fault = draw_fault rng in
               let variant = Fault.Rng.pick rng fault_variants in
               let armed = Fault.arm fault in
               let config =
                 { (Runner.config_of variant) with faults = armed.Fault.hooks }
               in
               check acc refc
                 ~label:
                   (Printf.sprintf "%s+%s"
                      (Runner.variant_to_string variant)
                      (Fault.to_string fault))
                 image config
             done)
   with e ->
     acc.divs <-
       { d_label = "generate"; d_kind = K_crash (Printexc.to_string e) } :: acc.divs);
  finish acc

let diverging ?fault_seed p = (run_case ?fault_seed p).o_divergences <> []

let kind_tag = function
  | K_regs -> "regs"
  | K_mem -> "mem"
  | K_both -> "both"
  | K_crash _ -> "crash"

let signature o =
  List.sort_uniq compare
    (List.map (fun d -> (d.d_label, kind_tag d.d_kind)) o.o_divergences)

let fails_like ?fault_seed sig_ p =
  List.exists
    (fun d -> List.mem (d.d_label, kind_tag d.d_kind) sig_)
    (run_case ?fault_seed p).o_divergences

let pp_outcome ppf o =
  Format.fprintf ppf "@[<v>runs %d, installs %d@ " o.o_runs o.o_installs;
  List.iter
    (fun (cls, n) -> Format.fprintf ppf "abort %-24s %d@ " cls n)
    o.o_aborts;
  List.iter
    (fun d -> Format.fprintf ppf "DIVERGED %-24s %s@ " d.d_label (kind_to_string d.d_kind))
    o.o_divergences;
  Format.fprintf ppf "@]"
