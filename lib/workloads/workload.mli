(** The benchmark registry: the fifteen programs of the paper's
    evaluation (§5), rebuilt as synthetic workloads in the vector-loop IR.

    The SPEC and MediaBench sources and inputs are proprietary, so each
    program here reproduces the {e structural} properties the paper's
    results depend on — number of hot loops, outlined-function sizes
    (Table 5), call spacing (Table 6), vectorizable fraction, data
    footprint versus the 16 KB caches — rather than the original program
    text. The [paper] field records the published reference numbers the
    harness prints alongside measured values. *)

open Liquid_scalarize

type suite = Specfp | Mediabench | Kernel

type paper_ref = {
  table5_mean : float;  (** mean scalar instructions per outlined loop *)
  table5_max : int;
  table6_lt150 : int;  (** hot loops with first-call gap < 150 cycles *)
  table6_lt300 : int;
  table6_gt300 : int;
  table6_mean : int;  (** mean gap between the first two calls *)
}

type t = {
  name : string;
  suite : suite;
  description : string;
  program : Vloop.program;
  paper : paper_ref;
}

val all : unit -> t list
(** The fifteen benchmarks, in the paper's table order. *)

val find : string -> t option
(** Look a benchmark up by its table name, e.g. ["171.swim"]. *)

val names : unit -> string list
(** The benchmark names, in table order. *)

val suite_name : suite -> string
(** Display name of the suite grouping ("SPECfp", "MediaBench",
    "Kernel"). *)
