(** Reusable building blocks for the benchmark programs: vector-loop
    kernels in the shapes media/scientific hot loops take (multiply-
    accumulate chains, stencils, saturating blends, reductions,
    butterflies), plus scalar glue generators for the non-vectorizable
    portion of each benchmark. *)

open Liquid_isa
open Liquid_prog
open Liquid_scalarize

(** {1 Data helpers} *)

val warray : string -> int -> (int -> int) -> Data.t
(** [warray name n f] — a named array of [n] 32-bit words, entry [i]
    initialized to [f i]. *)

val barray : string -> int -> (int -> int) -> Data.t
(** Byte-element array (pixel data). *)

val harray : string -> int -> (int -> int) -> Data.t
(** Halfword-element array (16-bit samples). *)

val wzeros : string -> int -> Data.t
(** Zero-initialized word array (output buffers). *)

val bzeros : string -> int -> Data.t
(** Zero-initialized byte array. *)

(** {1 Scalar glue} *)

val counted :
  reg:Reg.t -> label:string -> count:int -> Vloop.section list -> Vloop.section list
(** Wrap sections in a scalar counted loop over [reg] (which must be r12
    or r15 — the only registers loop execution preserves). *)

val busy : label:string -> iters:int -> stride:int -> sym:string -> Vloop.section
(** Non-vectorizable scalar work: a pointer-walking accumulation loop
    over [sym], 5 instructions per iteration. Large [stride] x [iters]
    footprints generate the cache misses that bound benchmarks like
    179.art. Uses r1-r3. *)

(** {1 Vector kernels} *)

val saxpy : name:string -> count:int -> a:int -> x:string -> y:string -> out:string -> Vloop.t
(** [out.(i) <- a * x.(i) + y.(i)] *)

val dot : name:string -> count:int -> x:string -> y:string -> acc:Reg.t -> Vloop.t
(** [acc <- acc + sum x.(i) * y.(i)] — a reduction loop. *)

val mac_chain :
  name:string -> count:int -> terms:(string * int) list -> out:string -> Vloop.t
(** [out.(i) <- sum_j c_j * x_j.(i)]: one load-multiply per term. The
    term count directly controls the outlined function's size. *)

val stencil3 :
  name:string ->
  count:int ->
  block:int ->
  src:string ->
  out:string ->
  coeffs:int * int * int ->
  shift:int ->
  Vloop.t
(** Block-local three-point stencil: neighbours come from rotations
    within a [block]-element window, exercising permuted loads. *)

val blend_sat :
  name:string ->
  count:int ->
  esize:Esize.t ->
  signed:bool ->
  a:string ->
  b:string ->
  out:string ->
  Vloop.t
(** Saturating add of two pixel arrays (motion compensation shape). *)

val scale_clip :
  name:string ->
  count:int ->
  src:string ->
  out:string ->
  mul:int ->
  shift:int ->
  lo:int ->
  hi:int ->
  Vloop.t
(** Fixed-point scale then clamp into [lo, hi] (dequantization shape). *)

val masked_merge :
  name:string -> count:int -> block:int -> a:string -> b:string -> out:string -> Vloop.t
(** [out = (a land m) lor (b land (lnot m))] with a block-periodic lane
    mask — Table 1 category 3 constants. *)

val max_energy : name:string -> count:int -> src:string -> acc:Reg.t -> Vloop.t
(** [acc <- max acc (max_i src.(i)^2)] — squared-energy peak search. *)

val sat_mac :
  name:string ->
  count:int ->
  esize:Esize.t ->
  x:string ->
  y:string ->
  scale:int ->
  out:string ->
  Vloop.t
(** [out = sat(out_prev?)]: GSM long-term-prediction shape — scaled
    product saturating-added into a running signal. *)

val fft_stage :
  name:string -> count:int -> block:int -> re:string -> im:string ->
  wr:string -> wi:string -> Vloop.t
(** The paper's §3.4 FFT loop: butterfly loads, twiddle multiplies,
    add/sub, masked recombination through a mid-loop butterfly (forces
    loop fission in the scalar representation). *)
