(** Sweep-service jobs: the JSONL wire types.

    A request line is a single JSON object — either a job
    ([{"workload": "171.swim", "variant": "liquid:8", ...}]) or a
    control message ([{"op": "sync" | "metrics" | "quit"}]). A reply
    line is a single JSON object built by {!reply_to_json}. The
    protocol reference lives in docs/ARCHITECTURE.md. *)

(** One job: workload × variant plus supervision knobs. *)
type spec = {
  j_id : string;  (** echoed in the reply; [""] = let the service name it *)
  j_workload : string;  (** registry name, e.g. ["171.swim"] *)
  j_variant : Liquid_harness.Runner.variant;
  j_variant_str : string;  (** canonical spelling, echoed in replies *)
  j_priority : int;  (** larger = more important; shedding drops the lowest *)
  j_fuel : int option;  (** retired-instruction watchdog override *)
  j_deadline_ms : float option;  (** per-job deadline override *)
  j_retries : int option;  (** retry-budget override *)
  j_blocks : bool;  (** translation-block engine knob (default on) *)
  j_superblocks : bool;  (** trace-superblock tier knob (default on) *)
  j_fault_seed : int option;
      (** arm one seeded translation-path fault for the run *)
  j_transient_attempts : int;
      (** force the first N attempts to fail transiently (a tiny fuel
          budget), for exercising the retry path deterministically *)
}

type request =
  | Job of spec
  | Sync  (** drain the queue, emit the pending replies *)
  | Metrics  (** emit the metrics document *)
  | Quit  (** drain, then stop serving *)

val parse_request : string -> (request, string) result
(** Parse one JSONL line. Unknown [op] values, missing [workload],
    malformed variants and ill-typed fields are errors (the service
    counts them as protocol errors, not failed jobs). *)

val fingerprint : spec -> int
(** FNV-1a hash over the semantic job fields — workload, variant, fuel,
    engine knobs, fault seed, forced-transient count — excluding [j_id]
    and [j_priority], which change the envelope but not the result.
    Keys the service's reply-dedup LRU. *)

type status = Ok_ | Degraded | Shed | Failed

val status_name : status -> string

(** One reply line. Counter fields are zero when no run happened
    (shed / failed before execution). *)
type reply = {
  p_id : string;
  p_status : status;
  p_workload : string;
  p_variant : string;  (** the variant the job asked for *)
  p_ran : string;  (** the variant that actually executed (["baseline"]
                       on a degraded reply, [""] when nothing ran) *)
  p_cycles : int;
  p_retired : int;
  p_regs_hash : int;  (** {!Liquid_faults.Fingerprint.regs_hash} *)
  p_mem_hash : int;  (** {!Liquid_faults.Fingerprint.mem_hash} *)
  p_attempts : int;  (** execution attempts consumed (0 on a dedup hit) *)
  p_cached : bool;  (** served from the reply-dedup LRU *)
  p_reason : string option;
      (** why the reply is not a plain [ok]: ["overloaded"],
          ["breaker-open"], ["deadline"], ["retry-exhausted"],
          ["permanent"], ["unknown-workload"], ["supervisor-crash"] *)
  p_diag : string option;  (** last failure detail, when one exists *)
}

val reply_to_json : reply -> Liquid_obs.Json.t
