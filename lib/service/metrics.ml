module Json = Liquid_obs.Json
module Lru = Liquid_harness.Lru

type t = {
  submitted : int Atomic.t;
  ok : int Atomic.t;
  degraded : int Atomic.t;
  shed : int Atomic.t;
  failed : int Atomic.t;
  dedup_hits : int Atomic.t;
  retries : int Atomic.t;
  transient : int Atomic.t;
  permanent : int Atomic.t;
  deadline : int Atomic.t;
  protocol_errors : int Atomic.t;
  perm_seen : int Atomic.t;
  perm_recovered : int Atomic.t;
  perm_aborted : int Atomic.t;
  tbl_builds : int Atomic.t;
}

let create () =
  {
    submitted = Atomic.make 0;
    ok = Atomic.make 0;
    degraded = Atomic.make 0;
    shed = Atomic.make 0;
    failed = Atomic.make 0;
    dedup_hits = Atomic.make 0;
    retries = Atomic.make 0;
    transient = Atomic.make 0;
    permanent = Atomic.make 0;
    deadline = Atomic.make 0;
    protocol_errors = Atomic.make 0;
    perm_seen = Atomic.make 0;
    perm_recovered = Atomic.make 0;
    perm_aborted = Atomic.make 0;
    tbl_builds = Atomic.make 0;
  }

type totals = {
  m_submitted : int;
  m_ok : int;
  m_degraded : int;
  m_shed : int;
  m_failed : int;
  m_dedup_hits : int;
  m_retries : int;
  m_transient : int;
  m_permanent : int;
  m_deadline : int;
  m_protocol_errors : int;
  m_perm_seen : int;
  m_perm_recovered : int;
  m_perm_aborted : int;
  m_tbl_builds : int;
}

let totals t =
  {
    m_submitted = Atomic.get t.submitted;
    m_ok = Atomic.get t.ok;
    m_degraded = Atomic.get t.degraded;
    m_shed = Atomic.get t.shed;
    m_failed = Atomic.get t.failed;
    m_dedup_hits = Atomic.get t.dedup_hits;
    m_retries = Atomic.get t.retries;
    m_transient = Atomic.get t.transient;
    m_permanent = Atomic.get t.permanent;
    m_deadline = Atomic.get t.deadline;
    m_protocol_errors = Atomic.get t.protocol_errors;
    m_perm_seen = Atomic.get t.perm_seen;
    m_perm_recovered = Atomic.get t.perm_recovered;
    m_perm_aborted = Atomic.get t.perm_aborted;
    m_tbl_builds = Atomic.get t.tbl_builds;
  }

let bump c = Atomic.incr c
let incr_submitted t = bump t.submitted
let incr_ok t = bump t.ok
let incr_degraded t = bump t.degraded
let incr_shed t = bump t.shed
let incr_failed t = bump t.failed
let incr_dedup_hits t = bump t.dedup_hits
let incr_retries t = bump t.retries
let incr_transient t = bump t.transient
let incr_permanent t = bump t.permanent
let incr_deadline t = bump t.deadline
let incr_protocol_errors t = bump t.protocol_errors

let add_permutation t ~seen ~recovered ~aborted ~tbl_builds =
  ignore (Atomic.fetch_and_add t.perm_seen seen);
  ignore (Atomic.fetch_and_add t.perm_recovered recovered);
  ignore (Atomic.fetch_and_add t.perm_aborted aborted);
  ignore (Atomic.fetch_and_add t.tbl_builds tbl_builds)

let violations ?(queued = 0) m =
  let errs = ref [] in
  let accounted = m.m_ok + m.m_degraded + m.m_shed + m.m_failed + queued in
  if m.m_submitted <> accounted then
    errs :=
      Printf.sprintf
        "conservation: submitted (%d) <> ok (%d) + degraded (%d) + shed (%d) \
         + failed (%d) + queued (%d) = %d"
        m.m_submitted m.m_ok m.m_degraded m.m_shed m.m_failed queued accounted
      :: !errs;
  if m.m_dedup_hits > m.m_ok + m.m_degraded then
    errs :=
      Printf.sprintf "dedup hits (%d) exceed ok + degraded replies (%d)"
        m.m_dedup_hits
        (m.m_ok + m.m_degraded)
      :: !errs;
  if m.m_perm_recovered + m.m_perm_aborted <> m.m_perm_seen then
    errs :=
      Printf.sprintf "permutation: recovered (%d) + aborted (%d) <> seen (%d)"
        m.m_perm_recovered m.m_perm_aborted m.m_perm_seen
      :: !errs;
  List.rev !errs

let lru_json (k : Lru.counters) =
  Json.Obj
    [
      ("hits", Json.Int k.Lru.l_hits);
      ("misses", Json.Int k.Lru.l_misses);
      ("evictions", Json.Int k.Lru.l_evictions);
      ("occupancy", Json.Int k.Lru.l_occupancy);
      ("capacity", Json.Int k.Lru.l_capacity);
    ]

let to_json t ~queued ~breaker_threshold ~breaker_trips ~breaker_probes
    ~breaker_reopens ~breaker_open ~dedup
    ~runner_cache =
  let m = totals t in
  Json.Obj
    [
      ("schema", Json.Str "liquid-service-metrics/1");
      ( "jobs",
        Json.Obj
          [
            ("submitted", Json.Int m.m_submitted);
            ("ok", Json.Int m.m_ok);
            ("degraded", Json.Int m.m_degraded);
            ("shed", Json.Int m.m_shed);
            ("failed", Json.Int m.m_failed);
            ("queued", Json.Int queued);
          ] );
      ( "supervision",
        Json.Obj
          [
            ("retries", Json.Int m.m_retries);
            ("transient_failures", Json.Int m.m_transient);
            ("permanent_failures", Json.Int m.m_permanent);
            ("deadline_expiries", Json.Int m.m_deadline);
          ] );
      ( "breaker",
        Json.Obj
          [
            ("threshold", Json.Int breaker_threshold);
            ("trips", Json.Int breaker_trips);
            ("probes", Json.Int breaker_probes);
            ("reopens", Json.Int breaker_reopens);
            ("open", Json.List (List.map (fun k -> Json.Str k) breaker_open));
          ] );
      ( "permutation",
        Json.Obj
          [
            ("seen", Json.Int m.m_perm_seen);
            ("recovered", Json.Int m.m_perm_recovered);
            ("aborted", Json.Int m.m_perm_aborted);
            ("tbl_index_builds", Json.Int m.m_tbl_builds);
          ] );
      ("dedup", lru_json dedup);
      ("runner_cache", lru_json runner_cache);
      ("protocol_errors", Json.Int m.m_protocol_errors);
      ( "invariants",
        let v = violations ~queued m in
        Json.Obj
          [
            ("checked", Json.Int 3);
            ("violations", Json.List (List.map (fun s -> Json.Str s) v));
          ] );
    ]
