(** Exponential retry backoff with seed-stable jitter.

    A retry's delay is [base_ms * factor^(attempt-1)], scaled by a
    jitter factor drawn deterministically from
    [(seed, job, attempt)] via the same splitmix64 generator the fault
    injector uses ({!Liquid_faults.Fault.Rng}) — so two replicas of a
    fixed-seed run back off identically, while distinct jobs de-correlate
    (no thundering herd of simultaneous retries). *)

val delay_ms :
  base_ms:float ->
  factor:float ->
  jitter:float ->
  seed:int ->
  job:int ->
  attempt:int ->
  float
(** Delay before retry number [attempt] (1-based: the delay between the
    first failure and the second attempt has [attempt = 1]). [jitter]
    is the maximum relative perturbation: the result lies in
    [ideal * \[1 - jitter, 1 + jitter\]] where
    [ideal = base_ms * factor^(attempt-1)]. Always non-negative. *)

val budget_ms :
  base_ms:float -> factor:float -> jitter:float -> retries:int -> float
(** Upper bound of the total backoff a job with [retries] retries can
    accumulate — the "backoff budget" a converging transient retry must
    fit inside ([sum of worst-case delays]). *)
