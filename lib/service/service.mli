(** The persistent fault-tolerant sweep server (DESIGN.md §11).

    Jobs — workload × variant × supervision knobs ({!Job.spec}) — arrive
    over a JSONL request/reply protocol ({!handle_line}, {!serve}) or
    in-process ({!submit} / {!sync}, {!run_script}). Submitted jobs
    queue until a [sync]; the drain dispatches them across the
    {!Liquid_harness.Runner.run_many_result} domain pool, each job
    wrapped in a supervisor:

    - {b deadline}: wall-clock budget per job, with retry backoff
      counted against it, plus the machine's own retired-instruction
      fuel watchdog;
    - {b retry}: transient failures (per
      {!Liquid_pipeline.Diag.classify}) re-attempt with exponential
      {!Backoff} and seed-stable jitter, bounded by the retry budget
      and the deadline;
    - {b breaker}: K consecutive permanent failures of one
      (workload, variant) open a {!Breaker}; open combinations skip
      dispatch entirely;
    - {b degrade}: breaker-open jobs re-run as the scalar [Baseline]
      variant and reply [degraded] — the Liquid SIMD fallback story
      (translation may fail; scalar execution never does);
    - {b shed}: when the queue exceeds the high-water mark the
      lowest-priority job is dropped with an [overloaded] reply;
    - {b dedup}: ok/degraded replies memoize in a bounded LRU keyed by
      {!Job.fingerprint}; a repeat job answers from the cache.

    Every counter lands in {!Metrics}, whose conservation invariant
    ([submitted = ok + degraded + shed + failed]) the service re-checks
    on every metrics emission. Backoff delays go through the [sleep]
    hook — a no-op by default, so tests and scripted runs are
    deterministic and instant; the delays still charge the deadline
    budget as virtual elapsed time. *)

type config = {
  domains : int option;  (** worker domains ([None] = pool default) *)
  retries : int;  (** default transient re-attempts per job *)
  backoff_base_ms : float;
  backoff_factor : float;
  backoff_jitter : float;  (** relative jitter amplitude, [0..1] *)
  deadline_ms : float;  (** default per-job deadline *)
  breaker_threshold : int;  (** consecutive permanent failures to trip *)
  high_water : int;  (** queue depth above which submits shed *)
  dedup_capacity : int;  (** reply-dedup LRU entries *)
  seed : int;  (** jitter seed (shared by every job's backoff draws) *)
  transient_fuel : int;
      (** fuel for forced-transient attempts ([j_transient_attempts]) *)
  sleep : float -> unit;  (** backoff hook, milliseconds; default no-op *)
}

val default_config : config
(** 2 retries, 10 ms base backoff ×4 with 0.25 jitter, 10 s deadline,
    breaker threshold 3, high water 64, 512-entry dedup LRU, seed 1,
    no-op sleep. *)

type t

val create : ?config:config -> unit -> t

val metrics : t -> Metrics.t
val breaker : t -> Breaker.t
val queue_depth : t -> int

val submit : t -> Job.spec -> Liquid_obs.Json.t list
(** Accept one job (counted [submitted]; a [""] id is replaced with a
    generated one). Returns immediately-emittable replies: empty
    normally, or one [shed]/[overloaded] reply when the queue is over
    the high-water mark and a lowest-priority victim — possibly this
    very job — is dropped. *)

val sync : t -> Liquid_obs.Json.t list
(** Drain: dispatch every queued job (priority order, high first;
    submission order within a priority) across the domain pool and
    return their replies in that order. *)

val metrics_json : t -> Liquid_obs.Json.t
(** The ["liquid-service-metrics/1"] document. Raises [Failure] if the
    document fails its own schema validation — the emitter checks
    itself, like {!Liquid_obs.Bench_report.write}. *)

val handle_line : t -> string -> Liquid_obs.Json.t list * [ `Continue | `Quit ]
(** Process one request line: a job submits (emitting any shed reply),
    [sync]/[metrics] emit their documents, [quit] drains and stops.
    A malformed line yields one [{"error": ...}] object and counts a
    protocol error. *)

val run_script : ?config:config -> string -> string
(** In-process entry point: feed a whole JSONL script (one request per
    line; blank lines skipped), return the concatenated reply lines.
    An implicit drain runs at end of input, so trailing submitted jobs
    still reply. *)

val serve : ?config:config -> in_channel -> out_channel -> unit
(** The [liquid_cli serve] loop: read request lines until EOF or
    [quit], write reply lines (flushed per request). Ends with the same
    implicit drain as {!run_script}. *)
