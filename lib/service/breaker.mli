(** Per-(workload, variant) circuit breakers with half-open probing.

    A breaker watches one (workload, variant) pair and trips — opens —
    after [threshold] {e consecutive} permanent failures (as classified
    by {!Liquid_pipeline.Diag.classify}); any success resets the count.
    While open, the supervisor stops dispatching the poisoned
    combination and degrades those jobs to a scalar baseline run
    instead of burning retries on a failure that is deterministic by
    definition.

    An open breaker is not permanent: after [cooldown] denied
    dispatches it goes {e half-open} and admits exactly one probe job.
    A successful probe closes the breaker (normal dispatch resumes); a
    failed probe re-opens it and the cooldown starts over. Counting the
    cooldown in denied dispatches rather than wall time keeps
    fixed-script runs deterministic.

    The registry is mutex-protected and safe to consult from worker
    domains; counts are totals, so fixed-seed runs report identical
    aggregates regardless of dispatch interleaving. *)

type t

type state = Closed | Open | Half_open

val create : ?threshold:int -> ?cooldown:int -> unit -> t
(** A fresh registry, all breakers closed. [threshold] (default 3) is
    the consecutive-permanent-failure count that opens a breaker;
    [cooldown] (default 2) is the number of denied dispatches after
    which an open breaker goes half-open and admits a probe. *)

val threshold : t -> int

val key : workload:string -> variant:string -> string
(** The registry key for a (workload, variant) pair — also the spelling
    used in metrics documents and [open_keys]. *)

val state : t -> workload:string -> variant:string -> state

val admit : t -> workload:string -> variant:string -> bool
(** May this job dispatch? [true] when the breaker is closed — or when
    it just went half-open, in which case the admitted job is the
    probe (counted in {!probes}). [false] counts one denied dispatch
    toward the cooldown; while a probe is in flight other jobs keep
    being denied without advancing the cooldown. *)

val record_failure : t -> workload:string -> variant:string -> int
(** Note one permanent failure; returns the new consecutive-failure
    count. Crossing the threshold opens the breaker (and counts one
    trip); a half-open breaker re-opens (counting one {!reopens}) and
    restarts its cooldown. *)

val record_success : t -> workload:string -> variant:string -> unit
(** A completed run closes the loop: the consecutive-failure count
    resets to zero, and a successful half-open probe re-closes the
    breaker. A success arriving while the breaker is fully open can
    only come from a stale in-flight job and does not re-close it. *)

val trips : t -> int
(** Lifetime number of open transitions across all keys. *)

val probes : t -> int
(** Lifetime number of half-open probe jobs admitted. *)

val reopens : t -> int
(** Lifetime number of failed probes that re-opened a breaker. *)

val open_keys : t -> string list
(** Keys of currently not-closed (open or half-open) breakers, sorted. *)

val reset : t -> unit
(** Close every breaker and zero every count (tests). *)
