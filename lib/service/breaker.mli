(** Per-(workload, variant) circuit breakers.

    A breaker watches one (workload, variant) pair and trips — opens —
    after [threshold] {e consecutive} permanent failures (as classified
    by {!Liquid_pipeline.Diag.classify}); any success resets the count.
    Once open it stays open for the registry's lifetime: the supervisor
    stops dispatching the poisoned combination and degrades those jobs
    to a scalar baseline run instead of burning retries on a failure
    that is deterministic by definition.

    The registry is mutex-protected and safe to consult from worker
    domains; counts are totals, so fixed-seed runs report identical
    aggregates regardless of dispatch interleaving. *)

type t

val create : ?threshold:int -> unit -> t
(** A fresh registry, all breakers closed. [threshold] (default 3) is
    the consecutive-permanent-failure count that opens a breaker. *)

val threshold : t -> int

val key : workload:string -> variant:string -> string
(** The registry key for a (workload, variant) pair — also the spelling
    used in metrics documents and [open_keys]. *)

val is_open : t -> workload:string -> variant:string -> bool

val record_failure : t -> workload:string -> variant:string -> int
(** Note one permanent failure; returns the new consecutive-failure
    count. Crossing the threshold opens the breaker (and counts one
    trip); further failures keep it open. *)

val record_success : t -> workload:string -> variant:string -> unit
(** A completed run closes the loop: the consecutive-failure count
    resets to zero. Does {e not} re-close an open breaker — an open
    breaker never dispatches, so a success can only arrive from a
    stale in-flight job. *)

val trips : t -> int
(** Lifetime number of open transitions across all keys. *)

val open_keys : t -> string list
(** Keys of currently-open breakers, sorted. *)

val reset : t -> unit
(** Close every breaker and zero every count (tests). *)
