module Json = Liquid_obs.Json
module Runner = Liquid_harness.Runner
module Fingerprint = Liquid_faults.Fingerprint

type spec = {
  j_id : string;
  j_workload : string;
  j_variant : Runner.variant;
  j_variant_str : string;
  j_priority : int;
  j_fuel : int option;
  j_deadline_ms : float option;
  j_retries : int option;
  j_blocks : bool;
  j_superblocks : bool;
  j_fault_seed : int option;
  j_transient_attempts : int;
}

type request = Job of spec | Sync | Metrics | Quit

(* --- field accessors over the parsed line --- *)

let str_field obj name =
  match Json.member name obj with
  | None | Some Json.Null -> Ok None
  | Some (Json.Str s) -> Ok (Some s)
  | Some _ -> Error (Printf.sprintf "field %S: expected string" name)

let int_field obj name =
  match Json.member name obj with
  | None | Some Json.Null -> Ok None
  | Some (Json.Int i) -> Ok (Some i)
  | Some _ -> Error (Printf.sprintf "field %S: expected int" name)

let num_field obj name =
  match Json.member name obj with
  | None | Some Json.Null -> Ok None
  | Some (Json.Int i) -> Ok (Some (float_of_int i))
  | Some (Json.Float f) -> Ok (Some f)
  | Some _ -> Error (Printf.sprintf "field %S: expected number" name)

let bool_field obj name ~default =
  match Json.member name obj with
  | None | Some Json.Null -> Ok default
  | Some (Json.Bool b) -> Ok b
  | Some _ -> Error (Printf.sprintf "field %S: expected bool" name)

let ( let* ) = Result.bind

let parse_job obj =
  let* workload = str_field obj "workload" in
  match workload with
  | None -> Error "job request: missing field \"workload\""
  | Some workload ->
      let* id =
        match Json.member "id" obj with
        | None | Some Json.Null -> Ok ""
        | Some (Json.Str s) -> Ok s
        | Some (Json.Int i) -> Ok (string_of_int i)
        | Some _ -> Error "field \"id\": expected string or int"
      in
      let* vs = str_field obj "variant" in
      let vs = Option.value vs ~default:"liquid:8" in
      let* variant =
        match Runner.variant_of_string vs with
        | Ok v -> Ok v
        | Error m -> Error (Printf.sprintf "field \"variant\": %s" m)
      in
      let* priority = int_field obj "priority" in
      let* fuel = int_field obj "fuel" in
      let* deadline_ms = num_field obj "deadline_ms" in
      let* retries = int_field obj "retries" in
      let* blocks = bool_field obj "blocks" ~default:true in
      let* superblocks = bool_field obj "superblocks" ~default:true in
      let* fault_seed = int_field obj "fault_seed" in
      let* transient_attempts = int_field obj "transient_attempts" in
      Ok
        (Job
           {
             j_id = id;
             j_workload = workload;
             j_variant = variant;
             j_variant_str = Runner.variant_to_string variant;
             j_priority = Option.value priority ~default:0;
             j_fuel = fuel;
             j_deadline_ms = deadline_ms;
             j_retries = retries;
             j_blocks = blocks;
             j_superblocks = superblocks;
             j_fault_seed = fault_seed;
             j_transient_attempts = Option.value transient_attempts ~default:0;
           })

let parse_request line =
  match Json.of_string line with
  | Error e -> Error (Printf.sprintf "parse error: %s" e)
  | Ok (Json.Obj _ as obj) -> (
      match Json.member "op" obj with
      | Some (Json.Str "sync") -> Ok Sync
      | Some (Json.Str "metrics") -> Ok Metrics
      | Some (Json.Str "quit") -> Ok Quit
      | Some (Json.Str op) -> Error (Printf.sprintf "unknown op %S" op)
      | Some _ -> Error "field \"op\": expected string"
      | None -> parse_job obj)
  | Ok _ -> Error "request: expected a JSON object"

(* --- dedup fingerprint --- *)

(* FNV-1a over the semantic fields, using the same primitive steps as
   the architectural-state fingerprints. The basis is the 32-bit FNV
   offset; any fixed constant works, it only has to be stable. *)
let fnv_string h s =
  String.fold_left (fun h c -> Fingerprint.fnv_byte h (Char.code c)) h s

let fnv_opt h = function
  | None -> Fingerprint.fnv_int h (-1)
  | Some i -> Fingerprint.fnv_int (Fingerprint.fnv_int h 1) i

let fingerprint s =
  let h = 0x811c9dc5 in
  let h = fnv_string h s.j_workload in
  let h = Fingerprint.fnv_byte h 0x7c in
  let h = fnv_string h s.j_variant_str in
  let h = fnv_opt h s.j_fuel in
  let h = Fingerprint.fnv_int h (Bool.to_int s.j_blocks) in
  let h = Fingerprint.fnv_int h (Bool.to_int s.j_superblocks) in
  let h = fnv_opt h s.j_fault_seed in
  Fingerprint.fnv_int h s.j_transient_attempts

(* --- replies --- *)

type status = Ok_ | Degraded | Shed | Failed

let status_name = function
  | Ok_ -> "ok"
  | Degraded -> "degraded"
  | Shed -> "shed"
  | Failed -> "failed"

type reply = {
  p_id : string;
  p_status : status;
  p_workload : string;
  p_variant : string;
  p_ran : string;
  p_cycles : int;
  p_retired : int;
  p_regs_hash : int;
  p_mem_hash : int;
  p_attempts : int;
  p_cached : bool;
  p_reason : string option;
  p_diag : string option;
}

let reply_to_json r =
  let opt name = function
    | None -> []
    | Some s -> [ (name, Json.Str s) ]
  in
  Json.Obj
    ([
       ("id", Json.Str r.p_id);
       ("status", Json.Str (status_name r.p_status));
       ("workload", Json.Str r.p_workload);
       ("variant", Json.Str r.p_variant);
       ("ran", Json.Str r.p_ran);
       ("cycles", Json.Int r.p_cycles);
       ("retired", Json.Int r.p_retired);
       ("regs_hash", Json.Int r.p_regs_hash);
       ("mem_hash", Json.Int r.p_mem_hash);
       ("attempts", Json.Int r.p_attempts);
       ("cached", Json.Bool r.p_cached);
     ]
    @ opt "reason" r.p_reason
    @ opt "diag" r.p_diag)
