(** Supervision counters for the sweep service.

    Atomic lifetime tallies bumped by the supervisor from any worker
    domain, snapshotted into the service's metrics document
    (schema ["liquid-service-metrics/1"], validated by
    {!Liquid_obs.Schema.service_metrics}). The load-bearing law is the
    conservation invariant — {e every} submitted job is accounted for by
    exactly one terminal status:

    {[ submitted = ok + degraded + shed + failed + queued ]}

    where [queued] (jobs accepted but not yet drained) is zero at
    quiescence, collapsing to the plain form.

    {!violations} checks it; the test suite and the service's own
    metrics emission both call it, so a lost or double-counted job
    fails loudly. *)

type t

val create : unit -> t

(** Immutable snapshot of every counter, read atomically one counter at
    a time — consistent when the service is quiescent (after a drain),
    approximate while jobs are in flight. *)
type totals = {
  m_submitted : int;  (** job requests accepted into the queue *)
  m_ok : int;  (** replies with the requested variant's result *)
  m_degraded : int;  (** breaker-open jobs re-run as scalar baseline *)
  m_shed : int;  (** jobs dropped under overload *)
  m_failed : int;  (** permanent / retry-exhausted / malformed jobs *)
  m_dedup_hits : int;  (** replies served from the dedup LRU *)
  m_retries : int;  (** re-attempts after a transient failure *)
  m_transient : int;  (** attempt failures classified [`Transient] *)
  m_permanent : int;  (** attempt failures classified [`Permanent] *)
  m_deadline : int;  (** jobs stopped by the wall-clock/fuel deadline *)
  m_protocol_errors : int;  (** unparseable request lines (not jobs) *)
  m_perm_seen : int;
      (** permutation slots translators resolved across all executed runs *)
  m_perm_recovered : int;
      (** permutations lowered to a native permute or a VLA table lookup *)
  m_perm_aborted : int;  (** permutations that killed their translation *)
  m_tbl_builds : int;  (** runtime index-table materialisations executed *)
}

val totals : t -> totals

val incr_submitted : t -> unit
val incr_ok : t -> unit
val incr_degraded : t -> unit
val incr_shed : t -> unit
val incr_failed : t -> unit
val incr_dedup_hits : t -> unit
val incr_retries : t -> unit
val incr_transient : t -> unit
val incr_permanent : t -> unit
val incr_deadline : t -> unit
val incr_protocol_errors : t -> unit

val add_permutation :
  t -> seen:int -> recovered:int -> aborted:int -> tbl_builds:int -> unit
(** Fold one executed run's permutation tallies
    ({!Liquid_pipeline.Cpu.run} fields [permutes_seen] /
    [permutes_recovered] / [permutes_aborted] / [tbl_index_builds]) into
    the lifetime counters. Dedup-cache replies do not re-count. *)

val violations : ?queued:int -> totals -> string list
(** Conservation problems, one human-readable string each; empty means
    the books balance — including the permutation ledger
    ([recovered + aborted = seen]). [queued] (default 0) is the number
    of accepted jobs still waiting for a drain. *)

val to_json :
  t ->
  queued:int ->
  breaker_threshold:int ->
  breaker_trips:int ->
  breaker_probes:int ->
  breaker_reopens:int ->
  breaker_open:string list ->
  dedup:Liquid_harness.Lru.counters ->
  runner_cache:Liquid_harness.Lru.counters ->
  Liquid_obs.Json.t
(** The ["liquid-service-metrics/1"] document: job accounting,
    supervision counters, breaker state, and the two LRU caches' tallies
    (the reply-dedup cache and {!Liquid_harness.Runner.run_cached}'s
    memo). Includes an [invariants] group reporting
    {!violations}. *)
