open Liquid_prog
open Liquid_pipeline
module Json = Liquid_obs.Json
module Schema = Liquid_obs.Schema
module Stats = Liquid_machine.Stats
module Abort = Liquid_translate.Abort
module Workload = Liquid_workloads.Workload
module Runner = Liquid_harness.Runner
module Lru = Liquid_harness.Lru
module Fault = Liquid_faults.Fault
module Fingerprint = Liquid_faults.Fingerprint

type config = {
  domains : int option;
  retries : int;
  backoff_base_ms : float;
  backoff_factor : float;
  backoff_jitter : float;
  deadline_ms : float;
  breaker_threshold : int;
  high_water : int;
  dedup_capacity : int;
  seed : int;
  transient_fuel : int;
  sleep : float -> unit;
}

let default_config =
  {
    domains = None;
    retries = 2;
    backoff_base_ms = 10.0;
    backoff_factor = 4.0;
    backoff_jitter = 0.25;
    deadline_ms = 10_000.0;
    breaker_threshold = 3;
    high_water = 64;
    dedup_capacity = 512;
    seed = 1;
    transient_fuel = 64;
    sleep = (fun _ -> ());
  }

type t = {
  cfg : config;
  metrics : Metrics.t;
  breaker : Breaker.t;
  dedup : (int, Job.reply) Lru.t;
  dedup_mutex : Mutex.t;
  queue_mutex : Mutex.t;
  mutable queue : (int * Job.spec) list;  (* newest first; sorted on sync *)
  mutable seq : int;
}

let create ?(config = default_config) () =
  {
    cfg = config;
    metrics = Metrics.create ();
    breaker = Breaker.create ~threshold:config.breaker_threshold ();
    dedup = Lru.create ~capacity:config.dedup_capacity;
    dedup_mutex = Mutex.create ();
    queue_mutex = Mutex.create ();
    queue = [];
    seq = 0;
  }

let metrics t = t.metrics
let breaker t = t.breaker
let queue_depth t = Mutex.protect t.queue_mutex (fun () -> List.length t.queue)

(* --- reply builders --- *)

let tally_permutes t (run : Cpu.run) =
  Metrics.add_permutation t.metrics ~seen:run.Cpu.permutes_seen
    ~recovered:run.Cpu.permutes_recovered ~aborted:run.Cpu.permutes_aborted
    ~tbl_builds:run.Cpu.tbl_index_builds

let empty_reply (spec : Job.spec) status =
  {
    Job.p_id = spec.Job.j_id;
    p_status = status;
    p_workload = spec.Job.j_workload;
    p_variant = spec.Job.j_variant_str;
    p_ran = "";
    p_cycles = 0;
    p_retired = 0;
    p_regs_hash = 0;
    p_mem_hash = 0;
    p_attempts = 0;
    p_cached = false;
    p_reason = None;
    p_diag = None;
  }

let run_reply (spec : Job.spec) status ~ran ~attempts ?reason ?diag
    (run : Cpu.run) (image : Image.t) =
  {
    (empty_reply spec status) with
    Job.p_ran = ran;
    p_cycles = run.Cpu.stats.Stats.cycles;
    p_retired = Stats.total_insns run.Cpu.stats;
    p_regs_hash = Fingerprint.regs_hash run.Cpu.regs;
    p_mem_hash = Fingerprint.mem_hash image run.Cpu.memory;
    p_attempts = attempts;
    p_reason = reason;
    p_diag = diag;
  }

let failed_reply (spec : Job.spec) ~reason ?diag ~attempts () =
  {
    (empty_reply spec Job.Failed) with
    Job.p_reason = Some reason;
    p_diag = diag;
    p_attempts = attempts;
  }

(* --- dedup cache --- *)

let dedup_find t fp =
  Mutex.protect t.dedup_mutex (fun () -> Lru.find t.dedup fp)

let dedup_add t fp reply =
  Mutex.protect t.dedup_mutex (fun () -> Lru.add t.dedup fp reply)

(* --- seeded per-job fault injection --- *)

(* One translation-path fault per seed, drawn like a one-case Campaign
   plan. Exhaust_fuel is deliberately excluded: the deadline watchdog is
   the supervisor's own knob, and arming it here would make "ok" depend
   on the draw. All three remaining faults are abort-safe — the scalar
   stream is untouched, so the run completes with scalar-correct state
   (the property the fault campaign pins). *)
let seeded_fault seed =
  let rng = Fault.Rng.make seed in
  match Fault.Rng.int rng 3 with
  | 0 ->
      Fault.Force_abort
        { site = Fault.Rng.int rng 256; abort = Fault.Rng.pick rng Abort.all }
  | 1 -> Fault.Corrupt_feed { site = Fault.Rng.int rng 256 }
  | _ -> Fault.Evict_ucode { call = Fault.Rng.int rng 64 }

(* --- the supervisor --- *)

let degrade t (spec : Job.spec) (w : Workload.t) ~fp ~attempts ~diag =
  match Runner.run_cached w Runner.Baseline with
  | result ->
      Metrics.incr_degraded t.metrics;
      tally_permutes t result.Runner.run;
      let image = Image.of_program result.Runner.program in
      let reply =
        run_reply spec Job.Degraded ~ran:"baseline" ~attempts
          ~reason:"breaker-open" ?diag result.Runner.run image
      in
      dedup_add t fp reply;
      reply
  | exception e ->
      Metrics.incr_failed t.metrics;
      failed_reply spec ~reason:"supervisor-crash"
        ~diag:(Printexc.to_string e) ~attempts ()

let run_supervised t seq (spec : Job.spec) (w : Workload.t) fp =
  let retries = Option.value spec.Job.j_retries ~default:t.cfg.retries in
  let max_attempts = retries + 1 in
  let deadline = Option.value spec.Job.j_deadline_ms ~default:t.cfg.deadline_ms in
  let started = Unix.gettimeofday () in
  let virtual_ms = ref 0.0 in
  let elapsed_ms () =
    ((Unix.gettimeofday () -. started) *. 1000.0) +. !virtual_ms
  in
  let attempt_once attempt =
    try
      let program = Runner.program_of w spec.Job.j_variant in
      let image = Image.of_program program in
      let base = Runner.config_of spec.Job.j_variant in
      let fuel =
        if attempt <= spec.Job.j_transient_attempts then t.cfg.transient_fuel
        else Option.value spec.Job.j_fuel ~default:base.Cpu.fuel
      in
      let faults =
        match spec.Job.j_fault_seed with
        | None -> base.Cpu.faults
        | Some seed -> (Fault.arm (seeded_fault seed)).Fault.hooks
      in
      let config =
        {
          base with
          Cpu.fuel;
          faults;
          blocks = spec.Job.j_blocks;
          superblocks = spec.Job.j_superblocks;
        }
      in
      match Cpu.run_result ~config image with
      | Ok run -> `Ok (run, image)
      | Error d -> `Diag d
    with e -> `Exn (Printexc.to_string e)
  in
  let permanent ~diag attempts =
    Metrics.incr_permanent t.metrics;
    let count =
      Breaker.record_failure t.breaker ~workload:spec.Job.j_workload
        ~variant:spec.Job.j_variant_str
    in
    if count >= Breaker.threshold t.breaker && spec.Job.j_variant <> Runner.Baseline
    then degrade t spec w ~fp ~attempts ~diag:(Some diag)
    else begin
      Metrics.incr_failed t.metrics;
      failed_reply spec ~reason:"permanent" ~diag ~attempts ()
    end
  in
  let rec go attempt =
    match attempt_once attempt with
    | `Ok (run, image) ->
        Breaker.record_success t.breaker ~workload:spec.Job.j_workload
          ~variant:spec.Job.j_variant_str;
        Metrics.incr_ok t.metrics;
        tally_permutes t run;
        let reply =
          run_reply spec Job.Ok_ ~ran:spec.Job.j_variant_str ~attempts:attempt
            run image
        in
        dedup_add t fp reply;
        reply
    | `Diag d when Diag.classify d = `Transient ->
        Metrics.incr_transient t.metrics;
        let delay =
          Backoff.delay_ms ~base_ms:t.cfg.backoff_base_ms
            ~factor:t.cfg.backoff_factor ~jitter:t.cfg.backoff_jitter
            ~seed:t.cfg.seed ~job:seq ~attempt
        in
        let budget_ok = elapsed_ms () +. delay <= deadline in
        if attempt < max_attempts && budget_ok then begin
          Metrics.incr_retries t.metrics;
          t.cfg.sleep delay;
          virtual_ms := !virtual_ms +. delay;
          go (attempt + 1)
        end
        else begin
          (* The fuel watchdog is the machine half of the deadline, so
             a terminal Fuel_exhausted counts as a deadline expiry even
             when it was the retry budget that ran dry. *)
          let is_deadline =
            (not budget_ok) || d.Diag.fault = Diag.Fuel_exhausted
          in
          if is_deadline then Metrics.incr_deadline t.metrics;
          Metrics.incr_failed t.metrics;
          failed_reply spec
            ~reason:(if is_deadline then "deadline" else "retry-exhausted")
            ~diag:(Diag.to_string d) ~attempts:attempt ()
        end
    | `Diag d -> permanent ~diag:(Diag.to_string d) attempt
    | `Exn msg -> permanent ~diag:msg attempt
  in
  go 1

let supervise t (seq, (spec : Job.spec)) : Job.reply =
  match Workload.find spec.Job.j_workload with
  | None ->
      Metrics.incr_failed t.metrics;
      failed_reply spec ~reason:"unknown-workload" ~attempts:0 ()
  | Some w -> (
      let fp = Job.fingerprint spec in
      match dedup_find t fp with
      | Some cached ->
          Metrics.incr_dedup_hits t.metrics;
          (match cached.Job.p_status with
          | Job.Degraded -> Metrics.incr_degraded t.metrics
          | _ -> Metrics.incr_ok t.metrics);
          { cached with Job.p_id = spec.Job.j_id; p_cached = true; p_attempts = 0 }
      | None ->
          if
            spec.Job.j_variant <> Runner.Baseline
            && not
                 (Breaker.admit t.breaker ~workload:spec.Job.j_workload
                    ~variant:spec.Job.j_variant_str)
          then degrade t spec w ~fp ~attempts:0 ~diag:None
          else run_supervised t seq spec w fp)

(* --- queueing, shedding, draining --- *)

let submit t (spec : Job.spec) =
  let shed =
    Mutex.protect t.queue_mutex (fun () ->
        t.seq <- t.seq + 1;
        let seq = t.seq in
        let spec =
          if spec.Job.j_id = "" then
            { spec with Job.j_id = Printf.sprintf "job-%d" seq }
          else spec
        in
        Metrics.incr_submitted t.metrics;
        t.queue <- (seq, spec) :: t.queue;
        if List.length t.queue <= t.cfg.high_water then None
        else begin
          (* Shed the lowest-priority job; among equals the newest goes,
             so long-queued work is not starved by late arrivals. *)
          let victim =
            List.fold_left
              (fun best (s, (sp : Job.spec)) ->
                match best with
                | None -> Some (s, sp)
                | Some (bs, (bsp : Job.spec)) ->
                    if
                      sp.Job.j_priority < bsp.Job.j_priority
                      || (sp.Job.j_priority = bsp.Job.j_priority && s > bs)
                    then Some (s, sp)
                    else best)
              None t.queue
          in
          match victim with
          | None -> None
          | Some (vs, vsp) ->
              t.queue <- List.filter (fun (s, _) -> s <> vs) t.queue;
              Metrics.incr_shed t.metrics;
              Some vsp
        end)
  in
  match shed with
  | None -> []
  | Some vsp ->
      [
        Job.reply_to_json
          { (empty_reply vsp Job.Shed) with Job.p_reason = Some "overloaded" };
      ]

let sync t =
  let batch =
    Mutex.protect t.queue_mutex (fun () ->
        let q = t.queue in
        t.queue <- [];
        List.sort
          (fun (s1, (a : Job.spec)) (s2, (b : Job.spec)) ->
            if a.Job.j_priority <> b.Job.j_priority then
              compare b.Job.j_priority a.Job.j_priority
            else compare s1 s2)
          q)
  in
  let results =
    Runner.run_many_result ?domains:t.cfg.domains (supervise t) batch
  in
  List.map2
    (fun (_, spec) r ->
      match r with
      | Ok reply -> Job.reply_to_json reply
      | Error { Runner.f_exn; _ } ->
          (* supervise fences everything; reaching this means the
             supervisor itself broke — account for the job anyway. *)
          Metrics.incr_failed t.metrics;
          Job.reply_to_json
            (failed_reply spec ~reason:"supervisor-crash"
               ~diag:(Printexc.to_string f_exn) ~attempts:0 ()))
    batch results

let metrics_json t =
  let dedup = Mutex.protect t.dedup_mutex (fun () -> Lru.counters t.dedup) in
  let doc =
    Metrics.to_json t.metrics ~queued:(queue_depth t)
      ~breaker_threshold:(Breaker.threshold t.breaker)
      ~breaker_trips:(Breaker.trips t.breaker)
      ~breaker_probes:(Breaker.probes t.breaker)
      ~breaker_reopens:(Breaker.reopens t.breaker)
      ~breaker_open:(Breaker.open_keys t.breaker)
      ~dedup
      ~runner_cache:(Runner.cache_counters ())
  in
  match Schema.service_metrics doc with
  | [] -> doc
  | errs ->
      failwith
        ("Service.metrics_json: emitted document fails validation: "
        ^ String.concat "; " errs)

(* --- wire front ends --- *)

let handle_line t line =
  let line = String.trim line in
  if line = "" then ([], `Continue)
  else
    match Job.parse_request line with
    | Error msg ->
        Metrics.incr_protocol_errors t.metrics;
        ([ Json.Obj [ ("error", Json.Str msg) ] ], `Continue)
    | Ok (Job.Job spec) -> (submit t spec, `Continue)
    | Ok Job.Sync -> (sync t, `Continue)
    | Ok Job.Metrics -> ([ metrics_json t ], `Continue)
    | Ok Job.Quit -> (sync t, `Quit)

let run_script ?config script =
  let t = create ?config () in
  let buf = Buffer.create 1024 in
  let emit js =
    List.iter
      (fun j ->
        Buffer.add_string buf (Json.to_string ~pretty:false j);
        Buffer.add_char buf '\n')
      js
  in
  let rec go = function
    | [] -> emit (sync t)  (* implicit drain at end of input *)
    | l :: rest -> (
        let js, k = handle_line t l in
        emit js;
        match k with `Continue -> go rest | `Quit -> ())
  in
  go (String.split_on_char '\n' script);
  Buffer.contents buf

let serve ?config ic oc =
  let t = create ?config () in
  let emit js =
    List.iter
      (fun j ->
        Json.to_channel ~pretty:false oc j;
        output_char oc '\n')
      js;
    flush oc
  in
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> emit (sync t)
    | line -> (
        let js, k = handle_line t line in
        emit js;
        match k with `Continue -> loop () | `Quit -> ())
  in
  loop ()
