module Rng = Liquid_faults.Fault.Rng

(* Jitter draws get their own generator per (seed, job, attempt): cheap,
   stateless from the caller's point of view, and stable under any
   interleaving of jobs across domains. The mixing constants are
   arbitrary odd numbers; splitmix64 scrambles whatever we hand it. *)
let jitter_factor ~jitter ~seed ~job ~attempt =
  if jitter <= 0.0 then 1.0
  else
    let rng =
      Rng.make (seed lxor (job * 0x2545F491) lxor (attempt * 0x9E3779B1))
    in
    let u = float_of_int (Rng.int rng 1_000_000) /. 1_000_000.0 in
    1.0 -. jitter +. (2.0 *. jitter *. u)

let ideal ~base_ms ~factor ~attempt =
  base_ms *. (factor ** float_of_int (max 0 (attempt - 1)))

let delay_ms ~base_ms ~factor ~jitter ~seed ~job ~attempt =
  Float.max 0.0
    (ideal ~base_ms ~factor ~attempt *. jitter_factor ~jitter ~seed ~job ~attempt)

let budget_ms ~base_ms ~factor ~jitter ~retries =
  let rec go acc attempt =
    if attempt > retries then acc
    else go (acc +. (ideal ~base_ms ~factor ~attempt *. (1.0 +. jitter))) (attempt + 1)
  in
  Float.max 0.0 (go 0.0 1)
