type state = Closed | Open | Half_open

type entry = {
  mutable consecutive : int;
  mutable st : state;
  mutable denied : int;  (* dispatch denials since the breaker opened *)
}

type t = {
  threshold : int;
  cooldown : int;
  table : (string, entry) Hashtbl.t;
  mutable trip_count : int;
  mutable probe_count : int;
  mutable reopen_count : int;
  mutex : Mutex.t;
}

let create ?(threshold = 3) ?(cooldown = 2) () =
  if threshold < 1 then invalid_arg "Breaker.create: threshold must be >= 1";
  if cooldown < 1 then invalid_arg "Breaker.create: cooldown must be >= 1";
  {
    threshold;
    cooldown;
    table = Hashtbl.create 16;
    trip_count = 0;
    probe_count = 0;
    reopen_count = 0;
    mutex = Mutex.create ();
  }

let threshold t = t.threshold
let key ~workload ~variant = workload ^ "|" ^ variant

let entry_of t k =
  match Hashtbl.find_opt t.table k with
  | Some e -> e
  | None ->
      let e = { consecutive = 0; st = Closed; denied = 0 } in
      Hashtbl.replace t.table k e;
      e

let state t ~workload ~variant =
  Mutex.protect t.mutex (fun () ->
      match Hashtbl.find_opt t.table (key ~workload ~variant) with
      | Some e -> e.st
      | None -> Closed)

let admit t ~workload ~variant =
  Mutex.protect t.mutex (fun () ->
      match Hashtbl.find_opt t.table (key ~workload ~variant) with
      | None -> true
      | Some e -> (
          match e.st with
          | Closed -> true
          | Half_open -> false (* one probe at a time *)
          | Open ->
              if e.denied >= t.cooldown then begin
                e.st <- Half_open;
                e.denied <- 0;
                t.probe_count <- t.probe_count + 1;
                true
              end
              else begin
                e.denied <- e.denied + 1;
                false
              end))

let record_failure t ~workload ~variant =
  Mutex.protect t.mutex (fun () ->
      let e = entry_of t (key ~workload ~variant) in
      e.consecutive <- e.consecutive + 1;
      (match e.st with
      | Closed ->
          if e.consecutive >= t.threshold then begin
            e.st <- Open;
            e.denied <- 0;
            t.trip_count <- t.trip_count + 1
          end
      | Half_open ->
          (* the probe failed: back to open, cooldown restarts *)
          e.st <- Open;
          e.denied <- 0;
          t.reopen_count <- t.reopen_count + 1
      | Open -> ());
      e.consecutive)

let record_success t ~workload ~variant =
  Mutex.protect t.mutex (fun () ->
      match Hashtbl.find_opt t.table (key ~workload ~variant) with
      | None -> ()
      | Some e -> (
          match e.st with
          | Closed -> e.consecutive <- 0
          | Half_open ->
              (* the probe succeeded: the fault healed, close again *)
              e.st <- Closed;
              e.consecutive <- 0;
              e.denied <- 0
          | Open -> () (* stale in-flight success; stay open *)))

let trips t = Mutex.protect t.mutex (fun () -> t.trip_count)
let probes t = Mutex.protect t.mutex (fun () -> t.probe_count)
let reopens t = Mutex.protect t.mutex (fun () -> t.reopen_count)

let open_keys t =
  Mutex.protect t.mutex (fun () ->
      Hashtbl.fold
        (fun k e acc -> if e.st <> Closed then k :: acc else acc)
        t.table [])
  |> List.sort String.compare

let reset t =
  Mutex.protect t.mutex (fun () ->
      Hashtbl.reset t.table;
      t.trip_count <- 0;
      t.probe_count <- 0;
      t.reopen_count <- 0)
