type entry = { mutable consecutive : int; mutable opened : bool }

type t = {
  threshold : int;
  table : (string, entry) Hashtbl.t;
  mutable trip_count : int;
  mutex : Mutex.t;
}

let create ?(threshold = 3) () =
  if threshold < 1 then invalid_arg "Breaker.create: threshold must be >= 1";
  { threshold; table = Hashtbl.create 16; trip_count = 0; mutex = Mutex.create () }

let threshold t = t.threshold
let key ~workload ~variant = workload ^ "|" ^ variant

let entry_of t k =
  match Hashtbl.find_opt t.table k with
  | Some e -> e
  | None ->
      let e = { consecutive = 0; opened = false } in
      Hashtbl.replace t.table k e;
      e

let is_open t ~workload ~variant =
  Mutex.protect t.mutex (fun () ->
      match Hashtbl.find_opt t.table (key ~workload ~variant) with
      | Some e -> e.opened
      | None -> false)

let record_failure t ~workload ~variant =
  Mutex.protect t.mutex (fun () ->
      let e = entry_of t (key ~workload ~variant) in
      e.consecutive <- e.consecutive + 1;
      if (not e.opened) && e.consecutive >= t.threshold then begin
        e.opened <- true;
        t.trip_count <- t.trip_count + 1
      end;
      e.consecutive)

let record_success t ~workload ~variant =
  Mutex.protect t.mutex (fun () ->
      match Hashtbl.find_opt t.table (key ~workload ~variant) with
      | Some e -> if not e.opened then e.consecutive <- 0
      | None -> ())

let trips t = Mutex.protect t.mutex (fun () -> t.trip_count)

let open_keys t =
  Mutex.protect t.mutex (fun () ->
      Hashtbl.fold (fun k e acc -> if e.opened then k :: acc else acc) t.table [])
  |> List.sort String.compare

let reset t =
  Mutex.protect t.mutex (fun () ->
      Hashtbl.reset t.table;
      t.trip_count <- 0)
