type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* --- printing --- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let to_buffer ~pretty buf t =
  let indent n =
    if pretty then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (2 * n) ' ')
    end
  in
  let rec go depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
        if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then
          Buffer.add_string buf "null"
        else Buffer.add_string buf (float_repr f)
    | Str s -> escape buf s
    | List [] -> Buffer.add_string buf "[]"
    | List xs ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char buf ',';
            indent (depth + 1);
            go (depth + 1) x)
          xs;
        indent depth;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            indent (depth + 1);
            escape buf k;
            Buffer.add_string buf (if pretty then ": " else ":");
            go (depth + 1) v)
          fields;
        indent depth;
        Buffer.add_char buf '}'
  in
  go 0 t

let to_string ?(pretty = true) t =
  let buf = Buffer.create 1024 in
  to_buffer ~pretty buf t;
  Buffer.contents buf

let to_channel ?(pretty = true) oc t =
  let buf = Buffer.create 1024 in
  to_buffer ~pretty buf t;
  Buffer.output_buffer oc buf

(* --- parsing --- *)

exception Bad of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad (!pos, msg)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
          if !pos >= n then fail "unterminated escape";
          let e = s.[!pos] in
          advance ();
          match e with
          | '"' | '\\' | '/' ->
              Buffer.add_char buf e;
              go ()
          | 'n' ->
              Buffer.add_char buf '\n';
              go ()
          | 't' ->
              Buffer.add_char buf '\t';
              go ()
          | 'r' ->
              Buffer.add_char buf '\r';
              go ()
          | 'b' ->
              Buffer.add_char buf '\b';
              go ()
          | 'f' ->
              Buffer.add_char buf '\012';
              go ()
          | 'u' ->
              if !pos + 4 > n then fail "short \\u escape";
              let hex = String.sub s !pos 4 in
              pos := !pos + 4;
              let code =
                try int_of_string ("0x" ^ hex)
                with _ -> fail "bad \\u escape"
              in
              (* Encode the code point as UTF-8 (surrogates land as-is;
                 the emitter only produces \u for control characters). *)
              if code < 0x80 then Buffer.add_char buf (Char.chr code)
              else if code < 0x800 then begin
                Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end
              else begin
                Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                Buffer.add_char buf
                  (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end;
              go ()
          | _ -> fail "unknown escape")
      | c -> (
          Buffer.add_char buf c;
          go ())
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let lit = String.sub s start (!pos - start) in
    match int_of_string_opt lit with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt lit with
        | Some f -> Float f
        | None -> fail ("bad number " ^ lit))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List (List.rev (v :: acc))
            | _ -> fail "expected , or ] in array"
          in
          items []
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let rec fields acc =
            let f = field () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields (f :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev (f :: acc))
            | _ -> fail "expected , or } in object"
          in
          fields []
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad (at, msg) ->
      Error (Printf.sprintf "JSON parse error at offset %d: %s" at msg)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool a, Bool b -> a = b
  | Int a, Int b -> a = b
  | Float a, Float b -> a = b
  | Int a, Float b | Float b, Int a -> float_of_int a = b
  | Str a, Str b -> a = b
  | List a, List b -> (
      try List.for_all2 equal a b with Invalid_argument _ -> false)
  | Obj a, Obj b ->
      List.length a = List.length b
      && List.for_all
           (fun (k, v) ->
             match List.assoc_opt k b with
             | Some v' -> equal v v'
             | None -> false)
           a
  | _ -> false
