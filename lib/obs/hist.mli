(** Power-of-two-bucket histogram of non-negative integer samples.

    Bucket 0 holds the value 0; bucket [k > 0] holds
    [[2^(k-1), 2^k - 1]]; the last bucket absorbs everything above the
    range. [add] touches only preallocated state — safe to call from a
    simulation hot path (the {!Collector} trace hook). *)

type t

val create : ?buckets:int -> unit -> t
(** [buckets] defaults to 32 (covers values up to [2^30]). *)

val add : t -> int -> unit
(** Record one sample; negatives are clamped to 0. Zero-allocation. *)

val count : t -> int
val total : t -> int
(** Sum of all recorded samples. *)

val min_value : t -> int
(** Smallest sample, or 0 when empty. *)

val max_value : t -> int
val mean : t -> float
(** 0.0 when empty. *)

val merge : t -> t -> unit
(** [merge acc x] accumulates [x]'s buckets into [acc]; the two must
    have the same bucket count. *)

val iter_buckets : t -> (lo:int -> hi:int -> count:int -> unit) -> unit
(** Visit non-empty buckets in increasing order with their inclusive
    value range. *)

val to_json : t -> Json.t
(** [{"count":…,"total":…,"min":…,"max":…,"mean":…,
     "buckets":[{"lo":…,"hi":…,"count":…},…]}] — non-empty buckets
    only. *)
