type t = {
  kinds : int array;
  az : int array;
  bz : int array;
  cz : int array;
  mutable next : int;  (* total pushed; next slot = next mod capacity *)
}

let create capacity =
  if capacity <= 0 then invalid_arg "Ring.create";
  {
    kinds = Array.make capacity 0;
    az = Array.make capacity 0;
    bz = Array.make capacity 0;
    cz = Array.make capacity 0;
    next = 0;
  }

let capacity t = Array.length t.kinds

let push t ~kind ~a ~b ~c =
  let i = t.next mod Array.length t.kinds in
  Array.unsafe_set t.kinds i kind;
  Array.unsafe_set t.az i a;
  Array.unsafe_set t.bz i b;
  Array.unsafe_set t.cz i c;
  t.next <- t.next + 1

let length t = min t.next (Array.length t.kinds)
let pushed t = t.next

let iter t f =
  let cap = Array.length t.kinds in
  let held = length t in
  let first = t.next - held in
  for k = first to t.next - 1 do
    let i = k mod cap in
    f ~kind:t.kinds.(i) ~a:t.az.(i) ~b:t.bz.(i) ~c:t.cz.(i)
  done
