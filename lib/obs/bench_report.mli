(** The typed BENCH.json document and its single emitter.

    [bench/main.ml] builds a {!t} and calls {!write}; nothing else in
    the tree hand-formats benchmark JSON. The written file is
    immediately re-parsed and checked against {!Schema.bench}, so a
    shape regression fails at emit time. *)

type test = { t_name : string; t_ns_per_run : float }

type t = {
  b_report_wall_s : float;  (** wall time of the full report generation *)
  b_sim_cycles : int;  (** simulated cycles in the throughput measurement *)
  b_sim_wall_s : float;
  b_sim_cycles_per_s : float;
  b_block_speedup : float;
      (** wall-time ratio of the same throughput sweep with the
          translation-block engine off vs on (> 1 means the engine
          pays for itself) *)
  b_super_speedup : float;
      (** wall-time ratio of the blocks-on sweep with the trace
          superblock tier off vs on (> 1 means the tier pays for
          itself) *)
  b_fault_wall_s : float;  (** wall time of the seeded fault campaign *)
  b_fault_cases : int;
  b_fault_survived : bool;
  b_service_jobs_s : float;
      (** sweep-service throughput: jobs replied per wall second through
          {!Liquid_service.Service.run_script} on a fixed job script
          (emitted as [service_throughput_jobs_s]; gated non-regressing
          by [bench/compare.exe]) *)
  b_fuzz_cases_per_s : float;
      (** differential-fuzz throughput: generated Vloop cases pushed
          through the full 37-cell oracle matrix per wall second
          ({!Liquid_fuzz.Campaign.run}, fixed seed; emitted as
          [fuzz_cases_per_s] and gated non-regressing by
          [bench/compare.exe]) *)
  b_tests : test list;  (** Bechamel per-test estimates *)
}

val to_json : t -> Json.t
(** Schema ["liquid-bench/1"]. *)

val write : path:string -> t -> unit
(** Pretty-print to [path], then re-read and validate; raises
    [Failure] listing the violations if the emitted file does not
    satisfy {!Schema.bench} (an emitter bug, by construction). *)

val validate_file : string -> string list
(** Parse the file at the path and run {!Schema.bench}; parse errors
    and I/O errors come back as single-element violation lists. Empty
    means valid. *)
