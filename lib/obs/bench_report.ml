type test = { t_name : string; t_ns_per_run : float }

type t = {
  b_report_wall_s : float;
  b_sim_cycles : int;
  b_sim_wall_s : float;
  b_sim_cycles_per_s : float;
  b_block_speedup : float;
  b_super_speedup : float;
  b_fault_wall_s : float;
  b_fault_cases : int;
  b_fault_survived : bool;
  b_service_jobs_s : float;
  b_fuzz_cases_per_s : float;
  b_tests : test list;
}

let to_json t =
  Json.Obj
    [
      ("schema", Json.Str "liquid-bench/1");
      ("report_wall_s", Json.Float t.b_report_wall_s);
      ("sim_cycles", Json.Int t.b_sim_cycles);
      ("sim_wall_s", Json.Float t.b_sim_wall_s);
      ("sim_cycles_per_s", Json.Float t.b_sim_cycles_per_s);
      ("block_speedup", Json.Float t.b_block_speedup);
      ("super_speedup", Json.Float t.b_super_speedup);
      ("fault_campaign_wall_s", Json.Float t.b_fault_wall_s);
      ("fault_campaign_cases", Json.Int t.b_fault_cases);
      ("fault_campaign_survived", Json.Bool t.b_fault_survived);
      ("service_throughput_jobs_s", Json.Float t.b_service_jobs_s);
      ("fuzz_cases_per_s", Json.Float t.b_fuzz_cases_per_s);
      ( "tests",
        Json.List
          (List.map
             (fun test ->
               Json.Obj
                 [
                   ("name", Json.Str test.t_name);
                   ("ns_per_run", Json.Float test.t_ns_per_run);
                 ])
             t.b_tests) );
    ]

let validate_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg -> [ Printf.sprintf "%s: %s" path msg ]
  | contents -> (
      match Json.of_string contents with
      | Error msg -> [ Printf.sprintf "%s: parse error: %s" path msg ]
      | Ok j -> Schema.bench j)

let write ~path t =
  let oc = open_out path in
  Json.to_channel ~pretty:true oc (to_json t);
  output_char oc '\n';
  close_out oc;
  match validate_file path with
  | [] -> ()
  | viols ->
      failwith
        (Printf.sprintf "Bench_report.write %s: emitted invalid JSON: %s" path
           (String.concat "; " viols))
