open Liquid_pipeline

let kind_insn = 0
let kind_uop = 1
let kind_region = 2
let kind_translation = 3

type t = {
  latency : Hist.t;
  ring : Ring.t;
  jsonl : out_channel option;
  mutable n_events : int;
}

let create ?(ring_capacity = 1024) ?jsonl () =
  { latency = Hist.create (); ring = Ring.create ring_capacity; jsonl; n_events = 0 }

let emit_line t json =
  match t.jsonl with
  | None -> ()
  | Some oc ->
      Json.to_channel ~pretty:false oc json;
      output_char oc '\n'

let region_event_json t label event =
  if t.jsonl <> None then
    let fields =
      [ ("seq", Json.Int t.n_events); ("type", Json.Str "region"); ("label", Json.Str label) ]
      @
      match event with
      | `Scalar_call -> [ ("event", Json.Str "scalar_call") ]
      | `Ucode_call -> [ ("event", Json.Str "ucode_call") ]
      | `Translated w ->
          [ ("event", Json.Str "translated"); ("width", Json.Int w) ]
      | `Aborted a ->
          [
            ("event", Json.Str "aborted");
            ("abort", Json.Str (Liquid_translate.Abort.to_string a));
          ]
    in
    emit_line t (Json.Obj fields)

let on_trace t ev =
  t.n_events <- t.n_events + 1;
  match ev with
  | Cpu.T_insn { pc; _ } ->
      Ring.push t.ring ~kind:kind_insn ~a:pc ~b:0 ~c:0
  | Cpu.T_uop { entry; index; _ } ->
      Ring.push t.ring ~kind:kind_uop ~a:entry ~b:index ~c:0
  | Cpu.T_region { label; event } ->
      let code, b =
        match event with
        | `Scalar_call -> (0, 0)
        | `Ucode_call -> (1, 0)
        | `Translated w -> (2, w)
        | `Aborted _ -> (3, 0)
      in
      Ring.push t.ring ~kind:kind_region ~a:code ~b ~c:0;
      region_event_json t label event
  | Cpu.T_translation { entry; label; width; uops; latency } ->
      Hist.add t.latency latency;
      Ring.push t.ring ~kind:kind_translation ~a:entry ~b:latency ~c:uops;
      if t.jsonl <> None then
        emit_line t
          (Json.Obj
             [
               ("seq", Json.Int t.n_events);
               ("type", Json.Str "translation");
               ("label", Json.Str label);
               ("entry", Json.Int entry);
               ("width", Json.Int width);
               ("uops", Json.Int uops);
               ("latency_cycles", Json.Int latency);
             ])

let wrap t (config : Cpu.config) =
  let hook =
    match config.Cpu.on_trace with
    | None -> on_trace t
    | Some existing ->
        fun ev ->
          existing ev;
          on_trace t ev
  in
  { config with Cpu.on_trace = Some hook }

let attach = wrap

let translation_latency t = t.latency
let ring t = t.ring
let events t = t.n_events
