(* Validators are hand-rolled structural walks: a tiny combinator set
   (require a field, check its shape) over the Json tree. *)

type ty = T_int | T_num | T_str | T_bool | T_list | T_obj

let ty_name = function
  | T_int -> "int"
  | T_num -> "number"
  | T_str -> "string"
  | T_bool -> "bool"
  | T_list -> "list"
  | T_obj -> "object"

let has_ty ty (j : Json.t) =
  match (ty, j) with
  | T_int, Json.Int _ -> true
  | T_num, (Json.Int _ | Json.Float _) -> true
  | T_str, Json.Str _ -> true
  | T_bool, Json.Bool _ -> true
  | T_list, Json.List _ -> true
  | T_obj, Json.Obj _ -> true
  | _ -> false

(* [field errs path obj name ty k]: require [obj.name] of shape [ty];
   on success run [k] on the value for nested checks. *)
let field errs path obj name ty k =
  match Json.member name obj with
  | None -> errs := Printf.sprintf "%s: missing field %S" path name :: !errs
  | Some v ->
      if has_ty ty v then k v
      else
        errs :=
          Printf.sprintf "%s.%s: expected %s" path name (ty_name ty) :: !errs

let require_schema errs tag obj =
  match Json.member "schema" obj with
  | Some (Json.Str s) when s = tag -> ()
  | Some (Json.Str s) ->
      errs := Printf.sprintf "schema: expected %S, found %S" tag s :: !errs
  | _ -> errs := Printf.sprintf "schema: missing tag %S" tag :: !errs

let check_hist errs path h =
  let f name ty = field errs path h name ty (fun _ -> ()) in
  f "count" T_int;
  f "total" T_int;
  f "min" T_int;
  f "max" T_int;
  f "mean" T_num;
  field errs path h "buckets" T_list (fun v ->
      match v with
      | Json.List bs ->
          List.iteri
            (fun i b ->
              let bpath = Printf.sprintf "%s.buckets[%d]" path i in
              if has_ty T_obj b then (
                field errs bpath b "lo" T_int (fun _ -> ());
                field errs bpath b "hi" T_int (fun _ -> ());
                field errs bpath b "count" T_int (fun _ -> ()))
              else errs := Printf.sprintf "%s: expected object" bpath :: !errs)
            bs
      | _ -> ())

let stats_keys =
  [
    "cycles";
    "fetches";
    "scalar_insns";
    "vector_insns";
    "uops_retired";
    "loads";
    "stores";
    "branches";
    "branch_mispredicts";
    "icache_hits";
    "icache_misses";
    "dcache_hits";
    "dcache_misses";
    "region_calls";
    "ucode_hits";
    "ucode_installs";
    "ucode_evictions";
    "translations_started";
    "translations_aborted";
    "translation_busy_cycles";
  ]

let snapshot (j : Json.t) =
  let errs = ref [] in
  (if not (has_ty T_obj j) then errs := [ "document: expected object" ]
   else begin
     require_schema errs "liquid-obs-snapshot/1" j;
     field errs "document" j "label" T_str (fun _ -> ());
     field errs "document" j "variant" T_str (fun _ -> ());
     field errs "document" j "stats" T_obj (fun stats ->
         List.iter
           (fun k -> field errs "stats" stats k T_int (fun _ -> ()))
           stats_keys);
     (* icache/dcache may be null (unit absent) or {hits,misses} *)
     List.iter
       (fun name ->
         match Json.member name j with
         | None -> errs := Printf.sprintf "document: missing field %S" name :: !errs
         | Some Json.Null -> ()
         | Some (Json.Obj _ as c) ->
             field errs name c "hits" T_int (fun _ -> ());
             field errs name c "misses" T_int (fun _ -> ())
         | Some _ ->
             errs := Printf.sprintf "%s: expected object or null" name :: !errs)
       [ "icache"; "dcache" ];
     field errs "document" j "branch_pred" T_obj (fun b ->
         field errs "branch_pred" b "lookups" T_int (fun _ -> ());
         field errs "branch_pred" b "mispredicts" T_int (fun _ -> ()));
     field errs "document" j "ucode_cache" T_obj (fun u ->
         List.iter
           (fun k -> field errs "ucode_cache" u k T_int (fun _ -> ()))
           [ "installs"; "replacements"; "evictions"; "occupancy"; "max_occupancy" ]);
     field errs "document" j "regions" T_list (fun v ->
         match v with
         | Json.List rs ->
             List.iteri
               (fun i r ->
                 let path = Printf.sprintf "regions[%d]" i in
                 if has_ty T_obj r then (
                   field errs path r "label" T_str (fun _ -> ());
                   field errs path r "entry" T_int (fun _ -> ());
                   field errs path r "calls" T_int (fun _ -> ());
                   field errs path r "ucode_served" T_int (fun _ -> ());
                   field errs path r "scalar_calls" T_int (fun _ -> ());
                   field errs path r "outcome" T_str (fun _ -> ());
                   field errs path r "width" T_int (fun _ -> ());
                   field errs path r "uops" T_int (fun _ -> ()))
                 else errs := Printf.sprintf "%s: expected object" path :: !errs)
               rs
         | _ -> ());
     field errs "document" j "predication" T_obj (fun p ->
         List.iter
           (fun k -> field errs "predication" p k T_int (fun _ -> ()))
           [ "fast_iters"; "masked_iters"; "dispatched" ]);
     field errs "document" j "permutation" T_obj (fun p ->
         List.iter
           (fun k -> field errs "permutation" p k T_int (fun _ -> ()))
           [ "seen"; "recovered"; "aborted"; "tbl_index_builds" ]);
     field errs "document" j "histograms" T_obj (fun hs ->
         List.iter
           (fun name ->
             field errs "histograms" hs name T_obj (fun h ->
                 check_hist errs ("histograms." ^ name) h))
           [
             "translation_latency_cycles";
             "inter_call_gap_cycles";
             "region_uops";
           ]);
     field errs "document" j "invariants" T_obj (fun inv ->
         field errs "invariants" inv "checked" T_int (fun _ -> ());
         field errs "invariants" inv "violations" T_list (fun _ -> ()))
   end);
  List.rev !errs

let check_lru errs path c =
  List.iter
    (fun k -> field errs path c k T_int (fun _ -> ()))
    [ "hits"; "misses"; "evictions"; "occupancy"; "capacity" ]

let service_metrics (j : Json.t) =
  let errs = ref [] in
  (if not (has_ty T_obj j) then errs := [ "document: expected object" ]
   else begin
     require_schema errs "liquid-service-metrics/1" j;
     field errs "document" j "jobs" T_obj (fun jobs ->
         List.iter
           (fun k -> field errs "jobs" jobs k T_int (fun _ -> ()))
           [ "submitted"; "ok"; "degraded"; "shed"; "failed"; "queued" ]);
     field errs "document" j "supervision" T_obj (fun s ->
         List.iter
           (fun k -> field errs "supervision" s k T_int (fun _ -> ()))
           [
             "retries";
             "transient_failures";
             "permanent_failures";
             "deadline_expiries";
           ]);
     field errs "document" j "breaker" T_obj (fun b ->
         field errs "breaker" b "threshold" T_int (fun _ -> ());
         field errs "breaker" b "trips" T_int (fun _ -> ());
         field errs "breaker" b "probes" T_int (fun _ -> ());
         field errs "breaker" b "reopens" T_int (fun _ -> ());
         field errs "breaker" b "open" T_list (fun _ -> ()));
     field errs "document" j "permutation" T_obj (fun p ->
         List.iter
           (fun k -> field errs "permutation" p k T_int (fun _ -> ()))
           [ "seen"; "recovered"; "aborted"; "tbl_index_builds" ]);
     field errs "document" j "dedup" T_obj (fun c -> check_lru errs "dedup" c);
     field errs "document" j "runner_cache" T_obj (fun c ->
         check_lru errs "runner_cache" c);
     field errs "document" j "protocol_errors" T_int (fun _ -> ());
     field errs "document" j "invariants" T_obj (fun inv ->
         field errs "invariants" inv "checked" T_int (fun _ -> ());
         field errs "invariants" inv "violations" T_list (fun _ -> ()))
   end);
  List.rev !errs

let fuzz_report (j : Json.t) =
  let errs = ref [] in
  (if not (has_ty T_obj j) then errs := [ "document: expected object" ]
   else begin
     require_schema errs "liquid-fuzz-report/1" j;
     let f name ty = field errs "document" j name ty (fun _ -> ()) in
     f "seed" T_int;
     f "cases" T_int;
     f "faults" T_bool;
     f "runs" T_int;
     f "installs" T_int;
     f "clean_cases" T_int;
     f "divergent_cases" T_int;
     (* count objects: every member must be an int *)
     List.iter
       (fun name ->
         field errs "document" j name T_obj (fun v ->
             match v with
             | Json.Obj kvs ->
                 List.iter
                   (fun (k, v) ->
                     if not (has_ty T_int v) then
                       errs := Printf.sprintf "%s.%s: expected int" name k :: !errs)
                   kvs
             | _ -> ()))
       [ "abort_classes"; "divergences" ];
     field errs "document" j "trip_counts" T_obj (fun h ->
         check_hist errs "trip_counts" h);
     field errs "document" j "divergent" T_list (fun v ->
         match v with
         | Json.List cs ->
             List.iteri
               (fun i c ->
                 let path = Printf.sprintf "divergent[%d]" i in
                 if has_ty T_obj c then (
                   field errs path c "case" T_int (fun _ -> ());
                   field errs path c "failures" T_list (fun v ->
                       match v with
                       | Json.List fs ->
                           List.iteri
                             (fun k f ->
                               let fpath = Printf.sprintf "%s.failures[%d]" path k in
                               if has_ty T_obj f then (
                                 field errs fpath f "label" T_str (fun _ -> ());
                                 field errs fpath f "kind" T_str (fun _ -> ()))
                               else
                                 errs :=
                                   Printf.sprintf "%s: expected object" fpath
                                   :: !errs)
                             fs
                       | _ -> ()))
                 else errs := Printf.sprintf "%s: expected object" path :: !errs)
               cs
         | _ -> ())
   end);
  List.rev !errs

let bench (j : Json.t) =
  let errs = ref [] in
  (if not (has_ty T_obj j) then errs := [ "document: expected object" ]
   else begin
     require_schema errs "liquid-bench/1" j;
     let f name ty = field errs "document" j name ty (fun _ -> ()) in
     f "report_wall_s" T_num;
     f "sim_cycles" T_int;
     f "sim_wall_s" T_num;
     f "sim_cycles_per_s" T_num;
     f "block_speedup" T_num;
     f "super_speedup" T_num;
     f "fault_campaign_wall_s" T_num;
     f "fault_campaign_cases" T_int;
     f "fault_campaign_survived" T_bool;
     f "service_throughput_jobs_s" T_num;
     f "fuzz_cases_per_s" T_num;
     field errs "document" j "tests" T_list (fun v ->
         match v with
         | Json.List ts ->
             List.iteri
               (fun i t ->
                 let path = Printf.sprintf "tests[%d]" i in
                 if has_ty T_obj t then (
                   field errs path t "name" T_str (fun _ -> ());
                   field errs path t "ns_per_run" T_num (fun _ -> ()))
                 else errs := Printf.sprintf "%s: expected object" path :: !errs)
               ts
         | _ -> ())
   end);
  List.rev !errs
