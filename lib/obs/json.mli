(** A small self-contained JSON tree: enough to emit every artifact the
    observability layer produces (snapshots, BENCH.json, JSONL trace
    lines) and to parse them back for schema validation — no external
    dependency. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?pretty:bool -> t -> string
(** [pretty] (default true) indents with two spaces; [false] emits one
    compact line (the JSONL form). Strings are escaped per RFC 8259;
    non-finite floats emit as [null]. *)

val to_channel : ?pretty:bool -> out_channel -> t -> unit

val of_string : string -> (t, string) result
(** Parse a complete JSON document; the error carries the offset and a
    description. Numbers with no fraction/exponent parse as [Int]. *)

val member : string -> t -> t option
(** Field lookup on an [Obj]; [None] on missing field or non-object. *)

val equal : t -> t -> bool
(** Structural equality with unordered [Obj] fields. *)
