(** Fixed-capacity ring buffer of packed trace records.

    Each record is four unboxed ints ([kind], [a], [b], [c]) stored in
    preallocated parallel arrays, so [push] allocates nothing — the sink
    can sit on the simulation's per-instruction trace hook without
    perturbing the measurement. When full, the oldest record is
    overwritten: the ring always holds the most recent window. *)

type t

val create : int -> t
(** Capacity must be positive. *)

val capacity : t -> int

val push : t -> kind:int -> a:int -> b:int -> c:int -> unit
(** O(1), zero-allocation. *)

val length : t -> int
(** Records currently held ([min pushed capacity]). *)

val pushed : t -> int
(** Total records ever pushed (including overwritten ones). *)

val iter : t -> (kind:int -> a:int -> b:int -> c:int -> unit) -> unit
(** Visit held records oldest-first. *)
