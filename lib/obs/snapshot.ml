open Liquid_machine
open Liquid_pipeline

type region = {
  r_label : string;
  r_entry : int;
  r_calls : int;
  r_ucode_served : int;
  r_scalar_calls : int;
  r_outcome : string;
  r_width : int;
  r_uops : int;
}

type t = {
  s_label : string;
  s_variant : string;
  s_stats : Stats.t;
  s_icache : Cache.counters option;
  s_dcache : Cache.counters option;
  s_bpred : Branch_pred.counters;
  s_ucache : Ucode_cache.counters;
  s_regions : region list;
  s_superblocks_compiled : int;
  s_superblock_iters : int;
  s_superblock_bailouts : int;
  s_pred_fast : int;
  s_pred_masked : int;
  s_vla_preds : int;
  s_permutes_seen : int;
  s_permutes_recovered : int;
  s_permutes_aborted : int;
  s_tbl_index_builds : int;
  s_latency_hist : Hist.t;
  s_gap_hist : Hist.t;
  s_uops_hist : Hist.t;
}

let region_of_report (r : Cpu.region_report) =
  let calls = List.length r.Cpu.calls in
  let outcome, width, uops =
    match r.Cpu.outcome with
    | Cpu.R_untried -> ("untried", 0, 0)
    | Cpu.R_installed { width; uops } -> ("installed", width, uops)
    | Cpu.R_failed a ->
        ("failed: " ^ Liquid_translate.Abort.to_string a, 0, 0)
  in
  {
    r_label = r.Cpu.label;
    r_entry = r.Cpu.entry;
    r_calls = calls;
    r_ucode_served = r.Cpu.ucode_served;
    r_scalar_calls = calls - r.Cpu.ucode_served;
    r_outcome = outcome;
    r_width = width;
    r_uops = uops;
  }

let of_run ?(label = "run") ?(variant = "unknown") ?collector (run : Cpu.run) =
  let gap = Hist.create () in
  List.iter
    (fun (r : Cpu.region_report) ->
      let rec gaps = function
        | (_, fin) :: ((start, _) :: _ as rest) ->
            Hist.add gap (start - fin);
            gaps rest
        | _ -> ()
      in
      gaps r.Cpu.calls)
    run.Cpu.regions;
  let uops_hist = Hist.create () in
  List.iter
    (fun (r : Cpu.region_report) ->
      match r.Cpu.outcome with
      | Cpu.R_installed { uops; _ } -> Hist.add uops_hist uops
      | _ -> ())
    run.Cpu.regions;
  let latency =
    match collector with
    | Some c ->
        let h = Hist.create () in
        Hist.merge h (Collector.translation_latency c);
        h
    | None -> Hist.create ()
  in
  {
    s_label = label;
    s_variant = variant;
    s_stats = Stats.copy run.Cpu.stats;
    s_icache = run.Cpu.icache_counters;
    s_dcache = run.Cpu.dcache_counters;
    s_bpred = run.Cpu.bpred_counters;
    s_ucache = run.Cpu.ucache_counters;
    s_regions = List.map region_of_report run.Cpu.regions;
    s_superblocks_compiled = run.Cpu.superblocks_compiled;
    s_superblock_iters = run.Cpu.superblock_iters;
    s_superblock_bailouts = run.Cpu.superblock_bailouts;
    s_pred_fast = run.Cpu.pred_fast_iters;
    s_pred_masked = run.Cpu.pred_masked_iters;
    s_vla_preds = run.Cpu.vla_pred_execs;
    s_permutes_seen = run.Cpu.permutes_seen;
    s_permutes_recovered = run.Cpu.permutes_recovered;
    s_permutes_aborted = run.Cpu.permutes_aborted;
    s_tbl_index_builds = run.Cpu.tbl_index_builds;
    s_latency_hist = latency;
    s_gap_hist = gap;
    s_uops_hist = uops_hist;
  }

let invariant_count = 12

let violations t =
  let s = t.s_stats in
  let bad = ref [] in
  let check name cond detail =
    if not cond then bad := Printf.sprintf "%s: %s" name (detail ()) :: !bad
  in
  check "insn-conservation"
    (s.Stats.scalar_insns + s.Stats.vector_insns
    = s.Stats.fetches + s.Stats.uops_retired) (fun () ->
      Printf.sprintf "scalar %d + vector %d <> fetches %d + uops %d"
        s.Stats.scalar_insns s.Stats.vector_insns s.Stats.fetches
        s.Stats.uops_retired);
  (match t.s_icache with
  | None ->
      check "icache-mirror"
        (s.Stats.icache_hits = 0 && s.Stats.icache_misses = 0) (fun () ->
          "no instruction cache but stats report icache traffic")
  | Some c ->
      check "icache-mirror"
        (s.Stats.icache_hits = c.Cache.c_hits
        && s.Stats.icache_misses = c.Cache.c_misses) (fun () ->
          Printf.sprintf "stats %d/%d <> cache %d/%d" s.Stats.icache_hits
            s.Stats.icache_misses c.Cache.c_hits c.Cache.c_misses);
      check "icache-fetches"
        (c.Cache.c_hits + c.Cache.c_misses = s.Stats.fetches) (fun () ->
          Printf.sprintf "hits %d + misses %d <> fetches %d" c.Cache.c_hits
            c.Cache.c_misses s.Stats.fetches));
  (match t.s_dcache with
  | None ->
      check "dcache-mirror"
        (s.Stats.dcache_hits = 0 && s.Stats.dcache_misses = 0) (fun () ->
          "no data cache but stats report dcache traffic")
  | Some c ->
      check "dcache-mirror"
        (s.Stats.dcache_hits = c.Cache.c_hits
        && s.Stats.dcache_misses = c.Cache.c_misses) (fun () ->
          Printf.sprintf "stats %d/%d <> cache %d/%d" s.Stats.dcache_hits
            s.Stats.dcache_misses c.Cache.c_hits c.Cache.c_misses));
  check "branch-mirror"
    (s.Stats.branches = t.s_bpred.Branch_pred.p_lookups
    && s.Stats.branch_mispredicts = t.s_bpred.Branch_pred.p_mispredicts
    && s.Stats.branch_mispredicts <= s.Stats.branches) (fun () ->
      Printf.sprintf "stats %d/%d <> predictor %d/%d" s.Stats.branches
        s.Stats.branch_mispredicts t.s_bpred.Branch_pred.p_lookups
        t.s_bpred.Branch_pred.p_mispredicts);
  let region_calls =
    List.fold_left (fun acc r -> acc + r.r_calls) 0 t.s_regions
  in
  let served =
    List.fold_left (fun acc r -> acc + r.r_ucode_served) 0 t.s_regions
  in
  check "region-calls"
    (region_calls = s.Stats.region_calls
    && List.for_all
         (fun r -> r.r_scalar_calls >= 0 && r.r_ucode_served <= r.r_calls)
         t.s_regions) (fun () ->
      Printf.sprintf "region timelines %d calls <> stats %d" region_calls
        s.Stats.region_calls);
  check "ucode-hits"
    (served = s.Stats.ucode_hits && s.Stats.ucode_hits <= s.Stats.region_calls)
    (fun () ->
      Printf.sprintf "region timelines %d served <> stats %d hits" served
        s.Stats.ucode_hits);
  let u = t.s_ucache in
  check "ucache-mirror"
    (s.Stats.ucode_installs = u.Ucode_cache.u_installs
    && s.Stats.ucode_evictions = u.Ucode_cache.u_evictions) (fun () ->
      Printf.sprintf "stats %d/%d <> ucache %d/%d" s.Stats.ucode_installs
        s.Stats.ucode_evictions u.Ucode_cache.u_installs
        u.Ucode_cache.u_evictions);
  check "ucache-occupancy"
    (u.Ucode_cache.u_installs
     = u.Ucode_cache.u_replacements + u.Ucode_cache.u_evictions
       + u.Ucode_cache.u_occupancy
    && u.Ucode_cache.u_occupancy <= u.Ucode_cache.u_max_occupancy) (fun () ->
      Printf.sprintf "installs %d <> replacements %d + evictions %d + occupancy %d (max %d)"
        u.Ucode_cache.u_installs u.Ucode_cache.u_replacements
        u.Ucode_cache.u_evictions u.Ucode_cache.u_occupancy
        u.Ucode_cache.u_max_occupancy);
  let session_slack =
    s.Stats.translations_started - s.Stats.ucode_installs
    - s.Stats.translations_aborted
  in
  check "translation-sessions"
    ((session_slack = 0 || session_slack = 1)
    || (s.Stats.translations_started = 0 && s.Stats.translations_aborted = 0))
    (fun () ->
      Printf.sprintf "started %d, installs %d, aborted %d"
        s.Stats.translations_started s.Stats.ucode_installs
        s.Stats.translations_aborted);
  let gap_pairs =
    List.fold_left
      (fun acc r -> acc + max 0 (r.r_calls - 1))
      0 t.s_regions
  in
  check "gap-samples"
    (Hist.count t.s_gap_hist = gap_pairs) (fun () ->
      Printf.sprintf "gap histogram holds %d samples, expected %d"
        (Hist.count t.s_gap_hist) gap_pairs);
  check "pred-conservation"
    (t.s_pred_fast + t.s_pred_masked = t.s_vla_preds) (fun () ->
      Printf.sprintf "fast %d + masked %d <> dispatched %d" t.s_pred_fast
        t.s_pred_masked t.s_vla_preds);
  check "perm-conservation"
    (t.s_permutes_recovered + t.s_permutes_aborted = t.s_permutes_seen)
    (fun () ->
      Printf.sprintf "recovered %d + aborted %d <> seen %d"
        t.s_permutes_recovered t.s_permutes_aborted t.s_permutes_seen);
  List.rev !bad

let stats_fields (s : Stats.t) =
  [
    ("cycles", s.Stats.cycles);
    ("fetches", s.Stats.fetches);
    ("scalar_insns", s.Stats.scalar_insns);
    ("vector_insns", s.Stats.vector_insns);
    ("uops_retired", s.Stats.uops_retired);
    ("loads", s.Stats.loads);
    ("stores", s.Stats.stores);
    ("branches", s.Stats.branches);
    ("branch_mispredicts", s.Stats.branch_mispredicts);
    ("icache_hits", s.Stats.icache_hits);
    ("icache_misses", s.Stats.icache_misses);
    ("dcache_hits", s.Stats.dcache_hits);
    ("dcache_misses", s.Stats.dcache_misses);
    ("region_calls", s.Stats.region_calls);
    ("ucode_hits", s.Stats.ucode_hits);
    ("ucode_installs", s.Stats.ucode_installs);
    ("ucode_evictions", s.Stats.ucode_evictions);
    ("translations_started", s.Stats.translations_started);
    ("translations_aborted", s.Stats.translations_aborted);
    ("translation_busy_cycles", s.Stats.translation_busy_cycles);
  ]

let cache_json = function
  | None -> Json.Null
  | Some c ->
      Json.Obj
        [ ("hits", Json.Int c.Cache.c_hits); ("misses", Json.Int c.Cache.c_misses) ]

let region_json r =
  Json.Obj
    [
      ("label", Json.Str r.r_label);
      ("entry", Json.Int r.r_entry);
      ("calls", Json.Int r.r_calls);
      ("ucode_served", Json.Int r.r_ucode_served);
      ("scalar_calls", Json.Int r.r_scalar_calls);
      ("outcome", Json.Str r.r_outcome);
      ("width", Json.Int r.r_width);
      ("uops", Json.Int r.r_uops);
    ]

let to_json t =
  let viols = violations t in
  Json.Obj
    [
      ("schema", Json.Str "liquid-obs-snapshot/1");
      ("label", Json.Str t.s_label);
      ("variant", Json.Str t.s_variant);
      ( "stats",
        Json.Obj
          (List.map (fun (k, v) -> (k, Json.Int v)) (stats_fields t.s_stats))
      );
      ("icache", cache_json t.s_icache);
      ("dcache", cache_json t.s_dcache);
      ( "branch_pred",
        Json.Obj
          [
            ("lookups", Json.Int t.s_bpred.Branch_pred.p_lookups);
            ("mispredicts", Json.Int t.s_bpred.Branch_pred.p_mispredicts);
          ] );
      ( "ucode_cache",
        Json.Obj
          [
            ("installs", Json.Int t.s_ucache.Ucode_cache.u_installs);
            ("replacements", Json.Int t.s_ucache.Ucode_cache.u_replacements);
            ("evictions", Json.Int t.s_ucache.Ucode_cache.u_evictions);
            ("occupancy", Json.Int t.s_ucache.Ucode_cache.u_occupancy);
            ("max_occupancy", Json.Int t.s_ucache.Ucode_cache.u_max_occupancy);
          ] );
      ("regions", Json.List (List.map region_json t.s_regions));
      ( "superblocks",
        Json.Obj
          [
            ("compiled", Json.Int t.s_superblocks_compiled);
            ("iterations", Json.Int t.s_superblock_iters);
            ("bailouts", Json.Int t.s_superblock_bailouts);
          ] );
      ( "predication",
        Json.Obj
          [
            ("fast_iters", Json.Int t.s_pred_fast);
            ("masked_iters", Json.Int t.s_pred_masked);
            ("dispatched", Json.Int t.s_vla_preds);
          ] );
      ( "permutation",
        Json.Obj
          [
            ("seen", Json.Int t.s_permutes_seen);
            ("recovered", Json.Int t.s_permutes_recovered);
            ("aborted", Json.Int t.s_permutes_aborted);
            ("tbl_index_builds", Json.Int t.s_tbl_index_builds);
          ] );
      ( "histograms",
        Json.Obj
          [
            ("translation_latency_cycles", Hist.to_json t.s_latency_hist);
            ("inter_call_gap_cycles", Hist.to_json t.s_gap_hist);
            ("region_uops", Hist.to_json t.s_uops_hist);
          ] );
      ( "invariants",
        Json.Obj
          [
            ("checked", Json.Int invariant_count);
            ("violations", Json.List (List.map (fun v -> Json.Str v) viols));
          ] );
    ]

let to_csv t =
  let buf = Buffer.create 1024 in
  let quote s =
    if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
      "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
    else s
  in
  let row k v = Buffer.add_string buf (Printf.sprintf "%s,%s\n" (quote k) v) in
  let int_row k v = row k (string_of_int v) in
  row "key" "value";
  row "label" (quote t.s_label);
  row "variant" (quote t.s_variant);
  List.iter (fun (k, v) -> int_row ("stats." ^ k) v) (stats_fields t.s_stats);
  (match t.s_icache with
  | None -> ()
  | Some c ->
      int_row "icache.hits" c.Cache.c_hits;
      int_row "icache.misses" c.Cache.c_misses);
  (match t.s_dcache with
  | None -> ()
  | Some c ->
      int_row "dcache.hits" c.Cache.c_hits;
      int_row "dcache.misses" c.Cache.c_misses);
  int_row "branch_pred.lookups" t.s_bpred.Branch_pred.p_lookups;
  int_row "branch_pred.mispredicts" t.s_bpred.Branch_pred.p_mispredicts;
  int_row "ucode_cache.installs" t.s_ucache.Ucode_cache.u_installs;
  int_row "ucode_cache.replacements" t.s_ucache.Ucode_cache.u_replacements;
  int_row "ucode_cache.evictions" t.s_ucache.Ucode_cache.u_evictions;
  int_row "ucode_cache.occupancy" t.s_ucache.Ucode_cache.u_occupancy;
  int_row "ucode_cache.max_occupancy" t.s_ucache.Ucode_cache.u_max_occupancy;
  int_row "superblocks.compiled" t.s_superblocks_compiled;
  int_row "superblocks.iterations" t.s_superblock_iters;
  int_row "superblocks.bailouts" t.s_superblock_bailouts;
  int_row "predication.fast_iters" t.s_pred_fast;
  int_row "predication.masked_iters" t.s_pred_masked;
  int_row "predication.dispatched" t.s_vla_preds;
  int_row "permutation.seen" t.s_permutes_seen;
  int_row "permutation.recovered" t.s_permutes_recovered;
  int_row "permutation.aborted" t.s_permutes_aborted;
  int_row "permutation.tbl_index_builds" t.s_tbl_index_builds;
  List.iter
    (fun r ->
      let p k v = int_row (Printf.sprintf "region.%s.%s" r.r_label k) v in
      p "calls" r.r_calls;
      p "ucode_served" r.r_ucode_served;
      p "scalar_calls" r.r_scalar_calls;
      row (Printf.sprintf "region.%s.outcome" r.r_label) (quote r.r_outcome);
      p "width" r.r_width;
      p "uops" r.r_uops)
    t.s_regions;
  let hist name h =
    int_row (name ^ ".count") (Hist.count h);
    int_row (name ^ ".total") (Hist.total h);
    int_row (name ^ ".min") (Hist.min_value h);
    int_row (name ^ ".max") (Hist.max_value h);
    row (name ^ ".mean") (Printf.sprintf "%.3f" (Hist.mean h));
    Hist.iter_buckets h (fun ~lo ~hi ~count ->
        int_row (Printf.sprintf "%s.bucket.%d-%d" name lo hi) count)
  in
  hist "hist.translation_latency_cycles" t.s_latency_hist;
  hist "hist.inter_call_gap_cycles" t.s_gap_hist;
  hist "hist.region_uops" t.s_uops_hist;
  List.iter
    (fun v -> row "invariant.violation" (quote v))
    (violations t);
  Buffer.contents buf
