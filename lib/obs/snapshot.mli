(** One typed record holding every observable of a finished run — the
    single place the rest of the system (benchmarks, CLI, tests) reads
    telemetry from.

    A snapshot folds together the run-level {!Liquid_machine.Stats}
    counters, the internal tallies of each hardware unit (instruction
    and data {!Liquid_machine.Cache}, {!Liquid_machine.Branch_pred},
    {!Liquid_pipeline.Ucode_cache}), the per-region timelines, and three
    histograms (translation latency, inter-call gap, installed region
    uop count). {!violations} then checks the conservation invariants
    that tie those layers together; any counter drift between [Stats]
    and a unit's own tally — a second writer sneaking back in — comes
    out as a named violation instead of a silently wrong table. *)

open Liquid_machine
open Liquid_pipeline

type region = {
  r_label : string;
  r_entry : int;
  r_calls : int;  (** executions of the region (scalar + microcode) *)
  r_ucode_served : int;  (** executions substituted from the microcode cache *)
  r_scalar_calls : int;  (** [r_calls - r_ucode_served] *)
  r_outcome : string;  (** ["untried"], ["installed"] or ["failed: <abort>"] *)
  r_width : int;  (** installed lane width; 0 otherwise *)
  r_uops : int;  (** installed microcode length; 0 otherwise *)
}

type t = {
  s_label : string;
  s_variant : string;
  s_stats : Stats.t;  (** detached copy — safe to hold *)
  s_icache : Cache.counters option;
  s_dcache : Cache.counters option;
  s_bpred : Branch_pred.counters;
  s_ucache : Ucode_cache.counters;
  s_regions : region list;
  s_superblocks_compiled : int;
      (** trace superblocks formed by the block engine's trace tier *)
  s_superblock_iters : int;  (** whole loop iterations run through one *)
  s_superblock_bailouts : int;
      (** superblock exits back to the block path (guard fails + fuel) *)
  s_pred_fast : int;
      (** predicated vector executions on the all-true fast path *)
  s_pred_masked : int;
      (** predicated vector executions through the masked path *)
  s_vla_preds : int;
      (** predicated vector uops dispatched — the independent tally the
          fast/masked split must account for *)
  s_permutes_seen : int;
      (** permutation slots the translator resolved across all sessions *)
  s_permutes_recovered : int;
      (** permutations lowered to a native [Vperm] or a VLA table lookup *)
  s_permutes_aborted : int;
      (** permutations that killed their translation session — the
          independent tally recovery must account for *)
  s_tbl_index_builds : int;
      (** runtime index-table materialisations ([Tblidx] executions) —
          once per region call and recovered pattern on the VLA backend *)
  s_latency_hist : Hist.t;
      (** translation latency in cycles, one sample per completed
          translation; populated only when a {!Collector} observed the
          run (empty otherwise) *)
  s_gap_hist : Hist.t;
      (** inter-call gap in cycles — [start(k+1) - end(k)] over each
          region's consecutive executions (paper Table 6's measure) *)
  s_uops_hist : Hist.t;  (** installed region microcode lengths *)
}

val of_run :
  ?label:string -> ?variant:string -> ?collector:Collector.t -> Cpu.run -> t

val invariant_count : int
(** Number of named conservation invariants {!violations} checks. *)

val violations : t -> string list
(** Empty iff every conservation invariant holds:
    - [insn-conservation]: retired scalar + vector instructions equal
      image fetches + microcode uops;
    - [icache-mirror] / [icache-fetches]: [Stats.icache_*] equals the
      instruction cache's own tally, and hits + misses equal fetches;
    - [dcache-mirror]: same for the data cache;
    - [branch-mirror]: [Stats.branches]/[branch_mispredicts] equal the
      predictor's lookups/mispredicts (and mispredicts <= lookups);
    - [region-calls]: region executions summed over regions equal
      [Stats.region_calls], and ucode hits + scalar executions account
      for every call;
    - [ucode-hits]: per-region served counts sum to [Stats.ucode_hits];
    - [ucache-mirror]: [Stats.ucode_installs]/[ucode_evictions] equal
      the microcode cache's own tally;
    - [ucache-occupancy]: installs = replacements + evictions +
      occupancy, occupancy <= high-water mark;
    - [translation-sessions]: every started session ends in exactly one
      install or abort (at most one session still open at halt);
    - [gap-samples]: the inter-call-gap histogram holds exactly one
      sample per consecutive call pair;
    - [pred-conservation]: every dispatched predicated vector uop took
      exactly one of the all-true fast path or the masked path
      ([pred_fast + pred_masked = dispatched]);
    - [perm-conservation]: every permutation the translator saw was
      either recovered or aborted the session
      ([recovered + aborted = seen]). *)

val to_json : t -> Json.t
(** Schema ["liquid-obs-snapshot/1"]; validated by {!Schema.snapshot}.
    Includes the invariant verdict, so an emitted report carries its own
    consistency check. *)

val to_csv : t -> string
(** Flat [key,value] rows covering the same content (histograms as
    count/total/min/max/mean plus per-bucket rows). *)
