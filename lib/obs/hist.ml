type t = {
  counts : int array;
  mutable n : int;
  mutable sum : int;
  mutable min_v : int;
  mutable max_v : int;
}

let create ?(buckets = 32) () =
  if buckets < 2 then invalid_arg "Hist.create: need at least two buckets";
  { counts = Array.make buckets 0; n = 0; sum = 0; min_v = max_int; max_v = 0 }

(* Bucket index = bit length of the value, capped to the last bucket:
   0 -> 0, 1 -> 1, 2..3 -> 2, 4..7 -> 3, ... *)
let bucket_of counts v =
  let rec bits acc v = if v = 0 then acc else bits (acc + 1) (v lsr 1) in
  min (bits 0 v) (Array.length counts - 1)

let add t v =
  let v = if v < 0 then 0 else v in
  let b = bucket_of t.counts v in
  t.counts.(b) <- t.counts.(b) + 1;
  t.n <- t.n + 1;
  t.sum <- t.sum + v;
  if v < t.min_v then t.min_v <- v;
  if v > t.max_v then t.max_v <- v

let count t = t.n
let total t = t.sum
let min_value t = if t.n = 0 then 0 else t.min_v
let max_value t = t.max_v
let mean t = if t.n = 0 then 0.0 else float_of_int t.sum /. float_of_int t.n

let merge acc x =
  if Array.length acc.counts <> Array.length x.counts then
    invalid_arg "Hist.merge: bucket counts differ";
  Array.iteri (fun i c -> acc.counts.(i) <- acc.counts.(i) + c) x.counts;
  acc.n <- acc.n + x.n;
  acc.sum <- acc.sum + x.sum;
  if x.n > 0 then begin
    if x.min_v < acc.min_v then acc.min_v <- x.min_v;
    if x.max_v > acc.max_v then acc.max_v <- x.max_v
  end

let bounds i =
  if i = 0 then (0, 0) else (1 lsl (i - 1), (1 lsl i) - 1)

let iter_buckets t f =
  Array.iteri
    (fun i c ->
      if c > 0 then
        let lo, hi = bounds i in
        f ~lo ~hi ~count:c)
    t.counts

let to_json t =
  let buckets = ref [] in
  iter_buckets t (fun ~lo ~hi ~count ->
      buckets :=
        Json.Obj [ ("lo", Json.Int lo); ("hi", Json.Int hi); ("count", Json.Int count) ]
        :: !buckets);
  Json.Obj
    [
      ("count", Json.Int t.n);
      ("total", Json.Int t.sum);
      ("min", Json.Int (min_value t));
      ("max", Json.Int t.max_v);
      ("mean", Json.Float (mean t));
      ("buckets", Json.List (List.rev !buckets));
    ]
