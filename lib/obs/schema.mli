(** Structural validators for the JSON documents the repository emits.

    Each validator walks a parsed {!Json.t} and returns the list of
    problems found — missing fields, wrong types, malformed nested
    records — with one human-readable string per problem. An empty list
    means the document conforms. The test suite and the emitters
    themselves call these, so a report that drifts from its documented
    shape fails loudly at the producer, not in some downstream
    consumer. *)

val snapshot : Json.t -> string list
(** Validates a {!Snapshot.to_json} document
    (schema ["liquid-obs-snapshot/1"]). *)

val bench : Json.t -> string list
(** Validates a {!Bench_report.to_json} document — the BENCH.json file
    (schema ["liquid-bench/1"]). *)

val service_metrics : Json.t -> string list
(** Validates the sweep service's metrics document
    (schema ["liquid-service-metrics/1"]): job accounting, supervision
    counters, breaker state, the permutation-recovery ledger and the two
    LRU tallies. *)

val fuzz_report : Json.t -> string list
(** Validates a fuzzing-campaign report
    (schema ["liquid-fuzz-report/1"]): case accounting, the abort-class
    and divergence count objects, the trip-count histogram, and the
    per-case failure list. *)
