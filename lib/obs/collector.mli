(** The trace-side half of the observability layer: a consumer for
    {!Liquid_pipeline.Cpu.config.on_trace} that feeds

    - the translation-latency histogram (one sample per completed
      translation, from [T_translation] events);
    - a zero-allocation ring buffer holding the most recent trace
      records in packed-int form (post-mortem window, cheap enough to
      leave attached on the hot path);
    - an optional JSONL file sink that streams region-level events
      (calls, translations, aborts) one JSON object per line.

    Attach with {!wrap} (or {!attach}), run the machine, then hand the
    collector to {!Snapshot.of_run} so the histograms land in the
    snapshot. *)

open Liquid_pipeline

(** Ring record kinds (the [kind] field of {!Ring.push}). *)
val kind_insn : int
(** [a] = pc *)

val kind_uop : int
(** [a] = region entry, [b] = uop index *)

val kind_region : int
(** [a] = event code: 0 scalar call, 1 ucode call, 2 translated,
    3 aborted; [b] = width when translated *)

val kind_translation : int
(** [a] = region entry, [b] = latency cycles, [c] = uop count *)

type t

val create : ?ring_capacity:int -> ?jsonl:out_channel -> unit -> t
(** [ring_capacity] defaults to 1024 records. [jsonl], when given,
    receives one compact JSON line per region-level event; the channel
    is not closed by the collector. *)

val on_trace : t -> Cpu.trace_event -> unit

val wrap : t -> Cpu.config -> Cpu.config
(** Install {!on_trace} into a config, chaining after any hook already
    present (the existing consumer still sees every event). *)

val attach : t -> Cpu.config -> Cpu.config
(** Alias of {!wrap}. *)

val translation_latency : t -> Hist.t
val ring : t -> Ring.t
val events : t -> int
(** Total trace events observed. *)
