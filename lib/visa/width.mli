(** Supported SIMD accelerator vector widths (lane counts).

    The paper evaluates accelerators of 2, 4, 8 and 16 lanes; widths are
    powers of two because memory alignment is enforced at the maximum
    vectorizable width (paper §3.1). *)

type t = W2 | W4 | W8 | W16

val lanes : t -> int
(** The lane count: [lanes W8 = 8]. *)

val of_lanes : int -> t option
(** Inverse of {!lanes}; [None] for unsupported lane counts. *)

val max : t
(** The maximum vectorizable width a binary is compiled for: {!W16}. *)

val all : t list
(** All widths, narrowest first. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Prints the lane count, e.g. [8-wide]. *)
