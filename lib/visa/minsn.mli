(** Mixed instructions: the union of scalar and vector instructions, as
    found in native SIMD binaries. A Liquid SIMD (virtualized) binary
    contains only [S] instructions. *)

open Liquid_isa

type ('sym, 'lab) t = S of ('sym, 'lab) Insn.t | V of 'sym Vinsn.t

type asm = (string, string) t
(** Assembly form: data symbols and branch targets are names. *)

type exec = (int, int) t
(** Executable form: data symbols and branch targets are addresses. *)

val map : sym:('a -> 'c) -> lab:('b -> 'd) -> ('a, 'b) t -> ('c, 'd) t
(** Rewrite the data-symbol and branch-label representations. *)

val equal_exec : exec -> exec -> bool

val is_vector : ('a, 'b) t -> bool
(** [true] for [V _]. *)

val pp_asm : Format.formatter -> asm -> unit
(** Prints assembly syntax with symbolic names. *)

val pp_exec : Format.formatter -> exec -> unit
(** Prints assembly syntax with resolved addresses. *)
