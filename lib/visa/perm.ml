type t = Reverse of int | Halfswap of int | Rotate of { block : int; by : int }

let pairswap = Rotate { block = 2; by = 1 }
let period = function Reverse b | Halfswap b -> b | Rotate { block; _ } -> block
let is_pow2 n = n > 0 && n land (n - 1) = 0

let well_formed t =
  let b = period t in
  is_pow2 b && b >= 2 && b <= 16
  && match t with Rotate { by; _ } -> by > 0 && by < b | Reverse _ | Halfswap _ -> true

let src_index t i =
  let b = period t in
  let blk = i / b * b and pos = i mod b in
  blk
  +
  match t with
  | Reverse _ -> b - 1 - pos
  | Halfswap _ -> (pos + (b / 2)) mod b
  | Rotate { by; _ } -> (pos + by) mod b

let offsets t =
  Array.init (period t) (fun i -> src_index t i - i)

let supported t ~lanes = lanes mod period t = 0

let offsets_for t ~lanes =
  if not (supported t ~lanes) then
    invalid_arg "Perm.offsets_for: pattern not supported at this width";
  let base = offsets t in
  Array.init lanes (fun i -> base.(i mod period t))

let apply t v =
  let n = Array.length v in
  if n mod period t <> 0 then
    invalid_arg "Perm.apply: vector length not a multiple of the period";
  Array.init n (fun i -> v.(src_index t i))

let inverse = function
  | Reverse b -> Reverse b
  | Halfswap b -> Halfswap b
  | Rotate { block; by } -> Rotate { block; by = (block - by) mod block }

let catalog =
  let blocks = [ 2; 4; 8; 16 ] in
  List.concat_map
    (fun b ->
      let rotates =
        if b = 2 then [ Rotate { block = 2; by = 1 } ]
        else [ Rotate { block = b; by = 1 }; Rotate { block = b; by = b - 1 } ]
      in
      (if b > 2 then [ Reverse b; Halfswap b ] else [])
      @ rotates)
    blocks

let equal (a : t) b = a = b

let find_by_offsets observed =
  let lanes = Array.length observed in
  let matches p =
    supported p ~lanes && offsets_for p ~lanes = observed
  in
  List.find_opt matches catalog

let find_by_offset_stream values ~len =
  if len < 1 || len > Array.length values then None
  else
    let matches p =
      let b = period p in
      len >= b
      &&
      let base = offsets p in
      let ok = ref true in
      for e = 0 to len - 1 do
        if values.(e) <> base.(e mod b) then ok := false
      done;
      !ok
    in
    List.find_opt matches catalog

let pp ppf = function
  | Reverse b -> Format.fprintf ppf "reverse.%d" b
  | Halfswap b -> Format.fprintf ppf "bfly.%d" b
  | Rotate { block; by } -> Format.fprintf ppf "rot.%d.%d" block by
