(** Vector-length-agnostic (SVE-style) accelerator instructions.

    The second translation target. Where the fixed-width target
    ({!Vinsn}) encodes the lane count into the loop structure — the
    induction step advances by the width, so the trip count must divide
    evenly — this target never names a width at all. Loop control runs
    on {e predicate registers}: a [whilelt] instruction compares the
    induction counter against the trip count and produces a prefix
    predicate of however many lanes remain, every body operation is
    guarded by that predicate (inactive lanes are zeroed, loads and
    stores touch only active elements), and [incvl] advances the counter
    by the hardware's vector length. A trip count that is not a multiple
    of the lane width therefore executes as one predicated final
    iteration instead of a scalar cleanup loop (Stephens et al., {e The
    ARM Scalable Vector Extension}).

    Because [whilelt] only ever produces prefix predicates (lanes
    [0..k-1] active), a predicate value is represented throughout the
    simulator as its active-lane count [k], with
    [0 <= k <=] the hardware lane count. *)

open Liquid_isa

type preg
(** A predicate register name ([p0]..[p7]). *)

val preg_count : int
(** Number of architectural predicate registers (8). *)

val p0 : preg
(** The governing predicate the translator allocates for loop control. *)

val preg_make : int -> preg
(** [preg_make i] is [pi]. Raises [Invalid_argument] outside
    [0..preg_count-1]. *)

val preg_index : preg -> int
(** The register number: [preg_index (preg_make i) = i]. *)

val preg_equal : preg -> preg -> bool

val pp_preg : Format.formatter -> preg -> unit
(** Prints the assembly name, e.g. [p0]. *)

(** Like {!Vinsn.t}, the type is polymorphic in the data-symbol
    representation: symbolic names in assembly form, absolute addresses
    in executable form. *)
type 'sym t =
  | Whilelt of { pred : preg; counter : Reg.t; bound : int }
      (** [pred := prefix of min(max(bound - counter, 0), lanes) active
          lanes]; also sets the scalar condition flags from the signed
          comparison of [counter] with [bound], so the loop back-edge
          remains an ordinary [b.lt]. *)
  | Pred of { pred : preg; v : 'sym Vinsn.t }
      (** [v] executed under governing predicate [pred] with zeroing
          semantics: inactive destination lanes are cleared, inactive
          load/store lanes touch no memory, and reductions fold active
          lanes only. *)
  | Incvl of { dst : Reg.t }
      (** [dst := dst + lanes] — advance the element counter by the
          hardware vector length, whatever it is. *)
  | Tblidx of { pattern : Perm.t }
      (** Materialize the table-lookup index vector for [pattern] from
          the hardware's actual vector length — the runtime index build
          that makes a fixed-geometry permutation length-agnostic (the
          SVE [index]/[tbl] preamble idiom). Placed once in the region
          prologue, before the loop header, so the build cost is paid
          per region call rather than per iteration. Purely
          register-state setup: no memory traffic, no flags. *)
  | Tbl of {
      pred : preg;
      esize : Esize.t;
      signed : bool;
      dst : Vreg.t;
      base : 'sym Insn.base;
      counter : Reg.t;
      pattern : Perm.t;
    }
      (** Predicated table-lookup gather: for each active lane [j] of
          [pred], load element [Perm.src_index pattern (counter + j)] of
          the array at [base] into [dst.(j)], zeroing inactive lanes.
          Because the lookup indexes the {e memory} element stream
          rather than the lanes of one register, it reproduces the
          scalar loop's permuted access order exactly — at any hardware
          width, including widths smaller than the pattern's period and
          predicated final iterations. *)
  | Tblst of {
      pred : preg;
      esize : Esize.t;
      src : Vreg.t;
      base : 'sym Insn.base;
      counter : Reg.t;
      pattern : Perm.t;
    }
      (** Predicated table-lookup scatter — the store-side dual of
          {!Tbl}: for each active lane [j] of [pred], store [src.(j)] to
          element [Perm.src_index pattern (counter + j)] of the array at
          [base]. [pattern] is the {e store-side} pattern as observed in
          the scalar offset stream (the inverse of the gather that would
          reorder the register), so the written addresses match the
          scalar loop's verbatim. *)

type asm = string t
(** Assembly form: data symbols are names. *)

type exec = int t
(** Executable form: data symbols are absolute addresses. *)

val map_sym : ('a -> 'b) -> 'a t -> 'b t
(** Rewrite the data-symbol representation of the wrapped instruction. *)

val is_vector : 'a t -> bool
(** [true] for {!Pred} and the table-lookup family ({!Tblidx}, {!Tbl},
    {!Tblst}) — the datapath operations; [Whilelt] and [Incvl] are
    loop-control overhead and account as scalar work. *)

val defs_pred : 'a t -> preg list
(** Predicate registers the instruction writes ([Whilelt]). *)

val uses_pred : 'a t -> preg list
(** Predicate registers the instruction reads ([Pred], [Tbl],
    [Tblst]). *)

val defs_vector : 'a t -> Vreg.t list
(** Vector registers written, delegating to the wrapped instruction;
    [Tbl] writes its gather destination. *)

val uses_vector : 'a t -> Vreg.t list
(** Vector registers read, delegating to the wrapped instruction;
    [Tblst] reads the register it scatters. *)

val defs_scalar : 'a t -> Reg.t list
(** Scalar registers written: the [Whilelt] flags side effect is not a
    register; [Incvl] writes its counter. *)

val uses_scalar : 'a t -> Reg.t list
(** Scalar registers read (counters, indices, accumulators; the element
    counter and any register base of [Tbl]/[Tblst]). *)

val equal : ('s -> 's -> bool) -> 's t -> 's t -> bool
(** Structural equality, parameterized by symbol equality. *)

val equal_exec : exec -> exec -> bool

val pp :
  pp_sym:(Format.formatter -> 'sym -> unit) -> Format.formatter -> 'sym t -> unit
(** Prints SVE-flavoured assembly, e.g.
    [whilelt p0, r0, #15] / [vadd.p0/z v1, v1, v2] / [incvl r0]. *)

val pp_asm : Format.formatter -> asm -> unit
(** {!pp} with symbolic names. *)

val pp_exec : Format.formatter -> exec -> unit
(** {!pp} with resolved addresses. *)
