open Liquid_isa

type preg = int

let preg_count = 8
let p0 = 0
let preg_make i =
  if i < 0 || i >= preg_count then invalid_arg "Vla.preg_make" else i
let preg_index p = p
let preg_equal (a : preg) (b : preg) = a = b
let pp_preg ppf p = Format.fprintf ppf "p%d" p

type 'sym t =
  | Whilelt of { pred : preg; counter : Reg.t; bound : int }
  | Pred of { pred : preg; v : 'sym Vinsn.t }
  | Incvl of { dst : Reg.t }
  | Tblidx of { pattern : Perm.t }
  | Tbl of {
      pred : preg;
      esize : Esize.t;
      signed : bool;
      dst : Vreg.t;
      base : 'sym Insn.base;
      counter : Reg.t;
      pattern : Perm.t;
    }
  | Tblst of {
      pred : preg;
      esize : Esize.t;
      src : Vreg.t;
      base : 'sym Insn.base;
      counter : Reg.t;
      pattern : Perm.t;
    }

type asm = string t
type exec = int t

let map_base f = function
  | Insn.Sym s -> Insn.Sym (f s)
  | Insn.Breg r -> Insn.Breg r

let base_uses = function Insn.Sym _ -> [] | Insn.Breg r -> [ r ]

let equal_base eq_sym a b =
  match (a, b) with
  | Insn.Sym x, Insn.Sym y -> eq_sym x y
  | Insn.Breg x, Insn.Breg y -> Reg.equal x y
  | (Insn.Sym _ | Insn.Breg _), (Insn.Sym _ | Insn.Breg _) -> false

let pp_base pp_sym ppf = function
  | Insn.Sym s -> pp_sym ppf s
  | Insn.Breg r -> Reg.pp ppf r

let map_sym f = function
  | Whilelt w -> Whilelt w
  | Pred { pred; v } -> Pred { pred; v = Vinsn.map_sym f v }
  | Incvl i -> Incvl i
  | Tblidx t -> Tblidx t
  | Tbl t -> Tbl { t with base = map_base f t.base }
  | Tblst t -> Tblst { t with base = map_base f t.base }

let is_vector = function
  | Pred _ | Tblidx _ | Tbl _ | Tblst _ -> true
  | Whilelt _ | Incvl _ -> false

let defs_pred = function
  | Whilelt { pred; _ } -> [ pred ]
  | Pred _ | Incvl _ | Tblidx _ | Tbl _ | Tblst _ -> []

let uses_pred = function
  | Pred { pred; _ } | Tbl { pred; _ } | Tblst { pred; _ } -> [ pred ]
  | Whilelt _ | Incvl _ | Tblidx _ -> []

let defs_vector = function
  | Pred { v; _ } -> Vinsn.defs_vector v
  | Tbl { dst; _ } -> [ dst ]
  | Whilelt _ | Incvl _ | Tblidx _ | Tblst _ -> []

let uses_vector = function
  | Pred { v; _ } -> Vinsn.uses_vector v
  | Tblst { src; _ } -> [ src ]
  | Whilelt _ | Incvl _ | Tblidx _ | Tbl _ -> []

let defs_scalar = function
  | Whilelt _ | Tblidx _ | Tbl _ | Tblst _ -> []
  | Pred { v; _ } -> Vinsn.defs_scalar v
  | Incvl { dst } -> [ dst ]

let uses_scalar = function
  | Whilelt { counter; _ } -> [ counter ]
  | Pred { v; _ } -> Vinsn.uses_scalar v
  | Incvl { dst } -> [ dst ]
  | Tblidx _ -> []
  | Tbl { counter; base; _ } | Tblst { counter; base; _ } ->
      counter :: base_uses base

let equal eq_sym a b =
  match (a, b) with
  | Whilelt x, Whilelt y ->
      preg_equal x.pred y.pred
      && Reg.equal x.counter y.counter
      && x.bound = y.bound
  | Pred x, Pred y -> preg_equal x.pred y.pred && Vinsn.equal eq_sym x.v y.v
  | Incvl x, Incvl y -> Reg.equal x.dst y.dst
  | Tblidx x, Tblidx y -> Perm.equal x.pattern y.pattern
  | Tbl x, Tbl y ->
      preg_equal x.pred y.pred && x.esize = y.esize && x.signed = y.signed
      && Vreg.equal x.dst y.dst
      && equal_base eq_sym x.base y.base
      && Reg.equal x.counter y.counter
      && Perm.equal x.pattern y.pattern
  | Tblst x, Tblst y ->
      preg_equal x.pred y.pred && x.esize = y.esize
      && Vreg.equal x.src y.src
      && equal_base eq_sym x.base y.base
      && Reg.equal x.counter y.counter
      && Perm.equal x.pattern y.pattern
  | ( (Whilelt _ | Pred _ | Incvl _ | Tblidx _ | Tbl _ | Tblst _),
      (Whilelt _ | Pred _ | Incvl _ | Tblidx _ | Tbl _ | Tblst _) ) ->
      false

let equal_exec a b = equal Int.equal a b

let pp ~pp_sym ppf = function
  | Whilelt { pred; counter; bound } ->
      Format.fprintf ppf "whilelt %a, %a, #%d" pp_preg pred Reg.pp counter bound
  | Pred { pred; v } ->
      Format.fprintf ppf "%a/z %a" pp_preg pred (Vinsn.pp ~pp_sym) v
  | Incvl { dst } -> Format.fprintf ppf "incvl %a" Reg.pp dst
  | Tblidx { pattern } -> Format.fprintf ppf "tblidx %a" Perm.pp pattern
  | Tbl { pred; esize; signed; dst; base; counter; pattern } ->
      Format.fprintf ppf "%a/z tbl%s%s.%a %a, [%a + %a]" pp_preg pred
        (Esize.suffix esize)
        (if signed && esize <> Esize.Word then "s" else "")
        Perm.pp pattern Vreg.pp dst (pp_base pp_sym) base Reg.pp counter
  | Tblst { pred; esize; src; base; counter; pattern } ->
      Format.fprintf ppf "%a/z tblst%s.%a [%a + %a], %a" pp_preg pred
        (Esize.suffix esize) Perm.pp pattern (pp_base pp_sym) base Reg.pp
        counter Vreg.pp src

let pp_asm ppf t = pp ~pp_sym:Format.pp_print_string ppf t
let pp_exec ppf t = pp ~pp_sym:(fun ppf a -> Format.fprintf ppf "0x%x" a) ppf t
