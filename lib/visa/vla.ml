open Liquid_isa

type preg = int

let preg_count = 8
let p0 = 0
let preg_make i =
  if i < 0 || i >= preg_count then invalid_arg "Vla.preg_make" else i
let preg_index p = p
let preg_equal (a : preg) (b : preg) = a = b
let pp_preg ppf p = Format.fprintf ppf "p%d" p

type 'sym t =
  | Whilelt of { pred : preg; counter : Reg.t; bound : int }
  | Pred of { pred : preg; v : 'sym Vinsn.t }
  | Incvl of { dst : Reg.t }

type asm = string t
type exec = int t

let map_sym f = function
  | Whilelt w -> Whilelt w
  | Pred { pred; v } -> Pred { pred; v = Vinsn.map_sym f v }
  | Incvl i -> Incvl i

let is_vector = function
  | Pred _ -> true
  | Whilelt _ | Incvl _ -> false

let defs_pred = function
  | Whilelt { pred; _ } -> [ pred ]
  | Pred _ | Incvl _ -> []

let uses_pred = function
  | Pred { pred; _ } -> [ pred ]
  | Whilelt _ | Incvl _ -> []

let defs_vector = function
  | Pred { v; _ } -> Vinsn.defs_vector v
  | Whilelt _ | Incvl _ -> []

let uses_vector = function
  | Pred { v; _ } -> Vinsn.uses_vector v
  | Whilelt _ | Incvl _ -> []

let defs_scalar = function
  | Whilelt _ -> []
  | Pred { v; _ } -> Vinsn.defs_scalar v
  | Incvl { dst } -> [ dst ]

let uses_scalar = function
  | Whilelt { counter; _ } -> [ counter ]
  | Pred { v; _ } -> Vinsn.uses_scalar v
  | Incvl { dst } -> [ dst ]

let equal eq_sym a b =
  match (a, b) with
  | Whilelt x, Whilelt y ->
      preg_equal x.pred y.pred
      && Reg.equal x.counter y.counter
      && x.bound = y.bound
  | Pred x, Pred y -> preg_equal x.pred y.pred && Vinsn.equal eq_sym x.v y.v
  | Incvl x, Incvl y -> Reg.equal x.dst y.dst
  | (Whilelt _ | Pred _ | Incvl _), (Whilelt _ | Pred _ | Incvl _) -> false

let equal_exec a b = equal Int.equal a b

let pp ~pp_sym ppf = function
  | Whilelt { pred; counter; bound } ->
      Format.fprintf ppf "whilelt %a, %a, #%d" pp_preg pred Reg.pp counter bound
  | Pred { pred; v } ->
      Format.fprintf ppf "%a/z %a" pp_preg pred (Vinsn.pp ~pp_sym) v
  | Incvl { dst } -> Format.fprintf ppf "incvl %a" Reg.pp dst

let pp_asm ppf t = pp ~pp_sym:Format.pp_print_string ppf t
let pp_exec ppf t = pp ~pp_sym:(fun ppf a -> Format.fprintf ppf "0x%x" a) ppf t
