(** Vector permutation patterns.

    A pattern reorders the elements of one hardware vector. Each pattern
    has a {e period} [b] — the block size it is defined over — and is
    applied blockwise to wider vectors, as Neon-style permutes act within
    a register. A [w]-lane accelerator supports a pattern iff its period
    divides [w].

    Gather semantics: [dst.(i) = src.(i + offset i)] where offsets repeat
    with the period. The offset form matches how the paper's scalar
    representation encodes permutations: a read-only array of offsets is
    added to the loop induction variable before the memory access
    (Table 1, categories 7 and 8). The offsets uniquely identify the
    pattern, which is exactly what the translator's CAM matches on. *)

type t =
  | Reverse of int  (** [Reverse b]: block-wise element reversal. *)
  | Halfswap of int
      (** [Halfswap b]: exchange the two halves of each block — the
          [vbfly] butterfly of the paper's FFT example. *)
  | Rotate of { block : int; by : int }
      (** [Rotate {block; by}]: [dst.(i) = src.((i + by) mod block)]
          blockwise. *)

val pairswap : t
(** [Rotate {block = 2; by = 1}] — swap adjacent even/odd pairs. *)

val period : t -> int
(** The block size the pattern is defined over. *)

val well_formed : t -> bool
(** Period is a power of two in 2..16 and rotation amounts are in range. *)

val src_index : t -> int -> int
(** [src_index t i] is the element the pattern reads to produce element
    [i]: the permutation acts blockwise, so
    [src_index t i = (i / b * b) + perm (i mod b)] for period [b]. Total
    over all [i >= 0] — this is what the VLA table-lookup ops evaluate
    per active lane to reproduce the scalar access stream. *)

val offsets : t -> int array
(** Length {!period}; entry [i] is [src_index(i) - i]. *)

val offsets_for : t -> lanes:int -> int array
(** Offsets tiled to a full vector of [lanes] elements. The pattern must
    be supported at that width. *)

val supported : t -> lanes:int -> bool
(** Whether a [lanes]-wide accelerator can execute the pattern: the
    period must divide the lane count. *)

val apply : t -> int array -> int array
(** Permute a vector whose length is a multiple of the period. *)

val inverse : t -> t
(** The pattern [q] with [apply q (apply t v) = v]. Store-side
    permutations (scatter) observed by the translator are the inverse of
    the gather pattern that must be emitted before the vector store. *)

val catalog : t list
(** Patterns recognized by the hardware CAM (paper §4.1). *)

val find_by_offsets : int array -> t option
(** CAM lookup: given the offsets observed for one full hardware vector
    (length = lane count), return the unique catalog pattern producing
    them, if any. *)

val find_by_offset_stream : int array -> len:int -> t option
(** Length-agnostic CAM lookup: match the first [len] entries of a raw
    per-element offset stream (one offset per scalar iteration, in
    execution order) against each catalog pattern tiled at its {e own}
    period. Unlike {!find_by_offsets}, the stream length need not relate
    to any lane count — this is the VLA translator's matcher, where the
    hardware width may be smaller than the pattern's period. A pattern
    matches only when [len >= period], so at least one full block was
    observed. Returns [None] when [len < 1] or exceeds the stream. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Prints the assembly mnemonic, e.g. [rev.4] or [bfly.8]. *)
