(** SIMD accelerator instructions (Neon-like).

    Like {!Liquid_isa.Insn}, the type is polymorphic in the data-symbol
    representation: symbolic names in assembly form, absolute addresses in
    executable form. Vector instructions never carry branch targets — the
    accelerator shares the front end with the scalar pipeline (paper §3.1).

    A vector register holds [w] lanes of 32-bit words, where [w] is the
    accelerator width. Memory instructions move [w] consecutive elements
    of the given element size starting at [base + index * element_bytes];
    the scalar [index] register counts {e elements}, matching the scalar
    representation's induction variable. *)

open Liquid_isa

type vsrc =
  | VR of Vreg.t
  | VImm of int  (** splatted scalar immediate *)
  | VConst of int array
      (** per-lane constant vector (length = accelerator width), e.g. a
          reconstructed mask or non-splattable constant — paper Table 1
          category 3 *)

type 'sym t =
  | Vld of {
      esize : Esize.t;
      signed : bool;
      dst : Vreg.t;
      base : 'sym Insn.base;
      index : Reg.t;
    }
  | Vst of { esize : Esize.t; src : Vreg.t; base : 'sym Insn.base; index : Reg.t }
  | Vlds of {
      esize : Esize.t;
      signed : bool;
      dst : Vreg.t;
      base : 'sym Insn.base;
      index : Reg.t;
      stride : int;
      phase : int;
    }
      (** {e Extension} (the paper's unsupported interleaved accesses,
          §3.3): lane [i] loads element [stride * (index + i) + phase] —
          the de-interleaving [VLD2]/[VLD4] shape. [stride] is 2 or 4;
          [0 <= phase < stride]. *)
  | Vsts of {
      esize : Esize.t;
      src : Vreg.t;
      base : 'sym Insn.base;
      index : Reg.t;
      stride : int;
      phase : int;
    }
      (** Interleaving store: lane [i] goes to element
          [stride * (index + i) + phase]. *)
  | Vgather of {
      esize : Esize.t;
      signed : bool;
      dst : Vreg.t;
      base : 'sym Insn.base;
      index_v : Vreg.t;
    }
      (** {e Extension} (the paper's unsupported [VTBL], §3.3): lane [i]
          loads element [index_v.(i)] of the table at [base] — a
          runtime-indexed permutation / table lookup. *)
  | Vdp of { op : Opcode.t; dst : Vreg.t; src1 : Vreg.t; src2 : vsrc }
  | Vsat of {
      op : [ `Add | `Sub ];
      esize : Esize.t;
      signed : bool;
      dst : Vreg.t;
      src1 : Vreg.t;
      src2 : Vreg.t;
    }
  | Vperm of { pattern : Perm.t; dst : Vreg.t; src : Vreg.t }
  | Vred of { op : Opcode.t; acc : Reg.t; src : Vreg.t }
      (** [acc = op (acc, op-fold over lanes of src)]: a reduction that
          combines with a scalar accumulator, the direct SIMD image of the
          loop-carried scalar form in Table 1 category 4. *)

type asm = string t
(** Assembly form: data symbols are names. *)

type exec = int t
(** Executable form: data symbols are absolute addresses. *)

val map_sym : ('a -> 'b) -> 'a t -> 'b t
(** Rewrite the data-symbol representation (layout resolves [asm] to
    [exec] with it). *)

val defs_vector : 'a t -> Vreg.t list
(** Vector registers the instruction writes. *)

val uses_vector : 'a t -> Vreg.t list
(** Vector registers the instruction reads. *)

val defs_scalar : 'a t -> Reg.t list
(** Scalar registers the instruction writes (reduction accumulators). *)

val uses_scalar : 'a t -> Reg.t list
(** Scalar registers the instruction reads (indices, accumulators). *)

val equal : ('s -> 's -> bool) -> 's t -> 's t -> bool
(** Structural equality, parameterized by symbol equality. *)

val equal_exec : exec -> exec -> bool

val pp :
  pp_sym:(Format.formatter -> 'sym -> unit) -> Format.formatter -> 'sym t -> unit
(** Prints assembly syntax with [pp_sym] for data symbols. *)

val pp_asm : Format.formatter -> asm -> unit
(** {!pp} with symbolic names. *)

val pp_exec : Format.formatter -> exec -> unit
(** {!pp} with resolved addresses. *)
