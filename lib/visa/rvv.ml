open Liquid_isa

type 'sym t =
  | Vsetvl of { counter : Reg.t; bound : int }
  | Vl of { v : 'sym Vinsn.t }
  | Addvl of { dst : Reg.t }
  | Tblidx of { pattern : Perm.t }
  | Tbl of {
      esize : Esize.t;
      signed : bool;
      dst : Vreg.t;
      base : 'sym Insn.base;
      counter : Reg.t;
      pattern : Perm.t;
    }
  | Tblst of {
      esize : Esize.t;
      src : Vreg.t;
      base : 'sym Insn.base;
      counter : Reg.t;
      pattern : Perm.t;
    }

type asm = string t
type exec = int t

let map_base f = function
  | Insn.Sym s -> Insn.Sym (f s)
  | Insn.Breg r -> Insn.Breg r

let base_uses = function Insn.Sym _ -> [] | Insn.Breg r -> [ r ]

let equal_base eq_sym a b =
  match (a, b) with
  | Insn.Sym x, Insn.Sym y -> eq_sym x y
  | Insn.Breg x, Insn.Breg y -> Reg.equal x y
  | (Insn.Sym _ | Insn.Breg _), (Insn.Sym _ | Insn.Breg _) -> false

let pp_base pp_sym ppf = function
  | Insn.Sym s -> pp_sym ppf s
  | Insn.Breg r -> Reg.pp ppf r

let map_sym f = function
  | Vsetvl s -> Vsetvl s
  | Vl { v } -> Vl { v = Vinsn.map_sym f v }
  | Addvl a -> Addvl a
  | Tblidx t -> Tblidx t
  | Tbl t -> Tbl { t with base = map_base f t.base }
  | Tblst t -> Tblst { t with base = map_base f t.base }

let is_vector = function
  | Vl _ | Tblidx _ | Tbl _ | Tblst _ -> true
  | Vsetvl _ | Addvl _ -> false

let defs_vector = function
  | Vl { v } -> Vinsn.defs_vector v
  | Tbl { dst; _ } -> [ dst ]
  | Vsetvl _ | Addvl _ | Tblidx _ | Tblst _ -> []

let uses_vector = function
  | Vl { v } -> Vinsn.uses_vector v
  | Tblst { src; _ } -> [ src ]
  | Vsetvl _ | Addvl _ | Tblidx _ | Tbl _ -> []

let defs_scalar = function
  | Vsetvl _ | Tblidx _ | Tbl _ | Tblst _ -> []
  | Vl { v } -> Vinsn.defs_scalar v
  | Addvl { dst } -> [ dst ]

let uses_scalar = function
  | Vsetvl { counter; _ } -> [ counter ]
  | Vl { v } -> Vinsn.uses_scalar v
  | Addvl { dst } -> [ dst ]
  | Tblidx _ -> []
  | Tbl { counter; base; _ } | Tblst { counter; base; _ } ->
      counter :: base_uses base

let equal eq_sym a b =
  match (a, b) with
  | Vsetvl x, Vsetvl y -> Reg.equal x.counter y.counter && x.bound = y.bound
  | Vl x, Vl y -> Vinsn.equal eq_sym x.v y.v
  | Addvl x, Addvl y -> Reg.equal x.dst y.dst
  | Tblidx x, Tblidx y -> Perm.equal x.pattern y.pattern
  | Tbl x, Tbl y ->
      x.esize = y.esize && x.signed = y.signed
      && Vreg.equal x.dst y.dst
      && equal_base eq_sym x.base y.base
      && Reg.equal x.counter y.counter
      && Perm.equal x.pattern y.pattern
  | Tblst x, Tblst y ->
      x.esize = y.esize
      && Vreg.equal x.src y.src
      && equal_base eq_sym x.base y.base
      && Reg.equal x.counter y.counter
      && Perm.equal x.pattern y.pattern
  | ( (Vsetvl _ | Vl _ | Addvl _ | Tblidx _ | Tbl _ | Tblst _),
      (Vsetvl _ | Vl _ | Addvl _ | Tblidx _ | Tbl _ | Tblst _) ) ->
      false

let equal_exec a b = equal Int.equal a b

let pp ~pp_sym ppf = function
  | Vsetvl { counter; bound } ->
      Format.fprintf ppf "vsetvl vl, %a, #%d" Reg.pp counter bound
  | Vl { v } -> Format.fprintf ppf "vl/%a" (Vinsn.pp ~pp_sym) v
  | Addvl { dst } -> Format.fprintf ppf "add %a, %a, vl" Reg.pp dst Reg.pp dst
  | Tblidx { pattern } -> Format.fprintf ppf "vidx %a" Perm.pp pattern
  | Tbl { esize; signed; dst; base; counter; pattern } ->
      Format.fprintf ppf "vl/vlux%s%s.%a %a, [%a + %a]" (Esize.suffix esize)
        (if signed && esize <> Esize.Word then "s" else "")
        Perm.pp pattern Vreg.pp dst (pp_base pp_sym) base Reg.pp counter
  | Tblst { esize; src; base; counter; pattern } ->
      Format.fprintf ppf "vl/vsux%s.%a [%a + %a], %a" (Esize.suffix esize)
        Perm.pp pattern (pp_base pp_sym) base Reg.pp counter Vreg.pp src

let pp_asm ppf t = pp ~pp_sym:Format.pp_print_string ppf t
let pp_exec ppf t = pp ~pp_sym:(fun ppf a -> Format.fprintf ppf "0x%x" a) ppf t
