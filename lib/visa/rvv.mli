(** RVV-style stripmined accelerator instructions.

    The third translation target, modelled on the RISC-V "V" vector
    extension. Where the fixed-width target ({!Vinsn}) bakes the lane
    count into the loop structure and the VLA target ({!Vla}) masks the
    remainder with predicate registers, this target negotiates the
    remainder through the {e vector-length CSR}: before each iteration a
    [vsetvl] instruction {e requests} the remaining application vector
    length ([bound - counter]) and the hardware {e grants}
    [vl = min(remaining, lanes)]. Every body operation then processes
    exactly [vl] elements — no per-operation mask, no scalar epilogue; a
    trip count that does not divide the hardware width simply runs its
    final iteration under a shortened grant. The induction counter
    advances by the granted [vl], so the loop consumes exactly [bound]
    elements in [ceil(bound / lanes)] trips (the NEON-to-RVV mapping
    study in PAPERS.md catalogues this stripmining idiom as the
    replacement for both fixed epilogues and predication).

    There are no predicate registers: the single [vl] grant governs
    every vector operation until the next [vsetvl]. The simulator stores
    the grant as an element count in the execution context, exactly like
    a VLA prefix predicate of [vl] active lanes. *)

open Liquid_isa

(** Like {!Vinsn.t}, the type is polymorphic in the data-symbol
    representation: symbolic names in assembly form, absolute addresses
    in executable form. *)
type 'sym t =
  | Vsetvl of { counter : Reg.t; bound : int }
      (** Request-grant pair: [vl := min(max(bound - counter, 0), lanes)]
          — the hardware grants at most its vector length, and the final
          trip's request comes back shortened. Also sets the scalar
          condition flags from the signed comparison of [counter] with
          [bound], so the loop back-edge remains an ordinary [b.lt]
          (structurally symmetric to {!Vla.Whilelt}). *)
  | Vl of { v : 'sym Vinsn.t }
      (** [v] executed under the current [vl] grant: lanes [0..vl-1]
          compute, loads and stores touch only granted elements, and
          tail lanes of the destination are zeroed (the RVV
          tail-agnostic policy, pinned to zero here so replays are
          bit-reproducible). A full grant ([vl = lanes]) runs the
          unmasked fixed-width semantics verbatim. *)
  | Addvl of { dst : Reg.t }
      (** [dst := dst + vl] — advance the element counter by however
          many elements the last grant covered. Under a full grant this
          equals the hardware width; on the final trip it advances by
          the shortened grant, landing the counter exactly on the
          bound. *)
  | Tblidx of { pattern : Perm.t }
      (** Materialize the index vector for [pattern] from the runtime
          vector length — the once-per-call preamble feeding the indexed
          load/store pair below (the RVV [vid]/[vrgather] idiom). Placed
          in the region prologue, outside the stripmine loop. Purely
          register-state setup: no memory traffic, no flags. *)
  | Tbl of {
      esize : Esize.t;
      signed : bool;
      dst : Vreg.t;
      base : 'sym Insn.base;
      counter : Reg.t;
      pattern : Perm.t;
    }
      (** Indexed table-lookup gather under the [vl] grant: for each
          granted lane [j], load element
          [Perm.src_index pattern (counter + j)] of the array at [base]
          into [dst.(j)], zeroing tail lanes (the RVV [vluxei] analog of
          {!Vla.Tbl}). Indexes the memory element stream rather than
          register lanes, so the scalar loop's permuted access order is
          reproduced exactly at any grant, including the shortened final
          trip. *)
  | Tblst of {
      esize : Esize.t;
      src : Vreg.t;
      base : 'sym Insn.base;
      counter : Reg.t;
      pattern : Perm.t;
    }
      (** Indexed table-lookup scatter — the store-side dual of {!Tbl}
          (the RVV [vsuxei] analog of {!Vla.Tblst}): for each granted
          lane [j], store [src.(j)] to element
          [Perm.src_index pattern (counter + j)] of the array at [base].
          [pattern] is the store-side pattern as observed in the scalar
          offset stream, so the written addresses match the scalar
          loop's verbatim. *)

type asm = string t
(** Assembly form: data symbols are names. *)

type exec = int t
(** Executable form: data symbols are absolute addresses. *)

val map_sym : ('a -> 'b) -> 'a t -> 'b t
(** Rewrite the data-symbol representation of the wrapped instruction. *)

val is_vector : 'a t -> bool
(** [true] for {!Vl} and the table-lookup family ({!Tblidx}, {!Tbl},
    {!Tblst}) — the datapath operations; [Vsetvl] and [Addvl] are
    loop-control overhead and account as scalar work. *)

val defs_vector : 'a t -> Vreg.t list
(** Vector registers written, delegating to the wrapped instruction;
    [Tbl] writes its gather destination. *)

val uses_vector : 'a t -> Vreg.t list
(** Vector registers read, delegating to the wrapped instruction;
    [Tblst] reads the register it scatters. *)

val defs_scalar : 'a t -> Reg.t list
(** Scalar registers written: the [vl] CSR and the [Vsetvl] flags side
    effect are not registers; [Addvl] writes its counter. *)

val uses_scalar : 'a t -> Reg.t list
(** Scalar registers read (counters, indices, accumulators; the element
    counter and any register base of [Tbl]/[Tblst]). *)

val equal : ('s -> 's -> bool) -> 's t -> 's t -> bool
(** Structural equality, parameterized by symbol equality. *)

val equal_exec : exec -> exec -> bool
(** {!equal} over resolved addresses. *)

val pp :
  pp_sym:(Format.formatter -> 'sym -> unit) -> Format.formatter -> 'sym t -> unit
(** Prints RVV-flavoured assembly, e.g.
    [vsetvl vl, r0, #15] / [vl/vadd v1, v1, v2] / [add r0, r0, vl]. *)

val pp_asm : Format.formatter -> asm -> unit
(** {!pp} with symbolic names. *)

val pp_exec : Format.formatter -> exec -> unit
(** {!pp} with resolved addresses. *)
