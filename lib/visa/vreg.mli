(** Vector architectural registers v0..v15 of the SIMD accelerator. *)

type t

val count : int
(** Number of architectural vector registers (16). *)

val make : int -> t
(** [make i] is [vi]. Raises [Invalid_argument] outside [0..count-1]. *)

val index : t -> int
(** The register number: [index (make i) = i]. *)

val equal : t -> t -> bool

val compare : t -> t -> int
(** Total order by register number. *)

val pp : Format.formatter -> t -> unit
(** Prints the assembly name, e.g. [v3]. *)

val name : t -> string
(** The assembly name as a string, e.g. ["v3"]. *)

val all : t list
(** All registers, [v0] first. *)

val of_scalar : Liquid_isa.Reg.t -> t
(** The vector register shadowing a scalar register. The dynamic
    translator maps scalar register [ri] of the virtualized loop to
    vector register [vi], preserving the paper's one-to-one register
    state (section 4.1). *)
