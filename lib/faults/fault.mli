(** The fault taxonomy and the seeded deterministic injector.

    Every fault attacks the {e translation} path of the Liquid SIMD
    machine — the part the paper claims may fail at any point without
    affecting correctness (HPCA 2007 §3.2/§4.2). None of them touch the
    executed scalar stream, so the scalar-equivalence oracle
    ({!Oracle}) must hold after any of them. *)

open Liquid_translate
open Liquid_pipeline

(** Deterministic splitmix64 generator: campaigns are reproducible from
    a single integer seed. *)
module Rng : sig
  type t

  val make : int -> t
  val next : t -> int64
  val int : t -> int -> int
  (** [int t bound] is uniform in [\[0, bound)]; [bound] must be > 0. *)

  val pick : t -> 'a list -> 'a
end

type t =
  | Force_abort of { site : int; abort : Abort.t }
      (** inject [abort] into the live translation session at the
          [site]-th instruction the translator observes (a global index
          across all sessions of the run) *)
  | Corrupt_feed of { site : int }
      (** replace the [site]-th observed instruction with an
          untranslatable one — a decode glitch on the translation path *)
  | Evict_ucode of { call : int }
      (** evict the region's microcode entry just before the [call]-th
          region call of the run *)
  | Exhaust_fuel of { budget : int }
      (** run with a retired-instruction watchdog of [budget]; the run
          must stop with a structured [Fuel_exhausted] diagnostic *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

type armed = {
  hooks : Cpu.fault_hooks option;  (** to place in {!Cpu.config.faults} *)
  fuel : int option;  (** watchdog override, for {!Exhaust_fuel} *)
  fired : unit -> int;  (** how many times the fault actually triggered *)
}

val arm : t -> armed
(** Compile a fault into CPU hooks closing over their own trigger
    counters. Arm a fresh value per run — [armed] is single-use. *)

val no_hooks : Cpu.fault_hooks
(** Hooks that never fire (a convenient base for partial overrides). *)

type space = {
  sp_feeds : int;  (** translator feed events across the whole run *)
  sp_calls : int;  (** region calls across the whole run *)
  sp_retired : int;  (** instructions retired by the clean run *)
}

val counting_hooks : unit -> Cpu.fault_hooks * int ref
(** Probe hooks: inject nothing, count translator feed events. Used to
    measure the addressable site space of a clean run. *)
