(** The scalar-equivalence oracle.

    The paper's abort-safety claim (§3.2/§4.2): whatever the dynamic
    translator does — succeed, abort at any DFA state, lose its
    microcode to an eviction — the architectural state at [halt] must
    match what the pure scalar execution of the same binary produces.
    This module states that as a checkable predicate over FNV
    fingerprints ({!Fingerprint}): all of data memory byte-for-byte,
    and every register outside a measured dead-scratch mask
    ({!junk_mask}). *)

open Liquid_prog
open Liquid_pipeline
open Liquid_workloads

val mask_of_image : Image.t -> bool array
(** The dead-scratch register mask of one image, computed directly (no
    memoization): [lr] plus every register defined inside an outlined
    region body, scanned entry → ret. This is what differential drivers
    over {e generated} programs use — {!junk_mask} memoizes by workload
    name, which would alias distinct generated cases. *)

val junk_mask : Workload.t -> bool array
(** Registers whose final value is dead region scratch: [lr] (a
    microcode-served call substitutes the whole outlined function, so
    the branch-and-link never architecturally writes it) plus every
    register defined inside an outlined region body (scanned statically
    in the image, entry → ret). A correct translation is free to leave
    different last-iteration junk in those — and which region's junk
    survives at halt depends on which calls ran scalar versus from
    microcode — so the oracle zeroes them before hashing. Region
    results still get checked end-to-end: every workload stores its
    output to memory, which the oracle compares in full. Memoized per
    workload; treat the shared array as read-only. *)

type fp = { fp_regs : int; fp_mem : int }

val fingerprint : Workload.t -> Image.t -> Cpu.run -> fp
(** Masked register hash plus [mem_hash] of the data arrays. *)

val reference : Workload.t -> fp
(** Fingerprint of the pure-scalar run of the {e Liquid} binary
    ([Runner.Liquid_scalar]), memoized process-wide. *)

type mismatch = { m_want : fp; m_got : fp }

val check : Workload.t -> Image.t -> Cpu.run -> (unit, mismatch) result
val equivalent : Workload.t -> Image.t -> Cpu.run -> bool
val pp_mismatch : Format.formatter -> mismatch -> unit
