open Liquid_isa
open Liquid_prog
module Memory = Liquid_machine.Memory

(* FNV-1a over little-endian bytes; the seed is the standard 64-bit
   offset basis with the top bit dropped so it reads as an OCaml int
   literal. This is the same function the golden differential suite has
   pinned hashes against since PR 1, so the two observers can never
   drift apart. *)
let offset_basis = 0x4bf29ce484222325
let fnv_prime = 0x100000001b3
let fnv_byte h b = (h lxor (b land 0xFF)) * fnv_prime

let fnv_int h v =
  let h = fnv_byte h v in
  let h = fnv_byte h (v asr 8) in
  let h = fnv_byte h (v asr 16) in
  fnv_byte h (v asr 24)

let regs_hash regs = Array.fold_left fnv_int offset_basis regs

let lr_index = Reg.index Reg.lr

let regs_hash_no_lr regs =
  let h = ref offset_basis in
  Array.iteri (fun i v -> h := fnv_int !h (if i = lr_index then 0 else v)) regs;
  !h

let regs_hash_masked ~mask regs =
  let h = ref offset_basis in
  Array.iteri (fun i v -> h := fnv_int !h (if mask.(i) then 0 else v)) regs;
  !h

let mem_hash (image : Image.t) mem =
  List.fold_left
    (fun h (_, addr, (d : Data.t)) ->
      let bytes = Esize.bytes d.Data.esize * Array.length d.Data.values in
      let h = ref h in
      for i = 0 to bytes - 1 do
        h := fnv_byte !h (Memory.read_byte mem (addr + i))
      done;
      !h)
    offset_basis image.Image.arrays
