open Liquid_translate
open Liquid_pipeline

(* --- deterministic seeded RNG (splitmix64) --- *)

module Rng = struct
  type t = { mutable state : int64 }

  let make seed = { state = Int64.of_int seed }

  let next t =
    t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
    let z = t.state in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
        0xBF58476D1CE4E5B9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
        0x94D049BB133111EBL in
    Int64.logxor z (Int64.shift_right_logical z 31)

  let int t bound =
    if bound <= 0 then invalid_arg "Fault.Rng.int: bound must be positive";
    Int64.to_int (Int64.rem (Int64.logand (next t) Int64.max_int)
                    (Int64.of_int bound))

  let pick t l = List.nth l (int t (List.length l))
end

(* --- the fault taxonomy --- *)

type t =
  | Force_abort of { site : int; abort : Abort.t }
  | Corrupt_feed of { site : int }
  | Evict_ucode of { call : int }
  | Exhaust_fuel of { budget : int }

let to_string = function
  | Force_abort { site; abort } ->
      Printf.sprintf "force-abort[%s]@feed:%d" (Abort.class_name abort) site
  | Corrupt_feed { site } -> Printf.sprintf "corrupt-feed@feed:%d" site
  | Evict_ucode { call } -> Printf.sprintf "evict-ucode@call:%d" call
  | Exhaust_fuel { budget } -> Printf.sprintf "exhaust-fuel@%d" budget

let pp ppf t = Format.pp_print_string ppf (to_string t)

(* --- arming a fault as CPU hooks --- *)

type armed = {
  hooks : Cpu.fault_hooks option;
  fuel : int option;
  fired : unit -> int;
}

let no_hooks =
  {
    Cpu.fh_abort = (fun ~entry:_ ~observed:_ -> None);
    Cpu.fh_corrupt = (fun ~entry:_ ~observed:_ -> false);
    Cpu.fh_evict = (fun ~entry:_ ~call:_ -> false);
  }

(* Each armed fault closes over its own feed/call counters, so the
   trigger site is a global index across every translation session of
   the run — "the Nth instruction the translator ever observes" — which
   addresses arbitrary DFA states without the core knowing the plan. *)
let arm fault =
  let fired = ref 0 in
  let read () = !fired in
  match fault with
  | Force_abort { site; abort } ->
      let feeds = ref 0 in
      let hook ~entry:_ ~observed:_ =
        let i = !feeds in
        incr feeds;
        if i = site then begin
          incr fired;
          Some abort
        end
        else None
      in
      { hooks = Some { no_hooks with Cpu.fh_abort = hook }; fuel = None;
        fired = read }
  | Corrupt_feed { site } ->
      let feeds = ref 0 in
      let hook ~entry:_ ~observed:_ =
        let i = !feeds in
        incr feeds;
        if i = site then begin
          incr fired;
          true
        end
        else false
      in
      { hooks = Some { no_hooks with Cpu.fh_corrupt = hook }; fuel = None;
        fired = read }
  | Evict_ucode { call } ->
      let hook ~entry:_ ~call:c =
        if c = call then begin
          incr fired;
          true
        end
        else false
      in
      { hooks = Some { no_hooks with Cpu.fh_evict = hook }; fuel = None;
        fired = read }
  | Exhaust_fuel { budget } ->
      (* No hook: the watchdog itself is the injection point. "Fired" is
         judged from the run outcome, not a counter. *)
      { hooks = None; fuel = Some budget; fired = read }

(* --- probing a clean run for the addressable site space --- *)

type space = {
  sp_feeds : int;  (** translator feed events across the whole run *)
  sp_calls : int;  (** region calls across the whole run *)
  sp_retired : int;  (** instructions retired by the clean run *)
}

let counting_hooks () =
  let feeds = ref 0 in
  let hooks =
    {
      no_hooks with
      Cpu.fh_abort =
        (fun ~entry:_ ~observed:_ ->
          incr feeds;
          None);
    }
  in
  (hooks, feeds)
