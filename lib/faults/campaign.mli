(** Seeded fault-injection campaigns over the workload suite.

    A campaign probes each (workload, width) once to learn its
    addressable site space (translator feed events, region calls,
    retired instructions), draws one deterministic plan from a seed —
    every {!Liquid_translate.Abort.t} class at a random feed site, a
    corrupted feed, a mid-run microcode eviction, a watchdog budget —
    then executes every case crash-isolated on the domain pool and
    judges each against the scalar-equivalence {!Oracle}. *)

open Liquid_translate
open Liquid_workloads

val probe : ?backend:Backend.t -> Workload.t -> width:int -> Fault.space
(** Clean-run site space for one (workload, width, backend); memoized
    process-wide and safe across domains. [backend] (default
    {!Backend.fixed}) selects the translation target under attack. *)

type target = { t_workload : Workload.t; t_width : int; t_fault : Fault.t }

val default_widths : int list
(** The paper's accelerator sweep: 2, 4, 8, 16 lanes. *)

val plan :
  ?backend:Backend.t ->
  ?workloads:Workload.t list ->
  ?widths:int list ->
  seed:int ->
  unit ->
  target list
(** The full deterministic case list for a seed. *)

type verdict =
  | Safe
      (** fault fired; final state matches the scalar oracle, or the
          watchdog stopped the run with its structured diagnostic *)
  | Divergent  (** fault fired and the final state differs from scalar *)
  | Not_triggered  (** the planned site was never reached *)
  | Crashed of string  (** the machine failed to degrade gracefully *)

val verdict_name : verdict -> string

type case = {
  c_workload : string;
  c_width : int;
  c_fault : Fault.t;
  c_verdict : verdict;
}

val run_case : ?backend:Backend.t -> Workload.t -> width:int -> Fault.t -> case
(** Arm the fault, run the Liquid machine, judge the outcome. Never
    raises: machine failures come back as {!Crashed}. *)

type report = {
  r_seed : int;
  r_cases : case list;
  r_injected : int;  (** cases whose fault actually fired *)
  r_safe : int;
  r_divergent : int;
  r_not_triggered : int;
  r_crashed : int;
}

val survived : report -> bool
(** No divergent state and no crash — the abort-safety claim held. *)

val run :
  ?domains:int ->
  ?backend:Backend.t ->
  ?workloads:Workload.t list ->
  ?widths:int list ->
  seed:int ->
  unit ->
  report
(** Plan and execute a campaign on the domain pool. *)

val pp_case : Format.formatter -> case -> unit
val pp_report : Format.formatter -> report -> unit
