(** FNV-1a fingerprints of architectural state.

    One hash function shared by the golden differential suite (which
    pins its values) and the fault-injection oracle (which compares a
    faulted run against the pure-scalar baseline), so the two observers
    can never disagree about what "identical state" means. *)

open Liquid_prog

val fnv_byte : int -> int -> int
(** One FNV-1a step over the low byte of the second argument. *)

val fnv_int : int -> int -> int
(** Four FNV-1a steps over a little-endian 32-bit word. *)

val regs_hash : int array -> int
(** Hash of the full scalar register file. *)

val regs_hash_no_lr : int array -> int
(** {!regs_hash} with the link register's slot hashed as zero. A region
    call served from the microcode cache substitutes the whole outlined
    function (the branch-and-link never architecturally retires), so
    [lr] legitimately differs between a scalar and a translated run of
    the same binary; every other register must match. *)

val regs_hash_masked : mask:bool array -> int array -> int
(** {!regs_hash} with every slot where [mask] is [true] hashed as zero.
    Used by the oracle to exclude dead region scratch (see
    {!Oracle.junk_mask}) while still pinning every live register. *)

val mem_hash : Image.t -> Liquid_machine.Memory.t -> int
(** Hash over every data array's bytes in memory, in image order. *)
