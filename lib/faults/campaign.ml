open Liquid_machine
open Liquid_prog
open Liquid_translate
open Liquid_pipeline
open Liquid_workloads
open Liquid_harness

(* --- probing the addressable site space --- *)

(* One clean Liquid run per (workload, width) with counting-only hooks,
   so the planner knows how many translator feed events, region calls
   and retired instructions a run offers to attack. Memoized
   process-wide (probes are pure), safe across domains. *)

let probe_cache : (string * int * Backend.kind, Fault.space) Hashtbl.t =
  Hashtbl.create 64

let probe_mutex = Mutex.create ()

let probe ?(backend = Backend.fixed) (w : Workload.t) ~width =
  let key = (w.Workload.name, width, Backend.kind_of backend) in
  match
    Mutex.protect probe_mutex (fun () -> Hashtbl.find_opt probe_cache key)
  with
  | Some sp -> sp
  | None ->
      let program = Runner.program_of w (Runner.Liquid width) in
      let hooks, feeds = Fault.counting_hooks () in
      let config =
        {
          (Cpu.liquid_config ~lanes:width) with
          Cpu.backend;
          Cpu.faults = Some hooks;
        }
      in
      let run = Cpu.run ~config (Image.of_program program) in
      let sp =
        {
          Fault.sp_feeds = !feeds;
          sp_calls = run.Cpu.stats.Stats.region_calls;
          sp_retired = Stats.total_insns run.Cpu.stats;
        }
      in
      Mutex.protect probe_mutex (fun () ->
          match Hashtbl.find_opt probe_cache key with
          | Some winner -> winner
          | None ->
              Hashtbl.replace probe_cache key sp;
              sp)

(* --- planning --- *)

type target = { t_workload : Workload.t; t_width : int; t_fault : Fault.t }

(* Every abort class at a seeded feed site, one corrupted feed, one
   microcode eviction, one watchdog budget — per (workload, width).
   Site draws come from one RNG walked in a fixed order, so a seed
   pins the whole campaign. *)
let plan_for ?backend rng (w : Workload.t) ~width =
  let sp = probe ?backend w ~width in
  let site () = if sp.Fault.sp_feeds <= 0 then 0 else Fault.Rng.int rng sp.Fault.sp_feeds in
  let aborts =
    List.map
      (fun abort -> Fault.Force_abort { site = site (); abort })
      Abort.all
  in
  let corrupt = [ Fault.Corrupt_feed { site = site () } ] in
  let evict =
    if sp.Fault.sp_calls <= 0 then []
    else [ Fault.Evict_ucode { call = Fault.Rng.int rng sp.Fault.sp_calls } ]
  in
  let fuel =
    if sp.Fault.sp_retired <= 1 then []
    else
      [ Fault.Exhaust_fuel { budget = 1 + Fault.Rng.int rng (sp.Fault.sp_retired - 1) } ]
  in
  List.map
    (fun f -> { t_workload = w; t_width = width; t_fault = f })
    (aborts @ corrupt @ evict @ fuel)

let default_widths = [ 2; 4; 8; 16 ]

let plan ?backend ?(workloads = Workload.all ()) ?(widths = default_widths)
    ~seed () =
  let rng = Fault.Rng.make seed in
  List.concat_map
    (fun w ->
      List.concat_map (fun width -> plan_for ?backend rng w ~width) widths)
    workloads

(* --- executing one case --- *)

type verdict =
  | Safe  (** fault fired; final state matches the scalar oracle, or the
              watchdog stopped the run with its structured diagnostic *)
  | Divergent  (** fault fired and the final state differs from scalar *)
  | Not_triggered  (** the planned site was never reached *)
  | Crashed of string  (** the machine failed to degrade gracefully *)

let verdict_name = function
  | Safe -> "safe"
  | Divergent -> "divergent"
  | Not_triggered -> "not-triggered"
  | Crashed _ -> "crashed"

type case = {
  c_workload : string;
  c_width : int;
  c_fault : Fault.t;
  c_verdict : verdict;
}

let run_case ?(backend = Backend.fixed) (w : Workload.t) ~width fault =
  let program = Runner.program_of w (Runner.Liquid width) in
  let image = Image.of_program program in
  let armed = Fault.arm fault in
  let base = { (Cpu.liquid_config ~lanes:width) with Cpu.backend } in
  let config =
    {
      base with
      Cpu.faults = armed.Fault.hooks;
      Cpu.fuel = Option.value armed.Fault.fuel ~default:base.Cpu.fuel;
    }
  in
  let verdict =
    match Cpu.run_result ~config image with
    | Ok run -> (
        match fault with
        | Fault.Exhaust_fuel _ ->
            (* The budget was drawn below the clean run's retirement
               count, so completing means the plan was stale. *)
            Not_triggered
        | _ when armed.Fault.fired () = 0 -> Not_triggered
        | _ -> (
            match Oracle.check w image run with
            | Ok () -> Safe
            | Error m ->
                ignore m;
                Divergent))
    | Error d -> (
        match (fault, d.Diag.fault) with
        | Fault.Exhaust_fuel _, Diag.Fuel_exhausted ->
            (* exactly the promised structured stop *)
            Safe
        | _ -> Crashed (Diag.to_string d))
    | exception e -> Crashed (Printexc.to_string e)
  in
  {
    c_workload = w.Workload.name;
    c_width = width;
    c_fault = fault;
    c_verdict = verdict;
  }

(* --- the campaign --- *)

type report = {
  r_seed : int;
  r_cases : case list;
  r_injected : int;
  r_safe : int;
  r_divergent : int;
  r_not_triggered : int;
  r_crashed : int;
}

let survived r = r.r_divergent = 0 && r.r_crashed = 0

let summarize ~seed cases =
  let count p = List.length (List.filter p cases) in
  let safe = count (fun c -> c.c_verdict = Safe) in
  let divergent = count (fun c -> c.c_verdict = Divergent) in
  let not_triggered = count (fun c -> c.c_verdict = Not_triggered) in
  let crashed =
    count (fun c -> match c.c_verdict with Crashed _ -> true | _ -> false)
  in
  {
    r_seed = seed;
    r_cases = cases;
    r_injected = safe + divergent + crashed;
    r_safe = safe;
    r_divergent = divergent;
    r_not_triggered = not_triggered;
    r_crashed = crashed;
  }

let run ?domains ?backend ?workloads ?widths ~seed () =
  let targets = plan ?backend ?workloads ?widths ~seed () in
  let results =
    Runner.run_many_result ?domains
      (fun t -> run_case ?backend t.t_workload ~width:t.t_width t.t_fault)
      targets
  in
  let cases =
    List.map2
      (fun t -> function
        | Ok c -> c
        | Error { Runner.f_exn; _ } ->
            (* run_case already fences the machine; reaching this means
               the harness itself broke — still report, never raise. *)
            {
              c_workload = t.t_workload.Workload.name;
              c_width = t.t_width;
              c_fault = t.t_fault;
              c_verdict = Crashed (Printexc.to_string f_exn);
            })
      targets results
  in
  summarize ~seed cases

(* --- reporting --- *)

let pp_case ppf c =
  Format.fprintf ppf "%-14s w%-2d %-32s %s" c.c_workload c.c_width
    (Fault.to_string c.c_fault)
    (match c.c_verdict with
    | Crashed msg -> "CRASHED: " ^ msg
    | v -> verdict_name v)

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>fault campaign (seed %d): %d cases, %d injected@ \
     aborted safely:  %d@ state-divergent: %d@ crashed:         %d@ \
     not triggered:   %d@ verdict: %s@]"
    r.r_seed (List.length r.r_cases) r.r_injected r.r_safe r.r_divergent
    r.r_crashed r.r_not_triggered
    (if survived r then "SURVIVED" else "FAILED")
