open Liquid_isa
open Liquid_prog
open Liquid_pipeline
open Liquid_workloads
open Liquid_harness

(* --- which registers count --- *)

(* A region call served from the microcode cache substitutes the whole
   outlined function for its SIMD translation. The translation
   reproduces the region's memory effects and the values post-region
   code reads, but the region's scratch registers — whatever its loop
   body writes — hold last-iteration junk at halt, and WHICH junk
   survives depends on which call of which region ran in which form.
   The mask is therefore static, not sampled from runs: every register
   with a def inside any outlined region body (scanned entry → ret in
   the image), plus [lr] (a microcode-served call substitutes the whole
   outlined function, so the branch-and-link never architecturally
   writes it). Everything outside the mask must match the pure-scalar
   run byte-for-byte, as must all of data memory — which is where every
   workload's results live, so region outputs remain checked
   end-to-end. *)

let mask_of_image (image : Image.t) =
  let mask = Array.make Reg.count false in
  mask.(Reg.index Reg.lr) <- true;
  List.iter
    (fun (entry, _label) ->
      let i = ref entry in
      let stop = ref false in
      while (not !stop) && !i < Array.length image.Image.code do
        (match image.Image.code.(!i) with
        | Liquid_visa.Minsn.S Insn.Ret -> stop := true
        | Liquid_visa.Minsn.S insn ->
            List.iter (fun r -> mask.(Reg.index r) <- true) (Insn.defs insn)
        | Liquid_visa.Minsn.V _ -> ());
        incr i
      done)
    image.Image.region_entries;
  mask

let mask_cache : (string, bool array) Hashtbl.t = Hashtbl.create 16
let mask_mutex = Mutex.create ()

let junk_mask (w : Workload.t) =
  let key = w.Workload.name in
  match Mutex.protect mask_mutex (fun () -> Hashtbl.find_opt mask_cache key) with
  | Some m -> m
  | None ->
      let scalar = Runner.run_cached w Runner.Liquid_scalar in
      let image = Image.of_program scalar.Runner.program in
      let mask = mask_of_image image in
      Mutex.protect mask_mutex (fun () ->
          match Hashtbl.find_opt mask_cache key with
          | Some winner -> winner
          | None ->
              Hashtbl.replace mask_cache key mask;
              mask)

(* --- fingerprints --- *)

type fp = { fp_regs : int; fp_mem : int }

let fingerprint (w : Workload.t) image (run : Cpu.run) =
  {
    fp_regs = Fingerprint.regs_hash_masked ~mask:(junk_mask w) run.Cpu.regs;
    fp_mem = Fingerprint.mem_hash image run.Cpu.memory;
  }

(* The reference is the SAME Liquid binary on a core with no
   accelerator and no translator — not the inline-loop baseline binary,
   whose register file legitimately differs (different code layout,
   different loop bookkeeping). Anything the translation path does,
   including aborting at an arbitrary DFA state, must land on exactly
   this state. Memoized via the runner's process-wide cache. *)
let reference (w : Workload.t) =
  let r = Runner.run_cached w Runner.Liquid_scalar in
  fingerprint w (Image.of_program r.Runner.program) r.Runner.run

type mismatch = { m_want : fp; m_got : fp }

let check w image run =
  let want = reference w in
  let got = fingerprint w image run in
  if want = got then Ok () else Error { m_want = want; m_got = got }

let equivalent w image run = Result.is_ok (check w image run)

let pp_mismatch ppf { m_want; m_got } =
  Format.fprintf ppf "regs %016x (want %016x)%s, mem %016x (want %016x)%s"
    m_got.fp_regs m_want.fp_regs
    (if m_got.fp_regs = m_want.fp_regs then " ok" else " DIVERGED")
    m_got.fp_mem m_want.fp_mem
    (if m_got.fp_mem = m_want.fp_mem then " ok" else " DIVERGED")
