type t =
  | Add
  | Sub
  | Rsb
  | Mul
  | And
  | Orr
  | Eor
  | Bic
  | Lsl
  | Lsr
  | Asr
  | Smin
  | Smax

let eval t a b =
  match t with
  | Add -> Word.add a b
  | Sub -> Word.sub a b
  | Rsb -> Word.rsb a b
  | Mul -> Word.mul a b
  | And -> Word.logand a b
  | Orr -> Word.logor a b
  | Eor -> Word.logxor a b
  | Bic -> Word.bic a b
  | Lsl -> Word.shl a b
  | Lsr -> Word.shr a b
  | Asr -> Word.sar a b
  | Smin -> Word.smin a b
  | Smax -> Word.smax a b

(* Pre-resolve the operation to its [Word] function once, so compiled
   closures (the block engine's thunks) pay the dispatch at compile time
   instead of per execution. [eval t] and [fn t] agree by construction. *)
let fn = function
  | Add -> Word.add
  | Sub -> Word.sub
  | Rsb -> Word.rsb
  | Mul -> Word.mul
  | And -> Word.logand
  | Orr -> Word.logor
  | Eor -> Word.logxor
  | Bic -> Word.bic
  | Lsl -> Word.shl
  | Lsr -> Word.shr
  | Asr -> Word.sar
  | Smin -> Word.smin
  | Smax -> Word.smax

let commutative = function
  | Add | Mul | And | Orr | Eor | Smin | Smax -> true
  | Sub | Rsb | Bic | Lsl | Lsr | Asr -> false

let all = [ Add; Sub; Rsb; Mul; And; Orr; Eor; Bic; Lsl; Lsr; Asr; Smin; Smax ]
let equal (a : t) b = a = b

let mnemonic = function
  | Add -> "add"
  | Sub -> "sub"
  | Rsb -> "rsb"
  | Mul -> "mul"
  | And -> "and"
  | Orr -> "orr"
  | Eor -> "eor"
  | Bic -> "bic"
  | Lsl -> "lsl"
  | Lsr -> "lsr"
  | Asr -> "asr"
  | Smin -> "smin"
  | Smax -> "smax"

let pp ppf t = Format.pp_print_string ppf (mnemonic t)

let to_int = function
  | Add -> 0
  | Sub -> 1
  | Rsb -> 2
  | Mul -> 3
  | And -> 4
  | Orr -> 5
  | Eor -> 6
  | Bic -> 7
  | Lsl -> 8
  | Lsr -> 9
  | Asr -> 10
  | Smin -> 11
  | Smax -> 12

let of_int = function
  | 0 -> Some Add
  | 1 -> Some Sub
  | 2 -> Some Rsb
  | 3 -> Some Mul
  | 4 -> Some And
  | 5 -> Some Orr
  | 6 -> Some Eor
  | 7 -> Some Bic
  | 8 -> Some Lsl
  | 9 -> Some Lsr
  | 10 -> Some Asr
  | 11 -> Some Smin
  | 12 -> Some Smax
  | _ -> None
