type t = int

let initial = 0
let of_compare (a : int) (b : int) = (if a < b then 1 else 0) lor (if a = b then 2 else 0)
let lt f = f land 1 <> 0
let eq f = f land 2 <> 0
let equal (a : t) b = a = b

let pp ppf t =
  Format.fprintf ppf "{lt=%b; eq=%b}" (lt t) (eq t)
