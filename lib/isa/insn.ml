type operand = Imm of int | Reg of Reg.t

type 'sym base = Sym of 'sym | Breg of Reg.t

type ('sym, 'lab) t =
  | Mov of { cond : Cond.t; dst : Reg.t; src : operand }
  | Dp of {
      cond : Cond.t;
      op : Opcode.t;
      dst : Reg.t;
      src1 : Reg.t;
      src2 : operand;
    }
  | Ld of {
      esize : Esize.t;
      signed : bool;
      dst : Reg.t;
      base : 'sym base;
      index : operand;
      shift : int;
    }
  | St of {
      esize : Esize.t;
      src : Reg.t;
      base : 'sym base;
      index : operand;
      shift : int;
    }
  | Cmp of { src1 : Reg.t; src2 : operand }
  | B of { cond : Cond.t; target : 'lab }
  | Bl of { target : 'lab; region : bool }
  | Ret
  | Halt

type asm = (string, string) t
type exec = (int, int) t

let map_base f = function Sym s -> Sym (f s) | Breg r -> Breg r

let map ~sym ~lab = function
  | Mov m -> Mov m
  | Dp d -> Dp d
  | Ld l -> Ld { l with base = map_base sym l.base }
  | St s -> St { s with base = map_base sym s.base }
  | Cmp c -> Cmp c
  | B b -> B { cond = b.cond; target = lab b.target }
  | Bl b -> Bl { target = lab b.target; region = b.region }
  | Ret -> Ret
  | Halt -> Halt

let operand_uses = function Imm _ -> [] | Reg r -> [ r ]
let base_uses = function Sym _ -> [] | Breg r -> [ r ]

let defs = function
  | Mov { dst; _ } | Dp { dst; _ } | Ld { dst; _ } -> [ dst ]
  | St _ | Cmp _ | B _ | Ret | Halt -> []
  | Bl _ -> [ Reg.lr ]

let uses = function
  | Mov { src; cond; dst; _ } ->
      (* A predicated move reads its destination (the old value survives
         when the condition fails). *)
      operand_uses src @ (if cond = Cond.Al then [] else [ dst ])
  | Dp { src1; src2; cond; dst; _ } ->
      (src1 :: operand_uses src2) @ (if cond = Cond.Al then [] else [ dst ])
  | Ld { base; index; _ } -> base_uses base @ operand_uses index
  | St { src; base; index; _ } -> (src :: base_uses base) @ operand_uses index
  | Cmp { src1; src2 } -> src1 :: operand_uses src2
  | B _ | Halt -> []
  | Bl _ -> []
  | Ret -> [ Reg.lr ]

(* Allocation-free membership test over [uses]: the interlock check runs
   once per retired instruction, where building the list is measurable. *)
let operand_uses_reg o r =
  match o with Imm _ -> false | Reg x -> Reg.equal x r

let base_uses_reg b r = match b with Sym _ -> false | Breg x -> Reg.equal x r

let uses_reg insn r =
  match insn with
  | Mov { src; cond; dst; _ } ->
      operand_uses_reg src r
      || ((not (Cond.equal cond Cond.Al)) && Reg.equal dst r)
  | Dp { src1; src2; cond; dst; _ } ->
      Reg.equal src1 r || operand_uses_reg src2 r
      || ((not (Cond.equal cond Cond.Al)) && Reg.equal dst r)
  | Ld { base; index; _ } -> base_uses_reg base r || operand_uses_reg index r
  | St { src; base; index; _ } ->
      Reg.equal src r || base_uses_reg base r || operand_uses_reg index r
  | Cmp { src1; src2 } -> Reg.equal src1 r || operand_uses_reg src2 r
  | B _ | Halt | Bl _ -> false
  | Ret -> Reg.equal Reg.lr r

let is_branch = function B _ | Bl _ | Ret -> true | _ -> false

let equal_operand a b =
  match (a, b) with
  | Imm x, Imm y -> x = y
  | Reg x, Reg y -> Reg.equal x y
  | Imm _, Reg _ | Reg _, Imm _ -> false

let equal_base eq_sym a b =
  match (a, b) with
  | Sym x, Sym y -> eq_sym x y
  | Breg x, Breg y -> Reg.equal x y
  | Sym _, Breg _ | Breg _, Sym _ -> false

let equal eq_sym eq_lab a b =
  match (a, b) with
  | Mov x, Mov y ->
      Cond.equal x.cond y.cond && Reg.equal x.dst y.dst
      && equal_operand x.src y.src
  | Dp x, Dp y ->
      Cond.equal x.cond y.cond && Opcode.equal x.op y.op
      && Reg.equal x.dst y.dst && Reg.equal x.src1 y.src1
      && equal_operand x.src2 y.src2
  | Ld x, Ld y ->
      Esize.equal x.esize y.esize && x.signed = y.signed
      && Reg.equal x.dst y.dst
      && equal_base eq_sym x.base y.base
      && equal_operand x.index y.index
      && x.shift = y.shift
  | St x, St y ->
      Esize.equal x.esize y.esize && Reg.equal x.src y.src
      && equal_base eq_sym x.base y.base
      && equal_operand x.index y.index
      && x.shift = y.shift
  | Cmp x, Cmp y -> Reg.equal x.src1 y.src1 && equal_operand x.src2 y.src2
  | B x, B y -> Cond.equal x.cond y.cond && eq_lab x.target y.target
  | Bl x, Bl y -> eq_lab x.target y.target && x.region = y.region
  | Ret, Ret | Halt, Halt -> true
  | ( ( Mov _ | Dp _ | Ld _ | St _ | Cmp _ | B _ | Bl _ | Ret | Halt ),
      ( Mov _ | Dp _ | Ld _ | St _ | Cmp _ | B _ | Bl _ | Ret | Halt ) ) ->
      false

let equal_exec a b = equal Int.equal Int.equal a b

let pp_operand ppf = function
  | Imm i -> Format.fprintf ppf "#%d" i
  | Reg r -> Reg.pp ppf r

let pp_base pp_sym ppf = function
  | Sym s -> pp_sym ppf s
  | Breg r -> Reg.pp ppf r

let pp_index ppf (index, shift) =
  match (index, shift) with
  | Imm 0, 0 -> ()
  | _, 0 -> Format.fprintf ppf " + %a" pp_operand index
  | _, s -> Format.fprintf ppf " + %a lsl %d" pp_operand index s

let pp ~pp_sym ~pp_lab ppf = function
  | Mov { cond; dst; src } ->
      Format.fprintf ppf "mov%s %a, %a" (Cond.suffix cond) Reg.pp dst
        pp_operand src
  | Dp { cond; op; dst; src1; src2 } ->
      Format.fprintf ppf "%s%s %a, %a, %a" (Opcode.mnemonic op)
        (Cond.suffix cond) Reg.pp dst Reg.pp src1 pp_operand src2
  | Ld { esize; signed; dst; base; index; shift } ->
      Format.fprintf ppf "ld%s%s %a, [%a%a]" (Esize.suffix esize)
        (if signed && esize <> Esize.Word then "s" else "")
        Reg.pp dst (pp_base pp_sym) base pp_index (index, shift)
  | St { esize; src; base; index; shift } ->
      Format.fprintf ppf "st%s [%a%a], %a" (Esize.suffix esize)
        (pp_base pp_sym) base pp_index (index, shift) Reg.pp src
  | Cmp { src1; src2 } ->
      Format.fprintf ppf "cmp %a, %a" Reg.pp src1 pp_operand src2
  | B { cond; target } ->
      Format.fprintf ppf "b%s %a"
        (match cond with Cond.Al -> "" | c -> Cond.suffix c)
        pp_lab target
  | Bl { target; region } ->
      Format.fprintf ppf "bl%s %a" (if region then ".region" else "") pp_lab
        target
  | Ret -> Format.pp_print_string ppf "ret"
  | Halt -> Format.pp_print_string ppf "halt"

let pp_string ppf s = Format.pp_print_string ppf s
let pp_addr ppf a = Format.fprintf ppf "0x%x" a
let pp_idx ppf i = Format.fprintf ppf "@%d" i
let pp_asm ppf i = pp ~pp_sym:pp_string ~pp_lab:pp_string ppf i
let pp_exec ppf i = pp ~pp_sym:pp_addr ~pp_lab:pp_idx ppf i
