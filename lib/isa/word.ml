type t = int

let of_int v =
  let sh = Sys.int_size - 32 in
  (v lsl sh) asr sh

let to_unsigned v = v land 0xFFFFFFFF
let add a b = of_int (a + b)
let sub a b = of_int (a - b)
let rsb a b = of_int (b - a)
let mul a b = of_int (a * b)
let logand a b = of_int (a land b)
let logor a b = of_int (a lor b)
let logxor a b = of_int (a lxor b)
let bic a b = of_int (a land lnot b)
let shl a n = of_int (a lsl (n land 31))
let shr a n = of_int (to_unsigned a lsr (n land 31))
let sar a n = of_int (a asr (n land 31))
let smin a b = if a <= b then a else b
let smax a b = if a >= b then a else b

let clamp esize ~signed v =
  if signed then
    let lo = Esize.min_signed esize and hi = Esize.max_signed esize in
    if v < lo then lo else if v > hi then hi else v
  else
    let hi = Esize.max_unsigned esize in
    if v < 0 then 0 else if v > hi then hi else v

(* The saturating ops must reproduce the scalar clamp idiom bit-for-bit
   — the scalarized region body is the architectural contract the
   translator recovers SIMD from. That idiom computes a plain add/sub
   (wrapping at 32 bits) and then clamps with signed compares: both
   sides for signed saturation, but only the high bound for unsigned
   add and only zero for unsigned sub. Clamping the other side too (or
   skipping the wrap) diverges from scalar execution on inputs outside
   the element's domain. *)
let sat_add esize ~signed a b =
  let s = of_int (a + b) in
  if signed then clamp esize ~signed:true s
  else
    let hi = Esize.max_unsigned esize in
    if s > hi then hi else s

let sat_sub esize ~signed a b =
  let s = of_int (a - b) in
  if signed then clamp esize ~signed:true s else if s < 0 then 0 else s
let equal (a : t) b = a = b
let pp ppf v = Format.fprintf ppf "%d" v
