type t = Al | Eq | Ne | Gt | Ge | Lt | Le

(* On the immediate flag pair (bit 0 = lt, bit 1 = eq) every condition
   is one mask test; this runs per predicated micro-op and per trace
   guard evaluation. *)
let holds t (f : Flags.t) =
  let f = (f :> int) in
  match t with
  | Al -> true
  | Eq -> f land 2 <> 0
  | Ne -> f land 2 = 0
  | Gt -> f = 0
  | Ge -> f land 1 = 0
  | Lt -> f land 1 <> 0
  | Le -> f <> 0

(* [holds] as data: [(mask, v, neg)] with
   [holds t f = ((f land mask) = v) <> neg]. Hot loops with a fixed
   condition (the trace guard) inline the test instead of paying a
   cross-module call and a match per evaluation. *)
let mask_test = function
  | Al -> (0, 0, false)
  | Eq -> (2, 2, false)
  | Ne -> (2, 2, true)
  | Gt -> (3, 0, false)
  | Ge -> (1, 1, true)
  | Lt -> (1, 1, false)
  | Le -> (3, 0, true)

let all = [ Al; Eq; Ne; Gt; Ge; Lt; Le ]
let equal (a : t) b = a = b

let suffix = function
  | Al -> ""
  | Eq -> "eq"
  | Ne -> "ne"
  | Gt -> "gt"
  | Ge -> "ge"
  | Lt -> "lt"
  | Le -> "le"

let pp ppf t = Format.pp_print_string ppf (match t with Al -> "al" | _ -> suffix t)

let to_int = function
  | Al -> 0
  | Eq -> 1
  | Ne -> 2
  | Gt -> 3
  | Ge -> 4
  | Lt -> 5
  | Le -> 6

let of_int = function
  | 0 -> Some Al
  | 1 -> Some Eq
  | 2 -> Some Ne
  | 3 -> Some Gt
  | 4 -> Some Ge
  | 5 -> Some Lt
  | 6 -> Some Le
  | _ -> None
