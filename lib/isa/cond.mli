(** Condition codes for predicated execution and branches. *)

type t = Al | Eq | Ne | Gt | Ge | Lt | Le

val holds : t -> Flags.t -> bool

val mask_test : t -> int * int * bool
(** [mask_test t] is [(mask, v, neg)] such that
    [holds t f = (((f :> int) land mask) = v) <> neg] — lets a loop
    with a fixed condition inline the test. *)

val all : t list
val equal : t -> t -> bool
val suffix : t -> string
(** Assembly suffix: [""] for {!Al}, ["eq"], ["ne"], ... *)

val pp : Format.formatter -> t -> unit
val to_int : t -> int
val of_int : int -> t option
