(** Data-processing opcodes of the baseline scalar ISA.

    The set mirrors the ARM integer ALU plus [Smin]/[Smax], which the
    paper's Table 1 uses directly for reductions (category 4). There are
    deliberately no saturating opcodes: saturation is expressed as a
    compare/predicated-move idiom, exactly as in the paper (section 3.2). *)

type t =
  | Add
  | Sub
  | Rsb  (** reverse subtract: [dst = src2 - src1] *)
  | Mul
  | And
  | Orr
  | Eor
  | Bic
  | Lsl
  | Lsr
  | Asr
  | Smin
  | Smax

val eval : t -> int -> int -> int
(** Apply the operation to two 32-bit words (see {!Word}). *)

val fn : t -> int -> int -> int
(** The operation as a pre-resolved function: [fn t a b = eval t a b],
    with the opcode dispatch paid once at [fn t] instead of per
    application. For compile-once/run-many callers (the block engine's
    closure compiler). *)

val commutative : t -> bool
val all : t list
val equal : t -> t -> bool
val mnemonic : t -> string
val pp : Format.formatter -> t -> unit
val to_int : t -> int
val of_int : int -> t option
