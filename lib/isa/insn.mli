(** Baseline scalar instructions.

    The type is polymorphic in how data symbols and branch targets are
    named so that the same constructors serve two program forms:

    - {!asm} — assembly form: data bases are symbolic names, branch
      targets are label names;
    - {!exec} — executable form after layout: data bases are absolute
      addresses, branch targets are instruction indices into the code
      array.

    Addressing is [base + index lsl shift], where the base is a symbol or
    a register and the index a register or an immediate. This mirrors the
    ARM scaled register offset mode that the paper's scalar representation
    relies on (the shift re-scales an element index into a byte offset). *)

type operand = Imm of int | Reg of Reg.t

type 'sym base = Sym of 'sym | Breg of Reg.t

type ('sym, 'lab) t =
  | Mov of { cond : Cond.t; dst : Reg.t; src : operand }
  | Dp of {
      cond : Cond.t;
      op : Opcode.t;
      dst : Reg.t;
      src1 : Reg.t;
      src2 : operand;
    }
  | Ld of {
      esize : Esize.t;
      signed : bool;
      dst : Reg.t;
      base : 'sym base;
      index : operand;
      shift : int;
    }
  | St of {
      esize : Esize.t;
      src : Reg.t;
      base : 'sym base;
      index : operand;
      shift : int;
    }
  | Cmp of { src1 : Reg.t; src2 : operand }
  | B of { cond : Cond.t; target : 'lab }
  | Bl of { target : 'lab; region : bool }
      (** Branch-and-link. [region] marks the unique branch-and-link
          variant used for translatable outlined functions (paper §3.5). *)
  | Ret
  | Halt

type asm = (string, string) t
type exec = (int, int) t

val map : sym:('a -> 'c) -> lab:('b -> 'd) -> ('a, 'b) t -> ('c, 'd) t

val defs : ('a, 'b) t -> Reg.t list
(** Registers written (architecturally; link register for [Bl]). *)

val uses : ('a, 'b) t -> Reg.t list
(** Registers read, including base/index registers. *)

val uses_reg : ('a, 'b) t -> Reg.t -> bool
(** [uses_reg i r] is [List.exists (Reg.equal r) (uses i)] without
    building the list. *)

val is_branch : ('a, 'b) t -> bool
val equal : ('s -> 's -> bool) -> ('l -> 'l -> bool) -> ('s, 'l) t -> ('s, 'l) t -> bool
val equal_exec : exec -> exec -> bool

val pp_operand : Format.formatter -> operand -> unit

val pp :
  pp_sym:(Format.formatter -> 'sym -> unit) ->
  pp_lab:(Format.formatter -> 'lab -> unit) ->
  Format.formatter ->
  ('sym, 'lab) t ->
  unit

val pp_asm : Format.formatter -> asm -> unit
val pp_exec : Format.formatter -> exec -> unit
