(** 32-bit two's-complement machine words represented as OCaml [int]s.

    Every operation returns a canonical value in
    [[-2{^31}, 2{^31} - 1]]. Shift amounts are taken modulo 32, matching
    typical barrel-shifter behaviour. *)

type t = int

val of_int : int -> t
(** Wrap an arbitrary integer into the 32-bit signed range. *)

val to_unsigned : t -> int
(** The same bit pattern read as an unsigned 32-bit value. *)

val add : t -> t -> t
val sub : t -> t -> t
val rsb : t -> t -> t
(** [rsb a b] is [b - a] (reverse subtract). *)

val mul : t -> t -> t
val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t
val bic : t -> t -> t
(** [bic a b] is [a land (lnot b)] (bit clear). *)

val shl : t -> t -> t
val shr : t -> t -> t
(** Logical (unsigned) right shift. *)

val sar : t -> t -> t
(** Arithmetic right shift. *)

val smin : t -> t -> t
val smax : t -> t -> t

val sat_add : Esize.t -> signed:bool -> t -> t -> t
(** Saturating addition at the given element width. Matches the scalar
    clamp idiom exactly: the 32-bit wrapped sum is clamped to
    [[min_signed, max_signed]] when [signed], and only against
    [max_unsigned] (no low bound) otherwise. *)

val sat_sub : Esize.t -> signed:bool -> t -> t -> t
(** Saturating subtraction; the unsigned form clamps the wrapped
    difference only at zero, mirroring the one-sided scalar idiom. *)

val clamp : Esize.t -> signed:bool -> t -> t
(** Clamp into the representable range of the element type. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
