(** Processor condition flags, set by compare instructions.

    We keep the signed comparison outcome directly rather than N/Z/C/V
    bits; the modeled ISA only exposes signed conditions. The
    representation is an immediate bit pair (bit 0 = less-than, bit 1 =
    equal): flag updates happen once per simulated compare on the
    hottest execution paths, and an unboxed value makes them a plain
    store — no allocation, no write barrier. *)

type t = private int

val initial : t

val of_compare : int -> int -> t
(** [of_compare a b] captures the signed relation of [a] to [b]. *)

val lt : t -> bool
val eq : t -> bool
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
