(** The paper's evaluation, experiment by experiment. Each function
    returns structured results; each printer renders the same rows the
    paper's table or figure reports, with the published reference
    numbers alongside where available. *)

open Liquid_pipeline
open Liquid_workloads

(** {1 Table 2 — translator synthesis} *)

val table2 : unit -> Liquid_hwmodel.Hwmodel.report list
(** The paper's 8-wide row plus a width ablation (2..16 lanes). *)

val pp_table2 : Format.formatter -> Liquid_hwmodel.Hwmodel.report list -> unit

(** {1 Table 5 — scalar instructions per outlined function} *)

type table5_row = {
  t5_name : string;
  t5_loops : int;
  t5_mean : float;
  t5_max : int;
  t5_paper_mean : float;
  t5_paper_max : int;
}

val table5 : unit -> table5_row list
val pp_table5 : Format.formatter -> table5_row list -> unit

(** {1 Table 6 — cycles between the first two calls of each hot loop} *)

type table6_row = {
  t6_name : string;
  t6_lt150 : int;
  t6_lt300 : int;
  t6_gt300 : int;
  t6_mean : int;
  t6_paper : Workload.paper_ref;
}

val table6 : unit -> table6_row list
val pp_table6 : Format.formatter -> table6_row list -> unit

(** {1 Figure 6 — speedup over the no-SIMD baseline} *)

type fig6_row = {
  f6_name : string;
  f6_speedups : (int * float) list;  (** (width, speedup) for 2/4/8/16 *)
  f6_vla_speedups : (int * float) list;
      (** same widths through the VLA backend
          ({!Runner.Liquid_vla}): predicated final iterations instead
          of divisibility aborts *)
  f6_rvv_speedups : (int * float) list;
      (** same widths through the RVV backend
          ({!Runner.Liquid_rvv}): vsetvl-granted final iterations, with
          LMUL register grouping multiplying the effective width on
          low-pressure regions *)
  f6_native_delta : (int * float) list;
      (** (width, native speedup - liquid speedup): the callout's
          virtualization overhead, where a native binary exists *)
}

val figure6 : ?widths:int list -> unit -> fig6_row list
val pp_figure6 : Format.formatter -> fig6_row list -> unit

(** {1 §5 code size overhead} *)

type size_row = {
  sz_name : string;
  sz_baseline : int;
  sz_liquid : int;
  sz_overhead_pct : float;
}

val code_size : unit -> size_row list
val pp_code_size : Format.formatter -> size_row list -> unit

(** {1 §5 microcode cache requirements} *)

type ucode_row = {
  uc_name : string;
  uc_regions : int;
  uc_max_occupancy : int;
  uc_max_uops : int;
  uc_evictions : int;
}

val ucode_cache : unit -> ucode_row list
val pp_ucode_cache : Format.formatter -> ucode_row list -> unit

(** {1 §5 translation-latency sensitivity (ablation)} *)

type latency_row = { lat_name : string; lat_speedups : (int * float) list }
(** speedup at 8 lanes for each translation cost (cycles/instruction) *)

val latency_ablation : ?costs:int list -> unit -> latency_row list
val pp_latency : Format.formatter -> latency_row list -> unit

(** {1 Helpers} *)

val region_first_gap : Cpu.run -> (string * int) list
(** Per region: cycles between the starts of its first two calls. *)

(** {1 Virtualization-overhead convergence (ablation)}

    The paper's 0.001x worst-case overhead comes from billions-of-cycle
    runs in which the one scalar execution each region pays before its
    microcode exists is fully amortized. This ablation sweeps run length
    on a FIR-shaped workload and shows the oracle-vs-liquid delta
    decaying toward zero. *)

type overhead_row = {
  ov_frames : int;  (** hot-loop invocations in the run *)
  ov_liquid : float;  (** speedup of the Liquid binary *)
  ov_oracle : float;  (** speedup with built-in ISA support *)
  ov_delta : float;
}

val overhead_convergence : ?frames_list:int list -> unit -> overhead_row list
val pp_overhead : Format.formatter -> overhead_row list -> unit

(** {1 Design-choice ablations} *)

type sweep_row = { sw_value : int; sw_speedup : float; sw_hit_rate : float }

val ucode_entries_ablation : ?entries:int list -> unit -> sweep_row list
(** Microcode-cache capacity sweep on a synthetic program whose eight
    hot loops execute round-robin: the paper's 8 entries capture the
    working set; one fewer and LRU evicts every entry before reuse.
    [sw_hit_rate] is ucode hits / region calls. *)

val buffer_ablation : ?capacities:int list -> unit -> sweep_row list
(** Microcode-buffer capacity sweep on 101.tomcatv (whose largest
    outlined loop is 63 instructions): a runtime buffer smaller than
    the compile-time assumption silently degrades to scalar execution. *)

val bus_ablation : ?widths:int list -> unit -> sweep_row list
(** Vector memory bus sweep on FIR at 16 lanes: where wide-vector
    speedups saturate. [sw_hit_rate] is unused (0). *)

val pp_sweep :
  title:string -> value_label:string -> Format.formatter -> sweep_row list -> unit

(** {1 Hardware vs software translation (ablation)}

    The paper argues hardware translation is more efficient than a JIT
    but concedes nothing precludes software translation (§2). Here both
    run the same algorithm; the software variant additionally stalls the
    core for its translation work. *)

type kind_row = { kr_name : string; kr_hw : float; kr_sw : float }

val translator_kind_ablation : ?cost:int -> unit -> kind_row list
(** [cost] is the software JIT's cycles per translated static
    instruction (default 100; the hardware unit uses its usual 1). *)

val pp_kind : Format.formatter -> kind_row list -> unit

val interrupt_ablation : ?intervals:int list -> unit -> sweep_row list
(** Context-switch frequency sweep on FFT at 8 lanes: asynchronous
    aborts (paper §4.1) cancel in-flight translation sessions, which are
    simply retried on a later call. Interval 0 means no interrupts. *)

(** {1 CSV export}

    Machine-readable renditions of the plottable experiments, for
    external charting. Each function renders rows produced by the
    corresponding experiment. *)

val csv_table5 : table5_row list -> string
val csv_table6 : table6_row list -> string
val csv_figure6 : fig6_row list -> string
