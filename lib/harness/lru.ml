(* Exact LRU over a hashtable of stamped slots. Mirrors the machine
   caches' policy (Cache): unique clock stamps give a strict recency
   order, hits are one store, and the O(n) minimum-stamp victim scan
   runs only when an insert finds the table full — never on the lookup
   path. *)

type 'v slot = { mutable value : 'v; mutable stamp : int }

type ('k, 'v) t = {
  cap : int;
  table : ('k, 'v slot) Hashtbl.t;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Lru.create: capacity must be positive";
  {
    cap = capacity;
    table = Hashtbl.create (min capacity 64);
    clock = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let capacity t = t.cap

let tick t =
  let c = t.clock + 1 in
  t.clock <- c;
  c

let find t k =
  match Hashtbl.find_opt t.table k with
  | Some slot ->
      slot.stamp <- tick t;
      t.hits <- t.hits + 1;
      Some slot.value
  | None ->
      t.misses <- t.misses + 1;
      None

let evict_lru t =
  let victim = ref None in
  Hashtbl.iter
    (fun k slot ->
      match !victim with
      | Some (_, best) when best <= slot.stamp -> ()
      | _ -> victim := Some (k, slot.stamp))
    t.table;
  match !victim with
  | None -> ()
  | Some (k, _) ->
      Hashtbl.remove t.table k;
      t.evictions <- t.evictions + 1

let add t k v =
  match Hashtbl.find_opt t.table k with
  | Some slot ->
      slot.value <- v;
      slot.stamp <- tick t
  | None ->
      if Hashtbl.length t.table >= t.cap then evict_lru t;
      Hashtbl.replace t.table k { value = v; stamp = tick t }

let occupancy t = Hashtbl.length t.table

type counters = {
  l_hits : int;
  l_misses : int;
  l_evictions : int;
  l_occupancy : int;
  l_capacity : int;
}

let counters t =
  {
    l_hits = t.hits;
    l_misses = t.misses;
    l_evictions = t.evictions;
    l_occupancy = Hashtbl.length t.table;
    l_capacity = t.cap;
  }

let clear t = Hashtbl.reset t.table
