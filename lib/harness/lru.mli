(** A bounded memo table with exact least-recently-used eviction.

    The same discipline the machine caches use ({!Liquid_machine.Cache}):
    recency is a monotonically increasing clock stamp per entry, a hit
    refreshes the stamp, and when the table is full an insert evicts the
    entry with the minimum stamp — the strict LRU victim. The victim
    scan is O(occupancy) but runs only on at-capacity inserts, so the
    hot path (a {!find} hit) stays one hashtable probe plus one store.

    Used to cap the process-wide memo tables that used to grow without
    bound: {!Runner.run_cached}'s result memo and the sweep service's
    result-dedupe table ([lib/service]). Not synchronized — callers
    that share a table across domains must hold their own lock (as
    {!Runner} does). *)

type ('k, 'v) t

val create : capacity:int -> ('k, 'v) t
(** [capacity] must be positive; the table never holds more than
    [capacity] entries. *)

val capacity : ('k, 'v) t -> int
(** The bound given to {!create}. *)

val find : ('k, 'v) t -> 'k -> 'v option
(** Lookup; a hit refreshes the entry's recency and increments the hit
    counter, a miss increments the miss counter. *)

val add : ('k, 'v) t -> 'k -> 'v -> unit
(** Insert or overwrite. At capacity, inserting a new key evicts the
    least recently used entry (and counts one eviction). *)

val occupancy : ('k, 'v) t -> int
(** Entries currently held; always [<= capacity]. *)

type counters = {
  l_hits : int;
  l_misses : int;
  l_evictions : int;
  l_occupancy : int;
  l_capacity : int;
}

val counters : ('k, 'v) t -> counters
(** Lifetime hit/miss/eviction tallies plus the current occupancy —
    the observability surface the service metrics and
    {!Runner.cache_counters} report. *)

val clear : ('k, 'v) t -> unit
(** Drop every entry. Counters are preserved (they are lifetime
    tallies); occupancy returns to zero. *)
