(** Running one benchmark under one machine/binary configuration. *)

open Liquid_prog
open Liquid_pipeline
open Liquid_workloads

type variant =
  | Baseline  (** scalar binary (inline loops) on the plain core *)
  | Liquid_scalar  (** Liquid binary on a core with no accelerator *)
  | Liquid of int  (** Liquid binary, accelerator + translator at width *)
  | Liquid_oracle of int
      (** Liquid binary with microcode available from the first call —
          the paper's "built-in ISA support" comparison point (§5) *)
  | Liquid_vla of int
      (** Liquid binary, accelerator + translator targeting the
          vector-length-agnostic predicated backend
          ({!Liquid_translate.Backend.vla}) at the given lane count *)
  | Liquid_vla_oracle of int
      (** VLA backend with microcode available from the first call *)
  | Liquid_rvv of int
      (** Liquid binary, accelerator + translator targeting the
          RVV-style stripmining backend
          ({!Liquid_translate.Backend.rvv}) at the given base lane
          count; the translator may multiply the effective width by an
          LMUL register-group factor *)
  | Liquid_rvv_oracle of int
      (** RVV backend with microcode available from the first call *)
  | Native of int  (** native SIMD binary on a matching accelerator *)

type result = { variant : variant; program : Program.t; run : Cpu.run }

val variant_name : variant -> string

val variant_of_string : string -> (variant, string) Stdlib.result
(** Parse the CLI/service variant syntax — [baseline], [liquid:scalar],
    [liquid:W], [vla:W], [rvv:W], [oracle:W], [vla-oracle:W],
    [rvv-oracle:W], [native:W] (with the [liquid-] prefixed aliases) —
    the inverse of the surface syntax, shared by the command line and
    the sweep-service protocol so the two cannot drift. The error
    carries a human-readable message. *)

val variant_to_string : variant -> string
(** The canonical wire spelling — the inverse of {!variant_of_string}
    (aliases normalize: [liquid-vla:8] prints as [vla:8]). Distinct from
    {!variant_name}, the human display name used in reports. *)

val program_of : Workload.t -> variant -> Program.t
(** Raises {!Liquid_scalarize.Codegen.Unsupported_width} when a native
    binary cannot be generated at the requested width. *)

val config_of : ?translation_cpi:int -> variant -> Cpu.config
(** The machine configuration a variant runs on — the single source of
    truth shared by {!run}, the CLI and the benchmarks. [Liquid_vla]
    and [Liquid_vla_oracle] select {!Liquid_translate.Backend.vla},
    [Liquid_rvv] and [Liquid_rvv_oracle] select
    {!Liquid_translate.Backend.rvv}; every other variant keeps the
    fixed-width backend. *)

val run :
  ?translation_cpi:int ->
  ?fuel:int ->
  ?blocks:bool ->
  ?superblocks:bool ->
  Workload.t ->
  variant ->
  result
(** [blocks] (default [true]) toggles the {!Cpu} translation-block
    engine; [superblocks] (default [true]) toggles its trace-superblock
    tier (no effect with [blocks] off) — pinned counters are
    bit-identical in every combination; the knobs exist for the engine's
    own differential tests and speedup benchmarks. *)

val run_cached :
  ?translation_cpi:int ->
  ?fuel:int ->
  ?blocks:bool ->
  ?superblocks:bool ->
  Workload.t ->
  variant ->
  result
(** Like {!run}, but memoized process-wide on
    [(workload name, variant, translation_cpi, fuel, blocks,
    superblocks)] — simulations are
    pure, and the experiment suite re-requests the same runs dozens of
    times (every table wants every workload's baseline). Safe to call
    from multiple domains; the first completed run for a key is the one
    every caller sees. Treat the shared {!result} as read-only.

    The memo table is a bounded exact-LRU ({!Lru}) of
    {!cache_capacity} entries, so a long-lived process (the sweep
    service) streaming distinct jobs through it holds a flat ceiling
    instead of leaking one full simulation state per key forever. *)

val cache_capacity : int
(** Bound of the {!run_cached} memo table — sized to cover one full
    experiment report's distinct keys with room to spare. *)

val cache_counters : unit -> Lru.counters
(** Lifetime hit/miss/eviction tallies and current occupancy of the
    {!run_cached} memo — surfaced in the sweep service's metrics
    document. *)

val clear_cache : unit -> unit
(** Drop all memoized runs (for tests and long-lived processes). *)

type 'a failure = {
  f_index : int;  (** position of the failing item in the input list *)
  f_item : 'a;  (** the failing input itself *)
  f_exn : exn;  (** what [f] raised on it *)
}

val run_many_result :
  ?domains:int ->
  ('a -> 'b) ->
  'a list ->
  ('b, 'a failure) Stdlib.result list
(** [run_many_result f items] maps [f] over [items] on a pool of
    [domains] worker domains (default
    {!Domain.recommended_domain_count}), with work stealing and results
    returned in input order — deterministic regardless of scheduling.
    Falls back to a plain sequential map when the pool would have one
    worker. Each application is isolated: an [f] that raises yields
    [Error] for that item (reporting the input and the exception) while
    every other item still completes and returns [Ok] — no exception
    escapes the pool. *)

val run_many : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** {!run_many_result} for infallible [f]: unwraps the [Ok]s, re-raising
    the first failing item's exception (in input order) after the pool
    drains. *)

val snapshot : ?collector:Liquid_obs.Collector.t -> result -> Liquid_obs.Snapshot.t
(** Fold the result into an observability snapshot, labeled with the
    program name and {!variant_name}. Pass the [collector] that
    observed the run to populate the translation-latency histogram. *)

val speedup : baseline:Cpu.run -> Cpu.run -> float
(** [baseline.cycles / run.cycles]. *)
