open Liquid_pipeline
open Liquid_prog
open Liquid_scalarize
open Liquid_workloads
module Hwmodel = Liquid_hwmodel.Hwmodel
module Stats = Liquid_machine.Stats

(* --- Table 2 --- *)

let table2 () =
  List.concat_map
    (fun target ->
      List.map
        (fun lanes ->
          (* RVV rows are provisioned at the group factor the translator
             can actually reach at that base width: LMUL is bounded by
             the 16-lane maximum vector length, so a narrow datapath
             grades a high group factor and a 16-wide one none. *)
          let lmul =
            match target with
            | Hwmodel.Rvv -> max 1 (16 / lanes)
            | Hwmodel.Fixed_width | Hwmodel.Vla -> 1
          in
          Hwmodel.estimate
            { Hwmodel.default_params with Hwmodel.lanes; Hwmodel.target; Hwmodel.lmul })
        [ 2; 4; 8; 16 ])
    [ Hwmodel.Fixed_width; Hwmodel.Vla; Hwmodel.Rvv ]

let pp_table2 ppf reports =
  Format.fprintf ppf
    "@[<v>Table 2: dynamic translator synthesis model (paper @ 8-wide: 16 \
     gates, 1.51 ns, 174,117 cells, <0.2 mm^2)@ \
     %-20s | %-10s | %-18s | %-12s | %s@ "
    "Description" "Crit. path" "Delay" "Cells" "Area";
  List.iter
    (fun (r : Hwmodel.report) ->
      Format.fprintf ppf "%-20s | %2d gates   | %.2f ns (%4.0f MHz) | %7d cells | %.3f mm^2@ "
        (Printf.sprintf "%d-wide %sTranslator" r.Hwmodel.params.Hwmodel.lanes
           (match r.Hwmodel.params.Hwmodel.target with
           | Hwmodel.Fixed_width -> ""
           | Hwmodel.Vla -> "VLA "
           | Hwmodel.Rvv ->
               Printf.sprintf "RVV m%d " r.Hwmodel.params.Hwmodel.lmul))
        r.Hwmodel.crit_path_gates r.Hwmodel.crit_path_ns r.Hwmodel.freq_mhz
        r.Hwmodel.total_cells r.Hwmodel.area_mm2)
    reports;
  Format.fprintf ppf "@]"

(* --- Table 5 --- *)

type table5_row = {
  t5_name : string;
  t5_loops : int;
  t5_mean : float;
  t5_max : int;
  t5_paper_mean : float;
  t5_paper_max : int;
}

let table5 () =
  Runner.run_many
    (fun (w : Workload.t) ->
      let sizes = List.map snd (Codegen.outlined_sizes w.program) in
      let n = List.length sizes in
      {
        t5_name = w.name;
        t5_loops = n;
        t5_mean =
          (if n = 0 then 0.0
           else float_of_int (List.fold_left ( + ) 0 sizes) /. float_of_int n);
        t5_max = List.fold_left max 0 sizes;
        t5_paper_mean = w.paper.table5_mean;
        t5_paper_max = w.paper.table5_max;
      })
    (Workload.all ())

let pp_table5 ppf rows =
  Format.fprintf ppf
    "@[<v>Table 5: scalar instructions in outlined function(s)@ %-12s | %5s | %12s | %12s@ "
    "Benchmark" "Loops" "Mean (paper)" "Max (paper)";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-12s | %5d | %5.1f (%5.1f) | %4d (%4d)@ " r.t5_name
        r.t5_loops r.t5_mean r.t5_paper_mean r.t5_max r.t5_paper_max)
    rows;
  Format.fprintf ppf "@]"

(* --- Table 6 --- *)

type table6_row = {
  t6_name : string;
  t6_lt150 : int;
  t6_lt300 : int;
  t6_gt300 : int;
  t6_mean : int;
  t6_paper : Workload.paper_ref;
}

(* The paper's Table 6 metric, read literally: cycles between the first
   two consecutive calls (start to start). Since translation proceeds
   during the first execution, everything beyond the first call's
   duration is slack for the translator. *)
let region_first_gap (run : Cpu.run) =
  List.filter_map
    (fun (r : Cpu.region_report) ->
      match r.Cpu.calls with
      | (start0, _) :: (start1, _) :: _ -> Some (r.Cpu.label, start1 - start0)
      | [ _ ] | [] -> None)
    run.Cpu.regions

let table6 () =
  Runner.run_many
    (fun (w : Workload.t) ->
      let { Runner.run; _ } = Runner.run_cached w (Runner.Liquid 8) in
      let gaps = List.map snd (region_first_gap run) in
      let n = List.length gaps in
      {
        t6_name = w.name;
        t6_lt150 = List.length (List.filter (fun g -> g < 150) gaps);
        t6_lt300 = List.length (List.filter (fun g -> g >= 150 && g < 300) gaps);
        t6_gt300 = List.length (List.filter (fun g -> g >= 300) gaps);
        t6_mean =
          (if n = 0 then 0 else List.fold_left ( + ) 0 gaps / n);
        t6_paper = w.paper;
      })
    (Workload.all ())

let pp_table6 ppf rows =
  Format.fprintf ppf
    "@[<v>Table 6: cycles between the first two consecutive calls to \
     outlined hot loops@ %-12s | %6s | %6s | %6s | %16s@ "
    "Benchmark" "<150" "<300" ">300" "Mean (paper)";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-12s | %2d (%2d) | %2d (%2d) | %2d (%2d) | %8d (%8d)@ "
        r.t6_name r.t6_lt150 r.t6_paper.Workload.table6_lt150 r.t6_lt300
        r.t6_paper.Workload.table6_lt300 r.t6_gt300
        r.t6_paper.Workload.table6_gt300 r.t6_mean
        r.t6_paper.Workload.table6_mean)
    rows;
  Format.fprintf ppf "@]"

(* --- Figure 6 --- *)

type fig6_row = {
  f6_name : string;
  f6_speedups : (int * float) list;
  f6_vla_speedups : (int * float) list;
  f6_rvv_speedups : (int * float) list;
  f6_native_delta : (int * float) list;
}

let figure6 ?(widths = [ 2; 4; 8; 16 ]) () =
  Runner.run_many
    (fun (w : Workload.t) ->
      let base = (Runner.run_cached w Runner.Baseline).run in
      let speedups =
        List.map
          (fun lanes ->
            let { Runner.run; _ } = Runner.run_cached w (Runner.Liquid lanes) in
            (lanes, Runner.speedup ~baseline:base run))
          widths
      in
      let vla_speedups =
        (* Same binary, translator targeting the length-agnostic
           predicated backend: no width/trip-count divisibility aborts,
           partial final iterations instead of scalar epilogues. *)
        List.map
          (fun lanes ->
            let { Runner.run; _ } =
              Runner.run_cached w (Runner.Liquid_vla lanes)
            in
            (lanes, Runner.speedup ~baseline:base run))
          widths
      in
      let rvv_speedups =
        (* Same binary again, translator targeting the RVV-style
           stripmining backend: the vsetvl grant absorbs the remainder
           like VLA predication does, and LMUL register grouping may
           multiply the effective width on low-pressure regions. *)
        List.map
          (fun lanes ->
            let { Runner.run; _ } =
              Runner.run_cached w (Runner.Liquid_rvv lanes)
            in
            (lanes, Runner.speedup ~baseline:base run))
          widths
      in
      let native_delta =
        (* The callout of Figure 6: re-run with translation removed from
           the picture (microcode present from the first call), i.e. a
           processor with built-in ISA support for the SIMD code. *)
        List.map
          (fun lanes ->
            let { Runner.run; _ } =
              Runner.run_cached w (Runner.Liquid_oracle lanes)
            in
            let native = Runner.speedup ~baseline:base run in
            (lanes, native -. List.assoc lanes speedups))
          widths
      in
      {
        f6_name = w.name;
        f6_speedups = speedups;
        f6_vla_speedups = vla_speedups;
        f6_rvv_speedups = rvv_speedups;
        f6_native_delta = native_delta;
      })
    (Workload.all ())

let pp_figure6 ppf rows =
  Format.fprintf ppf
    "@[<v>Figure 6: speedup vs no-SIMD baseline (one Liquid binary per \
     benchmark)@ %-12s | %6s %6s %6s %6s | %6s %6s %6s %6s | %6s %6s %6s %6s \
     | %s@ "
    "Benchmark" "w=2" "w=4" "w=8" "w=16" "vla=2" "vla=4" "vla=8" "vla=16"
    "rvv=2" "rvv=4" "rvv=8" "rvv=16" "max native-ISA delta";
  List.iter
    (fun r ->
      let s w = try List.assoc w r.f6_speedups with Not_found -> nan in
      let v w = try List.assoc w r.f6_vla_speedups with Not_found -> nan in
      let rv w = try List.assoc w r.f6_rvv_speedups with Not_found -> nan in
      let delta =
        List.fold_left (fun acc (_, d) -> Float.max acc (Float.abs d)) 0.0
          r.f6_native_delta
      in
      Format.fprintf ppf
        "%-12s | %6.2f %6.2f %6.2f %6.2f | %6.2f %6.2f %6.2f %6.2f | %6.2f \
         %6.2f %6.2f %6.2f | %.4f@ "
        r.f6_name (s 2) (s 4) (s 8) (s 16) (v 2) (v 4) (v 8) (v 16) (rv 2)
        (rv 4) (rv 8) (rv 16) delta)
    rows;
  Format.fprintf ppf "@]"

(* --- Code size --- *)

type size_row = {
  sz_name : string;
  sz_baseline : int;
  sz_liquid : int;
  sz_overhead_pct : float;
}

let code_size () =
  Runner.run_many
    (fun (w : Workload.t) ->
      let base = Image.of_program (Codegen.baseline w.program) in
      let liquid = Image.of_program (Codegen.liquid w.program) in
      let bb = Encode.size_bytes base and lb = Encode.size_bytes liquid in
      {
        sz_name = w.name;
        sz_baseline = bb;
        sz_liquid = lb;
        sz_overhead_pct = 100.0 *. float_of_int (lb - bb) /. float_of_int bb;
      })
    (Workload.all ())

let pp_code_size ppf rows =
  Format.fprintf ppf
    "@[<v>Code size overhead (paper: <1%% worst case)@ %-12s | %9s | %9s | %s@ "
    "Benchmark" "Baseline" "Liquid" "Overhead";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-12s | %7d B | %7d B | %+.2f%%@ " r.sz_name
        r.sz_baseline r.sz_liquid r.sz_overhead_pct)
    rows;
  Format.fprintf ppf "@]"

(* --- Microcode cache --- *)

type ucode_row = {
  uc_name : string;
  uc_regions : int;
  uc_max_occupancy : int;
  uc_max_uops : int;
  uc_evictions : int;
}

let ucode_cache () =
  Runner.run_many
    (fun (w : Workload.t) ->
      let { Runner.run; _ } = Runner.run_cached w (Runner.Liquid 16) in
      let max_uops =
        List.fold_left
          (fun acc (r : Cpu.region_report) ->
            match r.Cpu.outcome with
            | Cpu.R_installed { uops; _ } -> max acc uops
            | Cpu.R_untried | Cpu.R_failed _ -> acc)
          0 run.Cpu.regions
      in
      {
        uc_name = w.name;
        uc_regions = List.length run.Cpu.regions;
        uc_max_occupancy = run.Cpu.ucode_max_occupancy;
        uc_max_uops = max_uops;
        uc_evictions = run.Cpu.stats.Stats.ucode_evictions;
      })
    (Workload.all ())

let pp_ucode_cache ppf rows =
  Format.fprintf ppf
    "@[<v>Microcode cache requirements (paper: 8 entries x 64 instructions \
     suffice)@ %-12s | %7s | %9s | %8s | %s@ "
    "Benchmark" "Regions" "Live max" "Max uops" "Evictions";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-12s | %7d | %9d | %8d | %d@ " r.uc_name r.uc_regions
        r.uc_max_occupancy r.uc_max_uops r.uc_evictions)
    rows;
  Format.fprintf ppf "@]"

(* --- Translation latency ablation --- *)

type latency_row = { lat_name : string; lat_speedups : (int * float) list }

let latency_ablation ?(costs = [ 1; 10; 30; 100 ]) () =
  Runner.run_many
    (fun (w : Workload.t) ->
      let base = (Runner.run_cached w Runner.Baseline).run in
      let speedups =
        List.map
          (fun c ->
            let { Runner.run; _ } =
              Runner.run_cached ~translation_cpi:c w (Runner.Liquid 8)
            in
            (c, Runner.speedup ~baseline:base run))
          costs
      in
      { lat_name = w.name; lat_speedups = speedups })
    (Workload.all ())

let pp_latency ppf rows =
  Format.fprintf ppf
    "@[<v>Translation-latency sensitivity: speedup at 8 lanes vs cycles \
     spent per translated instruction@ %-12s |" "Benchmark";
  (match rows with
  | [] -> ()
  | r :: _ ->
      List.iter
        (fun (c, _) -> Format.fprintf ppf " %5s" (Printf.sprintf "c=%d" c))
        r.lat_speedups);
  Format.fprintf ppf "@ ";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-12s |" r.lat_name;
      List.iter (fun (_, s) -> Format.fprintf ppf " %5.2f" s) r.lat_speedups;
      Format.fprintf ppf "@ ")
    rows;
  Format.fprintf ppf "@]"

(* --- virtualization-overhead convergence --- *)

type overhead_row = {
  ov_frames : int;
  ov_liquid : float;
  ov_oracle : float;
  ov_delta : float;
}

let overhead_convergence ?(frames_list = [ 2; 5; 20; 80; 320 ]) () =
  let module Kernels = Liquid_workloads.Kernels in
  let module Build = Liquid_scalarize.Build in
  let program frames =
    let tap =
      Kernels.mac_chain ~name:"ov_tap" ~count:1024
        ~terms:[ ("ov_x", 5); ("ov_y", 3) ]
        ~out:"ov_o"
    in
    {
      Liquid_scalarize.Vloop.name = "ov";
      sections =
        Kernels.counted ~reg:(Build.r 15) ~label:"ov_frame" ~count:frames
          [ Liquid_scalarize.Vloop.Loop tap ];
      data =
        [
          Kernels.warray "ov_x" 1024 (fun i -> (i * 13 mod 255) - 127;);
          Kernels.warray "ov_y" 1024 (fun i -> (i * 7 mod 101) - 50);
          Kernels.wzeros "ov_o" 1024;
        ];
    }
  in
  Runner.run_many
    (fun frames ->
      let p = program frames in
      let base =
        Cpu.run ~config:Cpu.scalar_config
          (Image.of_program (Codegen.baseline p))
      in
      let image = Image.of_program (Codegen.liquid p) in
      let liquid = Cpu.run ~config:(Cpu.liquid_config ~lanes:8) image in
      let oracle =
        Cpu.run
          ~config:{ (Cpu.liquid_config ~lanes:8) with Cpu.oracle_translation = true }
          image
      in
      let speedup (r : Cpu.run) =
        float_of_int base.Cpu.stats.Stats.cycles
        /. float_of_int r.Cpu.stats.Stats.cycles
      in
      {
        ov_frames = frames;
        ov_liquid = speedup liquid;
        ov_oracle = speedup oracle;
        ov_delta = speedup oracle -. speedup liquid;
      })
    frames_list

let pp_overhead ppf rows =
  Format.fprintf ppf
    "@[<v>Virtualization overhead vs run length (paper: 0.001 worst case on \
     full-length runs)@ %8s | %8s | %8s | %s@ "
    "Calls" "Liquid" "Oracle" "Delta";
  List.iter
    (fun r ->
      Format.fprintf ppf "%8d | %8.3f | %8.3f | %.4f@ " r.ov_frames r.ov_liquid
        r.ov_oracle r.ov_delta)
    rows;
  Format.fprintf ppf "@]"

(* --- design-choice ablations --- *)

type sweep_row = { sw_value : int; sw_speedup : float; sw_hit_rate : float }

let sweep_workload name mk_config values =
  let w =
    match Workload.find name with Some w -> w | None -> invalid_arg name
  in
  let base = (Runner.run_cached w Runner.Baseline).Runner.run in
  let image = Image.of_program (Codegen.liquid w.Workload.program) in
  Runner.run_many
    (fun value ->
      let run = Cpu.run ~config:(mk_config value) image in
      let calls = run.Cpu.stats.Stats.region_calls in
      {
        sw_value = value;
        sw_speedup = Runner.speedup ~baseline:base run;
        sw_hit_rate =
          (if calls = 0 then 0.0
           else
             float_of_int run.Cpu.stats.Stats.ucode_hits /. float_of_int calls);
      })
    values

let ucode_entries_ablation ?(entries = [ 1; 2; 4; 8; 16 ]) () =
  (* Round-robin over eight hot loops: below eight entries, LRU evicts
     every loop before its next call and no microcode is ever reused. *)
  let module Kernels = Liquid_workloads.Kernels in
  let module Build = Liquid_scalarize.Build in
  let loops =
    List.init 8 (fun k ->
        Liquid_scalarize.Vloop.Loop
          (Kernels.saxpy
             ~name:(Printf.sprintf "uc_l%d" k)
             ~count:64 ~a:(k + 1) ~x:"uc_x" ~y:"uc_y" ~out:"uc_y"))
  in
  let p =
    {
      Liquid_scalarize.Vloop.name = "uc";
      sections =
        Kernels.counted ~reg:(Build.r 15) ~label:"uc_frame" ~count:6 loops;
      data =
        [
          Kernels.warray "uc_x" 64 (fun i -> i);
          Kernels.warray "uc_y" 64 (fun i -> i * 2);
        ];
    }
  in
  let base =
    Cpu.run ~config:Cpu.scalar_config (Image.of_program (Codegen.baseline p))
  in
  let image = Image.of_program (Codegen.liquid p) in
  Runner.run_many
    (fun n ->
      let run =
        Cpu.run
          ~config:{ (Cpu.liquid_config ~lanes:8) with Cpu.ucode_entries = n }
          image
      in
      let calls = run.Cpu.stats.Stats.region_calls in
      {
        sw_value = n;
        sw_speedup =
          float_of_int base.Cpu.stats.Stats.cycles
          /. float_of_int run.Cpu.stats.Stats.cycles;
        sw_hit_rate =
          (if calls = 0 then 0.0
           else
             float_of_int run.Cpu.stats.Stats.ucode_hits /. float_of_int calls);
      })
    entries

let buffer_ablation ?(capacities = [ 16; 32; 48; 64; 128 ]) () =
  sweep_workload "101.tomcatv"
    (fun n -> { (Cpu.liquid_config ~lanes:8) with Cpu.max_uops = n })
    capacities

let bus_ablation ?(widths = [ 4; 8; 16; 32; 64 ]) () =
  sweep_workload "FIR"
    (fun n -> { (Cpu.liquid_config ~lanes:16) with Cpu.vec_bus_bytes = n })
    widths

let pp_sweep ~title ~value_label ppf rows =
  Format.fprintf ppf "@[<v>%s@ %12s | %8s | %s@ " title value_label "Speedup"
    "Ucode hit rate";
  List.iter
    (fun r ->
      Format.fprintf ppf "%12d | %8.2f | %.2f@ " r.sw_value r.sw_speedup
        r.sw_hit_rate)
    rows;
  Format.fprintf ppf "@]"

(* --- hardware vs software translation --- *)

type kind_row = { kr_name : string; kr_hw : float; kr_sw : float }

let translator_kind_ablation ?(cost = 100) () =
  Runner.run_many
    (fun (w : Workload.t) ->
      let base = (Runner.run_cached w Runner.Baseline).Runner.run in
      let image = Image.of_program (Codegen.liquid w.Workload.program) in
      let speedup kind cycles_per_insn =
        let run =
          Cpu.run
            ~config:
              {
                (Cpu.liquid_config ~lanes:8) with
                Cpu.translator = Some { Cpu.cycles_per_insn; Cpu.kind };
              }
            image
        in
        Runner.speedup ~baseline:base run
      in
      {
        kr_name = w.name;
        kr_hw = speedup Cpu.Hardware 1;
        kr_sw = speedup Cpu.Software cost;
      })
    (Workload.all ())

let pp_kind ppf rows =
  Format.fprintf ppf
    "@[<v>Hardware vs software translation (speedup at 8 lanes; software \
     JIT stalls the core)@ %-12s | %8s | %s@ "
    "Benchmark" "Hardware" "Software JIT";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-12s | %8.2f | %.2f@ " r.kr_name r.kr_hw r.kr_sw)
    rows;
  Format.fprintf ppf "@]"

let interrupt_ablation ?(intervals = [ 0; 100_000; 10_000; 1_000; 200 ]) () =
  sweep_workload "FFT"
    (fun n ->
      {
        (Cpu.liquid_config ~lanes:8) with
        Cpu.interrupt_interval = (if n = 0 then None else Some n);
      })
    intervals

(* --- CSV export --- *)

let csv_table5 rows =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "benchmark,loops,mean,max,paper_mean,paper_max\n";
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "%s,%d,%.2f,%d,%.2f,%d\n" r.t5_name r.t5_loops r.t5_mean
           r.t5_max r.t5_paper_mean r.t5_paper_max))
    rows;
  Buffer.contents buf

let csv_table6 rows =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    "benchmark,lt150,lt300,gt300,mean,paper_lt150,paper_lt300,paper_gt300,paper_mean\n";
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "%s,%d,%d,%d,%d,%d,%d,%d,%d\n" r.t6_name r.t6_lt150
           r.t6_lt300 r.t6_gt300 r.t6_mean r.t6_paper.Workload.table6_lt150
           r.t6_paper.Workload.table6_lt300 r.t6_paper.Workload.table6_gt300
           r.t6_paper.Workload.table6_mean))
    rows;
  Buffer.contents buf

let csv_figure6 rows =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    "benchmark,width,speedup,vla_speedup,rvv_speedup,native_delta\n";
  List.iter
    (fun r ->
      List.iter
        (fun (w, s) ->
          let vla =
            match List.assoc_opt w r.f6_vla_speedups with
            | Some v -> Printf.sprintf "%.4f" v
            | None -> ""
          in
          let rvv =
            match List.assoc_opt w r.f6_rvv_speedups with
            | Some v -> Printf.sprintf "%.4f" v
            | None -> ""
          in
          let delta =
            match List.assoc_opt w r.f6_native_delta with
            | Some d -> Printf.sprintf "%.4f" d
            | None -> ""
          in
          Buffer.add_string buf
            (Printf.sprintf "%s,%d,%.4f,%s,%s,%s\n" r.f6_name w s vla rvv delta))
        r.f6_speedups)
    rows;
  Buffer.contents buf
