open Liquid_prog
open Liquid_pipeline
open Liquid_scalarize
open Liquid_translate
open Liquid_workloads

type variant =
  | Baseline
  | Liquid_scalar
  | Liquid of int
  | Liquid_oracle of int
  | Liquid_vla of int
  | Liquid_vla_oracle of int
  | Liquid_rvv of int
  | Liquid_rvv_oracle of int
  | Native of int

type result = { variant : variant; program : Program.t; run : Cpu.run }

let variant_name = function
  | Baseline -> "baseline"
  | Liquid_scalar -> "liquid/scalar"
  | Liquid w -> Printf.sprintf "liquid/%d-wide" w
  | Liquid_oracle w -> Printf.sprintf "liquid-oracle/%d-wide" w
  | Liquid_vla w -> Printf.sprintf "liquid-vla/%d-wide" w
  | Liquid_vla_oracle w -> Printf.sprintf "liquid-vla-oracle/%d-wide" w
  | Liquid_rvv w -> Printf.sprintf "liquid-rvv/%d-wide" w
  | Liquid_rvv_oracle w -> Printf.sprintf "liquid-rvv-oracle/%d-wide" w
  | Native w -> Printf.sprintf "native/%d-wide" w

(* One parser for the CLI's and the sweep service's variant syntax, so
   the two front ends can never drift apart. *)
let variant_of_string s =
  let width ctor w =
    match int_of_string_opt w with
    | Some w when w > 0 -> Ok (ctor w)
    | Some _ | None -> Error (Printf.sprintf "bad width %S" w)
  in
  match String.split_on_char ':' s with
  | [ "baseline" ] -> Ok Baseline
  | [ "liquid"; "scalar" ] -> Ok Liquid_scalar
  | [ "liquid"; w ] -> width (fun w -> Liquid w) w
  | [ "oracle"; w ] | [ "liquid-oracle"; w ] -> width (fun w -> Liquid_oracle w) w
  | [ "vla"; w ] | [ "liquid-vla"; w ] -> width (fun w -> Liquid_vla w) w
  | [ "vla-oracle"; w ] | [ "liquid-vla-oracle"; w ] ->
      width (fun w -> Liquid_vla_oracle w) w
  | [ "rvv"; w ] | [ "liquid-rvv"; w ] -> width (fun w -> Liquid_rvv w) w
  | [ "rvv-oracle"; w ] | [ "liquid-rvv-oracle"; w ] ->
      width (fun w -> Liquid_rvv_oracle w) w
  | [ "native"; w ] -> width (fun w -> Native w) w
  | _ ->
      Error
        (Printf.sprintf
           "unknown variant %S; expected baseline, liquid:scalar, \
            liquid:<width>, vla:<width>, rvv:<width>, oracle:<width>, \
            vla-oracle:<width>, rvv-oracle:<width> or native:<width>"
           s)

let variant_to_string = function
  | Baseline -> "baseline"
  | Liquid_scalar -> "liquid:scalar"
  | Liquid w -> Printf.sprintf "liquid:%d" w
  | Liquid_oracle w -> Printf.sprintf "oracle:%d" w
  | Liquid_vla w -> Printf.sprintf "vla:%d" w
  | Liquid_vla_oracle w -> Printf.sprintf "vla-oracle:%d" w
  | Liquid_rvv w -> Printf.sprintf "rvv:%d" w
  | Liquid_rvv_oracle w -> Printf.sprintf "rvv-oracle:%d" w
  | Native w -> Printf.sprintf "native:%d" w

let program_of (w : Workload.t) = function
  | Baseline -> Codegen.baseline w.program
  | Liquid_scalar | Liquid _ | Liquid_oracle _ | Liquid_vla _
  | Liquid_vla_oracle _ | Liquid_rvv _ | Liquid_rvv_oracle _ ->
      Codegen.liquid w.program
  | Native width -> Codegen.native ~width w.program

let config_of ?(translation_cpi = 1) = function
  | Baseline | Liquid_scalar -> Cpu.scalar_config
  | Liquid lanes ->
      {
        (Cpu.liquid_config ~lanes) with
        Cpu.translator =
          Some { Cpu.cycles_per_insn = translation_cpi; Cpu.kind = Cpu.Hardware };
      }
  | Liquid_oracle lanes ->
      { (Cpu.liquid_config ~lanes) with Cpu.oracle_translation = true }
  | Liquid_vla lanes ->
      {
        (Cpu.liquid_config ~lanes) with
        Cpu.backend = Backend.vla;
        Cpu.translator =
          Some { Cpu.cycles_per_insn = translation_cpi; Cpu.kind = Cpu.Hardware };
      }
  | Liquid_vla_oracle lanes ->
      {
        (Cpu.liquid_config ~lanes) with
        Cpu.backend = Backend.vla;
        Cpu.oracle_translation = true;
      }
  | Liquid_rvv lanes ->
      {
        (Cpu.liquid_config ~lanes) with
        Cpu.backend = Backend.rvv;
        Cpu.translator =
          Some { Cpu.cycles_per_insn = translation_cpi; Cpu.kind = Cpu.Hardware };
      }
  | Liquid_rvv_oracle lanes ->
      {
        (Cpu.liquid_config ~lanes) with
        Cpu.backend = Backend.rvv;
        Cpu.oracle_translation = true;
      }
  | Native lanes -> Cpu.native_config ~lanes

let run ?translation_cpi ?fuel ?(blocks = true) ?(superblocks = true)
    (w : Workload.t) variant =
  let program = program_of w variant in
  let config = config_of ?translation_cpi variant in
  let config =
    match fuel with None -> config | Some fuel -> { config with Cpu.fuel }
  in
  let config = { config with Cpu.blocks; Cpu.superblocks } in
  { variant; program; run = Cpu.run ~config (Image.of_program program) }

(* --- memoized runs --- *)

(* Simulations are pure functions of the workload, variant and machine
   knobs, and the experiment suite re-runs the same (workload, variant)
   pairs dozens of times (every table needs the baseline cycles of every
   workload). One process-wide table keyed on the full input tuple turns
   those repeats into lookups. The [translation_cpi] knob only reaches
   the config of [Liquid] variants, so it is normalized out of the key
   everywhere else.

   The table is a bounded exact-LRU [Lru] (it used to be an unbounded
   hashtable — fine for one report run, a leak for the long-lived sweep
   service): the capacity comfortably covers one full experiment
   report's distinct keys, so the reports still see pure lookups, while
   a service that streams millions of distinct jobs through the process
   stays at a flat ceiling. *)

type cache_key = {
  ck_workload : string;
  ck_variant : variant;
  ck_cpi : int;
  ck_fuel : int;
  ck_blocks : bool;
  ck_super : bool;
}

let cache_capacity = 2048
let cache : (cache_key, result) Lru.t = Lru.create ~capacity:cache_capacity
let cache_mutex = Mutex.create ()

let cache_key (w : Workload.t) variant ~translation_cpi ~fuel ~blocks
    ~superblocks =
  {
    ck_workload = w.Workload.name;
    ck_variant = variant;
    ck_cpi =
      (match variant with
      | Liquid _ | Liquid_vla _ | Liquid_rvv _ ->
          Option.value translation_cpi ~default:1
      | Baseline | Liquid_scalar | Liquid_oracle _ | Liquid_vla_oracle _
      | Liquid_rvv_oracle _ | Native _ ->
          1);
    ck_fuel = Option.value fuel ~default:Cpu.scalar_config.Cpu.fuel;
    ck_blocks = blocks;
    ck_super = superblocks;
  }

let run_cached ?translation_cpi ?fuel ?(blocks = true) ?(superblocks = true)
    (w : Workload.t) variant =
  let key = cache_key w variant ~translation_cpi ~fuel ~blocks ~superblocks in
  match Mutex.protect cache_mutex (fun () -> Lru.find cache key) with
  | Some r -> r
  | None ->
      let r = run ?translation_cpi ?fuel ~blocks ~superblocks w variant in
      Mutex.protect cache_mutex (fun () ->
          (* A racing domain may have finished the same key first; its
             entry wins so every caller shares one result. The re-probe
             counts as a second lookup in the cache counters, which is
             what it is. *)
          match Lru.find cache key with
          | Some winner -> winner
          | None ->
              Lru.add cache key r;
              r)

let clear_cache () = Mutex.protect cache_mutex (fun () -> Lru.clear cache)

let cache_counters () =
  Mutex.protect cache_mutex (fun () -> Lru.counters cache)

(* --- domain fan-out --- *)

type 'a failure = { f_index : int; f_item : 'a; f_exn : exn }

(* Per-item crash isolation: each application of [f] is fenced inside
   its worker, so one poisoned item yields [Error] in its slot while
   every other item still comes back [Ok] — a sweep never loses its
   completed results to one bad run. The try sits inside the worker
   loop (not around [Domain.join]), so no exception can escape a
   domain and tear the pool down. *)
let run_many_result ?domains f items =
  let items_a = Array.of_list items in
  let n = Array.length items_a in
  let workers =
    let d =
      match domains with
      | Some d -> d
      | None -> Domain.recommended_domain_count ()
    in
    max 1 (min d n)
  in
  let one i item =
    match f item with
    | r -> Ok r
    | exception e -> Error { f_index = i; f_item = item; f_exn = e }
  in
  if n = 0 then []
  else if workers = 1 then List.mapi one items
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n then continue := false
        else results.(i) <- Some (one i items_a.(i))
      done
    in
    let spawned = List.init (workers - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join spawned;
    Array.to_list
      (Array.map
         (function Some r -> r | None -> assert false)
         results)
  end

let run_many ?domains f items =
  List.map
    (function Ok r -> r | Error { f_exn; _ } -> raise f_exn)
    (run_many_result ?domains f items)

let snapshot ?collector { variant; program; run } =
  Liquid_obs.Snapshot.of_run ~label:program.Program.name
    ~variant:(variant_name variant) ?collector run

let speedup ~(baseline : Cpu.run) (run : Cpu.run) =
  float_of_int baseline.Cpu.stats.Liquid_machine.Stats.cycles
  /. float_of_int run.Cpu.stats.Liquid_machine.Stats.cycles
