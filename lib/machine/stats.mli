(** Mutable counters collected during a simulation run.

    Single-writer discipline: every counter here has exactly one source.
    The CPU core owns the execution-stream counters (cycles, fetches,
    retired instructions, loads/stores, region calls, ucode hits,
    translation start/abort/busy). Counters that mirror a hardware
    unit's internal tally — cache hits/misses, branch predictor
    mispredicts, microcode-cache installs/evictions — are {e derived}
    from that unit when the run is collected, never bumped
    independently, so they can't drift from the unit's own view
    ({!Liquid_obs.Snapshot} turns any disagreement into a test
    failure). *)

type t = {
  mutable cycles : int;  (** total elapsed cycles *)
  mutable fetches : int;
      (** instruction fetches from the binary image (one per step;
          microcode uops execute out of the microcode cache and do not
          fetch) *)
  mutable scalar_insns : int;  (** retired baseline-ISA instructions *)
  mutable vector_insns : int;  (** retired SIMD instructions *)
  mutable uops_retired : int;
      (** microcode uops retired (already included in
          scalar_insns/vector_insns; conservation:
          [scalar + vector = fetches + uops_retired]) *)
  mutable loads : int;
  mutable stores : int;
  mutable branches : int;  (** derived: {!Branch_pred} lookups *)
  mutable branch_mispredicts : int;  (** derived: {!Branch_pred} *)
  mutable icache_hits : int;  (** derived: instruction {!Cache} *)
  mutable icache_misses : int;  (** derived: instruction {!Cache} *)
  mutable dcache_hits : int;  (** derived: data {!Cache} *)
  mutable dcache_misses : int;  (** derived: data {!Cache} *)
  mutable region_calls : int;  (** calls of outlined (translatable) regions *)
  mutable ucode_hits : int;  (** region calls served from the microcode cache *)
  mutable ucode_installs : int;  (** derived: microcode cache *)
  mutable ucode_evictions : int;
      (** derived: microcode cache (capacity and forced evictions) *)
  mutable translations_started : int;
  mutable translations_aborted : int;
  mutable translation_busy_cycles : int;
      (** cycles during which the translator was occupied *)
}

val create : unit -> t
val reset : t -> unit

val add : t -> t -> unit
(** [add acc x] accumulates [x] into [acc] field-wise. *)

val copy : t -> t
(** A detached clone — snapshotting without aliasing the live record. *)

val total_insns : t -> int
val pp : Format.formatter -> t -> unit
