(** Branch direction predictor.

    Models a small branch target buffer with per-entry 2-bit saturating
    counters, backed by a static not-taken policy for branches that miss
    in the BTB. This matches the simple front end of an in-order embedded
    core: hot loop back-edges predict taken after the first encounter,
    and the final loop exit mispredicts once. *)

type t

val create : ?entries:int -> unit -> t
(** [entries] is the BTB capacity (default 128, direct-mapped by PC). *)

val predict_and_update : t -> pc:int -> taken:bool -> bool
(** [predict_and_update t ~pc ~taken] returns [true] when the prediction
    for the branch at [pc] matched the actual [taken] outcome, then trains
    the predictor with that outcome. *)

val taken_saturated : t -> pc:int -> bool
(** [taken_saturated t ~pc] is [true] when the branch at [pc] owns its
    BTB entry at the saturated taken count: it predicts taken, a
    taken-training leaves the entry unchanged, and it cannot
    mispredict. A trace engine that has verified this for every branch
    it replays may skip the per-iteration [predict_and_update] calls
    and account for them with {!credit_lookups} — the predictor
    analogue of {!Cache.credit_hits}. *)

val credit_lookups : t -> int -> unit
(** [credit_lookups t n] records [n] elided predictions whose outcome
    is known to be a correct taken prediction against a
    {!taken_saturated} entry (no state change, no mispredict). *)

val lookups : t -> int
val mispredicts : t -> int

type counters = { p_lookups : int; p_mispredicts : int }

val counters : t -> counters
(** Immutable snapshot of the predictor's own tally — the single source
    the run-level {!Stats} branch counters are derived from. *)

val reset_stats : t -> unit
