(** Branch direction predictor.

    Models a small branch target buffer with per-entry 2-bit saturating
    counters, backed by a static not-taken policy for branches that miss
    in the BTB. This matches the simple front end of an in-order embedded
    core: hot loop back-edges predict taken after the first encounter,
    and the final loop exit mispredicts once. *)

type t

val create : ?entries:int -> unit -> t
(** [entries] is the BTB capacity (default 128, direct-mapped by PC). *)

val predict_and_update : t -> pc:int -> taken:bool -> bool
(** [predict_and_update t ~pc ~taken] returns [true] when the prediction
    for the branch at [pc] matched the actual [taken] outcome, then trains
    the predictor with that outcome. *)

val lookups : t -> int
val mispredicts : t -> int

type counters = { p_lookups : int; p_mispredicts : int }

val counters : t -> counters
(** Immutable snapshot of the predictor's own tally — the single source
    the run-level {!Stats} branch counters are derived from. *)

val reset_stats : t -> unit
