let page_bits = 12
let page_size = 1 lsl page_bits
let page_mask = page_size - 1
let addr_mask = 0xFFFFFFFF

(* Sparse paged memory with a one-entry page cache. Simulation touches
   the same page for long runs of consecutive accesses (code fetch aside,
   the working set of a loop iteration is a handful of arrays), so the
   cache turns the common case into a single comparison instead of a
   [Hashtbl] probe per byte. [no_page] is a zero-length sentinel standing
   for "page not allocated"; it can never be returned for a real page. *)

type t = {
  pages : (int, Bytes.t) Hashtbl.t;
  mutable last_idx : int;  (** page index held in [last_page]; -1 = none *)
  mutable last_page : Bytes.t;
}

let no_page = Bytes.create 0

let create () = { pages = Hashtbl.create 64; last_idx = -1; last_page = no_page }

let copy m =
  let pages = Hashtbl.create (Hashtbl.length m.pages) in
  Hashtbl.iter (fun k v -> Hashtbl.replace pages k (Bytes.copy v)) m.pages;
  { pages; last_idx = -1; last_page = no_page }

(* Resolve a page for reading: [no_page] when untouched (reads as zero). *)
let[@inline] find_page m idx =
  if m.last_idx = idx then m.last_page
  else
    match Hashtbl.find_opt m.pages idx with
    | Some p ->
        m.last_idx <- idx;
        m.last_page <- p;
        p
    | None -> no_page

(* Resolve a page for writing, allocating on first touch. *)
let page_of m idx =
  if m.last_idx = idx then m.last_page
  else begin
    let p =
      match Hashtbl.find_opt m.pages idx with
      | Some p -> p
      | None ->
          let p = Bytes.make page_size '\000' in
          Hashtbl.replace m.pages idx p;
          p
    in
    m.last_idx <- idx;
    m.last_page <- p;
    p
  end

let read_byte m addr =
  let addr = addr land addr_mask in
  let p = find_page m (addr lsr page_bits) in
  if p == no_page then 0 else Char.code (Bytes.unsafe_get p (addr land page_mask))

let write_byte m addr v =
  let addr = addr land addr_mask in
  let p = page_of m (addr lsr page_bits) in
  Bytes.unsafe_set p (addr land page_mask) (Char.unsafe_chr (v land 0xFF))

let sign_extend ~bits v =
  let shift = Sys.int_size - bits in
  (v lsl shift) asr shift

(* Slow path: byte-at-a-time assembly for accesses that cross a page
   boundary (each byte's address wraps within the 32-bit space, exactly
   as four separate [read_byte] calls would). *)
let read_slow m ~addr ~bytes ~signed =
  let raw =
    match bytes with
    | 1 -> read_byte m addr
    | 2 -> read_byte m addr lor (read_byte m (addr + 1) lsl 8)
    | 4 ->
        read_byte m addr
        lor (read_byte m (addr + 1) lsl 8)
        lor (read_byte m (addr + 2) lsl 16)
        lor (read_byte m (addr + 3) lsl 24)
    | n -> invalid_arg (Printf.sprintf "Memory.read: bad size %d" n)
  in
  if signed || bytes = 4 then sign_extend ~bits:(bytes * 8) raw else raw

let read m ~addr ~bytes ~signed =
  let addr = addr land addr_mask in
  let off = addr land page_mask in
  if off + bytes <= page_size then begin
    let p = find_page m (addr lsr page_bits) in
    if p == no_page then
      match bytes with
      | 1 | 2 | 4 -> 0
      | n -> invalid_arg (Printf.sprintf "Memory.read: bad size %d" n)
    else
      match bytes with
      | 1 ->
          let v = Bytes.get_uint8 p off in
          if signed then sign_extend ~bits:8 v else v
      | 2 -> if signed then Bytes.get_int16_le p off else Bytes.get_uint16_le p off
      | 4 ->
          (* two unboxed 16-bit reads; [get_int32_le] would box an
             [int32] on every word load *)
          sign_extend ~bits:32
            (Bytes.get_uint16_le p off lor (Bytes.get_uint16_le p (off + 2) lsl 16))
      | n -> invalid_arg (Printf.sprintf "Memory.read: bad size %d" n)
  end
  else read_slow m ~addr ~bytes ~signed

let write_slow m ~addr ~bytes v =
  match bytes with
  | 1 -> write_byte m addr v
  | 2 ->
      write_byte m addr v;
      write_byte m (addr + 1) (v asr 8)
  | 4 ->
      write_byte m addr v;
      write_byte m (addr + 1) (v asr 8);
      write_byte m (addr + 2) (v asr 16);
      write_byte m (addr + 3) (v asr 24)
  | n -> invalid_arg (Printf.sprintf "Memory.write: bad size %d" n)

let write m ~addr ~bytes v =
  let addr = addr land addr_mask in
  let off = addr land page_mask in
  if off + bytes <= page_size then
    let p = page_of m (addr lsr page_bits) in
    match bytes with
    | 1 -> Bytes.unsafe_set p off (Char.unsafe_chr (v land 0xFF))
    | 2 -> Bytes.set_uint16_le p off (v land 0xFFFF)
    | 4 ->
        Bytes.set_uint16_le p off (v land 0xFFFF);
        Bytes.set_uint16_le p (off + 2) ((v asr 16) land 0xFFFF)
    | n -> invalid_arg (Printf.sprintf "Memory.write: bad size %d" n)
  else write_slow m ~addr ~bytes v

let read_block m ~addr ~len dst =
  if len < 0 || len > Bytes.length dst then
    invalid_arg "Memory.read_block: bad length";
  let addr = ref (addr land addr_mask) in
  let pos = ref 0 in
  while !pos < len do
    let off = !addr land page_mask in
    let n = min (len - !pos) (page_size - off) in
    let p = find_page m (!addr lsr page_bits) in
    if p == no_page then Bytes.fill dst !pos n '\000'
    else Bytes.blit p off dst !pos n;
    pos := !pos + n;
    addr := (!addr + n) land addr_mask
  done

let write_block m ~addr ~len src =
  if len < 0 || len > Bytes.length src then
    invalid_arg "Memory.write_block: bad length";
  let addr = ref (addr land addr_mask) in
  let pos = ref 0 in
  while !pos < len do
    let off = !addr land page_mask in
    let n = min (len - !pos) (page_size - off) in
    let p = page_of m (!addr lsr page_bits) in
    Bytes.blit src !pos p off n;
    pos := !pos + n;
    addr := (!addr + n) land addr_mask
  done

let blit_bytes m ~addr src = write_block m ~addr ~len:(Bytes.length src) src

let touched_pages m = Hashtbl.length m.pages

let zero_page = Bytes.make page_size '\000'

let equal a b =
  let check pages_a pages_b =
    Hashtbl.fold
      (fun idx pa acc ->
        acc
        &&
        match Hashtbl.find_opt pages_b idx with
        | Some pb -> Bytes.equal pa pb
        | None -> Bytes.equal pa zero_page)
      pages_a true
  in
  check a.pages b.pages && check b.pages a.pages

let diff a b =
  let out = ref [] and count = ref 0 in
  let page_indices = Hashtbl.create 16 in
  Hashtbl.iter (fun k _ -> Hashtbl.replace page_indices k ()) a.pages;
  Hashtbl.iter (fun k _ -> Hashtbl.replace page_indices k ()) b.pages;
  Hashtbl.iter
    (fun idx () ->
      if !count < 32 then
        for off = 0 to page_size - 1 do
          let addr = (idx lsl page_bits) lor off in
          let va = read_byte a addr and vb = read_byte b addr in
          if va <> vb && !count < 32 then begin
            out := (addr, va, vb) :: !out;
            incr count
          end
        done)
    page_indices;
  List.rev !out
