type config = { size_bytes : int; line_bytes : int; assoc : int }

let arm926_config = { size_bytes = 16 * 1024; line_bytes = 32; assoc = 64 }

(* Exact LRU over flat unboxed arrays. Each set owns a segment of
   [tags]/[ages] ([set * assoc .. set * assoc + assoc - 1]); the
   [nvalid] valid ways are packed at the front of the segment, so the
   hit scan walks only lines that actually exist and a line's slot is
   stable once allocated. Recency lives in the [ages] clock stamps: a
   hit is one store, a miss either appends (set not yet full) or
   replaces the minimum-age way — the victim scan is O(assoc) but runs
   only on misses, over a flat int segment. The simulator probes a
   cache once per instruction fetch and once per data access on the
   hottest paths, so the layout matters more than the policy code:
   boxed per-way records would cost two dependent loads per scanned
   way. *)
type t = {
  cfg : config;
  tags : int array;
  ages : int array;  (* last-access stamp per way, unique via [clock] *)
  nvalid : int array;  (* valid ways per set *)
  line_shift : int;
  set_shift : int;
  n_sets : int;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
}

type outcome = Hit | Miss

let is_pow2 n = n > 0 && n land (n - 1) = 0

let log2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let create cfg =
  if not (is_pow2 cfg.line_bytes) then
    invalid_arg "Cache.create: line size must be a power of two";
  let n_sets = cfg.size_bytes / (cfg.line_bytes * cfg.assoc) in
  if n_sets < 1 then invalid_arg "Cache.create: capacity below one set";
  if not (is_pow2 n_sets) then
    invalid_arg "Cache.create: set count must be a power of two";
  {
    cfg;
    tags = Array.make (n_sets * cfg.assoc) (-1);
    ages = Array.make (n_sets * cfg.assoc) 0;
    nvalid = Array.make n_sets 0;
    line_shift = log2 cfg.line_bytes;
    set_shift = log2 n_sets;
    n_sets;
    clock = 0;
    hits = 0;
    misses = 0;
  }

let config t = t.cfg

let access t addr =
  let line = addr lsr t.line_shift in
  let set = line land (t.n_sets - 1) in
  let base = set * t.cfg.assoc in
  let tag = line lsr t.set_shift in
  let tags = t.tags in
  let nv = Array.unsafe_get t.nvalid set in
  let limit = base + nv in
  let clock = t.clock + 1 in
  t.clock <- clock;
  let i = ref base in
  while !i < limit && Array.unsafe_get tags !i <> tag do incr i done;
  if !i < limit then begin
    Array.unsafe_set t.ages !i clock;
    t.hits <- t.hits + 1;
    Hit
  end
  else begin
    (* allocate: append while the set still has invalid ways, then
       evict the least recently used one (ages are unique, so the
       minimum is the strict LRU way) *)
    let slot =
      if nv < t.cfg.assoc then begin
        Array.unsafe_set t.nvalid set (nv + 1);
        limit
      end
      else begin
        let ages = t.ages in
        let v = ref base in
        for j = base + 1 to limit - 1 do
          if Array.unsafe_get ages j < Array.unsafe_get ages !v then v := j
        done;
        !v
      end
    in
    Array.unsafe_set tags slot tag;
    Array.unsafe_set t.ages slot clock;
    t.misses <- t.misses + 1;
    Miss
  end

(* Consecutive fetches of the same line always hit: the block engine
   performs one real [access] per line run and credits the rest here.
   Ages need no touch-up — within the run no other line of the set is
   accessed, so relative LRU order is unchanged. *)
let credit_hits t n = t.hits <- t.hits + n

let line_bytes t = t.cfg.line_bytes

let lines_spanned t ~addr ~bytes =
  if bytes <= 0 then 0
  else
    let first = addr lsr t.line_shift in
    let last = (addr + bytes - 1) lsr t.line_shift in
    last - first + 1

let hits t = t.hits
let misses t = t.misses

type counters = { c_hits : int; c_misses : int }

let counters t = { c_hits = t.hits; c_misses = t.misses }

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0

let flush t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.nvalid 0 t.n_sets 0
