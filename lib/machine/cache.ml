type config = { size_bytes : int; line_bytes : int; assoc : int }

let arm926_config = { size_bytes = 16 * 1024; line_bytes = 32; assoc = 64 }

type way = { mutable tag : int; mutable valid : bool; mutable age : int }

type t = {
  cfg : config;
  sets : way array array;
  line_shift : int;
  set_shift : int;
  n_sets : int;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
}

type outcome = Hit | Miss

let is_pow2 n = n > 0 && n land (n - 1) = 0

let log2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let create cfg =
  if not (is_pow2 cfg.line_bytes) then
    invalid_arg "Cache.create: line size must be a power of two";
  let n_sets = cfg.size_bytes / (cfg.line_bytes * cfg.assoc) in
  if n_sets < 1 then invalid_arg "Cache.create: capacity below one set";
  if not (is_pow2 n_sets) then
    invalid_arg "Cache.create: set count must be a power of two";
  let sets =
    Array.init n_sets (fun _ ->
        Array.init cfg.assoc (fun _ -> { tag = 0; valid = false; age = 0 }))
  in
  {
    cfg;
    sets;
    line_shift = log2 cfg.line_bytes;
    set_shift = log2 n_sets;
    n_sets;
    clock = 0;
    hits = 0;
    misses = 0;
  }

let config t = t.cfg

(* The hit scan runs once per simulated instruction (instruction fetch)
   plus once per data access, so it is an early-exit loop with no
   closures or boxing; the victim scan only runs on misses. *)
let access t addr =
  let line = addr lsr t.line_shift in
  let set = t.sets.(line land (t.n_sets - 1)) in
  let tag = line lsr t.set_shift in
  t.clock <- t.clock + 1;
  let n = Array.length set in
  let hit = ref (-1) in
  let i = ref 0 in
  while !hit < 0 && !i < n do
    let w = Array.unsafe_get set !i in
    if w.valid && w.tag = tag then hit := !i;
    incr i
  done;
  if !hit >= 0 then begin
    let w = set.(!hit) in
    w.age <- t.clock;
    t.hits <- t.hits + 1;
    Hit
  end
  else begin
    let victim = ref set.(0) in
    for j = 1 to n - 1 do
      let w = Array.unsafe_get set j in
      let v = !victim in
      if (not w.valid) && v.valid then victim := w
      else if w.valid = v.valid && w.age < v.age then victim := w
    done;
    let v = !victim in
    v.valid <- true;
    v.tag <- tag;
    v.age <- t.clock;
    t.misses <- t.misses + 1;
    Miss
  end

(* Consecutive fetches of the same line always hit: the block engine
   performs one real [access] per line run and credits the rest here.
   Ages need no touch-up — within the run no other line of the set is
   accessed, so relative LRU order is unchanged. *)
let credit_hits t n = t.hits <- t.hits + n

let line_bytes t = t.cfg.line_bytes

let lines_spanned t ~addr ~bytes =
  if bytes <= 0 then 0
  else
    let first = addr lsr t.line_shift in
    let last = (addr + bytes - 1) lsr t.line_shift in
    last - first + 1

let hits t = t.hits
let misses t = t.misses

type counters = { c_hits : int; c_misses : int }

let counters t = { c_hits = t.hits; c_misses = t.misses }

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0

let flush t =
  Array.iter (fun set -> Array.iter (fun w -> w.valid <- false) set) t.sets
