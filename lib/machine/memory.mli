(** Byte-addressable sparse memory.

    The memory is organized as 4 KiB pages allocated on first touch, so
    programs may use widely separated address ranges (code, data, stack)
    without reserving the whole address space. All multi-byte accesses are
    little-endian. Addresses are plain OCaml [int]s interpreted as unsigned
    32-bit values; accesses wrap within the 32-bit space. *)

type t

val create : unit -> t
(** A fresh memory whose every byte reads as zero. *)

val copy : t -> t
(** Deep copy; the two memories evolve independently afterwards. *)

val read_byte : t -> int -> int
(** [read_byte m addr] is the unsigned byte at [addr]. *)

val write_byte : t -> int -> int -> unit
(** [write_byte m addr v] stores the low 8 bits of [v] at [addr]. *)

val read : t -> addr:int -> bytes:int -> signed:bool -> int
(** [read m ~addr ~bytes ~signed] reads a little-endian value of 1, 2 or
    4 bytes. When [signed], the result is sign-extended to OCaml's [int]
    range; otherwise it is zero-extended (a 4-byte read is always returned
    as a signed 32-bit value since that is the machine's word domain). *)

val write : t -> addr:int -> bytes:int -> int -> unit
(** [write m ~addr ~bytes v] stores the low [bytes * 8] bits of [v]
    little-endian at [addr]. [bytes] must be 1, 2 or 4. *)

val read_block : t -> addr:int -> len:int -> Bytes.t -> unit
(** [read_block m ~addr ~len dst] fills [dst.[0..len-1]] with the [len]
    bytes starting at [addr], copying page-at-a-time (untouched pages
    read as zero). The vector load/store fast path. Raises
    [Invalid_argument] when [len] exceeds [dst]. *)

val write_block : t -> addr:int -> len:int -> Bytes.t -> unit
(** [write_block m ~addr ~len src] stores [src.[0..len-1]] at [addr],
    page-at-a-time. Raises [Invalid_argument] when [len] exceeds [src]. *)

val blit_bytes : t -> addr:int -> Bytes.t -> unit
(** Bulk-initialize memory starting at [addr]. *)

val touched_pages : t -> int
(** Number of 4 KiB pages allocated so far (footprint metric). *)

val equal : t -> t -> bool
(** Structural equality over all touched bytes; a page absent from one
    memory equals an all-zero page in the other. *)

val diff : t -> t -> (int * int * int) list
(** [diff a b] lists up to 32 differing locations as
    [(addr, byte_in_a, byte_in_b)], for test diagnostics. *)
