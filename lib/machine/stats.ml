type t = {
  mutable cycles : int;
  mutable fetches : int;
  mutable scalar_insns : int;
  mutable vector_insns : int;
  mutable uops_retired : int;
  mutable loads : int;
  mutable stores : int;
  mutable branches : int;
  mutable branch_mispredicts : int;
  mutable icache_hits : int;
  mutable icache_misses : int;
  mutable dcache_hits : int;
  mutable dcache_misses : int;
  mutable region_calls : int;
  mutable ucode_hits : int;
  mutable ucode_installs : int;
  mutable ucode_evictions : int;
  mutable translations_started : int;
  mutable translations_aborted : int;
  mutable translation_busy_cycles : int;
}

let create () =
  {
    cycles = 0;
    fetches = 0;
    scalar_insns = 0;
    vector_insns = 0;
    uops_retired = 0;
    loads = 0;
    stores = 0;
    branches = 0;
    branch_mispredicts = 0;
    icache_hits = 0;
    icache_misses = 0;
    dcache_hits = 0;
    dcache_misses = 0;
    region_calls = 0;
    ucode_hits = 0;
    ucode_installs = 0;
    ucode_evictions = 0;
    translations_started = 0;
    translations_aborted = 0;
    translation_busy_cycles = 0;
  }

let reset t =
  t.cycles <- 0;
  t.fetches <- 0;
  t.scalar_insns <- 0;
  t.vector_insns <- 0;
  t.uops_retired <- 0;
  t.loads <- 0;
  t.stores <- 0;
  t.branches <- 0;
  t.branch_mispredicts <- 0;
  t.icache_hits <- 0;
  t.icache_misses <- 0;
  t.dcache_hits <- 0;
  t.dcache_misses <- 0;
  t.region_calls <- 0;
  t.ucode_hits <- 0;
  t.ucode_installs <- 0;
  t.ucode_evictions <- 0;
  t.translations_started <- 0;
  t.translations_aborted <- 0;
  t.translation_busy_cycles <- 0

let add acc x =
  acc.cycles <- acc.cycles + x.cycles;
  acc.fetches <- acc.fetches + x.fetches;
  acc.scalar_insns <- acc.scalar_insns + x.scalar_insns;
  acc.vector_insns <- acc.vector_insns + x.vector_insns;
  acc.uops_retired <- acc.uops_retired + x.uops_retired;
  acc.loads <- acc.loads + x.loads;
  acc.stores <- acc.stores + x.stores;
  acc.branches <- acc.branches + x.branches;
  acc.branch_mispredicts <- acc.branch_mispredicts + x.branch_mispredicts;
  acc.icache_hits <- acc.icache_hits + x.icache_hits;
  acc.icache_misses <- acc.icache_misses + x.icache_misses;
  acc.dcache_hits <- acc.dcache_hits + x.dcache_hits;
  acc.dcache_misses <- acc.dcache_misses + x.dcache_misses;
  acc.region_calls <- acc.region_calls + x.region_calls;
  acc.ucode_hits <- acc.ucode_hits + x.ucode_hits;
  acc.ucode_installs <- acc.ucode_installs + x.ucode_installs;
  acc.ucode_evictions <- acc.ucode_evictions + x.ucode_evictions;
  acc.translations_started <- acc.translations_started + x.translations_started;
  acc.translations_aborted <- acc.translations_aborted + x.translations_aborted;
  acc.translation_busy_cycles <-
    acc.translation_busy_cycles + x.translation_busy_cycles

let copy t = { t with cycles = t.cycles }

let total_insns t = t.scalar_insns + t.vector_insns

let pp ppf t =
  Format.fprintf ppf
    "@[<v>cycles: %d@ fetches: %d (+ %d uops)@ scalar insns: %d@ vector \
     insns: %d@ loads/stores: %d/%d@ branches: %d (mispred %d)@ icache: %d \
     hit / %d miss@ dcache: %d hit / %d miss@ region calls: %d (ucode hits \
     %d, installs %d, evictions %d)@ translations: %d started / %d aborted \
     (busy %d cycles)@]"
    t.cycles t.fetches t.uops_retired t.scalar_insns t.vector_insns t.loads
    t.stores t.branches t.branch_mispredicts t.icache_hits t.icache_misses
    t.dcache_hits t.dcache_misses t.region_calls t.ucode_hits t.ucode_installs
    t.ucode_evictions t.translations_started t.translations_aborted
    t.translation_busy_cycles
