type entry = { mutable tag : int; mutable counter : int; mutable valid : bool }

type t = {
  entries : entry array;
  mutable lookups : int;
  mutable mispredicts : int;
}

let create ?(entries = 128) () =
  if entries <= 0 then invalid_arg "Branch_pred.create: entries must be > 0";
  {
    entries =
      Array.init entries (fun _ -> { tag = 0; counter = 0; valid = false });
    lookups = 0;
    mispredicts = 0;
  }

let predict_and_update t ~pc ~taken =
  t.lookups <- t.lookups + 1;
  let slot = t.entries.(pc mod Array.length t.entries) in
  let predicted =
    if slot.valid && slot.tag = pc then slot.counter >= 2 else false
  in
  if slot.valid && slot.tag = pc then
    slot.counter <-
      (if taken then min 3 (slot.counter + 1) else max 0 (slot.counter - 1))
  else begin
    slot.valid <- true;
    slot.tag <- pc;
    slot.counter <- (if taken then 2 else 1)
  end;
  let correct = predicted = taken in
  if not correct then t.mispredicts <- t.mispredicts + 1;
  correct

let lookups t = t.lookups
let mispredicts t = t.mispredicts

type counters = { p_lookups : int; p_mispredicts : int }

let counters t = { p_lookups = t.lookups; p_mispredicts = t.mispredicts }

let reset_stats t =
  t.lookups <- 0;
  t.mispredicts <- 0
