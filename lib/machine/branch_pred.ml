type entry = { mutable tag : int; mutable counter : int; mutable valid : bool }

type t = {
  entries : entry array;
  mask : int;  (* entries-1 when the count is a power of two, else -1 *)
  mutable lookups : int;
  mutable mispredicts : int;
}

let create ?(entries = 128) () =
  if entries <= 0 then invalid_arg "Branch_pred.create: entries must be > 0";
  {
    entries =
      Array.init entries (fun _ -> { tag = 0; counter = 0; valid = false });
    mask = (if entries land (entries - 1) = 0 then entries - 1 else -1);
    lookups = 0;
    mispredicts = 0;
  }

(* Direct-mapped by PC; the index is on every predicted branch's hot
   path, so the power-of-two layout (every real configuration) avoids
   the division. *)
let[@inline] index t pc =
  if t.mask >= 0 then pc land t.mask else pc mod Array.length t.entries

let predict_and_update t ~pc ~taken =
  t.lookups <- t.lookups + 1;
  let slot = t.entries.(index t pc) in
  let predicted =
    if slot.valid && slot.tag = pc then slot.counter >= 2 else false
  in
  if slot.valid && slot.tag = pc then
    slot.counter <-
      (if taken then min 3 (slot.counter + 1) else max 0 (slot.counter - 1))
  else begin
    slot.valid <- true;
    slot.tag <- pc;
    slot.counter <- (if taken then 2 else 1)
  end;
  let correct = predicted = taken in
  if not correct then t.mispredicts <- t.mispredicts + 1;
  correct

(* A branch whose entry holds its own tag at the saturated taken count
   predicts taken, stays at the saturated count when trained taken
   again, and cannot mispredict: [predict_and_update ~taken:true] on it
   is [lookups + 1] and nothing else. Steady-state trace execution
   checks this once per trace entry and then batches the lookups with
   [credit_lookups] — the same replay-elision contract as
   [Cache.credit_hits]. *)
let taken_saturated t ~pc =
  let slot = t.entries.(index t pc) in
  slot.valid && slot.tag = pc && slot.counter = 3

let credit_lookups t n = t.lookups <- t.lookups + n

let lookups t = t.lookups
let mispredicts t = t.mispredicts

type counters = { p_lookups : int; p_mispredicts : int }

let counters t = { p_lookups = t.lookups; p_mispredicts = t.mispredicts }

let reset_stats t =
  t.lookups <- 0;
  t.mispredicts <- 0
