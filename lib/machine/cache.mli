(** Set-associative cache model with true-LRU replacement.

    This is a timing/behaviour model only: it tracks which lines are
    resident, not their contents (data always comes from {!Memory}). The
    default geometry matches the ARM-926EJ-S used in the paper's
    evaluation: 16 KiB, 64-way, 32-byte lines. *)

type config = {
  size_bytes : int;  (** total capacity *)
  line_bytes : int;  (** line size; must be a power of two *)
  assoc : int;  (** ways per set *)
}

val arm926_config : config
(** 16 KiB / 64-way / 32-byte lines, as in the ARM-926EJ-S. *)

type t

val create : config -> t

val config : t -> config

type outcome = Hit | Miss

val access : t -> int -> outcome
(** [access c addr] touches the line containing [addr], allocating it
    (and evicting the LRU way) on a miss. Both reads and writes allocate,
    modeling a write-allocate cache. *)

val credit_hits : t -> int -> unit
(** [credit_hits c n] accounts [n] additional hits without running the
    lookup. Used by the translation-block engine: a straight-line run of
    instruction fetches touches each line once through {!access} and
    credits the remaining same-line fetches, which are hits by
    construction (no other access of the set can intervene inside a
    block). State and LRU order are untouched, so this is
    counter-equivalent to performing the accesses. *)

val line_bytes : t -> int

val lines_spanned : t -> addr:int -> bytes:int -> int
(** Number of distinct cache lines covered by the byte range. *)

val hits : t -> int
val misses : t -> int

type counters = { c_hits : int; c_misses : int }

val counters : t -> counters
(** Immutable snapshot of the cache's own hit/miss tally — the single
    source the run-level {!Stats} mirror is derived from. *)

val reset_stats : t -> unit

val flush : t -> unit
(** Invalidate every line (e.g., on context switch in ablations). *)
