(** Executable images: programs after layout and symbol resolution.

    Layout places code at {!code_base} with 4 bytes per instruction slot
    (matching the fixed-width 32-bit encoding of {!Encode}) and data
    arrays in a separate segment, each aligned to the maximum
    vectorizable width times the element size (paper §3.1). Branch
    targets become instruction indices; data symbols become absolute
    addresses. *)

open Liquid_visa

exception Layout_error of string

type t = {
  name : string;
  code : Minsn.exec array;
  addrs : int array;
      (** fetch address of each slot, precomputed at layout:
          [addrs.(i) = code_base + 4*i]. The per-fetch hot path indexes
          this instead of recomputing {!addr_of_index}. *)
  code_base : int;
  entry : int;  (** instruction index where execution starts *)
  labels : (string * int) list;  (** label name -> instruction index *)
  arrays : (string * int * Data.t) list;  (** name, address, contents *)
  data_bytes : int;  (** total data-segment footprint including alignment *)
  region_entries : (int * string) list;
      (** targets of region-marked branch-and-link instructions:
          instruction index -> region label *)
}

val code_base : int
val data_base : int

val of_program : Program.t -> t
(** Raises {!Layout_error} when {!Program.validate} fails, when the entry
    label is missing (the program must define [main] or start with its
    first instruction), or when a field exceeds encodable range. *)

val load_memory : t -> Liquid_machine.Memory.t -> unit
(** Write every data array's initial contents into memory. *)

val addr_of_index : t -> int -> int
val index_of_addr : t -> int -> int
val find_label : t -> string -> int option
val array_addr : t -> string -> int
(** Raises [Not_found] for unknown arrays. *)

val array_at : t -> int -> (string * Data.t) option
(** The array whose storage contains the given address, if any. *)

val code_bytes : t -> int
val pp : Format.formatter -> t -> unit
