open Liquid_isa
open Liquid_visa

exception Layout_error of string

type t = {
  name : string;
  code : Minsn.exec array;
  addrs : int array;
  code_base : int;
  entry : int;
  labels : (string * int) list;
  arrays : (string * int * Data.t) list;
  data_bytes : int;
  region_entries : (int * string) list;
}

let code_base = 0x1000
let data_base = 0x100000

let align_up addr align = (addr + align - 1) / align * align

let of_program (p : Program.t) =
  (match Program.validate p with
  | Ok () -> ()
  | Error msg -> raise (Layout_error (p.name ^ ": " ^ msg)));
  (* Assign instruction indices to labels. *)
  let labels, rev_insns =
    List.fold_left
      (fun (labels, insns) item ->
        match item with
        | Program.Label l -> ((l, List.length insns) :: labels, insns)
        | Program.I i -> (labels, i :: insns))
      ([], []) p.text
  in
  let insns = List.rev rev_insns in
  let labels = List.rev labels in
  let label_index l =
    match List.assoc_opt l labels with
    | Some i -> i
    | None -> raise (Layout_error ("unknown label " ^ l))
  in
  (* Lay out data arrays. *)
  let arrays, data_end =
    List.fold_left
      (fun (placed, addr) (d : Data.t) ->
        let addr = align_up addr (Data.alignment d) in
        ((d.name, addr, d) :: placed, addr + Data.byte_size d))
      ([], data_base) p.data
  in
  let arrays = List.rev arrays in
  let sym_addr s =
    match List.find_opt (fun (n, _, _) -> n = s) arrays with
    | Some (_, addr, _) -> addr
    | None -> raise (Layout_error ("unknown data symbol " ^ s))
  in
  let code =
    List.map (Minsn.map ~sym:sym_addr ~lab:label_index) insns |> Array.of_list
  in
  let entry =
    match List.assoc_opt "main" labels with
    | Some i -> i
    | None -> if Array.length code > 0 then 0 else raise (Layout_error "empty program")
  in
  let region_entries =
    List.filter_map
      (function
        | Program.I (Minsn.S (Insn.Bl { target; region = true })) ->
            Some (label_index target, target)
        | Program.I _ | Program.Label _ -> None)
      p.text
    |> List.sort_uniq compare
  in
  {
    name = p.name;
    code;
    addrs = Array.init (Array.length code) (fun i -> code_base + (4 * i));
    code_base;
    entry;
    labels;
    arrays;
    data_bytes = data_end - data_base;
    region_entries;
  }

let load_memory t mem =
  List.iter
    (fun (_, addr, (d : Data.t)) ->
      let b = Esize.bytes d.esize in
      Array.iteri
        (fun i v ->
          Liquid_machine.Memory.write mem ~addr:(addr + (i * b)) ~bytes:b v)
        d.values)
    t.arrays

let addr_of_index t i = t.code_base + (4 * i)
let index_of_addr t a = (a - t.code_base) / 4
let find_label t l = List.assoc_opt l t.labels

let array_addr t name =
  match List.find_opt (fun (n, _, _) -> n = name) t.arrays with
  | Some (_, addr, _) -> addr
  | None -> raise Not_found

let array_at t addr =
  List.find_opt
    (fun (_, base, d) -> addr >= base && addr < base + Data.byte_size d)
    t.arrays
  |> Option.map (fun (n, _, d) -> (n, d))

let code_bytes t = 4 * Array.length t.code

let pp ppf t =
  Format.fprintf ppf "@[<v>; image %s (entry @%d)@ " t.name t.entry;
  Array.iteri
    (fun i insn ->
      let label =
        List.filter_map (fun (l, j) -> if i = j then Some l else None) t.labels
      in
      List.iter (fun l -> Format.fprintf ppf "%s:@ " l) label;
      Format.fprintf ppf "  @%-4d %a@ " i Minsn.pp_exec insn)
    t.code;
  List.iter
    (fun (n, addr, d) ->
      Format.fprintf ppf "  %s @ 0x%x (%d bytes)@ " n addr (Data.byte_size d))
    t.arrays;
  Format.fprintf ppf "@]"
