(** The microcode cache (paper §2, Figure 1; sized in §5).

    Stores recently translated SIMD sequences, keyed by the outlined
    function's entry (instruction index of the region label). The paper's
    sizing study settles on 8 entries of 64 instructions — a 2 KB SRAM.
    Replacement is LRU. An entry becomes visible only once the translator
    has finished producing it ([ready] cycle), which models translation
    latency: a region re-entered before its microcode is ready still runs
    in scalar form. *)

open Liquid_translate

type t

val create : entries:int -> t

val lookup : t -> key:int -> now:int -> Ucode.t option
(** [None] when absent or not yet ready. A ready hit refreshes LRU. *)

val pending : t -> key:int -> now:int -> bool
(** True when an entry exists but is still being produced. *)

val install : t -> key:int -> ready:int -> Ucode.t -> evicted:bool ref -> unit
(** Insert, evicting the LRU entry when full (sets [evicted]). *)

val evict : t -> key:int -> bool
(** Forcibly remove an entry (fault injection / flush modeling); [true]
    when the key was present. Counts toward {!evictions}. *)

val installs : t -> int
val evictions : t -> int
val occupancy : t -> int
val max_occupancy : t -> int
(** High-water mark of live entries — the paper's working-set measure. *)
