(** The microcode cache (paper §2, Figure 1; sized in §5).

    Stores recently translated SIMD sequences, keyed by the outlined
    function's entry (instruction index of the region label). The paper's
    sizing study settles on 8 entries of 64 instructions — a 2 KB SRAM.
    Replacement is LRU. An entry becomes visible only once the translator
    has finished producing it ([ready] cycle), which models translation
    latency: a region re-entered before its microcode is ready still runs
    in scalar form.

    The cache owns its own accounting (installs, same-key replacements,
    evictions, live occupancy): {!Liquid_machine.Stats} mirrors of these
    are derived from {!counters} when a run is collected — there is no
    second writer, so the conservation invariant
    [installs = replacements + evictions + occupancy] always holds. *)

open Liquid_translate

type t

val create : entries:int -> t

val lookup : t -> key:int -> now:int -> Ucode.t option
(** [None] when absent or not yet ready. A ready hit refreshes LRU. The
    scan is an early-exit index loop — nothing is allocated on a miss
    (region calls sit on the simulation hot path). *)

val pending : t -> key:int -> now:int -> bool
(** True when an entry exists but is still being produced. *)

val install : t -> key:int -> ready:int -> Ucode.t -> unit
(** Insert, evicting the LRU entry when full (counted in {!evictions});
    installing over a live entry with the same key replaces it in place
    (counted in {!replacements}, not an eviction). *)

val stamp_of : t -> key:int -> int
(** Generation stamp of the entry currently stored under [key], [-1]
    when absent. Each {!install} gives the new entry a fresh stamp (even
    under the same key), so derived structures — the block engine's
    pre-compiled replay of an entry — can cheaply detect that a region
    was retranslated and must be recompiled. *)

val evict : t -> key:int -> bool
(** Forcibly remove an entry (fault injection / flush modeling); [true]
    when the key was present. Counts toward {!evictions}. *)

val installs : t -> int
val replacements : t -> int
val evictions : t -> int
val occupancy : t -> int
val max_occupancy : t -> int
(** High-water mark of live entries — the paper's working-set measure. *)

type counters = {
  u_installs : int;
  u_replacements : int;
  u_evictions : int;
  u_occupancy : int;
  u_max_occupancy : int;
}

val counters : t -> counters
(** Immutable snapshot of the cache's own tally; satisfies
    [u_installs = u_replacements + u_evictions + u_occupancy] and
    [u_occupancy <= u_max_occupancy]. *)
