open Liquid_isa
open Liquid_visa
open Liquid_machine
open Liquid_prog
open Liquid_translate

type trace_event =
  | T_insn of { pc : int; insn : Minsn.exec }
  | T_uop of { entry : int; index : int; uop : Ucode.uop }
  | T_region of {
      label : string;
      event :
        [ `Scalar_call | `Ucode_call | `Translated of int | `Aborted of Abort.t ];
    }
  | T_translation of {
      entry : int;
      label : string;
      width : int;
      uops : int;
      latency : int;
    }

type translation_kind =
  | Hardware
      (** post-retirement hardware: translation proceeds in parallel with
          execution; only the microcode-ready time is delayed *)
  | Software
      (** a JIT routine on the main core: the same work stalls the
          processor at region end (paper §2's software alternative) *)

type translation = { cycles_per_insn : int; kind : translation_kind }

(* Fault-injection hooks (see {!Liquid_faults}): each is consulted at a
   well-defined point of the pipeline and closes over its own trigger
   state, so the core stays oblivious to the injection plan. *)
type fault_hooks = {
  fh_abort : entry:int -> observed:int -> Abort.t option;
      (** consulted after each event fed to a live translation session;
          [Some a] forces the session to abort with [a] *)
  fh_corrupt : entry:int -> observed:int -> bool;
      (** consulted before each event fed to a live translation session;
          [true] replaces the event's instruction with an untranslatable
          one (a decode glitch on the translation path only — the
          executed stream is untouched) *)
  fh_evict : entry:int -> call:int -> bool;
      (** consulted before each microcode-cache lookup with the global
          region-call index; [true] evicts the region's entry first *)
}

type config = {
  accel_lanes : int option;
  translator : translation option;
  backend : Backend.t;
  icache : Cache.config option;
  dcache : Cache.config option;
  mem_latency : int;
  mul_extra : int;
  mispredict_penalty : int;
  vec_bus_bytes : int;
  oracle_translation : bool;
  interrupt_interval : int option;
  on_trace : (trace_event -> unit) option;
  ucode_entries : int;
  max_uops : int;
  fuel : int;
  faults : fault_hooks option;
  blocks : bool;
  superblocks : bool;
}

let scalar_config =
  {
    accel_lanes = None;
    translator = None;
    backend = Backend.fixed;
    icache = Some Cache.arm926_config;
    dcache = Some Cache.arm926_config;
    mem_latency = 30;
    mul_extra = 1;
    mispredict_penalty = 3;
    vec_bus_bytes = 16;
    oracle_translation = false;
    interrupt_interval = None;
    on_trace = None;
    ucode_entries = 8;
    max_uops = 64;
    fuel = 200_000_000;
    faults = None;
    blocks = true;
    superblocks = true;
  }

let native_config ~lanes = { scalar_config with accel_lanes = Some lanes }

let liquid_config ~lanes =
  {
    scalar_config with
    accel_lanes = Some lanes;
    translator = Some { cycles_per_insn = 1; kind = Hardware };
  }

type region_outcome =
  | R_untried
  | R_installed of { width : int; uops : int }
  | R_failed of Abort.t

type region_report = {
  label : string;
  entry : int;
  calls : (int * int) list;
  ucode_served : int;
  outcome : region_outcome;
}

type run = {
  stats : Stats.t;
  memory : Memory.t;
  regs : int array;
  regions : region_report list;
  ucode_max_occupancy : int;
  icache_counters : Cache.counters option;
  dcache_counters : Cache.counters option;
  bpred_counters : Branch_pred.counters;
  ucache_counters : Ucode_cache.counters;
  blocks_compiled : int;
  block_execs : int;
  superblocks_compiled : int;
  superblock_iters : int;
  superblock_bailouts : int;
  pred_fast_iters : int;
  pred_masked_iters : int;
  vla_pred_execs : int;
  permutes_seen : int;
  permutes_recovered : int;
  permutes_aborted : int;
  tbl_index_builds : int;
}

type racc = {
  r_label : string;
  mutable calls_rev : (int * int) list;
  mutable served : int;
  mutable outcome : region_outcome;
}

type session = {
  tr : Translator.t;
  s_entry : int;
  s_start_cycle : int;
  s_start_depth : int;
}

type state = {
  cfg : config;
  image : Image.t;
  ctx : Sem.ctx;
  stats : Stats.t;
  icache : Cache.t option;
  dcache : Cache.t option;
  bpred : Branch_pred.t;
  ucache : Ucode_cache.t;
  oracle : (int, Ucode.t option) Hashtbl.t;
      (* oracle-translation mode: microcode served as if the binary
         carried native SIMD instructions, bypassing the cache.
         Translated lazily at first call from the live machine state —
         translating at init from the pristine image would observe
         fission spill arrays as all-zero and mis-fold operands into
         constants. [None] caches a translation abort. *)
  regions : (int, racc) Hashtbl.t;
  region_labels : (int, string) Hashtbl.t;
      (* Image.region_entries as a table: the label lookup runs on every
         first call of a region, and the assoc list scan was linear *)
  mutable pc : int;
  mutable depth : int;
  mutable session : session option;
  mutable open_regions : (racc * int * int) list;
      (* scalar-mode region calls awaiting their return:
         (accumulator, start cycle, depth inside the region) *)
  mutable last_load_dst : Reg.t option;
  mutable next_interrupt_at : int;
      (* first cycle at which the next interrupt fires ([max_int] when
         interrupts are off): a countdown threshold instead of a
         per-step division *)
  mutable retired : int;
  mutable halted : bool;
  mutable vla_preds : int;
      (* predicated vector uops dispatched by the stepping interpreter;
         the engine keeps its own tally — together they form the
         right-hand side of the obs predication conservation invariant *)
  mutable perm_seen : int;
  mutable perm_recovered : int;
  mutable perm_aborted : int;
      (* permutation placeholders across every finished translation
         session (cached and oracle alike), accumulated from each
         session's [Translator.perm_tally] *)
  eng : Blocks.t option;
      (* the translation-block engine; [None] when disabled by config or
         when fidelity demands stepping throughout (trace consumer or
         fault hooks attached) *)
}

let charge st c = st.stats.Stats.cycles <- st.stats.Stats.cycles + c

let trace st ev =
  match st.cfg.on_trace with None -> () | Some f -> f ev

(* Hot-path variants: build the event record only when a consumer is
   attached, so tracing costs nothing when off. *)
let[@inline] trace_insn st pc insn =
  match st.cfg.on_trace with
  | None -> ()
  | Some f -> f (T_insn { pc; insn })

let[@inline] trace_uop st entry index uop =
  match st.cfg.on_trace with
  | None -> ()
  | Some f -> f (T_uop { entry; index; uop })

(* The caches keep their own hit/miss tallies (the single writers; the
   [Stats] mirrors are derived at [collect]); the core only owes the
   timing consequence of a miss. *)
let charge_icache st addr =
  st.stats.Stats.fetches <- st.stats.Stats.fetches + 1;
  match st.icache with
  | None -> ()
  | Some c -> (
      match Cache.access c addr with
      | Cache.Hit -> ()
      | Cache.Miss -> charge st st.cfg.mem_latency)

let charge_dcache st ~addr ~bytes ~write =
  (if write then st.stats.Stats.stores <- st.stats.Stats.stores + 1
   else st.stats.Stats.loads <- st.stats.Stats.loads + 1);
  match st.dcache with
  | None -> ()
  | Some c ->
      let lines = Cache.lines_spanned c ~addr ~bytes in
      let line_bytes = Cache.line_bytes c in
      for i = 0 to lines - 1 do
        match Cache.access c (addr + (i * line_bytes)) with
        | Cache.Hit -> ()
        | Cache.Miss -> charge st st.cfg.mem_latency
      done

(* Account every memory access the last [Sem.exec_*] recorded in the
   context scratch buffer. *)
let charge_accesses st =
  let ctx = st.ctx in
  for i = 0 to ctx.Sem.e_nacc - 1 do
    charge_dcache st ~addr:ctx.Sem.acc_addr.(i) ~bytes:ctx.Sem.acc_bytes.(i)
      ~write:ctx.Sem.acc_write.(i)
  done

(* A vector memory access moves [lanes * element] bytes over the memory
   bus; beyond the first bus beat, each extra beat costs a cycle. This is
   what makes wide vectors saturate (the paper's diminishing returns from
   8 to 16 lanes on memory-bound loops). *)
let charge_vector_mem st (v : Vinsn.exec) =
  let extra esize =
    let bytes = st.ctx.Sem.lanes * Esize.bytes esize in
    max 0 ((bytes + st.cfg.vec_bus_bytes - 1) / st.cfg.vec_bus_bytes - 1)
  in
  match v with
  | Vinsn.Vld { esize; _ } | Vinsn.Vst { esize; _ } -> charge st (extra esize)
  | Vinsn.Vlds { esize; stride; _ } | Vinsn.Vsts { esize; stride; _ } ->
      (* A strided access touches [stride] times the data of a unit
         access. *)
      charge st (stride * (extra esize + 1))
  | Vinsn.Vgather { esize; _ } ->
      (* One bus beat per lane: gathers do not coalesce. The ceiling
         division is per lane — an element never spans bus beats unless
         it is wider than the bus. *)
      charge st
        (st.ctx.Sem.lanes
        * ((Esize.bytes esize + st.cfg.vec_bus_bytes - 1) / st.cfg.vec_bus_bytes))
  | Vinsn.Vdp _ | Vinsn.Vsat _ | Vinsn.Vperm _ | Vinsn.Vred _ -> ()

let diag st fault =
  Diag.Error
    (Diag.make ~fault ~pc:st.pc ~cycle:st.stats.Stats.cycles
       ~retired:st.retired)

(* The watchdog: a run that exceeds its retired-instruction budget stops
   with a [Fuel_exhausted] diagnostic carrying a snapshot of the machine
   position (pc, cycle, retired count) instead of a bare string. *)
let fuel_check st =
  st.retired <- st.retired + 1;
  if st.retired > st.cfg.fuel then raise (diag st Diag.Fuel_exhausted)

(* The single accounting site for conditional branches: the predictor
   owns the lookup/mispredict counters (the [Stats] mirror is derived at
   [collect]); the core only applies the refill penalty. [key] is the pc
   for image branches and a synthetic id for microcode branches. *)
let record_branch st ~key ~taken =
  if not (Branch_pred.predict_and_update st.bpred ~pc:key ~taken) then
    charge st st.cfg.mispredict_penalty

let load_use_stall st insn =
  (match st.last_load_dst with
  | Some r when Insn.uses_reg insn r -> charge st 1
  | Some _ | None -> ());
  st.last_load_dst <- None

let region_acc st entry =
  match Hashtbl.find_opt st.regions entry with
  | Some r -> r
  | None ->
      let label =
        match Hashtbl.find_opt st.region_labels entry with
        | Some l -> l
        | None -> Printf.sprintf "@%d" entry
      in
      let r = { r_label = label; calls_rev = []; served = 0; outcome = R_untried } in
      Hashtbl.replace st.regions entry r;
      r

let close_session st s =
  st.session <- None;
  let acc = region_acc st s.s_entry in
  (* Translation work is proportional to the static instructions mapped
     (the first iteration); later iterations stream past at retirement
     rate. The microcode becomes visible once that work completes, no
     earlier than the region's end. *)
  let work = Translator.static_insns s.tr in
  let cpi, kind =
    match st.cfg.translator with
    | Some t -> (t.cycles_per_insn, t.kind)
    | None -> (1, Hardware)
  in
  st.stats.Stats.translation_busy_cycles <-
    st.stats.Stats.translation_busy_cycles + (work * cpi);
  (* A software translator runs on the core itself: the region's caller
     stalls while the JIT routine executes. *)
  (match kind with Software -> charge st (work * cpi) | Hardware -> ());
  let result = Translator.finish s.tr in
  let tally = Translator.perm_tally s.tr in
  st.perm_seen <- st.perm_seen + tally.Translator.seen;
  st.perm_recovered <- st.perm_recovered + tally.Translator.recovered;
  st.perm_aborted <- st.perm_aborted + tally.Translator.aborted;
  match result with
  | Translator.Translated u ->
      trace st
        (T_region { label = acc.r_label; event = `Translated u.Ucode.width });
      let ready = max st.stats.Stats.cycles (s.s_start_cycle + (work * cpi)) in
      trace st
        (T_translation
           {
             entry = s.s_entry;
             label = acc.r_label;
             width = u.Ucode.width;
             uops = Array.length u.Ucode.uops;
             latency = ready - s.s_start_cycle;
           });
      Ucode_cache.install st.ucache ~key:s.s_entry ~ready u;
      acc.outcome <-
        R_installed { width = u.Ucode.width; uops = Array.length u.Ucode.uops }
  | Translator.Aborted reason ->
      trace st (T_region { label = acc.r_label; event = `Aborted reason });
      st.stats.Stats.translations_aborted <-
        st.stats.Stats.translations_aborted + 1;
      acc.outcome <-
        (if Diag.classify_abort reason = `Permanent then R_failed reason
         else R_untried)

(* Feed only the session that was live before the current instruction:
   the region branch-and-link that just opened a session is not part of
   the region's own retirement stream. The destination value is read
   from the context scratch effect; the [Some] box is only built while a
   translation session is actually live. *)
(* An untranslatable stand-in for a corrupted decode: a call inside a
   region has no Table 3 rule in any DFA state, so the session aborts
   whether it is building or verifying. *)
let poison_insn = Insn.Bl { target = 0; region = false }

let feed_session st session pc insn =
  match session with
  | None -> ()
  | Some s ->
      let value =
        let v = st.ctx.Sem.e_value in
        if v = Sem.no_value then None else Some v
      in
      let insn =
        match st.cfg.faults with
        | Some f
          when f.fh_corrupt ~entry:s.s_entry
                 ~observed:(Translator.observed s.tr) ->
            poison_insn
        | Some _ | None -> insn
      in
      Translator.feed s.tr (Event.make ~pc ?value insn);
      match st.cfg.faults with
      | Some f -> (
          match
            f.fh_abort ~entry:s.s_entry ~observed:(Translator.observed s.tr)
          with
          | Some reason -> Translator.inject s.tr reason
          | None -> ())
      | None -> ()

(* Execute translated microcode in place of the outlined function.
   When the block engine is on, replay runs through its pre-compiled
   straight-line segments; the interpreted loop below continues from
   wherever the engine handed back control (declined segment, fuel
   proximity, out-of-range index) so diagnostics stay per-step exact.
   [stamp] is the microcode cache's install stamp for this entry ([-1]
   for oracle microcode), which invalidates compiled segments when a
   region is retranslated. *)
let run_ucode st ~entry ~stamp (u : Ucode.t) =
  let saved_lanes = st.ctx.Sem.lanes in
  st.ctx.Sem.lanes <- u.Ucode.width;
  let start =
    match st.eng with
    | None -> 0
    | Some eng -> (
        match Blocks.exec_ucode eng ~entry ~stamp ~retired:st.retired u with
        | r -> (
            st.retired <- Blocks.out_retired eng;
            match r with Blocks.U_done -> -1 | Blocks.U_resume ui -> ui)
        | exception e ->
            st.retired <- Blocks.out_retired eng;
            raise e)
  in
  let n = Array.length u.Ucode.uops in
  let ui = ref start in
  let running = ref (start >= 0) in
  while !running do
    if !ui < 0 || !ui >= n then raise (diag st (Diag.Ucode_index !ui));
    trace_uop st entry !ui u.Ucode.uops.(!ui);
    st.stats.Stats.uops_retired <- st.stats.Stats.uops_retired + 1;
    (match u.Ucode.uops.(!ui) with
    | Ucode.US i ->
        fuel_check st;
        st.stats.Stats.scalar_insns <- st.stats.Stats.scalar_insns + 1;
        charge st 1;
        (match i with
        | Insn.Dp { op = Opcode.Mul; _ } -> charge st st.cfg.mul_extra
        | _ -> ());
        (match Sem.exec_scalar st.ctx ~pc:(-1) i with
        | Sem.Next -> ()
        | Sem.Jump _ | Sem.Call _ | Sem.Return | Sem.Stop ->
            raise (diag st Diag.Ucode_control_flow));
        charge_accesses st;
        incr ui
    | Ucode.UV v ->
        fuel_check st;
        st.stats.Stats.vector_insns <- st.stats.Stats.vector_insns + 1;
        charge st 1;
        (match v with
        | Vinsn.Vdp { op = Opcode.Mul; _ } -> charge st st.cfg.mul_extra
        | Vinsn.Vred _ -> charge st 1
        | _ -> ());
        charge_vector_mem st v;
        Sem.exec_vector st.ctx v;
        charge_accesses st;
        incr ui
    | Ucode.UP p ->
        fuel_check st;
        (* Predicate/counter management is loop-control overhead and
           accounts as scalar work; a predicated datapath op is vector
           work with the same static (full-width) charges as its
           unpredicated form — predication masks lanes, it does not
           shorten the machine's bus or issue timing. *)
        (match p with
        | Vla.Pred { v; _ } ->
            st.vla_preds <- st.vla_preds + 1;
            st.stats.Stats.vector_insns <- st.stats.Stats.vector_insns + 1;
            charge st 1;
            (match v with
            | Vinsn.Vdp { op = Opcode.Mul; _ } -> charge st st.cfg.mul_extra
            | Vinsn.Vred _ -> charge st 1
            | _ -> ());
            charge_vector_mem st v
        | Vla.Tbl { esize; _ } | Vla.Tblst { esize; _ } ->
            (* A recovered permutation: a predicated dispatch with
               gather-style bus timing — one beat per lane, no
               coalescing, elements never span beats unless wider than
               the bus. *)
            st.vla_preds <- st.vla_preds + 1;
            st.stats.Stats.vector_insns <- st.stats.Stats.vector_insns + 1;
            charge st 1;
            charge st
              (st.ctx.Sem.lanes
              * ((Esize.bytes esize + st.cfg.vec_bus_bytes - 1)
                / st.cfg.vec_bus_bytes))
        | Vla.Tblidx _ ->
            st.stats.Stats.vector_insns <- st.stats.Stats.vector_insns + 1;
            charge st 1
        | Vla.Whilelt _ | Vla.Incvl _ ->
            st.stats.Stats.scalar_insns <- st.stats.Stats.scalar_insns + 1;
            charge st 1);
        Sem.exec_vla st.ctx p;
        charge_accesses st;
        incr ui
    | Ucode.UR r ->
        fuel_check st;
        (* The RVV grant plays the VLA predicate's role, so the charge
           discipline is identical: [vsetvl]/counter management is
           loop-control overhead accounted as scalar work; a
           grant-governed datapath op is vector work with full-width
           static charges — a shortened grant masks lanes, it does not
           shorten the machine's bus or issue timing. *)
        (match r with
        | Rvv.Vl { v } ->
            st.vla_preds <- st.vla_preds + 1;
            st.stats.Stats.vector_insns <- st.stats.Stats.vector_insns + 1;
            charge st 1;
            (match v with
            | Vinsn.Vdp { op = Opcode.Mul; _ } -> charge st st.cfg.mul_extra
            | Vinsn.Vred _ -> charge st 1
            | _ -> ());
            charge_vector_mem st v
        | Rvv.Tbl { esize; _ } | Rvv.Tblst { esize; _ } ->
            st.vla_preds <- st.vla_preds + 1;
            st.stats.Stats.vector_insns <- st.stats.Stats.vector_insns + 1;
            charge st 1;
            charge st
              (st.ctx.Sem.lanes
              * ((Esize.bytes esize + st.cfg.vec_bus_bytes - 1)
                / st.cfg.vec_bus_bytes))
        | Rvv.Tblidx _ ->
            st.stats.Stats.vector_insns <- st.stats.Stats.vector_insns + 1;
            charge st 1
        | Rvv.Vsetvl _ | Rvv.Addvl _ ->
            st.stats.Stats.scalar_insns <- st.stats.Stats.scalar_insns + 1;
            charge st 1);
        Sem.exec_rvv st.ctx r;
        charge_accesses st;
        incr ui
    | Ucode.UB { cond; target } ->
        fuel_check st;
        st.stats.Stats.scalar_insns <- st.stats.Stats.scalar_insns + 1;
        charge st 1;
        let taken = Cond.holds cond st.ctx.Sem.flags in
        record_branch st
          ~key:(Ucode.branch_key ~entry ~max_uops:st.cfg.max_uops ~index:!ui)
          ~taken;
        if taken then ui := target else incr ui
    | Ucode.URet ->
        fuel_check st;
        st.stats.Stats.scalar_insns <- st.stats.Stats.scalar_insns + 1;
        charge st 1;
        running := false)
  done;
  st.ctx.Sem.lanes <- saved_lanes

(* Oracle mode (the paper's "built-in ISA support" configuration):
   microcode is available with zero translation latency, as if the
   binary carried native SIMD instructions. The translation itself
   still observes a real execution — a side-effect-free replay of the
   region from a copy of the live machine state at its first call — so
   it resolves operands from the same values the dynamic translator
   would see. The result (including an abort) is cached per entry. *)
let oracle_lookup st target =
  match Hashtbl.find_opt st.oracle target with
  | Some cached -> cached
  | None ->
      if not st.cfg.oracle_translation then None
      else
        let tally =
          ref { Translator.seen = 0; recovered = 0; aborted = 0 }
        in
        let res =
          match (st.cfg.accel_lanes, st.cfg.translator) with
          | Some lanes, Some _ -> (
              match
                Offline.translate_region_result ~max_uops:st.cfg.max_uops
                  ~backend:st.cfg.backend ~state:st.ctx ~tally ~image:st.image
                  ~lanes ~entry:target ()
              with
              | Ok (Translator.Translated u) ->
                  (region_acc st target).outcome <-
                    R_installed
                      {
                        width = u.Ucode.width;
                        uops = Array.length u.Ucode.uops;
                      };
                  Some u
              | Ok (Translator.Aborted reason) ->
                  (region_acc st target).outcome <-
                    (if Diag.classify_abort reason = `Permanent then
                       R_failed reason
                     else R_untried);
                  None
              | Error _ -> None)
          | _, _ -> None
        in
        st.perm_seen <- st.perm_seen + !tally.Translator.seen;
        st.perm_recovered <- st.perm_recovered + !tally.Translator.recovered;
        st.perm_aborted <- st.perm_aborted + !tally.Translator.aborted;
        Hashtbl.replace st.oracle target res;
        res

(* Re-check the live-invariance guards of constant-folded operands
   before reusing microcode: the translator baked loaded values into a
   vector constant, which a later store to the source array (e.g. a
   fission scratch array rewritten by an earlier region each frame)
   silently invalidates. A failed guard drops the translation so the
   region retranslates against current memory. *)
let guards_ok st (u : Ucode.t) =
  Array.for_all
    (fun (g : Ucode.guard) ->
      Memory.read st.ctx.Sem.mem ~addr:g.Ucode.g_addr ~bytes:g.Ucode.g_bytes
        ~signed:g.Ucode.g_signed
      = g.Ucode.g_expect)
    u.Ucode.guards

(* Handle a region-marked branch-and-link. Returns [true] when the call
   was served from the microcode cache (and [st.pc] already advanced). *)
let region_call st ~pc ~target =
  let acc = region_acc st target in
  let now = st.stats.Stats.cycles in
  st.stats.Stats.region_calls <- st.stats.Stats.region_calls + 1;
  let oracle_u =
    match oracle_lookup st target with
    | Some u when not (guards_ok st u) ->
        Hashtbl.remove st.oracle target;
        oracle_lookup st target
    | o -> o
  in
  match oracle_u with
  | Some u ->
      acc.served <- acc.served + 1;
      st.stats.Stats.ucode_hits <- st.stats.Stats.ucode_hits + 1;
      trace st (T_region { label = acc.r_label; event = `Ucode_call });
      run_ucode st ~entry:target ~stamp:(-1) u;
      acc.calls_rev <- (now, st.stats.Stats.cycles) :: acc.calls_rev;
      st.pc <- pc + 1;
      true
  | None -> (
  match (st.cfg.accel_lanes, st.cfg.translator) with
  | Some _, Some _ when st.session = None -> (
      (* Injected mid-run eviction: the entry disappears as if the cache
         had been power-gated or flushed; the call below misses, the
         region runs in scalar form and retranslates. *)
      (match st.cfg.faults with
      | Some f
        when f.fh_evict ~entry:target ~call:st.stats.Stats.region_calls ->
          ignore (Ucode_cache.evict st.ucache ~key:target)
      | Some _ | None -> ());
      match
        match Ucode_cache.lookup st.ucache ~key:target ~now with
        | Some u when not (guards_ok st u) ->
            ignore (Ucode_cache.evict st.ucache ~key:target);
            None
        | o -> o
      with
      | Some u ->
          acc.served <- acc.served + 1;
          st.stats.Stats.ucode_hits <- st.stats.Stats.ucode_hits + 1;
          trace st (T_region { label = acc.r_label; event = `Ucode_call });
          run_ucode st ~entry:target
            ~stamp:(Ucode_cache.stamp_of st.ucache ~key:target)
            u;
          acc.calls_rev <- (now, st.stats.Stats.cycles) :: acc.calls_rev;
          st.pc <- pc + 1;
          true
      | None ->
          (if not (Ucode_cache.pending st.ucache ~key:target ~now) then
             match acc.outcome with
             | R_failed _ -> ()
             | R_untried | R_installed _ ->
                 (* [R_installed] with a cache miss means the entry was
                    evicted: translate again on this execution. *)
                 st.stats.Stats.translations_started <-
                   st.stats.Stats.translations_started + 1;
                 st.session <-
                   Some
                     {
                       tr =
                         Translator.create
                           {
                             Translator.lanes =
                               (match st.cfg.accel_lanes with
                               | Some l -> l
                               | None -> assert false);
                             max_uops = st.cfg.max_uops;
                             backend = st.cfg.backend;
                           };
                       s_entry = target;
                       s_start_cycle = now;
                       s_start_depth = st.depth + 1;
                     });
          false)
  | _ -> false)

(* Asynchronous interrupts (context switches): the paper's hardware
   aborts any in-flight translation session when one arrives (§4.1);
   the abort is not permanent, so a later execution of the region
   retries. We model an interrupt every [interrupt_interval] cycles. *)
let interrupt_check st =
  let now = st.stats.Stats.cycles in
  if now >= st.next_interrupt_at then begin
    (* The threshold catches up by division only when it actually fires
       (equivalent to tracking the epoch every step: [now >= (e+1)*p]
       iff [now/p > e]), so the hot path is one comparison. Blocks defer
       the check to the next [step]; no session can be live meanwhile,
       so the first stepped instruction observes the same epoch
       transition the per-step engine would have. *)
    (match st.cfg.interrupt_interval with
    | None -> assert false (* threshold stays at [max_int] *)
    | Some period -> st.next_interrupt_at <- ((now / period) + 1) * period);
    match st.session with
    | Some s ->
        Translator.abort_external s.tr;
        st.stats.Stats.translations_aborted <-
          st.stats.Stats.translations_aborted + 1;
        st.session <- None
    | None -> ()
  end

let step st =
  if st.pc < 0 || st.pc >= Array.length st.image.Image.code then
    raise (diag st Diag.Wild_pc);
  interrupt_check st;
  let pc = st.pc in
  let pre_session = st.session in
  charge_icache st (Array.unsafe_get st.image.Image.addrs pc);
  match st.image.Image.code.(pc) with
  | Minsn.S (Insn.Bl { target; region = true } as insn)
    when region_call st ~pc ~target ->
      (* Served from the microcode cache; account for the branch itself
         and notify any outer translator session (which aborts, as a
         call inside a region is untranslatable). *)
      fuel_check st;
      trace_insn st pc (Minsn.S insn);
      st.stats.Stats.scalar_insns <- st.stats.Stats.scalar_insns + 1;
      charge st 1;
      (* the microcode run left its own scratch effect behind; the
         branch itself has none *)
      st.ctx.Sem.e_value <- Sem.no_value;
      feed_session st pre_session pc insn
  | Minsn.S insn -> (
      fuel_check st;
      trace_insn st pc (Minsn.S insn);
      st.stats.Stats.scalar_insns <- st.stats.Stats.scalar_insns + 1;
      charge st 1;
      load_use_stall st insn;
      (match insn with
      | Insn.Dp { op = Opcode.Mul; _ } -> charge st st.cfg.mul_extra
      | _ -> ());
      let outcome = Sem.exec_scalar st.ctx ~pc insn in
      charge_accesses st;
      (match insn with
      | Insn.Ld { dst; _ } -> st.last_load_dst <- Some dst
      | _ -> ());
      feed_session st pre_session pc insn;
      match outcome with
      | Sem.Next -> st.pc <- pc + 1
      | Sem.Jump target ->
          record_branch st ~key:pc ~taken:(st.ctx.Sem.e_taken = 1);
          st.pc <- target
      | Sem.Call { target; region } ->
          st.depth <- st.depth + 1;
          if region then begin
            trace st
              (T_region
                 { label = (region_acc st target).r_label; event = `Scalar_call });
            st.open_regions <-
              (region_acc st target, st.stats.Stats.cycles, st.depth)
              :: st.open_regions
          end;
          st.pc <- target
      | Sem.Return ->
          st.depth <- st.depth - 1;
          (match st.session with
          | Some s when st.depth < s.s_start_depth -> close_session st s
          | Some _ | None -> ());
          let rec pop = function
            | (acc, start, d) :: rest when d > st.depth ->
                acc.calls_rev <- (start, st.stats.Stats.cycles) :: acc.calls_rev;
                pop rest
            | remaining -> st.open_regions <- remaining
          in
          pop st.open_regions;
          st.pc <- st.ctx.Sem.regs.(Reg.index Reg.lr)
      | Sem.Stop -> st.halted <- true)
  | Minsn.V v -> (
      match st.cfg.accel_lanes with
      | None -> raise (Sem.Sigill "vector instruction without SIMD accelerator")
      | Some _ ->
          fuel_check st;
          trace_insn st pc (Minsn.V v);
          st.stats.Stats.vector_insns <- st.stats.Stats.vector_insns + 1;
          charge st 1;
          (match v with
          | Vinsn.Vdp { op = Opcode.Mul; _ } -> charge st st.cfg.mul_extra
          | Vinsn.Vred _ -> charge st 1
          | _ -> ());
          charge_vector_mem st v;
          Sem.exec_vector st.ctx v;
          charge_accesses st;
          st.pc <- pc + 1)

let init_state config image =
  let mem = Memory.create () in
  Image.load_memory image mem;
  let ctx = Sem.create_ctx mem in
  (match config.accel_lanes with
  | Some l -> ctx.Sem.lanes <- l
  | None -> ());
  let stats = Stats.create () in
  let icache = Option.map Cache.create config.icache in
  let dcache = Option.map Cache.create config.dcache in
  let bpred = Branch_pred.create () in
  (* The block engine is an execution strategy with bit-identical
     counters; it still yields to [step] whenever fidelity demands
     per-instruction observation. A trace consumer or fault hooks
     demand it for the whole run, so the engine is not built at all —
     which is also the self-disable the fault campaign relies on. *)
  let stepping_only =
    (* closures: compare shapes, not values *)
    match (config.on_trace, config.faults) with
    | None, None -> false
    | Some _, _ | _, Some _ -> true
  in
  let eng =
    if config.blocks && not stepping_only then
      Some
        (Blocks.create ~image ~ctx ~stats ~icache ~dcache ~bpred
           ~mem_latency:config.mem_latency ~mul_extra:config.mul_extra
           ~mispredict_penalty:config.mispredict_penalty
           ~vec_bus_bytes:config.vec_bus_bytes ~lanes:config.accel_lanes
           ~max_uops:config.max_uops ~fuel:config.fuel
           ~superblocks:config.superblocks)
    else None
  in
  let st =
    {
      cfg = config;
      image;
      ctx;
      stats;
      icache;
      dcache;
      bpred;
      ucache = Ucode_cache.create ~entries:config.ucode_entries;
      oracle = Hashtbl.create 8;
      regions = Hashtbl.create 8;
      region_labels =
        (let t = Hashtbl.create 8 in
         (* keep the first binding per entry, like [List.assoc_opt] *)
         List.iter
           (fun (entry, label) ->
             if not (Hashtbl.mem t entry) then Hashtbl.add t entry label)
           image.Image.region_entries;
         t);
      pc = image.Image.entry;
      depth = 0;
      session = None;
      open_regions = [];
      last_load_dst = None;
      next_interrupt_at =
        (match config.interrupt_interval with
        | Some period -> period
        | None -> max_int);
      retired = 0;
      halted = false;
      vla_preds = 0;
      perm_seen = 0;
      perm_recovered = 0;
      perm_aborted = 0;
      eng;
    }
  in
  (st, mem, ctx)

(* Derive the [Stats] mirrors of per-unit counters from the units
   themselves. Each unit is the single writer of its tally; this is the
   only place the mirror fields are assigned, so they cannot drift. *)
let sync_stats st =
  let s = st.stats in
  (match st.icache with
  | Some c ->
      s.Stats.icache_hits <- Cache.hits c;
      s.Stats.icache_misses <- Cache.misses c
  | None -> ());
  (match st.dcache with
  | Some c ->
      s.Stats.dcache_hits <- Cache.hits c;
      s.Stats.dcache_misses <- Cache.misses c
  | None -> ());
  s.Stats.branches <- Branch_pred.lookups st.bpred;
  s.Stats.branch_mispredicts <- Branch_pred.mispredicts st.bpred;
  s.Stats.ucode_installs <- Ucode_cache.installs st.ucache;
  s.Stats.ucode_evictions <- Ucode_cache.evictions st.ucache

let collect st mem ctx =
  sync_stats st;
  let regions =
    Hashtbl.fold
      (fun entry (r : racc) acc ->
        {
          label = r.r_label;
          entry;
          calls = List.rev r.calls_rev;
          ucode_served = r.served;
          outcome = r.outcome;
        }
        :: acc)
      st.regions []
    |> List.sort (fun a b -> compare a.entry b.entry)
  in
  {
    stats = st.stats;
    memory = mem;
    regs = Array.copy ctx.Sem.regs;
    regions;
    ucode_max_occupancy = Ucode_cache.max_occupancy st.ucache;
    icache_counters = Option.map Cache.counters st.icache;
    dcache_counters = Option.map Cache.counters st.dcache;
    bpred_counters = Branch_pred.counters st.bpred;
    ucache_counters = Ucode_cache.counters st.ucache;
    blocks_compiled = (match st.eng with Some e -> Blocks.built e | None -> 0);
    block_execs = (match st.eng with Some e -> Blocks.execs e | None -> 0);
    superblocks_compiled =
      (match st.eng with Some e -> Blocks.supers_built e | None -> 0);
    superblock_iters =
      (match st.eng with Some e -> Blocks.super_iters e | None -> 0);
    superblock_bailouts =
      (match st.eng with Some e -> Blocks.super_bailouts e | None -> 0);
    pred_fast_iters = ctx.Sem.n_pred_fast;
    pred_masked_iters = ctx.Sem.n_pred_masked;
    vla_pred_execs =
      (st.vla_preds
      + match st.eng with Some e -> Blocks.vla_preds e | None -> 0);
    permutes_seen = st.perm_seen;
    permutes_recovered = st.perm_recovered;
    permutes_aborted = st.perm_aborted;
    tbl_index_builds = ctx.Sem.n_tbl_builds;
  }

(* The main loop. With the block engine on, every pc is first offered to
   the block cache; the engine declines (and we step faithfully) at
   region calls, returns, halts, wild pcs and under fuel pressure. A
   live translator session forces stepping so the session observes every
   retired instruction — sessions open and close only inside [step], so
   this check at dispatch granularity is exact. On an exception escaping
   the engine, the out-fields carry the repaired per-step position; sync
   them so [run_result] reports identical diagnostics. *)
let exec_loop st =
  match st.eng with
  | None ->
      while not st.halted do
        step st
      done
  | Some eng ->
      while not st.halted do
        match st.session with
        | Some _ -> step st
        | None -> (
            match
              Blocks.try_exec eng ~pc:st.pc ~retired:st.retired
                ~pending:st.last_load_dst
            with
            | true ->
                st.pc <- Blocks.out_pc eng;
                st.retired <- Blocks.out_retired eng;
                st.last_load_dst <- Blocks.out_pending eng
            | false -> step st
            | exception e ->
                st.pc <- Blocks.out_pc eng;
                st.retired <- Blocks.out_retired eng;
                raise e)
      done

let run ?(config = scalar_config) image =
  let st, mem, ctx = init_state config image in
  exec_loop st;
  collect st mem ctx

let run_result ?(config = scalar_config) image =
  let st, mem, ctx = init_state config image in
  match exec_loop st with
  | () -> Ok (collect st mem ctx)
  | exception Diag.Error d -> Error d
  | exception Sem.Sigill m ->
      Error
        (Diag.make ~fault:(Diag.Illegal m) ~pc:st.pc
           ~cycle:st.stats.Stats.cycles ~retired:st.retired)
