(** Architectural semantics: the effect of one instruction on registers,
    flags and memory. Timing is layered on top by {!Cpu}; this module is
    purely functional behaviour plus the side effects on the shared
    context. *)

open Liquid_isa
open Liquid_visa

exception Sigill of string
(** Raised when an instruction cannot execute on this machine: a vector
    instruction without (or incompatible with) the configured SIMD
    accelerator — the binary-compatibility failure Liquid SIMD exists to
    avoid. *)

val no_value : int
(** Sentinel stored in {!ctx.e_value} when the last instruction wrote no
    destination register. ([min_int], outside the 32-bit word domain.) *)

type ctx = {
  regs : int array;  (** 16 scalar registers *)
  mutable flags : Flags.t;
  vregs : int array array;  (** 16 vector registers x maximum lanes *)
  preds : int array;
      (** predicate registers of the VLA target, each stored as its
          active-lane count — [whilelt] only ever produces prefix
          predicates, so the count is a complete representation *)
  mutable vl : int;
      (** vector-length grant of the RVV target: the element count the
          last {!Rvv.Vsetvl} granted. A single CSR governs every RVV
          body operation — semantically a prefix predicate of [vl]
          active lanes, without a predicate file *)
  mutable lanes : int;  (** active vector width for vector instructions *)
  mem : Liquid_machine.Memory.t;
  mutable e_value : int;
      (** scratch effect: destination value of the last
          {!exec_scalar}/{!exec_vector}, {!no_value} when none *)
  mutable e_taken : int;  (** scratch effect: -1 none, 0 not taken, 1 taken *)
  mutable e_nacc : int;  (** live prefix of the access arrays below *)
  acc_addr : int array;
  acc_bytes : int array;
  acc_write : bool array;
  gather_tmp : int array;
  blk : Bytes.t;
  mutable n_pred_fast : int;
      (** predicated vector executions ({!Vla.Pred}) taken on the
          all-true fast path: the governing predicate covered every lane,
          so the unmasked fixed-width semantics ran verbatim *)
  mutable n_pred_masked : int;
      (** predicated vector executions that paid the masked path *)
  mutable n_tbl_builds : int;
      (** table-lookup index vectors materialized from the runtime
          vector length ({!Vla.Tblidx} executions) *)
}

val create_ctx : Liquid_machine.Memory.t -> ctx

type outcome =
  | Next
  | Jump of int
  | Call of { target : int; region : bool }
  | Return
  | Stop

type access = { addr : int; bytes : int; write : bool }

type effect = {
  value : int option;  (** value written to the destination register *)
  accesses : access list;
  taken : bool option;  (** for conditional branches *)
}

val no_effect : effect

val exec_scalar : ctx -> pc:int -> Insn.exec -> outcome
(** Executes one scalar instruction, recording its effect in the context
    scratch fields ([e_value], [e_taken], [e_nacc]/[acc_*]) without
    allocating. [Bl] writes the link register with [pc + 1]. [Ret]
    reports {!Return}; the caller reads the link register. The scratch
    effect is overwritten by the next [exec_*] call. *)

val exec_vector : ctx -> Vinsn.exec -> unit
(** Executes one vector instruction at the context's active lane count,
    recording its effect in the context scratch fields. Contiguous
    [Vld]/[Vst] move their lanes through {!Liquid_machine.Memory.read_block}
    / [write_block] as one span. Raises {!Sigill} on a permutation
    unsupported at that width or a constant vector of mismatched
    length. *)

val exec_vla : ctx -> Vla.exec -> unit
(** Executes one vector-length-agnostic operation. [Whilelt] writes the
    predicate's active-lane count ([min (max (bound - counter) 0) lanes])
    and sets the flags from the signed comparison of counter and bound;
    [Incvl] advances its register by the active lane count; [Pred]
    executes the wrapped vector instruction under the governing
    predicate with zeroing semantics — a full predicate delegates to
    {!exec_vector}, a partial one loads/stores only active elements,
    zeroes inactive destination lanes, and folds reductions over active
    lanes only. The table-lookup family executes recovered permutations:
    [Tblidx] counts an index-vector build ([n_tbl_builds]); [Tbl] and
    [Tblst] gather (resp. scatter) element
    [Perm.src_index pattern (counter + j)] for each active lane [j],
    reproducing the scalar loop's permuted access stream at any vector
    length — they participate in the fast/masked predication tallies
    like [Pred]. Raises {!Sigill} on a predicated permutation. *)

val exec_rvv : ctx -> Rvv.exec -> unit
(** Executes one RVV stripmined operation. [Vsetvl] grants
    [vl := min (max (bound - counter) 0) lanes] and sets the flags from
    the signed comparison of counter and bound (so the loop back-edge
    stays an ordinary conditional branch); [Addvl] advances its register
    by the granted [vl]; [Vl] executes the wrapped vector instruction
    under the grant — a full grant delegates to {!exec_vector} (counted
    in [n_pred_fast]), a shortened one runs the masked path over the
    first [vl] elements with zeroed tail lanes (counted in
    [n_pred_masked]). The table-lookup family mirrors the VLA one with
    [vl] in place of a predicate: [Tblidx] counts an index-vector build,
    [Tbl]/[Tblst] gather (resp. scatter)
    [Perm.src_index pattern (counter + j)] for each granted lane [j]. *)

val last_effect : ctx -> effect
(** Materializes the scratch effect of the most recent [exec_*] call as
    the immutable record (for traces and the translator's event feed). *)

val step_scalar : ctx -> pc:int -> Insn.exec -> outcome * effect
(** [exec_scalar] plus {!last_effect}: the original allocating API, kept
    for callers that want a persistent effect value. *)

val step_vector : ctx -> Vinsn.exec -> effect
(** [exec_vector] plus {!last_effect}. *)

(** {1 Pre-resolved kernels}

    Inlinable single-instruction entry points for the translation-block
    engine ({!Liquid_pipeline.Blocks}). Each is the matching
    {!exec_scalar} arm with decode and scratch-effect recording already
    paid at block-compile time: register names become indices ([dst],
    [src], [src1], [src2] are {!Liquid_isa.Reg.index} values), the [Mov]
    immediate arrives already [Word]-normalized, and load/store
    addresses arrive fully computed. Semantically equivalent to
    [exec_scalar] on the same instruction; the scratch effect they skip
    is only observable by a live translator session, under which the
    block engine never runs. *)

val kernel_mov_imm : ctx -> dst:int -> int -> unit
val kernel_mov_reg : ctx -> dst:int -> src:int -> unit
val kernel_dp_imm : ctx -> op:Opcode.t -> dst:int -> src1:int -> int -> unit
val kernel_dp_reg : ctx -> op:Opcode.t -> dst:int -> src1:int -> src2:int -> unit
val kernel_cmp_imm : ctx -> src1:int -> int -> unit
val kernel_cmp_reg : ctx -> src1:int -> src2:int -> unit
val kernel_ld : ctx -> addr:int -> bytes:int -> signed:bool -> dst:int -> unit
val kernel_st : ctx -> addr:int -> bytes:int -> src:int -> unit

(** {1 Closure compilation}

    One-instruction compilers for the block engine's superblock tier.
    Each returns a specialized [unit -> unit] closure with operand
    indices resolved, the lane count baked in, element decode/encode
    monomorphized per element size and the opcode dispatch pre-resolved
    ({!Opcode.fn}). The closure is only valid while the context's active
    lane count equals [lanes]. Architectural state changes exactly as
    under the interpretive [exec_*]; the access scratch prefix
    ([e_nacc]/[acc_*]) is maintained exactly (the engine derives
    data-cache charges from it), while the [e_value]/[e_taken] scratch is
    skipped — only a live translator session observes it, and the block
    engine never runs under one. Deterministic faults (unsupported
    permutation, mismatched constant vector) are compiled into thunks
    that raise {!Sigill} with the interpretive message on every
    execution. *)

val compile_vector : ctx -> lanes:int -> Vinsn.exec -> unit -> unit
(** Compile one fixed-width vector instruction at width [lanes]. *)

val compile_vla : ctx -> lanes:int -> Vla.exec -> unit -> unit
(** Compile one VLA operation at vector length [lanes]. A compiled
    [Pred] keeps the fast/masked split of {!exec_vla}: full predicates
    run the pre-compiled unmasked closure (counted in [n_pred_fast]),
    partial ones fall back to the interpretive masked path (counted in
    [n_pred_masked]). *)

val compile_rvv : ctx -> lanes:int -> Rvv.exec -> unit -> unit
(** Compile one RVV operation at vector length [lanes]. A compiled [Vl]
    keeps the fast/masked split of {!exec_rvv}: full [vl] grants run the
    pre-compiled unmasked closure (counted in [n_pred_fast]), shortened
    grants fall back to the interpretive masked path (counted in
    [n_pred_masked]). *)
