(** The translation-block engine: pre-decoded straight-line execution,
    closure-compiled micro-ops and trace superblocks.

    Lazily compiles maximal straight-line runs of the image's
    {!Liquid_visa.Minsn.t} stream — ending at branches, region calls,
    [Halt], and vector/scalar mode changes — into flat arrays of
    specialized closures: operand register indices, folded immediates,
    opcode dispatch, element decode/encode, per-slot charge amounts
    (base cycle, [mul_extra], intra-block load-use stalls, static vector
    bus beats) and pre-grouped icache line probes, all baked at compile
    time, so replay is one [unit -> unit] call per micro-op. Stat deltas
    are applied once per block exit instead of once per instruction;
    unconditional fallthrough/jump edges chain block-to-block without
    returning to the dispatcher. Microcode replay ({!exec_ucode})
    receives the same treatment per cache entry, invalidated by
    {!Ucode_cache.stamp_of} stamp when a region is retranslated.

    On top of the blocks sits the superblock tier: when a block's
    conditional back-edge has fired a fixed number of times, the loop
    body across the edge is flattened into a trace — the member blocks'
    closures concatenated in trace order — and steady-state iterations
    execute whole loop bodies at a time with one batched stat delta per
    logical iteration. The latch condition, re-evaluated after every
    iteration, guards the trace; when it fails (or fuel could expire
    inside the next iteration) the superblock bails out to the ordinary
    block path. Traces follow only unconditional edges, so the guard is
    the sole conditional inside a trace.

    The engine is an execution strategy, not a semantics change: every
    architectural value and every counter is bit-identical to the
    step-by-step engine. {!Cpu} only dispatches here when fidelity
    permits — no live translator session, no trace consumer, no fault
    hooks, and enough fuel for the whole block — and falls back to
    [step] otherwise. A micro-op that raises (vector [Sigill]) repairs
    the partial per-step accounting before re-raising, so escaping
    diagnostics also match. *)

open Liquid_isa
open Liquid_machine
open Liquid_prog
open Liquid_translate

type t

val create :
  image:Image.t ->
  ctx:Sem.ctx ->
  stats:Stats.t ->
  icache:Cache.t option ->
  dcache:Cache.t option ->
  bpred:Branch_pred.t ->
  mem_latency:int ->
  mul_extra:int ->
  mispredict_penalty:int ->
  vec_bus_bytes:int ->
  lanes:int option ->
  max_uops:int ->
  fuel:int ->
  superblocks:bool ->
  t
(** The engine shares the run's mutable machine state ([ctx], [stats],
    caches, predictor) with {!Cpu}; the scalar knobs are copied from the
    config at creation. [superblocks] gates trace formation only — with
    it off the engine never forms or runs a trace and behaves exactly
    like the PR-4 block engine. *)

val try_exec : t -> pc:int -> retired:int -> pending:Reg.t option -> bool
(** Execute the block starting at [pc] (compiling it on first visit),
    chaining through unconditional successors. [retired] and [pending]
    (the load-use hazard register) are the dispatcher's current values;
    on [true] the caller must read back {!out_pc}, {!out_retired} and
    {!out_pending}. [false] means no block starts here (region call,
    return, halt, wild pc, vector code without an accelerator) or the
    fuel budget could expire inside the block — the caller steps
    faithfully. If a micro-op raises, partial accounting is repaired and
    the out-fields are valid for diagnostics before the exception
    propagates. *)

val out_pc : t -> int
val out_retired : t -> int
val out_pending : t -> Reg.t option

type uresult =
  | U_done  (** the replay retired its [URet] *)
  | U_resume of int
      (** continue interpreting at this uop index: the segment there was
          declined, would exhaust the fuel budget, or the index is out
          of range (the interpreted loop raises the exact diagnostic) *)

val exec_ucode :
  t -> entry:int -> stamp:int -> retired:int -> Ucode.t -> uresult
(** Replay translated microcode through pre-compiled straight-line
    segments. [stamp] is the microcode cache's install stamp for the
    entry ([-1] for oracle microcode); a mismatch recompiles, so a
    retranslated region never replays stale segments. The caller sets
    [ctx.lanes] to the microcode width first (as for the interpreted
    loop) and reads back {!out_retired} afterwards — also when this
    raises. *)

val built : t -> int
(** Blocks compiled so far (telemetry). *)

val execs : t -> int
(** Block executions so far, chained blocks included (telemetry).
    Superblock iterations are counted separately in {!super_iters}, not
    here — the two engines legitimately differ on this counter. *)

val supers_built : t -> int
(** Trace superblocks formed so far (telemetry). *)

val super_iters : t -> int
(** Whole loop iterations executed through a superblock (telemetry). *)

val super_bailouts : t -> int
(** Superblock exits back to the block path: guard failures (the loop's
    normal exit through the trace) plus fuel-pressure bail-outs
    (telemetry). *)

val vla_preds : t -> int
(** Predicated vector micro-ops ({!Liquid_visa.Vla.Pred}) dispatched by
    this engine — the engine's share of the obs conservation invariant
    [pred_fast + pred_masked = dispatched predicated ops]. *)
