(** Standalone region translation: drive one outlined function through
    the architectural interpreter and feed its retirement stream to a
    fresh translator session.

    Used by the oracle-translation mode (the paper's "built-in ISA
    support" simulator configuration, §5), by the CLI's [translate]
    command, and by tests that want microcode without a full program
    run.

    By default the observation runs against the image's initial memory
    with zeroed registers. That is only sound when the region's operand
    values depend solely on static data (offset, mask and constant
    arrays): loop fission makes split regions communicate through spill
    arrays, which are still zero in the initial image, so value-based
    operand resolution can mis-fold a live register into a constant
    splat. Pass [?state] (the live interpreter context at the call
    site) to observe a copy of the real machine state instead — the
    copy keeps the observation side-effect free. *)

open Liquid_prog
open Liquid_translate

val translate_region_result :
  ?max_uops:int -> ?backend:Backend.t -> ?state:Sem.ctx ->
  ?tally:Translator.perm_tally ref -> image:Image.t ->
  lanes:int -> entry:int -> unit -> (Translator.result, Diag.t) result
(** [Error diag] when the region never returns within a generous
    instruction budget, escapes the image, or contains vector
    instructions. A translation {e abort} is not an error: it comes back
    as [Ok (Aborted _)]. [backend] defaults to {!Backend.fixed}.
    When [tally] is given, the session's {!Translator.perm_tally} is
    written into it on the [Ok] paths (left untouched on [Error]). *)

val translate_region :
  ?max_uops:int -> ?backend:Backend.t -> ?state:Sem.ctx -> image:Image.t ->
  lanes:int -> entry:int -> unit -> Translator.result
(** {!translate_region_result}, raising {!Diag.Error} on [Error]. *)

val translate_all :
  ?max_uops:int -> ?backend:Backend.t -> image:Image.t -> lanes:int -> unit ->
  (int * string * Translator.result) list
(** Translate every region entry of the image. *)
