type fault =
  | Fuel_exhausted
  | Wild_pc
  | Ucode_index of int
  | Ucode_control_flow
  | Illegal of string
  | Region_nonterminating
  | Region_vector_insn

type t = { fault : fault; pc : int; cycle : int; retired : int }

exception Error of t

let make ~fault ~pc ~cycle ~retired = { fault; pc; cycle; retired }

(* The single transient-vs-permanent table. Everything asynchronous or
   externally imposed — a context switch aborting a translation
   session, a watchdog budget running dry — is transient: the same
   computation can succeed on a retry with a fresh slice. Everything
   else is deterministic corruption of the program or the machine and
   will recur on replay. The supervision layer (lib/service) keys its
   whole retry policy off this one function. *)
let classify d =
  match d.fault with
  | Fuel_exhausted -> `Transient
  | Wild_pc | Ucode_index _ | Ucode_control_flow | Illegal _
  | Region_nonterminating | Region_vector_insn ->
      `Permanent

let classify_abort (a : Liquid_translate.Abort.t) =
  let open Liquid_translate.Abort in
  match a with
  | External_abort -> `Transient
  | Illegal_insn _ | Unknown_permutation | Non_periodic_offsets
  | Unrepresentable_value | Buffer_overflow | No_loop | No_induction
  | Bad_trip_count | Inconsistent_iteration _ | Dangling_address_combine
  | Unportable_permutation ->
      `Permanent

let fault_name = function
  | Fuel_exhausted -> "fuel-exhausted"
  | Wild_pc -> "wild-pc"
  | Ucode_index _ -> "ucode-index"
  | Ucode_control_flow -> "ucode-control-flow"
  | Illegal _ -> "illegal"
  | Region_nonterminating -> "region-nonterminating"
  | Region_vector_insn -> "region-vector-insn"

let fault_to_string = function
  | Fuel_exhausted -> "instruction budget exhausted"
  | Wild_pc -> "wild pc"
  | Ucode_index i -> Printf.sprintf "microcode index %d out of range" i
  | Ucode_control_flow -> "control flow in scalar microcode"
  | Illegal s -> "illegal instruction: " ^ s
  | Region_nonterminating -> "region does not terminate"
  | Region_vector_insn -> "vector instruction in scalar region"

let to_string d =
  Printf.sprintf "%s (pc=%d cycle=%d retired=%d)" (fault_to_string d.fault)
    d.pc d.cycle d.retired

let pp ppf d = Format.pp_print_string ppf (to_string d)

let () =
  Printexc.register_printer (function
    | Error d -> Some ("Liquid_pipeline.Diag.Error: " ^ to_string d)
    | _ -> None)
