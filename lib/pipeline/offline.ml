open Liquid_visa
open Liquid_prog
open Liquid_translate
module Memory = Liquid_machine.Memory

let step_budget = 5_000_000

let translate_region_result ?(max_uops = 64) ?(backend = Backend.fixed) ?state
    ?tally ~image ~lanes ~entry () =
  let mem =
    match state with
    | Some (live : Sem.ctx) -> Memory.copy live.Sem.mem
    | None ->
        let mem = Memory.create () in
        Image.load_memory image mem;
        mem
  in
  let ctx = Sem.create_ctx mem in
  (match state with
  | Some (live : Sem.ctx) ->
      Array.blit live.Sem.regs 0 ctx.Sem.regs 0 (Array.length live.Sem.regs);
      ctx.Sem.flags <- live.Sem.flags
  | None -> ());
  let tr = Translator.create { Translator.lanes; max_uops; backend } in
  let pc = ref entry in
  let steps = ref 0 in
  let failure = ref None in
  let fail fault =
    failure :=
      Some (Diag.make ~fault ~pc:!pc ~cycle:0 ~retired:!steps)
  in
  let running = ref true in
  while !running && !failure = None do
    incr steps;
    if !steps > step_budget then fail Diag.Region_nonterminating
    else if !pc < 0 || !pc >= Array.length image.Image.code then
      fail Diag.Wild_pc
    else
      match image.Image.code.(!pc) with
      | Minsn.V _ -> fail Diag.Region_vector_insn
      | Minsn.S insn -> (
          let outcome, eff = Sem.step_scalar ctx ~pc:!pc insn in
          Translator.feed tr (Event.make ~pc:!pc ?value:eff.Sem.value insn);
          match outcome with
          | Sem.Next -> incr pc
          | Sem.Jump t -> pc := t
          | Sem.Return | Sem.Stop -> running := false
          | Sem.Call _ -> running := false)
  done;
  match !failure with
  | Some d -> Error d
  | None ->
      let r = Translator.finish tr in
      (match tally with
      | Some cell -> cell := Translator.perm_tally tr
      | None -> ());
      Ok r

let translate_region ?max_uops ?backend ?state ~image ~lanes ~entry () =
  match
    translate_region_result ?max_uops ?backend ?state ~image ~lanes ~entry ()
  with
  | Ok r -> r
  | Error d -> raise (Diag.Error d)

let translate_all ?max_uops ?backend ~image ~lanes () =
  List.map
    (fun (entry, label) ->
      (entry, label, translate_region ?max_uops ?backend ~image ~lanes ~entry ()))
    image.Image.region_entries
