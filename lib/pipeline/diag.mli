(** Structured execution diagnostics.

    Every way a simulated run can fail — runaway execution, a corrupt
    microcode index, an instruction the machine cannot execute — is a
    typed fault carried with the machine context at the failure point
    (program counter, cycle count, retired-instruction count), replacing
    the earlier string-carrying [Execution_error] exception. Boundaries
    that can fail return [(_, Diag.t) result] ({!Cpu.run_result},
    {!Offline.translate_region_result}); the [_exn] shims raise
    {!Error}. *)

type fault =
  | Fuel_exhausted  (** the retired-instruction watchdog budget ran out *)
  | Wild_pc  (** control transferred outside the image *)
  | Ucode_index of int  (** microcode back-edge target out of range *)
  | Ucode_control_flow
      (** a scalar microcode slot attempted a jump/call/return *)
  | Illegal of string
      (** the machine cannot execute this instruction
          ({!Sem.Sigill} converted at the run boundary) *)
  | Region_nonterminating  (** offline translation step budget exhausted *)
  | Region_vector_insn  (** a vector instruction inside a scalar region *)

type t = {
  fault : fault;
  pc : int;  (** program counter at the failure point *)
  cycle : int;  (** simulated cycle at the failure point *)
  retired : int;  (** instructions retired before the failure *)
}

exception Error of t

val make : fault:fault -> pc:int -> cycle:int -> retired:int -> t

val classify : t -> [ `Transient | `Permanent ]
(** The single transient-vs-permanent authority for everything that can
    stop or derail a run — the table the supervision layer keys retry
    policy off. [`Transient] marks failures caused by asynchronous or
    externally imposed events (today only {!Fuel_exhausted}, the
    watchdog budget: the computation itself may succeed given a fresh
    slice); every other fault is deterministic program/machine
    corruption that recurs on replay, hence [`Permanent]. *)

val classify_abort : Liquid_translate.Abort.t -> [ `Transient | `Permanent ]
(** The same authority over translation-abort reasons. [`Permanent]
    aborts will recur if the region is retranslated, so the pipeline
    marks the region failed and never retries; [`Transient] aborts
    ({!Liquid_translate.Abort.External_abort} — a context switch or
    interrupt) leave the region untried so a later execution
    retranslates. This replaces the old [Abort.permanent], so there is
    exactly one classification table in the tree. *)

val fault_name : fault -> string
val fault_to_string : fault -> string
val to_string : t -> string
val pp : Format.formatter -> t -> unit
