open Liquid_translate

type entry = {
  key : int;
  ucode : Ucode.t;
  ready : int;
  mutable last_used : int;
}

type t = {
  slots : entry option array;
  mutable clock : int;
  mutable installs : int;
  mutable evictions : int;
  mutable max_occupancy : int;
}

let create ~entries =
  if entries <= 0 then invalid_arg "Ucode_cache.create";
  {
    slots = Array.make entries None;
    clock = 0;
    installs = 0;
    evictions = 0;
    max_occupancy = 0;
  }

let find t key =
  let found = ref None in
  Array.iteri
    (fun i -> function
      | Some e when e.key = key -> found := Some (i, e)
      | Some _ | None -> ())
    t.slots;
  !found

let lookup t ~key ~now =
  t.clock <- t.clock + 1;
  match find t key with
  | Some (_, e) when e.ready <= now ->
      e.last_used <- t.clock;
      Some e.ucode
  | Some _ | None -> None

let pending t ~key ~now =
  match find t key with Some (_, e) -> e.ready > now | None -> false

let occupancy t =
  Array.fold_left (fun n -> function Some _ -> n + 1 | None -> n) 0 t.slots

let install t ~key ~ready ucode ~evicted =
  t.clock <- t.clock + 1;
  t.installs <- t.installs + 1;
  let entry = Some { key; ucode; ready; last_used = t.clock } in
  (match find t key with
  | Some (i, _) -> t.slots.(i) <- entry
  | None -> (
      let free = ref None in
      Array.iteri
        (fun i -> function None -> if !free = None then free := Some i | Some _ -> ())
        t.slots;
      match !free with
      | Some i -> t.slots.(i) <- entry
      | None ->
          let victim = ref 0 in
          Array.iteri
            (fun i -> function
              | Some e -> (
                  match t.slots.(!victim) with
                  | Some v -> if e.last_used < v.last_used then victim := i
                  | None -> ())
              | None -> ())
            t.slots;
          t.evictions <- t.evictions + 1;
          evicted := true;
          t.slots.(!victim) <- entry));
  t.max_occupancy <- max t.max_occupancy (occupancy t)

let evict t ~key =
  match find t key with
  | Some (i, _) ->
      t.slots.(i) <- None;
      t.evictions <- t.evictions + 1;
      true
  | None -> false

let installs t = t.installs
let evictions t = t.evictions
let max_occupancy t = t.max_occupancy
