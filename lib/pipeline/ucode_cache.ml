open Liquid_translate

type entry = {
  key : int;
  ucode : Ucode.t;
  ready : int;
  stamp : int;
  mutable last_used : int;
}

type t = {
  slots : entry option array;
  mutable clock : int;
  mutable installs : int;
  mutable replacements : int;
  mutable evictions : int;
  mutable occupancy : int;
  mutable max_occupancy : int;
}

let create ~entries =
  if entries <= 0 then invalid_arg "Ucode_cache.create";
  {
    slots = Array.make entries None;
    clock = 0;
    installs = 0;
    replacements = 0;
    evictions = 0;
    occupancy = 0;
    max_occupancy = 0;
  }

(* The scan runs on every region call of a Liquid machine, so it is an
   index-returning early-exit loop: no closure, no [Some (i, e)] box.
   Returns -1 when the key is absent. *)
let find_index t key =
  let n = Array.length t.slots in
  let found = ref (-1) in
  let i = ref 0 in
  while !found < 0 && !i < n do
    (match Array.unsafe_get t.slots !i with
    | Some e -> if e.key = key then found := !i
    | None -> ());
    incr i
  done;
  !found

let lookup t ~key ~now =
  t.clock <- t.clock + 1;
  let i = find_index t key in
  if i < 0 then None
  else
    match t.slots.(i) with
    | Some e when e.ready <= now ->
        e.last_used <- t.clock;
        Some e.ucode
    | Some _ | None -> None

let pending t ~key ~now =
  let i = find_index t key in
  if i < 0 then false
  else match t.slots.(i) with Some e -> e.ready > now | None -> false

let occupancy t = t.occupancy

(* The stamp distinguishes successive translations installed under the
   same key: consumers holding derived data (the block engine's compiled
   replay) compare stamps instead of microcode contents. [installs] is
   already a strictly increasing per-install counter, so it doubles as
   the stamp source. *)
let stamp_of t ~key =
  let i = find_index t key in
  if i < 0 then -1
  else match t.slots.(i) with Some e -> e.stamp | None -> -1

let install t ~key ~ready ucode =
  t.clock <- t.clock + 1;
  t.installs <- t.installs + 1;
  let entry = Some { key; ucode; ready; stamp = t.installs; last_used = t.clock } in
  let existing = find_index t key in
  if existing >= 0 then begin
    t.replacements <- t.replacements + 1;
    t.slots.(existing) <- entry
  end
  else begin
    let n = Array.length t.slots in
    let free = ref (-1) in
    let i = ref 0 in
    while !free < 0 && !i < n do
      (match Array.unsafe_get t.slots !i with
      | None -> free := !i
      | Some _ -> ());
      incr i
    done;
    if !free >= 0 then begin
      t.slots.(!free) <- entry;
      t.occupancy <- t.occupancy + 1
    end
    else begin
      (* Full: evict the least-recently-used entry. *)
      let victim = ref 0 in
      for j = 1 to n - 1 do
        match (t.slots.(j), t.slots.(!victim)) with
        | Some e, Some v -> if e.last_used < v.last_used then victim := j
        | Some _, None -> ()
        | None, _ -> assert false (* the free scan found no hole *)
      done;
      t.evictions <- t.evictions + 1;
      t.slots.(!victim) <- entry
    end
  end;
  t.max_occupancy <- max t.max_occupancy t.occupancy

let evict t ~key =
  let i = find_index t key in
  if i < 0 then false
  else begin
    t.slots.(i) <- None;
    t.evictions <- t.evictions + 1;
    t.occupancy <- t.occupancy - 1;
    true
  end

let installs t = t.installs
let replacements t = t.replacements
let evictions t = t.evictions
let max_occupancy t = t.max_occupancy

type counters = {
  u_installs : int;
  u_replacements : int;
  u_evictions : int;
  u_occupancy : int;
  u_max_occupancy : int;
}

let counters t =
  {
    u_installs = t.installs;
    u_replacements = t.replacements;
    u_evictions = t.evictions;
    u_occupancy = t.occupancy;
    u_max_occupancy = t.max_occupancy;
  }
