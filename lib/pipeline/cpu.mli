(** The simulated processor: an in-order five-stage core in the spirit of
    the ARM-926EJ-S used in the paper's evaluation, optionally extended
    with a parameterized SIMD accelerator, the post-retirement dynamic
    translator, and the microcode cache (Figure 1).

    Timing model (approximate, first-order):
    - one cycle per retired instruction;
    - extra latency for multiplies;
    - instruction and data cache misses stall for the memory latency;
    - a load immediately consumed by the next instruction stalls one
      cycle (load-use);
    - conditional branches consult a BTB + 2-bit-counter predictor; a
      mispredict costs a pipeline refill;
    - vector memory operations charge the data cache once per line
      spanned;
    - microcode executes out of the microcode cache and therefore skips
      instruction-cache accesses.

    Region calls (the unique branch-and-link) consult the microcode
    cache. On a ready hit, the front end substitutes the SIMD microcode
    for the outlined function. On a miss the region runs in scalar form
    while (at most one at a time, and only if the region is not already
    known untranslatable) a translator session consumes the retirement
    stream; the resulting microcode becomes visible [cycles_per_insn *
    observed_instructions] cycles after the region started, modeling
    translation latency (§5's sensitivity study). *)

open Liquid_machine
open Liquid_prog
open Liquid_translate

type translation_kind =
  | Hardware
      (** post-retirement hardware: translation proceeds in parallel with
          execution; only the microcode-ready time is delayed *)
  | Software
      (** a JIT routine on the main core: the same work additionally
          stalls the processor (the paper's §2 software alternative) *)

type translation = { cycles_per_insn : int; kind : translation_kind }

(** Fault-injection hooks (built by {!Liquid_faults.Fault}): each is
    consulted at a fixed pipeline point and closes over its own trigger
    state. All faults attack the {e translation} path only — the
    executed scalar stream is never altered — so a correctly-degrading
    machine must still produce the pure-scalar architectural state. *)
type fault_hooks = {
  fh_abort : entry:int -> observed:int -> Abort.t option;
      (** after each event fed to a live translation session; [Some a]
          forces the session to abort with [a] at its current DFA state *)
  fh_corrupt : entry:int -> observed:int -> bool;
      (** before each event fed to a live translation session; [true]
          feeds an untranslatable instruction in its place (a decode
          glitch visible only to the translator) *)
  fh_evict : entry:int -> call:int -> bool;
      (** before each microcode-cache lookup, with the global
          region-call index; [true] evicts the entry first *)
}

(** Observation points for debugging and tooling: every retired
    instruction (image stream and microcode), plus region-level events
    (scalar vs microcode calls, translation outcomes). *)
type trace_event =
  | T_insn of { pc : int; insn : Liquid_visa.Minsn.exec }
  | T_uop of { entry : int; index : int; uop : Ucode.uop }
  | T_region of {
      label : string;
      event :
        [ `Scalar_call | `Ucode_call | `Translated of int | `Aborted of Abort.t ];
    }
  | T_translation of {
      entry : int;
      label : string;
      width : int;
      uops : int;
      latency : int;
          (** cycles from the region's start until the microcode is
              servable ([ready - start]) — the paper's §5 translation
              latency, per completed translation *)
    }

type config = {
  accel_lanes : int option;
  translator : translation option;
  backend : Backend.t;
      (** translation target the accelerator implements: the fixed-width
          Neon-like ISA ({!Backend.fixed}, the default) or the
          vector-length-agnostic predicated ISA ({!Backend.vla}). Every
          translator session — live or oracle — emits microcode through
          this backend. *)
  icache : Cache.config option;
  dcache : Cache.config option;
  mem_latency : int;
  mul_extra : int;
  mispredict_penalty : int;
  vec_bus_bytes : int;
      (** memory-bus width: a vector load/store costs one cycle per bus
          beat beyond the first *)
  oracle_translation : bool;
      (** pre-translate every region before execution, modeling a binary
          with built-in ISA support for SIMD (the paper's overhead
          baseline in Figure 6's callout) *)
  interrupt_interval : int option;
      (** deliver an asynchronous interrupt (context switch) every N
          cycles; an in-flight translation session is externally aborted
          (paper §4.1) and retried on a later region execution *)
  on_trace : (trace_event -> unit) option;
      (** observer invoked at every retirement and region event *)
  ucode_entries : int;
  max_uops : int;
  fuel : int;
      (** retired-instruction budget before a [Fuel_exhausted]
          {!Diag.t} stops the run *)
  faults : fault_hooks option;  (** fault-injection hooks; [None] = off *)
  blocks : bool;
      (** dispatch through the pre-decoded translation-block engine
          ({!Blocks}); default on. Bit-identical to stepping — this is an
          escape hatch for debugging and for measuring the engine's own
          speedup. The engine silently self-disables when a trace
          observer or fault hooks are configured (those need per-step
          fidelity). *)
  superblocks : bool;
      (** form trace superblocks on hot conditional back-edges and run
          steady-state loop iterations through them ({!Blocks}); default
          on, no effect unless [blocks] is also on. Bit-identical to the
          plain block engine on every pinned counter — an escape hatch
          for debugging and for measuring the trace tier's own
          speedup. Inherits the block engine's self-disable conditions
          (trace observer, fault hooks, live sessions, fuel
          pressure). *)
}

val scalar_config : config
(** Baseline ARM-926EJ-S: no SIMD accelerator, no translator. *)

val native_config : lanes:int -> config
(** Accelerator present, binaries carry native SIMD instructions. *)

val liquid_config : lanes:int -> config
(** Accelerator plus hardware translator (1 cycle/instruction). *)

type region_outcome =
  | R_untried
  | R_installed of { width : int; uops : int }
  | R_failed of Abort.t

type region_report = {
  label : string;
  entry : int;
  calls : (int * int) list;
      (** (start, end) cycles of each call, chronological; the gap the
          translator has between executions is
          [start of call k+1 - end of call k] *)
  ucode_served : int;  (** calls substituted from the microcode cache *)
  outcome : region_outcome;
}

type run = {
  stats : Stats.t;
  memory : Memory.t;
  regs : int array;
  regions : region_report list;
  ucode_max_occupancy : int;
  icache_counters : Cache.counters option;
      (** the instruction cache's own tally; [stats.icache_*] is derived
          from it at collection (single writer) *)
  dcache_counters : Cache.counters option;
  bpred_counters : Branch_pred.counters;
  ucache_counters : Ucode_cache.counters;
  blocks_compiled : int;
      (** translation blocks compiled by the block engine (0 when off) *)
  block_execs : int;
      (** block executions, chained blocks included (0 when off).
          Superblock iterations are counted in [superblock_iters], not
          here — runs with and without superblocks legitimately differ
          on this telemetry (never on a pinned counter) *)
  superblocks_compiled : int;
      (** trace superblocks formed (0 when blocks or superblocks off) *)
  superblock_iters : int;
      (** whole loop iterations executed through a superblock *)
  superblock_bailouts : int;
      (** superblock exits to the block path: guard failures (the loop's
          normal exit) plus fuel-pressure bail-outs *)
  pred_fast_iters : int;
      (** predicated vector executions that took the all-true fast path
          (full predicate, unmasked fixed-width semantics) *)
  pred_masked_iters : int;
      (** predicated vector executions that paid the masked path *)
  vla_pred_execs : int;
      (** predicated vector uops dispatched (stepping interpreter plus
          block engine); conservation:
          [pred_fast_iters + pred_masked_iters = vla_pred_execs] *)
  permutes_seen : int;
      (** permutation placeholders encountered at translation finish,
          summed over every finished session (cached and oracle) *)
  permutes_recovered : int;
      (** placeholders rewritten to a native permute or a VLA table
          lookup; conservation:
          [permutes_recovered + permutes_aborted = permutes_seen] *)
  permutes_aborted : int;
      (** placeholders whose resolution aborted the session *)
  tbl_index_builds : int;
      (** [Tblidx] index-table materializations executed (once per
          region call and distinct pattern on the VLA target) *)
}

val run : ?config:config -> Image.t -> run
(** Execute the image from its entry point until [halt].
    Raises {!Diag.Error} on runaway execution, a wild PC or corrupt
    microcode, and {!Sem.Sigill} when the binary needs hardware this
    machine lacks. Prefer {!run_result} for callers that must survive
    failing runs. *)

val run_result : ?config:config -> Image.t -> (run, Diag.t) result
(** Like {!run}, but a failing run returns [Error diag] — the typed
    fault plus a machine snapshot (pc, cycle, retired count) — instead
    of raising. {!Sem.Sigill} is converted to a [Diag.Illegal] fault at
    this boundary; no exception escapes. *)
