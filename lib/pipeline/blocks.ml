(* The translation-block engine: the simulator's own take on the
   paper's thesis. Just as the Liquid SIMD hardware stops re-deriving a
   region's SIMD form on every call by caching microcode, the simulator
   stops re-deciding what an instruction *is* on every visit by lazily
   compiling maximal straight-line runs of [Minsn.t] into flat arrays of
   pre-resolved micro-ops: register names become indices, immediates are
   word-normalized and shift-folded, per-instruction charge amounts
   (base cycle, [mul_extra], intra-block load-use stalls, static vector
   bus beats) are summed at compile time, and instruction-fetch cache
   lines are pre-grouped so each line is probed once per block.

   Two tiers execute the compiled form:

   - Every block carries its micro-ops twice: as data ([b_uops], for
     fault repair and superblock bookkeeping) and as specialized
     closures ([b_thunks]) — one [unit -> unit] per micro-op with
     operand indices, immediates, element sizes, opcode dispatch and the
     slot's icache line probe all baked in at compile time, so the hot
     replay loop is [thunk ()] with zero per-op matching.

   - When a block's conditional back-edge ([T_branch] with a
     backward target) has fired [hot_threshold] times, the loop body is
     flattened across the edge into a {e trace superblock}: the member
     blocks' thunks concatenated in trace order, executed whole
     iterations at a time with one batched stat delta per logical
     iteration. The latch condition, re-evaluated after each iteration,
     is the guard: while it holds the trace loops without ever touching
     the block dispatcher; when it fails (or fuel could expire inside
     the next iteration) the superblock bails out to the ordinary block
     path. Traces follow only unconditional edges, so the guard is the
     single conditional and a formed trace can never exit mid-iteration
     except by fault.

   This is an execution strategy, not a semantics change: every counter
   the golden suite pins must come out bit-identical to the step-by-step
   engine. The equivalences this file relies on:

   - Blocks only run while no translator session is live (the
     dispatcher in [Cpu] guarantees it), so the scratch effect fields
     skipped by the pre-resolved kernels are unobservable, and
     interrupt-epoch catch-up by division in [Cpu.interrupt_check]
     fires at the same cycle it would have under per-step checking.
   - Within a block, consecutive fetches of one icache line cannot be
     separated by any other access of that cache, so one real
     {!Liquid_machine.Cache.access} per line run plus
     {!Liquid_machine.Cache.credit_hits} for the rest is
     state- and counter-equivalent. The same holds per member block of a
     superblock, because the thunks preserve the exact probe sequence.
   - Load-use hazards are static within a block (the stall charge is
     baked into the slot's charge); only the hazard carried in from the
     previous block needs a dynamic probe, and the hazard carried out
     is precomputed per block ([b_exit_pending]). A superblock re-walks
     the junction probes per iteration ([iter_stalls]) — cheap, exact.
   - Fuel cannot expire inside a block or a trace iteration: the
     dispatcher falls back to [step] (and the superblock to the block
     path) whenever [retired + n > fuel], so the watchdog fires with
     exactly the per-step diagnostics.
   - Cycle totals are sums, so batching a trace iteration's static
     charges after its thunks (which interleave their own cache-miss
     charges) reorders additions only. Predictor updates are replayed
     in trace order after each iteration; no predictor lookup can occur
     inside a trace (internal edges are unconditional), so the update
     sequence the predictor observes is identical to the block path's.

   Blocks end at branches ([B] stays in-block as the terminator;
   [Bl]/[Ret]/[Halt] are excluded and routed to [step]), at
   vector/scalar mode changes, and at the end of the code array.
   Unconditional fallthrough/jump edges chain directly block-to-block
   without returning to the dispatcher. [run_ucode] replay gets the
   same treatment: straight-line microcode segments between [UB]/[URet]
   compile to the same closure arrays, keyed per cache entry and
   invalidated by install stamp when a region is retranslated. *)

open Liquid_isa
open Liquid_visa
open Liquid_machine
open Liquid_prog
open Liquid_translate

(* A pre-resolved micro-op. Scalar operands are register indices;
   immediates arrive with [Word] normalization and index shifts already
   applied. [Spred] (predicated moves/dp, rare) replays through the
   shared [Sem] executor. *)
type suop =
  | Smov_i of { dst : int; v : int }
  | Smov_r of { dst : int; src : int }
  | Sdp_i of { op : Opcode.t; dst : int; s1 : int; imm : int }
  | Sdp_r of { op : Opcode.t; dst : int; s1 : int; s2 : int }
  | Spred of Insn.exec
  | Scmp_i of { s1 : int; imm : int }
  | Scmp_r of { s1 : int; s2 : int }
  | Sld of {
      bytes : int;
      signed : bool;
      dst : int;
      breg : int;  (** base register index, [-1] when the base is a symbol *)
      bconst : int;  (** symbol address when [breg < 0] *)
      ireg : int;  (** index register index, [-1] for immediate indices *)
      iconst : int;  (** pre-shifted immediate index when [ireg < 0] *)
      shift : int;
    }
  | Sst of {
      bytes : int;
      src : int;
      breg : int;
      bconst : int;
      ireg : int;
      iconst : int;
      shift : int;
    }
  | Svec of Vinsn.exec
  | Svla of Vla.exec
      (** predicated / length-agnostic uop (microcode replay only: image
          code never contains them) *)
  | Srvv of Rvv.exec
      (** [vl]-governed stripmined uop (microcode replay only, like
          [Svla]) *)

type term =
  | T_fall of int  (** fallthrough into a step-handled pc or next block *)
  | T_jump of { key : int; target : int }  (** unconditional [B] *)
  | T_branch of { cond : Cond.t; key : int; target : int; fall : int }

type block = {
  b_pc : int;
  b_uops : suop array;
  b_bases : (unit -> unit) array;
      (* [b_uops] compiled to closures, no icache probes — the
         steady-state trace replay, whose fetches are known hits *)
  b_thunks : (unit -> unit) array;
      (* the same closures with slot icache probes baked in front *)
  b_charge : int array;
      (* static cycles per slot (uops, then the branch terminator):
         base cycle + mul_extra + intra-block load-use stall + static
         vector bus beats — everything [step] charges before exec *)
  b_n : int;  (* retired instructions, including a branch terminator *)
  b_scalar : int;
  b_vector : int;
  b_cycles : int;  (* sum of [b_charge] *)
  b_newline : int array;
      (* per slot: the icache line address when this slot's fetch starts
         a new line run, -1 otherwise (always -1 without an icache) *)
  b_nlines : int;
  b_first : Insn.exec option;  (* entry load-use hazard probe *)
  b_exit_pending : Reg.t option;
      (* hazard state a scalar block leaves behind (preallocated) *)
  b_passthrough : bool;  (* vector blocks: pending hazard flows through *)
  b_term : term;
  mutable b_next : block option;  (* chained unconditional successor *)
  mutable b_hot : int;
      (* times this block's conditional back-edge fired (latch blocks
         only); formation triggers exactly once, at [hot_threshold] *)
  mutable b_super : super option;  (* the trace rooted at our back-edge *)
}

(* A trace superblock: one whole loop iteration, flattened. Member
   blocks run head-first in trace order; the latch is always last and
   its [T_branch] condition is the guard. *)
and super = {
  s_head : int;  (* trace entry pc = the latch's back-edge target *)
  s_cond : Cond.t;  (* guard: the latch branch condition *)
  s_gmask : int;
  s_gval : int;
  s_gneg : bool;
      (* [s_cond] pre-split by {!Cond.mask_test}: the steady-state guard
         is the inline test [((flags land s_gmask) = s_gval) <> s_gneg] *)
  s_key : int;  (* latch predictor key *)
  s_fall : int;  (* latch fall-through: the bail-out pc *)
  s_blocks : block array;  (* members, trace order; last is the latch *)
  s_thunks : (unit -> unit) array;
      (* members' uop thunks plus branch-terminator fetch probes,
         execution order *)
  s_tblock : int array;  (* per thunk: index into [s_blocks] *)
  s_tslot : int array;
      (* per thunk: slot within its block, -1 for a terminator fetch
         probe (which cannot raise) *)
  s_jumps : int array;
      (* predictor keys of internal [T_jump] terminators, trace order *)
  s_n : int;  (* retired per iteration: sum of member [b_n] *)
  s_scalar : int;
  s_vector : int;
  s_cycles : int;  (* static cycles per iteration *)
  s_credits : int;  (* icache hit credits per iteration *)
  s_stall_ss : int;
      (* junction load-use stalls of a steady-state iteration: the
         hazard entering every iteration after the first is the trace's
         own exit hazard, so the per-block entry probes collapse to a
         constant *)
  s_fast : (unit -> unit) array;
      (* the members' base closures, no icache probes: the steady-state
         body. Valid only under [s_fast_ok] (all fetches provably hit
         and are credited in bulk). *)
  s_ftblock : int array;  (* per fast thunk: index into [s_blocks] *)
  s_ftslot : int array;  (* per fast thunk: slot within its block *)
  s_fast_ok : bool;
      (* the trace's fetch lines fit their cache sets, so after one
         real-probe iteration every line is resident and stays resident
         (the only icache traffic while the trace loops is the trace's
         own, and hits never evict) *)
}

type slot = S_unknown | S_noblock | S_block of block

(* Compiled microcode replay: straight-line segments between [UB]/[URet],
   lazily compiled per start index. [U_bail] marks segments the compiler
   declines (control flow inside [US], truncated microcode) — the
   interpreted loop handles those with exact diagnostics. *)
type uterm =
  | UT_branch of { cond : Cond.t; key : int; target : int; fall : int }
  | UT_ret

type useg = {
  us_uops : suop array;
  us_thunks : (unit -> unit) array;
  us_charge : int array;  (* per slot, terminator included *)
  us_n : int;  (* uops retired, terminator included *)
  us_scalar : int;
  us_vector : int;
  us_cycles : int;
  us_term : uterm;
}

type useg_slot = U_unknown | U_bail | U_seg of useg

type ucomp = {
  uc_entry : int;
  uc_stamp : int;  (* Ucode_cache install stamp; -1 for oracle microcode *)
  uc_ucode : Ucode.t;
  uc_segs : useg_slot array;
}

type uresult = U_done | U_resume of int

type t = {
  image : Image.t;
  ctx : Sem.ctx;
  stats : Stats.t;
  icache : Cache.t option;
  dcache : Cache.t option;
  bpred : Branch_pred.t;
  mem_latency : int;
  mul_extra : int;
  mispredict_penalty : int;
  vec_bus_bytes : int;
  lanes : int;  (* accelerator lanes, -1 when absent *)
  max_uops : int;
  fuel : int;
  superblocks : bool;
  slots : slot array;
  ucomps : (int, ucomp) Hashtbl.t;
  mutable last_ucomp : ucomp option;
      (* most recent replay's compilation: region calls cluster, so the
         common case skips the [Hashtbl] probe *)
  mutable out_pc : int;
  mutable out_retired : int;
  mutable out_pending : Reg.t option;
  mutable fault_thunk : int;
      (* trace index of the raising thunk, recorded by the wrapper
         around the (rare) micro-ops that can fault; lets the trace
         replay loops run without a position ref *)
  mutable blocks_built : int;
  mutable block_execs : int;
  mutable supers_built : int;
  mutable super_iters : int;
  mutable super_bailouts : int;
  mutable vla_preds : int;
}

(* Back-edge executions before a latch's trace is formed. High enough
   that one-shot and cold loops never pay formation, low enough that any
   loop worth the name compiles within its warm-up. Formation is
   attempted exactly once per latch (at equality), so a failed attempt
   is permanent and free thereafter. *)
let hot_threshold = 16

let max_super_blocks = 16  (* member blocks per trace *)
let max_super_thunks = 1024  (* closures per trace *)

let create ~image ~ctx ~stats ~icache ~dcache ~bpred ~mem_latency ~mul_extra
    ~mispredict_penalty ~vec_bus_bytes ~lanes ~max_uops ~fuel ~superblocks =
  {
    image;
    ctx;
    stats;
    icache;
    dcache;
    bpred;
    mem_latency;
    mul_extra;
    mispredict_penalty;
    vec_bus_bytes;
    lanes = (match lanes with Some l -> l | None -> -1);
    max_uops;
    fuel;
    superblocks;
    slots = Array.make (Array.length image.Image.code) S_unknown;
    ucomps = Hashtbl.create 8;
    last_ucomp = None;
    out_pc = 0;
    out_retired = 0;
    out_pending = None;
    fault_thunk = 0;
    blocks_built = 0;
    block_execs = 0;
    supers_built = 0;
    super_iters = 0;
    super_bailouts = 0;
    vla_preds = 0;
  }

let out_pc eng = eng.out_pc
let out_retired eng = eng.out_retired
let out_pending eng = eng.out_pending
let built eng = eng.blocks_built
let execs eng = eng.block_execs
let supers_built eng = eng.supers_built
let super_iters eng = eng.super_iters
let super_bailouts eng = eng.super_bailouts
let vla_preds eng = eng.vla_preds

(* --- charge helpers (shared by thunks and repair) --- *)

let[@inline] charge eng c = eng.stats.Stats.cycles <- eng.stats.Stats.cycles + c

let[@inline] icache_access eng la =
  match eng.icache with
  | None -> ()
  | Some c -> (
      match Cache.access c la with
      | Cache.Hit -> ()
      | Cache.Miss -> charge eng eng.mem_latency)

let charge_data eng ~addr ~bytes ~write =
  let stats = eng.stats in
  (if write then stats.Stats.stores <- stats.Stats.stores + 1
   else stats.Stats.loads <- stats.Stats.loads + 1);
  match eng.dcache with
  | None -> ()
  | Some c ->
      let lines = Cache.lines_spanned c ~addr ~bytes in
      let line_bytes = Cache.line_bytes c in
      for i = 0 to lines - 1 do
        match Cache.access c (addr + (i * line_bytes)) with
        | Cache.Hit -> ()
        | Cache.Miss -> charge eng eng.mem_latency
      done

let charge_scratch eng =
  let ctx = eng.ctx in
  for i = 0 to ctx.Sem.e_nacc - 1 do
    charge_data eng ~addr:ctx.Sem.acc_addr.(i) ~bytes:ctx.Sem.acc_bytes.(i)
      ~write:ctx.Sem.acc_write.(i)
  done

let[@inline] record_branch eng ~key ~taken =
  if not (Branch_pred.predict_and_update eng.bpred ~pc:key ~taken) then
    charge eng eng.mispredict_penalty

(* --- compile --- *)

(* [None] for control flow; callers route those to [step] (image blocks)
   or the interpreted replay (microcode). *)
let compile_suop insn =
  match insn with
  | Insn.Mov { cond; dst; src } ->
      if not (Cond.equal cond Cond.Al) then Some (Spred insn)
      else
        Some
          (match src with
          | Insn.Imm v -> Smov_i { dst = Reg.index dst; v = Word.of_int v }
          | Insn.Reg r -> Smov_r { dst = Reg.index dst; src = Reg.index r })
  | Insn.Dp { cond; op; dst; src1; src2 } ->
      if not (Cond.equal cond Cond.Al) then Some (Spred insn)
      else
        Some
          (match src2 with
          | Insn.Imm v ->
              Sdp_i { op; dst = Reg.index dst; s1 = Reg.index src1; imm = v }
          | Insn.Reg r ->
              Sdp_r
                { op; dst = Reg.index dst; s1 = Reg.index src1; s2 = Reg.index r })
  | Insn.Ld { esize; signed; dst; base; index; shift } ->
      let breg, bconst =
        match base with
        | Insn.Sym a -> (-1, a)
        | Insn.Breg r -> (Reg.index r, 0)
      in
      let ireg, iconst =
        match index with
        | Insn.Imm v -> (-1, Word.shl v shift)
        | Insn.Reg r -> (Reg.index r, 0)
      in
      Some
        (Sld
           {
             bytes = Esize.bytes esize;
             signed;
             dst = Reg.index dst;
             breg;
             bconst;
             ireg;
             iconst;
             shift;
           })
  | Insn.St { esize; src; base; index; shift } ->
      let breg, bconst =
        match base with
        | Insn.Sym a -> (-1, a)
        | Insn.Breg r -> (Reg.index r, 0)
      in
      let ireg, iconst =
        match index with
        | Insn.Imm v -> (-1, Word.shl v shift)
        | Insn.Reg r -> (Reg.index r, 0)
      in
      Some
        (Sst
           {
             bytes = Esize.bytes esize;
             src = Reg.index src;
             breg;
             bconst;
             ireg;
             iconst;
             shift;
           })
  | Insn.Cmp { src1; src2 } ->
      Some
        (match src2 with
        | Insn.Imm v -> Scmp_i { s1 = Reg.index src1; imm = v }
        | Insn.Reg r -> Scmp_r { s1 = Reg.index src1; s2 = Reg.index r })
  | Insn.B _ | Insn.Bl _ | Insn.Ret | Insn.Halt -> None

(* Everything [step] charges before exec, statically known per
   instruction. *)
let scalar_charge eng (insn : Insn.exec) =
  match insn with Insn.Dp { op = Opcode.Mul; _ } -> 1 + eng.mul_extra | _ -> 1

let vector_charge eng ~lanes (v : Vinsn.exec) =
  let bus = eng.vec_bus_bytes in
  let extra esize =
    let bytes = lanes * Esize.bytes esize in
    max 0 (((bytes + bus - 1) / bus) - 1)
  in
  match v with
  | Vinsn.Vdp { op = Opcode.Mul; _ } -> 1 + eng.mul_extra
  | Vinsn.Vred _ -> 2
  | Vinsn.Vld { esize; _ } | Vinsn.Vst { esize; _ } -> 1 + extra esize
  | Vinsn.Vlds { esize; stride; _ } | Vinsn.Vsts { esize; stride; _ } ->
      1 + (stride * (extra esize + 1))
  | Vinsn.Vgather { esize; _ } ->
      1 + (lanes * ((Esize.bytes esize + bus - 1) / bus))
  | Vinsn.Vdp _ | Vinsn.Vsat _ | Vinsn.Vperm _ -> 1

(* --- closure compilation --- *)

let vinsn_accesses = function
  | Vinsn.Vld _ | Vinsn.Vst _ | Vinsn.Vlds _ | Vinsn.Vsts _ | Vinsn.Vgather _
    ->
      true
  | Vinsn.Vdp _ | Vinsn.Vsat _ | Vinsn.Vperm _ | Vinsn.Vred _ -> false

(* Specialized effective-address closure: the four base/index shapes
   collapse to a constant when both operands are immediate. *)
let compile_addr regs ~breg ~bconst ~ireg ~iconst ~shift =
  if breg >= 0 then
    if ireg >= 0 then fun () ->
      Word.add (Array.unsafe_get regs breg) (Word.shl (Array.unsafe_get regs ireg) shift)
    else fun () -> Word.add (Array.unsafe_get regs breg) iconst
  else if ireg >= 0 then fun () ->
    Word.add bconst (Word.shl (Array.unsafe_get regs ireg) shift)
  else
    let a = Word.add bconst iconst in
    fun () -> a

(* Specialized data-cache probe for a scalar access of a known size:
   at most two lines are spanned (scalar accesses are at most 4 bytes,
   lines at least that), and single-byte accesses span exactly one, so
   the generic [lines_spanned] loop collapses to one probe plus a
   compile-time-guarded boundary check. Probe order (low line first)
   matches [charge_data]. *)
let compile_probe eng c ~bytes =
  let lat = eng.mem_latency in
  let mask = lnot (Cache.line_bytes c - 1) in
  if bytes = 1 then fun addr ->
    match Cache.access c addr with
    | Cache.Hit -> ()
    | Cache.Miss -> charge eng lat
  else fun addr ->
    (match Cache.access c addr with
    | Cache.Hit -> ()
    | Cache.Miss -> charge eng lat);
    let last = addr + bytes - 1 in
    if last land mask <> addr land mask then (
      match Cache.access c last with
      | Cache.Hit -> ()
      | Cache.Miss -> charge eng lat)

(* One micro-op, compiled to a closure. The closure performs exactly
   what the old interpretive dispatch performed for the same [suop] —
   architectural effect, load/store counting, data-cache probes in
   access order — with every static decision (operand indices, opcode
   dispatch, element sizes, cache presence) paid here, once. *)
let compile_thunk eng ~lanes u =
  let ctx = eng.ctx in
  let regs = ctx.Sem.regs in
  match u with
  | Smov_i { dst; v } -> fun () -> Array.unsafe_set regs dst v
  | Smov_r { dst; src } ->
      fun () -> Array.unsafe_set regs dst (Word.of_int (Array.unsafe_get regs src))
  | Sdp_i { op; dst; s1; imm } -> (
      match op with
      | Opcode.Add ->
          fun () ->
            Array.unsafe_set regs dst (Word.add (Array.unsafe_get regs s1) imm)
      | Opcode.Sub ->
          fun () ->
            Array.unsafe_set regs dst (Word.sub (Array.unsafe_get regs s1) imm)
      | Opcode.Mul ->
          fun () ->
            Array.unsafe_set regs dst (Word.mul (Array.unsafe_get regs s1) imm)
      | _ ->
          let f = Opcode.fn op in
          fun () ->
            Array.unsafe_set regs dst (f (Array.unsafe_get regs s1) imm))
  | Sdp_r { op; dst; s1; s2 } -> (
      match op with
      | Opcode.Add ->
          fun () ->
            Array.unsafe_set regs dst
              (Word.add (Array.unsafe_get regs s1) (Array.unsafe_get regs s2))
      | Opcode.Sub ->
          fun () ->
            Array.unsafe_set regs dst
              (Word.sub (Array.unsafe_get regs s1) (Array.unsafe_get regs s2))
      | Opcode.Mul ->
          fun () ->
            Array.unsafe_set regs dst
              (Word.mul (Array.unsafe_get regs s1) (Array.unsafe_get regs s2))
      | _ ->
          let f = Opcode.fn op in
          fun () ->
            Array.unsafe_set regs dst
              (f (Array.unsafe_get regs s1) (Array.unsafe_get regs s2)))
  | Spred insn -> fun () -> ignore (Sem.exec_scalar ctx ~pc:0 insn)
  | Scmp_i { s1; imm } ->
      fun () -> ctx.Sem.flags <- Flags.of_compare (Array.unsafe_get regs s1) imm
  | Scmp_r { s1; s2 } ->
      fun () ->
        ctx.Sem.flags <-
          Flags.of_compare (Array.unsafe_get regs s1) (Array.unsafe_get regs s2)
  | Sld { bytes; signed; dst; breg; bconst; ireg; iconst; shift } -> (
      let addr_of = compile_addr regs ~breg ~bconst ~ireg ~iconst ~shift in
      let stats = eng.stats in
      match eng.dcache with
      | None ->
          fun () ->
            Sem.kernel_ld ctx ~addr:(addr_of ()) ~bytes ~signed ~dst;
            stats.Stats.loads <- stats.Stats.loads + 1
      | Some c ->
          let probe = compile_probe eng c ~bytes in
          fun () ->
            let addr = addr_of () in
            Sem.kernel_ld ctx ~addr ~bytes ~signed ~dst;
            stats.Stats.loads <- stats.Stats.loads + 1;
            probe addr)
  | Sst { bytes; src; breg; bconst; ireg; iconst; shift } -> (
      let addr_of = compile_addr regs ~breg ~bconst ~ireg ~iconst ~shift in
      let stats = eng.stats in
      match eng.dcache with
      | None ->
          fun () ->
            Sem.kernel_st ctx ~addr:(addr_of ()) ~bytes ~src;
            stats.Stats.stores <- stats.Stats.stores + 1
      | Some c ->
          let probe = compile_probe eng c ~bytes in
          fun () ->
            let addr = addr_of () in
            Sem.kernel_st ctx ~addr ~bytes ~src;
            stats.Stats.stores <- stats.Stats.stores + 1;
            probe addr)
  | Svec v ->
      let f = Sem.compile_vector ctx ~lanes v in
      if vinsn_accesses v then fun () ->
        f ();
        charge_scratch eng
      else f
  | Svla p -> (
      let f = Sem.compile_vla ctx ~lanes p in
      match p with
      | Vla.Pred { v; _ } ->
          (* count predicated executions at the dispatch layer, so the
             obs conservation invariant (fast + masked = dispatched) has
             an independent left- and right-hand side. The masked path
             of an access op records accesses too, so the scratch charge
             follows the op shape, not the predicate. *)
          if vinsn_accesses v then fun () ->
            eng.vla_preds <- eng.vla_preds + 1;
            f ();
            charge_scratch eng
          else fun () ->
            eng.vla_preds <- eng.vla_preds + 1;
            f ()
      | Vla.Tbl _ | Vla.Tblst _ ->
          (* recovered permutations are predicated memory ops: dispatch
             counts here, and the per-lane accesses the closure recorded
             go through the scratch charge *)
          fun () ->
            eng.vla_preds <- eng.vla_preds + 1;
            f ();
            charge_scratch eng
      | Vla.Tblidx _ | Vla.Whilelt _ | Vla.Incvl _ -> f)
  | Srvv r -> (
      let f = Sem.compile_rvv ctx ~lanes r in
      match r with
      | Rvv.Vl { v } ->
          (* same dispatch-layer counting as [Svla]: the grant-governed
             body op lands in [vla_preds] so the obs conservation
             invariant (fast + masked = dispatched) spans both remainder
             mechanisms *)
          if vinsn_accesses v then fun () ->
            eng.vla_preds <- eng.vla_preds + 1;
            f ();
            charge_scratch eng
          else fun () ->
            eng.vla_preds <- eng.vla_preds + 1;
            f ()
      | Rvv.Tbl _ | Rvv.Tblst _ ->
          fun () ->
            eng.vla_preds <- eng.vla_preds + 1;
            f ();
            charge_scratch eng
      | Rvv.Tblidx _ | Rvv.Vsetvl _ | Rvv.Addvl _ -> f)

(* Bake the slot's icache line probe in front of its thunk, so the
   replay loop is a bare closure call per micro-op. *)
let wrap_icache eng la base =
  match eng.icache with
  | None -> base
  | Some c ->
      let lat = eng.mem_latency in
      fun () ->
        (match Cache.access c la with
        | Cache.Hit -> ()
        | Cache.Miss -> charge eng lat);
        base ()

let compile_block eng pc0 =
  let code = eng.image.Image.code in
  let addrs = eng.image.Image.addrs in
  let n_code = Array.length code in
  let vector = match code.(pc0) with Minsn.V _ -> true | Minsn.S _ -> false in
  match code.(pc0) with
  | Minsn.S (Insn.Bl _ | Insn.Ret | Insn.Halt) -> S_noblock
  | Minsn.V _ when eng.lanes < 0 ->
      (* no accelerator: [step] raises the exact Sigill *)
      S_noblock
  | Minsn.S _ | Minsn.V _ ->
      let uops = ref [] and charges = ref [] in
      let nu = ref 0 in
      let first_insn = ref None in
      let prev_ld : Reg.t option ref = ref None in
      let term = ref (T_fall n_code) in
      let term_is_insn = ref false in
      let pc = ref pc0 in
      let stop = ref false in
      while not !stop do
        if !pc >= n_code then begin
          term := T_fall !pc;
          stop := true
        end
        else begin
          match code.(!pc) with
          | Minsn.S (Insn.B { cond; target }) ->
              term :=
                (if Cond.equal cond Cond.Al then T_jump { key = !pc; target }
                 else T_branch { cond; key = !pc; target; fall = !pc + 1 });
              term_is_insn := true;
              stop := true
          | Minsn.S (Insn.Bl _ | Insn.Ret | Insn.Halt) ->
              term := T_fall !pc;
              stop := true
          | Minsn.S insn ->
              if vector then begin
                term := T_fall !pc;
                stop := true
              end
              else begin
                match compile_suop insn with
                | None ->
                    (* unreachable: control flow matched above *)
                    term := T_fall !pc;
                    stop := true
                | Some u ->
                    if !nu = 0 then first_insn := Some insn;
                    let hazard =
                      match !prev_ld with
                      | Some r when Insn.uses_reg insn r -> 1
                      | Some _ | None -> 0
                    in
                    uops := u :: !uops;
                    charges := (hazard + scalar_charge eng insn) :: !charges;
                    incr nu;
                    prev_ld :=
                      (match insn with
                      | Insn.Ld { dst; _ } -> Some dst
                      | _ -> None);
                    incr pc
              end
          | Minsn.V v ->
              if not vector then begin
                term := T_fall !pc;
                stop := true
              end
              else begin
                uops := Svec v :: !uops;
                charges := vector_charge eng ~lanes:eng.lanes v :: !charges;
                incr nu;
                incr pc
              end
        end
      done;
      let b_n = !nu + if !term_is_insn then 1 else 0 in
      if b_n = 0 then S_noblock
      else begin
        let charge = Array.make b_n 1 in
        List.iteri (fun i c -> charge.(i) <- c) (List.rev !charges);
        (* a branch terminator costs exactly the base cycle (the fill) *)
        let newline = Array.make b_n (-1) in
        let nlines = ref 0 in
        (match eng.icache with
        | None -> ()
        | Some c ->
            let mask = lnot (Cache.line_bytes c - 1) in
            let prev = ref min_int in
            for k = 0 to b_n - 1 do
              let la = addrs.(pc0 + k) land mask in
              if la <> !prev then begin
                newline.(k) <- la;
                incr nlines;
                prev := la
              end
            done);
        let uarr = Array.of_list (List.rev !uops) in
        let bases = Array.map (compile_thunk eng ~lanes:eng.lanes) uarr in
        let thunks =
          Array.mapi
            (fun k base ->
              if newline.(k) >= 0 then wrap_icache eng newline.(k) base
              else base)
            bases
        in
        let b =
          {
            b_pc = pc0;
            b_uops = uarr;
            b_bases = bases;
            b_thunks = thunks;
            b_charge = charge;
            b_n;
            b_scalar = (if vector then 0 else b_n);
            b_vector = (if vector then b_n else 0);
            b_cycles = Array.fold_left ( + ) 0 charge;
            b_newline = newline;
            b_nlines = !nlines;
            b_first = !first_insn;
            b_exit_pending =
              (if vector || !term_is_insn then None else !prev_ld);
            b_passthrough = vector;
            b_term = !term;
            b_next = None;
            b_hot = 0;
            b_super = None;
          }
        in
        eng.blocks_built <- eng.blocks_built + 1;
        S_block b
      end

let slot_at eng pc =
  match Array.unsafe_get eng.slots pc with
  | S_unknown ->
      let s = compile_block eng pc in
      eng.slots.(pc) <- s;
      s
  | s -> s

(* --- execute --- *)

(* Dynamic entry hazard: a load in the previous block feeding the first
   instruction of this one. *)
let[@inline] entry_stall eng pending b =
  match pending with
  | Some r -> (
      match b.b_first with
      | Some insn when Insn.uses_reg insn r -> charge eng 1
      | Some _ | None -> ())
  | None -> ()

(* A micro-op raised mid-block (only [Svec]/[Svla]/[Srvv] can: Sigill on
   an unsupported permutation or mismatched constant width). Re-apply the
   per-step accounting [step] would have accumulated through the
   faulting slot, so the escaping diagnostics (pc, cycle, retired)
   match the step-by-step engine exactly. *)
let repair_block eng b k =
  let stats = eng.stats in
  let scalars = ref 0 and vectors = ref 0 and cyc = ref 0 and lines = ref 0 in
  for j = 0 to k do
    (match b.b_uops.(j) with
    | Svec _ -> incr vectors
    | _ -> incr scalars);
    cyc := !cyc + b.b_charge.(j);
    if b.b_newline.(j) >= 0 then incr lines
  done;
  stats.Stats.fetches <- stats.Stats.fetches + k + 1;
  stats.Stats.scalar_insns <- stats.Stats.scalar_insns + !scalars;
  stats.Stats.vector_insns <- stats.Stats.vector_insns + !vectors;
  charge eng !cyc;
  (match eng.icache with
  | Some c -> Cache.credit_hits c (k + 1 - !lines)
  | None -> ());
  eng.out_retired <- eng.out_retired + k + 1;
  eng.out_pending <- None;
  eng.out_pc <- b.b_pc + k

let exec_block eng b =
  let ctx = eng.ctx and stats = eng.stats in
  entry_stall eng eng.out_pending b;
  let thunks = b.b_thunks in
  let nu = Array.length thunks in
  let i = ref 0 in
  (try
     while !i < nu do
       (Array.unsafe_get thunks !i) ();
       incr i
     done
   with e ->
     repair_block eng b !i;
     raise e);
  (if b.b_n > nu then
     let la = Array.unsafe_get b.b_newline nu in
     if la >= 0 then icache_access eng la);
  stats.Stats.fetches <- stats.Stats.fetches + b.b_n;
  stats.Stats.scalar_insns <- stats.Stats.scalar_insns + b.b_scalar;
  stats.Stats.vector_insns <- stats.Stats.vector_insns + b.b_vector;
  charge eng b.b_cycles;
  (match eng.icache with
  | Some c -> Cache.credit_hits c (b.b_n - b.b_nlines)
  | None -> ());
  eng.out_retired <- eng.out_retired + b.b_n;
  if not b.b_passthrough then eng.out_pending <- b.b_exit_pending;
  eng.block_execs <- eng.block_execs + 1;
  match b.b_term with
  | T_fall next -> eng.out_pc <- next
  | T_jump { key; target } ->
      record_branch eng ~key ~taken:true;
      eng.out_pc <- target
  | T_branch { cond; key; target; fall } ->
      (* [step] consults the predictor only on the taken path (a
         not-taken branch retires as [Next], bypassing [record_branch]);
         mirror that exactly or the lookup/mispredict tallies drift. *)
      let taken = Cond.holds cond ctx.Sem.flags in
      if taken then record_branch eng ~key ~taken:true;
      eng.out_pc <- (if taken then target else fall)

(* --- superblocks --- *)

(* Junction load-use stalls for one trace iteration entered with
   [pending0], and the hazard state left for the next iteration. Exact
   replay of the per-block entry probes, O(member blocks) per
   iteration. *)
let iter_stalls sb pending0 =
  let stall = ref 0 in
  let p = ref pending0 in
  Array.iter
    (fun b ->
      (match !p with
      | Some r -> (
          match b.b_first with
          | Some insn when Insn.uses_reg insn r -> incr stall
          | Some _ | None -> ())
      | None -> ());
      if not b.b_passthrough then p := b.b_exit_pending)
    sb.s_blocks;
  (!stall, !p)

(* A thunk raised mid-trace. Nothing of this iteration has been batched
   yet (stats, stalls and predictor updates land after the thunks), so
   replay the completed member blocks' accounting in trace order —
   junction stall, block stats, icache credits, internal jump predictor
   updates — then let [repair_block] finish the faulting block through
   slot [k]. Cache state and cycle charges from inside the thunks are
   already exact. *)
let repair_super_at eng sb ~bi ~k =
  let stats = eng.stats in
  let p = ref eng.out_pending in
  for j = 0 to bi - 1 do
    let b = sb.s_blocks.(j) in
    entry_stall eng !p b;
    stats.Stats.fetches <- stats.Stats.fetches + b.b_n;
    stats.Stats.scalar_insns <- stats.Stats.scalar_insns + b.b_scalar;
    stats.Stats.vector_insns <- stats.Stats.vector_insns + b.b_vector;
    charge eng b.b_cycles;
    (match eng.icache with
    | Some c -> Cache.credit_hits c (b.b_n - b.b_nlines)
    | None -> ());
    eng.out_retired <- eng.out_retired + b.b_n;
    (match b.b_term with
    | T_jump { key; _ } -> record_branch eng ~key ~taken:true
    | T_fall _ | T_branch _ -> ());
    if not b.b_passthrough then p := b.b_exit_pending
  done;
  let fb = sb.s_blocks.(bi) in
  entry_stall eng !p fb;
  eng.super_bailouts <- eng.super_bailouts + 1;
  repair_block eng fb k

(* A fast-path iteration faulted: its fetch probes were elided, so
   replay them — every line-run start of the completed member blocks
   plus the faulting block's through slot [k] — before the repair
   routines credit the remaining fetches. All of them hit (the fast
   path only runs once the trace's lines are resident), so this
   restores exactly the hit tallies and LRU touches the real-probe path
   would have accumulated. *)
let replay_probes eng sb ~bi ~k =
  match eng.icache with
  | None -> ()
  | Some _ ->
      for j = 0 to bi - 1 do
        let b = sb.s_blocks.(j) in
        for s = 0 to b.b_n - 1 do
          let la = b.b_newline.(s) in
          if la >= 0 then icache_access eng la
        done
      done;
      let fb = sb.s_blocks.(bi) in
      for s = 0 to k do
        let la = fb.b_newline.(s) in
        if la >= 0 then icache_access eng la
      done

(* Steady-state loop execution: whole iterations of the flattened trace
   until the guard (the latch condition) fails or fuel could expire
   inside the next iteration. Entered with [out_pc = s_head]; leaves
   [out_pc] at the fall-through on a guard exit, or at the head on a
   fuel bail-out so the block path (whose per-block fuel check is
   finer) takes over.

   The first iteration replays everything live — real icache probes
   (which also make every trace line resident), per-branch predictor
   updates, dynamic junction stalls against the hazard carried in. The
   iterations after it are the simulator's true steady state, and every
   per-iteration quantity is provably constant:

   - the entry hazard is the trace's own exit hazard, so the junction
     stalls are the precomputed [s_stall_ss] (a trace with no scalar
     member has no hazard probes at all, and the constant is 0);
   - under [s_fast_ok] every fetch hits (lines resident, hits never
     evict, the trace's own fetches are the only icache traffic), so
     the body runs probe-free closures and the iteration credits
     [s_n] hits in bulk;
   - when every replayed branch is [Branch_pred.taken_saturated] — the
     warm-up plus first iteration all but guarantee it — a predictor
     update is a lookup tally and nothing else, so the updates batch
     into one [credit_lookups] at exit.

   The loop body is then just the closures, the guard test and a fuel
   bound; retired counts, cycles, stats, credits and lookups are
   applied once, multiplied by the iteration count, when the loop
   exits (or before repair, when a thunk faults mid-iteration). *)
let run_super eng sb =
  let stats = eng.stats in
  if eng.out_retired + sb.s_n > eng.fuel then
    eng.super_bailouts <- eng.super_bailouts + 1
  else begin
    (* --- first iteration: live replay --- *)
    let thunks = sb.s_thunks in
    let nt = Array.length thunks in
    (try
       for i = 0 to nt - 1 do
         (Array.unsafe_get thunks i) ()
       done
     with e ->
       (* only wrapped thunks raise, and the raiser recorded its own
          trace index on entry *)
       let ft = eng.fault_thunk in
       repair_super_at eng sb ~bi:sb.s_tblock.(ft) ~k:(max sb.s_tslot.(ft) 0);
       raise e);
    let stall, p1 = iter_stalls sb eng.out_pending in
    stats.Stats.fetches <- stats.Stats.fetches + sb.s_n;
    stats.Stats.scalar_insns <- stats.Stats.scalar_insns + sb.s_scalar;
    stats.Stats.vector_insns <- stats.Stats.vector_insns + sb.s_vector;
    charge eng (sb.s_cycles + stall);
    (match eng.icache with
    | Some c -> Cache.credit_hits c sb.s_credits
    | None -> ());
    eng.out_retired <- eng.out_retired + sb.s_n;
    eng.out_pending <- p1;
    eng.super_iters <- eng.super_iters + 1;
    Array.iter (fun key -> record_branch eng ~key ~taken:true) sb.s_jumps;
    if not (Cond.holds sb.s_cond eng.ctx.Sem.flags) then begin
      eng.out_pc <- sb.s_fall;
      eng.super_bailouts <- eng.super_bailouts + 1
    end
    else begin
      record_branch eng ~key:sb.s_key ~taken:true;
      (* --- steady state: batched replay --- *)
      let bpred = eng.bpred in
      let njumps = Array.length sb.s_jumps in
      let sat =
        Branch_pred.taken_saturated bpred ~pc:sb.s_key
        &&
        let ok = ref true in
        for j = 0 to njumps - 1 do
          if
            not
              (Branch_pred.taken_saturated bpred
                 ~pc:(Array.unsafe_get sb.s_jumps j))
          then ok := false
        done;
        !ok
      in
      let fastok = sb.s_fast_ok in
      let body = if fastok then sb.s_fast else sb.s_thunks in
      let nb = Array.length body in
      let iter_cycles = sb.s_cycles + sb.s_stall_ss in
      let per_credit = if fastok then sb.s_n else sb.s_credits in
      (* whole further iterations the fuel budget admits *)
      let max_iters = (eng.fuel - eng.out_retired) / sb.s_n in
      let iters = ref 0 in
      let flush ~latch_taken =
        let k = !iters in
        if k > 0 then begin
          stats.Stats.fetches <- stats.Stats.fetches + (k * sb.s_n);
          stats.Stats.scalar_insns <-
            stats.Stats.scalar_insns + (k * sb.s_scalar);
          stats.Stats.vector_insns <-
            stats.Stats.vector_insns + (k * sb.s_vector);
          charge eng (k * iter_cycles);
          (match eng.icache with
          | Some c -> Cache.credit_hits c (k * per_credit)
          | None -> ());
          eng.out_retired <- eng.out_retired + (k * sb.s_n);
          eng.super_iters <- eng.super_iters + k;
          if sat then
            Branch_pred.credit_lookups bpred ((k * njumps) + latch_taken)
        end
      in
      let gmask = sb.s_gmask and gval = sb.s_gval and gneg = sb.s_gneg in
      let running = ref true in
      let fuel_exit = ref false in
      (try
         while !running do
           if !iters >= max_iters then begin
             fuel_exit := true;
             running := false
           end
           else begin
             for fi = 0 to nb - 1 do
               (Array.unsafe_get body fi) ()
             done;
             incr iters;
             if not sat then
               for j = 0 to njumps - 1 do
                 record_branch eng
                   ~key:(Array.unsafe_get sb.s_jumps j)
                   ~taken:true
               done;
             let f = (eng.ctx.Sem.flags :> int) in
             if ((f land gmask) = gval) <> gneg then begin
               if not sat then record_branch eng ~key:sb.s_key ~taken:true
             end
             else running := false
           end
         done
       with e ->
         (* the faulting iteration is partial: batch the completed ones
            (each of which took the latch), restore its elided fetch
            probes, then repair per-step accounting up to the fault.
            Only wrapped thunks raise; the raiser recorded its index. *)
         flush ~latch_taken:!iters;
         let ft = eng.fault_thunk in
         let bi, k =
           if fastok then (sb.s_ftblock.(ft), sb.s_ftslot.(ft))
           else (sb.s_tblock.(ft), max sb.s_tslot.(ft) 0)
         in
         if fastok then replay_probes eng sb ~bi ~k;
         repair_super_at eng sb ~bi ~k;
         raise e);
      (* every completed iteration took the latch except the final one
         of a guard exit, whose not-taken retire never consults the
         predictor (mirrors [exec_block]/[step]) *)
      flush ~latch_taken:(!iters - if !fuel_exit then 0 else 1);
      if not !fuel_exit then eng.out_pc <- sb.s_fall;
      eng.super_bailouts <- eng.super_bailouts + 1
    end
  end

(* Try to flatten the loop body behind [latch]'s back-edge into a trace.
   Follows only unconditional edges from the head; fails (permanently —
   the hot counter passes the threshold exactly once) if the walk leaves
   compiled-block territory, meets another conditional branch, or the
   trace would be unreasonably large. *)
let form_super eng latch ~head ~cond ~key ~fall =
  let nslots = Array.length eng.slots in
  let rec collect pc acc nb =
    if nb > max_super_blocks || pc < 0 || pc >= nslots then None
    else
      match slot_at eng pc with
      | S_noblock | S_unknown -> None
      | S_block b ->
          if b == latch then Some (List.rev (b :: acc))
          else (
            match b.b_term with
            | T_branch _ -> None
            | T_fall next | T_jump { target = next; _ } ->
                collect next (b :: acc) (nb + 1))
  in
  match collect head [] 1 with
  | None -> ()
  | Some blocks ->
      let blks = Array.of_list blocks in
      let nmember = Array.length blks in
      let thunks = ref [] and tblock = ref [] and tslot = ref [] in
      let fast = ref [] and ftblock = ref [] and ftslot = ref [] in
      let jumps = ref [] in
      let nthunks = ref 0 and nfast = ref 0 in
      let n = ref 0 and scalars = ref 0 and vectors = ref 0 in
      let cycles = ref 0 and credits = ref 0 in
      (* Only micro-ops replayed through the shared executors can raise
         (the pre-resolved scalar kernels are total: every [Opcode] and
         [Word] op is defined everywhere, and [Memory] reads any
         address). Wrapping just those with a recorder that notes their
         trace index in [eng.fault_thunk] lets the replay loops run as
         plain counters; the handler reads the index back instead of
         the loop maintaining a position ref per thunk call. *)
      let can_raise = function
        | Spred _ | Svec _ | Svla _ | Srvv _ -> true
        | Smov_i _ | Smov_r _ | Sdp_i _ | Sdp_r _ | Scmp_i _ | Scmp_r _
        | Sld _ | Sst _ ->
            false
      in
      Array.iteri
        (fun bi b ->
          Array.iteri
            (fun k th ->
              let th =
                if can_raise b.b_uops.(k) then (
                  let idx = !nthunks in
                  fun () ->
                    eng.fault_thunk <- idx;
                    th ())
                else th
              in
              thunks := th :: !thunks;
              tblock := bi :: !tblock;
              tslot := k :: !tslot;
              incr nthunks)
            b.b_thunks;
          Array.iteri
            (fun k th ->
              let th =
                if can_raise b.b_uops.(k) then (
                  let idx = !nfast in
                  fun () ->
                    eng.fault_thunk <- idx;
                    th ())
                else th
              in
              fast := th :: !fast;
              ftblock := bi :: !ftblock;
              ftslot := k :: !ftslot;
              incr nfast)
            b.b_bases;
          (let nu = Array.length b.b_thunks in
           if b.b_n > nu && b.b_newline.(nu) >= 0 then begin
             let la = b.b_newline.(nu) in
             thunks := (fun () -> icache_access eng la) :: !thunks;
             tblock := bi :: !tblock;
             tslot := -1 :: !tslot;
             incr nthunks
           end);
          (if bi < nmember - 1 then
             match b.b_term with
             | T_jump { key = jk; _ } -> jumps := jk :: !jumps
             | T_fall _ | T_branch _ -> ());
          n := !n + b.b_n;
          scalars := !scalars + b.b_scalar;
          vectors := !vectors + b.b_vector;
          cycles := !cycles + b.b_cycles;
          credits := !credits + (b.b_n - b.b_nlines))
        blks;
      if !nthunks > max_super_thunks then ()
      else begin
        (* steady-state junction stalls: every iteration after the
           first enters with the trace's own exit hazard. A trace with
           no scalar member carries the entry hazard through unchanged,
           but then has no hazard probes either ([b_first] is [None]
           for vector blocks), so folding from [None] is exact. *)
        let exit_pending =
          Array.fold_left
            (fun p b -> if b.b_passthrough then p else b.b_exit_pending)
            None blks
        in
        let stall_ss, _ =
          let stall = ref 0 in
          let p = ref exit_pending in
          Array.iter
            (fun b ->
              (match !p with
              | Some r -> (
                  match b.b_first with
                  | Some insn when Insn.uses_reg insn r -> incr stall
                  | Some _ | None -> ())
              | None -> ());
              if not b.b_passthrough then p := b.b_exit_pending)
            blks;
          (!stall, !p)
        in
        (* the fast path elides fetch probes, which is exact only when
           steady-state residency is guaranteed: the trace's distinct
           fetch lines must fit their sets, so the first (real-probe)
           iteration leaves them all resident and the trace's own
           traffic — the only icache traffic while it loops — never
           evicts. Code is contiguous so this bounds far above any
           real trace; the check guards the theorem's hypothesis. *)
        let fast_ok =
          match eng.icache with
          | None -> true
          | Some c ->
              let cfg = Cache.config c in
              let n_sets =
                cfg.Cache.size_bytes / (cfg.Cache.line_bytes * cfg.Cache.assoc)
              in
              let seen = Hashtbl.create 16 in
              let per_set = Hashtbl.create 16 in
              let ok = ref true in
              Array.iter
                (fun b ->
                  Array.iter
                    (fun la ->
                      if la >= 0 && not (Hashtbl.mem seen la) then begin
                        Hashtbl.add seen la ();
                        let set = la / cfg.Cache.line_bytes mod n_sets in
                        let cnt =
                          match Hashtbl.find_opt per_set set with
                          | Some v -> v + 1
                          | None -> 1
                        in
                        Hashtbl.replace per_set set cnt;
                        if cnt > cfg.Cache.assoc then ok := false
                      end)
                    b.b_newline)
                blks;
              !ok
        in
        let gmask, gval, gneg = Cond.mask_test cond in
        latch.b_super <-
          Some
            {
              s_head = head;
              s_cond = cond;
              s_gmask = gmask;
              s_gval = gval;
              s_gneg = gneg;
              s_key = key;
              s_fall = fall;
              s_blocks = blks;
              s_thunks = Array.of_list (List.rev !thunks);
              s_tblock = Array.of_list (List.rev !tblock);
              s_tslot = Array.of_list (List.rev !tslot);
              s_jumps = Array.of_list (List.rev !jumps);
              s_n = !n;
              s_scalar = !scalars;
              s_vector = !vectors;
              s_cycles = !cycles;
              s_credits = !credits;
              s_stall_ss = stall_ss;
              s_fast = Array.of_list (List.rev !fast);
              s_ftblock = Array.of_list (List.rev !ftblock);
              s_ftslot = Array.of_list (List.rev !ftslot);
              s_fast_ok = fast_ok;
            };
        eng.supers_built <- eng.supers_built + 1
      end

(* Superblock hook, run after [exec_block] resolved the terminator: if
   this block owns a trace and the back-edge just fired, enter
   steady-state execution; otherwise warm the hot counter and form the
   trace at the threshold (then enter it immediately). *)
let[@inline] super_check eng b =
  match b.b_super with
  | Some sb -> if eng.out_pc = sb.s_head then run_super eng sb
  | None ->
      if eng.superblocks then (
        match b.b_term with
        | T_branch { cond; key; target; fall }
          when target <= b.b_pc && eng.out_pc = target ->
            b.b_hot <- b.b_hot + 1;
            if b.b_hot = hot_threshold then begin
              form_super eng b ~head:target ~cond ~key ~fall;
              match b.b_super with
              | Some sb -> run_super eng sb
              | None -> ()
            end
        | _ -> ())

(* Successor block after [exec_block] (or [run_super]) set [out_pc].
   Unconditional edges (fallthrough, [B al]) have a single target,
   resolved once and cached on the edge; conditional branches have two,
   looked up in the slot array each time (an array read — not worth two
   cache fields). The engine keeps control as long as the next pc opens
   a block and the fuel budget survives the whole block: between blocks
   the dispatcher would only re-check conditions that cannot change
   while the engine runs (sessions open, halts happen and fuel expires
   only inside [step]; a pending interrupt epoch catches up by division
   when the next step fires). Returning to the dispatcher on every loop
   back-edge would pay the dispatch cost once per iteration for
   nothing. *)
let next_block eng b =
  let next =
    match b.b_term with
    | T_fall _ | T_jump _ -> (
        match b.b_next with
        | Some _ as n -> n
        | None -> (
            let pc = eng.out_pc in
            if pc < 0 || pc >= Array.length eng.slots then None
            else
              match slot_at eng pc with
              | S_block nb ->
                  b.b_next <- Some nb;
                  Some nb
              | S_noblock | S_unknown -> None))
    | T_branch _ -> (
        let pc = eng.out_pc in
        if pc < 0 || pc >= Array.length eng.slots then None
        else
          match Array.unsafe_get eng.slots pc with
          | S_block nb -> Some nb
          | S_unknown -> (
              match slot_at eng pc with S_block nb -> Some nb | _ -> None)
          | S_noblock -> None)
  in
  match next with
  | Some nb when eng.out_retired + nb.b_n <= eng.fuel -> next
  | Some _ | None -> None

let try_exec eng ~pc ~retired ~pending =
  if pc < 0 || pc >= Array.length eng.slots then false
  else
    match slot_at eng pc with
    | S_noblock | S_unknown -> false
    | S_block b ->
        if retired + b.b_n > eng.fuel then false
        else begin
          eng.out_retired <- retired;
          eng.out_pending <- pending;
          eng.out_pc <- pc;
          let rec go b =
            exec_block eng b;
            super_check eng b;
            match next_block eng b with Some nb -> go nb | None -> ()
          in
          go b;
          true
        end

(* --- microcode replay --- *)

let get_ucomp eng ~entry ~stamp u =
  let valid uc =
    uc.uc_entry = entry
    && (if stamp >= 0 then uc.uc_stamp = stamp else uc.uc_stamp < 0)
    && uc.uc_ucode == u
  in
  match eng.last_ucomp with
  | Some uc when valid uc -> uc
  | Some _ | None ->
      let uc =
        match Hashtbl.find_opt eng.ucomps entry with
        | Some uc when valid uc -> uc
        | Some _ | None ->
            let uc =
              {
                uc_entry = entry;
                uc_stamp = stamp;
                uc_ucode = u;
                uc_segs = Array.make (Array.length u.Ucode.uops) U_unknown;
              }
            in
            Hashtbl.replace eng.ucomps entry uc;
            uc
      in
      eng.last_ucomp <- Some uc;
      uc

let compile_useg eng uc j =
  let u = uc.uc_ucode in
  let uops = u.Ucode.uops in
  let n = Array.length uops in
  let width = u.Ucode.width in
  let acc = ref [] and charges = ref [] in
  let nu = ref 0 in
  let i = ref j in
  let term = ref None in
  while !term = None && !i < n do
    match uops.(!i) with
    | Ucode.US ins -> (
        match compile_suop ins with
        | Some su ->
            acc := su :: !acc;
            charges := scalar_charge eng ins :: !charges;
            incr nu;
            incr i
        | None -> term := Some `Bail)
    | Ucode.UV v ->
        acc := Svec v :: !acc;
        charges := vector_charge eng ~lanes:width v :: !charges;
        incr nu;
        incr i
    | Ucode.UP p ->
        acc := Svla p :: !acc;
        charges :=
          (match p with
          | Vla.Pred { v; _ } -> vector_charge eng ~lanes:width v
          | Vla.Tbl { esize; _ } | Vla.Tblst { esize; _ } ->
              (* gather-style bus timing, matching the stepping
                 interpreter's charge for recovered permutations *)
              1
              + width
                * ((Esize.bytes esize + eng.vec_bus_bytes - 1)
                  / eng.vec_bus_bytes)
          | Vla.Tblidx _ | Vla.Whilelt _ | Vla.Incvl _ -> 1)
          :: !charges;
        incr nu;
        incr i
    | Ucode.UR r ->
        acc := Srvv r :: !acc;
        charges :=
          (match r with
          | Rvv.Vl { v } -> vector_charge eng ~lanes:width v
          | Rvv.Tbl { esize; _ } | Rvv.Tblst { esize; _ } ->
              1
              + width
                * ((Esize.bytes esize + eng.vec_bus_bytes - 1)
                  / eng.vec_bus_bytes)
          | Rvv.Tblidx _ | Rvv.Vsetvl _ | Rvv.Addvl _ -> 1)
          :: !charges;
        incr nu;
        incr i
    | Ucode.UB { cond; target } -> term := Some (`B (cond, !i, target))
    | Ucode.URet -> term := Some `Ret
  done;
  match !term with
  | Some `Bail | None ->
      (* control flow inside [US], or microcode without a terminator:
         the interpreted loop owns the exact diagnostics *)
      None
  | Some ((`Ret | `B _) as t) ->
      let us_uops = Array.of_list (List.rev !acc) in
      let us_n = !nu + 1 in
      let us_charge = Array.make us_n 1 in
      List.iteri (fun k c -> us_charge.(k) <- c) (List.rev !charges);
      let vectors =
        Array.fold_left
          (fun a u ->
            match u with
            | Svec _ -> a + 1
            | Svla p when Vla.is_vector p -> a + 1
            | Srvv r when Rvv.is_vector r -> a + 1
            | _ -> a)
          0 us_uops
      in
      Some
        {
          us_uops;
          us_thunks = Array.map (compile_thunk eng ~lanes:width) us_uops;
          us_charge;
          us_n;
          us_scalar = us_n - vectors;
          us_vector = vectors;
          us_cycles = Array.fold_left ( + ) 0 us_charge;
          us_term =
            (match t with
            | `Ret -> UT_ret
            | `B (cond, idx, target) ->
                UT_branch
                  {
                    cond;
                    key =
                      Ucode.branch_key ~entry:uc.uc_entry
                        ~max_uops:eng.max_uops ~index:idx;
                    target;
                    fall = idx + 1;
                  });
        }

let get_useg eng uc ui =
  match uc.uc_segs.(ui) with
  | U_seg s -> Some s
  | U_bail -> None
  | U_unknown ->
      let s = compile_useg eng uc ui in
      uc.uc_segs.(ui) <-
        (match s with Some seg -> U_seg seg | None -> U_bail);
      s

let repair_useg eng seg k =
  let stats = eng.stats in
  let scalars = ref 0 and vectors = ref 0 and cyc = ref 0 in
  for j = 0 to k do
    (match seg.us_uops.(j) with
    | Svec _ -> incr vectors
    | Svla p when Vla.is_vector p -> incr vectors
    | Srvv r when Rvv.is_vector r -> incr vectors
    | _ -> incr scalars);
    cyc := !cyc + seg.us_charge.(j)
  done;
  stats.Stats.uops_retired <- stats.Stats.uops_retired + k + 1;
  stats.Stats.scalar_insns <- stats.Stats.scalar_insns + !scalars;
  stats.Stats.vector_insns <- stats.Stats.vector_insns + !vectors;
  charge eng !cyc;
  eng.out_retired <- eng.out_retired + k + 1

let exec_useg eng seg =
  let thunks = seg.us_thunks in
  let nu = Array.length thunks in
  let i = ref 0 in
  (try
     while !i < nu do
       (Array.unsafe_get thunks !i) ();
       incr i
     done
   with e ->
     repair_useg eng seg !i;
     raise e);
  let stats = eng.stats in
  stats.Stats.uops_retired <- stats.Stats.uops_retired + seg.us_n;
  stats.Stats.scalar_insns <- stats.Stats.scalar_insns + seg.us_scalar;
  stats.Stats.vector_insns <- stats.Stats.vector_insns + seg.us_vector;
  charge eng seg.us_cycles;
  eng.out_retired <- eng.out_retired + seg.us_n

let exec_ucode eng ~entry ~stamp ~retired (u : Ucode.t) =
  let uc = get_ucomp eng ~entry ~stamp u in
  eng.out_retired <- retired;
  let n = Array.length u.Ucode.uops in
  let rec go ui =
    if ui < 0 || ui >= n then U_resume ui
    else
      match get_useg eng uc ui with
      | None -> U_resume ui
      | Some seg ->
          if eng.out_retired + seg.us_n > eng.fuel then U_resume ui
          else begin
            exec_useg eng seg;
            match seg.us_term with
            | UT_ret -> U_done
            | UT_branch { cond; key; target; fall } ->
                let taken = Cond.holds cond eng.ctx.Sem.flags in
                record_branch eng ~key ~taken;
                go (if taken then target else fall)
          end
  in
  go 0
