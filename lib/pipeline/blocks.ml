(* The translation-block engine: the simulator's own take on the
   paper's thesis. Just as the Liquid SIMD hardware stops re-deriving a
   region's SIMD form on every call by caching microcode, the simulator
   stops re-deciding what an instruction *is* on every visit by lazily
   compiling maximal straight-line runs of [Minsn.t] into flat arrays of
   pre-resolved micro-ops: register names become indices, immediates are
   word-normalized and shift-folded, per-instruction charge amounts
   (base cycle, [mul_extra], intra-block load-use stalls, static vector
   bus beats) are summed at compile time, and instruction-fetch cache
   lines are pre-grouped so each line is probed once per block.

   This is an execution strategy, not a semantics change: every counter
   the golden suite pins must come out bit-identical to the step-by-step
   engine. The equivalences this file relies on:

   - Blocks only run while no translator session is live (the
     dispatcher in [Cpu] guarantees it), so the scratch effect fields
     skipped by the pre-resolved kernels are unobservable, and
     interrupt-epoch catch-up by division in [Cpu.interrupt_check]
     fires at the same cycle it would have under per-step checking.
   - Within a block, consecutive fetches of one icache line cannot be
     separated by any other access of that cache, so one real
     {!Liquid_machine.Cache.access} per line run plus
     {!Liquid_machine.Cache.credit_hits} for the rest is
     state- and counter-equivalent.
   - Load-use hazards are static within a block (the stall charge is
     baked into the slot's charge); only the hazard carried in from the
     previous block needs a dynamic probe, and the hazard carried out
     is precomputed per block ([b_exit_pending]).
   - Fuel cannot expire inside a block: the dispatcher falls back to
     [step] whenever [retired + b_n > fuel], so the watchdog fires with
     exactly the per-step diagnostics.

   Blocks end at branches ([B] stays in-block as the terminator;
   [Bl]/[Ret]/[Halt] are excluded and routed to [step]), at
   vector/scalar mode changes, and at the end of the code array.
   Unconditional fallthrough/jump edges chain directly block-to-block
   without returning to the dispatcher. [run_ucode] replay gets the
   same treatment: straight-line microcode segments between [UB]/[URet]
   compile to the same micro-op arrays, keyed per cache entry and
   invalidated by install stamp when a region is retranslated. *)

open Liquid_isa
open Liquid_visa
open Liquid_machine
open Liquid_prog
open Liquid_translate

(* A pre-resolved micro-op. Scalar operands are register indices;
   immediates arrive with [Word] normalization and index shifts already
   applied. [Spred] (predicated moves/dp, rare) and [Svec] replay
   through the shared [Sem] executors. *)
type suop =
  | Smov_i of { dst : int; v : int }
  | Smov_r of { dst : int; src : int }
  | Sdp_i of { op : Opcode.t; dst : int; s1 : int; imm : int }
  | Sdp_r of { op : Opcode.t; dst : int; s1 : int; s2 : int }
  | Spred of Insn.exec
  | Scmp_i of { s1 : int; imm : int }
  | Scmp_r of { s1 : int; s2 : int }
  | Sld of {
      bytes : int;
      signed : bool;
      dst : int;
      breg : int;  (** base register index, [-1] when the base is a symbol *)
      bconst : int;  (** symbol address when [breg < 0] *)
      ireg : int;  (** index register index, [-1] for immediate indices *)
      iconst : int;  (** pre-shifted immediate index when [ireg < 0] *)
      shift : int;
    }
  | Sst of {
      bytes : int;
      src : int;
      breg : int;
      bconst : int;
      ireg : int;
      iconst : int;
      shift : int;
    }
  | Svec of Vinsn.exec
  | Svla of Vla.exec
      (** predicated / length-agnostic uop (microcode replay only: image
          code never contains them) *)

type term =
  | T_fall of int  (** fallthrough into a step-handled pc or next block *)
  | T_jump of { key : int; target : int }  (** unconditional [B] *)
  | T_branch of { cond : Cond.t; key : int; target : int; fall : int }

type block = {
  b_pc : int;
  b_uops : suop array;
  b_charge : int array;
      (* static cycles per slot (uops, then the branch terminator):
         base cycle + mul_extra + intra-block load-use stall + static
         vector bus beats — everything [step] charges before exec *)
  b_n : int;  (* retired instructions, including a branch terminator *)
  b_scalar : int;
  b_vector : int;
  b_cycles : int;  (* sum of [b_charge] *)
  b_newline : int array;
      (* per slot: the icache line address when this slot's fetch starts
         a new line run, -1 otherwise (always -1 without an icache) *)
  b_nlines : int;
  b_first : Insn.exec option;  (* entry load-use hazard probe *)
  b_exit_pending : Reg.t option;
      (* hazard state a scalar block leaves behind (preallocated) *)
  b_passthrough : bool;  (* vector blocks: pending hazard flows through *)
  b_term : term;
  mutable b_next : block option;  (* chained unconditional successor *)
}

type slot = S_unknown | S_noblock | S_block of block

(* Compiled microcode replay: straight-line segments between [UB]/[URet],
   lazily compiled per start index. [U_bail] marks segments the compiler
   declines (control flow inside [US], truncated microcode) — the
   interpreted loop handles those with exact diagnostics. *)
type uterm =
  | UT_branch of { cond : Cond.t; key : int; target : int; fall : int }
  | UT_ret

type useg = {
  us_uops : suop array;
  us_charge : int array;  (* per slot, terminator included *)
  us_n : int;  (* uops retired, terminator included *)
  us_scalar : int;
  us_vector : int;
  us_cycles : int;
  us_term : uterm;
}

type useg_slot = U_unknown | U_bail | U_seg of useg

type ucomp = {
  uc_entry : int;
  uc_stamp : int;  (* Ucode_cache install stamp; -1 for oracle microcode *)
  uc_ucode : Ucode.t;
  uc_segs : useg_slot array;
}

type uresult = U_done | U_resume of int

type t = {
  image : Image.t;
  ctx : Sem.ctx;
  stats : Stats.t;
  icache : Cache.t option;
  dcache : Cache.t option;
  bpred : Branch_pred.t;
  mem_latency : int;
  mul_extra : int;
  mispredict_penalty : int;
  vec_bus_bytes : int;
  lanes : int;  (* accelerator lanes, -1 when absent *)
  max_uops : int;
  fuel : int;
  slots : slot array;
  ucomps : (int, ucomp) Hashtbl.t;
  mutable out_pc : int;
  mutable out_retired : int;
  mutable out_pending : Reg.t option;
  mutable blocks_built : int;
  mutable block_execs : int;
}

let create ~image ~ctx ~stats ~icache ~dcache ~bpred ~mem_latency ~mul_extra
    ~mispredict_penalty ~vec_bus_bytes ~lanes ~max_uops ~fuel =
  {
    image;
    ctx;
    stats;
    icache;
    dcache;
    bpred;
    mem_latency;
    mul_extra;
    mispredict_penalty;
    vec_bus_bytes;
    lanes = (match lanes with Some l -> l | None -> -1);
    max_uops;
    fuel;
    slots = Array.make (Array.length image.Image.code) S_unknown;
    ucomps = Hashtbl.create 8;
    out_pc = 0;
    out_retired = 0;
    out_pending = None;
    blocks_built = 0;
    block_execs = 0;
  }

let out_pc eng = eng.out_pc
let out_retired eng = eng.out_retired
let out_pending eng = eng.out_pending
let built eng = eng.blocks_built
let execs eng = eng.block_execs

(* --- compile --- *)

(* [None] for control flow; callers route those to [step] (image blocks)
   or the interpreted replay (microcode). *)
let compile_suop insn =
  match insn with
  | Insn.Mov { cond; dst; src } ->
      if not (Cond.equal cond Cond.Al) then Some (Spred insn)
      else
        Some
          (match src with
          | Insn.Imm v -> Smov_i { dst = Reg.index dst; v = Word.of_int v }
          | Insn.Reg r -> Smov_r { dst = Reg.index dst; src = Reg.index r })
  | Insn.Dp { cond; op; dst; src1; src2 } ->
      if not (Cond.equal cond Cond.Al) then Some (Spred insn)
      else
        Some
          (match src2 with
          | Insn.Imm v ->
              Sdp_i { op; dst = Reg.index dst; s1 = Reg.index src1; imm = v }
          | Insn.Reg r ->
              Sdp_r
                { op; dst = Reg.index dst; s1 = Reg.index src1; s2 = Reg.index r })
  | Insn.Ld { esize; signed; dst; base; index; shift } ->
      let breg, bconst =
        match base with
        | Insn.Sym a -> (-1, a)
        | Insn.Breg r -> (Reg.index r, 0)
      in
      let ireg, iconst =
        match index with
        | Insn.Imm v -> (-1, Word.shl v shift)
        | Insn.Reg r -> (Reg.index r, 0)
      in
      Some
        (Sld
           {
             bytes = Esize.bytes esize;
             signed;
             dst = Reg.index dst;
             breg;
             bconst;
             ireg;
             iconst;
             shift;
           })
  | Insn.St { esize; src; base; index; shift } ->
      let breg, bconst =
        match base with
        | Insn.Sym a -> (-1, a)
        | Insn.Breg r -> (Reg.index r, 0)
      in
      let ireg, iconst =
        match index with
        | Insn.Imm v -> (-1, Word.shl v shift)
        | Insn.Reg r -> (Reg.index r, 0)
      in
      Some
        (Sst
           {
             bytes = Esize.bytes esize;
             src = Reg.index src;
             breg;
             bconst;
             ireg;
             iconst;
             shift;
           })
  | Insn.Cmp { src1; src2 } ->
      Some
        (match src2 with
        | Insn.Imm v -> Scmp_i { s1 = Reg.index src1; imm = v }
        | Insn.Reg r -> Scmp_r { s1 = Reg.index src1; s2 = Reg.index r })
  | Insn.B _ | Insn.Bl _ | Insn.Ret | Insn.Halt -> None

(* Everything [step] charges before exec, statically known per
   instruction. *)
let scalar_charge eng (insn : Insn.exec) =
  match insn with Insn.Dp { op = Opcode.Mul; _ } -> 1 + eng.mul_extra | _ -> 1

let vector_charge eng ~lanes (v : Vinsn.exec) =
  let bus = eng.vec_bus_bytes in
  let extra esize =
    let bytes = lanes * Esize.bytes esize in
    max 0 (((bytes + bus - 1) / bus) - 1)
  in
  match v with
  | Vinsn.Vdp { op = Opcode.Mul; _ } -> 1 + eng.mul_extra
  | Vinsn.Vred _ -> 2
  | Vinsn.Vld { esize; _ } | Vinsn.Vst { esize; _ } -> 1 + extra esize
  | Vinsn.Vlds { esize; stride; _ } | Vinsn.Vsts { esize; stride; _ } ->
      1 + (stride * (extra esize + 1))
  | Vinsn.Vgather { esize; _ } ->
      1 + (lanes * ((Esize.bytes esize + bus - 1) / bus))
  | Vinsn.Vdp _ | Vinsn.Vsat _ | Vinsn.Vperm _ -> 1

let compile_block eng pc0 =
  let code = eng.image.Image.code in
  let addrs = eng.image.Image.addrs in
  let n_code = Array.length code in
  let vector = match code.(pc0) with Minsn.V _ -> true | Minsn.S _ -> false in
  match code.(pc0) with
  | Minsn.S (Insn.Bl _ | Insn.Ret | Insn.Halt) -> S_noblock
  | Minsn.V _ when eng.lanes < 0 ->
      (* no accelerator: [step] raises the exact Sigill *)
      S_noblock
  | Minsn.S _ | Minsn.V _ ->
      let uops = ref [] and charges = ref [] in
      let nu = ref 0 in
      let first_insn = ref None in
      let prev_ld : Reg.t option ref = ref None in
      let term = ref (T_fall n_code) in
      let term_is_insn = ref false in
      let pc = ref pc0 in
      let stop = ref false in
      while not !stop do
        if !pc >= n_code then begin
          term := T_fall !pc;
          stop := true
        end
        else begin
          match code.(!pc) with
          | Minsn.S (Insn.B { cond; target }) ->
              term :=
                (if Cond.equal cond Cond.Al then T_jump { key = !pc; target }
                 else T_branch { cond; key = !pc; target; fall = !pc + 1 });
              term_is_insn := true;
              stop := true
          | Minsn.S (Insn.Bl _ | Insn.Ret | Insn.Halt) ->
              term := T_fall !pc;
              stop := true
          | Minsn.S insn ->
              if vector then begin
                term := T_fall !pc;
                stop := true
              end
              else begin
                match compile_suop insn with
                | None ->
                    (* unreachable: control flow matched above *)
                    term := T_fall !pc;
                    stop := true
                | Some u ->
                    if !nu = 0 then first_insn := Some insn;
                    let hazard =
                      match !prev_ld with
                      | Some r when Insn.uses_reg insn r -> 1
                      | Some _ | None -> 0
                    in
                    uops := u :: !uops;
                    charges := (hazard + scalar_charge eng insn) :: !charges;
                    incr nu;
                    prev_ld :=
                      (match insn with
                      | Insn.Ld { dst; _ } -> Some dst
                      | _ -> None);
                    incr pc
              end
          | Minsn.V v ->
              if not vector then begin
                term := T_fall !pc;
                stop := true
              end
              else begin
                uops := Svec v :: !uops;
                charges := vector_charge eng ~lanes:eng.lanes v :: !charges;
                incr nu;
                incr pc
              end
        end
      done;
      let b_n = !nu + if !term_is_insn then 1 else 0 in
      if b_n = 0 then S_noblock
      else begin
        let charge = Array.make b_n 1 in
        List.iteri (fun i c -> charge.(i) <- c) (List.rev !charges);
        (* a branch terminator costs exactly the base cycle (the fill) *)
        let newline = Array.make b_n (-1) in
        let nlines = ref 0 in
        (match eng.icache with
        | None -> ()
        | Some c ->
            let mask = lnot (Cache.line_bytes c - 1) in
            let prev = ref min_int in
            for k = 0 to b_n - 1 do
              let la = addrs.(pc0 + k) land mask in
              if la <> !prev then begin
                newline.(k) <- la;
                incr nlines;
                prev := la
              end
            done);
        let b =
          {
            b_pc = pc0;
            b_uops = Array.of_list (List.rev !uops);
            b_charge = charge;
            b_n;
            b_scalar = (if vector then 0 else b_n);
            b_vector = (if vector then b_n else 0);
            b_cycles = Array.fold_left ( + ) 0 charge;
            b_newline = newline;
            b_nlines = !nlines;
            b_first = !first_insn;
            b_exit_pending =
              (if vector || !term_is_insn then None else !prev_ld);
            b_passthrough = vector;
            b_term = !term;
            b_next = None;
          }
        in
        eng.blocks_built <- eng.blocks_built + 1;
        S_block b
      end

let slot_at eng pc =
  match Array.unsafe_get eng.slots pc with
  | S_unknown ->
      let s = compile_block eng pc in
      eng.slots.(pc) <- s;
      s
  | s -> s

(* --- execute --- *)

let[@inline] charge eng c = eng.stats.Stats.cycles <- eng.stats.Stats.cycles + c

let[@inline] icache_access eng la =
  match eng.icache with
  | None -> ()
  | Some c -> (
      match Cache.access c la with
      | Cache.Hit -> ()
      | Cache.Miss -> charge eng eng.mem_latency)

let charge_data eng ~addr ~bytes ~write =
  let stats = eng.stats in
  (if write then stats.Stats.stores <- stats.Stats.stores + 1
   else stats.Stats.loads <- stats.Stats.loads + 1);
  match eng.dcache with
  | None -> ()
  | Some c ->
      let lines = Cache.lines_spanned c ~addr ~bytes in
      let line_bytes = Cache.line_bytes c in
      for i = 0 to lines - 1 do
        match Cache.access c (addr + (i * line_bytes)) with
        | Cache.Hit -> ()
        | Cache.Miss -> charge eng eng.mem_latency
      done

let charge_scratch eng =
  let ctx = eng.ctx in
  for i = 0 to ctx.Sem.e_nacc - 1 do
    charge_data eng ~addr:ctx.Sem.acc_addr.(i) ~bytes:ctx.Sem.acc_bytes.(i)
      ~write:ctx.Sem.acc_write.(i)
  done

let[@inline] record_branch eng ~key ~taken =
  if not (Branch_pred.predict_and_update eng.bpred ~pc:key ~taken) then
    charge eng eng.mispredict_penalty

let[@inline] exec_uop eng u =
  let ctx = eng.ctx in
  match u with
  | Smov_i { dst; v } -> Sem.kernel_mov_imm ctx ~dst v
  | Smov_r { dst; src } -> Sem.kernel_mov_reg ctx ~dst ~src
  | Sdp_i { op; dst; s1; imm } -> Sem.kernel_dp_imm ctx ~op ~dst ~src1:s1 imm
  | Sdp_r { op; dst; s1; s2 } ->
      Sem.kernel_dp_reg ctx ~op ~dst ~src1:s1 ~src2:s2
  | Spred insn -> ignore (Sem.exec_scalar ctx ~pc:0 insn)
  | Scmp_i { s1; imm } -> Sem.kernel_cmp_imm ctx ~src1:s1 imm
  | Scmp_r { s1; s2 } -> Sem.kernel_cmp_reg ctx ~src1:s1 ~src2:s2
  | Sld { bytes; signed; dst; breg; bconst; ireg; iconst; shift } ->
      let base = if breg >= 0 then ctx.Sem.regs.(breg) else bconst in
      let idx =
        if ireg >= 0 then Word.shl ctx.Sem.regs.(ireg) shift else iconst
      in
      let addr = Word.add base idx in
      Sem.kernel_ld ctx ~addr ~bytes ~signed ~dst;
      charge_data eng ~addr ~bytes ~write:false
  | Sst { bytes; src; breg; bconst; ireg; iconst; shift } ->
      let base = if breg >= 0 then ctx.Sem.regs.(breg) else bconst in
      let idx =
        if ireg >= 0 then Word.shl ctx.Sem.regs.(ireg) shift else iconst
      in
      let addr = Word.add base idx in
      Sem.kernel_st ctx ~addr ~bytes ~src;
      charge_data eng ~addr ~bytes ~write:true
  | Svec v ->
      Sem.exec_vector ctx v;
      charge_scratch eng
  | Svla p ->
      Sem.exec_vla ctx p;
      charge_scratch eng

(* A micro-op raised mid-block (only [Svec] can: Sigill on an
   unsupported permutation or mismatched constant width). Re-apply the
   per-step accounting [step] would have accumulated through the
   faulting slot, so the escaping diagnostics (pc, cycle, retired)
   match the step-by-step engine exactly. *)
let repair_block eng b k =
  let stats = eng.stats in
  let scalars = ref 0 and vectors = ref 0 and cyc = ref 0 and lines = ref 0 in
  for j = 0 to k do
    (match b.b_uops.(j) with
    | Svec _ -> incr vectors
    | _ -> incr scalars);
    cyc := !cyc + b.b_charge.(j);
    if b.b_newline.(j) >= 0 then incr lines
  done;
  stats.Stats.fetches <- stats.Stats.fetches + k + 1;
  stats.Stats.scalar_insns <- stats.Stats.scalar_insns + !scalars;
  stats.Stats.vector_insns <- stats.Stats.vector_insns + !vectors;
  charge eng !cyc;
  (match eng.icache with
  | Some c -> Cache.credit_hits c (k + 1 - !lines)
  | None -> ());
  eng.out_retired <- eng.out_retired + k + 1;
  eng.out_pending <- None;
  eng.out_pc <- b.b_pc + k

let exec_block eng b =
  let ctx = eng.ctx and stats = eng.stats in
  (* dynamic entry hazard: a load in the previous block feeding our
     first instruction *)
  (match eng.out_pending with
  | Some r -> (
      match b.b_first with
      | Some insn when Insn.uses_reg insn r -> charge eng 1
      | Some _ | None -> ())
  | None -> ());
  let uops = b.b_uops and newline = b.b_newline in
  let nu = Array.length uops in
  let i = ref 0 in
  (try
     while !i < nu do
       (let la = Array.unsafe_get newline !i in
        if la >= 0 then icache_access eng la);
       exec_uop eng (Array.unsafe_get uops !i);
       incr i
     done
   with e ->
     repair_block eng b !i;
     raise e);
  (if b.b_n > nu then
     let la = Array.unsafe_get newline nu in
     if la >= 0 then icache_access eng la);
  stats.Stats.fetches <- stats.Stats.fetches + b.b_n;
  stats.Stats.scalar_insns <- stats.Stats.scalar_insns + b.b_scalar;
  stats.Stats.vector_insns <- stats.Stats.vector_insns + b.b_vector;
  charge eng b.b_cycles;
  (match eng.icache with
  | Some c -> Cache.credit_hits c (b.b_n - b.b_nlines)
  | None -> ());
  eng.out_retired <- eng.out_retired + b.b_n;
  if not b.b_passthrough then eng.out_pending <- b.b_exit_pending;
  eng.block_execs <- eng.block_execs + 1;
  match b.b_term with
  | T_fall next -> eng.out_pc <- next
  | T_jump { key; target } ->
      record_branch eng ~key ~taken:true;
      eng.out_pc <- target
  | T_branch { cond; key; target; fall } ->
      (* [step] consults the predictor only on the taken path (a
         not-taken branch retires as [Next], bypassing [record_branch]);
         mirror that exactly or the lookup/mispredict tallies drift. *)
      let taken = Cond.holds cond ctx.Sem.flags in
      if taken then record_branch eng ~key ~taken:true;
      eng.out_pc <- (if taken then target else fall)

(* Successor block after [exec_block] set [out_pc]. Unconditional edges
   (fallthrough, [B al]) have a single target, resolved once and cached
   on the edge; conditional branches have two, looked up in the slot
   array each time (an array read — not worth two cache fields). The
   engine keeps control as long as the next pc opens a block and the
   fuel budget survives the whole block: between blocks the dispatcher
   would only re-check conditions that cannot change while the engine
   runs (sessions open, halts happen and fuel expires only inside
   [step]; a pending interrupt epoch catches up by division when the
   next step fires). Returning to the dispatcher on every loop back-edge
   would pay the dispatch cost once per iteration for nothing. *)
let next_block eng b =
  let next =
    match b.b_term with
    | T_fall _ | T_jump _ -> (
        match b.b_next with
        | Some _ as n -> n
        | None -> (
            let pc = eng.out_pc in
            if pc < 0 || pc >= Array.length eng.slots then None
            else
              match slot_at eng pc with
              | S_block nb ->
                  b.b_next <- Some nb;
                  Some nb
              | S_noblock | S_unknown -> None))
    | T_branch _ -> (
        let pc = eng.out_pc in
        if pc < 0 || pc >= Array.length eng.slots then None
        else
          match Array.unsafe_get eng.slots pc with
          | S_block nb -> Some nb
          | S_unknown -> (
              match slot_at eng pc with S_block nb -> Some nb | _ -> None)
          | S_noblock -> None)
  in
  match next with
  | Some nb when eng.out_retired + nb.b_n <= eng.fuel -> next
  | Some _ | None -> None

let try_exec eng ~pc ~retired ~pending =
  if pc < 0 || pc >= Array.length eng.slots then false
  else
    match slot_at eng pc with
    | S_noblock | S_unknown -> false
    | S_block b ->
        if retired + b.b_n > eng.fuel then false
        else begin
          eng.out_retired <- retired;
          eng.out_pending <- pending;
          eng.out_pc <- pc;
          let rec go b =
            exec_block eng b;
            match next_block eng b with Some nb -> go nb | None -> ()
          in
          go b;
          true
        end

(* --- microcode replay --- *)

let get_ucomp eng ~entry ~stamp u =
  let valid uc =
    uc.uc_entry = entry
    && (if stamp >= 0 then uc.uc_stamp = stamp else uc.uc_stamp < 0)
    && uc.uc_ucode == u
  in
  match Hashtbl.find_opt eng.ucomps entry with
  | Some uc when valid uc -> uc
  | Some _ | None ->
      let uc =
        {
          uc_entry = entry;
          uc_stamp = stamp;
          uc_ucode = u;
          uc_segs = Array.make (Array.length u.Ucode.uops) U_unknown;
        }
      in
      Hashtbl.replace eng.ucomps entry uc;
      uc

let compile_useg eng uc j =
  let u = uc.uc_ucode in
  let uops = u.Ucode.uops in
  let n = Array.length uops in
  let width = u.Ucode.width in
  let acc = ref [] and charges = ref [] in
  let nu = ref 0 in
  let i = ref j in
  let term = ref None in
  while !term = None && !i < n do
    match uops.(!i) with
    | Ucode.US ins -> (
        match compile_suop ins with
        | Some su ->
            acc := su :: !acc;
            charges := scalar_charge eng ins :: !charges;
            incr nu;
            incr i
        | None -> term := Some `Bail)
    | Ucode.UV v ->
        acc := Svec v :: !acc;
        charges := vector_charge eng ~lanes:width v :: !charges;
        incr nu;
        incr i
    | Ucode.UP p ->
        acc := Svla p :: !acc;
        charges :=
          (match p with
          | Vla.Pred { v; _ } -> vector_charge eng ~lanes:width v
          | Vla.Whilelt _ | Vla.Incvl _ -> 1)
          :: !charges;
        incr nu;
        incr i
    | Ucode.UB { cond; target } -> term := Some (`B (cond, !i, target))
    | Ucode.URet -> term := Some `Ret
  done;
  match !term with
  | Some `Bail | None ->
      (* control flow inside [US], or microcode without a terminator:
         the interpreted loop owns the exact diagnostics *)
      None
  | Some ((`Ret | `B _) as t) ->
      let us_uops = Array.of_list (List.rev !acc) in
      let us_n = !nu + 1 in
      let us_charge = Array.make us_n 1 in
      List.iteri (fun k c -> us_charge.(k) <- c) (List.rev !charges);
      let vectors =
        Array.fold_left
          (fun a u ->
            match u with
            | Svec _ -> a + 1
            | Svla p when Vla.is_vector p -> a + 1
            | _ -> a)
          0 us_uops
      in
      Some
        {
          us_uops;
          us_charge;
          us_n;
          us_scalar = us_n - vectors;
          us_vector = vectors;
          us_cycles = Array.fold_left ( + ) 0 us_charge;
          us_term =
            (match t with
            | `Ret -> UT_ret
            | `B (cond, idx, target) ->
                UT_branch
                  {
                    cond;
                    key = 0x40000000 + (uc.uc_entry * eng.max_uops) + idx;
                    target;
                    fall = idx + 1;
                  });
        }

let get_useg eng uc ui =
  match uc.uc_segs.(ui) with
  | U_seg s -> Some s
  | U_bail -> None
  | U_unknown ->
      let s = compile_useg eng uc ui in
      uc.uc_segs.(ui) <-
        (match s with Some seg -> U_seg seg | None -> U_bail);
      s

let repair_useg eng seg k =
  let stats = eng.stats in
  let scalars = ref 0 and vectors = ref 0 and cyc = ref 0 in
  for j = 0 to k do
    (match seg.us_uops.(j) with
    | Svec _ -> incr vectors
    | Svla p when Vla.is_vector p -> incr vectors
    | _ -> incr scalars);
    cyc := !cyc + seg.us_charge.(j)
  done;
  stats.Stats.uops_retired <- stats.Stats.uops_retired + k + 1;
  stats.Stats.scalar_insns <- stats.Stats.scalar_insns + !scalars;
  stats.Stats.vector_insns <- stats.Stats.vector_insns + !vectors;
  charge eng !cyc;
  eng.out_retired <- eng.out_retired + k + 1

let exec_useg eng seg =
  let uops = seg.us_uops in
  let nu = Array.length uops in
  let i = ref 0 in
  (try
     while !i < nu do
       exec_uop eng (Array.unsafe_get uops !i);
       incr i
     done
   with e ->
     repair_useg eng seg !i;
     raise e);
  let stats = eng.stats in
  stats.Stats.uops_retired <- stats.Stats.uops_retired + seg.us_n;
  stats.Stats.scalar_insns <- stats.Stats.scalar_insns + seg.us_scalar;
  stats.Stats.vector_insns <- stats.Stats.vector_insns + seg.us_vector;
  charge eng seg.us_cycles;
  eng.out_retired <- eng.out_retired + seg.us_n

let exec_ucode eng ~entry ~stamp ~retired (u : Ucode.t) =
  let uc = get_ucomp eng ~entry ~stamp u in
  eng.out_retired <- retired;
  let n = Array.length u.Ucode.uops in
  let rec go ui =
    if ui < 0 || ui >= n then U_resume ui
    else
      match get_useg eng uc ui with
      | None -> U_resume ui
      | Some seg ->
          if eng.out_retired + seg.us_n > eng.fuel then U_resume ui
          else begin
            exec_useg eng seg;
            match seg.us_term with
            | UT_ret -> U_done
            | UT_branch { cond; key; target; fall } ->
                let taken = Cond.holds cond eng.ctx.Sem.flags in
                record_branch eng ~key ~taken;
                go (if taken then target else fall)
          end
  in
  go 0
