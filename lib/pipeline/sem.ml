open Liquid_isa
open Liquid_visa
module Memory = Liquid_machine.Memory

exception Sigill of string

let max_lanes = Width.lanes Width.max
let no_value = min_int

type ctx = {
  regs : int array;
  mutable flags : Flags.t;
  vregs : int array array;
  preds : int array;
      (* active-lane count per predicate register; [whilelt] only ever
         produces prefix predicates, so a count is a full representation *)
  mutable vl : int;
      (* RVV vector-length grant: the element count the last [vsetvl]
         granted. One CSR governs every RVV body op, exactly like a
         prefix predicate of [vl] active lanes *)
  mutable lanes : int;
  mem : Memory.t;
  (* Scratch effect of the most recent [exec_scalar]/[exec_vector]. A
     retired instruction's effect is consumed immediately by the timing
     layer, so one preallocated buffer replaces a record, a list and an
     option allocation per instruction. *)
  mutable e_value : int;  (** destination value, [no_value] when none *)
  mutable e_taken : int;  (** -1 none, 0 not taken, 1 taken *)
  mutable e_nacc : int;  (** live prefix of the access arrays *)
  acc_addr : int array;
  acc_bytes : int array;
  acc_write : bool array;
  gather_tmp : int array;  (** gather staging: index vector may alias dst *)
  blk : Bytes.t;  (** staging buffer for block loads/stores *)
  mutable n_pred_fast : int;
      (** predicated vector executions taken on the all-true fast path
          (full predicate: unmasked fixed-width semantics) *)
  mutable n_pred_masked : int;
      (** predicated vector executions that paid the masked path *)
  mutable n_tbl_builds : int;
      (** table-lookup index vectors materialized from the runtime
          vector length ([Vla.Tblidx] executions) *)
}

let create_ctx mem =
  {
    regs = Array.make Reg.count 0;
    flags = Flags.initial;
    vregs = Array.init Vreg.count (fun _ -> Array.make max_lanes 0);
    preds = Array.make Vla.preg_count 0;
    vl = 0;
    lanes = max_lanes;
    mem;
    e_value = no_value;
    e_taken = -1;
    e_nacc = 0;
    acc_addr = Array.make max_lanes 0;
    acc_bytes = Array.make max_lanes 0;
    acc_write = Array.make max_lanes false;
    gather_tmp = Array.make max_lanes 0;
    blk = Bytes.create (max_lanes * 4);
    n_pred_fast = 0;
    n_pred_masked = 0;
    n_tbl_builds = 0;
  }

type outcome =
  | Next
  | Jump of int
  | Call of { target : int; region : bool }
  | Return
  | Stop

type access = { addr : int; bytes : int; write : bool }

type effect = { value : int option; accesses : access list; taken : bool option }

let no_effect = { value = None; accesses = []; taken = None }

let[@inline] clear_effect ctx =
  ctx.e_value <- no_value;
  ctx.e_taken <- -1;
  ctx.e_nacc <- 0

let[@inline] add_access ctx addr bytes write =
  let i = ctx.e_nacc in
  ctx.acc_addr.(i) <- addr;
  ctx.acc_bytes.(i) <- bytes;
  ctx.acc_write.(i) <- write;
  ctx.e_nacc <- i + 1

let last_effect ctx =
  let rec accs i acc =
    if i < 0 then acc
    else
      accs (i - 1)
        ({ addr = ctx.acc_addr.(i); bytes = ctx.acc_bytes.(i); write = ctx.acc_write.(i) }
        :: acc)
  in
  {
    value = (if ctx.e_value = no_value then None else Some ctx.e_value);
    accesses = accs (ctx.e_nacc - 1) [];
    taken = (match ctx.e_taken with 0 -> Some false | 1 -> Some true | _ -> None);
  }

let operand_value ctx = function
  | Insn.Imm v -> v
  | Insn.Reg r -> ctx.regs.(Reg.index r)

let base_value = function
  | Insn.Sym addr -> fun _ctx -> addr
  | Insn.Breg r -> fun ctx -> ctx.regs.(Reg.index r)

let mem_addr ctx ~base ~index ~shift =
  Word.add (base_value base ctx) (Word.shl (operand_value ctx index) shift)

let exec_scalar ctx ~pc insn =
  clear_effect ctx;
  match insn with
  | Insn.Mov { cond; dst; src } ->
      if Cond.holds cond ctx.flags then begin
        let v = Word.of_int (operand_value ctx src) in
        ctx.regs.(Reg.index dst) <- v;
        ctx.e_value <- v
      end;
      Next
  | Insn.Dp { cond; op; dst; src1; src2 } ->
      if Cond.holds cond ctx.flags then begin
        let v =
          Opcode.eval op ctx.regs.(Reg.index src1) (operand_value ctx src2)
        in
        ctx.regs.(Reg.index dst) <- v;
        ctx.e_value <- v
      end;
      Next
  | Insn.Ld { esize; signed; dst; base; index; shift } ->
      let addr = mem_addr ctx ~base ~index ~shift in
      let bytes = Esize.bytes esize in
      let v = Memory.read ctx.mem ~addr ~bytes ~signed in
      ctx.regs.(Reg.index dst) <- v;
      ctx.e_value <- v;
      add_access ctx addr bytes false;
      Next
  | Insn.St { esize; src; base; index; shift } ->
      let addr = mem_addr ctx ~base ~index ~shift in
      let bytes = Esize.bytes esize in
      Memory.write ctx.mem ~addr ~bytes ctx.regs.(Reg.index src);
      add_access ctx addr bytes true;
      Next
  | Insn.Cmp { src1; src2 } ->
      ctx.flags <-
        Flags.of_compare ctx.regs.(Reg.index src1) (operand_value ctx src2);
      Next
  | Insn.B { cond; target } ->
      if Cond.holds cond ctx.flags then begin
        ctx.e_taken <- 1;
        Jump target
      end
      else begin
        ctx.e_taken <- 0;
        Next
      end
  | Insn.Bl { target; region } ->
      ctx.regs.(Reg.index Reg.lr) <- pc + 1;
      ctx.e_value <- pc + 1;
      Call { target; region }
  | Insn.Ret -> Return
  | Insn.Halt -> Stop

let step_scalar ctx ~pc insn =
  let outcome = exec_scalar ctx ~pc insn in
  (outcome, last_effect ctx)

(* Pre-resolved single-instruction kernels for the translation-block
   engine ({!Liquid_pipeline.Blocks}): the block compiler resolves
   register names to indices, folds immediates (including [Word]
   normalization and index shifts) once, and replays each retired
   instruction through one of these. Each kernel is the corresponding
   [exec_scalar] arm minus decode and scratch-effect recording — the
   scratch effect is only ever consumed by a live translator session,
   and blocks never run while one is open. *)

let[@inline] kernel_mov_imm ctx ~dst v = ctx.regs.(dst) <- v

let[@inline] kernel_mov_reg ctx ~dst ~src =
  ctx.regs.(dst) <- Word.of_int ctx.regs.(src)

let[@inline] kernel_dp_imm ctx ~op ~dst ~src1 imm =
  ctx.regs.(dst) <- Opcode.eval op ctx.regs.(src1) imm

let[@inline] kernel_dp_reg ctx ~op ~dst ~src1 ~src2 =
  ctx.regs.(dst) <- Opcode.eval op ctx.regs.(src1) ctx.regs.(src2)

let[@inline] kernel_cmp_imm ctx ~src1 imm =
  ctx.flags <- Flags.of_compare ctx.regs.(src1) imm

let[@inline] kernel_cmp_reg ctx ~src1 ~src2 =
  ctx.flags <- Flags.of_compare ctx.regs.(src1) ctx.regs.(src2)

let[@inline] kernel_ld ctx ~addr ~bytes ~signed ~dst =
  ctx.regs.(dst) <- Memory.read ctx.mem ~addr ~bytes ~signed

let[@inline] kernel_st ctx ~addr ~bytes ~src =
  Memory.write ctx.mem ~addr ~bytes ctx.regs.(src)

let vsrc_lane ctx vsrc lane =
  match vsrc with
  | Vinsn.VR r -> ctx.vregs.(Vreg.index r).(lane)
  | Vinsn.VImm v -> v
  | Vinsn.VConst a ->
      if Array.length a <> ctx.lanes then
        raise (Sigill "constant vector width mismatch");
      a.(lane)

(* Decode [w] little-endian elements of [bytes] each from [ctx.blk] into
   [d], with the same signedness rules as {!Memory.read}. *)
let decode_lanes ctx d ~w ~bytes ~signed =
  let blk = ctx.blk in
  match bytes with
  | 1 ->
      if signed then
        for i = 0 to w - 1 do
          d.(i) <- Bytes.get_int8 blk i
        done
      else
        for i = 0 to w - 1 do
          d.(i) <- Bytes.get_uint8 blk i
        done
  | 2 ->
      if signed then
        for i = 0 to w - 1 do
          d.(i) <- Bytes.get_int16_le blk (2 * i)
        done
      else
        for i = 0 to w - 1 do
          d.(i) <- Bytes.get_uint16_le blk (2 * i)
        done
  | 4 ->
      for i = 0 to w - 1 do
        d.(i) <- Int32.to_int (Bytes.get_int32_le blk (4 * i))
      done
  | n -> invalid_arg (Printf.sprintf "Sem: bad element size %d" n)

let encode_lanes ctx s ~w ~bytes =
  let blk = ctx.blk in
  match bytes with
  | 1 ->
      for i = 0 to w - 1 do
        Bytes.unsafe_set blk i (Char.unsafe_chr (s.(i) land 0xFF))
      done
  | 2 ->
      for i = 0 to w - 1 do
        Bytes.set_uint16_le blk (2 * i) (s.(i) land 0xFFFF)
      done
  | 4 ->
      for i = 0 to w - 1 do
        Bytes.set_int32_le blk (4 * i) (Int32.of_int s.(i))
      done
  | n -> invalid_arg (Printf.sprintf "Sem: bad element size %d" n)

let exec_vector ctx vinsn =
  clear_effect ctx;
  let w = ctx.lanes in
  match vinsn with
  | Vinsn.Vld { esize; signed; dst; base; index } ->
      let bytes = Esize.bytes esize in
      let first = ctx.regs.(Reg.index index) in
      let start = Word.add (base_value base ctx) (Word.mul first bytes) in
      let d = ctx.vregs.(Vreg.index dst) in
      Memory.read_block ctx.mem ~addr:start ~len:(w * bytes) ctx.blk;
      decode_lanes ctx d ~w ~bytes ~signed;
      add_access ctx start (w * bytes) false
  | Vinsn.Vst { esize; src; base; index } ->
      let bytes = Esize.bytes esize in
      let first = ctx.regs.(Reg.index index) in
      let start = Word.add (base_value base ctx) (Word.mul first bytes) in
      let s = ctx.vregs.(Vreg.index src) in
      encode_lanes ctx s ~w ~bytes;
      Memory.write_block ctx.mem ~addr:start ~len:(w * bytes) ctx.blk;
      add_access ctx start (w * bytes) true
  | Vinsn.Vlds { esize; signed; dst; base; index; stride; phase } ->
      let bytes = Esize.bytes esize in
      let first = ctx.regs.(Reg.index index) in
      let base_addr = base_value base ctx in
      let d = ctx.vregs.(Vreg.index dst) in
      for i = 0 to w - 1 do
        let elem = (stride * (first + i)) + phase in
        d.(i) <- Memory.read ctx.mem ~addr:(base_addr + (elem * bytes)) ~bytes ~signed
      done;
      let start = base_addr + (((stride * first) + phase) * bytes) in
      add_access ctx start (((stride * (w - 1)) + 1) * bytes) false
  | Vinsn.Vsts { esize; src; base; index; stride; phase } ->
      let bytes = Esize.bytes esize in
      let first = ctx.regs.(Reg.index index) in
      let base_addr = base_value base ctx in
      let s = ctx.vregs.(Vreg.index src) in
      for i = 0 to w - 1 do
        let elem = (stride * (first + i)) + phase in
        Memory.write ctx.mem ~addr:(base_addr + (elem * bytes)) ~bytes s.(i)
      done;
      let start = base_addr + (((stride * first) + phase) * bytes) in
      add_access ctx start (((stride * (w - 1)) + 1) * bytes) true
  | Vinsn.Vgather { esize; signed; dst; base; index_v } ->
      let bytes = Esize.bytes esize in
      let base_addr = base_value base ctx in
      let idx = ctx.vregs.(Vreg.index index_v) in
      let d = ctx.vregs.(Vreg.index dst) in
      let tmp = ctx.gather_tmp in
      (* Conservative access accounting: one element-sized touch per
         lane, staged through [tmp] since [idx] may alias [dst]. *)
      for i = 0 to w - 1 do
        let addr = base_addr + (idx.(i) * bytes) in
        tmp.(i) <- Memory.read ctx.mem ~addr ~bytes ~signed;
        add_access ctx addr bytes false
      done;
      Array.blit tmp 0 d 0 w
  | Vinsn.Vdp { op; dst; src1; src2 } ->
      let a = ctx.vregs.(Vreg.index src1) in
      let d = ctx.vregs.(Vreg.index dst) in
      (* Lane [i] reads only lane [i] of each source, so writing in place
         is safe even when [dst] aliases a source. *)
      for i = 0 to w - 1 do
        d.(i) <- Opcode.eval op a.(i) (vsrc_lane ctx src2 i)
      done
  | Vinsn.Vsat { op; esize; signed; dst; src1; src2 } ->
      let a = ctx.vregs.(Vreg.index src1) in
      let b = ctx.vregs.(Vreg.index src2) in
      let d = ctx.vregs.(Vreg.index dst) in
      let f = match op with `Add -> Word.sat_add | `Sub -> Word.sat_sub in
      for i = 0 to w - 1 do
        d.(i) <- f esize ~signed a.(i) b.(i)
      done
  | Vinsn.Vperm { pattern; dst; src } ->
      if not (Perm.supported pattern ~lanes:w) then
        raise
          (Sigill
             (Format.asprintf "permutation %a unsupported at %d lanes" Perm.pp
                pattern w));
      let s = Array.sub ctx.vregs.(Vreg.index src) 0 w in
      let permuted = Perm.apply pattern s in
      Array.blit permuted 0 ctx.vregs.(Vreg.index dst) 0 w
  | Vinsn.Vred { op; acc; src } ->
      let s = ctx.vregs.(Vreg.index src) in
      let folded = ref s.(0) in
      for i = 1 to w - 1 do
        folded := Opcode.eval op !folded s.(i)
      done;
      let v = Opcode.eval op ctx.regs.(Reg.index acc) !folded in
      ctx.regs.(Reg.index acc) <- v;
      ctx.e_value <- v

(* Predicated (vector-length-agnostic) execution. Only prefix predicates
   exist — [k] active lanes 0..k-1 — with zeroing semantics: inactive
   destination lanes are cleared, inactive load/store lanes touch no
   memory, reductions fold active lanes only. The common full-predicate
   case delegates to {!exec_vector} so the two paths cannot drift. *)
let exec_vector_masked ctx ~k vinsn =
  let w = ctx.lanes in
  match vinsn with
  | Vinsn.Vld { esize; signed; dst; base; index } ->
      let bytes = Esize.bytes esize in
      let d = ctx.vregs.(Vreg.index dst) in
      if k > 0 then begin
        let first = ctx.regs.(Reg.index index) in
        let start = Word.add (base_value base ctx) (Word.mul first bytes) in
        Memory.read_block ctx.mem ~addr:start ~len:(k * bytes) ctx.blk;
        decode_lanes ctx d ~w:k ~bytes ~signed;
        add_access ctx start (k * bytes) false
      end;
      Array.fill d k (w - k) 0
  | Vinsn.Vst { esize; src; base; index } ->
      if k > 0 then begin
        let bytes = Esize.bytes esize in
        let first = ctx.regs.(Reg.index index) in
        let start = Word.add (base_value base ctx) (Word.mul first bytes) in
        let s = ctx.vregs.(Vreg.index src) in
        encode_lanes ctx s ~w:k ~bytes;
        Memory.write_block ctx.mem ~addr:start ~len:(k * bytes) ctx.blk;
        add_access ctx start (k * bytes) true
      end
  | Vinsn.Vlds { esize; signed; dst; base; index; stride; phase } ->
      let bytes = Esize.bytes esize in
      let d = ctx.vregs.(Vreg.index dst) in
      if k > 0 then begin
        let first = ctx.regs.(Reg.index index) in
        let base_addr = base_value base ctx in
        for i = 0 to k - 1 do
          let elem = (stride * (first + i)) + phase in
          d.(i) <-
            Memory.read ctx.mem ~addr:(base_addr + (elem * bytes)) ~bytes ~signed
        done;
        let start = base_addr + (((stride * first) + phase) * bytes) in
        add_access ctx start (((stride * (k - 1)) + 1) * bytes) false
      end;
      Array.fill d k (w - k) 0
  | Vinsn.Vsts { esize; src; base; index; stride; phase } ->
      if k > 0 then begin
        let bytes = Esize.bytes esize in
        let first = ctx.regs.(Reg.index index) in
        let base_addr = base_value base ctx in
        let s = ctx.vregs.(Vreg.index src) in
        for i = 0 to k - 1 do
          let elem = (stride * (first + i)) + phase in
          Memory.write ctx.mem ~addr:(base_addr + (elem * bytes)) ~bytes s.(i)
        done;
        let start = base_addr + (((stride * first) + phase) * bytes) in
        add_access ctx start (((stride * (k - 1)) + 1) * bytes) true
      end
  | Vinsn.Vgather { esize; signed; dst; base; index_v } ->
      let bytes = Esize.bytes esize in
      let base_addr = base_value base ctx in
      let idx = ctx.vregs.(Vreg.index index_v) in
      let d = ctx.vregs.(Vreg.index dst) in
      let tmp = ctx.gather_tmp in
      for i = 0 to k - 1 do
        let addr = base_addr + (idx.(i) * bytes) in
        tmp.(i) <- Memory.read ctx.mem ~addr ~bytes ~signed;
        add_access ctx addr bytes false
      done;
      Array.blit tmp 0 d 0 k;
      Array.fill d k (w - k) 0
  | Vinsn.Vdp { op; dst; src1; src2 } ->
      let a = ctx.vregs.(Vreg.index src1) in
      let d = ctx.vregs.(Vreg.index dst) in
      for i = 0 to k - 1 do
        d.(i) <- Opcode.eval op a.(i) (vsrc_lane ctx src2 i)
      done;
      Array.fill d k (w - k) 0
  | Vinsn.Vsat { op; esize; signed; dst; src1; src2 } ->
      let a = ctx.vregs.(Vreg.index src1) in
      let b = ctx.vregs.(Vreg.index src2) in
      let d = ctx.vregs.(Vreg.index dst) in
      let f = match op with `Add -> Word.sat_add | `Sub -> Word.sat_sub in
      for i = 0 to k - 1 do
        d.(i) <- f esize ~signed a.(i) b.(i)
      done;
      Array.fill d k (w - k) 0
  | Vinsn.Vperm _ ->
      (* The VLA backend lowers permutations to the table-lookup ops
         ([Vla.Tbl]/[Vla.Tblst]) rather than predicating a register
         permute, so a predicated [Vperm] can only mean corrupted
         microcode. *)
      raise (Sigill "predicated permutation")
  | Vinsn.Vred { op; acc; src } ->
      if k > 0 then begin
        let s = ctx.vregs.(Vreg.index src) in
        let folded = ref s.(0) in
        for i = 1 to k - 1 do
          folded := Opcode.eval op !folded s.(i)
        done;
        let v = Opcode.eval op ctx.regs.(Reg.index acc) !folded in
        ctx.regs.(Reg.index acc) <- v;
        ctx.e_value <- v
      end

let exec_vla ctx (p : Vla.exec) =
  match p with
  | Vla.Whilelt { pred; counter; bound } ->
      clear_effect ctx;
      let c = ctx.regs.(Reg.index counter) in
      let k = bound - c in
      let k = if k < 0 then 0 else if k > ctx.lanes then ctx.lanes else k in
      ctx.preds.(Vla.preg_index pred) <- k;
      ctx.flags <- Flags.of_compare c bound
  | Vla.Incvl { dst } ->
      clear_effect ctx;
      let v = Word.add ctx.regs.(Reg.index dst) ctx.lanes in
      ctx.regs.(Reg.index dst) <- v;
      ctx.e_value <- v
  | Vla.Pred { pred; v } ->
      let k = ctx.preds.(Vla.preg_index pred) in
      if k >= ctx.lanes then begin
        (* all-true fast path: every lane active, so the unmasked
           fixed-width semantics apply verbatim (counted before exec so
           the tally survives a [Sigill] escaping mid-instruction) *)
        ctx.n_pred_fast <- ctx.n_pred_fast + 1;
        exec_vector ctx v
      end
      else begin
        ctx.n_pred_masked <- ctx.n_pred_masked + 1;
        clear_effect ctx;
        exec_vector_masked ctx ~k v
      end
  | Vla.Tblidx _ ->
      (* The index build is pure register-state setup; the simulator
         derives lane indices directly from the pattern at each lookup,
         so only the build count is architectural here. *)
      clear_effect ctx;
      ctx.n_tbl_builds <- ctx.n_tbl_builds + 1
  | Vla.Tbl { pred; esize; signed; dst; base; counter; pattern } ->
      let w = ctx.lanes in
      let k = ctx.preds.(Vla.preg_index pred) in
      let k = if k > w then w else k in
      if k >= w then ctx.n_pred_fast <- ctx.n_pred_fast + 1
      else ctx.n_pred_masked <- ctx.n_pred_masked + 1;
      clear_effect ctx;
      let bytes = Esize.bytes esize in
      let base_addr = base_value base ctx in
      let c = ctx.regs.(Reg.index counter) in
      let d = ctx.vregs.(Vreg.index dst) in
      for j = 0 to k - 1 do
        let addr = base_addr + (Perm.src_index pattern (c + j) * bytes) in
        d.(j) <- Memory.read ctx.mem ~addr ~bytes ~signed;
        add_access ctx addr bytes false
      done;
      Array.fill d k (w - k) 0
  | Vla.Tblst { pred; esize; src; base; counter; pattern } ->
      let w = ctx.lanes in
      let k = ctx.preds.(Vla.preg_index pred) in
      let k = if k > w then w else k in
      if k >= w then ctx.n_pred_fast <- ctx.n_pred_fast + 1
      else ctx.n_pred_masked <- ctx.n_pred_masked + 1;
      clear_effect ctx;
      let bytes = Esize.bytes esize in
      let base_addr = base_value base ctx in
      let c = ctx.regs.(Reg.index counter) in
      let s = ctx.vregs.(Vreg.index src) in
      for j = 0 to k - 1 do
        let addr = base_addr + (Perm.src_index pattern (c + j) * bytes) in
        Memory.write ctx.mem ~addr ~bytes s.(j);
        add_access ctx addr bytes true
      done

(* RVV stripmined execution. The single [vl] grant plays the role a
   prefix predicate plays under VLA: [Vsetvl] computes
   [min(max(bound - counter, 0), lanes)] and every subsequent body op
   processes exactly that many elements until the next grant. A full
   grant takes the same all-true fast path as a full predicate, so the
   two remainder mechanisms share the masked/fast accounting and the
   masked execution kernels cannot drift apart. *)
let exec_rvv ctx (r : Rvv.exec) =
  match r with
  | Rvv.Vsetvl { counter; bound } ->
      clear_effect ctx;
      let c = ctx.regs.(Reg.index counter) in
      let k = bound - c in
      let k = if k < 0 then 0 else if k > ctx.lanes then ctx.lanes else k in
      ctx.vl <- k;
      ctx.flags <- Flags.of_compare c bound
  | Rvv.Addvl { dst } ->
      clear_effect ctx;
      let v = Word.add ctx.regs.(Reg.index dst) ctx.vl in
      ctx.regs.(Reg.index dst) <- v;
      ctx.e_value <- v
  | Rvv.Vl { v } ->
      let k = ctx.vl in
      if k >= ctx.lanes then begin
        ctx.n_pred_fast <- ctx.n_pred_fast + 1;
        exec_vector ctx v
      end
      else begin
        ctx.n_pred_masked <- ctx.n_pred_masked + 1;
        clear_effect ctx;
        exec_vector_masked ctx ~k v
      end
  | Rvv.Tblidx _ ->
      clear_effect ctx;
      ctx.n_tbl_builds <- ctx.n_tbl_builds + 1
  | Rvv.Tbl { esize; signed; dst; base; counter; pattern } ->
      let w = ctx.lanes in
      let k = ctx.vl in
      let k = if k > w then w else k in
      if k >= w then ctx.n_pred_fast <- ctx.n_pred_fast + 1
      else ctx.n_pred_masked <- ctx.n_pred_masked + 1;
      clear_effect ctx;
      let bytes = Esize.bytes esize in
      let base_addr = base_value base ctx in
      let c = ctx.regs.(Reg.index counter) in
      let d = ctx.vregs.(Vreg.index dst) in
      for j = 0 to k - 1 do
        let addr = base_addr + (Perm.src_index pattern (c + j) * bytes) in
        d.(j) <- Memory.read ctx.mem ~addr ~bytes ~signed;
        add_access ctx addr bytes false
      done;
      Array.fill d k (w - k) 0
  | Rvv.Tblst { esize; src; base; counter; pattern } ->
      let w = ctx.lanes in
      let k = ctx.vl in
      let k = if k > w then w else k in
      if k >= w then ctx.n_pred_fast <- ctx.n_pred_fast + 1
      else ctx.n_pred_masked <- ctx.n_pred_masked + 1;
      clear_effect ctx;
      let bytes = Esize.bytes esize in
      let base_addr = base_value base ctx in
      let c = ctx.regs.(Reg.index counter) in
      let s = ctx.vregs.(Vreg.index src) in
      for j = 0 to k - 1 do
        let addr = base_addr + (Perm.src_index pattern (c + j) * bytes) in
        Memory.write ctx.mem ~addr ~bytes s.(j);
        add_access ctx addr bytes true
      done

let step_vector ctx vinsn =
  exec_vector ctx vinsn;
  last_effect ctx

(* --- closure compilation ---

   [compile_vector]/[compile_vla] turn one vector (or VLA) instruction
   into a specialized [unit -> unit] closure for the block engine:
   operand registers are resolved to the context arrays once, the lane
   count is baked in (the engine only replays a compiled op while
   [ctx.lanes] equals the baked count), element decode/encode loops are
   monomorphized per element size, and the opcode dispatch is
   pre-resolved through {!Opcode.fn}.

   The contract mirrors the scalar kernels above: architectural state
   (registers, vector registers, predicates, flags, memory) changes
   exactly as under [exec_vector]/[exec_vla], and the access scratch
   prefix ([e_nacc]/[acc_*]) is maintained exactly — the engine derives
   data-cache charges from it. The value/taken scratch fields are
   skipped; they are only consumed by a live translator session or a
   trace observer, under which the block engine never runs. A compiled
   op that must fault ([Sigill]) does so on every execution, matching
   the interpretive per-execution check. *)

let[@inline] set_access ctx i addr bytes write =
  ctx.acc_addr.(i) <- addr;
  ctx.acc_bytes.(i) <- bytes;
  ctx.acc_write.(i) <- write

let compile_base ctx = function
  | Insn.Sym addr -> fun () -> addr
  | Insn.Breg r ->
      let i = Reg.index r in
      fun () -> Array.unsafe_get ctx.regs i

let compile_decode ctx d ~w ~bytes ~signed =
  let blk = ctx.blk in
  match bytes with
  | 1 ->
      if signed then fun () ->
        for i = 0 to w - 1 do
          d.(i) <- Bytes.get_int8 blk i
        done
      else fun () ->
        for i = 0 to w - 1 do
          d.(i) <- Bytes.get_uint8 blk i
        done
  | 2 ->
      if signed then fun () ->
        for i = 0 to w - 1 do
          d.(i) <- Bytes.get_int16_le blk (2 * i)
        done
      else fun () ->
        for i = 0 to w - 1 do
          d.(i) <- Bytes.get_uint16_le blk (2 * i)
        done
  | 4 ->
      fun () ->
        for i = 0 to w - 1 do
          d.(i) <- Int32.to_int (Bytes.get_int32_le blk (4 * i))
        done
  | n -> invalid_arg (Printf.sprintf "Sem: bad element size %d" n)

let compile_encode ctx s ~w ~bytes =
  let blk = ctx.blk in
  match bytes with
  | 1 ->
      fun () ->
        for i = 0 to w - 1 do
          Bytes.unsafe_set blk i (Char.unsafe_chr (s.(i) land 0xFF))
        done
  | 2 ->
      fun () ->
        for i = 0 to w - 1 do
          Bytes.set_uint16_le blk (2 * i) (s.(i) land 0xFFFF)
        done
  | 4 ->
      fun () ->
        for i = 0 to w - 1 do
          Bytes.set_int32_le blk (4 * i) (Int32.of_int s.(i))
        done
  | n -> invalid_arg (Printf.sprintf "Sem: bad element size %d" n)

let compile_vector ctx ~lanes:w (vinsn : Vinsn.exec) =
  match vinsn with
  | Vinsn.Vld { esize; signed; dst; base; index } ->
      let bytes = Esize.bytes esize in
      let len = w * bytes in
      let d = ctx.vregs.(Vreg.index dst) in
      let ii = Reg.index index in
      let getb = compile_base ctx base in
      let decode = compile_decode ctx d ~w ~bytes ~signed in
      fun () ->
        let start = Word.add (getb ()) (Word.mul ctx.regs.(ii) bytes) in
        Memory.read_block ctx.mem ~addr:start ~len ctx.blk;
        decode ();
        set_access ctx 0 start len false;
        ctx.e_nacc <- 1
  | Vinsn.Vst { esize; src; base; index } ->
      let bytes = Esize.bytes esize in
      let len = w * bytes in
      let s = ctx.vregs.(Vreg.index src) in
      let ii = Reg.index index in
      let getb = compile_base ctx base in
      let encode = compile_encode ctx s ~w ~bytes in
      fun () ->
        let start = Word.add (getb ()) (Word.mul ctx.regs.(ii) bytes) in
        encode ();
        Memory.write_block ctx.mem ~addr:start ~len ctx.blk;
        set_access ctx 0 start len true;
        ctx.e_nacc <- 1
  | Vinsn.Vlds { esize; signed; dst; base; index; stride; phase } ->
      let bytes = Esize.bytes esize in
      let span = ((stride * (w - 1)) + 1) * bytes in
      let d = ctx.vregs.(Vreg.index dst) in
      let ii = Reg.index index in
      let getb = compile_base ctx base in
      fun () ->
        let base_addr = getb () in
        let first = ctx.regs.(ii) in
        for i = 0 to w - 1 do
          let elem = (stride * (first + i)) + phase in
          d.(i) <-
            Memory.read ctx.mem ~addr:(base_addr + (elem * bytes)) ~bytes ~signed
        done;
        set_access ctx 0 (base_addr + (((stride * first) + phase) * bytes)) span
          false;
        ctx.e_nacc <- 1
  | Vinsn.Vsts { esize; src; base; index; stride; phase } ->
      let bytes = Esize.bytes esize in
      let span = ((stride * (w - 1)) + 1) * bytes in
      let s = ctx.vregs.(Vreg.index src) in
      let ii = Reg.index index in
      let getb = compile_base ctx base in
      fun () ->
        let base_addr = getb () in
        let first = ctx.regs.(ii) in
        for i = 0 to w - 1 do
          let elem = (stride * (first + i)) + phase in
          Memory.write ctx.mem ~addr:(base_addr + (elem * bytes)) ~bytes s.(i)
        done;
        set_access ctx 0 (base_addr + (((stride * first) + phase) * bytes)) span
          true;
        ctx.e_nacc <- 1
  | Vinsn.Vgather { esize; signed; dst; base; index_v } ->
      let bytes = Esize.bytes esize in
      let idx = ctx.vregs.(Vreg.index index_v) in
      let d = ctx.vregs.(Vreg.index dst) in
      let tmp = ctx.gather_tmp in
      let getb = compile_base ctx base in
      fun () ->
        let base_addr = getb () in
        for i = 0 to w - 1 do
          let addr = base_addr + (idx.(i) * bytes) in
          tmp.(i) <- Memory.read ctx.mem ~addr ~bytes ~signed;
          set_access ctx i addr bytes false
        done;
        ctx.e_nacc <- w;
        Array.blit tmp 0 d 0 w
  | Vinsn.Vdp { op; dst; src1; src2 } -> (
      let a = ctx.vregs.(Vreg.index src1) in
      let d = ctx.vregs.(Vreg.index dst) in
      match src2 with
      | Vinsn.VR r2 -> (
          let b = ctx.vregs.(Vreg.index r2) in
          match op with
          | Opcode.Add ->
              fun () ->
                for i = 0 to w - 1 do
                  Array.unsafe_set d i
                    (Word.add (Array.unsafe_get a i) (Array.unsafe_get b i))
                done;
                ctx.e_nacc <- 0
          | Opcode.Sub ->
              fun () ->
                for i = 0 to w - 1 do
                  Array.unsafe_set d i
                    (Word.sub (Array.unsafe_get a i) (Array.unsafe_get b i))
                done;
                ctx.e_nacc <- 0
          | Opcode.Mul ->
              fun () ->
                for i = 0 to w - 1 do
                  Array.unsafe_set d i
                    (Word.mul (Array.unsafe_get a i) (Array.unsafe_get b i))
                done;
                ctx.e_nacc <- 0
          | _ ->
              let f = Opcode.fn op in
              fun () ->
                for i = 0 to w - 1 do
                  Array.unsafe_set d i
                    (f (Array.unsafe_get a i) (Array.unsafe_get b i))
                done;
                ctx.e_nacc <- 0)
      | Vinsn.VImm v ->
          let f = Opcode.fn op in
          fun () ->
            for i = 0 to w - 1 do
              Array.unsafe_set d i (f (Array.unsafe_get a i) v)
            done;
            ctx.e_nacc <- 0
      | Vinsn.VConst arr ->
          if Array.length arr <> w then fun () ->
            (* the interpretive path checks the width on every execution
               (through [vsrc_lane]); fault identically, forever *)
            clear_effect ctx;
            raise (Sigill "constant vector width mismatch")
          else
            let f = Opcode.fn op in
            fun () ->
              for i = 0 to w - 1 do
                Array.unsafe_set d i
                  (f (Array.unsafe_get a i) (Array.unsafe_get arr i))
              done;
              ctx.e_nacc <- 0)
  | Vinsn.Vsat { op; esize; signed; dst; src1; src2 } ->
      let a = ctx.vregs.(Vreg.index src1) in
      let b = ctx.vregs.(Vreg.index src2) in
      let d = ctx.vregs.(Vreg.index dst) in
      let f = match op with `Add -> Word.sat_add | `Sub -> Word.sat_sub in
      fun () ->
        for i = 0 to w - 1 do
          d.(i) <- f esize ~signed a.(i) b.(i)
        done;
        ctx.e_nacc <- 0
  | Vinsn.Vperm { pattern; dst; src } ->
      if not (Perm.supported pattern ~lanes:w) then fun () ->
        clear_effect ctx;
        raise
          (Sigill
             (Format.asprintf "permutation %a unsupported at %d lanes" Perm.pp
                pattern w))
      else begin
        (* [Perm.apply] is positional, so applying it to the identity
           yields the source index of every destination lane once *)
        let map = Perm.apply pattern (Array.init w (fun i -> i)) in
        let s = ctx.vregs.(Vreg.index src) in
        let d = ctx.vregs.(Vreg.index dst) in
        let tmp = ctx.gather_tmp in
        fun () ->
          for i = 0 to w - 1 do
            tmp.(i) <- s.(map.(i))
          done;
          Array.blit tmp 0 d 0 w;
          ctx.e_nacc <- 0
      end
  | Vinsn.Vred { op; acc; src } ->
      let s = ctx.vregs.(Vreg.index src) in
      let ai = Reg.index acc in
      let f = Opcode.fn op in
      fun () ->
        let folded = ref s.(0) in
        for i = 1 to w - 1 do
          folded := f !folded s.(i)
        done;
        ctx.regs.(ai) <- f ctx.regs.(ai) !folded;
        ctx.e_nacc <- 0

let compile_vla ctx ~lanes (p : Vla.exec) =
  match p with
  | Vla.Whilelt { pred; counter; bound } ->
      let ci = Reg.index counter in
      let pi = Vla.preg_index pred in
      fun () ->
        let c = ctx.regs.(ci) in
        let k = bound - c in
        let k = if k < 0 then 0 else if k > lanes then lanes else k in
        ctx.preds.(pi) <- k;
        ctx.flags <- Flags.of_compare c bound;
        ctx.e_nacc <- 0
  | Vla.Incvl { dst } ->
      let di = Reg.index dst in
      fun () ->
        ctx.regs.(di) <- Word.add ctx.regs.(di) lanes;
        ctx.e_nacc <- 0
  | Vla.Pred { pred; v } ->
      let pi = Vla.preg_index pred in
      let full = compile_vector ctx ~lanes v in
      fun () ->
        let k = ctx.preds.(pi) in
        if k >= lanes then begin
          ctx.n_pred_fast <- ctx.n_pred_fast + 1;
          full ()
        end
        else begin
          ctx.n_pred_masked <- ctx.n_pred_masked + 1;
          clear_effect ctx;
          exec_vector_masked ctx ~k v
        end
  | Vla.Tblidx _ ->
      fun () ->
        ctx.n_tbl_builds <- ctx.n_tbl_builds + 1;
        ctx.e_nacc <- 0
  | Vla.Tbl { pred; esize; signed; dst; base; counter; pattern } ->
      let bytes = Esize.bytes esize in
      let pi = Vla.preg_index pred in
      let ci = Reg.index counter in
      let d = ctx.vregs.(Vreg.index dst) in
      let getb = compile_base ctx base in
      (* [period] is a power of two ([Perm.well_formed]), so the modulo
         in [Perm.src_index] becomes a mask over the baked offsets. *)
      let offs = Perm.offsets pattern in
      let mask = Perm.period pattern - 1 in
      fun () ->
        let k = ctx.preds.(pi) in
        let k = if k > lanes then lanes else k in
        if k >= lanes then ctx.n_pred_fast <- ctx.n_pred_fast + 1
        else ctx.n_pred_masked <- ctx.n_pred_masked + 1;
        let base_addr = getb () in
        let c = ctx.regs.(ci) in
        for j = 0 to k - 1 do
          let e = c + j in
          let addr = base_addr + ((e + offs.(e land mask)) * bytes) in
          d.(j) <- Memory.read ctx.mem ~addr ~bytes ~signed;
          set_access ctx j addr bytes false
        done;
        ctx.e_nacc <- k;
        if k < lanes then Array.fill d k (lanes - k) 0
  | Vla.Tblst { pred; esize; src; base; counter; pattern } ->
      let bytes = Esize.bytes esize in
      let pi = Vla.preg_index pred in
      let ci = Reg.index counter in
      let s = ctx.vregs.(Vreg.index src) in
      let getb = compile_base ctx base in
      let offs = Perm.offsets pattern in
      let mask = Perm.period pattern - 1 in
      fun () ->
        let k = ctx.preds.(pi) in
        let k = if k > lanes then lanes else k in
        if k >= lanes then ctx.n_pred_fast <- ctx.n_pred_fast + 1
        else ctx.n_pred_masked <- ctx.n_pred_masked + 1;
        let base_addr = getb () in
        let c = ctx.regs.(ci) in
        for j = 0 to k - 1 do
          let e = c + j in
          let addr = base_addr + ((e + offs.(e land mask)) * bytes) in
          Memory.write ctx.mem ~addr ~bytes s.(j);
          set_access ctx j addr bytes true
        done;
        ctx.e_nacc <- k

let compile_rvv ctx ~lanes (r : Rvv.exec) =
  match r with
  | Rvv.Vsetvl { counter; bound } ->
      let ci = Reg.index counter in
      fun () ->
        let c = ctx.regs.(ci) in
        let k = bound - c in
        let k = if k < 0 then 0 else if k > lanes then lanes else k in
        ctx.vl <- k;
        ctx.flags <- Flags.of_compare c bound;
        ctx.e_nacc <- 0
  | Rvv.Addvl { dst } ->
      let di = Reg.index dst in
      fun () ->
        ctx.regs.(di) <- Word.add ctx.regs.(di) ctx.vl;
        ctx.e_nacc <- 0
  | Rvv.Vl { v } ->
      let full = compile_vector ctx ~lanes v in
      fun () ->
        let k = ctx.vl in
        if k >= lanes then begin
          ctx.n_pred_fast <- ctx.n_pred_fast + 1;
          full ()
        end
        else begin
          ctx.n_pred_masked <- ctx.n_pred_masked + 1;
          clear_effect ctx;
          exec_vector_masked ctx ~k v
        end
  | Rvv.Tblidx _ ->
      fun () ->
        ctx.n_tbl_builds <- ctx.n_tbl_builds + 1;
        ctx.e_nacc <- 0
  | Rvv.Tbl { esize; signed; dst; base; counter; pattern } ->
      let bytes = Esize.bytes esize in
      let ci = Reg.index counter in
      let d = ctx.vregs.(Vreg.index dst) in
      let getb = compile_base ctx base in
      let offs = Perm.offsets pattern in
      let mask = Perm.period pattern - 1 in
      fun () ->
        let k = ctx.vl in
        let k = if k > lanes then lanes else k in
        if k >= lanes then ctx.n_pred_fast <- ctx.n_pred_fast + 1
        else ctx.n_pred_masked <- ctx.n_pred_masked + 1;
        let base_addr = getb () in
        let c = ctx.regs.(ci) in
        for j = 0 to k - 1 do
          let e = c + j in
          let addr = base_addr + ((e + offs.(e land mask)) * bytes) in
          d.(j) <- Memory.read ctx.mem ~addr ~bytes ~signed;
          set_access ctx j addr bytes false
        done;
        ctx.e_nacc <- k;
        if k < lanes then Array.fill d k (lanes - k) 0
  | Rvv.Tblst { esize; src; base; counter; pattern } ->
      let bytes = Esize.bytes esize in
      let ci = Reg.index counter in
      let s = ctx.vregs.(Vreg.index src) in
      let getb = compile_base ctx base in
      let offs = Perm.offsets pattern in
      let mask = Perm.period pattern - 1 in
      fun () ->
        let k = ctx.vl in
        let k = if k > lanes then lanes else k in
        if k >= lanes then ctx.n_pred_fast <- ctx.n_pred_fast + 1
        else ctx.n_pred_masked <- ctx.n_pred_masked + 1;
        let base_addr = getb () in
        let c = ctx.regs.(ci) in
        for j = 0 to k - 1 do
          let e = c + j in
          let addr = base_addr + ((e + offs.(e land mask)) * bytes) in
          Memory.write ctx.mem ~addr ~bytes s.(j);
          set_access ctx j addr bytes true
        done;
        ctx.e_nacc <- k
