(** Analytic area/delay model of the dynamic translation hardware.

    The paper synthesized its translator in a 90 nm IBM standard-cell
    process (Table 2: 16-gate critical path, 1.51 ns, 174,117 cells,
    under 0.2 mm² for the 8-wide configuration) and describes how each
    block scales (§4.1):

    - the {e partial decoder} is a few thousand cells, 5 of the 16
      critical-path gates, and does not scale with width;
    - the {e legality checks} are a few hundred cells, off the critical
      path;
    - the {e register state} is 55% of the area, 11 of 16 critical-path
      gates (previous-value read/conditional write), and grows linearly
      with both the architectural register count and the vector length;
    - the {e opcode generation logic} is about 9,000 cells;
    - the {e microcode buffer} stores 64 x 32-bit instructions (256
      bytes), a little more than half of its cells, the rest being the
      alignment network that collapses invalidated instructions.

    This module reproduces that accounting: the constants are calibrated
    so the default configuration (8 lanes, 16 registers, 64-entry
    buffer) lands exactly on the published totals, and the documented
    scaling laws extrapolate other configurations. The buffer cell count
    is derived as the residual of the published total, since the
    component figures quoted in the paper's prose slightly overlap. *)

type target =
  | Fixed_width  (** the paper's Neon-like fixed-width target *)
  | Vla
      (** the vector-length-agnostic predicated target: adds a whilelt
          comparator, a predicate file, a wider opcode generator and the
          table-lookup permutation unit — costs not in the paper, scaled
          from the same cell library *)
  | Rvv
      (** the RVV-style stripmining target: adds a vsetvl grant unit
          (comparator + clamp feeding a single [vl] CSR instead of a
          predicate file), vl-governance in the opcode generator, the
          LMUL specifier-regroup muxes when register grouping is
          configured, and the shared table-lookup permutation unit sized
          at the grouped width — costs not in the paper, scaled from the
          same cell library *)

val target_name : target -> string
(** ["fixed"], ["vla"] or ["rvv"] (the CLI spelling). *)

type params = {
  lanes : int;  (** accelerator vector width *)
  registers : int;  (** architectural integer registers *)
  buffer_entries : int;  (** microcode buffer capacity (instructions) *)
  target : target;  (** translation target the hardware emits for *)
  lmul : int;
      (** register-group factor provisioned for the {!Rvv} target: the
          previous-value state, table-lookup datapath and regroup muxes
          are sized for operations covering [lanes * lmul] elements.
          Ignored (keep 1) for the other targets *)
}

val default_params : params
(** 8 lanes, 16 registers, 64 entries, fixed-width, LMUL 1 — the
    paper's configuration. *)

type report = {
  params : params;
  decoder_cells : int;
  legality_cells : int;
  regstate_cells : int;
  opgen_cells : int;
  buffer_cells : int;
  pred_cells : int;
      (** remainder-mechanism state: whilelt comparator + predicate file
          for {!Vla}, vsetvl grant unit + [vl] CSR for {!Rvv}; 0 for
          {!Fixed_width} *)
  tbl_cells : int;
      (** table-lookup permutation unit — pattern store plus per-lane
          index adders for recovered permutations; 0 for {!Fixed_width},
          sized at the grouped width for {!Rvv}. Off the critical path:
          the index table is built once per region call, not per
          emitted uop *)
  total_cells : int;
  crit_path_gates : int;
  crit_path_ns : float;
  freq_mhz : float;
  area_mm2 : float;
}

val estimate : params -> report

val pp_report : Format.formatter -> report -> unit
(** One row in the format of the paper's Table 2. *)
