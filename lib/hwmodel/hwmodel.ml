type target = Fixed_width | Vla | Rvv

let target_name = function Fixed_width -> "fixed" | Vla -> "vla" | Rvv -> "rvv"

type params = {
  lanes : int;
  registers : int;
  buffer_entries : int;
  target : target;
  lmul : int;
}

let default_params =
  {
    lanes = 8;
    registers = 16;
    buffer_entries = 64;
    target = Fixed_width;
    lmul = 1;
  }

type report = {
  params : params;
  decoder_cells : int;
  legality_cells : int;
  regstate_cells : int;
  opgen_cells : int;
  buffer_cells : int;
  pred_cells : int;
  tbl_cells : int;
  total_cells : int;
  crit_path_gates : int;
  crit_path_ns : float;
  freq_mhz : float;
  area_mm2 : float;
}

(* Calibration constants (see the interface): chosen so that the default
   8-wide / 16-register / 64-entry fixed-width configuration totals
   exactly the 174,117 cells, 16 gates and 1.51 ns of the paper's
   Table 2, with the register state at 55% of the area. *)

let decoder_cells_const = 3_009
let legality_cells_const = 300
let regstate_base_per_reg = 2_465 (* class, size and addressing state *)
let regstate_per_reg_per_lane = 440 (* previous-value storage + muxes *)
let opgen_cells_const = 9_000
let buffer_storage_per_entry = 540 (* 32 bits of microcode storage *)
let buffer_align_per_entry = 492 (* alignment / collapse network *)
let gate_delay_ns = 1.51 /. 16.0
let cell_area_mm2 = 1.1e-6

(* VLA additions (not in the paper; scaled from the same cell library):
   a whilelt comparator (32-bit subtract + clamp against the lane
   count), a small predicate file storing one active-lane count per
   predicate register (log2(lanes)+1 bits each, plus read muxing), and
   the widened opcode generator that inserts the governing-predicate
   field into every emitted vector operation. *)

let vla_whilelt_cells = 900
let vla_predfile_base_per_preg = 120
let vla_predfile_per_preg_per_log_lane = 24
let vla_opgen_extra = 600
let vla_pred_count = 8

(* Table-lookup permutation unit (VLA only): recovered fixed-geometry
   permutations execute as predicated gathers through a runtime-built
   index table, so the translator carries a small pattern store (the
   recovered offsets, one signed byte per element up to the 16-element
   catalog period) and a per-lane index datapath (counter + offset add
   behind a mod-period mask) feeding the gather address generator. The
   index table is materialised once per region call, off the per-uop
   critical path, so the unit adds area but no gates to the path. *)

let vla_tbl_store_cells = 520
let vla_tbl_adder_per_lane = 310

(* RVV additions: a vsetvl grant unit (32-bit subtract + clamp against
   the lane count, like the whilelt comparator, feeding a single vl CSR
   instead of a predicate file), the widened opcode generator that
   inserts the vl governance into every emitted vector operation, and —
   when register grouping is configured — the LMUL regrouping muxes that
   remap each vector-register specifier onto its [lmul]-register group.
   The table-lookup permutation unit is shared with the VLA target,
   sized at the grouped (effective) width. *)

let rvv_vsetvl_cells = 860
let rvv_opgen_extra = 700
let rvv_group_mux_per_reg_per_log = 40

let log2_ceil n =
  let rec go acc v = if v >= n then acc else go (acc + 1) (v * 2) in
  go 0 1

let estimate params =
  if
    params.lanes < 2 || params.registers < 1 || params.buffer_entries < 1
    || params.lmul < 1
  then invalid_arg "Hwmodel.estimate: bad parameters";
  (* The RVV target's previous-value state and table-lookup datapath are
     sized at the grouped (effective) width: LMUL multiplies the element
     count one emitted operation covers. [lmul] is 1 for the other
     targets. *)
  let eff_lanes =
    match params.target with
    | Rvv -> params.lanes * params.lmul
    | Fixed_width | Vla -> params.lanes
  in
  let decoder_cells = decoder_cells_const in
  let legality_cells = legality_cells_const in
  let regstate_cells =
    params.registers
    * (regstate_base_per_reg + (regstate_per_reg_per_lane * eff_lanes))
  in
  let opgen_cells =
    opgen_cells_const
    + (match params.target with
      | Fixed_width -> 0
      | Vla -> vla_opgen_extra
      | Rvv ->
          rvv_opgen_extra
          + params.registers * rvv_group_mux_per_reg_per_log
            * log2_ceil params.lmul)
  in
  let buffer_cells =
    params.buffer_entries * (buffer_storage_per_entry + buffer_align_per_entry)
  in
  let pred_cells =
    match params.target with
    | Fixed_width -> 0
    | Vla ->
        vla_whilelt_cells
        + vla_pred_count
          * (vla_predfile_base_per_preg
            + (vla_predfile_per_preg_per_log_lane * log2_ceil params.lanes))
    | Rvv -> rvv_vsetvl_cells
  in
  let tbl_cells =
    match params.target with
    | Fixed_width -> 0
    | Vla -> vla_tbl_store_cells + (vla_tbl_adder_per_lane * params.lanes)
    | Rvv -> vla_tbl_store_cells + (vla_tbl_adder_per_lane * eff_lanes)
  in
  let total_cells =
    decoder_cells + legality_cells + regstate_cells + opgen_cells
    + buffer_cells + pred_cells + tbl_cells
  in
  (* 5 gates of partial decode plus the register-state previous-value
     read/conditional-write path, whose mux tree deepens with log2 of
     the lane count. The VLA target adds one gate: the governing
     predicate muxed into the emitted operation. The RVV target adds
     the same governance gate plus the LMUL specifier-regroup mux,
     which deepens with log2 of the group factor. *)
  let crit_path_gates =
    5 + 8 + log2_ceil params.lanes
    + (match params.target with
      | Fixed_width -> 0
      | Vla -> 1
      | Rvv -> 1 + log2_ceil params.lmul)
  in
  let crit_path_ns = float_of_int crit_path_gates *. gate_delay_ns in
  {
    params;
    decoder_cells;
    legality_cells;
    regstate_cells;
    opgen_cells;
    buffer_cells;
    pred_cells;
    tbl_cells;
    total_cells;
    crit_path_gates;
    crit_path_ns;
    freq_mhz = 1000.0 /. crit_path_ns;
    area_mm2 = float_of_int total_cells *. cell_area_mm2;
  }

let pp_report ppf r =
  Format.fprintf ppf
    "%d-wide %sTranslator | %d gates | %.2f ns (%.0f MHz) | %d cells | %.3f \
     mm^2"
    r.params.lanes
    (match r.params.target with
    | Fixed_width -> ""
    | Vla -> "VLA "
    | Rvv -> Printf.sprintf "RVV m%d " r.params.lmul)
    r.crit_path_gates r.crit_path_ns r.freq_mhz r.total_cells r.area_mm2
