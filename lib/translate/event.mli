(** Retirement events fed to the dynamic translator.

    The translator taps the retirement stage of the pipeline (paper §4):
    for every retired instruction inside an outlined region it receives
    the instruction, its PC, and the data value the instruction produced
    (the [Data] input in Figure 5) — the loaded value for loads, the ALU
    result for data-processing instructions. *)

open Liquid_isa

type t = {
  pc : int;  (** instruction index of the retired instruction *)
  insn : Insn.exec;
  value : int option;
      (** value written to the destination register, if any; [None] for
          stores, compares, branches and predicated instructions whose
          condition failed *)
}

val make : pc:int -> ?value:int -> Insn.exec -> t
(** Build an event; omit [value] for instructions that write no
    destination register. *)

val pp : Format.formatter -> t -> unit
(** One event as [pc: insn = value], for translator traces. *)
