(** Translated microcode: the SIMD realization of an outlined region.

    A microcode sequence mixes vector instructions with the scalar glue
    the paper's Table 3 passes through unmodified (induction-variable
    setup and update, the loop compare and branch, reduction-accumulator
    initialization). Branches inside microcode target microcode indices;
    [URet] returns to the region's caller. *)

open Liquid_isa
open Liquid_visa

type uop =
  | US of Insn.exec  (** pass-through scalar instruction (never a branch) *)
  | UV of Vinsn.exec
  | UP of Vla.exec
      (** predicated / vector-length-agnostic operation — only emitted by
          the VLA backend *)
  | UB of { cond : Cond.t; target : int }  (** intra-microcode branch *)
  | URet

type t = {
  uops : uop array;
  width : int;
      (** effective lane count the sequence was translated for; at most
          the accelerator width. For the fixed-width backend it always
          divides the loop's trip count; for the VLA backend it is the
          full accelerator width and the final iteration may run under a
          partial predicate *)
  vla : bool;  (** translated by the vector-length-agnostic backend *)
  source_insns : int;  (** static scalar instructions of the region *)
  observed_insns : int;  (** dynamic instructions the translator consumed *)
}

val length : t -> int

val branch_key : entry:int -> max_uops:int -> index:int -> int
(** Synthetic branch-predictor key for the intra-microcode branch at uop
    [index] of the region entered at image address [entry], with
    [max_uops] the machine's microcode-capacity bound. Offset past the
    image address space so microcode branches never alias image branches
    in the predictor; unique per (region, branch site). All consumers of
    microcode branch prediction (the stepping interpreter and the block
    engine) must use this one definition so their predictor state stays
    bit-identical. *)

val pp_uop : Format.formatter -> uop -> unit
val pp : Format.formatter -> t -> unit
