(** Translated microcode: the SIMD realization of an outlined region.

    A microcode sequence mixes vector instructions with the scalar glue
    the paper's Table 3 passes through unmodified (induction-variable
    setup and update, the loop compare and branch, reduction-accumulator
    initialization). Branches inside microcode target microcode indices;
    [URet] returns to the region's caller. *)

open Liquid_isa
open Liquid_visa

type uop =
  | US of Insn.exec  (** pass-through scalar instruction (never a branch) *)
  | UV of Vinsn.exec
  | UP of Vla.exec
      (** predicated / vector-length-agnostic operation — only emitted by
          the VLA backend *)
  | UR of Rvv.exec
      (** [vl]-governed stripmined operation — only emitted by the RVV
          backend *)
  | UB of { cond : Cond.t; target : int }  (** intra-microcode branch *)
  | URet

type guard = {
  g_addr : int;  (** effective address the folded element was loaded from *)
  g_bytes : int;
  g_signed : bool;
  g_expect : int;  (** the value baked into the vector constant *)
}
(** Live-invariance guard for a constant-folded operand. The translator
    may rewrite a loaded operand stream into a vector constant (the
    paper's alignment-network collapse); that is only valid while the
    source memory keeps the observed values. Each guard pins one folded
    element; a consumer must re-read every guard before reusing cached
    microcode and retranslate on any mismatch — a store to a folded
    source (e.g. a fission scratch array rewritten by an earlier region)
    otherwise leaves the constant stale. *)

type t = {
  uops : uop array;
  width : int;
      (** effective lane count the sequence was translated for. For the
          fixed-width backend it is at most the accelerator width and
          always divides the loop's trip count; for the VLA backend it
          is the full accelerator width and the final iteration may run
          under a partial predicate; for the RVV backend it is the
          accelerator width times the [lmul] register-group factor and
          the final iteration may run under a shortened [vl] grant *)
  vla : bool;  (** translated by the vector-length-agnostic backend *)
  rvv : bool;  (** translated by the RVV-style stripmining backend *)
  lmul : int;
      (** register-group factor the translator chose from this region's
          vector-register pressure: each logical vector value occupies
          [lmul] architectural vector registers, multiplying the
          effective width. Always 1 for the fixed-width and VLA
          backends *)
  source_insns : int;  (** static scalar instructions of the region *)
  observed_insns : int;  (** dynamic instructions the translator consumed *)
  guards : guard array;
      (** live-invariance guards over folded constant sources and
          recovered permutation offset streams; empty when nothing was
          baked from memory *)
}

val length : t -> int
(** Number of micro-ops — the microcode-buffer occupancy this region
    costs. *)

val branch_key : entry:int -> max_uops:int -> index:int -> int
(** Synthetic branch-predictor key for the intra-microcode branch at uop
    [index] of the region entered at image address [entry], with
    [max_uops] the machine's microcode-capacity bound. Offset past the
    image address space so microcode branches never alias image branches
    in the predictor; unique per (region, branch site). All consumers of
    microcode branch prediction (the stepping interpreter and the block
    engine) must use this one definition so their predictor state stays
    bit-identical. *)

val pp_uop : Format.formatter -> uop -> unit
(** One micro-op in the assembly-like listing syntax. *)

val pp : Format.formatter -> t -> unit
(** Full listing: a header line naming the effective width, backend
    flavour (and LMUL group when [rvv]), uop and guard counts, then one
    numbered line per micro-op. *)
