open Liquid_isa
open Liquid_visa

type config = { lanes : int; max_uops : int; backend : Backend.t }

let default_config ?(backend = Backend.fixed) ~lanes () =
  { lanes; max_uops = 64; backend }

type result = Translated of Ucode.t | Aborted of Abort.t

type perm_tally = { seen : int; recovered : int; aborted : int }

(* Microcode buffer slots. [Cinc] and [Cperm] are placeholders resolved at
   [finish]; [Cb] is the loop back-edge whose target is remapped after
   compaction. [Cuop] holds a backend-resolved table-lookup op (a
   recovered permutation lowered through the backend's perm hooks),
   emitted verbatim. *)
type content =
  | Cs of Insn.exec
  | Cv of Vinsn.exec
  | Cperm of { dst : Vreg.t; src : Vreg.t; lineage : int; scatter : bool }
  | Cuop of Ucode.uop
  | Cinc of Reg.t
  | Cb of Cond.t

type slot = {
  pc : int;
  mutable valid : bool;
  mutable content : content;
  mutable const_candidate : (int * int) option;
      (* (pc of the load defining the operand, slot index of that load) *)
}

type vinfo = {
  esize : Esize.t;
  vsigned : bool;
  def_slot : int;
  lineage : int option;
      (* pc of the static load whose observed values this register
         carries — the paper's "previous values" register state *)
  addr_combine : bool;  (* result of Table 3 rule 8: induction + offsets *)
}

type rstate =
  | Rscalar
  | Rcandidate
  | Rinduction
  | Rvector of vinfo
  | Rscaled of { stride : int; phase : int }
      (* extension: the scaled induction variable feeding interleaved
         (strided) memory accesses *)

type pending_sat = {
  ps_reg : Reg.t;
  ps_info : vinfo;
  mutable clamps : (Cond.t * int) list;  (* reversed *)
  mutable awaiting : int option;  (* bound of a compare waiting for its mov *)
}

(* Per static load: the element size and the effective address of every
   observed execution, in stream order (parallel to the value stream in
   [values]). Constant-folding a load's values is only checkable later
   if every address was reconstructible from the concrete register
   shadow; otherwise the source is unsound for folding. *)
type fold_src = {
  f_bytes : int;
  f_signed : bool;
  f_addrs : int Vec.t;
  mutable f_sound : bool;
}

type verify_state = { pattern : Event.t array; mutable next : int }

type phase = Build | Verify of verify_state

type t = {
  cfg : config;
  slots : slot Vec.t;
  regs : rstate array;
  values : (int, int Vec.t) Hashtbl.t;
  load_bases : (int, int) Hashtbl.t;
      (* static load pc -> base address of the array it reads, to judge
         whether a value stream can legally become a vector constant *)
  mutable store_bases : int list;
      (* base addresses the region stores to: arrays written inside the
         loop are not loop-invariant *)
  fold_srcs : (int, fold_src) Hashtbl.t;
      (* static load pc -> observed effective-address stream, feeding the
         live-invariance guards of constant-folded operands *)
  shadow : int array;
  shadow_ok : bool array;
      (* concrete values of the scalar registers as observed so far;
         [shadow_ok] marks registers whose value was actually seen (a
         register live-in from the caller has no observed def) *)
  mutable guards : Ucode.guard list;  (* reversed *)
  build_events : Event.t Vec.t;
  mutable phase : phase;
  mutable failure : Abort.t option;
  mutable pending : pending_sat option;
  mutable induction : Reg.t option;
  mutable bound : int option;
  mutable loop_top_pc : int;
  mutable iterations : int;
  mutable rule8_pending : int;
  mutable scaled_pending : int;
  mutable valid_count : int;
  mutable saw_ret : bool;
  mutable observed : int;
  mutable tbl_patterns : Perm.t list;
      (* distinct patterns recovered as table lookups, in recovery order:
         one [Tblidx] preamble uop is emitted per entry *)
  mutable perm_seen : int;
  mutable perm_recovered : int;
  mutable perm_aborted : int;
}

let scratch_vreg = Vreg.make 15

let create cfg =
  {
    cfg;
    slots = Vec.create ();
    regs = Array.make Reg.count Rscalar;
    values = Hashtbl.create 16;
    load_bases = Hashtbl.create 16;
    store_bases = [];
    fold_srcs = Hashtbl.create 16;
    shadow = Array.make Reg.count 0;
    shadow_ok = Array.make Reg.count false;
    guards = [];
    build_events = Vec.create ();
    phase = Build;
    failure = None;
    pending = None;
    induction = None;
    bound = None;
    loop_top_pc = -1;
    iterations = 0;
    rule8_pending = 0;
    scaled_pending = 0;
    valid_count = 0;
    saw_ret = false;
    observed = 0;
    tbl_patterns = [];
    perm_seen = 0;
    perm_recovered = 0;
    perm_aborted = 0;
  }

let observed t = t.observed

let perm_tally t =
  { seen = t.perm_seen; recovered = t.perm_recovered; aborted = t.perm_aborted }
let static_insns t = Vec.length t.build_events
let fail t reason = if t.failure = None then t.failure <- Some reason

let emit t ~pc content =
  let idx = Vec.length t.slots in
  Vec.push t.slots { pc; valid = true; content; const_candidate = None };
  t.valid_count <- t.valid_count + 1;
  (* +1 reserves room for the final return uop. *)
  if t.valid_count + 1 > t.cfg.max_uops then fail t Abort.Buffer_overflow;
  idx

let invalidate t idx =
  let s = Vec.get t.slots idx in
  if s.valid then begin
    s.valid <- false;
    t.valid_count <- t.valid_count - 1
  end

let record_value t pc v =
  let stream =
    match Hashtbl.find_opt t.values pc with
    | Some s -> s
    | None ->
        let s = Vec.create () in
        Hashtbl.replace t.values pc s;
        s
  in
  Vec.push stream v

let record_load_base t pc addr =
  if not (Hashtbl.mem t.load_bases pc) then Hashtbl.add t.load_bases pc addr

(* Reconstruct the load's effective address from the register shadow and
   append it to the per-pc stream. Mirrors [Sem.mem_addr]; a load whose
   index register was never defined inside the region (no shadow) makes
   the stream unsound for constant folding. *)
let record_load_addr t pc ~esize ~signed ~base ~index ~shift =
  let src =
    match Hashtbl.find_opt t.fold_srcs pc with
    | Some s -> s
    | None ->
        let s =
          {
            f_bytes = Esize.bytes esize;
            f_signed = signed;
            f_addrs = Vec.create ();
            f_sound = true;
          }
        in
        Hashtbl.replace t.fold_srcs pc s;
        s
  in
  match (base, index) with
  | Insn.Sym a, Insn.Reg r when t.shadow_ok.(Reg.index r) ->
      Vec.push src.f_addrs
        (Word.add a (Word.shl t.shadow.(Reg.index r) shift))
  | Insn.Sym a, Insn.Imm v -> Vec.push src.f_addrs (Word.add a (Word.shl v shift))
  | (Insn.Sym _ | Insn.Breg _), _ -> src.f_sound <- false

(* Track concrete register values alongside the abstract translation
   state. Called after the build/verify step for each event, so a load
   that overwrites its own index register still resolves its address
   from the pre-load value. *)
let shadow_update t (ev : Event.t) =
  match ev.insn with
  | Insn.Mov { dst; _ } | Insn.Dp { dst; _ } | Insn.Ld { dst; _ } -> (
      match ev.value with
      | Some v ->
          t.shadow.(Reg.index dst) <- v;
          t.shadow_ok.(Reg.index dst) <- true
      | None -> t.shadow_ok.(Reg.index dst) <- false)
  | Insn.St _ | Insn.Cmp _ | Insn.B _ | Insn.Bl _ | Insn.Ret | Insn.Halt -> ()

let rstate t r = t.regs.(Reg.index r)
let set_rstate t r s = t.regs.(Reg.index r) <- s

let promote_induction t r =
  match t.induction with
  | Some r' when not (Reg.equal r r') ->
      fail t Abort.No_induction;
      false
  | _ ->
      t.induction <- Some r;
      set_rstate t r Rinduction;
      true

let larger_esize a b = if Esize.bytes a >= Esize.bytes b then a else b

(* --- saturation idiom resolution --- *)

let esize_of_unsigned_max b =
  List.find_opt (fun e -> Esize.max_unsigned e = b) Esize.all

let esize_of_signed_range lo hi =
  List.find_opt
    (fun e -> Esize.min_signed e = lo && Esize.max_signed e = hi)
    Esize.all

let classify_clamps clamps (sat_op : [ `Add | `Sub ]) =
  let norm = function
    | Cond.Gt | Cond.Ge -> `Hi
    | Cond.Lt | Cond.Le -> `Lo
    | Cond.Al | Cond.Eq | Cond.Ne -> `Bad
  in
  match List.map (fun (c, b) -> (norm c, b)) clamps with
  | [ (`Hi, b) ] when sat_op = `Add -> (
      match esize_of_unsigned_max b with
      | Some e -> Some (e, false)
      | None -> None)
  | [ (`Lo, 0) ] when sat_op = `Sub -> Some (Esize.Word, false)
  | [ (`Hi, hi); (`Lo, lo) ] | [ (`Lo, lo); (`Hi, hi) ] -> (
      match esize_of_signed_range lo hi with
      | Some e -> Some (e, true)
      | None -> None)
  | _ -> None

let resolve_pending t ~pc p =
  if p.awaiting <> None then fail t (Abort.Illegal_insn "compare without move")
  else begin
    let clamps = List.rev p.clamps in
    let vr = Vreg.of_scalar p.ps_reg in
    let saturated =
      p.ps_info.def_slot >= 0
      &&
      let slot = Vec.get t.slots p.ps_info.def_slot in
      slot.valid
      &&
      match slot.content with
      | Cv (Vinsn.Vdp { op = Opcode.Add | Opcode.Sub as op; dst; src1; src2 = VR s2 })
        when Vreg.equal dst vr -> (
          let sat_op = match op with Opcode.Add -> `Add | _ -> `Sub in
          match classify_clamps clamps sat_op with
          | Some (esize, signed) ->
              let esize =
                if signed then esize
                else if sat_op = `Sub then p.ps_info.esize
                else esize
              in
              slot.content <-
                Cv (Vinsn.Vsat { op = sat_op; esize; signed; dst; src1; src2 = s2 });
              true
          | None -> false)
      | Cs _ | Cv _ | Cperm _ | Cuop _ | Cinc _ | Cb _ -> false
    in
    if not saturated then
      (* Fall back to element-wise min/max: a one-sided clamp is exactly a
         vector min (or max) against a splatted bound. *)
      List.iter
        (fun (cond, b) ->
          let op =
            match cond with
            | Cond.Gt | Cond.Ge -> Some Opcode.Smin
            | Cond.Lt | Cond.Le -> Some Opcode.Smax
            | Cond.Al | Cond.Eq | Cond.Ne -> None
          in
          match op with
          | Some op ->
              ignore
                (emit t ~pc
                   (Cv (Vinsn.Vdp { op; dst = vr; src1 = vr; src2 = VImm b })))
          | None -> fail t (Abort.Illegal_insn "predicated move condition"))
        clamps
  end

let flush_pending t ~pc =
  match t.pending with
  | None -> ()
  | Some p ->
      t.pending <- None;
      resolve_pending t ~pc p

(* --- Build phase: Table 3 rules applied to the first iteration --- *)

let build_ld t (ev : Event.t) ~esize ~signed ~dst ~base ~index ~shift =
  match (base, index) with
  | Insn.Sym addr, Insn.Reg r -> (
      if shift <> Esize.shift esize then
        fail t (Abort.Illegal_insn "load index scaling")
      else
        let value =
          match ev.value with
          | Some v -> v
          | None ->
              fail t (Abort.Illegal_insn "load without value");
              0
        in
        let emit_vld ~ind =
          let slot =
            emit t ~pc:ev.pc
              (Cv
                 (Vinsn.Vld
                    {
                      esize;
                      signed;
                      dst = Vreg.of_scalar dst;
                      base = Insn.Sym addr;
                      index = ind;
                    }))
          in
          record_value t ev.pc value;
          record_load_base t ev.pc addr;
          record_load_addr t ev.pc ~esize ~signed ~base ~index ~shift;
          slot
        in
        match rstate t r with
        | Rcandidate ->
            if promote_induction t r then begin
              let slot = emit_vld ~ind:r in
              set_rstate t dst
                (Rvector
                   {
                     esize;
                     vsigned = signed;
                     def_slot = slot;
                     lineage = Some ev.pc;
                     addr_combine = false;
                   })
            end
        | Rinduction ->
            let slot = emit_vld ~ind:r in
            set_rstate t dst
              (Rvector
                 {
                   esize;
                   vsigned = signed;
                   def_slot = slot;
                   lineage = Some ev.pc;
                   addr_combine = false;
                 })
        | Rvector vi when vi.addr_combine -> (
            match (vi.lineage, t.induction) with
            | Some lineage, Some ind ->
                t.rule8_pending <- max 0 (t.rule8_pending - 1);
                if vi.def_slot >= 0 then invalidate t vi.def_slot;
                let _vld = emit_vld ~ind in
                let vd = Vreg.of_scalar dst in
                let pslot =
                  emit t ~pc:ev.pc
                    (Cperm { dst = vd; src = vd; lineage; scatter = false })
                in
                set_rstate t dst
                  (Rvector
                     {
                       esize;
                       vsigned = signed;
                       def_slot = pslot;
                       lineage = Some ev.pc;
                       addr_combine = false;
                     })
            | None, _ | _, None ->
                fail t (Abort.Illegal_insn "permuted load lineage"))
        | Rscaled { stride; phase } -> (
            match t.induction with
            | Some ind ->
                t.scaled_pending <- max 0 (t.scaled_pending - 1);
                let slot =
                  emit t ~pc:ev.pc
                    (Cv
                       (Vinsn.Vlds
                          {
                            esize;
                            signed;
                            dst = Vreg.of_scalar dst;
                            base = Insn.Sym addr;
                            index = ind;
                            stride;
                            phase;
                          }))
                in
                record_value t ev.pc value;
                record_load_base t ev.pc addr;
          record_load_addr t ev.pc ~esize ~signed ~base ~index ~shift;
                set_rstate t dst
                  (Rvector
                     {
                       esize;
                       vsigned = signed;
                       def_slot = slot;
                       lineage = Some ev.pc;
                       addr_combine = false;
                     })
            | None -> fail t Abort.No_induction)
        | Rvector vi ->
            (* Extension: a load indexed by a plain vector register is a
               runtime table lookup — the paper's unsupported VTBL,
               regenerated here as a vector gather. *)
            ignore vi;
            let slot =
              emit t ~pc:ev.pc
                (Cv
                   (Vinsn.Vgather
                      {
                        esize;
                        signed;
                        dst = Vreg.of_scalar dst;
                        base = Insn.Sym addr;
                        index_v = Vreg.of_scalar r;
                      }))
            in
            record_value t ev.pc value;
            record_load_base t ev.pc addr;
          record_load_addr t ev.pc ~esize ~signed ~base ~index ~shift;
            set_rstate t dst
              (Rvector
                 {
                   esize;
                   vsigned = signed;
                   def_slot = slot;
                   lineage = Some ev.pc;
                   addr_combine = false;
                 })
        | Rscalar -> fail t (Abort.Illegal_insn "load index class"))
  | Insn.Sym _, Insn.Imm _ ->
      (* Loop-invariant scalar load: legal only in the region prologue,
         which the body legality scan enforces once the loop is found. *)
      ignore (emit t ~pc:ev.pc (Cs ev.insn));
      set_rstate t dst Rscalar
  | Insn.Breg _, _ -> fail t (Abort.Illegal_insn "register-based load address")

let build_st t (ev : Event.t) ~esize ~src ~base ~index ~shift =
  match (base, index) with
  | Insn.Sym addr, Insn.Reg r -> (
      if not (List.mem addr t.store_bases) then
        t.store_bases <- addr :: t.store_bases;
      if shift <> Esize.shift esize then
        fail t (Abort.Illegal_insn "store index scaling")
      else
        let vsrc =
          match rstate t src with
          | Rvector vi when not vi.addr_combine -> Some vi
          | Rscalar | Rcandidate | Rinduction | Rvector _ | Rscaled _ -> None
        in
        match vsrc with
        | None -> fail t (Abort.Illegal_insn "store of scalar value")
        | Some _ -> (
            let emit_vst ~ind ~vsrc =
              ignore
                (emit t ~pc:ev.pc
                   (Cv
                      (Vinsn.Vst
                         { esize; src = vsrc; base = Insn.Sym addr; index = ind })))
            in
            match rstate t r with
            | Rcandidate ->
                if promote_induction t r then
                  emit_vst ~ind:r ~vsrc:(Vreg.of_scalar src)
            | Rinduction -> emit_vst ~ind:r ~vsrc:(Vreg.of_scalar src)
            | Rvector ri when ri.addr_combine -> (
                match (ri.lineage, t.induction) with
                | Some lineage, Some ind ->
                    t.rule8_pending <- max 0 (t.rule8_pending - 1);
                    if ri.def_slot >= 0 then invalidate t ri.def_slot;
                    ignore
                      (emit t ~pc:ev.pc
                         (Cperm
                            {
                              dst = scratch_vreg;
                              src = Vreg.of_scalar src;
                              lineage;
                              scatter = true;
                            }));
                    emit_vst ~ind ~vsrc:scratch_vreg
                | None, _ | _, None ->
                    fail t (Abort.Illegal_insn "permuted store lineage"))
            | Rscaled { stride; phase } -> (
                match t.induction with
                | Some ind ->
                    t.scaled_pending <- max 0 (t.scaled_pending - 1);
                    ignore
                      (emit t ~pc:ev.pc
                         (Cv
                            (Vinsn.Vsts
                               {
                                 esize;
                                 src = Vreg.of_scalar src;
                                 base = Insn.Sym addr;
                                 index = ind;
                                 stride;
                                 phase;
                               })))
                | None -> fail t Abort.No_induction)
            | Rscalar | Rvector _ ->
                fail t (Abort.Illegal_insn "store index class")))
  | Insn.Sym _, Insn.Imm _ | Insn.Breg _, _ ->
      fail t (Abort.Illegal_insn "store addressing mode")

let foldable_reduction = function
  | Opcode.Add | Opcode.Mul | Opcode.And | Opcode.Orr | Opcode.Eor
  | Opcode.Smin | Opcode.Smax ->
      true
  | Opcode.Sub | Opcode.Rsb | Opcode.Bic | Opcode.Lsl | Opcode.Lsr
  | Opcode.Asr ->
      false

let build_dp t (ev : Event.t) ~op ~dst ~src1 ~src2 =
  match src2 with
  | Insn.Reg r2 -> (
      match (rstate t src1, rstate t r2) with
      | Rvector a, Rvector b when (not a.addr_combine) && not b.addr_combine ->
          (* Table 3 rule 6 (and rule 7, resolved at finish when the
             operand's loaded values turn out to be periodic). *)
          let slot =
            emit t ~pc:ev.pc
              (Cv
                 (Vinsn.Vdp
                    {
                      op;
                      dst = Vreg.of_scalar dst;
                      src1 = Vreg.of_scalar src1;
                      src2 = VR (Vreg.of_scalar r2);
                    }))
          in
          (match b.lineage with
          | Some lpc when b.def_slot >= 0 ->
              (Vec.get t.slots slot).const_candidate <- Some (lpc, b.def_slot)
          | Some _ | None -> ());
          set_rstate t dst
            (Rvector
               {
                 esize = larger_esize a.esize b.esize;
                 vsigned = a.vsigned || b.vsigned;
                 def_slot = slot;
                 lineage = None;
                 addr_combine = false;
               })
      | Rinduction, Rvector b | Rvector b, Rinduction ->
          (* Table 3 rule 8: offsets + induction variable; generates no
             instruction, only copies the loaded values to [dst]. *)
          if not (Opcode.equal op Opcode.Add) then
            fail t (Abort.Illegal_insn "non-add address combine")
          else if b.addr_combine then
            fail t (Abort.Illegal_insn "chained address combine")
          else if b.lineage = None then
            fail t (Abort.Illegal_insn "address combine without loaded values")
          else begin
            t.rule8_pending <- t.rule8_pending + 1;
            set_rstate t dst (Rvector { b with addr_combine = true })
          end
      | (Rscalar | Rcandidate), Rvector b when Reg.equal dst src1 ->
          (* Table 3 rule 9: reduction into a scalar accumulator. *)
          if b.addr_combine then
            fail t (Abort.Illegal_insn "reduction of address combine")
          else if not (foldable_reduction op) then
            fail t (Abort.Illegal_insn "non-associative reduction")
          else begin
            ignore
              (emit t ~pc:ev.pc
                 (Cv (Vinsn.Vred { op; acc = dst; src = Vreg.of_scalar r2 })));
            set_rstate t dst Rscalar
          end
      | (Rscalar | Rcandidate), (Rscalar | Rcandidate) ->
          (* Rule 11: all-scalar sources pass through (prologue only). *)
          ignore (emit t ~pc:ev.pc (Cs ev.insn));
          set_rstate t dst Rscalar
      | Rinduction, _ | _, Rinduction ->
          fail t (Abort.Illegal_insn "induction arithmetic")
      | Rscaled _, _ | _, Rscaled _ ->
          fail t (Abort.Illegal_insn "scaled-induction arithmetic")
      | Rvector _, _ | _, Rvector _ ->
          fail t (Abort.Illegal_insn "mixed scalar/vector operands"))
  | Insn.Imm k -> (
      match rstate t src1 with
      | Rinduction ->
          if Opcode.equal op Opcode.Add && k = 1 && Reg.equal dst src1 then
            ignore (emit t ~pc:ev.pc (Cinc dst))
          else if
            (* extension: a scaled induction variable for interleaved
               accesses (stride 2 or 4); generates no instruction *)
            Opcode.equal op Opcode.Lsl
            && (k = 1 || k = 2)
            && not (Reg.equal dst src1)
          then begin
            t.scaled_pending <- t.scaled_pending + 1;
            set_rstate t dst (Rscaled { stride = 1 lsl k; phase = 0 })
          end
          else fail t (Abort.Illegal_insn "induction arithmetic")
      | Rcandidate
        when Opcode.equal op Opcode.Lsl
             && (k = 1 || k = 2)
             && not (Reg.equal dst src1) ->
          (* The scaled access may be the loop's first use of the
             induction variable: promote the candidate. *)
          if promote_induction t src1 then begin
            t.scaled_pending <- t.scaled_pending + 1;
            set_rstate t dst (Rscaled { stride = 1 lsl k; phase = 0 })
          end
      | Rscaled { stride; phase } ->
          if Opcode.equal op Opcode.Add && k > 0 && k < stride then
            set_rstate t dst (Rscaled { stride; phase = phase + k })
          else fail t (Abort.Illegal_insn "scaled-induction arithmetic")
      | Rvector a when not a.addr_combine ->
          (* Table 1 category 2: vector op with an encodable constant. *)
          let slot =
            emit t ~pc:ev.pc
              (Cv
                 (Vinsn.Vdp
                    {
                      op;
                      dst = Vreg.of_scalar dst;
                      src1 = Vreg.of_scalar src1;
                      src2 = VImm k;
                    }))
          in
          set_rstate t dst
            (Rvector
               {
                 esize = a.esize;
                 vsigned = a.vsigned;
                 def_slot = slot;
                 lineage = None;
                 addr_combine = false;
               })
      | Rvector _ -> fail t (Abort.Illegal_insn "address combine arithmetic")
      | Rscalar | Rcandidate ->
          ignore (emit t ~pc:ev.pc (Cs ev.insn));
          set_rstate t dst Rscalar)

(* Once the back-edge identifies the loop body, any pass-through scalar
   slot inside the body other than the trip-count compare is illegal:
   unlike the prologue, body instructions execute once per scalar element
   but only once per vector in the microcode. *)
let scan_body_legality t ~top_pc ~branch_pc =
  Vec.iteri
    (fun _ slot ->
      if slot.valid && slot.pc >= top_pc && slot.pc <= branch_pc then
        match slot.content with
        | Cs (Insn.Cmp _) | Cv _ | Cperm _ | Cuop _ | Cinc _ | Cb _ -> ()
        | Cs _ -> fail t (Abort.Illegal_insn "scalar instruction in loop body"))
    t.slots

let build_branch t (ev : Event.t) ~cond ~target =
  (* Locate the branch target among this region's already-retired
     instructions: a hit means a loop back-edge. *)
  let top =
    Vec.fold_left
      (fun acc (e : Event.t) -> if acc = None && e.pc = target then Some e.pc else acc)
      None t.build_events
  in
  match top with
  | None -> fail t (Abort.Illegal_insn "forward branch in region")
  | Some top_pc ->
      if cond <> Cond.Lt then fail t (Abort.Illegal_insn "loop branch condition")
      else if t.bound = None then fail t Abort.Bad_trip_count
      else if t.induction = None then fail t Abort.No_induction
      else begin
        ignore (emit t ~pc:ev.pc (Cb cond));
        t.loop_top_pc <- top_pc;
        scan_body_legality t ~top_pc ~branch_pc:ev.pc;
        let events = Vec.to_array t.build_events in
        let start =
          let rec find i =
            if i >= Array.length events then 0
            else if events.(i).Event.pc = top_pc then i
            else find (i + 1)
          in
          find 0
        in
        let pattern = Array.sub events start (Array.length events - start) in
        t.iterations <- 1;
        t.phase <- Verify { pattern; next = 0 }
      end

let build_step t (ev : Event.t) =
  Vec.push t.build_events ev;
  match ev.insn with
  | Insn.Mov { cond = Cond.Al; dst; src = Imm _ } ->
      flush_pending t ~pc:ev.pc;
      ignore (emit t ~pc:ev.pc (Cs ev.insn));
      set_rstate t dst Rcandidate
  | Insn.Mov { cond = Cond.Al; _ } ->
      fail t (Abort.Illegal_insn "register move")
  | Insn.Mov { cond; dst; src = Imm b } -> (
      (* Predicated move: must complete a pending saturation compare. *)
      match t.pending with
      | Some p when p.awaiting = Some b && Reg.equal p.ps_reg dst ->
          p.clamps <- (cond, b) :: p.clamps;
          p.awaiting <- None
      | Some _ | None -> fail t (Abort.Illegal_insn "unexpected predicated move"))
  | Insn.Mov { cond = _; _ } ->
      fail t (Abort.Illegal_insn "predicated register move")
  | Insn.Ld { esize; signed; dst; base; index; shift } ->
      flush_pending t ~pc:ev.pc;
      build_ld t ev ~esize ~signed ~dst ~base ~index ~shift
  | Insn.St { esize; src; base; index; shift } ->
      flush_pending t ~pc:ev.pc;
      build_st t ev ~esize ~src ~base ~index ~shift
  | Insn.Dp { cond = Cond.Al; op; dst; src1; src2 } ->
      flush_pending t ~pc:ev.pc;
      build_dp t ev ~op ~dst ~src1 ~src2
  | Insn.Dp { cond = _; _ } ->
      fail t (Abort.Illegal_insn "predicated data-processing")
  | Insn.Cmp { src1; src2 = Imm b } -> (
      match rstate t src1 with
      | Rinduction ->
          flush_pending t ~pc:ev.pc;
          t.bound <- Some b;
          ignore (emit t ~pc:ev.pc (Cs ev.insn))
      | Rvector vi when not vi.addr_combine -> (
          match t.pending with
          | Some p when Reg.equal p.ps_reg src1 && p.awaiting = None ->
              p.awaiting <- Some b
          | Some _ ->
              flush_pending t ~pc:ev.pc;
              t.pending <-
                Some { ps_reg = src1; ps_info = vi; clamps = []; awaiting = Some b }
          | None ->
              t.pending <-
                Some { ps_reg = src1; ps_info = vi; clamps = []; awaiting = Some b })
      | Rscalar | Rcandidate | Rvector _ | Rscaled _ ->
          fail t (Abort.Illegal_insn "compare operand class"))
  | Insn.Cmp { src2 = Reg _; _ } -> fail t Abort.Bad_trip_count
  | Insn.B { cond; target } ->
      flush_pending t ~pc:ev.pc;
      build_branch t ev ~cond ~target
  | Insn.Bl _ -> fail t (Abort.Illegal_insn "call inside region")
  | Insn.Ret ->
      flush_pending t ~pc:ev.pc;
      t.saw_ret <- true;
      fail t Abort.No_loop
  | Insn.Halt -> fail t (Abort.Illegal_insn "halt inside region")

(* --- Verify phase: later iterations must repeat the first --- *)

let verify_step t (v : verify_state) (ev : Event.t) =
  match ev.insn with
  | Insn.Ret ->
      if v.next = 0 then t.saw_ret <- true
      else fail t (Abort.Inconsistent_iteration "return mid-iteration")
  | _ ->
      let expected = v.pattern.(v.next) in
      if ev.pc = expected.Event.pc && Insn.equal_exec ev.insn expected.Event.insn
      then begin
        (match (ev.insn, ev.value) with
        | Insn.Ld { esize; signed; base; index; shift; _ }, Some value ->
            if Hashtbl.mem t.values ev.pc then begin
              record_value t ev.pc value;
              record_load_addr t ev.pc ~esize ~signed ~base ~index ~shift
            end
        | _, _ -> ());
        v.next <- v.next + 1;
        if v.next = Array.length v.pattern then begin
          v.next <- 0;
          t.iterations <- t.iterations + 1
        end
      end
      else fail t (Abort.Inconsistent_iteration "instruction stream diverged")

let feed t ev =
  if t.failure = None then begin
    t.observed <- t.observed + 1;
    if t.saw_ret then fail t (Abort.Illegal_insn "instruction after return")
    else begin
      (match t.phase with
      | Build -> build_step t ev
      | Verify v -> verify_step t v ev);
      shadow_update t ev
    end
  end

let abort_external t = fail t Abort.External_abort
let inject t reason = fail t reason

(* --- Finalization --- *)

let fits_signed_bits v bits =
  v >= -(1 lsl (bits - 1)) && v <= (1 lsl (bits - 1)) - 1

let stream_values t lineage = Option.map Vec.to_array (Hashtbl.find_opt t.values lineage)

let periodic values width trips =
  Array.length values >= trips
  &&
  let ok = ref true in
  for e = 0 to trips - 1 do
    if values.(e) <> values.(e mod width) then ok := false
  done;
  !ok

(* Native lowering: match the observed offsets against the CAM at the
   translation width and rewrite the placeholder to a register permute
   ([Vperm]) between the partner load/store and the consumer. *)
let resolve_perm_native t ~width ~trips slot ~dst ~src ~scatter values =
  if Array.exists (fun v -> not (fits_signed_bits v 8)) values then
    fail t Abort.Unrepresentable_value
  else if not (periodic values width trips) then
    fail t Abort.Non_periodic_offsets
  else
    let in_range i = i >= 0 && i < width in
    let gather_offsets =
      if scatter then begin
        (* Scalar iterations scattered element [i] to position
           [i + off(i)]; the equivalent gather permutation is the
           inverse mapping. *)
        let target = Array.init width (fun i -> i + values.(i)) in
        if
          Array.for_all in_range target
          && List.length (List.sort_uniq compare (Array.to_list target)) = width
        then begin
          let inv = Array.make width 0 in
          Array.iteri (fun i ti -> inv.(ti) <- i) target;
          Some (Array.init width (fun j -> inv.(j) - j))
        end
        else None
      end
      else begin
        let src_idx = Array.init width (fun i -> i + values.(i)) in
        if Array.for_all in_range src_idx then
          Some (Array.init width (fun i -> values.(i)))
        else None
      end
    in
    match gather_offsets with
    | None -> fail t Abort.Unknown_permutation
    | Some offs -> (
        match Perm.find_by_offsets offs with
        | Some pattern -> slot.content <- Cv (Vinsn.Vperm { pattern; dst; src })
        | None -> fail t Abort.Unknown_permutation)

let record_tbl_pattern t pattern =
  if not (List.exists (Perm.equal pattern) t.tbl_patterns) then
    t.tbl_patterns <- t.tbl_patterns @ [ pattern ]

(* A recovered pattern is baked into the microcode, so the offset stream
   that produced it must be loop-invariant across region calls: guard
   every observed element, exactly as constant folding does. An offset
   stream that cannot be guarded is treated as genuinely data-dependent. *)
let guard_offset_stream t ~trips ~lineage values =
  let invariant =
    match Hashtbl.find_opt t.load_bases lineage with
    | Some base -> not (List.mem base t.store_bases)
    | None -> false
  in
  match Hashtbl.find_opt t.fold_srcs lineage with
  | Some src when invariant && src.f_sound && Vec.length src.f_addrs >= trips ->
      for e = 0 to trips - 1 do
        t.guards <-
          {
            Ucode.g_addr = Vec.get src.f_addrs e;
            g_bytes = src.f_bytes;
            g_signed = src.f_signed;
            g_expect = values.(e);
          }
          :: t.guards
      done;
      true
  | Some _ | None -> false

(* Table lowering (VLA / RVV): the permutation executes as a
   table-lookup memory op, so the placeholder and its partner load or
   store collapse into a single gather/scatter uop whose index vector is
   materialized at runtime from the actual vector length. The concrete
   encoding (predicated [Vla.Tbl] versus grant-governed [Rvv.Tbl]) comes
   from the backend's perm hooks. The pattern is matched at its own
   period — the hardware width need not divide, or even reach, the
   period — and the offsets are matched element-wise over the whole
   observed stream, so no per-width CAM image is needed. *)
let resolve_perm_table t ~trips idx slot ~dst ~src ~scatter ~lineage values =
  let module B = (val t.cfg.backend) in
  if Array.length values < trips then fail t Abort.Non_periodic_offsets
  else if Array.exists (fun v -> not (fits_signed_bits v 8)) values then
    fail t Abort.Unrepresentable_value
  else
    match Perm.find_by_offset_stream values ~len:trips with
    | None -> fail t Abort.Unknown_permutation
    | Some pattern ->
        if not (guard_offset_stream t ~trips ~lineage values) then
          fail t Abort.Unportable_permutation
        else if scatter then begin
          (* The partner [Vst] was emitted immediately after this
             placeholder by the store rule; the store-side offsets encode
             the mapping directly (scalar iteration [e] wrote element
             [e + off(e)]), so the matched pattern needs no inversion. *)
          let pidx = idx + 1 in
          if pidx >= Vec.length t.slots then
            fail t (Abort.Illegal_insn "table-lookup store partner")
          else
            let partner = Vec.get t.slots pidx in
            match partner.content with
            | Cv (Vinsn.Vst { esize; src = vsrc; base; index })
              when partner.valid && Vreg.equal vsrc scratch_vreg ->
                slot.content <-
                  Cuop
                    (B.perm_scatter ~esize ~src ~base ~counter:index ~pattern);
                invalidate t pidx;
                record_tbl_pattern t pattern
            | _ -> fail t (Abort.Illegal_insn "table-lookup store partner")
        end
        else begin
          (* The partner [Vld] was emitted immediately before this
             placeholder by the load rule. *)
          let pidx = idx - 1 in
          if pidx < 0 then fail t (Abort.Illegal_insn "table-lookup load partner")
          else
            let partner = Vec.get t.slots pidx in
            match partner.content with
            | Cv (Vinsn.Vld { esize; signed; dst = vdst; base; index })
              when partner.valid && Vreg.equal vdst dst ->
                slot.content <-
                  Cuop
                    (B.perm_gather ~esize ~signed ~dst ~base ~counter:index
                       ~pattern);
                invalidate t pidx;
                record_tbl_pattern t pattern
            | _ -> fail t (Abort.Illegal_insn "table-lookup load partner")
        end

let resolve_perm t ~width ~trips idx slot =
  match slot.content with
  | Cperm { dst; src; lineage; scatter } ->
      t.perm_seen <- t.perm_seen + 1;
      (match stream_values t lineage with
      | None -> fail t (Abort.Illegal_insn "missing offset stream")
      | Some values -> (
          let module B = (val t.cfg.backend) in
          match B.permutation with
          | Backend.Perm_abort -> fail t Abort.Unportable_permutation
          | Backend.Perm_native ->
              resolve_perm_native t ~width ~trips slot ~dst ~src ~scatter values
          | Backend.Perm_table ->
              resolve_perm_table t ~trips idx slot ~dst ~src ~scatter ~lineage
                values));
      (* [resolve_perm] only runs on slots reached with no failure
         recorded, so the tally is per-placeholder exact:
         recovered + aborted = seen. *)
      if t.failure = None then t.perm_recovered <- t.perm_recovered + 1
      else t.perm_aborted <- t.perm_aborted + 1
  | Cs _ | Cv _ | Cuop _ | Cinc _ | Cb _ -> ()

let uop_uses_vector u =
  match u with
  | Ucode.UV v -> Vinsn.uses_vector v
  | Ucode.UP p -> Vla.uses_vector p
  | Ucode.UR r -> Rvv.uses_vector r
  | Ucode.US _ | Ucode.UB _ | Ucode.URet -> []

let uop_defs_vector u =
  match u with
  | Ucode.UV v -> Vinsn.defs_vector v
  | Ucode.UP p -> Vla.defs_vector p
  | Ucode.UR r -> Rvv.defs_vector r
  | Ucode.US _ | Ucode.UB _ | Ucode.URet -> []

let vreg_used_by content vr =
  match content with
  | Cv v -> List.exists (Vreg.equal vr) (Vinsn.uses_vector v)
  | Cperm { src; _ } -> Vreg.equal src vr
  | Cuop u -> List.exists (Vreg.equal vr) (uop_uses_vector u)
  | Cs _ | Cinc _ | Cb _ -> false

(* Vector-register pressure of the translated region: the number of
   distinct vector registers live in surviving slots. Feeds the RVV
   backend's LMUL choice — each live value occupies [lmul] architectural
   registers once grouped. *)
let vreg_pressure t =
  let seen = Array.make Vreg.count false in
  Vec.iteri
    (fun _ s ->
      if s.valid then begin
        let mark vr = seen.(Vreg.index vr) <- true in
        match s.content with
        | Cv v ->
            List.iter mark (Vinsn.defs_vector v);
            List.iter mark (Vinsn.uses_vector v)
        | Cuop u ->
            List.iter mark (uop_defs_vector u);
            List.iter mark (uop_uses_vector u)
        | Cperm { dst; src; _ } ->
            mark dst;
            mark src
        | Cs _ | Cinc _ | Cb _ -> ()
      end)
    t.slots;
  Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 seen

let resolve_const_operand t ~width ~trips slot =
  match (slot.const_candidate, slot.content) with
  | Some (lineage, def_idx), Cv (Vinsn.Vdp ({ src2 = VR vr; _ } as dp)) -> (
      match stream_values t lineage with
      | None -> ()
      | Some values ->
          (* Folding an operand's loaded values into a vector constant is
             only sound when the source array is loop-invariant: a load
             whose array the region itself stores to would bake values
             that go stale by the next region call (short loops make
             every stream trivially "periodic", so periodicity alone is
             no evidence of invariance). *)
          let invariant =
            match Hashtbl.find_opt t.load_bases lineage with
            | Some base -> not (List.mem base t.store_bases)
            | None -> false
          in
          (* A fold must also be guardable: stores from *other* regions
             (loop fission shares scratch arrays across regions) can
             invalidate the constant between calls, which only a
             per-call re-check of the folded elements can catch. *)
          let guardable =
            match Hashtbl.find_opt t.fold_srcs lineage with
            | Some src -> src.f_sound && Vec.length src.f_addrs >= trips
            | None -> false
          in
          if
            invariant && guardable
            && Array.length values >= trips
            && Array.for_all (fun v -> fits_signed_bits v 16) values
            && periodic values width trips
          then begin
            (let src = Hashtbl.find t.fold_srcs lineage in
             for e = 0 to trips - 1 do
               t.guards <-
                 {
                   Ucode.g_addr = Vec.get src.f_addrs e;
                   g_bytes = src.f_bytes;
                   g_signed = src.f_signed;
                   g_expect = values.(e);
                 }
                 :: t.guards
             done);
            (* Under the VLA backend the width can exceed the trip count
               (short loops); lanes past the observed elements are never
               active, so pad them with zero. *)
            let lane j = if j < Array.length values then values.(j) else 0 in
            slot.content <-
              Cv (Vinsn.Vdp { dp with src2 = VConst (Array.init width lane) });
            (* Remove the now-dead load of the constant array if nothing
               else consumes it — the paper's alignment-network
               collapse. *)
            let def = Vec.get t.slots def_idx in
            let still_used =
              Vec.exists (fun s -> s.valid && vreg_used_by s.content vr) t.slots
            in
            if def.valid && not still_used then invalidate t def_idx
          end)
  | _, _ -> ()

let finish t =
  let module B = (val t.cfg.backend) in
  (if t.failure = None && not t.saw_ret then
     fail t (Abort.Inconsistent_iteration "region closed without return"));
  (if t.failure = None then
     match t.phase with
     | Build -> fail t Abort.No_loop
     | Verify _ -> ());
  (if t.failure = None && (t.rule8_pending > 0 || t.scaled_pending > 0) then
     fail t Abort.Dangling_address_combine);
  let trips = t.iterations in
  (if t.failure = None then
     match t.bound with
     | Some b when b = trips -> ()
     | Some _ | None -> fail t (Abort.Inconsistent_iteration "trip count"));
  let base_width =
    match B.effective_width ~lanes:t.cfg.lanes ~trips with
    | Ok w -> w
    | Error reason ->
        if t.failure = None then fail t reason;
        0
  in
  if t.failure = None then
    Vec.iteri
      (fun i s ->
        if s.valid && t.failure = None then
          resolve_perm t ~width:base_width ~trips i s)
      t.slots;
  (* Register grouping (LMUL) is graded after permutation resolution, so
     the pressure count sees the final slot contents: the backend picks
     the group factor from how many vector registers the region keeps
     live, and the effective translation width scales by it. *)
  let lmul =
    if t.failure = None then
      B.register_group ~lanes:base_width ~pressure:(vreg_pressure t)
    else 1
  in
  let width = base_width * lmul in
  if t.failure = None then
    Vec.iteri
      (fun _ s -> if s.valid then resolve_const_operand t ~width ~trips s)
      t.slots;
  match t.failure with
  | Some reason -> Aborted reason
  | None ->
      (* Compact valid slots into the final microcode, remapping the
         back-edge to the first surviving slot of the loop body. The
         backend decides the encoding of the loop machinery: the header
         (if any) lands just before the back-edge target, and the
         trip-count compare, induction step and body vector ops are
         re-encoded through its emission hooks. *)
      let induction =
        match t.induction with Some r -> r | None -> assert false
      in
      let bound = match t.bound with Some b -> b | None -> assert false in
      let uops = Vec.create () in
      let target = ref 0 in
      let target_found = ref false in
      Vec.iteri
        (fun _ s ->
          if s.valid then begin
            let in_body = s.pc >= t.loop_top_pc in
            if (not !target_found) && in_body then begin
              (* Index-table materialization runs once per region call,
                 before the loop header, outside the back-edge. *)
              List.iter
                (fun pattern -> Vec.push uops (B.perm_index_build ~pattern))
                t.tbl_patterns;
              List.iter (Vec.push uops) (B.loop_header ~induction ~bound);
              target := Vec.length uops;
              target_found := true
            end;
            let uop =
              match s.content with
              | Cs (Insn.Cmp _ as i) when in_body ->
                  B.trip_compare ~insn:i ~induction ~bound
              | Cs i -> Ucode.US i
              | Cv v when in_body -> B.body_vector v
              | Cv v -> Ucode.UV v
              | Cuop u -> u
              | Cinc r -> B.induction_step ~dst:r ~width
              | Cb cond -> Ucode.UB { cond; target = 0 }
              | Cperm _ -> assert false
            in
            Vec.push uops uop
          end)
        t.slots;
      Vec.push uops Ucode.URet;
      let arr = Vec.to_array uops in
      Array.iteri
        (fun i u ->
          match u with
          | Ucode.UB { cond; target = _ } ->
              arr.(i) <- Ucode.UB { cond; target = !target }
          | Ucode.US _ | Ucode.UV _ | Ucode.UP _ | Ucode.UR _ | Ucode.URet -> ())
        arr;
      if Array.length arr > t.cfg.max_uops then Aborted Abort.Buffer_overflow
      else
        Translated
          {
            Ucode.uops = arr;
            width;
            vla = (B.kind = Backend.Vla);
            rvv = (B.kind = Backend.Rvv);
            lmul;
            source_insns = Vec.length t.build_events;
            observed_insns = t.observed;
            guards = Array.of_list (List.rev t.guards);
          }
