(** Reasons the dynamic translator abandons a region.

    An abort is never an error of the system: the region's scalar code is
    always valid, so the pipeline simply keeps executing the virtualized
    representation natively (paper §2). Whether an abort is worth
    retrying is decided by the tree's single transient-vs-permanent
    table, [Liquid_pipeline.Diag.classify_abort] — this module only
    names the reasons. *)

type t =
  | Illegal_insn of string
      (** an instruction with no Table 3 rule, or one used in a position
          the scalar schema forbids *)
  | Unknown_permutation
      (** offset pattern missed in the permutation CAM *)
  | Non_periodic_offsets
      (** offsets/constants are not periodic in the translation width *)
  | Unrepresentable_value
      (** an offset too large for the register-state value fields *)
  | Buffer_overflow  (** more microcode than the buffer can hold *)
  | No_loop  (** region returned before a loop back-edge was seen *)
  | No_induction  (** no confirmed induction variable *)
  | Bad_trip_count
      (** trip count unknown at translation time, below the minimum lane
          count, or not divisible by any supported width *)
  | Inconsistent_iteration of string
      (** a later iteration's instruction stream diverged from the first *)
  | Dangling_address_combine
      (** an induction+offset combine whose result never reached memory *)
  | Unportable_permutation
      (** the region needs a cross-lane permutation that cannot be
          recovered as a table-lookup gather: either the target's
          {!Backend.perm_lowering} is [Perm_abort], or the observed
          offset stream is genuinely data-dependent — it cannot be
          proven loop-invariant, so no index vector baked at translation
          time would stay correct *)
  | External_abort  (** context switch or interrupt (paper §4.1) *)

val pp : Format.formatter -> t -> unit
(** Human-readable reason, as printed by the CLI's [translate -v]. *)

val to_string : t -> string
(** {!pp} rendered to a string. *)

val all : t list
(** One representative per constructor, in declaration order — the
    enumeration the fault-injection suite sweeps so every abort class is
    exercised. Guarded at compile time by {!class_name}'s exhaustive
    match: a new constructor cannot ship without extending both. *)

val class_name : t -> string
(** Stable payload-free name of the constructor (for reports/keys). *)
