type t =
  | Illegal_insn of string
  | Unknown_permutation
  | Non_periodic_offsets
  | Unrepresentable_value
  | Buffer_overflow
  | No_loop
  | No_induction
  | Bad_trip_count
  | Inconsistent_iteration of string
  | Dangling_address_combine
  | Unportable_permutation
  | External_abort

(* One representative per constructor, for exhaustive fault-injection
   sweeps. [class_name]'s match is the compile-time guard: adding a
   constructor without extending both it and this list will not build,
   so a new abort class cannot ship untested. *)
let all =
  [
    Illegal_insn "injected";
    Unknown_permutation;
    Non_periodic_offsets;
    Unrepresentable_value;
    Buffer_overflow;
    No_loop;
    No_induction;
    Bad_trip_count;
    Inconsistent_iteration "injected";
    Dangling_address_combine;
    Unportable_permutation;
    External_abort;
  ]

let class_name = function
  | Illegal_insn _ -> "illegal-insn"
  | Unknown_permutation -> "unknown-permutation"
  | Non_periodic_offsets -> "non-periodic-offsets"
  | Unrepresentable_value -> "unrepresentable-value"
  | Buffer_overflow -> "buffer-overflow"
  | No_loop -> "no-loop"
  | No_induction -> "no-induction"
  | Bad_trip_count -> "bad-trip-count"
  | Inconsistent_iteration _ -> "inconsistent-iteration"
  | Dangling_address_combine -> "dangling-address-combine"
  | Unportable_permutation -> "unportable-permutation"
  | External_abort -> "external-abort"

let to_string = function
  | Illegal_insn s -> "illegal instruction: " ^ s
  | Unknown_permutation -> "unknown permutation"
  | Non_periodic_offsets -> "non-periodic offsets"
  | Unrepresentable_value -> "unrepresentable value"
  | Buffer_overflow -> "microcode buffer overflow"
  | No_loop -> "no loop back-edge"
  | No_induction -> "no induction variable"
  | Bad_trip_count -> "bad trip count"
  | Inconsistent_iteration s -> "inconsistent iteration: " ^ s
  | Dangling_address_combine -> "dangling address combine"
  | Unportable_permutation -> "permutation not recoverable as a table lookup"
  | External_abort -> "external abort"

let pp ppf t = Format.pp_print_string ppf (to_string t)
