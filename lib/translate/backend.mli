(** Translation backends: the accelerator targets microcode is emitted
    for.

    The translator's DFA — register classification, Table 3 rule
    selection, legality checks, iteration verification — is target
    independent: it recognizes {e what} a scalar loop computes. What
    differs between accelerator generations is {e how} the recognized
    loop is re-encoded, and that difference is captured here as a
    first-class module consulted only at {!Translator.finish} time:

    - the {e fixed-width} target (the paper's Neon-like accelerator)
      picks the widest lane count dividing the trip count and steps the
      induction variable by it — a non-dividing trip count aborts;
    - the {e vector-length-agnostic} target ({!Liquid_visa.Vla}) always
      runs at full hardware width under a [whilelt] governing predicate,
      so any positive trip count translates and the final iteration may
      be partial.

    Fixed-geometry permutations are where the encodings diverge most:
    the fixed-width target matches the observed offset stream against
    the permutation CAM and emits a register permute ({!Vinsn.Vperm}),
    while the VLA target — whose hardware width need not divide (or even
    reach) the pattern's period — lowers the same shapes to predicated
    table-lookup memory ops ({!Liquid_visa.Vla.Tbl}/[Tblst]) over an
    index vector materialized at runtime from the actual vector length.
    {!Abort.Unportable_permutation} remains only for genuinely
    data-dependent shuffles whose offset stream cannot be proven
    loop-invariant. *)

open Liquid_isa
open Liquid_visa

type kind = Fixed | Vla

type perm_lowering =
  | Perm_native  (** CAM match, emit a register permute ({!Vinsn.Vperm}). *)
  | Perm_table
      (** Lower to predicated table-lookup memory ops with a
          runtime-built index vector ({!Liquid_visa.Vla.Tbl}). *)
  | Perm_abort
      (** No length-agnostic encoding: abort the region with
          {!Abort.Unportable_permutation}. Retained for hypothetical
          targets without a gather unit; neither shipped backend uses
          it. *)

(** A backend supplies the width policy and the four emission points
    where fixed-width and length-agnostic microcode differ. *)
module type S = sig
  val kind : kind

  val name : string
  (** Stable CLI / report name ("fixed", "vla"). *)

  val effective_width : lanes:int -> trips:int -> (int, Abort.t) result
  (** Lane count to translate for, or the abort to raise. *)

  val permutation : perm_lowering
  (** How a region's fixed-geometry permutations are encoded — see
      {!perm_lowering}. *)

  val loop_header : induction:Reg.t -> bound:int -> Ucode.uop list
  (** Uops inserted once, immediately before the first loop-body uop
      (the back-edge target): the VLA backend computes the initial
      governing predicate here. *)

  val body_vector : Vinsn.exec -> Ucode.uop
  (** Encoding of a loop-body vector operation (the VLA backend wraps it
      in the governing predicate). *)

  val induction_step : dst:Reg.t -> width:int -> Ucode.uop
  (** Encoding of the induction-variable advance ([add #width] wide
      versus [incvl]). *)

  val trip_compare : insn:Insn.exec -> induction:Reg.t -> bound:int -> Ucode.uop
  (** Encoding of the loop's trip-count compare. [insn] is the original
      scalar compare; the VLA backend replaces it with a [whilelt] that
      both recomputes the predicate and sets the flags the back-edge
      branch reads. *)
end

type t = (module S)

val fixed : t
val vla : t

val all : t list
(** Both backends, for sweeps. *)

val kind_of : t -> kind
val name_of : t -> string

val of_string : string -> t option
(** Parse a CLI name ("fixed" or "vla"). *)

val pp : Format.formatter -> t -> unit
