(** Translation backends: the accelerator targets microcode is emitted
    for.

    The translator's DFA — register classification, Table 3 rule
    selection, legality checks, iteration verification — is target
    independent: it recognizes {e what} a scalar loop computes. What
    differs between accelerator generations is {e how} the recognized
    loop is re-encoded, and that difference is captured here as a
    first-class module consulted only at {!Translator.finish} time:

    - the {e fixed-width} target (the paper's Neon-like accelerator)
      picks the widest lane count dividing the trip count and steps the
      induction variable by it — a non-dividing trip count aborts;
    - the {e vector-length-agnostic} target ({!Liquid_visa.Vla}) always
      runs at full hardware width under a [whilelt] governing predicate,
      so any positive trip count translates and the final iteration may
      be partial;
    - the {e RVV-style} target ({!Liquid_visa.Rvv}) stripmines: a
      [vsetvl] request-grant pair sets the vector-length CSR each
      iteration, the induction variable advances by the granted length,
      and a non-dividing trip count simply runs its final iteration
      under a shortened grant — no masks on the main path, no scalar
      epilogue. It is also the only backend that grades its own width:
      {!S.register_group} picks an LMUL register-group factor from the
      region's vector-register pressure, multiplying the effective
      datapath width when few vector registers are live.

    Fixed-geometry permutations are where the encodings diverge most:
    the fixed-width target matches the observed offset stream against
    the permutation CAM and emits a register permute ({!Vinsn.Vperm}),
    while the VLA and RVV targets — whose runtime width need not divide
    (or even reach) the pattern's period — lower the same shapes to
    table-lookup memory ops over an index vector materialized at
    runtime ({!Liquid_visa.Vla.Tbl} under a predicate,
    {!Liquid_visa.Rvv.Tbl} under the [vl] grant).
    {!Abort.Unportable_permutation} remains only for genuinely
    data-dependent shuffles whose offset stream cannot be proven
    loop-invariant. *)

open Liquid_isa
open Liquid_visa

type kind = Fixed | Vla | Rvv

type perm_lowering =
  | Perm_native  (** CAM match, emit a register permute ({!Vinsn.Vperm}). *)
  | Perm_table
      (** Lower to table-lookup memory ops with a runtime-built index
          vector ({!Liquid_visa.Vla.Tbl} / {!Liquid_visa.Rvv.Tbl}),
          via the backend's {!S.perm_index_build} / {!S.perm_gather} /
          {!S.perm_scatter} hooks. *)
  | Perm_abort
      (** No length-agnostic encoding: abort the region with
          {!Abort.Unportable_permutation}. Retained for hypothetical
          targets without a gather unit; no shipped backend uses it. *)

(** A backend supplies the width policy and the emission points where
    the three targets' microcode differs. A fourth backend is one new
    implementation of this signature plus registry entries below — see
    the "writing a fourth backend" checklist in docs/ARCHITECTURE.md. *)
module type S = sig
  val kind : kind

  val name : string
  (** Stable CLI / report name ("fixed", "vla", "rvv"). *)

  val effective_width : lanes:int -> trips:int -> (int, Abort.t) result
  (** Base lane count to translate for, or the abort to raise. *)

  val register_group : lanes:int -> pressure:int -> int
  (** Register-group (LMUL) factor for a region whose live vector values
      number [pressure] at base width [lanes]: the effective translation
      width becomes [lanes * register_group]. Must return a factor that
      keeps [lanes * m] within the machine's maximum vector length and
      [pressure * m] within the vector file. The fixed-width and VLA
      backends have no grouping and always return 1. *)

  val permutation : perm_lowering
  (** How a region's fixed-geometry permutations are encoded — see
      {!perm_lowering}. *)

  val loop_header : induction:Reg.t -> bound:int -> Ucode.uop list
  (** Uops inserted once, immediately before the first loop-body uop
      (the back-edge target): the VLA backend computes the initial
      governing predicate here, the RVV backend its initial [vl]
      grant. *)

  val body_vector : Vinsn.exec -> Ucode.uop
  (** Encoding of a loop-body vector operation (the VLA backend wraps it
      in the governing predicate, the RVV backend in the [vl] grant). *)

  val induction_step : dst:Reg.t -> width:int -> Ucode.uop
  (** Encoding of the induction-variable advance ([add #width] wide,
      [incvl], or [add dst, dst, vl]). *)

  val trip_compare : insn:Insn.exec -> induction:Reg.t -> bound:int -> Ucode.uop
  (** Encoding of the loop's trip-count compare. [insn] is the original
      scalar compare; the VLA backend replaces it with a [whilelt] and
      the RVV backend with a [vsetvl], each of which both renews its
      remainder mechanism (predicate resp. grant) and sets the flags the
      back-edge branch reads. *)

  val perm_index_build : pattern:Perm.t -> Ucode.uop
  (** Region-prologue uop that materializes the index vector for one
      recovered permutation pattern (emitted once per distinct pattern,
      before {!loop_header}). Only consulted when {!permutation} is
      {!Perm_table}; [Perm_native] backends may raise. *)

  val perm_gather :
    esize:Esize.t ->
    signed:bool ->
    dst:Vreg.t ->
    base:int Insn.base ->
    counter:Reg.t ->
    pattern:Perm.t ->
    Ucode.uop
  (** Table-lookup gather replacing a recovered load-side permutation:
      lane [j] loads element [Perm.src_index pattern (counter + j)] of
      the array at [base]. Only consulted under {!Perm_table}. *)

  val perm_scatter :
    esize:Esize.t ->
    src:Vreg.t ->
    base:int Insn.base ->
    counter:Reg.t ->
    pattern:Perm.t ->
    Ucode.uop
  (** Table-lookup scatter replacing a recovered store-side permutation —
      the store dual of {!perm_gather}. Only consulted under
      {!Perm_table}. *)
end

type t = (module S)

val fixed : t
(** The paper's fixed-width (Neon-like) target: the hardware width must
    divide the trip count; plain vector ops, no governance. *)

val vla : t
(** The vector-length-agnostic (SVE-style) target: [whilelt]-predicated
    loops, any trip count, permutations as predicated table lookups. *)

val rvv : t
(** The vsetvl/LMUL (RVV-style) target: grant-governed stripmined
    loops, any trip count, microcode emitted at the register-grouped
    width. *)

val all : t list
(** All three backends, for sweeps. *)

val kind_of : t -> kind
val name_of : t -> string
(** The backend's [S.name] — the spelling accepted by {!of_string} and
    the CLI's [--backend]. *)

val of_string : string -> t option
(** Parse a CLI name ("fixed", "vla" or "rvv"). *)

val pp : Format.formatter -> t -> unit
