(** Minimal growable array (OCaml 5.1 predates [Dynarray]). *)

type 'a t

val create : unit -> 'a t
(** An empty vector. *)

val length : 'a t -> int
(** Number of elements pushed so far. *)

val push : 'a t -> 'a -> unit
(** Append an element, growing the backing store as needed. *)

val get : 'a t -> int -> 'a
(** [get v i] — the [i]th element; bounds-checked. *)

val set : 'a t -> int -> 'a -> unit
(** Overwrite an existing element; bounds-checked. *)

val to_array : 'a t -> 'a array
(** A fresh array of the current contents. *)

val to_list : 'a t -> 'a list
(** The current contents, in push order. *)

val iteri : (int -> 'a -> unit) -> 'a t -> unit
(** Indexed iteration in push order. *)

val fold_left : ('b -> 'a -> 'b) -> 'b -> 'a t -> 'b
(** Left fold over the contents. *)

val exists : ('a -> bool) -> 'a t -> bool
(** Whether any element satisfies the predicate. *)
