open Liquid_isa
open Liquid_visa

type uop =
  | US of Insn.exec
  | UV of Vinsn.exec
  | UP of Vla.exec
  | UR of Rvv.exec
  | UB of { cond : Cond.t; target : int }
  | URet

type guard = {
  g_addr : int;
  g_bytes : int;
  g_signed : bool;
  g_expect : int;
}

type t = {
  uops : uop array;
  width : int;
  vla : bool;
  rvv : bool;
  lmul : int;
  source_insns : int;
  observed_insns : int;
  guards : guard array;
}

let length t = Array.length t.uops

(* Synthetic predictor key for an intra-microcode branch. Offset past the
   image address space (program counters are far below 2^30) so microcode
   branches never alias image branches in the predictor's index space;
   [entry * max_uops + index] is unique per (region, branch site). *)
let branch_key ~entry ~max_uops ~index = 0x40000000 + (entry * max_uops) + index

let pp_uop ppf = function
  | US i -> Insn.pp_exec ppf i
  | UV v -> Vinsn.pp_exec ppf v
  | UP p -> Vla.pp_exec ppf p
  | UR r -> Rvv.pp_exec ppf r
  | UB { cond; target } ->
      Format.fprintf ppf "b%s u%d"
        (match cond with Cond.Al -> "" | c -> Cond.suffix c)
        target
  | URet -> Format.pp_print_string ppf "ret"

let pp ppf t =
  Format.fprintf ppf "@[<v>; microcode (%d-wide%s, %d uops%s)@ " t.width
    (if t.vla then " vla"
     else if t.rvv then Printf.sprintf " rvv m%d" t.lmul
     else "")
    (Array.length t.uops)
    (match Array.length t.guards with
    | 0 -> ""
    | n -> Printf.sprintf ", %d guards" n);
  Array.iteri (fun i u -> Format.fprintf ppf "u%-3d %a@ " i pp_uop u) t.uops;
  Format.fprintf ppf "@]"
