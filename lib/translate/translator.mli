(** The post-retirement dynamic translator (paper §4).

    One translator session observes the retired instruction stream of a
    single execution of an outlined region — from the instruction after
    the region branch-and-link up to and including the region's return —
    and reconstructs width-appropriate SIMD microcode, or aborts.

    The session mirrors the hardware structure of the paper's Figure 5:

    - {e partial decode / register state}: every scalar register carries a
      class (scalar, induction candidate, induction, vector) plus the
      element size and "previous values" lineage the paper keeps per
      register (§4.1);
    - {e opcode generation}: Table 3's rules map each retired instruction
      to zero, one or two microcode slots;
    - {e legality checks}: instructions with no applicable rule abort the
      session; the scalar region remains executable, so an abort only
      costs performance;
    - {e microcode buffer}: slots support in-place replacement (saturation
      idioms) and invalidation with compaction (offset-array loads removed
      once a permutation is recognized) — the paper's alignment network.

    Because offsets, constant vectors and permutations can only be
    identified after one full hardware vector's worth of scalar
    iterations has retired, the session works in two phases: the first
    loop iteration {e builds} the microcode skeleton, subsequent
    iterations {e verify} that the static pattern repeats and accumulate
    the per-iteration values; [finish] resolves permutations against the
    CAM, folds periodic constant vectors, and fixes the induction step.

    Width adaptation is the {!Backend}'s policy. The fixed-width target
    translates for the widest lane count [w] with [2 <= w <= lanes] that
    divides the loop trip count, so a binary compiled for the maximum
    vectorizable width still maps onto narrower accelerators, and
    short-vector loops map onto wider hardware at reduced width. The
    vector-length-agnostic target always translates at the full lane
    count and lets the governing predicate absorb the remainder. *)

type config = {
  lanes : int;  (** accelerator lane count (2, 4, 8 or 16) *)
  max_uops : int;  (** microcode buffer capacity; the paper uses 64 *)
  backend : Backend.t;  (** the accelerator target microcode is emitted for *)
}

val default_config : ?backend:Backend.t -> lanes:int -> unit -> config
(** [max_uops = 64]; [backend] defaults to {!Backend.fixed}. *)

type result = Translated of Ucode.t | Aborted of Abort.t

type perm_tally = { seen : int; recovered : int; aborted : int }
(** Per-session permutation accounting: how many permutation
    placeholders [finish] encountered, and how many it rewrote to a
    native permute or table lookup ([recovered]) versus failed
    ([aborted]). The resolve pass stops at the first failure, so
    [recovered + aborted = seen] always holds. *)

type t
(** A translation session: one in-flight attempt to recover SIMD
    microcode from the retired stream of one region execution. *)

val create : config -> t
(** Fresh session in the Build phase, ready for the region's first
    retired instruction. *)

val feed : t -> Event.t -> unit
(** Process one retired instruction. After an abort condition the session
    latches the failure and ignores further events. *)

val abort_external : t -> unit
(** Asynchronous abort: context switch or interrupt (paper §4.1). *)

val inject : t -> Abort.t -> unit
(** Fault injection: force the session to abort with the given reason
    at whatever DFA state it has reached, exactly as if a legality
    check had failed there. First failure wins; a no-op once the
    session has already aborted. *)

val finish : t -> result
(** Close the session after the region's return has been fed. *)

val perm_tally : t -> perm_tally
(** Permutation accounting for this session; populated by [finish]
    (all-zero before it runs). *)

val observed : t -> int
(** Dynamic instructions consumed so far. *)

val static_insns : t -> int
(** Static instructions mapped so far (the first iteration plus the
    prologue). Translation {e work} is proportional to this: later
    iterations only verify and stream values, keeping pace with
    retirement (paper §5: translation of tens of cycles per instruction
    hides within the 300-cycle call gaps). *)
