open Liquid_isa
open Liquid_visa

type kind = Fixed | Vla

type perm_lowering = Perm_native | Perm_table | Perm_abort

module type S = sig
  val kind : kind
  val name : string
  val effective_width : lanes:int -> trips:int -> (int, Abort.t) result
  val permutation : perm_lowering
  val loop_header : induction:Reg.t -> bound:int -> Ucode.uop list
  val body_vector : Vinsn.exec -> Ucode.uop
  val induction_step : dst:Reg.t -> width:int -> Ucode.uop
  val trip_compare : insn:Insn.exec -> induction:Reg.t -> bound:int -> Ucode.uop
end

type t = (module S)

module Fixed_width : S = struct
  let kind = Fixed
  let name = "fixed"

  (* The widest lane count [2 <= w <= lanes] dividing the trip count: a
     binary compiled for the maximum vectorizable width still maps onto
     narrower accelerators, and short-vector loops map onto wider
     hardware at reduced width. *)
  let effective_width ~lanes ~trips =
    let rec go w =
      if w < 2 then Error Abort.Bad_trip_count
      else if trips mod w = 0 then Ok w
      else go (w / 2)
    in
    go lanes

  let permutation = Perm_native
  let loop_header ~induction:_ ~bound:_ = []
  let body_vector v = Ucode.UV v

  let induction_step ~dst ~width =
    Ucode.US
      (Insn.Dp
         {
           cond = Cond.Al;
           op = Opcode.Add;
           dst;
           src1 = dst;
           src2 = Insn.Imm width;
         })

  let trip_compare ~insn ~induction:_ ~bound:_ = Ucode.US insn
end

module Vla_target : S = struct
  let kind = Vla
  let name = "vla"

  (* Predication absorbs any remainder: the loop always runs at the full
     hardware width, with ceil(trips / lanes) predicated iterations and
     no divisibility requirement. *)
  let effective_width ~lanes ~trips =
    if trips > 0 then Ok lanes else Error Abort.Bad_trip_count

  let permutation = Perm_table

  let loop_header ~induction ~bound =
    [ Ucode.UP (Vla.Whilelt { pred = Vla.p0; counter = induction; bound }) ]

  let body_vector v = Ucode.UP (Vla.Pred { pred = Vla.p0; v })
  let induction_step ~dst ~width:_ = Ucode.UP (Vla.Incvl { dst })

  let trip_compare ~insn:_ ~induction ~bound =
    Ucode.UP (Vla.Whilelt { pred = Vla.p0; counter = induction; bound })
end

let fixed : t = (module Fixed_width)
let vla : t = (module Vla_target)
let all = [ fixed; vla ]

let kind_of (b : t) =
  let module B = (val b) in
  B.kind

let name_of (b : t) =
  let module B = (val b) in
  B.name

let of_string = function
  | "fixed" -> Some fixed
  | "vla" -> Some vla
  | _ -> None

let pp ppf b = Format.pp_print_string ppf (name_of b)
