open Liquid_isa
open Liquid_visa

type kind = Fixed | Vla | Rvv

type perm_lowering = Perm_native | Perm_table | Perm_abort

module type S = sig
  val kind : kind
  val name : string
  val effective_width : lanes:int -> trips:int -> (int, Abort.t) result
  val register_group : lanes:int -> pressure:int -> int
  val permutation : perm_lowering
  val loop_header : induction:Reg.t -> bound:int -> Ucode.uop list
  val body_vector : Vinsn.exec -> Ucode.uop
  val induction_step : dst:Reg.t -> width:int -> Ucode.uop
  val trip_compare : insn:Insn.exec -> induction:Reg.t -> bound:int -> Ucode.uop

  val perm_index_build : pattern:Perm.t -> Ucode.uop

  val perm_gather :
    esize:Esize.t ->
    signed:bool ->
    dst:Vreg.t ->
    base:int Insn.base ->
    counter:Reg.t ->
    pattern:Perm.t ->
    Ucode.uop

  val perm_scatter :
    esize:Esize.t ->
    src:Vreg.t ->
    base:int Insn.base ->
    counter:Reg.t ->
    pattern:Perm.t ->
    Ucode.uop
end

type t = (module S)

let no_table_lowering name =
  invalid_arg
    (Printf.sprintf "Backend.%s: no table-lookup permutation lowering" name)

module Fixed_width : S = struct
  let kind = Fixed
  let name = "fixed"

  (* The widest lane count [2 <= w <= lanes] dividing the trip count: a
     binary compiled for the maximum vectorizable width still maps onto
     narrower accelerators, and short-vector loops map onto wider
     hardware at reduced width. *)
  let effective_width ~lanes ~trips =
    let rec go w =
      if w < 2 then Error Abort.Bad_trip_count
      else if trips mod w = 0 then Ok w
      else go (w / 2)
    in
    go lanes

  let register_group ~lanes:_ ~pressure:_ = 1
  let permutation = Perm_native
  let loop_header ~induction:_ ~bound:_ = []
  let body_vector v = Ucode.UV v

  let induction_step ~dst ~width =
    Ucode.US
      (Insn.Dp
         {
           cond = Cond.Al;
           op = Opcode.Add;
           dst;
           src1 = dst;
           src2 = Insn.Imm width;
         })

  let trip_compare ~insn ~induction:_ ~bound:_ = Ucode.US insn
  let perm_index_build ~pattern:_ = no_table_lowering name
  let perm_gather ~esize:_ ~signed:_ ~dst:_ ~base:_ ~counter:_ ~pattern:_ =
    no_table_lowering name
  let perm_scatter ~esize:_ ~src:_ ~base:_ ~counter:_ ~pattern:_ =
    no_table_lowering name
end

module Vla_target : S = struct
  let kind = Vla
  let name = "vla"

  (* Predication absorbs any remainder: the loop always runs at the full
     hardware width, with ceil(trips / lanes) predicated iterations and
     no divisibility requirement. *)
  let effective_width ~lanes ~trips =
    if trips > 0 then Ok lanes else Error Abort.Bad_trip_count

  let register_group ~lanes:_ ~pressure:_ = 1
  let permutation = Perm_table

  let loop_header ~induction ~bound =
    [ Ucode.UP (Vla.Whilelt { pred = Vla.p0; counter = induction; bound }) ]

  let body_vector v = Ucode.UP (Vla.Pred { pred = Vla.p0; v })
  let induction_step ~dst ~width:_ = Ucode.UP (Vla.Incvl { dst })

  let trip_compare ~insn:_ ~induction ~bound =
    Ucode.UP (Vla.Whilelt { pred = Vla.p0; counter = induction; bound })

  let perm_index_build ~pattern = Ucode.UP (Vla.Tblidx { pattern })

  let perm_gather ~esize ~signed ~dst ~base ~counter ~pattern =
    Ucode.UP
      (Vla.Tbl { pred = Vla.p0; esize; signed; dst; base; counter; pattern })

  let perm_scatter ~esize ~src ~base ~counter ~pattern =
    Ucode.UP (Vla.Tblst { pred = Vla.p0; esize; src; base; counter; pattern })
end

module Rvv_target : S = struct
  let kind = Rvv
  let name = "rvv"

  (* The vsetvl grant absorbs any remainder, exactly as VLA predication
     does: ceil(trips / width) stripmined iterations, the last running
     under a shortened grant, with no divisibility requirement. *)
  let effective_width ~lanes ~trips =
    if trips > 0 then Ok lanes else Error Abort.Bad_trip_count

  (* LMUL register grouping: gang [m] architectural vector registers
     into one logical operand, multiplying the datapath width the
     translator emits for. The group factor is bounded by the machine's
     maximum vector length (the simulator's lane arrays) and by this
     region's vector-register pressure — each of the region's [pressure]
     live vector values occupies [m] architectural registers, which must
     all fit the 16-entry vector file. *)
  let register_group ~lanes ~pressure =
    let max_lanes = Width.lanes Width.max in
    let pressure = max 1 pressure in
    let rec go m =
      if m <= 1 then 1
      else if lanes * m <= max_lanes && pressure * m <= Vreg.count then m
      else go (m / 2)
    in
    go 8

  let permutation = Perm_table

  let loop_header ~induction ~bound =
    [ Ucode.UR (Rvv.Vsetvl { counter = induction; bound }) ]

  let body_vector v = Ucode.UR (Rvv.Vl { v })
  let induction_step ~dst ~width:_ = Ucode.UR (Rvv.Addvl { dst })

  let trip_compare ~insn:_ ~induction ~bound =
    Ucode.UR (Rvv.Vsetvl { counter = induction; bound })

  let perm_index_build ~pattern = Ucode.UR (Rvv.Tblidx { pattern })

  let perm_gather ~esize ~signed ~dst ~base ~counter ~pattern =
    Ucode.UR (Rvv.Tbl { esize; signed; dst; base; counter; pattern })

  let perm_scatter ~esize ~src ~base ~counter ~pattern =
    Ucode.UR (Rvv.Tblst { esize; src; base; counter; pattern })
end

let fixed : t = (module Fixed_width)
let vla : t = (module Vla_target)
let rvv : t = (module Rvv_target)
let all = [ fixed; vla; rvv ]

let kind_of (b : t) =
  let module B = (val b) in
  B.kind

let name_of (b : t) =
  let module B = (val b) in
  B.name

let of_string = function
  | "fixed" -> Some fixed
  | "vla" -> Some vla
  | "rvv" -> Some rvv
  | _ -> None

let pp ppf b = Format.pp_print_string ppf (name_of b)
