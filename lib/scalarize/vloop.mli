(** The vector-loop intermediate representation.

    A workload is written once, against this IR, as scalar glue code
    interleaved with counted vector loops. The code generators then
    produce the three binary flavours the paper compares:
    - the {e baseline} scalar binary (inline scalarized loops, no
      outlining) — the paper's no-SIMD reference;
    - the {e Liquid} binary (scalarized loops outlined behind the
      region branch-and-link) — one binary for every accelerator;
    - a {e native} binary per accelerator width — the conventional,
      ISA-extension approach.

    Conventions: the loop induction variable is r0 / element index; body
    instructions use vector registers v1..v12; scalar reduction
    accumulators use scalar registers disjoint from the body's vector
    register numbers (the scalar representation maps v{_i} to r{_i}). *)

open Liquid_isa
open Liquid_visa

type t = {
  name : string;  (** unique within the program; used to derive labels *)
  count : int;  (** elements processed; must be a multiple of 16 *)
  body : Vinsn.asm list;  (** straight-line; memory indexed by r0 *)
  reductions : (Reg.t * int) list;
      (** accumulator registers and their initial values *)
}

type section = Code of Liquid_prog.Program.item list | Loop of t

type program = {
  name : string;
  sections : section list;
  data : Liquid_prog.Data.t list;
}

val induction : Reg.t
(** r0. *)

val scratch : Reg.t
(** r13, reserved for the scalarizer's offset/constant temporaries. *)

val loops : program -> t list
(** The vector loops of a program, in section order. *)

val validate : t -> (unit, string) result
(** Register-convention and alignment checks: count is positive (any
    positive count is legal scalar code — fixed-width translation then
    needs a width dividing it, while the VLA backend predicates the
    final iteration) and a multiple of every permutation period;
    vector registers are within v1..v11; memory indices are the
    induction register; strides are 2 or 4 with in-range phases;
    reduction accumulators avoid r0, r12, r13, r14, r15 and do not
    alias body vector registers; permutation patterns are well-formed
    and no wider than 16. *)

val validate_program : program -> (unit, string) result
(** {!validate} over every loop, plus program-level checks (distinct
    loop names, data symbols resolved). *)

val pp : Format.formatter -> t -> unit
(** Prints the loop's IR: name, trip count, body and reductions. *)
