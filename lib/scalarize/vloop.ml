open Liquid_isa
open Liquid_visa

type t = {
  name : string;
  count : int;
  body : Vinsn.asm list;
  reductions : (Reg.t * int) list;
}

type section = Code of Liquid_prog.Program.item list | Loop of t

type program = {
  name : string;
  sections : section list;
  data : Liquid_prog.Data.t list;
}

let induction = Reg.make 0
let scratch = Reg.make 13

let loops p =
  List.filter_map (function Loop l -> Some l | Code _ -> None) p.sections

let ( let* ) r f = Result.bind r f

let check cond msg = if cond then Ok () else Error msg

let body_vreg_ok r =
  let i = Vreg.index r in
  i >= 1 && i <= 11

let check_vinsn name (vi : Vinsn.asm) =
  let vregs = Vinsn.defs_vector vi @ Vinsn.uses_vector vi in
  let* () =
    check
      (List.for_all body_vreg_ok vregs)
      (Printf.sprintf "%s: body vector registers must be v1..v11" name)
  in
  match vi with
  | Vinsn.Vld { index; _ } | Vinsn.Vst { index; _ } ->
      check
        (Reg.equal index induction)
        (Printf.sprintf "%s: memory index must be the induction register" name)
  | Vinsn.Vlds { index; stride; phase; _ } | Vinsn.Vsts { index; stride; phase; _ }
    ->
      let* () =
        check
          (Reg.equal index induction)
          (Printf.sprintf "%s: memory index must be the induction register" name)
      in
      check
        ((stride = 2 || stride = 4) && phase >= 0 && phase < stride)
        (Printf.sprintf "%s: bad stride/phase" name)
  | Vinsn.Vgather { index_v; _ } ->
      check (body_vreg_ok index_v)
        (Printf.sprintf "%s: gather index register out of range" name)
  | Vinsn.Vperm { pattern; _ } ->
      let* () =
        check (Perm.well_formed pattern)
          (Printf.sprintf "%s: malformed permutation" name)
      in
      check
        (Perm.period pattern <= 16)
        (Printf.sprintf "%s: permutation wider than the maximum width" name)
  | Vinsn.Vdp { src2 = VConst a; _ } ->
      check
        (Array.length a > 0 && 16 mod Array.length a = 0)
        (Printf.sprintf "%s: constant vector length must divide 16" name)
  | Vinsn.Vdp _ | Vinsn.Vsat _ | Vinsn.Vred _ -> Ok ()

(* Cross-iteration aliasing rules for the extension accesses, which read
   or write outside their own iteration's element slot: a gather must
   not read an array the loop stores to, and strided accesses to an
   array must all share one stride, acting on pairwise-distinct phases
   unless they are all loads. (Permuted accesses are handled by the
   scalarizer's segment-splitting instead.) *)
let check_aliasing t =
  let sym_of = function Insn.Sym s -> Some s | Insn.Breg _ -> None in
  let accesses =
    List.filter_map
      (fun vi ->
        match vi with
        | Vinsn.Vld { base; _ } -> Option.map (fun s -> (s, `Load)) (sym_of base)
        | Vinsn.Vst { base; _ } -> Option.map (fun s -> (s, `Store)) (sym_of base)
        | Vinsn.Vlds { base; stride; phase; _ } ->
            Option.map (fun s -> (s, `Strided (stride, phase, `Load))) (sym_of base)
        | Vinsn.Vsts { base; stride; phase; _ } ->
            Option.map (fun s -> (s, `Strided (stride, phase, `Store))) (sym_of base)
        | Vinsn.Vgather { base; _ } ->
            Option.map (fun s -> (s, `Gather)) (sym_of base)
        | Vinsn.Vdp _ | Vinsn.Vsat _ | Vinsn.Vperm _ | Vinsn.Vred _ -> None)
      t.body
  in
  let syms = List.sort_uniq compare (List.map fst accesses) in
  List.fold_left
    (fun acc sym ->
      let* () = acc in
      let here = List.filter_map (fun (s, k) -> if s = sym then Some k else None) accesses in
      let stores = List.exists (function `Store | `Strided (_, _, `Store) -> true | _ -> false) here in
      let gathers = List.exists (function `Gather -> true | _ -> false) here in
      let strided = List.filter_map (function `Strided (st, ph, d) -> Some (st, ph, d) | _ -> None) here in
      let plain = List.exists (function `Load | `Store -> true | _ -> false) here in
      let* () =
        check
          (not (gathers && stores))
          (t.name ^ ": gather from an array the loop stores to (" ^ sym ^ ")")
      in
      match strided with
      | [] -> Ok ()
      | (st0, _, _) :: _ ->
          let* () =
            check (not plain)
              (t.name ^ ": strided and element accesses mix on " ^ sym)
          in
          let* () =
            check
              (List.for_all (fun (st, _, _) -> st = st0) strided)
              (t.name ^ ": conflicting strides on " ^ sym)
          in
          let all_loads = List.for_all (fun (_, _, d) -> d = `Load) strided in
          let phases = List.map (fun (_, ph, _) -> ph) strided in
          check
            (all_loads || List.length (List.sort_uniq compare phases) = List.length phases)
            (t.name ^ ": strided writes share a phase on " ^ sym))
    (Ok ()) syms

let validate t =
  (* Any positive trip count is legal scalar code. Whether it also
     vectorizes is the translator's call, per backend: the fixed-width
     target needs a width dividing the count (so non-multiples abort to
     scalar, the always-safe fallback), while the VLA target predicates
     the final iteration and takes any count. Permutation periods must
     still divide the trip count — a torn permutation is wrong at any
     width. *)
  let* () = check (t.count > 0) (t.name ^ ": count must be positive") in
  let* () =
    List.fold_left
      (fun acc vi ->
        let* () = acc in
        match vi with
        | Vinsn.Vperm { pattern; _ } ->
            check
              (t.count mod Perm.period pattern = 0)
              (t.name ^ ": count not aligned to a permutation period")
        | _ -> Ok ())
      (Ok ()) t.body
  in
  let* () =
    List.fold_left
      (fun acc vi ->
        let* () = acc in
        check_vinsn t.name vi)
      (Ok ()) t.body
  in
  let body_scalar_images =
    List.concat_map (fun vi -> Vinsn.defs_vector vi @ Vinsn.uses_vector vi) t.body
    |> List.map Vreg.index
  in
  let* () = check_aliasing t in
  List.fold_left
    (fun acc (r, _) ->
      let* () = acc in
      let i = Reg.index r in
      let* () =
        check
          (i >= 1 && i <= 11)
          (t.name ^ ": reduction accumulator must be r1..r11")
      in
      check
        (not (List.mem i body_scalar_images))
        (t.name ^ ": reduction accumulator aliases a body vector register")
    )
    (Ok ()) t.reductions

let validate_program p =
  List.fold_left
    (fun acc -> function
      | Code _ -> acc
      | Loop l ->
          let* () = acc in
          validate l)
    (Ok ()) p.sections

let pp ppf (t : t) =
  Format.fprintf ppf "@[<v>vloop %s (count %d)@ " t.name t.count;
  List.iter
    (fun (r, v) -> Format.fprintf ppf "  acc %a = %d@ " Reg.pp r v)
    t.reductions;
  List.iter (fun vi -> Format.fprintf ppf "  %a@ " Vinsn.pp_asm vi) t.body;
  Format.fprintf ppf "@]"
