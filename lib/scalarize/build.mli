(** Concise constructors for hand-writing programs against the IR.

    Scalar helpers build {!Liquid_prog.Program.item}s for glue code;
    vector helpers build {!Liquid_visa.Vinsn.asm}s for loop bodies. *)

open Liquid_isa
open Liquid_visa
open Liquid_prog

val r : int -> Reg.t
(** Scalar register [ri]. *)

val v : int -> Vreg.t
(** Vector register [vi]. *)

(** {1 Scalar glue} *)

val label : string -> Program.item
(** A branch-target label. *)

val mov : Reg.t -> int -> Program.item
(** [mov rd #imm] — load an immediate. *)

val movr : Reg.t -> Reg.t -> Program.item
(** [mov rd rs] — register copy. *)

val movc : Cond.t -> Reg.t -> int -> Program.item
(** Conditional immediate move, e.g. [movlt rd #imm] — half of the
    saturation idiom (Table 1 category 5). *)

val dp : Opcode.t -> Reg.t -> Reg.t -> Insn.operand -> Program.item
(** Three-operand data-processing: [op rd rs operand]. *)

val addi : Reg.t -> Reg.t -> int -> Program.item
(** [add rd rs #imm]. *)

val subi : Reg.t -> Reg.t -> int -> Program.item
(** [sub rd rs #imm]. *)

val ld : ?esize:Esize.t -> ?signed:bool -> Reg.t -> string -> Insn.operand -> Program.item
(** Element-indexed load: the index operand is scaled by the element
    size automatically. *)

val st : ?esize:Esize.t -> Reg.t -> string -> Insn.operand -> Program.item
(** Element-indexed store; the index operand is scaled like {!ld}. *)

val cmp : Reg.t -> Insn.operand -> Program.item
(** Compare, setting the condition flags. *)

val b : ?cond:Cond.t -> string -> Program.item
(** (Conditional) branch to a label. *)

val bl : string -> Program.item
(** Ordinary branch-and-link (function call). *)

val bl_region : string -> Program.item
(** The region-marking branch-and-link: the call form the dynamic
    translator watches for (the paper's outlined-function hint). *)

val ret : Program.item
(** Return through the link register. *)

val halt : Program.item
(** Stop the machine; every program ends with one. *)

val ri : Reg.t -> Insn.operand
(** A register operand. *)

val i : int -> Insn.operand
(** An immediate operand. *)

val counted_loop :
  name:string -> count:int -> ind:Reg.t -> Program.item list -> Program.item list
(** [counted_loop ~name ~count ~ind body] wraps [body] in
    [mov ind,#0; L: body; add ind,ind,#1; cmp ind,#count; blt L]. *)

(** {1 Vector loop bodies} *)

val vld : ?esize:Esize.t -> ?signed:bool -> Vreg.t -> string -> Vinsn.asm
(** [vld dst arr] — load one vector of consecutive elements of [arr] at
    the loop induction index. *)

val vst : ?esize:Esize.t -> Vreg.t -> string -> Vinsn.asm
(** [vst src arr] — store one vector to [arr] at the induction index. *)

val vdp : Opcode.t -> Vreg.t -> Vreg.t -> Vinsn.vsrc -> Vinsn.asm
(** Generic lane-wise data-processing: [op dst src1 vsrc]. The named
    wrappers below fix the opcode. *)

val vadd : Vreg.t -> Vreg.t -> Vinsn.vsrc -> Vinsn.asm
(** Lane-wise addition. *)

val vsub : Vreg.t -> Vreg.t -> Vinsn.vsrc -> Vinsn.asm
(** Lane-wise subtraction. *)

val vmul : Vreg.t -> Vreg.t -> Vinsn.vsrc -> Vinsn.asm
(** Lane-wise multiplication. *)

val vand : Vreg.t -> Vreg.t -> Vinsn.vsrc -> Vinsn.asm
(** Lane-wise bitwise and (pairs with {!vmask} for merges). *)

val vorr : Vreg.t -> Vreg.t -> Vinsn.vsrc -> Vinsn.asm
(** Lane-wise bitwise or. *)

val veor : Vreg.t -> Vreg.t -> Vinsn.vsrc -> Vinsn.asm
(** Lane-wise bitwise exclusive-or. *)

val vmin : Vreg.t -> Vreg.t -> Vinsn.vsrc -> Vinsn.asm
(** Lane-wise signed minimum. *)

val vmax : Vreg.t -> Vreg.t -> Vinsn.vsrc -> Vinsn.asm
(** Lane-wise signed maximum. *)

val vshr : Vreg.t -> Vreg.t -> Vinsn.vsrc -> Vinsn.asm
(** Lane-wise arithmetic shift right. *)

val vshl : Vreg.t -> Vreg.t -> Vinsn.vsrc -> Vinsn.asm
(** Lane-wise shift left. *)

val vqadd : ?esize:Esize.t -> ?signed:bool -> Vreg.t -> Vreg.t -> Vreg.t -> Vinsn.asm
(** Saturating lane-wise addition at the given element size (the SIMD
    image of the compare/move saturation idiom). *)

val vqsub : ?esize:Esize.t -> ?signed:bool -> Vreg.t -> Vreg.t -> Vreg.t -> Vinsn.asm
(** Saturating lane-wise subtraction. *)

val vlds :
  ?esize:Esize.t -> ?signed:bool -> stride:int -> phase:int -> Vreg.t -> string -> Vinsn.asm
(** {e Extension}: de-interleaving load — lane [i] reads element
    [stride * (ind + i) + phase]. *)

val vsts :
  ?esize:Esize.t -> stride:int -> phase:int -> Vreg.t -> string -> Vinsn.asm
(** {e Extension}: interleaving store — lane [i] writes element
    [stride * (ind + i) + phase]. *)

val vld2 : ?esize:Esize.t -> ?signed:bool -> phase:int -> Vreg.t -> string -> Vinsn.asm
(** {!vlds} at stride 2 — the [VLD2] even/odd de-interleave. *)

val vst2 : ?esize:Esize.t -> phase:int -> Vreg.t -> string -> Vinsn.asm
(** {!vsts} at stride 2 — the [VST2] even/odd interleave. *)

val vtbl : ?esize:Esize.t -> ?signed:bool -> Vreg.t -> string -> Vreg.t -> Vinsn.asm
(** {e Extension} ([VTBL]): [vtbl dst table idx] — lane [i] of [dst]
    reads element [idx.(i)] of [table]. *)

val vbfly : int -> Vreg.t -> Vreg.t -> Vinsn.asm
(** [vbfly b dst src]: half-swap butterfly over blocks of [b]. *)

val vrev : int -> Vreg.t -> Vreg.t -> Vinsn.asm
(** [vrev b dst src]: element reversal over blocks of [b]. *)

val vrot : block:int -> by:int -> Vreg.t -> Vreg.t -> Vinsn.asm
(** Blockwise rotation (the stencil-neighbour permutation). *)

val vred : Opcode.t -> Reg.t -> Vreg.t -> Vinsn.asm
(** [vred op acc src]: fold [src]'s lanes into scalar accumulator [acc]
    with associative [op] (Table 1 category 4). *)

val vr : Vreg.t -> Vinsn.vsrc
(** A vector-register source operand. *)

val vi : int -> Vinsn.vsrc
(** A splatted scalar immediate source operand. *)

val vc : int array -> Vinsn.vsrc
(** A per-lane constant-vector source operand (length = pattern
    period; tiled to the accelerator width). *)

val vmask : int list -> Vinsn.vsrc
(** Lane-mask constant: one entry per lane of the pattern, [0] clears the
    lane, non-zero keeps it (encoded as all-ones words for use with
    [vand]). *)
