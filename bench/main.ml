(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (printed first, in the paper's row/series format),
   then times the machinery behind each experiment with Bechamel — one
   Test.make per table/figure plus microbenchmarks of the core pipeline
   stages.

   Run with: dune exec bench/main.exe

   Every run also writes BENCH.json (machine-readable: per-test ns/run,
   report wall time, simulated cycle throughput) through the shared
   Liquid_obs.Bench_report emitter, which schema-validates the file it
   just wrote. Pass --json-only to suppress the human-readable output
   and only write the file; --smoke shrinks the run to a seconds-scale
   self-check (no reports, a short-quota Bechamel over the simulation
   microbenchmarks only, two-workload throughput, a one-workload fault
   campaign) so the test suite can exercise the whole emit path and
   `compare.exe --smoke` has the core simulation numbers to gate on. *)

open Bechamel
open Toolkit
open Liquid_prog
open Liquid_scalarize
open Liquid_pipeline
open Liquid_harness
open Liquid_workloads
module Hwmodel = Liquid_hwmodel.Hwmodel

let find name = match Workload.find name with Some w -> w | None -> assert false
let json_only = Array.exists (fun a -> a = "--json-only") Sys.argv
let smoke = Array.exists (fun a -> a = "--smoke") Sys.argv

(* In --json-only mode the reports still run (their wall time is part of
   BENCH.json) but print into a formatter that discards everything. *)
let drain = Format.make_formatter (fun _ _ _ -> ()) (fun () -> ())
let out = if json_only then drain else Format.std_formatter

(* --- Part 1: regenerate the evaluation --- *)

let print_reports () =
  let pf fmt = Format.fprintf out fmt in
  pf "==============================================================@.";
  pf " Liquid SIMD: reproduction of the paper's evaluation (HPCA'07)@.";
  pf "==============================================================@.@.";
  pf "%a@.@." Experiments.pp_table2 (Experiments.table2 ());
  pf "%a@.@." Experiments.pp_table5 (Experiments.table5 ());
  pf "%a@.@." Experiments.pp_table6 (Experiments.table6 ());
  pf "%a@.@." Experiments.pp_figure6 (Experiments.figure6 ());
  pf "%a@.@." Experiments.pp_code_size (Experiments.code_size ());
  pf "%a@.@." Experiments.pp_ucode_cache (Experiments.ucode_cache ());
  pf "%a@.@." Experiments.pp_latency (Experiments.latency_ablation ());
  pf "%a@.@." Experiments.pp_overhead (Experiments.overhead_convergence ());
  pf "%a@.@."
    (Experiments.pp_sweep
       ~title:"Ablation: microcode cache capacity (8 hot loops round-robin)"
       ~value_label:"Entries")
    (Experiments.ucode_entries_ablation ());
  pf "%a@.@."
    (Experiments.pp_sweep
       ~title:"Ablation: microcode buffer capacity (101.tomcatv, largest loop 63 uops)"
       ~value_label:"Capacity")
    (Experiments.buffer_ablation ());
  pf "%a@.@."
    (Experiments.pp_sweep
       ~title:"Ablation: vector memory bus width (FIR, 16 lanes)"
       ~value_label:"Bus bytes")
    (Experiments.bus_ablation ());
  pf "%a@.@." Experiments.pp_kind (Experiments.translator_kind_ablation ())

(* --- Part 2: Bechamel timings, one per experiment --- *)

(* Table 2: the analytic synthesis model across widths. *)
let bench_table2 =
  Test.make ~name:"table2_synthesis"
    (Staged.stage (fun () ->
         List.map
           (fun lanes ->
             Hwmodel.estimate { Hwmodel.default_params with Hwmodel.lanes })
           [ 2; 4; 8; 16 ]))

(* Table 5: scalarizing every benchmark and sizing its outlined loops. *)
let bench_table5 =
  Test.make ~name:"table5_outlined_sizes"
    (Staged.stage (fun () ->
         List.map
           (fun (w : Workload.t) -> Codegen.outlined_sizes w.Workload.program)
           (Workload.all ())))

(* Table 6: a full simulation of the shortest-gap benchmark with region
   call tracking. *)
let bench_table6 =
  let w = find "MPEG2 Dec." in
  Test.make ~name:"table6_call_distances"
    (Staged.stage (fun () ->
         Experiments.region_first_gap (Runner.run w (Runner.Liquid 8)).Runner.run))

(* Figure 6: the headline measurement — baseline vs translated runs of
   the best-case benchmark. *)
let bench_figure6 =
  let w = find "FIR" in
  Test.make ~name:"figure6_speedup"
    (Staged.stage (fun () ->
         let base = (Runner.run w Runner.Baseline).Runner.run in
         let simd = (Runner.run w (Runner.Liquid 8)).Runner.run in
         Runner.speedup ~baseline:base simd))

(* Section 5 code size: encoding both binary flavours of every benchmark. *)
let bench_code_size =
  Test.make ~name:"sec5_code_size"
    (Staged.stage (fun () -> Experiments.code_size ()))

(* Section 5 microcode cache: a many-loop benchmark exercising
   install/evict. *)
let bench_ucode_cache =
  let w = find "104.hydro2d" in
  Test.make ~name:"sec5_ucode_cache"
    (Staged.stage (fun () ->
         (Runner.run w (Runner.Liquid 16)).Runner.run.Cpu.ucode_max_occupancy))

(* Section 5 translation latency: offline translation of the FFT regions. *)
let bench_translation =
  let w = find "FFT" in
  let image = Image.of_program (Codegen.liquid w.Workload.program) in
  Test.make ~name:"sec5_translation_latency"
    (Staged.stage (fun () -> Offline.translate_all ~image ~lanes:8 ()))

(* The same regions through the VLA backend: FFT's butterflies are
   recovered as table lookups there (offset-stream matching, guard
   emission, load/store collapse), so this times the predicated
   translation path with permutation recovery on top. *)
let bench_translation_vla =
  let w = find "FFT" in
  let image = Image.of_program (Codegen.liquid w.Workload.program) in
  Test.make ~name:"sec5_translation_latency_vla"
    (Staged.stage (fun () ->
         Offline.translate_all ~backend:Liquid_translate.Backend.vla ~image
           ~lanes:8 ()))

(* And through the RVV backend: the same permutation recovery plus the
   per-region LMUL grading pass (live-value pressure scan, group-factor
   selection, width re-derivation) and the vsetvl stripmine rewrite of
   every loop header and back-edge. *)
let bench_translation_rvv =
  let w = find "FFT" in
  let image = Image.of_program (Codegen.liquid w.Workload.program) in
  Test.make ~name:"sec5_translation_latency_rvv"
    (Staged.stage (fun () ->
         Offline.translate_all ~backend:Liquid_translate.Backend.rvv ~image
           ~lanes:8 ()))

(* Microbenchmarks of the individual pipeline stages. *)

let bench_scalarize_fft =
  let stage =
    Kernels.fft_stage ~name:"bfft" ~count:128 ~block:8 ~re:"re" ~im:"im"
      ~wr:"wr" ~wi:"wi"
  in
  Test.make ~name:"core_scalarize_fft"
    (Staged.stage (fun () -> Scalarize.scalarize stage))

let bench_encode =
  let w = find "171.swim" in
  let image = Image.of_program (Codegen.liquid w.Workload.program) in
  Test.make ~name:"core_encode_binary"
    (Staged.stage (fun () -> Encode.encode image.Image.code))

(* The same simulation with the translation-block engine on (the
   default) and off: the pair is the engine's own speedup measurement,
   and `bench/compare.exe` watches both so a regression in either
   execution strategy is caught. *)
let bench_simulate_scalar =
  let w = find "GSM Dec." in
  let image = Image.of_program (Codegen.baseline w.Workload.program) in
  Test.make ~name:"core_simulate_scalar"
    (Staged.stage (fun () -> Cpu.run ~config:Cpu.scalar_config image))

let bench_simulate_scalar_noblocks =
  let w = find "GSM Dec." in
  let image = Image.of_program (Codegen.baseline w.Workload.program) in
  let config = { Cpu.scalar_config with Cpu.blocks = false } in
  Test.make ~name:"core_simulate_scalar_noblocks"
    (Staged.stage (fun () -> Cpu.run ~config image))

(* The same simulation with the trace-superblock tier off (blocks still
   on): the pair is the tier's own speedup measurement on the
   image-block path. *)
let bench_simulate_scalar_nosuper =
  let w = find "GSM Dec." in
  let image = Image.of_program (Codegen.baseline w.Workload.program) in
  let config = { Cpu.scalar_config with Cpu.superblocks = false } in
  Test.make ~name:"core_simulate_scalar_nosuper"
    (Staged.stage (fun () -> Cpu.run ~config image))

(* MPEG2 Dec. is the region-richest workload (Table 6's shortest call
   gaps): after translation its time is dominated by microcode replay,
   so this pair exercises the engine's pre-compiled ucode segments
   rather than the image-block path the scalar pair already covers. *)
let bench_simulate_liquid =
  let w = find "MPEG2 Dec." in
  let image = Image.of_program (Codegen.liquid w.Workload.program) in
  Test.make ~name:"core_simulate_liquid"
    (Staged.stage (fun () -> Cpu.run ~config:(Cpu.liquid_config ~lanes:8) image))

let bench_simulate_liquid_noblocks =
  let w = find "MPEG2 Dec." in
  let image = Image.of_program (Codegen.liquid w.Workload.program) in
  let config = { (Cpu.liquid_config ~lanes:8) with Cpu.blocks = false } in
  Test.make ~name:"core_simulate_liquid_noblocks"
    (Staged.stage (fun () -> Cpu.run ~config image))

let bench_simulate_liquid_nosuper =
  let w = find "MPEG2 Dec." in
  let image = Image.of_program (Codegen.liquid w.Workload.program) in
  let config = { (Cpu.liquid_config ~lanes:8) with Cpu.superblocks = false } in
  Test.make ~name:"core_simulate_liquid_nosuper"
    (Staged.stage (fun () -> Cpu.run ~config image))

(* GSM Enc. on the 16-lane VLA target is the predication headline (the
   40-sample subframes run predicated at full width instead of capping
   at effective width 8): this times microcode replay where most vector
   operations carry a governing predicate. *)
let bench_simulate_vla =
  let w = find "GSM Enc." in
  let image = Image.of_program (Codegen.liquid w.Workload.program) in
  let config =
    {
      (Cpu.liquid_config ~lanes:16) with
      Cpu.backend = Liquid_translate.Backend.vla;
    }
  in
  Test.make ~name:"core_simulate_vla"
    (Staged.stage (fun () -> Cpu.run ~config image))

let bench_simulate_vla_nosuper =
  let w = find "GSM Enc." in
  let image = Image.of_program (Codegen.liquid w.Workload.program) in
  let config =
    {
      (Cpu.liquid_config ~lanes:16) with
      Cpu.backend = Liquid_translate.Backend.vla;
      Cpu.superblocks = false;
    }
  in
  Test.make ~name:"core_simulate_vla_nosuper"
    (Staged.stage (fun () -> Cpu.run ~config image))

(* FFT on the 8-lane VLA target is the permutation-recovery headline:
   before the table-lookup lowering its butterfly regions aborted as
   unportable and the whole workload degraded to scalar execution;
   now every region vectorizes (42516 -> 23676 simulated cycles, 1.80x)
   and this times the replay of Tbl/Tblst microcode. *)
let bench_simulate_vla_fft =
  let w = find "FFT" in
  let image = Image.of_program (Codegen.liquid w.Workload.program) in
  let config =
    {
      (Cpu.liquid_config ~lanes:8) with
      Cpu.backend = Liquid_translate.Backend.vla;
    }
  in
  Test.make ~name:"core_simulate_vla_fft"
    (Staged.stage (fun () -> Cpu.run ~config image))

(* MPEG2 Dec. on the 8-lane RVV target: the same microcode-replay-bound
   workload as core_simulate_liquid, but every trip passes through the
   vsetvl grant (full grants take the unmasked Vl fast path; the final
   trip of each loop replays under a shortened grant) and low-pressure
   regions run LMUL-grouped at twice the hardware width. The
   rvv/liquid ratio of this pair is gated by bench/compare.exe. *)
let bench_simulate_rvv =
  let w = find "MPEG2 Dec." in
  let image = Image.of_program (Codegen.liquid w.Workload.program) in
  let config =
    {
      (Cpu.liquid_config ~lanes:8) with
      Cpu.backend = Liquid_translate.Backend.rvv;
    }
  in
  Test.make ~name:"core_simulate_rvv"
    (Staged.stage (fun () -> Cpu.run ~config image))

(* FFT on the 8-lane RVV target: permutation recovery (Tblidx/Tbl
   replay) under vsetvl grants, with the register-hungry butterfly
   regions staying at m1 while the rest group to m2 — the
   mixed-grouping headline. *)
let bench_simulate_rvv_fft =
  let w = find "FFT" in
  let image = Image.of_program (Codegen.liquid w.Workload.program) in
  let config =
    {
      (Cpu.liquid_config ~lanes:8) with
      Cpu.backend = Liquid_translate.Backend.rvv;
    }
  in
  Test.make ~name:"core_simulate_rvv_fft"
    (Staged.stage (fun () -> Cpu.run ~config image))

let bench_hwmodel =
  Test.make ~name:"core_hwmodel_estimate"
    (Staged.stage (fun () -> Hwmodel.estimate Hwmodel.default_params))

let tests =
  [
    bench_table2;
    bench_table5;
    bench_table6;
    bench_figure6;
    bench_code_size;
    bench_ucode_cache;
    bench_translation;
    bench_translation_vla;
    bench_translation_rvv;
    bench_scalarize_fft;
    bench_encode;
    bench_simulate_scalar;
    bench_simulate_scalar_noblocks;
    bench_simulate_scalar_nosuper;
    bench_simulate_liquid;
    bench_simulate_liquid_noblocks;
    bench_simulate_liquid_nosuper;
    bench_simulate_vla;
    bench_simulate_vla_nosuper;
    bench_simulate_vla_fft;
    bench_simulate_rvv;
    bench_simulate_rvv_fft;
    bench_hwmodel;
  ]

(* The smoke run keeps Bechamel but only over the simulation
   microbenchmarks (short quota): enough signal for the runtest-wired
   `compare.exe --smoke` gate without the full timing sweep. *)
let smoke_tests =
  [
    bench_simulate_scalar;
    bench_simulate_scalar_nosuper;
    bench_simulate_liquid;
    bench_simulate_liquid_nosuper;
    bench_simulate_vla;
    bench_simulate_vla_nosuper;
    bench_simulate_vla_fft;
    bench_simulate_rvv;
    bench_simulate_rvv_fft;
  ]

let run_benchmarks ~quota tests =
  Format.fprintf out
    "==============================================================@.";
  Format.fprintf out " Bechamel timings (wall-clock per invocation)@.";
  Format.fprintf out
    "==============================================================@.";
  let cfg = Benchmark.cfg ~limit:20 ~quota:(Time.second quota) () in
  let instances = Instance.[ monotonic_clock ] in
  let estimates = ref [] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let ols =
        Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
      in
      let analysis = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] ->
              estimates := (name, est) :: !estimates;
              Format.fprintf out "  %-28s %12.0f ns/run@." name est
          | Some _ | None ->
              Format.fprintf out "  %-28s (no estimate)@." name)
        analysis)
    tests;
  List.rev !estimates

(* Simulated-cycle throughput: the given workloads under the four
   headline variants (scalar baseline, Liquid on the fixed 8-lane
   target, the 8-lane VLA target and the 8-lane RVV target), fresh
   simulations (no memo cache), cycles per wall second. Run with [blocks] on and off and
   with the superblock tier on and off; the identical sweep under the
   three execution strategies is the block engine's (and the trace
   tier's) speedup measurement — and a bit-identity smoke check: the
   cycle totals must match exactly. *)
let sim_throughput ~blocks ~superblocks workloads =
  let cycles_of w v =
    (Runner.run ~blocks ~superblocks w v).Runner.run.Cpu.stats
      .Liquid_machine.Stats.cycles
  in
  let t0 = Unix.gettimeofday () in
  let cycles =
    List.fold_left
      (fun acc (w : Workload.t) ->
        acc + cycles_of w Runner.Baseline
        + cycles_of w (Runner.Liquid 8)
        + cycles_of w (Runner.Liquid_vla 8)
        + cycles_of w (Runner.Liquid_rvv 8))
      0 workloads
  in
  let wall = Unix.gettimeofday () -. t0 in
  (cycles, wall, float_of_int cycles /. wall)

(* Robustness overhead: one seeded fault campaign (one width, every
   abort class plus corruption/eviction/watchdog) timed wall-clock, so
   regressions in the graceful-degradation path show up next to the
   perf numbers. *)
let fault_campaign workloads =
  let t0 = Unix.gettimeofday () in
  let report =
    Liquid_faults.Campaign.run ~workloads ~widths:[ 8 ] ~seed:2007 ()
  in
  let wall = Unix.gettimeofday () -. t0 in
  (report, wall)

(* Sweep-service throughput: a fixed job script — every workload under
   the four headline variants, each job submitted twice so the reply
   dedup is part of what's measured — through the in-process entry
   point, jobs replied per wall second. Fresh runner cache so the
   number reflects real simulations plus the supervision envelope, not
   a warm memo. *)
let service_throughput workloads =
  Runner.clear_cache ();
  let buf = Buffer.create 1024 in
  List.iter
    (fun (w : Workload.t) ->
      List.iter
        (fun v ->
          for _ = 1 to 2 do
            Buffer.add_string buf
              (Printf.sprintf "{\"workload\": %S, \"variant\": %S}\n"
                 w.Workload.name v)
          done)
        [ "baseline"; "liquid:8"; "vla:8"; "rvv:8" ])
    workloads;
  let jobs = 8 * List.length workloads in
  let t0 = Unix.gettimeofday () in
  let replies = Liquid_service.Service.run_script (Buffer.contents buf) in
  let wall = Unix.gettimeofday () -. t0 in
  let replied =
    List.length
      (List.filter
         (fun l -> String.trim l <> "")
         (String.split_on_char '\n' replies))
  in
  if replied <> jobs then
    failwith
      (Printf.sprintf "service throughput: %d jobs submitted, %d replies"
         jobs replied);
  float_of_int jobs /. wall

(* Differential-fuzz throughput: a short fixed-seed campaign (every
   case through the 53-cell oracle matrix, faults included), generated
   cases per wall second — so a slowdown in the generator, the oracle
   fan-out or the differ shows up next to the other rates. The run is
   also a correctness tripwire: any divergence fails the bench. *)
let fuzz_throughput ~cases =
  let t0 = Unix.gettimeofday () in
  let report = Liquid_fuzz.Campaign.run ~seed:2026 ~cases () in
  let wall = Unix.gettimeofday () -. t0 in
  if report.Liquid_fuzz.Campaign.r_divergent <> [] then
    failwith
      (Printf.sprintf "fuzz throughput: %d divergent cases at seed 2026"
         (List.length report.Liquid_fuzz.Campaign.r_divergent));
  float_of_int cases /. wall

let () =
  let t0 = Unix.gettimeofday () in
  if not smoke then print_reports ();
  let report_wall_s = Unix.gettimeofday () -. t0 in
  let estimates =
    if smoke then run_benchmarks ~quota:0.05 smoke_tests
    else run_benchmarks ~quota:0.5 tests
  in
  Runner.clear_cache ();
  let sim_workloads =
    if smoke then [ find "FIR"; find "GSM Dec." ] else Workload.all ()
  in
  let fault_workloads = if smoke then [ find "FIR" ] else Workload.all () in
  let sim_cycles, sim_wall_s, sim_cycles_per_s =
    sim_throughput ~blocks:true ~superblocks:true sim_workloads
  in
  let nosuper_cycles, nosuper_wall_s, _ =
    sim_throughput ~blocks:true ~superblocks:false sim_workloads
  in
  let off_cycles, off_wall_s, _ =
    sim_throughput ~blocks:false ~superblocks:false sim_workloads
  in
  if off_cycles <> sim_cycles then
    failwith
      (Printf.sprintf
         "block engine not bit-identical: %d cycles with blocks, %d without"
         sim_cycles off_cycles);
  if nosuper_cycles <> sim_cycles then
    failwith
      (Printf.sprintf
         "superblock tier not bit-identical: %d cycles with superblocks, %d \
          without"
         sim_cycles nosuper_cycles);
  let block_speedup = off_wall_s /. sim_wall_s in
  let super_speedup = nosuper_wall_s /. sim_wall_s in
  let fault_report, fault_wall_s = fault_campaign fault_workloads in
  let service_jobs_s = service_throughput sim_workloads in
  let fuzz_cases_per_s = fuzz_throughput ~cases:(if smoke then 20 else 200) in
  (* Single shared emitter (Liquid_obs.Bench_report): builds the typed
     record, writes BENCH.json, and re-validates the written file
     against the documented schema — a shape regression fails here. *)
  Liquid_obs.Bench_report.write ~path:"BENCH.json"
    {
      Liquid_obs.Bench_report.b_report_wall_s = report_wall_s;
      b_sim_cycles = sim_cycles;
      b_sim_wall_s = sim_wall_s;
      b_sim_cycles_per_s = sim_cycles_per_s;
      b_block_speedup = block_speedup;
      b_super_speedup = super_speedup;
      b_fault_wall_s = fault_wall_s;
      b_fault_cases = List.length fault_report.Liquid_faults.Campaign.r_cases;
      b_fault_survived = Liquid_faults.Campaign.survived fault_report;
      b_service_jobs_s = service_jobs_s;
      b_fuzz_cases_per_s = fuzz_cases_per_s;
      b_tests =
        List.map
          (fun (name, ns) ->
            { Liquid_obs.Bench_report.t_name = name; t_ns_per_run = ns })
          estimates;
    };
  if not json_only then
    Format.printf
      "@.report wall %.3f s; block speedup %.2fx; superblock speedup %.2fx; \
       fault campaign %.3f s; service %.1f jobs/s; fuzz %.1f cases/s; \
       BENCH.json written@."
      report_wall_s block_speedup super_speedup fault_wall_s service_jobs_s
      fuzz_cases_per_s
