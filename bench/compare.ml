(* Compare two BENCH.json files and fail on performance regressions.

   Usage: dune exec bench/compare.exe -- OLD.json NEW.json [--smoke]

   Prints a per-test table of ns/run deltas. Exits non-zero when any
   `core_*` test (the pipeline-stage microbenchmarks — the numbers this
   repo's perf work is judged on) regresses by more than 10%, or when
   the VLA simulation microbenchmark exceeds 1.2x its fixed-width
   counterpart (`core_simulate_vla` vs `core_simulate_liquid` in the
   NEW file — the all-true predicate fast path's gate), or when the
   RVV simulation microbenchmark exceeds 1.35x the same fixed-width
   counterpart (`core_simulate_rvv` vs `core_simulate_liquid` — the
   full-grant fast path's and LMUL grouping's gate), or when a
   `core_simulate_*` row is slower than its `_nosuper` twin (the
   trace-superblock tier's gate), or when either
   file is missing, unparsable, or schema-invalid. Tests present in
   only one file are reported but never fail the comparison, so adding
   or renaming a benchmark does not break an older baseline.

   --smoke relaxes all gates (regression 2.0x, VLA/RVV ratios 2.0x): the
   runtest-wired smoke run measures with a short Bechamel quota on a
   loaded CI machine, so it only catches order-of-magnitude breakage,
   not noise. *)

module Json = Liquid_obs.Json
module Bench_report = Liquid_obs.Bench_report

let smoke = Array.exists (fun a -> a = "--smoke") Sys.argv
let threshold = if smoke then 2.0 else 1.10
let vla_ratio_limit = if smoke then 2.0 else 1.2
(* The RVV bound is looser than the VLA one: every stripmine trip pays
   the vsetvl grant (two per loop body: header and back-edge), which
   measures ~1.2x the fixed-width replay on MPEG2 Dec.; 1.35 leaves
   noise headroom while still catching a broken fast path. *)
let rvv_ratio_limit = if smoke then 2.0 else 1.35

let die fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 2) fmt

let load path =
  (match Bench_report.validate_file path with
  | [] -> ()
  | errs -> die "%s: %s" path (String.concat "; " errs));
  match Json.of_string (In_channel.with_open_text path In_channel.input_all) with
  | Error e -> die "%s: %s" path e
  | Ok j -> j

(* (name, ns_per_run) pairs of the "tests" list, in file order. *)
let tests j =
  let field name = function
    | Json.Obj fields -> List.assoc_opt name fields
    | _ -> None
  in
  let num = function
    | Some (Json.Float f) -> Some f
    | Some (Json.Int i) -> Some (float_of_int i)
    | _ -> None
  in
  match field "tests" j with
  | Some (Json.List ts) ->
      List.filter_map
        (fun t ->
          match (field "name" t, num (field "ns_per_run" t)) with
          | Some (Json.Str n), Some ns -> Some (n, ns)
          | _ -> None)
        ts
  | _ -> []

let () =
  let old_path, new_path =
    match
      List.filter
        (fun a -> a <> "--smoke")
        (List.tl (Array.to_list Sys.argv))
    with
    | [ o; n ] -> (o, n)
    | _ -> die "usage: compare OLD.json NEW.json [--smoke]"
  in
  let old_doc = load old_path in
  let new_doc = load new_path in
  let old_tests = tests old_doc in
  let new_tests = tests new_doc in
  let regressions = ref [] in
  Printf.printf "%-32s %12s %12s %8s\n" "test" "old ns/run" "new ns/run"
    "ratio";
  List.iter
    (fun (name, nw) ->
      match List.assoc_opt name old_tests with
      | None -> Printf.printf "%-32s %12s %12.0f %8s\n" name "-" nw "new"
      | Some old ->
          let ratio = if old > 0.0 then nw /. old else 1.0 in
          let core = String.length name >= 5 && String.sub name 0 5 = "core_" in
          let flag =
            if core && ratio > threshold then begin
              regressions := name :: !regressions;
              "  REGRESSED"
            end
            else ""
          in
          Printf.printf "%-32s %12.0f %12.0f %7.2fx%s\n" name old nw ratio flag)
    new_tests;
  List.iter
    (fun (name, old) ->
      if not (List.mem_assoc name new_tests) then
        Printf.printf "%-32s %12.0f %12s %8s\n" name old "-" "gone")
    old_tests;
  (* VLA-vs-fixed gate: the predicated backend's simulation time must
     stay within [vla_ratio_limit] of the fixed-width one. Measured on
     the NEW file alone (it is a property of this build, not a delta);
     skipped when either test is absent so older baselines and trimmed
     runs still compare. *)
  let vla_bad =
    match
      ( List.assoc_opt "core_simulate_vla" new_tests,
        List.assoc_opt "core_simulate_liquid" new_tests )
    with
    | Some vla, Some liquid when liquid > 0.0 ->
        let ratio = vla /. liquid in
        Printf.printf "%-32s %12s %12s %7.2fx%s\n" "vla/liquid ratio" "-" "-"
          ratio
          (if ratio > vla_ratio_limit then "  EXCEEDS LIMIT" else "");
        ratio > vla_ratio_limit
    | _ ->
        Printf.printf "%-32s %12s %12s %8s\n" "vla/liquid ratio" "-" "-" "n/a";
        false
  in
  (* RVV-vs-fixed gate, same shape: the vsetvl/LMUL backend's simulation
     time must stay within [rvv_ratio_limit] of the fixed-width one.
     Both rows simulate the same workload (MPEG2 Dec., 8 lanes), so the
     ratio isolates the backend: full grants must keep taking the
     unmasked fast path and LMUL grouping must not cost more than the
     trips it saves. NEW file only; skipped when either row is absent. *)
  let rvv_bad =
    match
      ( List.assoc_opt "core_simulate_rvv" new_tests,
        List.assoc_opt "core_simulate_liquid" new_tests )
    with
    | Some rvv, Some liquid when liquid > 0.0 ->
        let ratio = rvv /. liquid in
        Printf.printf "%-32s %12s %12s %7.2fx%s\n" "rvv/liquid ratio" "-" "-"
          ratio
          (if ratio > rvv_ratio_limit then "  EXCEEDS LIMIT" else "");
        ratio > rvv_ratio_limit
    | _ ->
        Printf.printf "%-32s %12s %12s %8s\n" "rvv/liquid ratio" "-" "-" "n/a";
        false
  in
  (* Service-throughput gate: jobs/s is a rate (higher is better), so
     the NEW value must not fall below OLD divided by the regression
     threshold. Skipped when either file predates the row, so older
     baselines still compare. *)
  let service_bad =
    let rate j =
      match Json.member "service_throughput_jobs_s" j with
      | Some (Json.Float f) -> Some f
      | Some (Json.Int i) -> Some (float_of_int i)
      | _ -> None
    in
    match (rate old_doc, rate new_doc) with
    | Some old, Some nw when old > 0.0 ->
        let ratio = old /. nw in
        Printf.printf "%-32s %12.1f %12.1f %7.2fx%s\n"
          "service_throughput_jobs_s" old nw ratio
          (if ratio > threshold then "  REGRESSED" else "");
        ratio > threshold
    | _ ->
        Printf.printf "%-32s %12s %12s %8s\n" "service_throughput_jobs_s" "-"
          "-" "n/a";
        false
  in
  (* Superblock gate. `super_speedup` (the one-shot sweep's wall-clock
     ratio with the trace-superblock tier off vs on) is ordering-biased
     — the superblock pass runs first and pays every cold-start cost —
     and swings ~10% between runs of identical code (0.96 and 0.87 were
     both observed for one build), so a delta gate on it would flag
     noise. It is printed for the record only; the enforced check reads
     the quota-averaged microbenchmarks instead: each `core_simulate_*`
     row must be no slower than its `_nosuper` twin (floor
     [super_floor], relaxed under --smoke where the short quota is
     itself noisy). Rows absent from the NEW file are skipped. *)
  let super_floor = if smoke then 0.5 else 1.0 in
  let super_bad =
    let one_shot j =
      match Json.member "super_speedup" j with
      | Some (Json.Float f) -> Some f
      | Some (Json.Int i) -> Some (float_of_int i)
      | _ -> None
    in
    (match (one_shot old_doc, one_shot new_doc) with
    | Some old, Some nw ->
        Printf.printf "%-32s %12.2f %12.2f %8s\n" "super_speedup (one-shot)"
          old nw "info"
    | _ ->
        Printf.printf "%-32s %12s %12s %8s\n" "super_speedup (one-shot)" "-"
          "-" "n/a");
    let tier_gain base =
      match
        ( List.assoc_opt (base ^ "_nosuper") new_tests,
          List.assoc_opt base new_tests )
      with
      | Some off, Some on when on > 0.0 ->
          let ratio = off /. on in
          Printf.printf "%-32s %12s %12s %7.2fx%s\n"
            (base ^ " super gain") "-" "-" ratio
            (if ratio < super_floor then "  BELOW FLOOR" else "");
          ratio < super_floor
      | _ -> false
    in
    let scalar_bad = tier_gain "core_simulate_scalar" in
    let liquid_bad = tier_gain "core_simulate_liquid" in
    scalar_bad || liquid_bad
  in
  (* Fuzz-throughput gate: same rule as the service rate — cases/s
     must not fall below OLD divided by the regression threshold.
     Skipped when either file predates the row. *)
  let fuzz_bad =
    let rate j =
      match Json.member "fuzz_cases_per_s" j with
      | Some (Json.Float f) -> Some f
      | Some (Json.Int i) -> Some (float_of_int i)
      | _ -> None
    in
    match (rate old_doc, rate new_doc) with
    | Some old, Some nw when old > 0.0 ->
        let ratio = old /. nw in
        Printf.printf "%-32s %12.1f %12.1f %7.2fx%s\n" "fuzz_cases_per_s" old
          nw ratio
          (if ratio > threshold then "  REGRESSED" else "");
        ratio > threshold
    | _ ->
        Printf.printf "%-32s %12s %12s %8s\n" "fuzz_cases_per_s" "-" "-" "n/a";
        false
  in
  (match List.rev !regressions with
  | [] -> ()
  | names ->
      Printf.eprintf "regression (>%.0f%%) in: %s\n"
        ((threshold -. 1.0) *. 100.0)
        (String.concat ", " names);
      exit 1);
  if vla_bad then begin
    Printf.eprintf "core_simulate_vla exceeds %.1fx core_simulate_liquid\n"
      vla_ratio_limit;
    exit 1
  end;
  if rvv_bad then begin
    Printf.eprintf "core_simulate_rvv exceeds %.1fx core_simulate_liquid\n"
      rvv_ratio_limit;
    exit 1
  end;
  if service_bad then begin
    Printf.eprintf "service_throughput_jobs_s regressed more than %.0f%%\n"
      ((threshold -. 1.0) *. 100.0);
    exit 1
  end;
  if fuzz_bad then begin
    Printf.eprintf "fuzz_cases_per_s regressed more than %.0f%%\n"
      ((threshold -. 1.0) *. 100.0);
    exit 1
  end;
  if super_bad then begin
    Printf.eprintf
      "superblock tier slower than its _nosuper twin (floor %.2fx)\n"
      super_floor;
    exit 1
  end
