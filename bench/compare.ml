(* Compare two BENCH.json files and fail on performance regressions.

   Usage: dune exec bench/compare.exe -- OLD.json NEW.json

   Prints a per-test table of ns/run deltas. Exits non-zero when any
   `core_*` test (the pipeline-stage microbenchmarks — the numbers this
   repo's perf work is judged on) regresses by more than 10%, or when
   either file is missing, unparsable, or schema-invalid. Tests present
   in only one file are reported but never fail the comparison, so
   adding or renaming a benchmark does not break an older baseline. *)

module Json = Liquid_obs.Json
module Bench_report = Liquid_obs.Bench_report

let threshold = 1.10

let die fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 2) fmt

let load path =
  (match Bench_report.validate_file path with
  | [] -> ()
  | errs -> die "%s: %s" path (String.concat "; " errs));
  match Json.of_string (In_channel.with_open_text path In_channel.input_all) with
  | Error e -> die "%s: %s" path e
  | Ok j -> j

(* (name, ns_per_run) pairs of the "tests" list, in file order. *)
let tests j =
  let field name = function
    | Json.Obj fields -> List.assoc_opt name fields
    | _ -> None
  in
  let num = function
    | Some (Json.Float f) -> Some f
    | Some (Json.Int i) -> Some (float_of_int i)
    | _ -> None
  in
  match field "tests" j with
  | Some (Json.List ts) ->
      List.filter_map
        (fun t ->
          match (field "name" t, num (field "ns_per_run" t)) with
          | Some (Json.Str n), Some ns -> Some (n, ns)
          | _ -> None)
        ts
  | _ -> []

let () =
  let old_path, new_path =
    match Sys.argv with
    | [| _; o; n |] -> (o, n)
    | _ -> die "usage: compare OLD.json NEW.json"
  in
  let old_tests = tests (load old_path) in
  let new_tests = tests (load new_path) in
  let regressions = ref [] in
  Printf.printf "%-32s %12s %12s %8s\n" "test" "old ns/run" "new ns/run"
    "ratio";
  List.iter
    (fun (name, nw) ->
      match List.assoc_opt name old_tests with
      | None -> Printf.printf "%-32s %12s %12.0f %8s\n" name "-" nw "new"
      | Some old ->
          let ratio = if old > 0.0 then nw /. old else 1.0 in
          let core = String.length name >= 5 && String.sub name 0 5 = "core_" in
          let flag =
            if core && ratio > threshold then begin
              regressions := name :: !regressions;
              "  REGRESSED"
            end
            else ""
          in
          Printf.printf "%-32s %12.0f %12.0f %7.2fx%s\n" name old nw ratio flag)
    new_tests;
  List.iter
    (fun (name, old) ->
      if not (List.mem_assoc name new_tests) then
        Printf.printf "%-32s %12.0f %12s %8s\n" name old "-" "gone")
    old_tests;
  match List.rev !regressions with
  | [] -> ()
  | names ->
      Printf.eprintf "regression (>%.0f%%) in: %s\n"
        ((threshold -. 1.0) *. 100.0)
        (String.concat ", " names);
      exit 1
