(* The fuzzing tier itself: replay of the pinned regression corpus and
   a fixed-seed mini-campaign. Both must be completely clean — every
   corpus entry is a bug the campaign once surfaced, and a nonzero
   divergence count in the mini-campaign means a fresh translator or
   semantics regression. [LIQUID_FUZZ_CASES] scales the campaign up for
   an out-of-CI soak (the acceptance runs use 100000). *)

module Fuzz = Liquid_fuzz
module Campaign = Fuzz.Campaign

let check = Alcotest.check
let check_int = Alcotest.(check int)

let sig_to_string s =
  String.concat " " (List.map (fun (l, k) -> l ^ "/" ^ k) s)

let test_corpus_clean () =
  List.iter
    (fun (name, p) ->
      let o = Fuzz.Differ.run_case p in
      check Alcotest.string
        (Printf.sprintf "corpus %s replays clean" name)
        ""
        (sig_to_string (Fuzz.Differ.signature o));
      Alcotest.(check bool)
        (Printf.sprintf "corpus %s exercised the translator" name)
        true (o.Fuzz.Differ.o_installs > 0))
    Fuzz_corpus.Corpus.cases

let campaign_cases () =
  match Sys.getenv_opt "LIQUID_FUZZ_CASES" with
  | Some n -> (
      match int_of_string_opt n with
      | Some n when n > 0 -> n
      | Some _ | None ->
          invalid_arg "LIQUID_FUZZ_CASES must be a positive integer")
  | None -> 120

let test_mini_campaign () =
  let cases = campaign_cases () in
  let r = Campaign.run ~seed:2026 ~cases () in
  check_int "every case is clean" cases r.Campaign.r_clean;
  (match r.Campaign.r_divergent with
  | [] -> ()
  | l ->
      Alcotest.failf "divergent cases: %s"
        (String.concat ", " (List.map (fun (i, _) -> string_of_int i) l)));
  (* matrix accounting: 50 fault-free runs per case (scalar reference,
     baseline, and per width the three backends x three engine tiers
     plus three oracles) plus 3 seeded fault runs, and the
     clean/divergent split partitions the cases *)
  check_int "runs per case" (cases * 53) r.Campaign.r_runs;
  check_int "clean + divergent = cases" cases
    (r.Campaign.r_clean + List.length r.Campaign.r_divergent);
  check_int "divergence histogram is empty" 0
    (List.fold_left (fun n (_, c) -> n + c) 0 r.Campaign.r_div_hist);
  Alcotest.(check bool)
    "translations installed" true (r.Campaign.r_installs > 0);
  List.iter
    (fun (cls, n) ->
      Alcotest.(check bool)
        (Printf.sprintf "abort class %s count positive" cls)
        true (n > 0))
    r.Campaign.r_aborts;
  (* the report must pass its own schema *)
  ignore (Campaign.to_json r)

(* Every permutation the generator emits is a fixed-geometry catalog
   pattern read from a loop-invariant offset array — exactly the class
   the VLA and RVV backends recover as a table lookup. A seeded
   fault-free campaign must therefore never abort a translation as
   unportable-permutation, on any backend, at any width. *)
let test_no_unportable_aborts () =
  let cases = 30 in
  let total = Hashtbl.create 8 in
  for index = 0 to cases - 1 do
    let p = Fuzz.Gen.generate ~seed:2026 ~index in
    let o = Fuzz.Differ.run_case p in
    check Alcotest.string
      (Printf.sprintf "case %d runs clean" index)
      ""
      (sig_to_string (Fuzz.Differ.signature o));
    List.iter
      (fun (cls, n) ->
        Hashtbl.replace total cls
          (n + Option.value ~default:0 (Hashtbl.find_opt total cls)))
      o.Fuzz.Differ.o_aborts
  done;
  check_int "zero unportable-permutation aborts" 0
    (Option.value ~default:0 (Hashtbl.find_opt total "unportable-permutation"))

let test_generator_deterministic () =
  let p1 = Fuzz.Gen.generate ~seed:7 ~index:42 in
  let p2 = Fuzz.Gen.generate ~seed:7 ~index:42 in
  check Alcotest.string "same (seed, index), same program"
    (Format.asprintf "%a" Fuzz.Gen.pp_program p1)
    (Format.asprintf "%a" Fuzz.Gen.pp_program p2);
  Alcotest.(check bool)
    "different index, different program" true
    (Format.asprintf "%a" Fuzz.Gen.pp_program p1
    <> Format.asprintf "%a" Fuzz.Gen.pp_program
         (Fuzz.Gen.generate ~seed:7 ~index:43))

let test_shrinker_soundness () =
  (* The shrinker must refuse candidates that drop a def but keep a
     use: minimizing under an always-true predicate walks the whole
     candidate lattice, and every accepted step must stay a valid,
     scalar-sound program. *)
  List.iter
    (fun (name, p) ->
      let shrunk = Fuzz.Shrink.minimize ~failing:(fun _ -> true) p in
      match Liquid_scalarize.Vloop.validate_program shrunk with
      | Ok () -> ()
      | Error m ->
          Alcotest.failf "shrink of %s produced invalid program: %s" name m)
    Fuzz_corpus.Corpus.cases

let tests =
  [
    Alcotest.test_case "corpus: replay clean" `Slow test_corpus_clean;
    Alcotest.test_case "campaign: fixed-seed mini-run" `Slow test_mini_campaign;
    Alcotest.test_case "campaign: permutes recover, no unportable aborts"
      `Slow test_no_unportable_aborts;
    Alcotest.test_case "gen: deterministic" `Quick test_generator_deterministic;
    Alcotest.test_case "shrink: sound under any predicate" `Quick
      test_shrinker_soundness;
  ]
