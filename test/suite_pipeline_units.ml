(* Unit tests for the remaining pipeline pieces: the microcode cache's
   LRU/readiness behaviour, the Vec growable array, events, abort
   classification and the offline translation harness. *)

open Liquid_isa
open Liquid_translate
open Liquid_pipeline

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let dummy_ucode n =
  {
    Ucode.uops = Array.make n Ucode.URet;
    width = 4;
    vla = false;
    rvv = false;
    lmul = 1;
    source_insns = n;
    observed_insns = n;
    guards = [||];
  }

(* --- Ucode_cache --- *)

let test_ucache_hit_and_miss () =
  let c = Ucode_cache.create ~entries:2 in
  check_bool "empty misses" true (Ucode_cache.lookup c ~key:1 ~now:0 = None);
  Ucode_cache.install c ~key:1 ~ready:0 (dummy_ucode 3);
  check "no eviction" 0 (Ucode_cache.evictions c);
  (match Ucode_cache.lookup c ~key:1 ~now:5 with
  | Some u -> check "payload" 3 (Ucode.length u)
  | None -> Alcotest.fail "expected hit");
  check "installs" 1 (Ucode_cache.installs c)

let test_ucache_readiness () =
  (* An entry installed with a future ready time is pending, not
     servable: the translation-latency model. *)
  let c = Ucode_cache.create ~entries:2 in
  Ucode_cache.install c ~key:7 ~ready:100 (dummy_ucode 1);
  check_bool "not ready at 50" true (Ucode_cache.lookup c ~key:7 ~now:50 = None);
  check_bool "pending at 50" true (Ucode_cache.pending c ~key:7 ~now:50);
  check_bool "ready at 100" true (Ucode_cache.lookup c ~key:7 ~now:100 <> None);
  check_bool "not pending once ready" false (Ucode_cache.pending c ~key:7 ~now:100)

let test_ucache_lru () =
  let c = Ucode_cache.create ~entries:2 in
  Ucode_cache.install c ~key:1 ~ready:0 (dummy_ucode 1);
  Ucode_cache.install c ~key:2 ~ready:0 (dummy_ucode 1);
  (* Touch key 1 so key 2 is LRU. *)
  ignore (Ucode_cache.lookup c ~key:1 ~now:10);
  Ucode_cache.install c ~key:3 ~ready:0 (dummy_ucode 1);
  check "eviction count" 1 (Ucode_cache.evictions c);
  check_bool "key 1 kept" true (Ucode_cache.lookup c ~key:1 ~now:20 <> None);
  check_bool "key 2 evicted" true (Ucode_cache.lookup c ~key:2 ~now:20 = None);
  check "occupancy" 2 (Ucode_cache.occupancy c);
  check "high-water" 2 (Ucode_cache.max_occupancy c)

let test_ucache_reinstall_same_key () =
  let c = Ucode_cache.create ~entries:2 in
  Ucode_cache.install c ~key:1 ~ready:0 (dummy_ucode 1);
  Ucode_cache.install c ~key:1 ~ready:0 (dummy_ucode 9);
  check "no eviction on overwrite" 0 (Ucode_cache.evictions c);
  check "one replacement" 1 (Ucode_cache.replacements c);
  check "occupancy stays 1" 1 (Ucode_cache.occupancy c);
  match Ucode_cache.lookup c ~key:1 ~now:0 with
  | Some u -> check "newest payload" 9 (Ucode.length u)
  | None -> Alcotest.fail "hit expected"

let test_ucache_counter_conservation () =
  (* installs = replacements + evictions + occupancy, through installs,
     same-key overwrites, capacity evictions and forced evictions. *)
  let c = Ucode_cache.create ~entries:2 in
  let conserved () =
    let k = Ucode_cache.counters c in
    check "installs conserved" k.Ucode_cache.u_installs
      (k.Ucode_cache.u_replacements + k.Ucode_cache.u_evictions
     + k.Ucode_cache.u_occupancy);
    check_bool "occupancy below high-water" true
      (k.Ucode_cache.u_occupancy <= k.Ucode_cache.u_max_occupancy)
  in
  conserved ();
  Ucode_cache.install c ~key:1 ~ready:0 (dummy_ucode 1);
  conserved ();
  Ucode_cache.install c ~key:1 ~ready:0 (dummy_ucode 2);
  conserved ();
  Ucode_cache.install c ~key:2 ~ready:0 (dummy_ucode 1);
  Ucode_cache.install c ~key:3 ~ready:0 (dummy_ucode 1);
  conserved ();
  check_bool "forced evict hits" true (Ucode_cache.evict c ~key:3);
  check_bool "forced evict misses" false (Ucode_cache.evict c ~key:99);
  conserved ()

(* --- Vec --- *)

let test_vec_basics () =
  let v = Vec.create () in
  check "empty" 0 (Vec.length v);
  for i = 0 to 99 do
    Vec.push v (i * 2)
  done;
  check "length" 100 (Vec.length v);
  check "get" 84 (Vec.get v 42);
  Vec.set v 42 7;
  check "set" 7 (Vec.get v 42);
  check "fold" (List.fold_left ( + ) 0 (Vec.to_list v))
    (Vec.fold_left ( + ) 0 v);
  check_bool "exists" true (Vec.exists (fun x -> x = 198) v);
  check_bool "not exists" false (Vec.exists (fun x -> x = 199) v);
  check "array length" 100 (Array.length (Vec.to_array v));
  Alcotest.check_raises "oob" (Invalid_argument "Vec: index out of bounds")
    (fun () -> ignore (Vec.get v 100))

(* --- Event / Abort --- *)

let test_event_pp () =
  let e =
    Event.make ~pc:3 ~value:42
      (Insn.Mov { cond = Cond.Al; dst = Reg.make 1; src = Imm 42 })
  in
  Alcotest.(check string) "pp" "@3 mov r1, #42  ; => 42"
    (Format.asprintf "%a" Event.pp e)

let test_abort_permanence () =
  let classify = Liquid_pipeline.Diag.classify_abort in
  check_bool "external is retryable" true
    (classify Abort.External_abort = `Transient);
  List.iter
    (fun a -> check_bool (Abort.to_string a) true (classify a = `Permanent))
    [
      Abort.Illegal_insn "x";
      Abort.Unknown_permutation;
      Abort.Non_periodic_offsets;
      Abort.Unrepresentable_value;
      Abort.Buffer_overflow;
      Abort.No_loop;
      Abort.No_induction;
      Abort.Bad_trip_count;
      Abort.Inconsistent_iteration "x";
      Abort.Dangling_address_combine;
    ]

(* --- Offline harness edge cases --- *)

let test_offline_bad_entry () =
  let prog =
    Liquid_prog.Program.make ~name:"t"
      ~text:[ Liquid_prog.Program.Label "main"; Liquid_scalarize.Build.halt ]
      ~data:[]
  in
  let image = Liquid_prog.Image.of_program prog in
  check_bool "halt closes the region stream" true
    (match Offline.translate_region ~image ~lanes:4 ~entry:0 () with
    | Translator.Aborted _ -> true
    | Translator.Translated _ -> false)

let tests =
  [
    Alcotest.test_case "ucache: hit and miss" `Quick test_ucache_hit_and_miss;
    Alcotest.test_case "ucache: readiness" `Quick test_ucache_readiness;
    Alcotest.test_case "ucache: LRU" `Quick test_ucache_lru;
    Alcotest.test_case "ucache: reinstall" `Quick test_ucache_reinstall_same_key;
    Alcotest.test_case "ucache: counter conservation" `Quick
      test_ucache_counter_conservation;
    Alcotest.test_case "vec: basics" `Quick test_vec_basics;
    Alcotest.test_case "event: pretty printing" `Quick test_event_pp;
    Alcotest.test_case "abort: permanence" `Quick test_abort_permanence;
    Alcotest.test_case "offline: degenerate region" `Quick test_offline_bad_entry;
  ]
