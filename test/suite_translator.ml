(* Unit tests for the dynamic translator: one test per Table 3 rule, the
   idiom recognizers, finalization (CAM, constant folding, effective
   width) and every abort path. Regions are built from raw assembly
   items and driven through the offline translation harness. *)

open Liquid_isa
open Liquid_visa
open Liquid_prog
open Liquid_scalarize
open Liquid_translate
open Helpers
open Build

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let words_arr name n f = Data.make ~name ~esize:Esize.Word (Array.init n f)
let ind = Vloop.induction

(* A plain counted loop shell around a scalar body. *)
let loop_shell ?(count = 16) body =
  [ mov ind 0; label "f_top" ]
  @ body
  @ [ addi ind ind 1; cmp ind (i count); b ~cond:Cond.Lt "f_top" ]

let simple_data = [ words_arr "a" 16 (fun i -> i); words_arr "b" 16 (fun i -> 2 * i); words_arr "c" 16 (fun _ -> 0) ]

let count_uops pred (u : Ucode.t) =
  Array.fold_left (fun n uop -> if pred uop then n + 1 else n) 0 u.Ucode.uops

let is_vld = function Ucode.UV (Vinsn.Vld _) -> true | _ -> false
let is_vst = function Ucode.UV (Vinsn.Vst _) -> true | _ -> false
let is_vperm = function Ucode.UV (Vinsn.Vperm _) -> true | _ -> false
let is_vsat = function Ucode.UV (Vinsn.Vsat _) -> true | _ -> false
let is_vred = function Ucode.UV (Vinsn.Vred _) -> true | _ -> false

(* --- Rules 1/2/6/4/10/11: the basic data-parallel loop --- *)

let vadd_body =
  [
    ld (r 1) "a" (ri ind);
    ld (r 2) "b" (ri ind);
    dp Opcode.Add (r 3) (r 1) (ri (r 2));
    st (r 3) "c" (ri ind);
  ]

let test_basic_loop_shape () =
  let u = expect_ucode ~lanes:4 ~data:simple_data (loop_shell vadd_body) "vadd" in
  check "width" 4 u.Ucode.width;
  (* mov, vld, vld, vadd, vst, add#4, cmp, blt, ret *)
  check "uop count" 9 (Array.length u.Ucode.uops);
  check "loads" 2 (count_uops is_vld u);
  check "stores" 1 (count_uops is_vst u);
  (match u.Ucode.uops.(0) with
  | Ucode.US (Insn.Mov { src = Insn.Imm 0; _ }) -> ()
  | _ -> Alcotest.fail "expected pass-through induction init");
  (match u.Ucode.uops.(5) with
  | Ucode.US (Insn.Dp { op = Opcode.Add; src2 = Insn.Imm 4; _ }) -> ()
  | u -> Alcotest.failf "expected induction step by 4, got %a" Ucode.pp_uop u);
  (match u.Ucode.uops.(7) with
  | Ucode.UB { cond = Cond.Lt; target = 1 } -> ()
  | u -> Alcotest.failf "expected back-edge to uop 1, got %a" Ucode.pp_uop u);
  match u.Ucode.uops.(8) with
  | Ucode.URet -> ()
  | _ -> Alcotest.fail "expected return"

let test_register_mapping () =
  (* The translator maps scalar r_i to vector v_i (the paper's 1:1
     register state). *)
  let u = expect_ucode ~lanes:4 ~data:simple_data (loop_shell vadd_body) "map" in
  match u.Ucode.uops.(3) with
  | Ucode.UV (Vinsn.Vdp { dst; src1; src2 = VR s2; op = Opcode.Add }) ->
      check "dst" 3 (Vreg.index dst);
      check "src1" 1 (Vreg.index src1);
      check "src2" 2 (Vreg.index s2)
  | u -> Alcotest.failf "expected vadd, got %a" Ucode.pp_uop u

let test_vdp_immediate () =
  let body =
    [ ld (r 1) "a" (ri ind); dp Opcode.Mul (r 2) (r 1) (i 7); st (r 2) "c" (ri ind) ]
  in
  let u = expect_ucode ~lanes:4 ~data:simple_data (loop_shell body) "imm" in
  check_bool "has vmul imm" true
    (Array.exists
       (function
         | Ucode.UV (Vinsn.Vdp { op = Opcode.Mul; src2 = VImm 7; _ }) -> true
         | _ -> false)
       u.Ucode.uops)

let test_subword_loads () =
  let data =
    [
      Data.make ~name:"pix" ~esize:Esize.Byte (Array.init 16 (fun i -> i * 10));
      Data.zeros ~name:"out" ~esize:Esize.Byte 16;
    ]
  in
  let body =
    [
      ld ~esize:Esize.Byte ~signed:false (r 1) "pix" (ri ind);
      dp Opcode.Add (r 2) (r 1) (i 1);
      st ~esize:Esize.Byte (r 2) "out" (ri ind);
    ]
  in
  let u = expect_ucode ~lanes:8 ~data (loop_shell body) "bytes" in
  match u.Ucode.uops.(1) with
  | Ucode.UV (Vinsn.Vld { esize = Esize.Byte; signed = false; _ }) -> ()
  | u -> Alcotest.failf "expected byte vld, got %a" Ucode.pp_uop u

(* --- Rule 9: reductions --- *)

let test_reduction () =
  let body =
    [ ld (r 1) "a" (ri ind); dp Opcode.Smin (r 5) (r 5) (ri (r 1)) ]
  in
  let items = (mov (r 5) 1000 :: loop_shell body) in
  let u = expect_ucode ~lanes:4 ~data:simple_data items "reduction" in
  check "one vred" 1 (count_uops is_vred u);
  check_bool "init mov passes through" true
    (Array.exists
       (function
         | Ucode.US (Insn.Mov { src = Insn.Imm 1000; _ }) -> true
         | _ -> false)
       u.Ucode.uops);
  match
    Array.find_opt (function Ucode.UV (Vinsn.Vred _) -> true | _ -> false) u.Ucode.uops
  with
  | Some (Ucode.UV (Vinsn.Vred { op = Opcode.Smin; acc; src })) ->
      check "acc" 5 (Reg.index acc);
      check "src" 1 (Vreg.index src)
  | _ -> Alcotest.fail "vred shape"

let test_reduction_non_associative_aborts () =
  let body = [ ld (r 1) "a" (ri ind); dp Opcode.Sub (r 5) (r 5) (ri (r 1)) ] in
  expect_abort ~data:simple_data (loop_shell body)
    (function Abort.Illegal_insn _ -> true | _ -> false)
    "subtractive reduction"

(* --- Rules 3/7/8: permutations through offset arrays --- *)

let perm_data pattern =
  let offs = Perm.offsets pattern in
  let period = Array.length offs in
  [
    words_arr "off" 16 (fun e -> offs.(e mod period));
    words_arr "a" 16 (fun i -> 100 + i);
    words_arr "c" 16 (fun _ -> 0);
  ]

let permuted_load_body =
  [
    ld (r 13) "off" (ri ind);
    dp Opcode.Add (r 13) ind (ri (r 13));
    ld (r 1) "a" (ri (r 13));
    st (r 1) "c" (ri ind);
  ]

let test_permuted_load () =
  let u =
    expect_ucode ~lanes:4
      ~data:(perm_data Perm.pairswap)
      (loop_shell permuted_load_body)
      "permuted load"
  in
  (* The offset-array vld must be collapsed away: one vld (data), one
     vperm, one vst. *)
  check "one load" 1 (count_uops is_vld u);
  check "one perm" 1 (count_uops is_vperm u);
  (match
     Array.find_opt (function Ucode.UV (Vinsn.Vperm _) -> true | _ -> false)
       u.Ucode.uops
   with
  | Some (Ucode.UV (Vinsn.Vperm { pattern; _ })) ->
      check_bool "pattern" true (Perm.equal pattern Perm.pairswap)
  | _ -> Alcotest.fail "no vperm");
  (* The vld must index by the induction variable, not the offset
     register. *)
  match
    Array.find_opt (function Ucode.UV (Vinsn.Vld _) -> true | _ -> false)
      u.Ucode.uops
  with
  | Some (Ucode.UV (Vinsn.Vld { index; _ })) -> check "vld index" 0 (Reg.index index)
  | _ -> Alcotest.fail "no vld"

let test_permuted_load_block_pattern () =
  let u =
    expect_ucode ~lanes:8
      ~data:(perm_data (Perm.Halfswap 8))
      (loop_shell permuted_load_body)
      "bfly load"
  in
  match
    Array.find_opt (function Ucode.UV (Vinsn.Vperm _) -> true | _ -> false)
      u.Ucode.uops
  with
  | Some (Ucode.UV (Vinsn.Vperm { pattern = Perm.Halfswap 8; _ })) -> ()
  | _ -> Alcotest.fail "expected bfly.8"

let test_permuted_store () =
  (* Scatter side: store offsets are those of the inverse pattern; the
     translator must emit the forward pattern into the scratch register
     before the store. *)
  let pattern = Perm.Rotate { block = 4; by = 1 } in
  let inv_offs = Perm.offsets (Perm.inverse pattern) in
  let data =
    [
      words_arr "off" 16 (fun e -> inv_offs.(e mod 4));
      words_arr "a" 16 (fun i -> i);
      words_arr "c" 16 (fun _ -> 0);
    ]
  in
  let body =
    [
      ld (r 1) "a" (ri ind);
      ld (r 13) "off" (ri ind);
      dp Opcode.Add (r 13) ind (ri (r 13));
      st (r 1) "c" (ri (r 13));
    ]
  in
  let u = expect_ucode ~lanes:4 ~data (loop_shell body) "permuted store" in
  check "one perm" 1 (count_uops is_vperm u);
  match
    Array.find_opt (function Ucode.UV (Vinsn.Vperm _) -> true | _ -> false)
      u.Ucode.uops
  with
  | Some (Ucode.UV (Vinsn.Vperm { pattern = p; dst; src })) ->
      check_bool "forward pattern recovered" true (Perm.equal p pattern);
      check "scratch register" 15 (Vreg.index dst);
      check "source" 1 (Vreg.index src)
  | _ -> Alcotest.fail "no vperm"

let test_unknown_permutation_aborts () =
  (* Induction-relative offsets that match no catalog pattern: the CAM
     misses and translation falls back to scalar execution. *)
  let data =
    [
      words_arr "off" 16 (fun e -> if e mod 4 = 0 then 2 else 0);
      words_arr "a" 16 (fun i -> i);
      words_arr "c" 16 (fun _ -> 0);
    ]
  in
  expect_abort ~lanes:4 ~data (loop_shell permuted_load_body)
    (function Abort.Unknown_permutation -> true | _ -> false)
    "vtbl-like"

let test_non_periodic_offsets_abort () =
  (* A butterfly over 8-element blocks cannot execute on a 4-wide
     accelerator: the offsets are not periodic in 4. *)
  expect_abort ~lanes:4
    ~data:(perm_data (Perm.Halfswap 8))
    (loop_shell permuted_load_body)
    (function Abort.Non_periodic_offsets -> true | _ -> false)
    "bfly.8 at 4 lanes"

let test_unrepresentable_offsets_abort () =
  (* Offsets beyond the register state's 8-bit previous-value fields
     abort (paper §4.1: "numbers that are too big to represent simply
     abort"). Use +/-200 in a pattern that would otherwise be periodic. *)
  let data =
    [
      words_arr "off" 16 (fun e -> if e mod 2 = 0 then 200 else -200);
      words_arr "a" 512 (fun i -> i);
      words_arr "c" 512 (fun _ -> 0);
    ]
  in
  expect_abort ~lanes:4 ~data (loop_shell permuted_load_body)
    (function Abort.Unrepresentable_value -> true | _ -> false)
    "huge offsets"

let test_dangling_address_combine_aborts () =
  let body =
    [
      ld (r 13) "off" (ri ind);
      dp Opcode.Add (r 13) ind (ri (r 13));
      ld (r 1) "a" (ri ind);
      st (r 1) "c" (ri ind);
    ]
  in
  expect_abort ~data:(perm_data Perm.pairswap) (loop_shell body)
    (function Abort.Dangling_address_combine -> true | _ -> false)
    "unused address combine"

(* --- Rule 7 finalization: constant vectors --- *)

let mask_data =
  [
    words_arr "mask" 16 (fun e -> if e mod 4 < 2 then -1 else 0);
    words_arr "a" 16 (fun i -> i + 1);
    words_arr "c" 16 (fun _ -> 0);
  ]

let masked_body =
  [
    ld (r 1) "a" (ri ind);
    ld (r 2) "mask" (ri ind);
    dp Opcode.And (r 3) (r 1) (ri (r 2));
    st (r 3) "c" (ri ind);
  ]

let test_const_vector_folded () =
  let u = expect_ucode ~lanes:4 ~data:mask_data (loop_shell masked_body) "mask" in
  (* The mask load collapses into an immediate constant vector. *)
  check "one load left" 1 (count_uops is_vld u);
  match
    Array.find_opt
      (function Ucode.UV (Vinsn.Vdp { src2 = VConst _; _ }) -> true | _ -> false)
      u.Ucode.uops
  with
  | Some (Ucode.UV (Vinsn.Vdp { src2 = VConst lanes; _ })) ->
      Alcotest.(check (array int)) "mask lanes" [| -1; -1; 0; 0 |] lanes
  | _ -> Alcotest.fail "expected folded constant"

let test_const_vector_shared_load () =
  (* Two consumers of the same constant array: both fold, and the load
     dies only after the second fold. *)
  let body =
    [
      ld (r 1) "a" (ri ind);
      ld (r 2) "mask" (ri ind);
      dp Opcode.And (r 3) (r 1) (ri (r 2));
      dp Opcode.Orr (r 4) (r 1) (ri (r 2));
      st (r 3) "c" (ri ind);
      st (r 4) "c" (ri ind);
    ]
  in
  let u = expect_ucode ~lanes:4 ~data:mask_data (loop_shell body) "shared mask" in
  check "mask load dead" 1 (count_uops is_vld u);
  check "both folded" 2
    (count_uops
       (function Ucode.UV (Vinsn.Vdp { src2 = VConst _; _ }) -> true | _ -> false)
       u)

let test_non_periodic_data_stays_register () =
  (* Loading genuine data (non-periodic) as the second operand must NOT
     fold into a constant: the vld stays and the vdp keeps its register
     operand. *)
  let u = expect_ucode ~lanes:4 ~data:simple_data (loop_shell vadd_body) "data" in
  check "both loads live" 2 (count_uops is_vld u);
  check "no const operands" 0
    (count_uops
       (function Ucode.UV (Vinsn.Vdp { src2 = VConst _; _ }) -> true | _ -> false)
       u)

(* --- saturation idioms --- *)

let byte_data =
  [
    Data.make ~name:"pa" ~esize:Esize.Byte (Array.init 16 (fun i -> i * 16));
    Data.make ~name:"pb" ~esize:Esize.Byte (Array.init 16 (fun i -> 255 - (i * 5)));
    Data.zeros ~name:"pc" ~esize:Esize.Byte 16;
  ]

let test_unsigned_saturating_add () =
  let body =
    [
      ld ~esize:Esize.Byte ~signed:false (r 1) "pa" (ri ind);
      ld ~esize:Esize.Byte ~signed:false (r 2) "pb" (ri ind);
      dp Opcode.Add (r 3) (r 1) (ri (r 2));
      cmp (r 3) (i 255);
      movc Cond.Gt (r 3) 255;
      st ~esize:Esize.Byte (r 3) "pc" (ri ind);
    ]
  in
  let u = expect_ucode ~lanes:8 ~data:byte_data (loop_shell body) "uqadd" in
  check "one vsat" 1 (count_uops is_vsat u);
  match
    Array.find_opt (function Ucode.UV (Vinsn.Vsat _) -> true | _ -> false)
      u.Ucode.uops
  with
  | Some (Ucode.UV (Vinsn.Vsat { op = `Add; esize = Esize.Byte; signed = false; _ })) -> ()
  | _ -> Alcotest.fail "vsat shape"

let test_signed_saturating_add () =
  let data =
    [
      Data.make ~name:"ha" ~esize:Esize.Half (Array.init 16 (fun i -> (i * 3000) - 20000));
      Data.make ~name:"hb" ~esize:Esize.Half (Array.init 16 (fun i -> 15000 - (i * 2000)));
      Data.zeros ~name:"hc" ~esize:Esize.Half 16;
    ]
  in
  let body =
    [
      ld ~esize:Esize.Half ~signed:true (r 1) "ha" (ri ind);
      ld ~esize:Esize.Half ~signed:true (r 2) "hb" (ri ind);
      dp Opcode.Add (r 3) (r 1) (ri (r 2));
      cmp (r 3) (i 32767);
      movc Cond.Gt (r 3) 32767;
      cmp (r 3) (i (-32768));
      movc Cond.Lt (r 3) (-32768);
      st ~esize:Esize.Half (r 3) "hc" (ri ind);
    ]
  in
  let u = expect_ucode ~lanes:8 ~data (loop_shell body) "sqadd" in
  match
    Array.find_opt (function Ucode.UV (Vinsn.Vsat _) -> true | _ -> false)
      u.Ucode.uops
  with
  | Some (Ucode.UV (Vinsn.Vsat { op = `Add; esize = Esize.Half; signed = true; _ })) -> ()
  | _ -> Alcotest.fail "signed vsat shape"

let test_unsigned_saturating_sub () =
  let body =
    [
      ld ~esize:Esize.Byte ~signed:false (r 1) "pa" (ri ind);
      ld ~esize:Esize.Byte ~signed:false (r 2) "pb" (ri ind);
      dp Opcode.Sub (r 3) (r 1) (ri (r 2));
      cmp (r 3) (i 0);
      movc Cond.Lt (r 3) 0;
      st ~esize:Esize.Byte (r 3) "pc" (ri ind);
    ]
  in
  let u = expect_ucode ~lanes:8 ~data:byte_data (loop_shell body) "uqsub" in
  match
    Array.find_opt (function Ucode.UV (Vinsn.Vsat _) -> true | _ -> false)
      u.Ucode.uops
  with
  | Some (Ucode.UV (Vinsn.Vsat { op = `Sub; signed = false; _ })) -> ()
  | _ -> Alcotest.fail "vsat sub shape"

let test_lone_clamp_becomes_min () =
  (* A clamp of a loaded value (no preceding add) is an element-wise min
     against the splatted bound. *)
  let body =
    [
      ld (r 1) "a" (ri ind);
      cmp (r 1) (i 9);
      movc Cond.Gt (r 1) 9;
      st (r 1) "c" (ri ind);
    ]
  in
  let u = expect_ucode ~lanes:4 ~data:simple_data (loop_shell body) "clamp" in
  check "no vsat" 0 (count_uops is_vsat u);
  check_bool "min against bound" true
    (Array.exists
       (function
         | Ucode.UV (Vinsn.Vdp { op = Opcode.Smin; src2 = VImm 9; _ }) -> true
         | _ -> false)
       u.Ucode.uops)

let test_minmax_pair_clamp () =
  let body =
    [
      ld (r 1) "a" (ri ind);
      dp Opcode.Mul (r 2) (r 1) (i 3);
      cmp (r 2) (i 20);
      movc Cond.Gt (r 2) 20;
      cmp (r 2) (i 5);
      movc Cond.Lt (r 2) 5;
      st (r 2) "c" (ri ind);
    ]
  in
  (* Bounds (5, 20) match no element range, so no vsat: the pair lowers
     to vmin + vmax. *)
  let u = expect_ucode ~lanes:4 ~data:simple_data (loop_shell body) "minmax" in
  check "no vsat" 0 (count_uops is_vsat u);
  check "min and max" 2
    (count_uops
       (function
         | Ucode.UV (Vinsn.Vdp { op = Opcode.Smin | Opcode.Smax; src2 = VImm _; _ }) -> true
         | _ -> false)
       u)

let test_dangling_compare_aborts () =
  let body =
    [ ld (r 1) "a" (ri ind); cmp (r 1) (i 3); st (r 1) "c" (ri ind) ]
  in
  expect_abort ~data:simple_data (loop_shell body)
    (function Abort.Illegal_insn _ -> true | _ -> false)
    "compare without move"

(* --- effective width --- *)

let test_width_adapts_down () =
  (* A binary compiled once translates at any narrower accelerator. *)
  List.iter
    (fun (lanes, expected) ->
      let u =
        expect_ucode ~lanes ~data:simple_data (loop_shell vadd_body)
          (Printf.sprintf "width %d" lanes)
      in
      check (Printf.sprintf "width at %d lanes" lanes) expected u.Ucode.width)
    [ (2, 2); (4, 4); (8, 8); (16, 16) ]

let test_short_vector_caps_width () =
  (* An 8-element loop on a 16-lane machine translates at width 8 — the
     paper's MPEG2 flatness from 8 to 16 lanes. *)
  let data = [ words_arr "a" 8 (fun i -> i); words_arr "b" 8 (fun i -> i); words_arr "c" 8 (fun _ -> 0) ] in
  let u = expect_ucode ~lanes:16 ~data (loop_shell ~count:8 vadd_body) "count 8" in
  check "effective width" 8 u.Ucode.width

let test_non_power_of_two_trip_uses_divisor () =
  let data = [ words_arr "a" 24 (fun i -> i); words_arr "b" 24 (fun i -> i); words_arr "c" 24 (fun _ -> 0) ] in
  let u = expect_ucode ~lanes:16 ~data (loop_shell ~count:24 vadd_body) "count 24" in
  check "width 8 divides 24" 8 u.Ucode.width

let test_odd_trip_aborts () =
  let data = [ words_arr "a" 15 (fun i -> i); words_arr "b" 15 (fun i -> i); words_arr "c" 15 (fun _ -> 0) ] in
  expect_abort ~lanes:8 ~data (loop_shell ~count:15 vadd_body)
    (function Abort.Bad_trip_count -> true | _ -> false)
    "odd trip count"

(* --- legality aborts --- *)

let test_register_bound_aborts () =
  let body = vadd_body @ [ cmp ind (ri (r 9)) ] in
  ignore body;
  (* Loop bound held in a register: unknown trip count at translation
     time. *)
  let items =
    [ mov ind 0; label "f_top" ]
    @ vadd_body
    @ [ addi ind ind 1; cmp ind (ri (r 9)); b ~cond:Cond.Lt "f_top" ]
  in
  expect_abort ~data:simple_data items
    (function Abort.Bad_trip_count -> true | _ -> false)
    "register bound"

let test_call_in_region_aborts () =
  let items =
    [ mov ind 0; label "f_top"; bl "f_top" ]
    @ [ addi ind ind 1; cmp ind (i 16); b ~cond:Cond.Lt "f_top" ]
  in
  expect_abort ~data:simple_data items
    (function Abort.Illegal_insn _ -> true | _ -> false)
    "call inside region"

let test_register_move_aborts () =
  let body = [ ld (r 1) "a" (ri ind); movr (r 2) (r 1); st (r 2) "c" (ri ind) ] in
  expect_abort ~data:simple_data (loop_shell body)
    (function Abort.Illegal_insn _ -> true | _ -> false)
    "register move"

let test_store_of_scalar_aborts () =
  let body = [ st (r 9) "c" (ri ind) ] in
  expect_abort ~data:simple_data (loop_shell body)
    (function Abort.Illegal_insn _ -> true | _ -> false)
    "store of scalar"

let test_scalar_op_in_body_aborts () =
  (* A scalar accumulation inside the body would execute once per vector
     instead of once per element. *)
  let items =
    [ mov ind 0; mov (r 9) 0; label "f_top" ]
    @ [ ld (r 1) "a" (ri ind); dp Opcode.Add (r 9) (r 9) (i 1); st (r 1) "c" (ri ind) ]
    @ [ addi ind ind 1; cmp ind (i 16); b ~cond:Cond.Lt "f_top" ]
  in
  expect_abort ~data:simple_data items
    (function Abort.Illegal_insn _ -> true | _ -> false)
    "scalar op in body"

let test_prologue_scalar_op_allowed () =
  (* The same scalar instructions in the prologue are fine: they run
     once per region in microcode too. *)
  let items =
    [ mov ind 0; mov (r 9) 4; dp Opcode.Add (r 9) (r 9) (i 1); label "f_top" ]
    @ vadd_body
    @ [ addi ind ind 1; cmp ind (i 16); b ~cond:Cond.Lt "f_top" ]
  in
  let u = expect_ucode ~data:simple_data items "prologue scalar" in
  check_bool "prologue add survives" true
    (Array.exists
       (function
         | Ucode.US (Insn.Dp { op = Opcode.Add; src2 = Insn.Imm 1; _ }) -> true
         | _ -> false)
       u.Ucode.uops)

let test_strided_access_translates () =
  (* Interleaved/strided access (index = 2*i) was unsupported in the
     paper (§3.3); this library implements it as an extension, so the
     schema now translates into a strided vector load (see
     suite_interleave for the full coverage, including the stride-8
     abort). *)
  let items =
    [ mov ind 0; label "f_top" ]
    @ [
        dp Opcode.Lsl (r 13) ind (i 1);
        ld (r 1) "a" (ri (r 13));
        st (r 1) "c" (ri ind);
      ]
    @ [ addi ind ind 1; cmp ind (i 8); b ~cond:Cond.Lt "f_top" ]
  in
  let u = expect_ucode ~data:simple_data items "strided access" in
  check "one strided load" 1
    (count_uops (function Ucode.UV (Vinsn.Vlds _) -> true | _ -> false) u)

let test_no_loop_aborts () =
  let items = [ mov ind 0; ld (r 1) "a" (ri ind); st (r 1) "c" (ri ind) ] in
  expect_abort ~data:simple_data items
    (function Abort.No_loop -> true | _ -> false)
    "no loop"

let test_buffer_overflow_aborts () =
  expect_abort ~max_uops:6 ~data:simple_data (loop_shell vadd_body)
    (function Abort.Buffer_overflow -> true | _ -> false)
    "tiny buffer"

(* --- raw event-stream tests: divergence and external aborts --- *)

let feed_loop tr ~iters ~pcs_insns =
  List.iteri
    (fun _ () -> ())
    [];
  for it = 0 to iters - 1 do
    List.iter
      (fun (pc, insn, value) ->
        ignore it;
        Translator.feed tr (Event.make ~pc ?value insn))
      pcs_insns
  done

let test_external_abort () =
  let tr = Translator.create (Translator.default_config ~lanes:4 ()) in
  Translator.feed tr
    (Event.make ~pc:0 ~value:0 (Insn.Mov { cond = Cond.Al; dst = ind; src = Imm 0 }));
  Translator.abort_external tr;
  match Translator.finish tr with
  | Translator.Aborted Abort.External_abort ->
      check_bool "retryable" true
        (Liquid_pipeline.Diag.classify_abort Abort.External_abort = `Transient)
  | _ -> Alcotest.fail "expected external abort"

let test_iteration_divergence_aborts () =
  ignore feed_loop;
  let tr = Translator.create (Translator.default_config ~lanes:2 ()) in
  let ld_insn base : Insn.exec =
    Insn.Ld { esize = Esize.Word; signed = true; dst = r 1; base = Insn.Sym base; index = Insn.Reg ind; shift = 2 }
  in
  let st_insn : Insn.exec =
    Insn.St { esize = Esize.Word; src = r 1; base = Insn.Sym 0x8000; index = Insn.Reg ind; shift = 2 }
  in
  let inc : Insn.exec = Insn.Dp { cond = Cond.Al; op = Opcode.Add; dst = ind; src1 = ind; src2 = Imm 1 } in
  let cmp_insn : Insn.exec = Insn.Cmp { src1 = ind; src2 = Imm 4 } in
  let blt : Insn.exec = Insn.B { cond = Cond.Lt; target = 1 } in
  Translator.feed tr (Event.make ~pc:0 ~value:0 (Insn.Mov { cond = Cond.Al; dst = ind; src = Imm 0 }));
  (* Iteration 0: load from 0x7000. *)
  Translator.feed tr (Event.make ~pc:1 ~value:11 (ld_insn 0x7000));
  Translator.feed tr (Event.make ~pc:2 st_insn);
  Translator.feed tr (Event.make ~pc:3 ~value:1 inc);
  Translator.feed tr (Event.make ~pc:4 cmp_insn);
  Translator.feed tr (Event.make ~pc:5 blt);
  (* Iteration 1 diverges: different static load. *)
  Translator.feed tr (Event.make ~pc:1 ~value:12 (ld_insn 0x7100));
  Translator.feed tr (Event.make ~pc:2 st_insn);
  Translator.feed tr (Event.make ~pc:3 ~value:2 inc);
  Translator.feed tr (Event.make ~pc:4 cmp_insn);
  Translator.feed tr (Event.make ~pc:5 blt);
  match Translator.finish tr with
  | Translator.Aborted (Abort.Inconsistent_iteration _) -> ()
  | Translator.Aborted r -> Alcotest.failf "wrong abort: %s" (Abort.to_string r)
  | Translator.Translated _ -> Alcotest.fail "should not translate"

let test_static_insns_counts_first_iteration () =
  let tr = Translator.create (Translator.default_config ~lanes:2 ()) in
  Translator.feed tr (Event.make ~pc:0 ~value:0 (Insn.Mov { cond = Cond.Al; dst = ind; src = Imm 0 }));
  check "one static insn" 1 (Translator.static_insns tr);
  check "one dynamic insn" 1 (Translator.observed tr)

let tests =
  [
    Alcotest.test_case "basic loop shape" `Quick test_basic_loop_shape;
    Alcotest.test_case "register mapping" `Quick test_register_mapping;
    Alcotest.test_case "vdp immediate" `Quick test_vdp_immediate;
    Alcotest.test_case "sub-word loads" `Quick test_subword_loads;
    Alcotest.test_case "reduction" `Quick test_reduction;
    Alcotest.test_case "non-associative reduction aborts" `Quick
      test_reduction_non_associative_aborts;
    Alcotest.test_case "permuted load" `Quick test_permuted_load;
    Alcotest.test_case "permuted load (block pattern)" `Quick
      test_permuted_load_block_pattern;
    Alcotest.test_case "permuted store" `Quick test_permuted_store;
    Alcotest.test_case "unknown permutation aborts" `Quick
      test_unknown_permutation_aborts;
    Alcotest.test_case "non-periodic offsets abort" `Quick
      test_non_periodic_offsets_abort;
    Alcotest.test_case "unrepresentable offsets abort" `Quick
      test_unrepresentable_offsets_abort;
    Alcotest.test_case "dangling address combine aborts" `Quick
      test_dangling_address_combine_aborts;
    Alcotest.test_case "constant vector folded" `Quick test_const_vector_folded;
    Alcotest.test_case "constant vector shared load" `Quick
      test_const_vector_shared_load;
    Alcotest.test_case "non-periodic data stays register" `Quick
      test_non_periodic_data_stays_register;
    Alcotest.test_case "unsigned saturating add" `Quick test_unsigned_saturating_add;
    Alcotest.test_case "signed saturating add" `Quick test_signed_saturating_add;
    Alcotest.test_case "unsigned saturating sub" `Quick test_unsigned_saturating_sub;
    Alcotest.test_case "lone clamp becomes min" `Quick test_lone_clamp_becomes_min;
    Alcotest.test_case "min/max pair clamp" `Quick test_minmax_pair_clamp;
    Alcotest.test_case "dangling compare aborts" `Quick test_dangling_compare_aborts;
    Alcotest.test_case "width adapts down" `Quick test_width_adapts_down;
    Alcotest.test_case "short vector caps width" `Quick test_short_vector_caps_width;
    Alcotest.test_case "non-power-of-two trip" `Quick
      test_non_power_of_two_trip_uses_divisor;
    Alcotest.test_case "odd trip aborts" `Quick test_odd_trip_aborts;
    Alcotest.test_case "register bound aborts" `Quick test_register_bound_aborts;
    Alcotest.test_case "call in region aborts" `Quick test_call_in_region_aborts;
    Alcotest.test_case "register move aborts" `Quick test_register_move_aborts;
    Alcotest.test_case "store of scalar aborts" `Quick test_store_of_scalar_aborts;
    Alcotest.test_case "scalar op in body aborts" `Quick test_scalar_op_in_body_aborts;
    Alcotest.test_case "prologue scalar op allowed" `Quick
      test_prologue_scalar_op_allowed;
    Alcotest.test_case "strided access translates (extension)" `Quick
      test_strided_access_translates;
    Alcotest.test_case "no loop aborts" `Quick test_no_loop_aborts;
    Alcotest.test_case "buffer overflow aborts" `Quick test_buffer_overflow_aborts;
    Alcotest.test_case "external abort" `Quick test_external_abort;
    Alcotest.test_case "iteration divergence aborts" `Quick
      test_iteration_divergence_aborts;
    Alcotest.test_case "static vs dynamic counts" `Quick
      test_static_insns_counts_first_iteration;
  ]

(* --- additional edge cases --- *)

let test_large_constants_stay_in_registers () =
  (* Constant-array values beyond the register state's representable
     range must not fold into an immediate vector; the load stays and
     the operand remains a register (correct, just unoptimized). *)
  let data =
    [
      words_arr "big" 16 (fun e -> if e mod 4 < 2 then 1_000_000 else -1_000_000);
      words_arr "a" 16 (fun i -> i);
      words_arr "c" 16 (fun _ -> 0);
    ]
  in
  let body =
    [
      ld (r 1) "a" (ri ind);
      ld (r 2) "big" (ri ind);
      dp Opcode.Add (r 3) (r 1) (ri (r 2));
      st (r 3) "c" (ri ind);
    ]
  in
  let u = expect_ucode ~lanes:4 ~data (loop_shell body) "big constants" in
  check "both loads live" 2 (count_uops is_vld u);
  check "no folded constant" 0
    (count_uops
       (function Ucode.UV (Vinsn.Vdp { src2 = VConst _; _ }) -> true | _ -> false)
       u)

let test_two_inductions_abort () =
  (* Two candidates both used to index memory: no unique induction. *)
  let items =
    [ mov ind 0; mov (r 9) 0; label "f_top" ]
    @ [
        ld (r 1) "a" (ri ind);
        st (r 1) "c" (ri (r 9));
      ]
    @ [ addi ind ind 1; cmp ind (i 16); b ~cond:Cond.Lt "f_top" ]
  in
  expect_abort ~data:simple_data items
    (function Abort.No_induction -> true | _ -> false)
    "two inductions"

let test_reduction_mul () =
  let body = [ ld (r 1) "b" (ri ind); dp Opcode.Mul (r 5) (r 5) (ri (r 1)) ] in
  let items = mov (r 5) 1 :: loop_shell body in
  let u = expect_ucode ~lanes:4 ~data:simple_data items "product reduction" in
  match
    Array.find_opt (function Ucode.UV (Vinsn.Vred _) -> true | _ -> false)
      u.Ucode.uops
  with
  | Some (Ucode.UV (Vinsn.Vred { op = Opcode.Mul; _ })) -> ()
  | _ -> Alcotest.fail "expected a product reduction"

let test_ge_le_clamps () =
  (* movge / movle clamp conditions are accepted as min/max. *)
  let body =
    [
      ld (r 1) "a" (ri ind);
      cmp (r 1) (i 10);
      movc Cond.Ge (r 1) 10;
      cmp (r 1) (i 2);
      movc Cond.Le (r 1) 2;
      st (r 1) "c" (ri ind);
    ]
  in
  let u = expect_ucode ~lanes:4 ~data:simple_data (loop_shell body) "ge/le clamps" in
  check "min and max emitted" 2
    (count_uops
       (function
         | Ucode.UV (Vinsn.Vdp { op = Opcode.Smin | Opcode.Smax; _ }) -> true
         | _ -> false)
       u)

let test_wrong_shift_aborts () =
  (* A word access scaled as a halfword does not fit the element-indexed
     schema. *)
  let body =
    [
      Program.I
        (Liquid_visa.Minsn.S
           (Insn.Ld
              {
                esize = Esize.Word;
                signed = true;
                dst = r 1;
                base = Insn.Sym "a";
                index = Insn.Reg ind;
                shift = 1;
              }));
      st (r 1) "c" (ri ind);
    ]
  in
  expect_abort ~data:simple_data (loop_shell body)
    (function Abort.Illegal_insn _ -> true | _ -> false)
    "wrong scaling"

let test_halt_in_region_aborts () =
  let items = [ mov ind 0; label "f_top"; halt ] in
  expect_abort ~data:simple_data items
    (function Abort.Illegal_insn _ -> true | _ -> false)
    "halt inside region"

let tests =
  tests
  @ [
      Alcotest.test_case "large constants stay in registers" `Quick
        test_large_constants_stay_in_registers;
      Alcotest.test_case "two inductions abort" `Quick test_two_inductions_abort;
      Alcotest.test_case "product reduction" `Quick test_reduction_mul;
      Alcotest.test_case "ge/le clamps" `Quick test_ge_le_clamps;
      Alcotest.test_case "wrong scaling aborts" `Quick test_wrong_shift_aborts;
      Alcotest.test_case "halt in region aborts" `Quick test_halt_in_region_aborts;
    ]
