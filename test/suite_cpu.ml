(* Tests for the CPU driver: timing model sanity, region bookkeeping,
   microcode cache behaviour, translation latency, oracle mode, and
   binary-compatibility failure modes. *)

open Liquid_isa
open Liquid_prog
open Liquid_scalarize
module Kernels = Liquid_workloads.Kernels
open Liquid_pipeline
open Liquid_translate
open Helpers
open Build
module Stats = Liquid_machine.Stats

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let vadd_loop count =
  {
    Vloop.name = "vadd";
    count;
    body = [ vld (v 1) "a"; vld (v 2) "b"; vadd (v 3) (v 1) (vr (v 2)); vst (v 3) "c" ];
    reductions = [];
  }

let vadd_data count =
  [
    Kernels.warray "a" count (fun i -> i);
    Kernels.warray "b" count (fun i -> i * 2);
    Kernels.wzeros "c" count;
  ]

let vadd_program ?(frames = 4) ?(count = 32) () =
  simple_program ~frames ~data:(vadd_data count) (vadd_loop count)

(* --- timing sanity --- *)

let test_cycles_at_least_insns () =
  let prog = Codegen.baseline (vadd_program ()) in
  let run = run_image prog in
  check_bool "CPI >= 1" true (run.Cpu.stats.Stats.cycles >= Stats.total_insns run.Cpu.stats)

let test_cache_misses_cost_cycles () =
  let prog = Codegen.baseline (vadd_program ()) in
  let fast = run_image ~config:{ Cpu.scalar_config with Cpu.mem_latency = 1 } prog in
  let slow = run_image ~config:{ Cpu.scalar_config with Cpu.mem_latency = 100 } prog in
  check "same instructions" (Stats.total_insns fast.Cpu.stats)
    (Stats.total_insns slow.Cpu.stats);
  check_bool "latency visible" true
    (slow.Cpu.stats.Stats.cycles > fast.Cpu.stats.Stats.cycles)

let test_no_caches_config () =
  let prog = Codegen.baseline (vadd_program ()) in
  let run =
    run_image ~config:{ Cpu.scalar_config with Cpu.icache = None; Cpu.dcache = None } prog
  in
  check "no icache events" 0
    (run.Cpu.stats.Stats.icache_hits + run.Cpu.stats.Stats.icache_misses);
  check "no dcache events" 0
    (run.Cpu.stats.Stats.dcache_hits + run.Cpu.stats.Stats.dcache_misses)

let test_branch_stats () =
  let prog = Codegen.baseline (vadd_program ()) in
  let run = run_image prog in
  check_bool "branches counted" true (run.Cpu.stats.Stats.branches > 0);
  check_bool "few mispredicts on a hot loop" true
    (run.Cpu.stats.Stats.branch_mispredicts * 5 < run.Cpu.stats.Stats.branches)

let test_fuel_exhaustion () =
  let open Build in
  let prog =
    Program.make ~name:"spin"
      ~text:[ Program.Label "main"; b "main" ]
      ~data:[]
  in
  (* The watchdog returns a structured diagnostic with the machine
     snapshot at the failure point, not a bare string. *)
  match
    Cpu.run_result
      ~config:{ Cpu.scalar_config with Cpu.fuel = 100 }
      (Image.of_program prog)
  with
  | Ok _ -> Alcotest.fail "spin loop terminated"
  | Error d ->
      check_bool "fuel fault class" true (d.Diag.fault = Diag.Fuel_exhausted);
      check "retired = fuel + 1" 101 d.Diag.retired;
      check_bool "snapshot cycle advanced" true (d.Diag.cycle > 0);
      check_bool "snapshot pc inside image" true (d.Diag.pc >= 0);
      (* The _exn shim raises the same diagnostic. *)
      Alcotest.check_raises "shim raises Diag.Error" (Diag.Error d) (fun () ->
          ignore
            (Cpu.run
               ~config:{ Cpu.scalar_config with Cpu.fuel = 100 }
               (Image.of_program prog)))

let test_wild_pc () =
  let prog = Program.make ~name:"fall" ~text:[ Program.Label "main"; Build.mov (r 1) 0 ] ~data:[] in
  match Cpu.run_result (Image.of_program prog) with
  | Ok _ -> Alcotest.fail "fall-through terminated"
  | Error d -> check_bool "wild pc fault" true (d.Diag.fault = Diag.Wild_pc)

(* --- region bookkeeping --- *)

let test_region_calls_and_intervals () =
  let prog = Codegen.liquid (vadd_program ~frames:3 ()) in
  let run = run_image ~config:(Cpu.liquid_config ~lanes:4) prog in
  match run.Cpu.regions with
  | [ reg ] ->
      check "three calls" 3 (List.length reg.Cpu.calls);
      List.iter
        (fun (s, e) -> check_bool "interval ordered" true (e > s))
        reg.Cpu.calls;
      (* chronological and disjoint *)
      let rec ordered = function
        | (_, e1) :: ((s2, _) :: _ as rest) -> e1 <= s2 && ordered rest
        | _ -> true
      in
      check_bool "calls disjoint" true (ordered reg.Cpu.calls);
      check "served from ucode" 2 reg.Cpu.ucode_served;
      (match reg.Cpu.outcome with
      | Cpu.R_installed { width = 4; _ } -> ()
      | _ -> Alcotest.fail "expected installed at width 4")
  | rs -> Alcotest.failf "expected one region, got %d" (List.length rs)

let test_no_translator_means_scalar () =
  let prog = Codegen.liquid (vadd_program ()) in
  let run = run_image ~config:(Cpu.native_config ~lanes:4) prog in
  (* Accelerator present but no translator: the Liquid binary still runs,
     scalar. *)
  check "no vector insns" 0 run.Cpu.stats.Stats.vector_insns;
  check "no hits" 0 run.Cpu.stats.Stats.ucode_hits

let test_failed_region_not_retried () =
  (* A region that aborts permanently is translated once and never
     retried; calls keep running scalar. *)
  let open Build in
  let items =
    [
      Program.Label "main";
      mov (r 15) 0;
      label "fr";
      bl_region "f";
      addi (r 15) (r 15) 1;
      cmp (r 15) (i 4);
      b ~cond:Cond.Lt "fr";
      halt;
      Program.Label "f";
      (* straight-line region: no loop -> permanent abort *)
      mov (r 1) 7;
      st (r 1) "c" (i 0);
      ret;
    ]
  in
  let prog = Program.make ~name:"failing" ~text:items ~data:[ Kernels.wzeros "c" 8 ] in
  let run = run_image ~config:(Cpu.liquid_config ~lanes:4) prog in
  check "one translation attempt" 1 run.Cpu.stats.Stats.translations_started;
  check "one abort" 1 run.Cpu.stats.Stats.translations_aborted;
  match run.Cpu.regions with
  | [ reg ] -> (
      check "four calls" 4 (List.length reg.Cpu.calls);
      match reg.Cpu.outcome with
      | Cpu.R_failed reason ->
          check_bool "permanent" true
            (Liquid_pipeline.Diag.classify_abort reason = `Permanent)
      | _ -> Alcotest.fail "expected permanent failure")
  | _ -> Alcotest.fail "one region"

let test_plain_bl_not_translated () =
  (* An ordinary branch-and-link is never fed to the translator (the
     paper's false-positive discussion: the unique region branch is the
     only trigger). *)
  let open Build in
  let items =
    [
      Program.Label "main";
      bl "f";
      bl "f";
      halt;
      Program.Label "f";
    ]
    @ Build.counted_loop ~name:"f_top" ~count:8 ~ind:(r 0)
        [ ld (r 1) "a" (ri (r 0)); st (r 1) "c" (ri (r 0)) ]
    @ [ ret ]
  in
  let prog =
    Program.make ~name:"plain" ~text:items
      ~data:[ Kernels.warray "a" 8 (fun i -> i); Kernels.wzeros "c" 8 ]
  in
  let run = run_image ~config:(Cpu.liquid_config ~lanes:4) prog in
  check "no region calls" 0 run.Cpu.stats.Stats.region_calls;
  check "no translations" 0 run.Cpu.stats.Stats.translations_started

(* --- microcode cache dynamics --- *)

let many_loops_program n ~frames =
  let loops =
    List.init n (fun k ->
        {
          Vloop.name = Printf.sprintf "l%d" k;
          count = 16;
          body =
            [ vld (v 1) "a"; vmul (v 1) (v 1) (vi (k + 1)); vst (v 1) "c" ];
          reductions = [];
        })
  in
  framed_program ~frames ~data:(vadd_data 16) loops

let test_ucode_cache_thrash () =
  (* More hot loops than cache entries, called round-robin: every call
     misses under LRU. *)
  let prog = Codegen.liquid (many_loops_program 9 ~frames:3) in
  let run =
    run_image
      ~config:{ (Cpu.liquid_config ~lanes:4) with Cpu.ucode_entries = 8 }
      prog
  in
  check "no hits under thrash" 0 run.Cpu.stats.Stats.ucode_hits;
  check_bool "evictions happened" true (run.Cpu.stats.Stats.ucode_evictions > 0)

let test_ucode_cache_fits () =
  let prog = Codegen.liquid (many_loops_program 8 ~frames:3) in
  let run =
    run_image
      ~config:{ (Cpu.liquid_config ~lanes:4) with Cpu.ucode_entries = 8 }
      prog
  in
  (* 8 loops x 3 frames: first call of each translates, the rest hit. *)
  check "hits" 16 run.Cpu.stats.Stats.ucode_hits;
  check "no evictions" 0 run.Cpu.stats.Stats.ucode_evictions;
  check "occupancy" 8 run.Cpu.ucode_max_occupancy

(* --- translation latency --- *)

let test_translation_latency_delays_install () =
  (* With an enormous per-instruction cost, the second call arrives
     before the microcode is ready; with cost 1 it hits. *)
  let prog = Codegen.liquid (vadd_program ~frames:2 ()) in
  let img = Image.of_program prog in
  let fast =
    Cpu.run
      ~config:
        { (Cpu.liquid_config ~lanes:4) with Cpu.translator = Some { Cpu.cycles_per_insn = 1; Cpu.kind = Cpu.Hardware } }
      img
  in
  check "fast translator hits" 1 fast.Cpu.stats.Stats.ucode_hits;
  let slow =
    Cpu.run
      ~config:
        { (Cpu.liquid_config ~lanes:4) with Cpu.translator = Some { Cpu.cycles_per_insn = 5000; Cpu.kind = Cpu.Hardware } }
      img
  in
  check "slow translator misses" 0 slow.Cpu.stats.Stats.ucode_hits;
  check_bool "busy cycles accounted" true
    (slow.Cpu.stats.Stats.translation_busy_cycles
    > fast.Cpu.stats.Stats.translation_busy_cycles)

(* --- oracle mode --- *)

let test_oracle_serves_first_call () =
  let prog = Codegen.liquid (vadd_program ~frames:2 ()) in
  let run =
    run_image
      ~config:{ (Cpu.liquid_config ~lanes:4) with Cpu.oracle_translation = true }
      prog
  in
  check "every call served" 2 run.Cpu.stats.Stats.ucode_hits;
  check "no online translations" 0 run.Cpu.stats.Stats.translations_started;
  let normal = run_image ~config:(Cpu.liquid_config ~lanes:4) prog in
  check_bool "oracle at least as fast" true
    (run.Cpu.stats.Stats.cycles <= normal.Cpu.stats.Stats.cycles);
  check_memory_equal "oracle memory" run normal

(* --- binary compatibility failure modes --- *)

let test_native_on_scalar_machine_faults () =
  let prog = Codegen.native ~width:8 (vadd_program ()) in
  check_bool "sigill" true
    (try
       ignore (run_image prog);
       false
     with Sem.Sigill _ -> true)

let test_offline_translate_all () =
  let prog = Codegen.liquid (vadd_program ()) in
  let image = Image.of_program prog in
  match Offline.translate_all ~image ~lanes:8 () with
  | [ (_, label, Translator.Translated u) ] ->
      Alcotest.(check string) "label" "region_vadd_0" label;
      check "width" 8 u.Ucode.width
  | _ -> Alcotest.fail "expected one translated region"

let tests =
  [
    Alcotest.test_case "cycles >= instructions" `Quick test_cycles_at_least_insns;
    Alcotest.test_case "cache misses cost cycles" `Quick test_cache_misses_cost_cycles;
    Alcotest.test_case "cache-less config" `Quick test_no_caches_config;
    Alcotest.test_case "branch stats" `Quick test_branch_stats;
    Alcotest.test_case "fuel exhaustion" `Quick test_fuel_exhaustion;
    Alcotest.test_case "wild pc" `Quick test_wild_pc;
    Alcotest.test_case "region calls and intervals" `Quick
      test_region_calls_and_intervals;
    Alcotest.test_case "no translator means scalar" `Quick
      test_no_translator_means_scalar;
    Alcotest.test_case "failed region not retried" `Quick
      test_failed_region_not_retried;
    Alcotest.test_case "plain bl not translated" `Quick test_plain_bl_not_translated;
    Alcotest.test_case "ucode cache thrash" `Quick test_ucode_cache_thrash;
    Alcotest.test_case "ucode cache fits" `Quick test_ucode_cache_fits;
    Alcotest.test_case "translation latency" `Quick
      test_translation_latency_delays_install;
    Alcotest.test_case "oracle mode" `Quick test_oracle_serves_first_call;
    Alcotest.test_case "native binary on scalar machine" `Quick
      test_native_on_scalar_machine_faults;
    Alcotest.test_case "offline translate all" `Quick test_offline_translate_all;
  ]

(* --- asynchronous interrupts (context switches) --- *)

let test_interrupts_abort_and_retry () =
  let prog = Codegen.liquid (vadd_program ~frames:6 ~count:64 ()) in
  let img = Image.of_program prog in
  (* Interrupt every 100 cycles: the ~500-cycle region always loses its
     session; translation never completes but execution stays correct. *)
  let stormy =
    Cpu.run
      ~config:{ (Cpu.liquid_config ~lanes:4) with Cpu.interrupt_interval = Some 100 }
      img
  in
  check "no installs under interrupt storm" 0 stormy.Cpu.stats.Stats.ucode_installs;
  check_bool "aborts recorded" true (stormy.Cpu.stats.Stats.translations_aborted > 0);
  (* Region remains retryable: every frame attempts translation anew. *)
  check "six attempts" 6 stormy.Cpu.stats.Stats.translations_started;
  (* A calmer interrupt rate lets a later attempt finish. *)
  let calm =
    Cpu.run
      ~config:
        { (Cpu.liquid_config ~lanes:4) with Cpu.interrupt_interval = Some 3000 }
      img
  in
  check_bool "eventually installs" true (calm.Cpu.stats.Stats.ucode_installs > 0);
  check_bool "and serves" true (calm.Cpu.stats.Stats.ucode_hits > 0);
  (* Both compute the right answer. *)
  let reference = run_image (Codegen.baseline (vadd_program ~frames:6 ~count:64 ())) in
  Alcotest.(check (array int))
    "stormy result"
    (read_array reference (Codegen.baseline (vadd_program ~frames:6 ~count:64 ())) "c")
    (read_array stormy prog "c");
  Alcotest.(check (array int))
    "calm result"
    (read_array reference (Codegen.baseline (vadd_program ~frames:6 ~count:64 ())) "c")
    (read_array calm prog "c")

let interrupt_tests =
  [
    Alcotest.test_case "interrupts abort and retry" `Quick
      test_interrupts_abort_and_retry;
  ]

let tests = tests @ interrupt_tests

(* --- software (JIT) translation --- *)

let test_software_translation_stalls_but_matches () =
  let prog = Codegen.liquid (vadd_program ~frames:5 ~count:64 ()) in
  let img = Image.of_program prog in
  let hw =
    Cpu.run
      ~config:
        {
          (Cpu.liquid_config ~lanes:4) with
          Cpu.translator = Some { Cpu.cycles_per_insn = 1; Cpu.kind = Cpu.Hardware };
        }
      img
  in
  let sw =
    Cpu.run
      ~config:
        {
          (Cpu.liquid_config ~lanes:4) with
          Cpu.translator =
            Some { Cpu.cycles_per_insn = 200; Cpu.kind = Cpu.Software };
        }
      img
  in
  check "same hits" hw.Cpu.stats.Stats.ucode_hits sw.Cpu.stats.Stats.ucode_hits;
  check_bool "software pays the stall" true
    (sw.Cpu.stats.Stats.cycles > hw.Cpu.stats.Stats.cycles);
  (* The stall is exactly the software translator's busy time (the
     hardware run's busy time is off the critical path and never
     charged). *)
  check "stall size" sw.Cpu.stats.Stats.translation_busy_cycles
    (sw.Cpu.stats.Stats.cycles - hw.Cpu.stats.Stats.cycles);
  check_memory_equal "same results" hw sw

let tests =
  tests
  @ [
      Alcotest.test_case "software translation stalls but matches" `Quick
        test_software_translation_stalls_but_matches;
    ]

(* --- trace observer --- *)

let test_trace_events () =
  let prog = Codegen.liquid (vadd_program ~frames:2 ~count:16 ()) in
  let img = Image.of_program prog in
  let insns = ref 0
  and uops = ref 0
  and scalar_calls = ref 0
  and ucode_calls = ref 0
  and translated = ref 0 in
  let on_trace = function
    | Cpu.T_insn _ -> incr insns
    | Cpu.T_uop _ -> incr uops
    | Cpu.T_region { event = `Scalar_call; _ } -> incr scalar_calls
    | Cpu.T_region { event = `Ucode_call; _ } -> incr ucode_calls
    | Cpu.T_region { event = `Translated w; _ } ->
        check "translated width" 4 w;
        incr translated
    | Cpu.T_region { event = `Aborted _; _ } -> Alcotest.fail "unexpected abort"
    | Cpu.T_translation _ -> ()
  in
  let run =
    Cpu.run
      ~config:{ (Cpu.liquid_config ~lanes:4) with Cpu.on_trace = Some on_trace }
      img
  in
  check "every scalar retirement observed" run.Cpu.stats.Stats.scalar_insns
    (!insns + !uops - run.Cpu.stats.Stats.vector_insns);
  check "one scalar region call" 1 !scalar_calls;
  check "one microcode region call" 1 !ucode_calls;
  check "one translation" 1 !translated;
  check_bool "microcode uops observed" true (!uops > 0)

let tests =
  tests
  @ [ Alcotest.test_case "trace events" `Quick test_trace_events ]
