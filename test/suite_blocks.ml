(* Differential tests for the translation-block engine (Blocks).

   The engine is an execution strategy, not a semantics change, so its
   whole contract is bit-identity: for every workload, variant and
   accelerator width, the run with blocks on must produce exactly the
   same counters, register file and memory as the step-by-step run with
   blocks off. The matrix below covers all fifteen workloads under
   baseline, Liquid-on-scalar, and Liquid/oracle/VLA at widths
   2/4/8/16 — every Stats field, the unit counters (caches, predictor,
   microcode cache) and FNV fingerprints of final register and memory
   state.

   Separate cases cover the fidelity fallbacks: an interrupt-driven run
   (epoch catch-up across block stretches), the engine's self-disable
   under fault hooks and trace observers (per-step observation must win
   over speed), and a seeded fault campaign run end-to-end with the
   engine left at its default. *)

open Liquid_prog
open Liquid_pipeline
open Liquid_scalarize
open Liquid_harness
open Liquid_workloads
module Stats = Liquid_machine.Stats

let regs_hash = Liquid_faults.Fingerprint.regs_hash
let mem_hash = Liquid_faults.Fingerprint.mem_hash

let widths = [ 2; 4; 8; 16 ]

let variants =
  [ Runner.Baseline; Runner.Liquid_scalar ]
  @ List.concat_map
      (fun w ->
        [
          Runner.Liquid w;
          Runner.Liquid_oracle w;
          Runner.Liquid_vla w;
          Runner.Liquid_vla_oracle w;
        ])
      widths

(* Compare two runs of the same (workload, variant) observable by
   observable. The cycle counter first and by name: it folds in every
   timing rule (stalls, penalties, miss latencies), so when the engine
   drifts this is the check that reads best in a failure. *)
let check_identical what (on : Cpu.run) (off : Cpu.run) =
  let ck field = Alcotest.(check int) (what ^ ": " ^ field) in
  ck "cycles" off.Cpu.stats.Stats.cycles on.Cpu.stats.Stats.cycles;
  Alcotest.(check bool)
    (what ^ ": full Stats record") true
    (off.Cpu.stats = on.Cpu.stats);
  Alcotest.(check bool)
    (what ^ ": icache counters") true
    (off.Cpu.icache_counters = on.Cpu.icache_counters);
  Alcotest.(check bool)
    (what ^ ": dcache counters") true
    (off.Cpu.dcache_counters = on.Cpu.dcache_counters);
  Alcotest.(check bool)
    (what ^ ": predictor counters") true
    (off.Cpu.bpred_counters = on.Cpu.bpred_counters);
  Alcotest.(check bool)
    (what ^ ": ucode cache counters") true
    (off.Cpu.ucache_counters = on.Cpu.ucache_counters);
  ck "ucode max occupancy" off.Cpu.ucode_max_occupancy
    on.Cpu.ucode_max_occupancy;
  ck "register hash" (regs_hash off.Cpu.regs) (regs_hash on.Cpu.regs)

let check_variant w variant =
  match Runner.program_of w variant with
  | exception Codegen.Unsupported_width _ -> ()
  | program ->
      let image = Image.of_program program in
      let on = Runner.run_cached ~blocks:true w variant in
      let off = Runner.run_cached ~blocks:false w variant in
      let what =
        Printf.sprintf "%s/%s" w.Workload.name (Runner.variant_name variant)
      in
      check_identical what on.Runner.run off.Runner.run;
      Alcotest.(check int)
        (what ^ ": memory hash")
        (mem_hash image off.Runner.run.Cpu.memory)
        (mem_hash image on.Runner.run.Cpu.memory);
      (* The comparison is vacuous if the engine never actually ran. *)
      Alcotest.(check bool)
        (what ^ ": engine executed blocks")
        true
        (on.Runner.run.Cpu.block_execs > 0);
      Alcotest.(check int)
        (what ^ ": engine off stays off")
        0 off.Runner.run.Cpu.block_execs

let test_workload w () = List.iter (check_variant w) variants

(* --- interrupts: epoch catch-up across block stretches --- *)

(* Blocks never run [interrupt_check]; the countdown threshold catches
   up by division on the next step. The observable effects (aborted
   translator sessions, their retry translations) must still land on
   identical cycles. FFT at a 1000-cycle context-switch interval aborts
   several sessions mid-flight. *)
let test_interrupts () =
  let w =
    match Workload.find "FFT" with Some w -> w | None -> assert false
  in
  let image = Image.of_program (Codegen.liquid w.Workload.program) in
  let config =
    { (Cpu.liquid_config ~lanes:8) with Cpu.interrupt_interval = Some 1000 }
  in
  let on = Cpu.run ~config image in
  let off = Cpu.run ~config:{ config with Cpu.blocks = false } image in
  check_identical "FFT/interrupt-1000" on off;
  Alcotest.(check bool)
    "interrupts actually fired (sessions aborted)" true
    (on.Cpu.stats.Stats.translations_aborted > 0);
  Alcotest.(check bool) "engine executed blocks" true (on.Cpu.block_execs > 0)

(* --- fidelity self-disable --- *)

let noop_hooks =
  {
    Cpu.fh_abort = (fun ~entry:_ ~observed:_ -> None);
    fh_corrupt = (fun ~entry:_ ~observed:_ -> false);
    fh_evict = (fun ~entry:_ ~call:_ -> false);
  }

(* Fault hooks and trace observers need per-step observation, so the
   engine must not run at all — and with no-op hooks the run must still
   match the unhooked one exactly. *)
let test_self_disable () =
  let w =
    match Workload.find "GSM Dec." with Some w -> w | None -> assert false
  in
  let image = Image.of_program (Codegen.liquid w.Workload.program) in
  let config = Cpu.liquid_config ~lanes:8 in
  let plain = Cpu.run ~config image in
  Alcotest.(check bool) "engine on by default" true (plain.Cpu.block_execs > 0);
  let faulted =
    Cpu.run ~config:{ config with Cpu.faults = Some noop_hooks } image
  in
  Alcotest.(check int) "fault hooks disable the engine" 0
    faulted.Cpu.block_execs;
  check_identical "GSM Dec./noop-fault-hooks" plain faulted;
  let traced =
    Cpu.run ~config:{ config with Cpu.on_trace = Some (fun _ -> ()) } image
  in
  Alcotest.(check int) "trace observer disables the engine" 0
    traced.Cpu.block_execs;
  check_identical "GSM Dec./noop-trace" plain traced;
  let off = Cpu.run ~config:{ config with Cpu.blocks = false } image in
  Alcotest.(check int) "blocks=false builds no engine" 0 off.Cpu.blocks_compiled

(* The fault campaign runs with the config's default [blocks = true]:
   every injected case must still degrade to the scalar-identical state,
   because the campaign's hooks force the engine off underneath it. *)
let test_fault_campaign () =
  let w =
    match Workload.find "FIR" with Some w -> w | None -> assert false
  in
  let report =
    Liquid_faults.Campaign.run ~workloads:[ w ] ~widths:[ 8 ] ~seed:2007 ()
  in
  Alcotest.(check bool)
    "campaign survives with the engine at its default" true
    (Liquid_faults.Campaign.survived report)

let tests =
  List.map
    (fun (w : Workload.t) ->
      Alcotest.test_case
        (Printf.sprintf "differential %s" w.Workload.name)
        `Quick (test_workload w))
    (Workload.all ())
  @ [
      Alcotest.test_case "interrupt epoch catch-up" `Quick test_interrupts;
      Alcotest.test_case "fidelity self-disable" `Quick test_self_disable;
      Alcotest.test_case "fault campaign at default config" `Quick
        test_fault_campaign;
    ]
