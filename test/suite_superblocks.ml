(* Differential tests for the trace-superblock tier (Blocks).

   Like the block engine underneath it, the tier is an execution
   strategy, not a semantics change: for every workload, variant and
   accelerator width, the run with superblocks on must produce exactly
   the same pinned counters, register file and memory as the run with
   superblocks off (both with translation blocks on). The matrix below
   covers all fifteen workloads under baseline, Liquid-on-scalar, and
   Liquid/oracle/VLA at widths 2/4/8/16 — every Stats field, the unit
   counters (caches, predictor, microcode cache) and FNV fingerprints
   of final register and memory state — plus the predication
   conservation law on both runs.

   Hand-built loops then attack the guard: trip counts straddling the
   formation threshold (a superblock formed on the very last iteration,
   or never), a loop whose trip count changes between re-entries so the
   guard bails at a different iteration every time, a body with an
   internal conditional branch (formation must fail, execution must not
   care), and a fuel budget that expires mid-loop (the tier must bail
   to the block path and die on exactly the same instruction). Separate
   cases cover the inherited fidelity self-disable (fault hooks, trace
   observers) and a seeded fault campaign at the default config. *)

open Liquid_isa
open Liquid_prog
open Liquid_pipeline
open Liquid_scalarize
open Liquid_harness
open Liquid_workloads
module Stats = Liquid_machine.Stats

let regs_hash = Liquid_faults.Fingerprint.regs_hash
let mem_hash = Liquid_faults.Fingerprint.mem_hash

let widths = [ 2; 4; 8; 16 ]

let variants =
  [ Runner.Baseline; Runner.Liquid_scalar ]
  @ List.concat_map
      (fun w ->
        [
          Runner.Liquid w;
          Runner.Liquid_oracle w;
          Runner.Liquid_vla w;
          Runner.Liquid_vla_oracle w;
        ])
      widths

(* Pinned counters only: block/superblock execution tallies are
   telemetry of the strategy itself and legitimately differ between the
   two runs; everything here must not. *)
let check_identical what (on : Cpu.run) (off : Cpu.run) =
  let ck field = Alcotest.(check int) (what ^ ": " ^ field) in
  ck "cycles" off.Cpu.stats.Stats.cycles on.Cpu.stats.Stats.cycles;
  Alcotest.(check bool)
    (what ^ ": full Stats record") true
    (off.Cpu.stats = on.Cpu.stats);
  Alcotest.(check bool)
    (what ^ ": icache counters") true
    (off.Cpu.icache_counters = on.Cpu.icache_counters);
  Alcotest.(check bool)
    (what ^ ": dcache counters") true
    (off.Cpu.dcache_counters = on.Cpu.dcache_counters);
  Alcotest.(check bool)
    (what ^ ": predictor counters") true
    (off.Cpu.bpred_counters = on.Cpu.bpred_counters);
  Alcotest.(check bool)
    (what ^ ": ucode cache counters") true
    (off.Cpu.ucache_counters = on.Cpu.ucache_counters);
  ck "ucode max occupancy" off.Cpu.ucode_max_occupancy
    on.Cpu.ucode_max_occupancy;
  ck "register hash" (regs_hash off.Cpu.regs) (regs_hash on.Cpu.regs)

let check_conservation what (r : Cpu.run) =
  Alcotest.(check int)
    (what ^ ": pred fast + masked = dispatched")
    r.Cpu.vla_pred_execs
    (r.Cpu.pred_fast_iters + r.Cpu.pred_masked_iters)

let check_variant w variant =
  match Runner.program_of w variant with
  | exception Codegen.Unsupported_width _ -> ()
  | program ->
      let image = Image.of_program program in
      let on = Runner.run_cached ~superblocks:true w variant in
      let off = Runner.run_cached ~superblocks:false w variant in
      let what =
        Printf.sprintf "%s/%s" w.Workload.name (Runner.variant_name variant)
      in
      check_identical what on.Runner.run off.Runner.run;
      Alcotest.(check int)
        (what ^ ": memory hash")
        (mem_hash image off.Runner.run.Cpu.memory)
        (mem_hash image on.Runner.run.Cpu.memory);
      check_conservation (what ^ " [super on]") on.Runner.run;
      check_conservation (what ^ " [super off]") off.Runner.run;
      Alcotest.(check int)
        (what ^ ": tier off forms nothing")
        0 off.Runner.run.Cpu.superblocks_compiled;
      Alcotest.(check int)
        (what ^ ": tier off iterates nothing")
        0 off.Runner.run.Cpu.superblock_iters

let test_workload w () = List.iter (check_variant w) variants

(* The matrix is vacuous if the tier never actually fires: the probe
   workloads below are known to form and iterate superblocks. *)
let test_activity () =
  let probe name variant =
    let w =
      match Workload.find name with Some w -> w | None -> assert false
    in
    let r = (Runner.run_cached w variant).Runner.run in
    Alcotest.(check bool)
      (name ^ ": superblocks formed") true
      (r.Cpu.superblocks_compiled > 0);
    Alcotest.(check bool)
      (name ^ ": superblock iterations ran") true
      (r.Cpu.superblock_iters > 0);
    Alcotest.(check bool)
      (name ^ ": every execution run bailed out exactly once") true
      (r.Cpu.superblock_bailouts > 0
      && r.Cpu.superblock_bailouts <= r.Cpu.superblock_iters)
  in
  probe "GSM Dec." Runner.Baseline;
  probe "FIR" Runner.Baseline;
  probe "MPEG2 Dec." (Runner.Liquid 8)

(* --- hand-built loops around the formation threshold --- *)

(* A do-while loop over [trips] iterations: load, accumulate, store,
   bump, compare, conditional back-edge. One conditional back-edge,
   nothing else conditional — the canonical formation candidate. *)
let counting_program ~trips =
  let open Build in
  Program.make
    ~name:(Printf.sprintf "count%d" trips)
    ~text:
      [
        Program.Label "main";
        mov (r 1) 0;
        mov (r 2) 0;
        label "loop";
        ld (r 3) "xs" (ri (r 1));
        dp Opcode.Add (r 2) (r 2) (ri (r 3));
        st (r 2) "ys" (ri (r 1));
        addi (r 1) (r 1) 1;
        cmp (r 1) (i trips);
        b ~cond:Cond.Lt "loop";
        st (r 2) "sum" (i 0);
        halt;
      ]
    ~data:
      [
        Data.make ~name:"xs" ~esize:Esize.Word
          (Array.init (max trips 1) (fun i -> (i * 13) - 7));
        Data.zeros ~name:"ys" ~esize:Esize.Word (max trips 1);
        Data.zeros ~name:"sum" ~esize:Esize.Word 1;
      ]

let run_counting ~superblocks trips =
  let config = { Cpu.scalar_config with Cpu.superblocks } in
  Cpu.run ~config (Image.of_program (counting_program ~trips))

(* The threshold is 16 taken back-edges counted on the block that
   starts at the loop head. Iteration 1 reaches the latch through the
   program-entry block (whose pc precedes the head, so the backward
   test rejects it); iterations 2..trips-1 fire the counted edge. The
   first trip count that forms is therefore 18, with exactly one
   iteration run inside the trace before the guard fails; every larger
   count runs [trips - 17]. *)
let test_trip_counts () =
  List.iter
    (fun trips ->
      let on = run_counting ~superblocks:true trips in
      let off = run_counting ~superblocks:false trips in
      let what = Printf.sprintf "count%d" trips in
      check_identical what on off;
      Alcotest.(check bool)
        (what ^ ": memories equal")
        true
        (Liquid_machine.Memory.equal on.Cpu.memory off.Cpu.memory);
      let expect_supers = if trips >= 18 then 1 else 0 in
      Alcotest.(check int)
        (what ^ ": superblocks formed")
        expect_supers on.Cpu.superblocks_compiled;
      Alcotest.(check int)
        (what ^ ": superblock iterations")
        (if trips >= 18 then trips - 17 else 0)
        on.Cpu.superblock_iters;
      Alcotest.(check int)
        (what ^ ": bailouts (one per guard exit)")
        expect_supers on.Cpu.superblock_bailouts)
    [ 1; 2; 15; 16; 17; 18; 19; 31; 33; 100 ]

(* An inner loop whose trip count is recomputed by the outer loop
   ((outer land 7) + 1, so between 1 and 8 inner iterations): the
   superblock formed on the inner latch is re-entered dozens of times
   and its guard fails at a different iteration each round. The outer
   back-edge is also hot, but its body contains the inner conditional
   branch, so formation on the outer latch must fail — and keep
   failing silently. *)
let varying_program =
  let open Build in
  Program.make ~name:"varying"
    ~text:
      [
        Program.Label "main";
        mov (r 1) 0;
        mov (r 5) 0;
        label "outer";
        dp Opcode.And (r 4) (r 1) (i 7);
        addi (r 4) (r 4) 1;
        mov (r 2) 0;
        label "inner";
        ld (r 3) "xs" (ri (r 2));
        dp Opcode.Add (r 5) (r 5) (ri (r 3));
        addi (r 2) (r 2) 1;
        cmp (r 2) (ri (r 4));
        b ~cond:Cond.Lt "inner";
        st (r 5) "ys" (ri (r 1));
        addi (r 1) (r 1) 1;
        cmp (r 1) (i 64);
        b ~cond:Cond.Lt "outer";
        halt;
      ]
    ~data:
      [
        Data.make ~name:"xs" ~esize:Esize.Word
          (Array.init 8 (fun i -> i + 100));
        Data.zeros ~name:"ys" ~esize:Esize.Word 64;
      ]

let test_varying_trip_counts () =
  let run ~superblocks =
    let config = { Cpu.scalar_config with Cpu.superblocks } in
    Cpu.run ~config (Image.of_program varying_program)
  in
  let on = run ~superblocks:true in
  let off = run ~superblocks:false in
  check_identical "varying" on off;
  Alcotest.(check bool)
    "varying: memories equal" true
    (Liquid_machine.Memory.equal on.Cpu.memory off.Cpu.memory);
  (* only the inner latch can form; the outer body's conditional branch
     makes its trace ineligible *)
  Alcotest.(check int) "varying: only the inner loop forms" 1
    on.Cpu.superblocks_compiled;
  Alcotest.(check bool)
    "varying: guard re-entered many times (one bailout per entry)" true
    (on.Cpu.superblock_bailouts > 10)

(* A body with an internal conditional skip: the trace walk from the
   loop head hits a conditional terminator mid-trace, so formation
   fails — once, permanently — while execution stays identical. *)
let branchy_program =
  let open Build in
  Program.make ~name:"branchy"
    ~text:
      [
        Program.Label "main";
        mov (r 1) 0;
        mov (r 2) 0;
        label "loop";
        ld (r 3) "xs" (ri (r 1));
        cmp (r 3) (i 0);
        b ~cond:Cond.Lt "skip";
        dp Opcode.Add (r 2) (r 2) (ri (r 3));
        label "skip";
        addi (r 1) (r 1) 1;
        cmp (r 1) (i 200);
        b ~cond:Cond.Lt "loop";
        st (r 2) "sum" (i 0);
        halt;
      ]
    ~data:
      [
        Data.make ~name:"xs" ~esize:Esize.Word
          (Array.init 200 (fun i -> if i mod 3 = 0 then -i else i));
        Data.zeros ~name:"sum" ~esize:Esize.Word 1;
      ]

let test_formation_failure () =
  let run ~superblocks =
    let config = { Cpu.scalar_config with Cpu.superblocks } in
    Cpu.run ~config (Image.of_program branchy_program)
  in
  let on = run ~superblocks:true in
  let off = run ~superblocks:false in
  check_identical "branchy" on off;
  Alcotest.(check int) "branchy: formation failed" 0
    on.Cpu.superblocks_compiled;
  Alcotest.(check int) "branchy: no superblock iterations" 0
    on.Cpu.superblock_iters

(* Fuel expiring in the middle of a hot loop: the tier must bail to the
   block path at an iteration boundary and let it die on exactly the
   same instruction, cycle and retired count as the tier-off run. *)
let test_fuel_bailout () =
  List.iter
    (fun fuel ->
      let image = Image.of_program (counting_program ~trips:5000) in
      let result superblocks =
        Cpu.run_result
          ~config:{ Cpu.scalar_config with Cpu.fuel; Cpu.superblocks }
          image
      in
      match (result true, result false) with
      | Error don, Error doff ->
          Alcotest.(check bool)
            (Printf.sprintf "fuel %d: identical diagnostics" fuel)
            true (don = doff);
          Alcotest.(check string)
            (Printf.sprintf "fuel %d: fuel fault" fuel)
            "fuel-exhausted"
            (Diag.fault_name don.Diag.fault)
      | _ ->
          Alcotest.failf "fuel %d: expected both runs to exhaust fuel" fuel)
    [ 200; 301; 1111 ]

(* --- inherited fidelity self-disable --- *)

let noop_hooks =
  {
    Cpu.fh_abort = (fun ~entry:_ ~observed:_ -> None);
    fh_corrupt = (fun ~entry:_ ~observed:_ -> false);
    fh_evict = (fun ~entry:_ ~call:_ -> false);
  }

(* Fault hooks and trace observers force the block engine off, and the
   tier rides on the engine: all superblock telemetry must be zero and
   the run still exact. *)
let test_self_disable () =
  let w =
    match Workload.find "GSM Dec." with Some w -> w | None -> assert false
  in
  let image = Image.of_program (Codegen.liquid w.Workload.program) in
  let config = Cpu.liquid_config ~lanes:8 in
  let plain = Cpu.run ~config image in
  Alcotest.(check bool)
    "tier on by default" true
    (plain.Cpu.superblocks_compiled > 0);
  let faulted =
    Cpu.run ~config:{ config with Cpu.faults = Some noop_hooks } image
  in
  Alcotest.(check int) "fault hooks disable the tier" 0
    faulted.Cpu.superblocks_compiled;
  Alcotest.(check int) "fault hooks: no superblock iterations" 0
    faulted.Cpu.superblock_iters;
  check_identical "GSM Dec./noop-fault-hooks" plain faulted;
  let traced =
    Cpu.run ~config:{ config with Cpu.on_trace = Some (fun _ -> ()) } image
  in
  Alcotest.(check int) "trace observer disables the tier" 0
    traced.Cpu.superblocks_compiled;
  check_identical "GSM Dec./noop-trace" plain traced;
  let off = Cpu.run ~config:{ config with Cpu.blocks = false } image in
  Alcotest.(check int) "blocks=false forms no superblocks" 0
    off.Cpu.superblocks_compiled

(* The seeded fault campaign runs with the config's defaults (blocks
   and superblocks both on): every injected case must still degrade to
   the scalar-identical state, because the campaign's hooks force the
   whole engine off underneath it. *)
let test_fault_campaign () =
  let w =
    match Workload.find "FIR" with Some w -> w | None -> assert false
  in
  let report =
    Liquid_faults.Campaign.run ~workloads:[ w ] ~widths:[ 8 ] ~seed:2007 ()
  in
  Alcotest.(check bool)
    "campaign survives with the tier at its default" true
    (Liquid_faults.Campaign.survived report)

let tests =
  List.map
    (fun (w : Workload.t) ->
      Alcotest.test_case
        (Printf.sprintf "differential %s" w.Workload.name)
        `Quick (test_workload w))
    (Workload.all ())
  @ [
      Alcotest.test_case "superblock activity on probe workloads" `Quick
        test_activity;
      Alcotest.test_case "trip counts around the formation threshold" `Quick
        test_trip_counts;
      Alcotest.test_case "varying trip counts across re-entries" `Quick
        test_varying_trip_counts;
      Alcotest.test_case "formation fails on internal conditionals" `Quick
        test_formation_failure;
      Alcotest.test_case "fuel exhaustion mid-superblock" `Quick
        test_fuel_bailout;
      Alcotest.test_case "fidelity self-disable" `Quick test_self_disable;
      Alcotest.test_case "fault campaign at default config" `Quick
        test_fault_campaign;
    ]
