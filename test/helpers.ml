(* Shared fixtures and utilities for the test suites. *)

open Liquid_isa
open Liquid_prog
open Liquid_scalarize
module Cpu = Liquid_pipeline.Cpu
module Memory = Liquid_machine.Memory

let v = Build.v
let r = Build.r

(* A program with scalar glue driving [frames] executions of the given
   loops. *)
let framed_program ?(name = "test") ?(frames = 1) ~data loops =
  let open Build in
  (* r15 is outside the v1..v12 register image of loop bodies and is not
     the link, induction or scratch register, so it survives both inline
     loops and region calls. *)
  let frame_reg = r 15 in
  let pre = Vloop.Code [ mov frame_reg 0; label "frame_top" ] in
  let post =
    Vloop.Code
      [
        addi frame_reg frame_reg 1;
        cmp frame_reg (i frames);
        b ~cond:Liquid_isa.Cond.Lt "frame_top";
      ]
  in
  {
    Vloop.name;
    sections = (pre :: List.map (fun l -> Vloop.Loop l) loops) @ [ post ];
    data;
  }

let simple_program ?name ?frames ~data loop =
  framed_program ?name ?frames ~data [ loop ]

let words n f = Array.init n f

let run_image ?(config = Cpu.scalar_config) program =
  Cpu.run ~config (Image.of_program program)

let read_array (run : Cpu.run) program name =
  let img = Image.of_program program in
  let addr = Image.array_addr img name in
  match Program.find_data program name with
  | None -> invalid_arg ("read_array: " ^ name)
  | Some d ->
      let b = Esize.bytes d.esize in
      Array.init (Array.length d.values) (fun i ->
          Memory.read run.Cpu.memory ~addr:(addr + (i * b)) ~bytes:b
            ~signed:true)

let check_arrays = Alcotest.(check (array int))

let check_memory_equal msg (a : Cpu.run) (b : Cpu.run) =
  if not (Memory.equal a.Cpu.memory b.Cpu.memory) then begin
    let diffs = Memory.diff a.Cpu.memory b.Cpu.memory in
    List.iter
      (fun (addr, x, y) ->
        Printf.printf "  mem[0x%x]: %d vs %d\n" addr x y)
      diffs;
    Alcotest.fail (msg ^ ": memories differ")
  end

(* The paper's running FFT example (§3.4, Figures 2-4), expressed in the
   vector IR: butterfly loads of RealOut/ImagOut, multiply-subtract,
   add/sub, masked merge through a mid-loop butterfly that forces
   fission. *)
let fft_loop ~count =
  let open Build in
  {
    Vloop.name = "fft";
    count;
    body =
      [
        vld (v 1) "RealOut";
        vbfly 8 (v 1) (v 1);
        vld (v 2) "ImagOut";
        vbfly 8 (v 2) (v 2);
        vld (v 3) "ar";
        vld (v 4) "ai";
        vmul (v 3) (v 3) (vr (v 1));
        vmul (v 4) (v 4) (vr (v 2));
        vsub (v 6) (v 3) (vr (v 4));
        vld (v 5) "RealOut";
        vsub (v 7) (v 5) (vr (v 6));
        vadd (v 8) (v 5) (vr (v 6));
        vand (v 7) (v 7) (vmask [ 0; 0; 0; 0; 1; 1; 1; 1 ]);
        vbfly 8 (v 7) (v 7);
        vand (v 8) (v 8) (vmask [ 1; 1; 1; 1; 0; 0; 0; 0 ]);
        vorr (v 9) (v 7) (vr (v 8));
        vst (v 9) "RealOut";
      ];
    reductions = [];
  }

let fft_data ~count =
  [
    Data.make ~name:"RealOut" ~esize:Esize.Word
      (words count (fun i -> (i * 7) - 100));
    Data.make ~name:"ImagOut" ~esize:Esize.Word
      (words count (fun i -> (i * 3) + 11));
    Data.make ~name:"ar" ~esize:Esize.Word (words count (fun i -> i mod 9));
    Data.make ~name:"ai" ~esize:Esize.Word (words count (fun i -> 5 - (i mod 4)));
  ]

(* Build a standalone region from raw items and translate it offline. *)
let translate_items ?(lanes = 4) ?(max_uops = 64) ?backend ~data items =
  let open Build in
  let prog =
    Liquid_prog.Program.make ~name:"t"
      ~text:
        ((Liquid_prog.Program.Label "main" :: bl_region "f" :: [ halt ])
        @ (Liquid_prog.Program.Label "f" :: items)
        @ [ ret ])
      ~data
  in
  let image = Liquid_prog.Image.of_program prog in
  let entry =
    match Liquid_prog.Image.find_label image "f" with
    | Some e -> e
    | None -> assert false
  in
  Liquid_pipeline.Offline.translate_region ~max_uops ?backend ~image ~lanes
    ~entry ()

let expect_abort ?lanes ?max_uops ?backend ~data items reason_check msg =
  match translate_items ?lanes ?max_uops ?backend ~data items with
  | Liquid_translate.Translator.Aborted r ->
      if not (reason_check r) then
        Alcotest.failf "%s: wrong abort reason: %s" msg
          (Liquid_translate.Abort.to_string r)
  | Liquid_translate.Translator.Translated u ->
      Alcotest.failf "%s: unexpectedly translated:@.%a" msg
        Liquid_translate.Ucode.pp u

let expect_ucode ?lanes ?max_uops ?backend ~data items msg =
  match translate_items ?lanes ?max_uops ?backend ~data items with
  | Liquid_translate.Translator.Translated u -> u
  | Liquid_translate.Translator.Aborted r ->
      Alcotest.failf "%s: aborted: %s" msg (Liquid_translate.Abort.to_string r)
