(* Tests for the hardware cost model and the experiment harness. *)

open Liquid_harness
open Liquid_workloads
module Hwmodel = Liquid_hwmodel.Hwmodel

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- hardware model: calibrated to the paper's Table 2 --- *)

let test_hwmodel_matches_paper () =
  let rep = Hwmodel.estimate Hwmodel.default_params in
  check "total cells" 174_117 rep.Hwmodel.total_cells;
  check "critical path" 16 rep.Hwmodel.crit_path_gates;
  Alcotest.(check (float 0.001)) "delay" 1.51 rep.Hwmodel.crit_path_ns;
  check_bool "under 0.2 mm^2" true (rep.Hwmodel.area_mm2 < 0.2)

let test_hwmodel_register_state_share () =
  (* "this structure comprises 55% of the control generator die area" *)
  let rep = Hwmodel.estimate Hwmodel.default_params in
  let share =
    float_of_int rep.Hwmodel.regstate_cells /. float_of_int rep.Hwmodel.total_cells
  in
  check_bool "55% within a point" true (share > 0.54 && share < 0.56)

let test_hwmodel_scaling_laws () =
  let at lanes = Hwmodel.estimate { Hwmodel.default_params with Hwmodel.lanes } in
  (* register state grows linearly with vector length *)
  let r2 = at 2 and r4 = at 4 and r8 = at 8 in
  let d1 = r4.Hwmodel.regstate_cells - r2.Hwmodel.regstate_cells in
  let d2 = r8.Hwmodel.regstate_cells - r4.Hwmodel.regstate_cells in
  check "linear in width" (2 * d1) d2;
  (* the decoder does not scale *)
  check "decoder fixed" r2.Hwmodel.decoder_cells r8.Hwmodel.decoder_cells;
  (* critical path grows with log2 of the lane count *)
  check "one gate per doubling" 1 (r4.Hwmodel.crit_path_gates - r2.Hwmodel.crit_path_gates);
  (* more registers cost area *)
  let r32 = Hwmodel.estimate { Hwmodel.default_params with Hwmodel.registers = 32 } in
  check_bool "registers cost area" true (r32.Hwmodel.total_cells > r8.Hwmodel.total_cells)

(* Pin the VLA translator row the way the 8-wide fixed row is pinned:
   the paper's 174,117 cells plus the modeled whilelt comparator,
   predicate file, widened opcode generator and table-lookup permutation
   unit, and one extra critical-path gate for the governing-predicate
   mux (the table unit builds its index once per region call, off the
   per-uop path, so it adds area but no gates). *)
let test_hwmodel_vla_row () =
  let rep =
    Hwmodel.estimate { Hwmodel.default_params with Hwmodel.target = Hwmodel.Vla }
  in
  check "total cells" 180_153 rep.Hwmodel.total_cells;
  check "predication cells" 2_436 rep.Hwmodel.pred_cells;
  check "table-lookup unit cells" 3_000 rep.Hwmodel.tbl_cells;
  check "critical path" 17 rep.Hwmodel.crit_path_gates;
  Alcotest.(check (float 0.001)) "delay" 1.604 rep.Hwmodel.crit_path_ns;
  check_bool "still under 0.2 mm^2" true (rep.Hwmodel.area_mm2 < 0.2);
  (* predicate file grows with log2 of the lane count only *)
  let at lanes =
    Hwmodel.estimate
      { Hwmodel.default_params with Hwmodel.lanes; Hwmodel.target = Hwmodel.Vla }
  in
  let r4 = at 4 and r8 = at 8 and r16 = at 16 in
  check "one log step per doubling"
    (r8.Hwmodel.pred_cells - r4.Hwmodel.pred_cells)
    (r16.Hwmodel.pred_cells - r8.Hwmodel.pred_cells);
  (* index adders scale linearly with the lane count; the fixed target
     carries none of this *)
  check "linear per-lane index adders"
    (r8.Hwmodel.tbl_cells - r4.Hwmodel.tbl_cells)
    ((r16.Hwmodel.tbl_cells - r8.Hwmodel.tbl_cells) / 2);
  check "no table unit on the fixed target" 0
    (Hwmodel.estimate Hwmodel.default_params).Hwmodel.tbl_cells

let test_hwmodel_buffer_split () =
  (* "256 bytes of memory ... a little more than half of its cells" *)
  let rep = Hwmodel.estimate Hwmodel.default_params in
  check_bool "storage slightly above half" true
    (float_of_int (540 * 64) /. float_of_int rep.Hwmodel.buffer_cells > 0.5);
  Alcotest.check_raises "bad params" (Invalid_argument "Hwmodel.estimate: bad parameters")
    (fun () -> ignore (Hwmodel.estimate { Hwmodel.default_params with Hwmodel.lanes = 1 }))

(* --- experiments (structure checks on a trimmed width list) --- *)

let test_table5_structure () =
  let rows = Experiments.table5 () in
  check "fifteen rows" 15 (List.length rows);
  List.iter
    (fun (row : Experiments.table5_row) ->
      check_bool (row.Experiments.t5_name ^ " mean <= max") true
        (row.Experiments.t5_mean <= float_of_int row.Experiments.t5_max);
      check_bool
        (row.Experiments.t5_name ^ " within 25% of the paper mean")
        true
        (Float.abs (row.Experiments.t5_mean -. row.Experiments.t5_paper_mean)
        <= 0.25 *. row.Experiments.t5_paper_mean))
    rows

let test_table2_structure () =
  let rows = Experiments.table2 () in
  check "four widths x three targets" 12 (List.length rows);
  let target t (r : Hwmodel.report) = r.Hwmodel.params.Hwmodel.target = t in
  let fixed = List.filter (target Hwmodel.Fixed_width) rows in
  let vla = List.filter (target Hwmodel.Vla) rows in
  let rvv = List.filter (target Hwmodel.Rvv) rows in
  check "four fixed rows" 4 (List.length fixed);
  check "four vla rows" 4 (List.length vla);
  check "four rvv rows" 4 (List.length rvv);
  let monotone rs =
    let cells = List.map (fun (r : Hwmodel.report) -> r.Hwmodel.total_cells) rs in
    List.sort compare cells = cells
  in
  check_bool "monotone area (fixed)" true (monotone fixed);
  check_bool "monotone area (vla)" true (monotone vla);
  List.iter2
    (fun (f : Hwmodel.report) (v : Hwmodel.report) ->
      check "same width" f.Hwmodel.params.Hwmodel.lanes
        v.Hwmodel.params.Hwmodel.lanes;
      check_bool "vla costs more cells" true
        (v.Hwmodel.total_cells > f.Hwmodel.total_cells))
    fixed vla;
  (* The RVV rows are provisioned at maximum grouping (lanes x lmul =
     16 throughout), so register state and table datapath are sized at
     effective width 16 on every row: area is near-constant (within 1%)
     and always above the same-width fixed translator. *)
  List.iter2
    (fun (f : Hwmodel.report) (r : Hwmodel.report) ->
      check "same width" f.Hwmodel.params.Hwmodel.lanes
        r.Hwmodel.params.Hwmodel.lanes;
      check "provisioned effective width 16" 16
        (r.Hwmodel.params.Hwmodel.lanes * r.Hwmodel.params.Hwmodel.lmul);
      check_bool "rvv costs more cells than fixed" true
        (r.Hwmodel.total_cells > f.Hwmodel.total_cells))
    fixed rvv;
  let rvv_cells =
    List.map (fun (r : Hwmodel.report) -> r.Hwmodel.total_cells) rvv
  in
  let lo = List.fold_left min max_int rvv_cells in
  let hi = List.fold_left max 0 rvv_cells in
  check_bool "near-constant provisioned area" true (hi - lo < hi / 100)

let test_code_size_structure () =
  let rows = Experiments.code_size () in
  check "fifteen rows" 15 (List.length rows);
  List.iter
    (fun (row : Experiments.size_row) ->
      check_bool (row.Experiments.sz_name ^ " liquid bigger") true
        (row.Experiments.sz_liquid >= row.Experiments.sz_baseline);
      (* The paper's <1% holds for its megabyte-scale binaries; our
         largest synthetic programs show the same, smaller ones are
         dominated by fixed overhead but still stay under 6%. *)
      check_bool (row.Experiments.sz_name ^ " overhead bounded") true
        (row.Experiments.sz_overhead_pct < 6.0))
    rows

let test_figure6_speedups_monotone_or_flat () =
  (* Check the key shape claims on two contrasting benchmarks at a
     reduced width list (cheap). *)
  let fir = match Workload.find "FIR" with Some w -> w | None -> assert false in
  let art = match Workload.find "179.art" with Some w -> w | None -> assert false in
  let speedup w lanes =
    let base = (Runner.run w Runner.Baseline).Runner.run in
    let run = (Runner.run w (Runner.Liquid lanes)).Runner.run in
    Runner.speedup ~baseline:base run
  in
  let fir2 = speedup fir 2 and fir8 = speedup fir 8 in
  check_bool "FIR grows with width" true (fir8 > fir2 && fir2 > 1.5);
  let art8 = speedup art 8 in
  check_bool "art is miss-bound" true (art8 < 1.5)

let test_region_first_gap () =
  let w = match Workload.find "GSM Dec." with Some w -> w | None -> assert false in
  let { Runner.run; _ } = Runner.run w (Runner.Liquid 8) in
  match Experiments.region_first_gap run with
  | [ (_, gap) ] -> check_bool "positive gap" true (gap > 0)
  | _ -> Alcotest.fail "one region expected"

let test_runner_variants () =
  let w = match Workload.find "LU" with Some w -> w | None -> assert false in
  List.iter
    (fun v ->
      Alcotest.(check string)
        "name roundtrip" (Runner.variant_name v) (Runner.variant_name v);
      ignore (Runner.program_of w v))
    [
      Runner.Baseline;
      Runner.Liquid_scalar;
      Runner.Liquid 4;
      Runner.Liquid_oracle 4;
      Runner.Liquid_vla 4;
      Runner.Liquid_vla_oracle 4;
      Runner.Native 4;
    ]

let tests =
  [
    Alcotest.test_case "hwmodel matches Table 2" `Quick test_hwmodel_matches_paper;
    Alcotest.test_case "hwmodel register-state share" `Quick
      test_hwmodel_register_state_share;
    Alcotest.test_case "hwmodel scaling laws" `Quick test_hwmodel_scaling_laws;
    Alcotest.test_case "hwmodel VLA row pinned" `Quick test_hwmodel_vla_row;
    Alcotest.test_case "hwmodel buffer split" `Quick test_hwmodel_buffer_split;
    Alcotest.test_case "table5 structure" `Quick test_table5_structure;
    Alcotest.test_case "table2 structure" `Quick test_table2_structure;
    Alcotest.test_case "code size structure" `Slow test_code_size_structure;
    Alcotest.test_case "figure6 shape claims" `Slow
      test_figure6_speedups_monotone_or_flat;
    Alcotest.test_case "region first gap" `Quick test_region_first_gap;
    Alcotest.test_case "runner variants" `Quick test_runner_variants;
  ]

(* --- CSV export --- *)

let test_csv_export () =
  let t5 = Experiments.csv_table5 (Experiments.table5 ()) in
  let lines = String.split_on_char '\n' (String.trim t5) in
  check "header + 15 rows" 16 (List.length lines);
  check_bool "header" true
    (List.hd lines = "benchmark,loops,mean,max,paper_mean,paper_max");
  check_bool "FIR row present" true
    (List.exists (fun l -> String.length l >= 3 && String.sub l 0 3 = "FIR") lines)

(* --- memoized and parallel running --- *)

let test_run_cached_matches_run () =
  let w = match Workload.find "GSM Enc." with Some w -> w | None -> assert false in
  Runner.clear_cache ();
  List.iter
    (fun v ->
      let fresh = Runner.run w v in
      let cached = Runner.run_cached w v in
      let again = Runner.run_cached w v in
      check_bool "same result object on repeat" true (cached == again);
      check
        ("cycles agree for " ^ Runner.variant_name v)
        fresh.Runner.run.Liquid_pipeline.Cpu.stats.Liquid_machine.Stats.cycles
        cached.Runner.run.Liquid_pipeline.Cpu.stats.Liquid_machine.Stats.cycles)
    [ Runner.Baseline; Runner.Liquid 8 ];
  (* The translation-latency knob must key the cache for Liquid runs. *)
  let slow = Runner.run_cached ~translation_cpi:100 w (Runner.Liquid 8) in
  let fast = Runner.run_cached ~translation_cpi:1 w (Runner.Liquid 8) in
  check_bool "cpi keys the cache" true (not (slow == fast));
  Runner.clear_cache ()

let test_run_many_deterministic () =
  let items = List.init 40 (fun i -> i) in
  let f i = (i * i * 7919) mod 1009 in
  let seq = List.map f items in
  check_bool "order preserved (pool)" true (Runner.run_many ~domains:4 f items = seq);
  check_bool "order preserved (sequential fallback)" true
    (Runner.run_many ~domains:1 f items = seq);
  check_bool "empty input" true (Runner.run_many ~domains:4 f [] = []);
  (* Exceptions surface instead of corrupting results. *)
  Alcotest.check_raises "first failure re-raised" Exit (fun () ->
      ignore (Runner.run_many ~domains:2 (fun _ -> raise Exit) items))

let test_run_many_result_isolation () =
  (* One poisoned item must come back [Error] in its slot — with the
     failing input and exception — while every other item still returns
     [Ok], in input order, and nothing escapes the pool. *)
  let items = [ 1; 2; 3; 4; 5 ] in
  let f i = if i = 3 then raise Exit else i * 10 in
  let got = Runner.run_many_result ~domains:4 f items in
  let expect =
    [
      Ok 10;
      Ok 20;
      Error { Runner.f_index = 2; f_item = 3; f_exn = Exit };
      Ok 40;
      Ok 50;
    ]
  in
  check_bool "poisoned item isolated, others Ok" true (got = expect);
  (* All items poisoned: all Error, none lost, still ordered. *)
  let all_bad = Runner.run_many_result ~domains:2 (fun _ -> raise Exit) items in
  check_bool "every failure reported" true
    (List.length all_bad = List.length items
    && List.for_all (function Error _ -> true | Ok _ -> false) all_bad);
  check_bool "failure order preserved" true
    (List.mapi (fun i _ -> i) items
    = List.filter_map
        (function Error { Runner.f_index; _ } -> Some f_index | Ok _ -> None)
        all_bad)

let test_run_many_simulations_agree () =
  (* A real workload fan-out: domains simulate concurrently and must
     reproduce the sequential cycle counts in order. *)
  let ws =
    List.filteri (fun i _ -> i < 4) (Workload.all ())
  in
  let cycles (w : Workload.t) =
    (Runner.run w Runner.Baseline).Runner.run.Liquid_pipeline.Cpu.stats
      .Liquid_machine.Stats.cycles
  in
  let seq = List.map cycles ws in
  let par = Runner.run_many ~domains:4 cycles ws in
  check_bool "parallel simulation equals sequential" true (par = seq)

let tests =
  tests
  @ [
      Alcotest.test_case "csv export" `Quick test_csv_export;
      Alcotest.test_case "run_cached matches run" `Slow test_run_cached_matches_run;
      Alcotest.test_case "run_many deterministic" `Quick test_run_many_deterministic;
      Alcotest.test_case "run_many_result isolates failures" `Quick
        test_run_many_result_isolation;
      Alcotest.test_case "run_many simulations agree" `Slow
        test_run_many_simulations_agree;
    ]
