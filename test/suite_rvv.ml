(* The RVV-style stripmined backend.

   Five layers are under test: the vector-length grant semantics
   ([Sem.exec_rvv] against a hand-built context), LMUL register-group
   selection ([Backend.S.register_group] directly and through the
   translated microcode's width), the translation structure (a vsetvl
   request-grant loop whose back-edge is the last uop before [ret] —
   nothing after the vector loop, no masks on the main path), the
   end-to-end claim of the backend (a trip count that is not a multiple
   of the lane width executes with zero scalar-epilogue iterations, the
   final trip running under a shortened grant), permutation recovery
   (fixed cross-lane patterns lower to grant-governed table lookups),
   and the scalar-equivalence oracle across all fifteen workloads at
   every paper width. *)

open Liquid_isa
open Liquid_prog
open Liquid_visa
open Liquid_pipeline
open Liquid_scalarize
open Liquid_translate
open Liquid_harness
open Liquid_workloads
open Helpers
module Memory = Liquid_machine.Memory
module Stats = Liquid_machine.Stats
module Oracle = Liquid_faults.Oracle

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- vsetvl grant semantics --- *)

let rvv_ctx ~lanes =
  let c = Sem.create_ctx (Memory.create ()) in
  c.Sem.lanes <- lanes;
  c

let vsetvl c ~counter ~bound =
  c.Sem.regs.(0) <- counter;
  Sem.exec_rvv c (Rvv.Vsetvl { counter = r 0; bound })

let test_vsetvl () =
  let c = rvv_ctx ~lanes:4 in
  vsetvl c ~counter:0 ~bound:15;
  check "full grant" 4 c.Sem.vl;
  check_bool "continue flag" true (Flags.lt c.Sem.flags);
  vsetvl c ~counter:12 ~bound:15;
  check "shortened final grant" 3 c.Sem.vl;
  check_bool "still continuing" true (Flags.lt c.Sem.flags);
  vsetvl c ~counter:16 ~bound:15;
  check "overshoot grants zero" 0 c.Sem.vl;
  check_bool "loop exits" false (Flags.lt c.Sem.flags);
  vsetvl c ~counter:15 ~bound:15;
  check "exact end grants zero" 0 c.Sem.vl;
  check_bool "equality exits too" false (Flags.lt c.Sem.flags)

let test_addvl () =
  let c = rvv_ctx ~lanes:4 in
  vsetvl c ~counter:0 ~bound:15;
  c.Sem.regs.(3) <- 12;
  Sem.exec_rvv c (Rvv.Addvl { dst = r 3 });
  check "advanced by the full grant" 16 c.Sem.regs.(3);
  (* The final trip advances by the shortened grant, landing the
     counter exactly on the bound — the defining difference from a
     fixed-step increment. *)
  vsetvl c ~counter:12 ~bound:15;
  c.Sem.regs.(3) <- 12;
  Sem.exec_rvv c (Rvv.Addvl { dst = r 3 });
  check "advanced by the shortened grant" 15 c.Sem.regs.(3)

let vl v = Rvv.Vl { v }

let test_vl_dp_tail_zeroing () =
  let c = rvv_ctx ~lanes:4 in
  Array.blit [| 1; 2; 3; 4 |] 0 c.Sem.vregs.(1) 0 4;
  Array.fill c.Sem.vregs.(2) 0 4 99;
  c.Sem.vl <- 2;
  Sem.exec_rvv c
    (vl (Vinsn.Vdp { op = Opcode.Add; dst = v 2; src1 = v 1; src2 = VR (v 1) }));
  check "granted lane 0" 2 c.Sem.vregs.(2).(0);
  check "granted lane 1" 4 c.Sem.vregs.(2).(1);
  check "tail lane zeroed" 0 c.Sem.vregs.(2).(2);
  check "tail lane zeroed (last)" 0 c.Sem.vregs.(2).(3);
  check "masked path counted" 1 c.Sem.n_pred_masked;
  (* A full grant must behave exactly like the unmasked op. *)
  c.Sem.vl <- 4;
  Sem.exec_rvv c
    (vl (Vinsn.Vdp { op = Opcode.Mul; dst = v 2; src1 = v 1; src2 = VImm 3 }));
  check "full grant lane 3" 12 c.Sem.vregs.(2).(3);
  check "all-true fast path counted" 1 c.Sem.n_pred_fast

let test_vl_load_store () =
  let c = rvv_ctx ~lanes:4 in
  for i = 0 to 3 do
    Memory.write c.Sem.mem ~addr:(0x5000 + (i * 4)) ~bytes:4 (100 + i)
  done;
  c.Sem.regs.(0) <- 0;
  c.Sem.vl <- 3;
  Sem.exec_rvv c
    (vl
       (Vinsn.Vld
          { esize = Esize.Word; signed = true; dst = v 1; base = Insn.Sym 0x5000; index = r 0 }));
  check "lane 0 loaded" 100 c.Sem.vregs.(1).(0);
  check "lane 2 loaded" 102 c.Sem.vregs.(1).(2);
  check "tail lane zeroed" 0 c.Sem.vregs.(1).(3);
  (let eff = Sem.last_effect c in
   match eff.Sem.accesses with
   | [ { Sem.bytes; _ } ] -> check "granted access bytes" 12 bytes
   | _ -> Alcotest.fail "expected one access");
  (* Shortened store: the lane past the grant must not reach memory. *)
  Memory.write c.Sem.mem ~addr:(0x6000 + 8) ~bytes:4 (-1);
  c.Sem.vl <- 2;
  Array.blit [| 7; 8; 9; 10 |] 0 c.Sem.vregs.(1) 0 4;
  Sem.exec_rvv c
    (vl (Vinsn.Vst { esize = Esize.Word; src = v 1; base = Insn.Sym 0x6000; index = r 0 }));
  check "granted lane stored" 7
    (Memory.read c.Sem.mem ~addr:0x6000 ~bytes:4 ~signed:true);
  check "second granted lane stored" 8
    (Memory.read c.Sem.mem ~addr:0x6004 ~bytes:4 ~signed:true);
  check "tail lane untouched" (-1)
    (Memory.read c.Sem.mem ~addr:(0x6000 + 8) ~bytes:4 ~signed:true)

let test_vl_reduction () =
  let c = rvv_ctx ~lanes:4 in
  Array.blit [| 1; 2; 3; 4 |] 0 c.Sem.vregs.(1) 0 4;
  c.Sem.regs.(5) <- 100;
  c.Sem.vl <- 3;
  Sem.exec_rvv c (vl (Vinsn.Vred { op = Opcode.Add; acc = r 5; src = v 1 }));
  check "folds granted lanes only" 106 c.Sem.regs.(5);
  c.Sem.vl <- 0;
  Sem.exec_rvv c (vl (Vinsn.Vred { op = Opcode.Add; acc = r 5; src = v 1 }));
  check "zero grant is a no-op" 106 c.Sem.regs.(5)

(* --- LMUL register-group selection --- *)

let register_group backend =
  let module B = (val backend : Backend.S) in
  B.register_group

let test_register_group () =
  let rvv = register_group Backend.rvv in
  (* Narrow datapath, light pressure: the full m8 group fits both the
     16-element maximum vector length and the 16-entry vector file. *)
  check "2 lanes, pressure 2" 8 (rvv ~lanes:2 ~pressure:2);
  check "4 lanes, pressure 2" 4 (rvv ~lanes:4 ~pressure:2);
  check "8 lanes, pressure 2" 2 (rvv ~lanes:8 ~pressure:2);
  (* The maximum vector length caps the group before pressure does. *)
  check "16 lanes cannot group" 1 (rvv ~lanes:16 ~pressure:1);
  (* Pressure caps the group before the vector length does: grouping
     multiplies every live value's register footprint. *)
  check "pressure 3 fits m4" 4 (rvv ~lanes:2 ~pressure:3);
  check "pressure 5 fits m2" 2 (rvv ~lanes:2 ~pressure:5);
  check "full file cannot group" 1 (rvv ~lanes:2 ~pressure:16);
  (* A region with no live vector values grades as pressure 1. *)
  check "zero pressure clamps to 1" 8 (rvv ~lanes:2 ~pressure:0);
  (* The other backends never group. *)
  check "fixed never groups" 1 (register_group Backend.fixed ~lanes:2 ~pressure:1);
  check "vla never groups" 1 (register_group Backend.vla ~lanes:2 ~pressure:1)

(* --- translation structure: the FIR-15 loop --- *)

(* c[i] = 5*a[i] + 3*b[i] over 15 elements: a trip count no fixed width
   in 2..16 divides, the motivating case for grant shortening. *)
let fir15_count = 15

let fir15_loop =
  let open Build in
  {
    Vloop.name = "fir15";
    count = fir15_count;
    body =
      [
        vld (v 1) "a";
        vmul (v 1) (v 1) (vi 5);
        vld (v 2) "b";
        vmul (v 2) (v 2) (vi 3);
        vadd (v 1) (v 1) (vr (v 2));
        vst (v 1) "c";
      ];
    reductions = [];
  }

let fir15_data () =
  [
    Data.make ~name:"a" ~esize:Esize.Word
      (words fir15_count (fun i -> (i * 7) - 20));
    Data.make ~name:"b" ~esize:Esize.Word
      (words fir15_count (fun i -> 11 - (i * 3)));
    Data.make ~name:"c" ~esize:Esize.Word (words fir15_count (fun _ -> 0));
  ]

let fir15_expected =
  words fir15_count (fun i -> (5 * ((i * 7) - 20)) + (3 * (11 - (i * 3))))

let fir15_translate ~lanes =
  let prog =
    Codegen.liquid (simple_program ~name:"fir15" ~data:(fir15_data ()) fir15_loop)
  in
  let image = Image.of_program prog in
  let entry =
    match image.Image.region_entries with
    | [ (e, _) ] -> e
    | _ -> Alcotest.fail "expected one region"
  in
  Offline.translate_region ~backend:Backend.rvv ~image ~lanes ~entry ()

let test_rvv_translation_structure () =
  let u =
    match fir15_translate ~lanes:4 with
    | Translator.Translated u -> u
    | Translator.Aborted a ->
        Alcotest.failf "RVV backend aborted: %s" (Abort.to_string a)
  in
  check_bool "marked as RVV microcode" true u.Ucode.rvv;
  check_bool "not marked as VLA microcode" false u.Ucode.vla;
  (* Two live vector values at 4 base lanes grade an m4 group: the
     effective translation width is the full 16-element maximum. *)
  check "LMUL group factor" 4 u.Ucode.lmul;
  check "grouped width" 16 u.Ucode.width;
  let uops = Array.to_list u.Ucode.uops in
  let count p = List.length (List.filter p uops) in
  check "one header + one loop-end vsetvl" 2
    (count (function Ucode.UR (Rvv.Vsetvl _) -> true | _ -> false));
  check "one grant-sized induction advance" 1
    (count (function Ucode.UR (Rvv.Addvl _) -> true | _ -> false));
  check "every body op under the grant" 6
    (count (function Ucode.UR (Rvv.Vl _) -> true | _ -> false));
  check "no unguarded vector ops" 0
    (count (function Ucode.UV _ -> true | _ -> false));
  check "no predicate machinery" 0
    (count (function Ucode.UP _ -> true | _ -> false));
  (* Zero scalar-epilogue structure: the back-edge is the last uop
     before [ret] — nothing runs after the vector loop. *)
  let n = Array.length u.Ucode.uops in
  check_bool "ret terminates" true (u.Ucode.uops.(n - 1) = Ucode.URet);
  (match u.Ucode.uops.(n - 2) with
  | Ucode.UB { cond = Cond.Lt; target } ->
      (* ...and the back-edge re-enters after the header vsetvl, which
         runs exactly once. *)
      (match u.Ucode.uops.(target - 1) with
      | Ucode.UR (Rvv.Vsetvl _) -> ()
      | _ -> Alcotest.fail "back-edge target not after the header vsetvl")
  | _ -> Alcotest.fail "expected the loop back-edge right before ret");
  (* The loop-end vsetvl must renew the grant and the flags before the
     back-edge tests them. *)
  match u.Ucode.uops.(n - 3) with
  | Ucode.UR (Rvv.Vsetvl _) -> ()
  | _ -> Alcotest.fail "expected the loop-end vsetvl before the back-edge"

(* --- end-to-end: shortened final grant, bit-identical state --- *)

let test_zero_scalar_epilogue () =
  let frames = 4 in
  let vprog =
    simple_program ~name:"fir15" ~frames ~data:(fir15_data ()) fir15_loop
  in
  let liquid = Codegen.liquid vprog in
  let image = Image.of_program liquid in
  let lanes = 4 in
  let config =
    {
      (Cpu.liquid_config ~lanes) with
      Cpu.backend = Backend.rvv;
      Cpu.oracle_translation = true;
    }
  in
  let run = Cpu.run ~config image in
  (* Every call is served from the microcode cache, so no region
     instruction executes in scalar form at all. *)
  check "all calls in microcode" run.Cpu.stats.Stats.region_calls
    run.Cpu.stats.Stats.ucode_hits;
  check "region calls" frames run.Cpu.stats.Stats.region_calls;
  (* The m4 group covers all 15 trips in a single stripmine iteration
     under a 15-element grant: 1 x 6 grant-governed ops per frame, and
     the 15-of-16 shortened grant replaces any scalar epilogue. *)
  check "grant-governed vector work only" (frames * 6)
    run.Cpu.stats.Stats.vector_insns;
  (match run.Cpu.regions with
  | [ { Cpu.outcome = Cpu.R_installed { width; _ }; _ } ] ->
      check "installed at the grouped width" 16 width
  | _ -> Alcotest.fail "expected one installed region");
  check_arrays "rvv result" fir15_expected (read_array run liquid "c");
  (* Memory bit-identical to the same binary stepped in pure scalar
     form. (Unlike VLA's next-multiple-of-VL overshoot, the RVV counter
     lands exactly on the bound — [Addvl] advances by the shortened
     grant.) *)
  let scalar = run_image liquid in
  check_memory_equal "rvv vs scalar" run scalar;
  (* Contrast: the fixed-width machine cannot translate 15 trips at any
     width, so the same binary does zero vector work there. *)
  let fixed_run =
    Cpu.run ~config:{ config with Cpu.backend = Backend.fixed } image
  in
  check "fixed backend falls back to scalar" 0
    fixed_run.Cpu.stats.Stats.vector_insns;
  check_memory_equal "fixed fallback still exact" fixed_run scalar

(* --- table-lookup semantics under the grant: Tblidx / Tbl / Tblst --- *)

let test_tbl_exec () =
  let c = rvv_ctx ~lanes:4 in
  for j = 0 to 7 do
    Memory.write c.Sem.mem ~addr:(0x7000 + (4 * j)) ~bytes:4 (10 * j)
  done;
  c.Sem.regs.(0) <- 2;
  c.Sem.vl <- 4;
  let tbl dst =
    Rvv.Tbl
      {
        esize = Esize.Word;
        signed = true;
        dst;
        base = Insn.Sym 0x7000;
        counter = r 0;
        pattern = Perm.pairswap;
      }
  in
  Sem.exec_rvv c (tbl (v 1));
  (* lane j reads element src_index pairswap (2+j) = 3, 2, 5, 4 *)
  check "lane 0" 30 c.Sem.vregs.(1).(0);
  check "lane 1" 20 c.Sem.vregs.(1).(1);
  check "lane 2" 50 c.Sem.vregs.(1).(2);
  check "lane 3" 40 c.Sem.vregs.(1).(3);
  check "full-grant fast path counted" 1 c.Sem.n_pred_fast;
  (* Shortened final grant: tail lanes load nothing and zero. *)
  Array.fill c.Sem.vregs.(2) 0 4 99;
  c.Sem.vl <- 2;
  Sem.exec_rvv c (tbl (v 2));
  check "tail lane 0" 30 c.Sem.vregs.(2).(0);
  check "tail lane 1" 20 c.Sem.vregs.(2).(1);
  check "tail lane zeroed" 0 c.Sem.vregs.(2).(2);
  check "tail lane zeroed (last)" 0 c.Sem.vregs.(2).(3);
  check "masked path counted" 1 c.Sem.n_pred_masked

let test_tblst_exec () =
  let c = rvv_ctx ~lanes:4 in
  for j = 0 to 3 do
    Memory.write c.Sem.mem ~addr:(0x6100 + (4 * j)) ~bytes:4 (-1)
  done;
  Array.blit [| 7; 8; 9; 10 |] 0 c.Sem.vregs.(1) 0 4;
  c.Sem.regs.(0) <- 0;
  c.Sem.vl <- 3;
  Sem.exec_rvv c
    (Rvv.Tblst
       {
         esize = Esize.Word;
         src = v 1;
         base = Insn.Sym 0x6100;
         counter = r 0;
         pattern = Perm.pairswap;
       });
  (* lane j writes element src_index pairswap j = 1, 0, 3; lane 3 is
     past the grant, so element 2 keeps its sentinel *)
  let rd e = Memory.read c.Sem.mem ~addr:(0x6100 + (4 * e)) ~bytes:4 ~signed:true in
  check "element 0" 8 (rd 0);
  check "element 1" 7 (rd 1);
  check "ungranted element untouched" (-1) (rd 2);
  check "element 3" 9 (rd 3)

let test_tblidx () =
  let c = rvv_ctx ~lanes:8 in
  check "no builds yet" 0 c.Sem.n_tbl_builds;
  Sem.exec_rvv c (Rvv.Tblidx { pattern = Perm.Reverse 4 });
  Sem.exec_rvv c (Rvv.Tblidx { pattern = Perm.pairswap });
  check "each build counted" 2 c.Sem.n_tbl_builds;
  let eff = Sem.last_effect c in
  check "no memory traffic" 0 (List.length eff.Sem.accesses)

(* --- permutations recover as table lookups --- *)

let pairswap_data ~count =
  let offs = Perm.offsets Perm.pairswap in
  [
    Data.make ~name:"off" ~esize:Esize.Word
      (words count (fun e -> offs.(e mod Array.length offs)));
    Data.make ~name:"a" ~esize:Esize.Word (words count (fun i -> 100 + i));
    Data.make ~name:"c" ~esize:Esize.Word (words count (fun _ -> 0));
  ]

let pairswap_items ~count ~scatter =
  let open Build in
  let ind = Vloop.induction in
  let body =
    if scatter then
      [
        ld (r 1) "a" (ri ind);
        ld (r 13) "off" (ri ind);
        dp Opcode.Add (r 13) ind (ri (r 13));
        st (r 1) "c" (ri (r 13));
      ]
    else
      [
        ld (r 13) "off" (ri ind);
        dp Opcode.Add (r 13) ind (ri (r 13));
        ld (r 1) "a" (ri (r 13));
        st (r 1) "c" (ri ind);
      ]
  in
  [ mov ind 0; label "f_top" ]
  @ body
  @ [ addi ind ind 1; cmp ind (i count); b ~cond:Cond.Lt "f_top" ]

let count_uops p (u : Ucode.t) =
  Array.fold_left (fun n uop -> if p uop then n + 1 else n) 0 u.Ucode.uops

let test_perm_recovery_structure () =
  let data = pairswap_data ~count:16 in
  let items = pairswap_items ~count:16 ~scatter:false in
  List.iter
    (fun lanes ->
      let u =
        match translate_items ~lanes ~backend:Backend.rvv ~data items with
        | Liquid_translate.Translator.Translated u -> u
        | Liquid_translate.Translator.Aborted a ->
            Alcotest.failf "RVV aborted at %d lanes: %s" lanes
              (Abort.to_string a)
      in
      check "one index-table build" 1
        (count_uops (function Ucode.UR (Rvv.Tblidx _) -> true | _ -> false) u);
      check "one table-lookup gather" 1
        (count_uops (function Ucode.UR (Rvv.Tbl _) -> true | _ -> false) u);
      check "no register permute" 0
        (count_uops
           (function
             | Ucode.UV (Vinsn.Vperm _) | Ucode.UR (Rvv.Vl { v = Vinsn.Vperm _ })
               ->
                 true
             | _ -> false)
           u);
      (* Both the offset-array load and the partner data load collapse
         into the table lookup — the alignment-network collapse. *)
      check "no residual vector load" 0
        (count_uops
           (function Ucode.UR (Rvv.Vl { v = Vinsn.Vld _ }) -> true | _ -> false)
           u);
      (* The index-table build runs once per call: it precedes the
         header vsetvl, and the back-edge re-enters after both. *)
      let target =
        match u.Ucode.uops.(Array.length u.Ucode.uops - 2) with
        | Ucode.UB { cond = Cond.Lt; target } -> target
        | _ -> Alcotest.fail "expected the loop back-edge right before ret"
      in
      (match u.Ucode.uops.(target - 1) with
      | Ucode.UR (Rvv.Vsetvl _) -> ()
      | _ -> Alcotest.fail "back-edge target not after the header vsetvl");
      (match u.Ucode.uops.(target - 2) with
      | Ucode.UR (Rvv.Tblidx _) -> ()
      | _ -> Alcotest.fail "index-table build not before the header");
      (* The baked pattern is protected by per-trip offset guards, so a
         mutated offset array drops the microcode instead of replaying a
         stale permutation. *)
      check "per-trip offset guards" 16 (Array.length u.Ucode.guards))
    [ 2; 4; 8; 16 ]

let test_perm_scatter_recovery () =
  let data = pairswap_data ~count:16 in
  let items = pairswap_items ~count:16 ~scatter:true in
  let u =
    match translate_items ~lanes:4 ~backend:Backend.rvv ~data items with
    | Liquid_translate.Translator.Translated u -> u
    | Liquid_translate.Translator.Aborted a ->
        Alcotest.failf "RVV aborted on scatter: %s" (Abort.to_string a)
  in
  check "one table-lookup scatter" 1
    (count_uops (function Ucode.UR (Rvv.Tblst _) -> true | _ -> false) u);
  check "no residual vector store" 0
    (count_uops
       (function Ucode.UR (Rvv.Vl { v = Vinsn.Vst _ }) -> true | _ -> false)
       u)

(* End-to-end at a trip count no fixed width divides: the recovered
   table lookup reproduces the scalar stream bit-exactly at every
   hardware width, shortened final grant included. *)
let test_perm_recovery_executes () =
  let count = 14 in
  List.iter
    (fun scatter ->
      let prog =
        let open Build in
        Program.make ~name:"permrec"
          ~text:
            ((Program.Label "main" :: bl_region "f" :: [ halt ])
            @ (Program.Label "f" :: pairswap_items ~count ~scatter)
            @ [ ret ])
          ~data:(pairswap_data ~count)
      in
      let scalar = run_image prog in
      let expected = read_array scalar prog "c" in
      List.iter
        (fun lanes ->
          let config =
            {
              (Cpu.liquid_config ~lanes) with
              Cpu.backend = Backend.rvv;
              Cpu.oracle_translation = true;
            }
          in
          let run = run_image ~config prog in
          check_arrays
            (Printf.sprintf "scatter=%b lanes=%d" scatter lanes)
            expected (read_array run prog "c");
          check "call served from microcode" run.Cpu.stats.Stats.region_calls
            run.Cpu.stats.Stats.ucode_hits;
          check "permutation seen" 1 run.Cpu.permutes_seen;
          check "permutation recovered" 1 run.Cpu.permutes_recovered;
          check "no permutation aborted" 0 run.Cpu.permutes_aborted;
          check "one index table built per call" 1 run.Cpu.tbl_index_builds)
        [ 2; 4; 8; 16 ])
    [ false; true ]

(* A genuinely data-dependent shuffle — the offset array is written
   inside the loop, so no index vector baked at translation time can be
   proven to stay correct — is the one shape that still aborts. *)
let test_data_dependent_still_aborts () =
  let open Build in
  let ind = Vloop.induction in
  let data = pairswap_data ~count:16 in
  let items =
    [ mov ind 0; label "f_top" ]
    @ [
        ld (r 13) "off" (ri ind);
        dp Opcode.Add (r 13) ind (ri (r 13));
        ld (r 1) "a" (ri (r 13));
        st (r 1) "c" (ri ind);
        st (r 1) "off" (ri ind);
      ]
    @ [ addi ind ind 1; cmp ind (i 16); b ~cond:Cond.Lt "f_top" ]
  in
  expect_abort ~lanes:4 ~backend:Backend.rvv ~data items
    (fun a -> a = Abort.Unportable_permutation)
    "data-dependent shuffle under RVV"

(* The FFT workload leans on butterflies: under the RVV backend every
   permuting region recovers as a table lookup, and the low-pressure
   regions additionally grade an LMUL group — on 8-lane hardware some
   regions install 16-wide (m2) microcode while the register-hungry
   ones stay at the base width. *)
let test_fft_recovers_and_groups () =
  let w = Option.get (Workload.find "FFT") in
  let { Runner.run; program; _ } = Runner.run_cached w (Runner.Liquid_rvv 8) in
  let image = Image.of_program program in
  check_bool "no region fails permanently" true
    (List.for_all
       (fun (reg : Cpu.region_report) ->
         match reg.Cpu.outcome with Cpu.R_failed _ -> false | _ -> true)
       run.Cpu.regions);
  check "no translation aborts" 0 run.Cpu.stats.Stats.translations_aborted;
  check_bool "butterflies recovered" true (run.Cpu.permutes_recovered > 0);
  check "no permutation aborted" 0 run.Cpu.permutes_aborted;
  check_bool "index tables built" true (run.Cpu.tbl_index_builds > 0);
  let widths =
    List.filter_map
      (fun (reg : Cpu.region_report) ->
        match reg.Cpu.outcome with
        | Cpu.R_installed { width; _ } -> Some width
        | _ -> None)
      run.Cpu.regions
  in
  check_bool "some region grouped to 16-wide (m2)" true
    (List.mem 16 widths);
  check_bool "register-hungry region stays at base width" true
    (List.mem 8 widths);
  check_bool "oracle equivalence" true (Oracle.equivalent w image run)

(* --- scalar-equivalence oracle, all workloads x all widths --- *)

let test_oracle_equivalence (w : Workload.t) () =
  List.iter
    (fun width ->
      let { Runner.run; program; _ } =
        Runner.run_cached w (Runner.Liquid_rvv width)
      in
      let image = Image.of_program program in
      match Oracle.check w image run with
      | Ok () -> ()
      | Error m ->
          Alcotest.failf "w%d diverged from scalar: %a" width Oracle.pp_mismatch
            m)
    [ 2; 4; 8; 16 ]

let tests =
  [
    Alcotest.test_case "vsetvl request-grant pair" `Quick test_vsetvl;
    Alcotest.test_case "addvl advances by the grant" `Quick test_addvl;
    Alcotest.test_case "granted dp zeroes tail lanes" `Quick
      test_vl_dp_tail_zeroing;
    Alcotest.test_case "granted load/store touch granted lanes" `Quick
      test_vl_load_store;
    Alcotest.test_case "granted reduction folds granted lanes" `Quick
      test_vl_reduction;
    Alcotest.test_case "lmul register-group selection" `Quick
      test_register_group;
    Alcotest.test_case "rvv translation structure" `Quick
      test_rvv_translation_structure;
    Alcotest.test_case "zero scalar-epilogue iterations" `Quick
      test_zero_scalar_epilogue;
    Alcotest.test_case "tbl gather semantics" `Quick test_tbl_exec;
    Alcotest.test_case "tblst scatter semantics" `Quick test_tblst_exec;
    Alcotest.test_case "tblidx counts index builds" `Quick test_tblidx;
    Alcotest.test_case "permutation recovers as table lookup" `Quick
      test_perm_recovery_structure;
    Alcotest.test_case "store-side permutation recovers" `Quick
      test_perm_scatter_recovery;
    Alcotest.test_case "recovered permutes execute bit-exactly" `Quick
      test_perm_recovery_executes;
    Alcotest.test_case "data-dependent shuffle still aborts" `Quick
      test_data_dependent_still_aborts;
    Alcotest.test_case "FFT recovers and groups under RVV" `Quick
      test_fft_recovers_and_groups;
  ]
  @ List.map
      (fun (w : Workload.t) ->
        Alcotest.test_case
          (Printf.sprintf "oracle equivalence %s" w.Workload.name)
          `Quick (test_oracle_equivalence w))
      (Workload.all ())
