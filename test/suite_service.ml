(* The sweep service's supervision matrix: deadline expiry, transient
   retry-then-succeed, breaker trip -> degraded scalar reply (bit-identical
   to a direct baseline run), shedding under load, reply dedup, and a
   fixed-seed 500-job soak with fault injection asserting the metrics
   conservation invariant. Everything runs through the in-process entry
   points (Service.create/submit/sync and Service.run_script) with the
   default no-op sleep, so backoff is virtual and the tests are fast and
   deterministic. *)

open Liquid_harness
open Liquid_service
module Json = Liquid_obs.Json
module Fault = Liquid_faults.Fault
module Fingerprint = Liquid_faults.Fingerprint
module Workload = Liquid_workloads.Workload

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let find name =
  match Workload.find name with Some w -> w | None -> assert false

let mk ?(id = "") ?(variant = "liquid:8") ?(priority = 0) ?fuel ?deadline_ms
    ?retries ?fault_seed ?(ta = 0) workload =
  let v =
    match Runner.variant_of_string variant with
    | Ok v -> v
    | Error m -> Alcotest.fail m
  in
  {
    Job.j_id = id;
    j_workload = workload;
    j_variant = v;
    j_variant_str = Runner.variant_to_string v;
    j_priority = priority;
    j_fuel = fuel;
    j_deadline_ms = deadline_ms;
    j_retries = retries;
    j_blocks = true;
    j_superblocks = true;
    j_fault_seed = fault_seed;
    j_transient_attempts = ta;
  }

(* JSON reply accessors *)
let jstr name j =
  match Json.member name j with
  | Some (Json.Str s) -> s
  | _ -> Alcotest.failf "reply missing string field %S" name

let jint name j =
  match Json.member name j with
  | Some (Json.Int i) -> i
  | _ -> Alcotest.failf "reply missing int field %S" name

let jbool name j =
  match Json.member name j with
  | Some (Json.Bool b) -> b
  | _ -> Alcotest.failf "reply missing bool field %S" name

let one_domain =
  { Service.default_config with Service.domains = Some 1 }

(* --- backoff --- *)

let test_backoff () =
  let delay attempt =
    Backoff.delay_ms ~base_ms:10.0 ~factor:4.0 ~jitter:0.25 ~seed:7 ~job:3
      ~attempt
  in
  (* deterministic: same coordinates, same delay *)
  check_bool "replayable" true (delay 1 = delay 1);
  (* within the jitter envelope around base * factor^(n-1) *)
  List.iter
    (fun attempt ->
      let ideal = 10.0 *. (4.0 ** float_of_int (attempt - 1)) in
      let d = delay attempt in
      check_bool
        (Printf.sprintf "attempt %d in envelope" attempt)
        true
        (d >= 0.75 *. ideal && d <= 1.25 *. ideal))
    [ 1; 2; 3; 4 ];
  (* distinct jobs de-correlate *)
  let other =
    Backoff.delay_ms ~base_ms:10.0 ~factor:4.0 ~jitter:0.25 ~seed:7 ~job:4
      ~attempt:1
  in
  check_bool "jobs de-correlate" true (other <> delay 1);
  (* the budget bound really bounds the worst case *)
  let budget =
    Backoff.budget_ms ~base_ms:10.0 ~factor:4.0 ~jitter:0.25 ~retries:3
  in
  check_bool "budget bounds the sum" true
    (delay 1 +. delay 2 +. delay 3 <= budget)

(* --- breaker --- *)

let breaker_state b =
  match Breaker.state b ~workload:"w" ~variant:"v" with
  | Breaker.Closed -> "closed"
  | Breaker.Open -> "open"
  | Breaker.Half_open -> "half-open"

let test_breaker () =
  let b = Breaker.create ~threshold:3 ~cooldown:2 () in
  let fail () = Breaker.record_failure b ~workload:"w" ~variant:"v" in
  check "first failure" 1 (fail ());
  check "second failure" 2 (fail ());
  check_str "still closed" "closed" (breaker_state b);
  Breaker.record_success b ~workload:"w" ~variant:"v";
  check "success resets" 1 (fail ());
  check "counts up again" 2 (fail ());
  check "third consecutive trips" 3 (fail ());
  check_str "open" "open" (breaker_state b);
  check "one trip" 1 (Breaker.trips b);
  check "stays open, keeps counting" 4 (fail ());
  check "no double trip" 1 (Breaker.trips b);
  check_str "other keys unaffected" "closed"
    (match Breaker.state b ~workload:"w" ~variant:"other" with
    | Breaker.Closed -> "closed"
    | _ -> "not-closed");
  Alcotest.(check (list string))
    "open keys" [ Breaker.key ~workload:"w" ~variant:"v" ] (Breaker.open_keys b);
  Breaker.reset b;
  check_str "reset closes" "closed" (breaker_state b)

let test_breaker_half_open () =
  let b = Breaker.create ~threshold:2 ~cooldown:2 () in
  let fail () = ignore (Breaker.record_failure b ~workload:"w" ~variant:"v") in
  let ok () = Breaker.record_success b ~workload:"w" ~variant:"v" in
  let admit () = Breaker.admit b ~workload:"w" ~variant:"v" in
  check_bool "closed admits" true (admit ());
  fail ();
  fail ();
  check_str "tripped" "open" (breaker_state b);
  (* cooldown: two denials, then the third dispatch is the probe *)
  check_bool "denied during cooldown" false (admit ());
  check_bool "denied during cooldown (2)" false (admit ());
  check_bool "probe admitted" true (admit ());
  check_str "half-open while probing" "half-open" (breaker_state b);
  check "probe counted" 1 (Breaker.probes b);
  check_bool "one probe at a time" false (admit ());
  Alcotest.(check (list string))
    "half-open keys stay listed"
    [ Breaker.key ~workload:"w" ~variant:"v" ]
    (Breaker.open_keys b);
  (* the probe fails: back to open, cooldown restarts *)
  fail ();
  check_str "failed probe reopens" "open" (breaker_state b);
  check "reopen counted" 1 (Breaker.reopens b);
  check_bool "cooldown restarts" false (admit ());
  check_bool "cooldown restarts (2)" false (admit ());
  check_bool "second probe admitted" true (admit ());
  check "second probe counted" 2 (Breaker.probes b);
  (* this probe succeeds: the breaker closes and dispatch resumes *)
  ok ();
  check_str "successful probe closes" "closed" (breaker_state b);
  check_bool "closed admits again" true (admit ());
  check "no further reopens" 1 (Breaker.reopens b);
  (* a stale in-flight success while fully open does not close *)
  fail ();
  fail ();
  check_str "re-tripped" "open" (breaker_state b);
  ok ();
  check_str "stale success ignored while open" "open" (breaker_state b)

(* --- the bounded LRU and the runner memo built on it --- *)

let test_lru_discipline () =
  let l : (int, string) Lru.t = Lru.create ~capacity:2 in
  check_bool "miss on empty" true (Lru.find l 1 = None);
  Lru.add l 1 "a";
  Lru.add l 2 "b";
  (* touch 1 so 2 is the LRU victim *)
  check_bool "hit" true (Lru.find l 1 = Some "a");
  Lru.add l 3 "c";
  check_bool "LRU evicted" true (Lru.find l 2 = None);
  check_bool "recent kept" true (Lru.find l 1 = Some "a");
  let k = Lru.counters l in
  check "evictions" 1 k.Lru.l_evictions;
  check "occupancy" 2 k.Lru.l_occupancy;
  check "capacity" 2 k.Lru.l_capacity;
  (* finds = hits + misses *)
  check "find accounting" (k.Lru.l_hits + k.Lru.l_misses) (2 + 2);
  Lru.clear l;
  let k' = Lru.counters l in
  check "clear empties" 0 k'.Lru.l_occupancy;
  check "clear keeps lifetime tallies" k.Lru.l_hits k'.Lru.l_hits

let test_runner_cache_counters () =
  Runner.clear_cache ();
  let w = find "FIR" in
  let r1 = Runner.run_cached w (Runner.Liquid 8) in
  let r2 = Runner.run_cached w (Runner.Liquid 8) in
  check_bool "memo returns the shared result" true (r1 == r2);
  let k = Runner.cache_counters () in
  check "one resident entry" 1 k.Lru.l_occupancy;
  check_bool "hit counted" true (k.Lru.l_hits >= 1);
  check "capacity surfaced" Runner.cache_capacity k.Lru.l_capacity;
  Runner.clear_cache ()

(* --- protocol parsing and the dedup fingerprint --- *)

let test_parse_and_fingerprint () =
  (match Job.parse_request {|{"workload": "FIR"}|} with
  | Ok (Job.Job s) ->
      check_str "default variant" "liquid:8" s.Job.j_variant_str;
      check "default priority" 0 s.Job.j_priority;
      check_bool "blocks default on" true s.Job.j_blocks
  | _ -> Alcotest.fail "minimal job line must parse");
  (match Job.parse_request {|{"workload": "FIR", "variant": "nope:x"}|} with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad variant must not parse");
  (match Job.parse_request {|{"op": "quit"}|} with
  | Ok Job.Quit -> ()
  | _ -> Alcotest.fail "quit op");
  (match Job.parse_request {|{"op": "flush"}|} with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown op must not parse");
  let a = mk ~id:"x" ~priority:5 "FIR" in
  let b = mk ~id:"y" ~priority:0 "FIR" in
  check_bool "id/priority excluded from fingerprint" true
    (Job.fingerprint a = Job.fingerprint b);
  check_bool "fuel included" true
    (Job.fingerprint (mk ~fuel:100 "FIR") <> Job.fingerprint (mk "FIR"));
  check_bool "fault seed included" true
    (Job.fingerprint (mk ~fault_seed:1 "FIR") <> Job.fingerprint (mk "FIR"))

(* --- supervision edges --- *)

(* A fuel budget far below the workload's retirement count expires the
   watchdog mid-run (the superblock tier is on by default, so the stop
   lands mid-superblock); with no retries left the supervisor must
   account it as a deadline expiry, not a crash. *)
let test_deadline_expiry () =
  let t = Service.create ~config:one_domain () in
  ignore (Service.submit t (mk ~id:"d" ~fuel:64 ~retries:0 "FIR"));
  match Service.sync t with
  | [ r ] ->
      check_str "status" "failed" (jstr "status" r);
      check_str "reason" "deadline" (jstr "reason" r);
      check "single attempt" 1 (jint "attempts" r);
      let m = Metrics.totals (Service.metrics t) in
      check "deadline counted" 1 m.Metrics.m_deadline;
      check "failed counted" 1 m.Metrics.m_failed;
      check "no retries" 0 m.Metrics.m_retries
  | rs -> Alcotest.failf "expected one reply, got %d" (List.length rs)

let test_retry_then_succeed () =
  let t = Service.create ~config:one_domain () in
  ignore (Service.submit t (mk ~id:"r" ~ta:1 "FIR"));
  (match Service.sync t with
  | [ r ] ->
      check_str "status" "ok" (jstr "status" r);
      check "second attempt wins" 2 (jint "attempts" r);
      (* the converged result is the same simulation a direct run gives *)
      let direct = Runner.run (find "FIR") (Runner.Liquid 8) in
      check "cycles match direct run"
        direct.Runner.run.Liquid_pipeline.Cpu.stats
          .Liquid_machine.Stats.cycles
        (jint "cycles" r);
      check "registers match direct run"
        (Fingerprint.regs_hash direct.Runner.run.Liquid_pipeline.Cpu.regs)
        (jint "regs_hash" r)
  | rs -> Alcotest.failf "expected one reply, got %d" (List.length rs));
  let m = Metrics.totals (Service.metrics t) in
  check "one transient failure" 1 m.Metrics.m_transient;
  check "one retry" 1 m.Metrics.m_retries;
  (* the retry converged within the backoff budget: the virtual delay
     spent is bounded by budget_ms for the configured retry count *)
  let c = one_domain in
  check_bool "backoff budget fits the deadline" true
    (Backoff.budget_ms ~base_ms:c.Service.backoff_base_ms
       ~factor:c.Service.backoff_factor ~jitter:c.Service.backoff_jitter
       ~retries:c.Service.retries
    <= c.Service.deadline_ms)

(* Three consecutive native:7 jobs (an impossible width for FIR's 1024
   trip count) trip the breaker; the third must come back degraded with
   the bit-identical scalar-baseline result, and a later job of the
   same shape answers from the dedup cache. *)
let test_breaker_degrades_to_baseline () =
  let t = Service.create ~config:one_domain () in
  for i = 1 to 3 do
    ignore (Service.submit t (mk ~id:(Printf.sprintf "n%d" i) ~variant:"native:7" "FIR"))
  done;
  (match Service.sync t with
  | [ r1; r2; r3 ] ->
      check_str "first fails" "failed" (jstr "status" r1);
      check_str "first is permanent" "permanent" (jstr "reason" r1);
      check_str "second fails" "failed" (jstr "status" r2);
      check_str "third degrades" "degraded" (jstr "status" r3);
      check_str "third ran baseline" "baseline" (jstr "ran" r3);
      check_str "third reason" "breaker-open" (jstr "reason" r3);
      let direct = Runner.run (find "FIR") Runner.Baseline in
      let image =
        Liquid_prog.Image.of_program direct.Runner.program
      in
      check "baseline cycles"
        direct.Runner.run.Liquid_pipeline.Cpu.stats
          .Liquid_machine.Stats.cycles
        (jint "cycles" r3);
      check "baseline registers"
        (Fingerprint.regs_hash direct.Runner.run.Liquid_pipeline.Cpu.regs)
        (jint "regs_hash" r3);
      check "baseline memory"
        (Fingerprint.mem_hash image direct.Runner.run.Liquid_pipeline.Cpu.memory)
        (jint "mem_hash" r3)
  | rs -> Alcotest.failf "expected three replies, got %d" (List.length rs));
  check "breaker tripped once" 1 (Breaker.trips (Service.breaker t));
  (* same job again: breaker is open at dispatch, and the degraded reply
     is already memoized *)
  ignore (Service.submit t (mk ~id:"n4" ~variant:"native:7" "FIR"));
  (match Service.sync t with
  | [ r4 ] ->
      check_str "fourth degrades" "degraded" (jstr "status" r4);
      check_bool "fourth from dedup" true (jbool "cached" r4);
      check_str "fourth keeps its own id" "n4" (jstr "id" r4)
  | rs -> Alcotest.failf "expected one reply, got %d" (List.length rs));
  let m = Metrics.totals (Service.metrics t) in
  check "accounting" m.Metrics.m_submitted
    (m.Metrics.m_ok + m.Metrics.m_degraded + m.Metrics.m_shed
   + m.Metrics.m_failed)

let test_shed_under_load () =
  let config = { one_domain with Service.high_water = 1 } in
  let t = Service.create ~config () in
  let shed1 = Service.submit t (mk ~id:"keep" ~priority:1 "FIR") in
  check "no shed below high water" 0 (List.length shed1);
  (* the newest submission is itself the lowest priority: it sheds *)
  let shed2 = Service.submit t (mk ~id:"low" ~priority:0 "FIR") in
  (match shed2 with
  | [ r ] ->
      check_str "victim" "low" (jstr "id" r);
      check_str "status" "shed" (jstr "status" r);
      check_str "reason" "overloaded" (jstr "reason" r)
  | rs -> Alcotest.failf "expected one shed reply, got %d" (List.length rs));
  (* a higher-priority arrival displaces the queued lower-priority job *)
  let shed3 = Service.submit t (mk ~id:"urgent" ~priority:2 "FIR") in
  (match shed3 with
  | [ r ] -> check_str "queued job displaced" "keep" (jstr "id" r)
  | rs -> Alcotest.failf "expected one shed reply, got %d" (List.length rs));
  (match Service.sync t with
  | [ r ] -> check_str "survivor runs" "urgent" (jstr "id" r)
  | rs -> Alcotest.failf "expected one reply, got %d" (List.length rs));
  let m = Metrics.totals (Service.metrics t) in
  check "two shed" 2 m.Metrics.m_shed;
  Alcotest.(check (list string))
    "conservation holds" [] (Metrics.violations m)

(* --- run_script front end --- *)

let test_run_script () =
  let out =
    Service.run_script
      "{\"id\": \"s1\", \"workload\": \"FIR\", \"variant\": \"baseline\"}\n\
       {\"op\": \"quit\"}\n\
       {\"id\": \"never\", \"workload\": \"FIR\"}\n"
  in
  let lines =
    List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' out)
  in
  check "quit stops the script" 1 (List.length lines);
  match Json.of_string (List.hd lines) with
  | Ok r ->
      check_str "the drained job replied" "s1" (jstr "id" r);
      check_str "ok" "ok" (jstr "status" r)
  | Error e -> Alcotest.failf "reply line does not parse: %s" e

(* --- the soak: 500 seeded jobs, faults included, books must balance --- *)

let test_soak_500 () =
  let rng = Fault.Rng.make 2007 in
  let workloads = [| "FIR"; "GSM Dec." |] in
  let variants =
    [| "baseline"; "liquid:4"; "liquid:8"; "vla:8"; "native:8"; "native:7" |]
  in
  let t = Service.create () in
  let specs = Hashtbl.create 512 in
  let replies = ref [] in
  let total = 500 in
  for i = 1 to total do
    let id = Printf.sprintf "s%d" i in
    let spec =
      mk ~id
        ~variant:variants.(Fault.Rng.int rng (Array.length variants))
        ~priority:(Fault.Rng.int rng 3)
        ?fault_seed:
          (if Fault.Rng.int rng 3 = 0 then Some (1 + Fault.Rng.int rng 4)
           else None)
        ~ta:(if Fault.Rng.int rng 4 = 0 then 1 else 0)
        workloads.(Fault.Rng.int rng (Array.length workloads))
    in
    Hashtbl.replace specs id spec;
    replies := Service.submit t spec @ !replies;
    if i mod 100 = 0 then replies := Service.sync t @ !replies
  done;
  replies := Service.sync t @ !replies;
  let replies = !replies in
  check "every job replied exactly once" total (List.length replies);
  (* zero supervisor crashes *)
  List.iter
    (fun r ->
      match Json.member "reason" r with
      | Some (Json.Str "supervisor-crash") ->
          Alcotest.failf "supervisor crash: %s" (Json.to_string ~pretty:false r)
      | _ -> ())
    replies;
  (* the conservation invariant, via both the typed totals and the
     schema-validated metrics document *)
  let m = Metrics.totals (Service.metrics t) in
  check "all submitted" total m.Metrics.m_submitted;
  check "books balance" total
    (m.Metrics.m_ok + m.Metrics.m_degraded + m.Metrics.m_shed
   + m.Metrics.m_failed);
  Alcotest.(check (list string)) "no violations" [] (Metrics.violations m);
  ignore (Service.metrics_json t);
  check_bool "work actually ran" true (m.Metrics.m_ok > 0);
  check_bool "faults actually tripped the breaker" true
    (Breaker.trips (Service.breaker t) >= 1);
  check_bool "transient retries happened" true (m.Metrics.m_retries > 0);
  check_bool "every retry followed a transient failure" true
    (m.Metrics.m_retries <= m.Metrics.m_transient);
  (* ok replies of unfaulted, untweaked jobs are bit-identical to a
     direct Runner.run of the same (workload, variant) *)
  let checked = ref 0 in
  List.iter
    (fun r ->
      if jstr "status" r = "ok" && not (jbool "cached" r) then begin
        let spec = Hashtbl.find specs (jstr "id" r) in
        if spec.Job.j_fault_seed = None && spec.Job.j_transient_attempts = 0
        then begin
          incr checked;
          let direct =
            Runner.run_cached (find spec.Job.j_workload) spec.Job.j_variant
          in
          check
            (Printf.sprintf "%s: cycles" spec.Job.j_id)
            direct.Runner.run.Liquid_pipeline.Cpu.stats
              .Liquid_machine.Stats.cycles
            (jint "cycles" r);
          check
            (Printf.sprintf "%s: registers" spec.Job.j_id)
            (Fingerprint.regs_hash direct.Runner.run.Liquid_pipeline.Cpu.regs)
            (jint "regs_hash" r)
        end
      end)
    replies;
  check_bool "bit-identity was actually exercised" true (!checked > 0)

let tests =
  [
    Alcotest.test_case "backoff: deterministic, bounded" `Quick test_backoff;
    Alcotest.test_case "breaker: trip/reset/open" `Quick test_breaker;
    Alcotest.test_case "breaker: half-open probe cycle" `Quick
      test_breaker_half_open;
    Alcotest.test_case "lru: exact discipline + counters" `Quick
      test_lru_discipline;
    Alcotest.test_case "runner: memo counters" `Quick
      test_runner_cache_counters;
    Alcotest.test_case "protocol: parse + fingerprint" `Quick
      test_parse_and_fingerprint;
    Alcotest.test_case "supervision: deadline expiry" `Quick
      test_deadline_expiry;
    Alcotest.test_case "supervision: retry then succeed" `Quick
      test_retry_then_succeed;
    Alcotest.test_case "supervision: breaker degrades to baseline" `Quick
      test_breaker_degrades_to_baseline;
    Alcotest.test_case "supervision: shed under load" `Quick
      test_shed_under_load;
    Alcotest.test_case "front end: run_script + quit" `Quick test_run_script;
    Alcotest.test_case "soak: 500 seeded jobs conserve" `Quick test_soak_500;
  ]
