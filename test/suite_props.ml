(* Property-based tests (qcheck): randomized invariants over the word
   domain, memory, cache, encoder, permutations, and — most importantly —
   end-to-end semantic equivalence of random vector programs under every
   execution flavour. *)

open Liquid_isa
open Liquid_visa
open Liquid_prog
open Liquid_scalarize
module Cpu = Liquid_pipeline.Cpu
open Helpers
open Build
module Kernels = Liquid_workloads.Kernels
module Memory = Liquid_machine.Memory
module Cache = Liquid_machine.Cache

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* --- Word vs Int32 oracle --- *)

let int32_pair = QCheck.(pair (int_range (-1 lsl 31) ((1 lsl 31) - 1)) (int_range (-1 lsl 31) ((1 lsl 31) - 1)))

let against_int32 f g (a, b) =
  f a b = Int32.to_int (g (Int32.of_int a) (Int32.of_int b))

let word_props =
  [
    qtest "word add = int32 add" int32_pair (against_int32 Word.add Int32.add);
    qtest "word sub = int32 sub" int32_pair (against_int32 Word.sub Int32.sub);
    qtest "word mul = int32 mul" int32_pair (against_int32 Word.mul Int32.mul);
    qtest "word and = int32 and" int32_pair (against_int32 Word.logand Int32.logand);
    qtest "word or = int32 or" int32_pair (against_int32 Word.logor Int32.logor);
    qtest "word xor = int32 xor" int32_pair (against_int32 Word.logxor Int32.logxor);
    qtest "of_int is canonical" QCheck.int (fun v ->
        let w = Word.of_int v in
        w >= -0x80000000 && w <= 0x7FFFFFFF && Word.of_int w = w);
    (* The machine saturation must equal the scalar cmp/movc idiom the
       translator recovers it from: wrap at 32 bits, then clamp both
       sides when signed, only the high bound for unsigned add, only
       zero for unsigned sub. *)
    qtest "sat matches the scalar clamp idiom"
      QCheck.(
        pair int32_pair
          (triple
             (make (Gen.oneofl [ Esize.Byte; Esize.Half; Esize.Word ]))
             bool bool))
      (fun ((a, b), (esize, signed, is_add)) ->
        let d = if is_add then Word.add a b else Word.sub a b in
        let expect =
          if signed then
            let hi = Esize.max_signed esize and lo = Esize.min_signed esize in
            let d = if d > hi then hi else d in
            if d < lo then lo else d
          else if is_add then
            let hi = Esize.max_unsigned esize in
            if d > hi then hi else d
          else if d < 0 then 0
          else d
        in
        let f = if is_add then Word.sat_add else Word.sat_sub in
        f esize ~signed a b = expect);
    qtest "sat stays in range on in-domain inputs"
      QCheck.(triple (int_range 0 255) (int_range 0 255) bool)
      (fun (a0, b0, signed) ->
        let conv v = if signed then v - 128 else v in
        let v = Word.sat_add Esize.Byte ~signed (conv a0) (conv b0) in
        if signed then v >= -128 && v <= 127 else v >= 0 && v <= 255);
  ]

(* --- Memory vs array model --- *)

let mem_ops =
  QCheck.(
    small_list
      (triple (int_range 0 255) (make (Gen.oneofl [ 1; 2; 4 ])) int))

let memory_props =
  [
    qtest "memory agrees with byte-array model" mem_ops (fun ops ->
        let m = Memory.create () in
        let model = Array.make 512 0 in
        List.iter
          (fun (addr, bytes, v) ->
            Memory.write m ~addr ~bytes v;
            for k = 0 to bytes - 1 do
              model.(addr + k) <- (v asr (8 * k)) land 0xFF
            done)
          ops;
        let ok = ref true in
        for a = 0 to 511 do
          if Memory.read_byte m a <> model.(a) then ok := false
        done;
        !ok);
    qtest "write/read roundtrip"
      QCheck.(pair (int_range 0 4000) int)
      (fun (addr, v) ->
        let m = Memory.create () in
        Memory.write m ~addr ~bytes:4 v;
        Memory.read m ~addr ~bytes:4 ~signed:true = Word.of_int v);
    qtest "copy equality" mem_ops (fun ops ->
        let m = Memory.create () in
        List.iter (fun (addr, bytes, v) -> Memory.write m ~addr ~bytes v) ops;
        Memory.equal m (Memory.copy m));
  ]

(* --- Cache vs reference LRU model --- *)

let reference_lru ~sets ~assoc ~line accesses =
  let state = Array.make sets [] in
  List.map
    (fun addr ->
      let lineno = addr / line in
      let set = lineno mod sets in
      let ways = state.(set) in
      let hit = List.mem lineno ways in
      let ways = lineno :: List.filter (fun l -> l <> lineno) ways in
      let ways = if List.length ways > assoc then List.filteri (fun i _ -> i < assoc) ways else ways in
      state.(set) <- ways;
      hit)
    accesses

let cache_props =
  [
    qtest "cache matches reference LRU"
      QCheck.(small_list (int_range 0 1023))
      (fun addrs ->
        let c = Cache.create { Cache.size_bytes = 256; line_bytes = 32; assoc = 2 } in
        let got = List.map (fun a -> Cache.access c a = Cache.Hit) addrs in
        let expected = reference_lru ~sets:4 ~assoc:2 ~line:32 addrs in
        got = expected);
  ]

(* --- Permutations --- *)

let perm_gen = QCheck.Gen.oneofl Perm.catalog
let perm_arb = QCheck.make ~print:(Format.asprintf "%a" Perm.pp) perm_gen

let perm_props =
  [
    qtest "inverse composes to identity"
      QCheck.(pair perm_arb (small_list int))
      (fun (p, seed) ->
        let lanes = Perm.period p in
        let v = Array.init lanes (fun i -> match List.nth_opt seed i with Some x -> x | None -> i) in
        Perm.apply (Perm.inverse p) (Perm.apply p v) = v);
    qtest "apply is a bijection" perm_arb (fun p ->
        let lanes = Perm.period p in
        let v = Array.init lanes (fun i -> i) in
        let w = Perm.apply p v in
        List.sort_uniq compare (Array.to_list w) = Array.to_list v);
    qtest "CAM is sound"
      QCheck.(pair perm_arb (QCheck.make (QCheck.Gen.oneofl [ 2; 4; 8; 16 ])))
      (fun (p, lanes) ->
        (not (Perm.supported p ~lanes))
        ||
        match Perm.find_by_offsets (Perm.offsets_for p ~lanes) with
        | None -> false
        | Some q ->
            let v = Array.init lanes (fun i -> i * 7) in
            Perm.apply p v = Perm.apply q v);
  ]

(* --- Encoder roundtrip over random instructions --- *)

let gen_reg = QCheck.Gen.map Reg.make (QCheck.Gen.int_range 0 15)
let gen_vreg = QCheck.Gen.map Vreg.make (QCheck.Gen.int_range 0 15)
let gen_cond = QCheck.Gen.oneofl Cond.all
let gen_opcode = QCheck.Gen.oneofl Opcode.all
let gen_esize = QCheck.Gen.oneofl Esize.all
let gen_imm = QCheck.Gen.oneofl [ 0; 1; -1; 127; -128; 8191; -8192; 1 lsl 20; -(1 lsl 20); 0x7FFFFFFF ]

let gen_operand =
  QCheck.Gen.(
    oneof [ map (fun r -> Insn.Reg r) gen_reg; map (fun k -> Insn.Imm k) gen_imm ])

let gen_base =
  QCheck.Gen.(
    oneof
      [
        map (fun r -> Insn.Breg r) gen_reg;
        map (fun k -> Insn.Sym (0x100000 + (k * 64))) (int_range 0 100);
      ])

let gen_scalar_insn : Insn.exec QCheck.Gen.t =
  QCheck.Gen.(
    oneof
      [
        map3 (fun cond dst src -> Insn.Mov { cond; dst; src }) gen_cond gen_reg gen_operand;
        (fun st ->
          let cond = gen_cond st and op = gen_opcode st and dst = gen_reg st in
          let src1 = gen_reg st and src2 = gen_operand st in
          Insn.Dp { cond; op; dst; src1; src2 });
        (fun st ->
          let esize = gen_esize st and signed = bool st and dst = gen_reg st in
          let base = gen_base st and index = gen_operand st in
          Insn.Ld { esize; signed; dst; base; index; shift = int_range 0 3 st });
        (fun st ->
          let esize = gen_esize st and src = gen_reg st in
          let base = gen_base st and index = gen_operand st in
          Insn.St { esize; src; base; index; shift = int_range 0 3 st });
        map2 (fun src1 src2 -> Insn.Cmp { src1; src2 }) gen_reg gen_operand;
        map2 (fun cond target -> Insn.B { cond; target }) gen_cond (int_range 0 10000);
        map2 (fun target region -> Insn.Bl { target; region }) (int_range 0 10000) bool;
        return Insn.Ret;
        return Insn.Halt;
      ])

let gen_vector_insn : int Vinsn.t QCheck.Gen.t =
  QCheck.Gen.(
    oneof
      [
        (fun st ->
          Vinsn.Vld
            {
              esize = gen_esize st;
              signed = bool st;
              dst = gen_vreg st;
              base = gen_base st;
              index = gen_reg st;
            });
        (fun st ->
          Vinsn.Vst
            { esize = gen_esize st; src = gen_vreg st; base = gen_base st; index = gen_reg st });
        (fun st ->
          let src2 =
            match int_range 0 2 st with
            | 0 -> Vinsn.VR (gen_vreg st)
            | 1 -> Vinsn.VImm (gen_imm st)
            | _ -> Vinsn.VConst (Array.init (1 + int_range 0 15 st) (fun i -> i - 3))
          in
          Vinsn.Vdp { op = gen_opcode st; dst = gen_vreg st; src1 = gen_vreg st; src2 });
        (fun st ->
          Vinsn.Vsat
            {
              op = (if bool st then `Add else `Sub);
              esize = gen_esize st;
              signed = bool st;
              dst = gen_vreg st;
              src1 = gen_vreg st;
              src2 = gen_vreg st;
            });
        (fun st ->
          Vinsn.Vperm { pattern = perm_gen st; dst = gen_vreg st; src = gen_vreg st });
        (fun st ->
          Vinsn.Vred { op = gen_opcode st; acc = gen_reg st; src = gen_vreg st });
      ])

let gen_minsn =
  QCheck.Gen.(
    oneof [ map (fun i -> Minsn.S i) gen_scalar_insn; map (fun v -> Minsn.V v) gen_vector_insn ])

let minsn_arb =
  QCheck.make ~print:(Format.asprintf "%a" Minsn.pp_exec) gen_minsn

let encode_props =
  [
    qtest ~count:500 "encode/decode identity"
      (QCheck.list_of_size (QCheck.Gen.int_range 1 40) minsn_arb)
      (fun insns ->
        let arr = Array.of_list insns in
        let decoded = Encode.decode (Encode.encode arr) in
        Array.length decoded = Array.length arr
        && Array.for_all2 Minsn.equal_exec decoded arr);
  ]

(* --- end-to-end: random vector loops are semantics-preserving --- *)

type genstate = { mutable defined : int list; mutable ilo_phases : int list }

let gen_body : Vinsn.asm list QCheck.Gen.t =
 fun st ->
  let open QCheck.Gen in
  let state = { defined = []; ilo_phases = [] } in
  let fresh () = 1 + int_range 0 8 st in
  let any_defined () =
    match state.defined with
    | [] -> None
    | l -> Some (List.nth l (int_range 0 (List.length l - 1) st))
  in
  let input_syms = [ "a"; "b"; "d" ] in
  let pick_input () = List.nth input_syms (int_range 0 2 st) in
  let n = int_range 2 10 st in
  let body = ref [] in
  let emit i = body := i :: !body in
  (* always start with a load *)
  let d0 = fresh () in
  emit (vld (v d0) (pick_input ()));
  state.defined <- [ d0 ];
  for _ = 2 to n do
    match int_range 0 10 st with
    | 0 | 1 ->
        let d = fresh () in
        emit (vld (v d) (pick_input ()));
        if not (List.mem d state.defined) then state.defined <- d :: state.defined
    | 2 | 3 | 4 -> (
        match any_defined () with
        | Some s1 ->
            let d = fresh () in
            let op =
              List.nth
                [ Opcode.Add; Opcode.Sub; Opcode.Mul; Opcode.And; Opcode.Orr; Opcode.Eor; Opcode.Smin; Opcode.Smax ]
                (int_range 0 7 st)
            in
            let src2 =
              match int_range 0 2 st with
              | 0 -> (
                  match any_defined () with
                  | Some s2 -> vr (v s2)
                  | None -> vi (int_range (-8) 8 st))
              | 1 -> vi (int_range (-8) 8 st)
              | _ ->
                  let period = List.nth [ 2; 4; 8 ] (int_range 0 2 st) in
                  vc (Array.init period (fun i -> (i mod 3) - 1))
            in
            emit (vdp op (v d) (v s1) src2);
            if not (List.mem d state.defined) then state.defined <- d :: state.defined
        | None -> ())
    | 5 -> (
        (* permutation: on a defined register, random placement *)
        match any_defined () with
        | Some s ->
            let p = List.nth [ Perm.pairswap; Perm.Reverse 4; Perm.Halfswap 4; Perm.Halfswap 8; Perm.Rotate { block = 4; by = 1 } ] (int_range 0 4 st) in
            emit (Vinsn.Vperm { pattern = p; dst = v s; src = v s })
        | None -> ())
    | 6 -> (
        (* reduction into r10 *)
        match any_defined () with
        | Some s -> emit (vred Opcode.Add (r 10) (v s))
        | None -> ())
    | 7 | 8 -> (
        match any_defined () with
        | Some s -> emit (vst (v s) (if bool st then "o1" else "o2"))
        | None -> ())
    | 9 ->
        (* extension: strided (interleaved) access pair; strided writes
           to one array must use pairwise-distinct phases, so hand them
           out in order and stop at two *)
        let d = fresh () in
        let phase = int_range 0 1 st in
        emit (vlds ~stride:2 ~phase (v d) "il");
        (match state.ilo_phases with
        | [] ->
            emit (vsts ~stride:2 ~phase:0 (v d) "ilo");
            state.ilo_phases <- [ 0 ]
        | [ 0 ] ->
            emit (vsts ~stride:2 ~phase:1 (v d) "ilo");
            state.ilo_phases <- [ 0; 1 ]
        | _ -> ());
        if not (List.mem d state.defined) then state.defined <- d :: state.defined
    | _ ->
        (* unsigned saturating add over freshly loaded byte data *)
        let d1 = fresh () and d2 = fresh () in
        emit (vld ~esize:Esize.Byte ~signed:false (v d1) "pix1");
        emit (vld ~esize:Esize.Byte ~signed:false (v d2) "pix2");
        emit (Vinsn.Vsat { op = `Add; esize = Esize.Byte; signed = false; dst = v d1; src1 = v d1; src2 = v d2 });
        emit (vst ~esize:Esize.Byte (v d1) "pixo");
        state.defined <- List.sort_uniq compare (d1 :: d2 :: state.defined)
  done;
  (* make sure something observable happened *)
  (match state.defined with
  | s :: _ -> emit (vst (v s) "o1")
  | [] -> ());
  List.rev !body

let body_arb =
  QCheck.make
    ~print:(fun body ->
      String.concat "\n" (List.map (Format.asprintf "%a" Vinsn.pp_asm) body))
    gen_body

let random_loop_data count =
  [
    Kernels.warray "a" count (fun i -> ((i * 13) mod 201) - 100);
    Kernels.warray "b" count (fun i -> ((i * 7) mod 151) - 75);
    Kernels.warray "d" count (fun i -> ((i * 29) mod 61) - 30);
    Kernels.wzeros "o1" count;
    Kernels.wzeros "o2" count;
    Kernels.barray "pix1" count (fun i -> (i * 37) mod 256);
    Kernels.barray "pix2" count (fun i -> (i * 11) mod 256);
    Kernels.bzeros "pixo" count;
    Kernels.warray "il" (2 * count) (fun i -> ((i * 19) mod 91) - 45);
    Kernels.wzeros "ilo" (2 * count);
    Kernels.wzeros "redout" 16;
  ]

let equivalence_prop body =
  let count = 16 in
  let loop = { Vloop.name = "rnd"; count; body; reductions = [ (r 10, 0) ] } in
  let store_acc = Vloop.Code [ st (r 10) "redout" (i 0) ] in
  let vprog =
    {
      Vloop.name = "rndp";
      sections = [ Vloop.Loop loop; store_acc ];
      data = random_loop_data count;
    }
  in
  match Vloop.validate loop with
  | Error _ -> QCheck.assume_fail ()
  | Ok () -> (
      match Codegen.baseline vprog with
      | exception Scalarize.Error _ -> QCheck.assume_fail ()
      | base_prog ->
          let base = run_image base_prog in
          let liquid_prog = Codegen.liquid vprog in
          List.for_all
            (fun lanes ->
              let config =
                match lanes with
                | 0 -> Cpu.scalar_config
                | l -> Cpu.liquid_config ~lanes:l
              in
              let run = run_image ~config liquid_prog in
              List.for_all
                (fun name ->
                  read_array base base_prog name = read_array run liquid_prog name)
                [ "o1"; "o2"; "pixo"; "redout"; "a"; "b"; "d"; "ilo" ])
            [ 0; 2; 4; 8; 16 ])

let e2e_props =
  [
    qtest ~count:120 "random loops: baseline == liquid at every width" body_arb
      equivalence_prop;
  ]


(* --- assembler round-trip over random programs --- *)

(* Reuse the random loop-body generator: wrap bodies into programs with
   data and glue, emit assembly text, re-parse, and compare. *)
let gen_program =
  QCheck.Gen.map
    (fun body ->
      let loop = { Vloop.name = "rnd"; count = 16; body; reductions = [] } in
      let vprog =
        {
          Vloop.name = "rndp";
          sections = [ Vloop.Loop loop ];
          data = random_loop_data 16;
        }
      in
      Codegen.liquid vprog)
    gen_body

let program_arb = QCheck.make ~print:Parse.emit gen_program

let items_equal a b =
  match (a, b) with
  | Program.Label l1, Program.Label l2 -> l1 = l2
  | Program.I i1, Program.I i2 -> i1 = i2
  | Program.Label _, Program.I _ | Program.I _, Program.Label _ -> false

let parse_props =
  [
    qtest ~count:100 "asm emit/parse round-trip" program_arb (fun p ->
        let q = Parse.program ~name:p.Program.name (Parse.emit p) in
        List.length p.Program.text = List.length q.Program.text
        && List.for_all2 items_equal p.Program.text q.Program.text
        && p.Program.data = q.Program.data);
    qtest ~count:100 "encoded size accounting" program_arb (fun p ->
        let img = Image.of_program p in
        let enc = Encode.encode img.Image.code in
        Encode.size_bytes img
        = (4 * Array.length enc.Encode.words)
          + (4 * Array.length enc.Encode.pool)
          + img.Image.data_bytes);
    qtest ~count:60 "scalarized segments respect the buffer budget"
      body_arb
      (fun body ->
        let loop = { Vloop.name = "rnd"; count = 16; body; reductions = [] } in
        match Scalarize.scalarize loop with
        | exception Scalarize.Error _ -> QCheck.assume_fail ()
        | out ->
            List.for_all (fun (_, n) -> n <= 64) out.Scalarize.static_sizes);
  ]

let tests =
  word_props @ memory_props @ cache_props @ perm_props @ encode_props
  @ e2e_props @ parse_props

(* --- translator structural properties over random loops --- *)

let translate_random body ~lanes =
  let loop = { Vloop.name = "rnd"; count = 16; body; reductions = [ (r 10, 0) ] } in
  match Vloop.validate loop with
  | Error _ -> None
  | Ok () -> (
      match
        Codegen.liquid
          { Vloop.name = "rndp"; sections = [ Vloop.Loop loop ]; data = random_loop_data 16 }
      with
      | exception Scalarize.Error _ -> None
      | prog ->
          let image = Liquid_prog.Image.of_program prog in
          let sizes = Codegen.outlined_sizes
              { Vloop.name = "rndp"; sections = [ Vloop.Loop loop ]; data = random_loop_data 16 }
          in
          Some (Liquid_pipeline.Offline.translate_all ~image ~lanes (), sizes))

let translator_props =
  [
    qtest ~count:80 "microcode never exceeds its scalar source" body_arb
      (fun body ->
        match translate_random body ~lanes:4 with
        | None -> QCheck.assume_fail ()
        | Some (results, sizes) ->
            List.for_all
              (fun (_, label, result) ->
                match result with
                | Liquid_translate.Translator.Aborted _ -> true
                | Liquid_translate.Translator.Translated u ->
                    Liquid_translate.Ucode.length u
                    <= List.assoc label sizes + 1)
              results);
    qtest ~count:80 "effective width divides the trip count" body_arb
      (fun body ->
        match translate_random body ~lanes:16 with
        | None -> QCheck.assume_fail ()
        | Some (results, _) ->
            List.for_all
              (fun (_, _, result) ->
                match result with
                | Liquid_translate.Translator.Aborted _ -> true
                | Liquid_translate.Translator.Translated u ->
                    16 mod u.Liquid_translate.Ucode.width = 0)
              results);
    qtest ~count:50 "translation is deterministic" body_arb (fun body ->
        match (translate_random body ~lanes:8, translate_random body ~lanes:8) with
        | Some (a, _), Some (b, _) ->
            List.for_all2
              (fun (_, _, ra) (_, _, rb) ->
                match (ra, rb) with
                | ( Liquid_translate.Translator.Translated ua,
                    Liquid_translate.Translator.Translated ub ) ->
                    Array.for_all2
                      (fun x y ->
                        match (x, y) with
                        | Liquid_translate.Ucode.US i, Liquid_translate.Ucode.US j ->
                            Liquid_isa.Insn.equal_exec i j
                        | Liquid_translate.Ucode.UV i, Liquid_translate.Ucode.UV j ->
                            Vinsn.equal_exec i j
                        | ( Liquid_translate.Ucode.UB { cond = c1; target = t1 },
                            Liquid_translate.Ucode.UB { cond = c2; target = t2 } ) ->
                            c1 = c2 && t1 = t2
                        | Liquid_translate.Ucode.URet, Liquid_translate.Ucode.URet ->
                            true
                        | _, _ -> false)
                      ua.Liquid_translate.Ucode.uops ub.Liquid_translate.Ucode.uops
                | ( Liquid_translate.Translator.Aborted _,
                    Liquid_translate.Translator.Aborted _ ) ->
                    true
                | _, _ -> false)
              a b
        | _, _ -> QCheck.assume_fail ());
  ]

let tests = tests @ translator_props

(* --- equivalence under randomized machine configurations --- *)

let gen_config : Cpu.config QCheck.Gen.t =
 fun st ->
  let open QCheck.Gen in
  let lanes = oneofl [ 2; 4; 8; 16 ] st in
  let base = Cpu.liquid_config ~lanes in
  {
    base with
    Cpu.mem_latency = oneofl [ 1; 10; 30; 100 ] st;
    Cpu.vec_bus_bytes = oneofl [ 4; 8; 16; 32 ] st;
    Cpu.ucode_entries = oneofl [ 1; 2; 8 ] st;
    Cpu.max_uops = oneofl [ 8; 32; 64 ] st;
    Cpu.mispredict_penalty = oneofl [ 0; 3; 10 ] st;
    Cpu.translator =
      Some
        {
          Cpu.cycles_per_insn = oneofl [ 1; 50; 5000 ] st;
          Cpu.kind = (if bool st then Cpu.Hardware else Cpu.Software);
        };
    Cpu.interrupt_interval = oneofl [ None; Some 500; Some 5000 ] st;
    Cpu.icache = (if bool st then base.Cpu.icache else None);
    Cpu.dcache = (if bool st then base.Cpu.dcache else None);
    Cpu.oracle_translation = bool st;
  }

let config_arb =
  QCheck.make
    ~print:(fun (c : Cpu.config) ->
      Printf.sprintf "lanes=%s mem=%d bus=%d entries=%d uops=%d"
        (match c.Cpu.accel_lanes with Some l -> string_of_int l | None -> "none")
        c.Cpu.mem_latency c.Cpu.vec_bus_bytes c.Cpu.ucode_entries c.Cpu.max_uops)
    gen_config

let machine_robustness_props =
  [
    qtest ~count:100
      "random machines never change program results"
      (QCheck.pair body_arb config_arb)
      (fun (body, config) ->
        let loop = { Vloop.name = "rnd"; count = 16; body; reductions = [ (r 10, 0) ] } in
        let vprog =
          {
            Vloop.name = "rndp";
            sections =
              [ Vloop.Loop loop; Vloop.Code [ st (r 10) "redout" (i 0) ] ];
            data = random_loop_data 16;
          }
        in
        match Vloop.validate loop with
        | Error _ -> QCheck.assume_fail ()
        | Ok () -> (
            match Codegen.baseline vprog with
            | exception Scalarize.Error _ -> QCheck.assume_fail ()
            | base_prog ->
                let base = run_image base_prog in
                let liquid_prog = Codegen.liquid vprog in
                let run = run_image ~config liquid_prog in
                List.for_all
                  (fun name ->
                    read_array base base_prog name = read_array run liquid_prog name)
                  [ "o1"; "o2"; "pixo"; "ilo"; "redout"; "a"; "b"; "d" ]));
  ]

let tests = tests @ machine_robustness_props
