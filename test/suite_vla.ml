(* The vector-length-agnostic (SVE-style) backend.

   Five layers are under test: the predicate semantics ([Sem.exec_vla]
   against a hand-built context), the translation structure (a whilelt
   loop with a predicated final iteration and nothing after the
   back-edge), the end-to-end claim of the backend (a trip count that is
   not a multiple of the lane width executes with zero scalar-epilogue
   iterations, bit-identical to scalar), permutation recovery (fixed
   cross-lane patterns lower to runtime-indexed table lookups instead of
   aborting), and the scalar-equivalence oracle across all fifteen
   workloads at every paper width. *)

open Liquid_isa
open Liquid_prog
open Liquid_visa
open Liquid_pipeline
open Liquid_scalarize
open Liquid_translate
open Liquid_harness
open Liquid_workloads
open Helpers
module Memory = Liquid_machine.Memory
module Stats = Liquid_machine.Stats
module Oracle = Liquid_faults.Oracle

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- predicate semantics --- *)

let vla_ctx ~lanes =
  let c = Sem.create_ctx (Memory.create ()) in
  c.Sem.lanes <- lanes;
  c

let whilelt c ~counter ~bound =
  c.Sem.regs.(0) <- counter;
  Sem.exec_vla c (Vla.Whilelt { pred = Vla.p0; counter = r 0; bound })

let test_whilelt () =
  let c = vla_ctx ~lanes:4 in
  whilelt c ~counter:0 ~bound:15;
  check "full predicate" 4 c.Sem.preds.(0);
  check_bool "continue flag" true (Flags.lt c.Sem.flags);
  whilelt c ~counter:12 ~bound:15;
  check "partial tail" 3 c.Sem.preds.(0);
  check_bool "still continuing" true (Flags.lt c.Sem.flags);
  whilelt c ~counter:16 ~bound:15;
  check "overshoot empty" 0 c.Sem.preds.(0);
  check_bool "loop exits" false (Flags.lt c.Sem.flags);
  whilelt c ~counter:15 ~bound:15;
  check "exact end empty" 0 c.Sem.preds.(0);
  check_bool "equality exits too" false (Flags.lt c.Sem.flags)

let test_incvl () =
  let c = vla_ctx ~lanes:4 in
  c.Sem.regs.(3) <- 12;
  Sem.exec_vla c (Vla.Incvl { dst = r 3 });
  check "advanced by VL" 16 c.Sem.regs.(3);
  c.Sem.lanes <- 8;
  Sem.exec_vla c (Vla.Incvl { dst = r 3 });
  check "tracks the active width" 24 c.Sem.regs.(3)

let pred v = Vla.Pred { pred = Vla.p0; v }

let test_pred_dp_zeroing () =
  let c = vla_ctx ~lanes:4 in
  Array.blit [| 1; 2; 3; 4 |] 0 c.Sem.vregs.(1) 0 4;
  Array.fill c.Sem.vregs.(2) 0 4 99;
  c.Sem.preds.(0) <- 2;
  Sem.exec_vla c
    (pred (Vinsn.Vdp { op = Opcode.Add; dst = v 2; src1 = v 1; src2 = VR (v 1) }));
  check "active lane 0" 2 c.Sem.vregs.(2).(0);
  check "active lane 1" 4 c.Sem.vregs.(2).(1);
  check "inactive lane zeroed" 0 c.Sem.vregs.(2).(2);
  check "inactive lane zeroed (last)" 0 c.Sem.vregs.(2).(3);
  (* A full predicate must behave exactly like the unpredicated op. *)
  c.Sem.preds.(0) <- 4;
  Sem.exec_vla c
    (pred (Vinsn.Vdp { op = Opcode.Mul; dst = v 2; src1 = v 1; src2 = VImm 3 }));
  check "full predicate lane 3" 12 c.Sem.vregs.(2).(3)

let test_pred_load_store () =
  let c = vla_ctx ~lanes:4 in
  for i = 0 to 3 do
    Memory.write c.Sem.mem ~addr:(0x5000 + (i * 4)) ~bytes:4 (100 + i)
  done;
  c.Sem.regs.(0) <- 0;
  c.Sem.preds.(0) <- 3;
  Sem.exec_vla c
    (pred
       (Vinsn.Vld
          { esize = Esize.Word; signed = true; dst = v 1; base = Insn.Sym 0x5000; index = r 0 }));
  check "lane 0 loaded" 100 c.Sem.vregs.(1).(0);
  check "lane 2 loaded" 102 c.Sem.vregs.(1).(2);
  check "inactive lane zeroed" 0 c.Sem.vregs.(1).(3);
  (let eff = Sem.last_effect c in
   match eff.Sem.accesses with
   | [ { Sem.bytes; _ } ] -> check "partial access bytes" 12 bytes
   | _ -> Alcotest.fail "expected one access");
  (* Partial store: the lane past the predicate must not reach memory. *)
  Memory.write c.Sem.mem ~addr:(0x6000 + 8) ~bytes:4 (-1);
  c.Sem.preds.(0) <- 2;
  Array.blit [| 7; 8; 9; 10 |] 0 c.Sem.vregs.(1) 0 4;
  Sem.exec_vla c
    (pred (Vinsn.Vst { esize = Esize.Word; src = v 1; base = Insn.Sym 0x6000; index = r 0 }));
  check "active lane stored" 7
    (Memory.read c.Sem.mem ~addr:0x6000 ~bytes:4 ~signed:true);
  check "second active lane stored" 8
    (Memory.read c.Sem.mem ~addr:0x6004 ~bytes:4 ~signed:true);
  check "inactive lane untouched" (-1)
    (Memory.read c.Sem.mem ~addr:(0x6000 + 8) ~bytes:4 ~signed:true)

let test_pred_reduction () =
  let c = vla_ctx ~lanes:4 in
  Array.blit [| 1; 2; 3; 4 |] 0 c.Sem.vregs.(1) 0 4;
  c.Sem.regs.(5) <- 100;
  c.Sem.preds.(0) <- 3;
  Sem.exec_vla c (pred (Vinsn.Vred { op = Opcode.Add; acc = r 5; src = v 1 }));
  check "folds active lanes only" 106 c.Sem.regs.(5);
  c.Sem.preds.(0) <- 0;
  Sem.exec_vla c (pred (Vinsn.Vred { op = Opcode.Add; acc = r 5; src = v 1 }));
  check "empty predicate is a no-op" 106 c.Sem.regs.(5)

let test_pred_permutation_sigill () =
  let c = vla_ctx ~lanes:4 in
  c.Sem.preds.(0) <- 2;
  Alcotest.check_raises "predicated permutation refuses to execute"
    (Sem.Sigill "predicated permutation") (fun () ->
      Sem.exec_vla c
        (pred (Vinsn.Vperm { pattern = Perm.Reverse 4; dst = v 1; src = v 1 })))

(* --- translation structure: the FIR-15 loop --- *)

(* c[i] = 5*a[i] + 3*b[i] over 15 elements: a trip count no fixed width
   in 2..16 divides, the motivating case for the predicated epilogue. *)
let fir15_count = 15

let fir15_loop =
  let open Build in
  {
    Vloop.name = "fir15";
    count = fir15_count;
    body =
      [
        vld (v 1) "a";
        vmul (v 1) (v 1) (vi 5);
        vld (v 2) "b";
        vmul (v 2) (v 2) (vi 3);
        vadd (v 1) (v 1) (vr (v 2));
        vst (v 1) "c";
      ];
    reductions = [];
  }

let fir15_data () =
  [
    Data.make ~name:"a" ~esize:Esize.Word
      (words fir15_count (fun i -> (i * 7) - 20));
    Data.make ~name:"b" ~esize:Esize.Word
      (words fir15_count (fun i -> 11 - (i * 3)));
    Data.make ~name:"c" ~esize:Esize.Word (words fir15_count (fun _ -> 0));
  ]

let fir15_expected =
  words fir15_count (fun i -> (5 * ((i * 7) - 20)) + (3 * (11 - (i * 3))))

let fir15_translate ~backend ~lanes =
  let prog =
    Codegen.liquid (simple_program ~name:"fir15" ~data:(fir15_data ()) fir15_loop)
  in
  let image = Image.of_program prog in
  let entry =
    match image.Image.region_entries with
    | [ (e, _) ] -> e
    | _ -> Alcotest.fail "expected one region"
  in
  Offline.translate_region ~backend ~image ~lanes ~entry ()

let test_fixed_backend_aborts () =
  List.iter
    (fun lanes ->
      match fir15_translate ~backend:Backend.fixed ~lanes with
      | Translator.Aborted Abort.Bad_trip_count -> ()
      | Translator.Aborted a ->
          Alcotest.failf "wrong abort at %d lanes: %s" lanes (Abort.to_string a)
      | Translator.Translated _ ->
          Alcotest.failf "fixed backend translated 15 trips at %d lanes" lanes)
    [ 2; 4; 8; 16 ]

let test_vla_translation_structure () =
  let u =
    match fir15_translate ~backend:Backend.vla ~lanes:4 with
    | Translator.Translated u -> u
    | Translator.Aborted a ->
        Alcotest.failf "VLA backend aborted: %s" (Abort.to_string a)
  in
  check_bool "marked as VLA microcode" true u.Ucode.vla;
  check "translated at the full lane count" 4 u.Ucode.width;
  let uops = Array.to_list u.Ucode.uops in
  let count p = List.length (List.filter p uops) in
  check "one header + one loop-end whilelt" 2
    (count (function Ucode.UP (Vla.Whilelt _) -> true | _ -> false));
  check "one induction increment" 1
    (count (function Ucode.UP (Vla.Incvl _) -> true | _ -> false));
  check "every body op predicated" 6
    (count (function Ucode.UP (Vla.Pred _) -> true | _ -> false));
  check "no unpredicated vector ops" 0
    (count (function Ucode.UV _ -> true | _ -> false));
  (* Zero scalar-epilogue structure: the back-edge is the last uop
     before [ret] — nothing runs after the vector loop. *)
  let n = Array.length u.Ucode.uops in
  check_bool "ret terminates" true (u.Ucode.uops.(n - 1) = Ucode.URet);
  (match u.Ucode.uops.(n - 2) with
  | Ucode.UB { cond = Cond.Lt; target } ->
      (* ...and the back-edge re-enters after the header whilelt, which
         runs exactly once. *)
      (match u.Ucode.uops.(target - 1) with
      | Ucode.UP (Vla.Whilelt _) -> ()
      | _ -> Alcotest.fail "back-edge target not after the header whilelt")
  | _ -> Alcotest.fail "expected the loop back-edge right before ret");
  (* The loop-end whilelt must recompute the predicate before the
     back-edge tests the flags. *)
  match u.Ucode.uops.(n - 3) with
  | Ucode.UP (Vla.Whilelt _) -> ()
  | _ -> Alcotest.fail "expected the loop-end whilelt before the back-edge"

(* --- end-to-end: predicated epilogue, bit-identical state --- *)

let test_zero_scalar_epilogue () =
  let frames = 4 in
  let vprog =
    simple_program ~name:"fir15" ~frames ~data:(fir15_data ()) fir15_loop
  in
  let liquid = Codegen.liquid vprog in
  let image = Image.of_program liquid in
  let lanes = 4 in
  let config =
    {
      (Cpu.liquid_config ~lanes) with
      Cpu.backend = Backend.vla;
      Cpu.oracle_translation = true;
    }
  in
  let run = Cpu.run ~config image in
  (* Every call is served from the microcode cache, so no region
     instruction executes in scalar form at all. *)
  check "all calls in microcode" run.Cpu.stats.Stats.region_calls
    run.Cpu.stats.Stats.ucode_hits;
  check "region calls" frames run.Cpu.stats.Stats.region_calls;
  (* ceil(15/4) = 4 vector iterations x 6 predicated ops per frame:
     the partial final iteration replaces 3 scalar-epilogue trips. *)
  check "predicated vector work only"
    (frames * 4 * 6)
    run.Cpu.stats.Stats.vector_insns;
  (match run.Cpu.regions with
  | [ { Cpu.outcome = Cpu.R_installed { width; _ }; _ } ] ->
      check "installed at the full lane count" lanes width
  | _ -> Alcotest.fail "expected one installed region");
  check_arrays "vla result" fir15_expected (read_array run liquid "c");
  (* Memory bit-identical to the same binary stepped in pure scalar
     form. (Registers are excluded here: the VLA counter legitimately
     ends at the next multiple of VL, 16 rather than 15 — the oracle's
     junk mask handles this for the real workloads below.) *)
  let scalar = run_image liquid in
  check_memory_equal "vla vs scalar" run scalar;
  (* Contrast: the fixed-width machine cannot translate 15 trips at any
     width, so the same binary does zero vector work there. *)
  let fixed_run =
    Cpu.run ~config:{ config with Cpu.backend = Backend.fixed } image
  in
  check "fixed backend falls back to scalar" 0
    fixed_run.Cpu.stats.Stats.vector_insns;
  check_memory_equal "fixed fallback still exact" fixed_run scalar

(* --- table-lookup semantics: Tblidx / Tbl / Tblst --- *)

(* [Tbl] lane [j] reads absolute element [src_index pattern (counter+j)]
   — exact at any width relative to the pattern period, mid-loop counter
   values included. *)
let test_tbl_exec () =
  let c = vla_ctx ~lanes:4 in
  for j = 0 to 7 do
    Memory.write c.Sem.mem ~addr:(0x7000 + (4 * j)) ~bytes:4 (10 * j)
  done;
  c.Sem.regs.(0) <- 2;
  c.Sem.preds.(0) <- 4;
  let tbl dst =
    Vla.Tbl
      {
        pred = Vla.p0;
        esize = Esize.Word;
        signed = true;
        dst;
        base = Insn.Sym 0x7000;
        counter = r 0;
        pattern = Perm.pairswap;
      }
  in
  Sem.exec_vla c (tbl (v 1));
  (* lane j reads element src_index pairswap (2+j) = 3, 2, 5, 4 *)
  check "lane 0" 30 c.Sem.vregs.(1).(0);
  check "lane 1" 20 c.Sem.vregs.(1).(1);
  check "lane 2" 50 c.Sem.vregs.(1).(2);
  check "lane 3" 40 c.Sem.vregs.(1).(3);
  check "all-true fast path counted" 1 c.Sem.n_pred_fast;
  (* Predicated tail: lanes past the predicate load nothing and zero. *)
  Array.fill c.Sem.vregs.(2) 0 4 99;
  c.Sem.preds.(0) <- 2;
  Sem.exec_vla c (tbl (v 2));
  check "tail lane 0" 30 c.Sem.vregs.(2).(0);
  check "tail lane 1" 20 c.Sem.vregs.(2).(1);
  check "inactive lane zeroed" 0 c.Sem.vregs.(2).(2);
  check "inactive lane zeroed (last)" 0 c.Sem.vregs.(2).(3);
  check "masked path counted" 1 c.Sem.n_pred_masked

let test_tblst_exec () =
  let c = vla_ctx ~lanes:4 in
  for j = 0 to 3 do
    Memory.write c.Sem.mem ~addr:(0x6100 + (4 * j)) ~bytes:4 (-1)
  done;
  Array.blit [| 7; 8; 9; 10 |] 0 c.Sem.vregs.(1) 0 4;
  c.Sem.regs.(0) <- 0;
  c.Sem.preds.(0) <- 3;
  Sem.exec_vla c
    (Vla.Tblst
       {
         pred = Vla.p0;
         esize = Esize.Word;
         src = v 1;
         base = Insn.Sym 0x6100;
         counter = r 0;
         pattern = Perm.pairswap;
       });
  (* lane j writes element src_index pairswap j = 1, 0, 3; lane 3 is
     inactive, so element 2 keeps its sentinel *)
  let rd e = Memory.read c.Sem.mem ~addr:(0x6100 + (4 * e)) ~bytes:4 ~signed:true in
  check "element 0" 8 (rd 0);
  check "element 1" 7 (rd 1);
  check "inactive element untouched" (-1) (rd 2);
  check "element 3" 9 (rd 3)

let test_tblidx () =
  let c = vla_ctx ~lanes:8 in
  check "no builds yet" 0 c.Sem.n_tbl_builds;
  Sem.exec_vla c (Vla.Tblidx { pattern = Perm.Reverse 4 });
  Sem.exec_vla c (Vla.Tblidx { pattern = Perm.pairswap });
  check "each build counted" 2 c.Sem.n_tbl_builds;
  let eff = Sem.last_effect c in
  check "no memory traffic" 0 (List.length eff.Sem.accesses)

(* --- permutations recover as table lookups --- *)

(* The canonical Table-3 rule-3 idiom: an offset-array load the
   fixed-width DFA recovers as [pairswap]. The VLA backend recognises
   the same shape and lowers it to a predicated table-lookup gather with
   a runtime-built index vector — no abort, no scalar fallback. *)
let pairswap_data ~count =
  let offs = Perm.offsets Perm.pairswap in
  [
    Data.make ~name:"off" ~esize:Esize.Word
      (words count (fun e -> offs.(e mod Array.length offs)));
    Data.make ~name:"a" ~esize:Esize.Word (words count (fun i -> 100 + i));
    Data.make ~name:"c" ~esize:Esize.Word (words count (fun _ -> 0));
  ]

let pairswap_items ~count ~scatter =
  let open Build in
  let ind = Vloop.induction in
  let body =
    if scatter then
      [
        ld (r 1) "a" (ri ind);
        ld (r 13) "off" (ri ind);
        dp Opcode.Add (r 13) ind (ri (r 13));
        st (r 1) "c" (ri (r 13));
      ]
    else
      [
        ld (r 13) "off" (ri ind);
        dp Opcode.Add (r 13) ind (ri (r 13));
        ld (r 1) "a" (ri (r 13));
        st (r 1) "c" (ri ind);
      ]
  in
  [ mov ind 0; label "f_top" ]
  @ body
  @ [ addi ind ind 1; cmp ind (i count); b ~cond:Cond.Lt "f_top" ]

let count_uops p (u : Ucode.t) =
  Array.fold_left (fun n uop -> if p uop then n + 1 else n) 0 u.Ucode.uops

let test_perm_recovery_structure () =
  let data = pairswap_data ~count:16 in
  let items = pairswap_items ~count:16 ~scatter:false in
  (* Sanity: the fixed-width backend still takes the native path. *)
  (match translate_items ~lanes:4 ~backend:Backend.fixed ~data items with
  | Liquid_translate.Translator.Translated u ->
      check "fixed path emits a register permute" 1
        (count_uops (function Ucode.UV (Vinsn.Vperm _) -> true | _ -> false) u)
  | Liquid_translate.Translator.Aborted a ->
      Alcotest.failf "fixed backend should translate pairswap: %s"
        (Abort.to_string a));
  List.iter
    (fun lanes ->
      let u =
        match translate_items ~lanes ~backend:Backend.vla ~data items with
        | Liquid_translate.Translator.Translated u -> u
        | Liquid_translate.Translator.Aborted a ->
            Alcotest.failf "VLA aborted at %d lanes: %s" lanes
              (Abort.to_string a)
      in
      check "one index-table build" 1
        (count_uops (function Ucode.UP (Vla.Tblidx _) -> true | _ -> false) u);
      check "one table-lookup gather" 1
        (count_uops (function Ucode.UP (Vla.Tbl _) -> true | _ -> false) u);
      check "no register permute" 0
        (count_uops
           (function
             | Ucode.UV (Vinsn.Vperm _) | Ucode.UP (Vla.Pred { v = Vinsn.Vperm _; _ })
               ->
                 true
             | _ -> false)
           u);
      (* Both the offset-array load and the partner data load collapse
         into the table lookup — the alignment-network collapse. *)
      check "no residual vector load" 0
        (count_uops
           (function Ucode.UP (Vla.Pred { v = Vinsn.Vld _; _ }) -> true | _ -> false)
           u);
      (* The index-table build runs once per call: it precedes the
         header whilelt, and the back-edge re-enters after both. *)
      let target =
        match u.Ucode.uops.(Array.length u.Ucode.uops - 2) with
        | Ucode.UB { cond = Cond.Lt; target } -> target
        | _ -> Alcotest.fail "expected the loop back-edge right before ret"
      in
      (match u.Ucode.uops.(target - 1) with
      | Ucode.UP (Vla.Whilelt _) -> ()
      | _ -> Alcotest.fail "back-edge target not after the header whilelt");
      (match u.Ucode.uops.(target - 2) with
      | Ucode.UP (Vla.Tblidx _) -> ()
      | _ -> Alcotest.fail "index-table build not before the header");
      (* The baked pattern is protected by per-trip offset guards, so a
         mutated offset array drops the microcode instead of replaying a
         stale permutation. *)
      check "per-trip offset guards" 16 (Array.length u.Ucode.guards))
    [ 2; 4; 8; 16 ]

let test_perm_scatter_recovery () =
  let data = pairswap_data ~count:16 in
  let items = pairswap_items ~count:16 ~scatter:true in
  let u =
    match translate_items ~lanes:4 ~backend:Backend.vla ~data items with
    | Liquid_translate.Translator.Translated u -> u
    | Liquid_translate.Translator.Aborted a ->
        Alcotest.failf "VLA aborted on scatter: %s" (Abort.to_string a)
  in
  check "one table-lookup scatter" 1
    (count_uops (function Ucode.UP (Vla.Tblst _) -> true | _ -> false) u);
  check "no residual vector store" 0
    (count_uops
       (function Ucode.UP (Vla.Pred { v = Vinsn.Vst _; _ }) -> true | _ -> false)
       u)

(* End-to-end at a trip count no fixed width divides: the recovered
   table lookup reproduces the scalar stream bit-exactly at every
   hardware width, predicated tail included. *)
let test_perm_recovery_executes () =
  let count = 14 in
  List.iter
    (fun scatter ->
      let prog =
        let open Build in
        Program.make ~name:"permrec"
          ~text:
            ((Program.Label "main" :: bl_region "f" :: [ halt ])
            @ (Program.Label "f" :: pairswap_items ~count ~scatter)
            @ [ ret ])
          ~data:(pairswap_data ~count)
      in
      let scalar = run_image prog in
      let expected = read_array scalar prog "c" in
      List.iter
        (fun lanes ->
          let config =
            {
              (Cpu.liquid_config ~lanes) with
              Cpu.backend = Backend.vla;
              Cpu.oracle_translation = true;
            }
          in
          let run = run_image ~config prog in
          check_arrays
            (Printf.sprintf "scatter=%b lanes=%d" scatter lanes)
            expected (read_array run prog "c");
          check "call served from microcode" run.Cpu.stats.Stats.region_calls
            run.Cpu.stats.Stats.ucode_hits;
          check "permutation seen" 1 run.Cpu.permutes_seen;
          check "permutation recovered" 1 run.Cpu.permutes_recovered;
          check "no permutation aborted" 0 run.Cpu.permutes_aborted;
          check "one index table built per call" 1 run.Cpu.tbl_index_builds)
        [ 2; 4; 8; 16 ])
    [ false; true ]

(* A genuinely data-dependent shuffle — the offset array is written
   inside the loop, so no index vector baked at translation time can be
   proven to stay correct — is the one shape that still aborts. *)
let test_data_dependent_still_aborts () =
  let open Build in
  let ind = Vloop.induction in
  let data = pairswap_data ~count:16 in
  let items =
    [ mov ind 0; label "f_top" ]
    @ [
        ld (r 13) "off" (ri ind);
        dp Opcode.Add (r 13) ind (ri (r 13));
        ld (r 1) "a" (ri (r 13));
        st (r 1) "c" (ri ind);
        st (r 1) "off" (ri ind);
      ]
    @ [ addi ind ind 1; cmp ind (i 16); b ~cond:Cond.Lt "f_top" ]
  in
  expect_abort ~lanes:4 ~backend:Backend.vla ~data items
    (fun a -> a = Abort.Unportable_permutation)
    "data-dependent shuffle under VLA"

(* The FFT workload leans on butterflies: under the VLA backend every
   permuting region now recovers as a table lookup — no unportable
   aborts, all regions vectorized, state still bit-identical to the
   scalar oracle. *)
let test_fft_recovers () =
  let w = Option.get (Workload.find "FFT") in
  let { Runner.run; program; _ } = Runner.run_cached w (Runner.Liquid_vla 8) in
  let image = Image.of_program program in
  check_bool "no region fails permanently" true
    (List.for_all
       (fun (reg : Cpu.region_report) ->
         match reg.Cpu.outcome with Cpu.R_failed _ -> false | _ -> true)
       run.Cpu.regions);
  check "no translation aborts" 0 run.Cpu.stats.Stats.translations_aborted;
  check_bool "butterflies recovered" true (run.Cpu.permutes_recovered > 0);
  check "no permutation aborted" 0 run.Cpu.permutes_aborted;
  check_bool "index tables built" true (run.Cpu.tbl_index_builds > 0);
  check_bool "oracle equivalence" true (Oracle.equivalent w image run)

(* --- scalar-equivalence oracle, all workloads x all widths --- *)

let test_oracle_equivalence (w : Workload.t) () =
  List.iter
    (fun width ->
      let { Runner.run; program; _ } =
        Runner.run_cached w (Runner.Liquid_vla width)
      in
      let image = Image.of_program program in
      match Oracle.check w image run with
      | Ok () -> ()
      | Error m ->
          Alcotest.failf "w%d diverged from scalar: %a" width Oracle.pp_mismatch
            m)
    [ 2; 4; 8; 16 ]

let tests =
  [
    Alcotest.test_case "whilelt prefix predicates" `Quick test_whilelt;
    Alcotest.test_case "incvl advances by VL" `Quick test_incvl;
    Alcotest.test_case "predicated dp zeroes inactive lanes" `Quick
      test_pred_dp_zeroing;
    Alcotest.test_case "predicated load/store touch active lanes" `Quick
      test_pred_load_store;
    Alcotest.test_case "predicated reduction folds active lanes" `Quick
      test_pred_reduction;
    Alcotest.test_case "predicated permutation is illegal" `Quick
      test_pred_permutation_sigill;
    Alcotest.test_case "fixed backend aborts on 15 trips" `Quick
      test_fixed_backend_aborts;
    Alcotest.test_case "vla translation structure" `Quick
      test_vla_translation_structure;
    Alcotest.test_case "zero scalar-epilogue iterations" `Quick
      test_zero_scalar_epilogue;
    Alcotest.test_case "tbl gather semantics" `Quick test_tbl_exec;
    Alcotest.test_case "tblst scatter semantics" `Quick test_tblst_exec;
    Alcotest.test_case "tblidx counts index builds" `Quick test_tblidx;
    Alcotest.test_case "permutation recovers as table lookup" `Quick
      test_perm_recovery_structure;
    Alcotest.test_case "store-side permutation recovers" `Quick
      test_perm_scatter_recovery;
    Alcotest.test_case "recovered permutes execute bit-exactly" `Quick
      test_perm_recovery_executes;
    Alcotest.test_case "data-dependent shuffle still aborts" `Quick
      test_data_dependent_still_aborts;
    Alcotest.test_case "FFT recovers its butterflies under VLA" `Quick
      test_fft_recovers;
  ]
  @ List.map
      (fun (w : Workload.t) ->
        Alcotest.test_case
          (Printf.sprintf "oracle equivalence %s" w.Workload.name)
          `Quick (test_oracle_equivalence w))
      (Workload.all ())
