(* Fault injection and the abort-safety oracle.

   The paper's safety argument (§3.2/§4.2) is that translation may fail
   at any point — any DFA state, any abort class, a lost microcode
   entry, a watchdog stop — and the program still completes with
   pure-scalar architectural state. These tests attack that claim
   mechanically:

   - every [Abort.t] class is forced into a live translation session on
     every workload (widths rotated across the suite) and the final
     state is checked against the scalar-equivalence oracle, so a new
     abort class cannot ship untested ([Abort.class_name]'s exhaustive
     match breaks the build, and this sweep breaks the test run);
   - a microcode entry is evicted mid-run and the retranslation must
     reproduce byte-identical uop sequences, the same install shape,
     and oracle-equivalent state;
   - the oracle itself is falsifiable: corrupting one live register or
     one memory byte must flip it to a mismatch;
   - a seeded campaign (the same machinery behind `liquid_cli faults`)
     must survive with zero divergent and zero crashed cases. *)

open Liquid_prog
open Liquid_translate
open Liquid_pipeline
open Liquid_workloads
open Liquid_harness
module Fault = Liquid_faults.Fault
module Oracle = Liquid_faults.Oracle
module Campaign = Liquid_faults.Campaign
module Fingerprint = Liquid_faults.Fingerprint
module Stats = Liquid_machine.Stats
module Memory = Liquid_machine.Memory

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Rotate the paper's widths across the suite so every workload is
   attacked and every width appears, without paying 15 x 4 full runs
   per abort class in tier-1. *)
let rotated_pairs () =
  List.mapi
    (fun i w -> (w, List.nth Campaign.default_widths (i mod 4)))
    (Workload.all ())

(* --- every abort class, every workload --- *)

let test_abort_classes_distinct () =
  let names = List.map Abort.class_name Abort.all in
  check_int "representative per class" 12 (List.length names);
  check_int "class names distinct"
    (List.length names)
    (List.length (List.sort_uniq compare names))

let test_abort_sweep w width () =
  let rng = Fault.Rng.make (Hashtbl.hash (w.Workload.name, width)) in
  let sp = Campaign.probe w ~width in
  check_bool "workload feeds the translator" true (sp.Fault.sp_feeds > 0);
  List.iter
    (fun abort ->
      let site = Fault.Rng.int rng sp.Fault.sp_feeds in
      let case = Campaign.run_case w ~width (Fault.Force_abort { site; abort }) in
      Alcotest.(check string)
        (Printf.sprintf "%s@%d survives" (Abort.class_name abort) site)
        "safe"
        (Campaign.verdict_name case.Campaign.c_verdict))
    Abort.all

(* --- eviction and retranslation --- *)

(* Evict a hot region's microcode mid-run: the region must retranslate,
   the reinstalled microcode must replay byte-identical uop sequences,
   and the run must still land on scalar state. *)
let test_evict_retranslate () =
  let w = Option.get (Workload.find "FIR") in
  let width = 4 in
  let program = Runner.program_of w (Runner.Liquid width) in
  let image = Image.of_program program in
  let sp = Campaign.probe w ~width in
  check_bool "enough region calls to evict between" true (sp.Fault.sp_calls > 4);
  let fault = Fault.Evict_ucode { call = sp.Fault.sp_calls / 2 } in
  let armed = Fault.arm fault in
  (* Collect the executed uop stream of every microcode-served call.
     [`Ucode_call] is traced before its uops run, and region calls never
     nest, so the events between consecutive markers are one call. *)
  let finished = ref [] (* (entry, uops in order) per completed call *) in
  let current = ref None in
  let flush () =
    match !current with
    | Some (entry, acc) ->
        finished := (entry, List.rev acc) :: !finished;
        current := None
    | None -> ()
  in
  let on_trace = function
    | Cpu.T_region { event = `Ucode_call; _ } ->
        flush ();
        current := Some (-1, [])
    | Cpu.T_uop { entry; uop; _ } ->
        current :=
          (match !current with
          | Some (_, acc) -> Some (entry, uop :: acc)
          | None -> Some (entry, [ uop ]))
    | _ -> ()
  in
  let config =
    {
      (Cpu.liquid_config ~lanes:width) with
      Cpu.faults = armed.Fault.hooks;
      Cpu.on_trace = Some on_trace;
    }
  in
  let run = Cpu.run ~config image in
  check_int "eviction fired once" 1 (armed.Fault.fired ());
  check_int "stats count the eviction" 1 run.Cpu.stats.Stats.ucode_evictions;
  (* Clean reference at the same width. *)
  let clean = Runner.run w (Runner.Liquid width) in
  check_int "one extra install for the retranslation"
    (clean.Runner.run.Cpu.stats.Stats.ucode_installs + 1)
    run.Cpu.stats.Stats.ucode_installs;
  check_int "one ucode hit lost to the evicted call"
    (clean.Runner.run.Cpu.stats.Stats.ucode_hits - 1)
    run.Cpu.stats.Stats.ucode_hits;
  (* Same final install shape per region as the clean run. *)
  List.iter2
    (fun (a : Cpu.region_report) (b : Cpu.region_report) ->
      Alcotest.(check string) "same region" a.Cpu.label b.Cpu.label;
      match (a.Cpu.outcome, b.Cpu.outcome) with
      | ( Cpu.R_installed { width = wa; uops = ua },
          Cpu.R_installed { width = wb; uops = ub } ) ->
          check_int ("install width of " ^ a.Cpu.label) wb wa;
          check_int ("uop count of " ^ a.Cpu.label) ub ua
      | oa, ob ->
          check_bool
            ("outcome of " ^ a.Cpu.label)
            true
            (oa = ob))
    run.Cpu.regions clean.Runner.run.Cpu.regions;
  (* Retranslated microcode replays byte-identical uop sequences: every
     microcode-served call of a region, before and after the eviction,
     executes the same uop stream. *)
  flush ();
  let calls = List.rev !finished in
  check_bool "uop trace saw microcode calls" true (calls <> []);
  let entries = List.sort_uniq compare (List.map fst calls) in
  List.iter
    (fun entry ->
      match List.filter_map
              (fun (e, uops) -> if e = entry then Some uops else None)
              calls
      with
      | [] | [ _ ] -> ()
      | first :: rest ->
          List.iteri
            (fun i call ->
              check_bool
                (Printf.sprintf "entry %d call %d replays identically" entry
                   (i + 1))
                true (call = first))
            rest)
    entries;
  check_bool "oracle equivalence after retranslation" true
    (Oracle.equivalent w image run)

(* --- the oracle is falsifiable --- *)

let test_oracle_catches_corruption () =
  let w = Option.get (Workload.find "FIR") in
  let { Runner.run; program; _ } = Runner.run w (Runner.Liquid 4) in
  let image = Image.of_program program in
  check_bool "clean translated run passes" true (Oracle.equivalent w image run);
  let mask = Oracle.junk_mask w in
  (* Flip a live (unmasked) register. *)
  let live =
    let rec find i = if mask.(i) then find (i + 1) else i in
    find 0
  in
  let saved = run.Cpu.regs.(live) in
  run.Cpu.regs.(live) <- saved + 1;
  check_bool "register corruption detected" false
    (Oracle.equivalent w image run);
  run.Cpu.regs.(live) <- saved;
  (* Flip a masked register: must NOT trip the oracle (dead scratch). *)
  let junk =
    let rec find i = if mask.(i) then i else find (i + 1) in
    find 0
  in
  let saved_junk = run.Cpu.regs.(junk) in
  run.Cpu.regs.(junk) <- saved_junk + 1;
  check_bool "dead-scratch corruption ignored" true
    (Oracle.equivalent w image run);
  run.Cpu.regs.(junk) <- saved_junk;
  (* Flip one byte of one data array. *)
  let _, addr, _ = List.hd image.Image.arrays in
  let b = Memory.read_byte run.Cpu.memory addr in
  Memory.write_byte run.Cpu.memory addr (b lxor 1);
  check_bool "memory corruption detected" false
    (Oracle.equivalent w image run);
  Memory.write_byte run.Cpu.memory addr b

(* --- fingerprints agree with the golden hashes --- *)

let test_fingerprint_matches_golden () =
  (* One spot value from the golden table (052.alvinn baseline): the
     shared module must produce the hash the golden suite pinned. *)
  let w = Option.get (Workload.find "052.alvinn") in
  let { Runner.run; program; _ } = Runner.run_cached w Runner.Baseline in
  check_bool "regs hash matches pinned golden" true
    (Fingerprint.regs_hash run.Cpu.regs = 0x4207be414f6fa218);
  check_bool "mem hash matches pinned golden" true
    (Fingerprint.mem_hash (Image.of_program program) run.Cpu.memory
    = 0x3414aedbe1508ed1)

(* --- watchdog exhaustion carries a machine snapshot --- *)

let test_fuel_campaign_case () =
  let w = Option.get (Workload.find "FIR") in
  let sp = Campaign.probe w ~width:4 in
  let budget = sp.Fault.sp_retired / 2 in
  let case = Campaign.run_case w ~width:4 (Fault.Exhaust_fuel { budget }) in
  Alcotest.(check string)
    "watchdog stop is a safe structured abort" "safe"
    (Campaign.verdict_name case.Campaign.c_verdict)

(* --- the seeded campaign itself --- *)

let test_campaign_survives w width () =
  let report = Campaign.run ~workloads:[ w ] ~widths:[ width ] ~seed:2007 () in
  check_int "campaign cases" 15 (List.length report.Campaign.r_cases);
  check_int "no divergent state" 0 report.Campaign.r_divergent;
  check_int "no crashes" 0 report.Campaign.r_crashed;
  check_bool "survived" true (Campaign.survived report);
  check_bool "faults actually fired" true
    (report.Campaign.r_injected >= List.length report.Campaign.r_cases - 2)

let tests =
  [
    Alcotest.test_case "abort classes distinct" `Quick
      test_abort_classes_distinct;
  ]
  @ List.map
      (fun ((w : Workload.t), width) ->
        Alcotest.test_case
          (Printf.sprintf "abort sweep %s w%d" w.Workload.name width)
          `Slow (test_abort_sweep w width))
      (rotated_pairs ())
  @ [
      Alcotest.test_case "evict + retranslate identical" `Quick
        test_evict_retranslate;
      Alcotest.test_case "oracle catches corruption" `Quick
        test_oracle_catches_corruption;
      Alcotest.test_case "fingerprint matches golden" `Quick
        test_fingerprint_matches_golden;
      Alcotest.test_case "watchdog stop is safe" `Quick test_fuel_campaign_case;
    ]
  @ List.map
      (fun ((w : Workload.t), width) ->
        Alcotest.test_case
          (Printf.sprintf "campaign %s w%d" w.Workload.name width)
          `Slow (test_campaign_survives w width))
      [
        (Option.get (Workload.find "FIR"), 8);
        (Option.get (Workload.find "FFT"), 16);
        (Option.get (Workload.find "LU"), 2);
      ]
