(* The observability layer.

   Unit tests for the lib/obs building blocks (JSON tree + parser,
   power-of-two histograms, packed ring buffer, the shared BENCH.json
   emitter), then the heavyweight guarantee: the conservation
   invariants of [Snapshot.violations] hold for every workload at every
   accelerator width under baseline, Liquid, oracle-translation and a
   seeded fault campaign. Any counter that acquires a second writer —
   the dual eviction bookkeeping this PR removed, for instance — fails
   here on every row at once. *)

open Liquid_prog
open Liquid_harness
open Liquid_workloads
module Cpu = Liquid_pipeline.Cpu
module Stats = Liquid_machine.Stats
module Cache = Liquid_machine.Cache
module Branch_pred = Liquid_machine.Branch_pred
module Ucode_cache = Liquid_pipeline.Ucode_cache
module Json = Liquid_obs.Json
module Hist = Liquid_obs.Hist
module Ring = Liquid_obs.Ring
module Collector = Liquid_obs.Collector
module Snapshot = Liquid_obs.Snapshot
module Schema = Liquid_obs.Schema
module Bench_report = Liquid_obs.Bench_report

let find name = match Workload.find name with Some w -> w | None -> assert false

(* --- Json --- *)

let sample_json =
  Json.Obj
    [
      ("null", Json.Null);
      ("flag", Json.Bool true);
      ("n", Json.Int (-42));
      ("x", Json.Float 1.5);
      ("s", Json.Str "a \"quoted\"\nline\twith \\ and \x01");
      ("l", Json.List [ Json.Int 1; Json.Int 2; Json.Obj [] ]);
    ]

let test_json_roundtrip () =
  List.iter
    (fun pretty ->
      match Json.of_string (Json.to_string ~pretty sample_json) with
      | Ok j ->
          Alcotest.(check bool)
            (Printf.sprintf "round-trip (pretty=%b)" pretty)
            true (Json.equal sample_json j)
      | Error e -> Alcotest.failf "re-parse failed: %s" e)
    [ true; false ]

let test_json_parse () =
  (match Json.of_string {| {"a": [1, 2.5, "Aé"], "b": {"c": null}} |} with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok j -> (
      (match Json.member "a" j with
      | Some (Json.List [ Json.Int 1; Json.Float 2.5; Json.Str s ]) ->
          Alcotest.(check string) "unicode escapes decode" "A\xc3\xa9" s
      | _ -> Alcotest.fail "field a has the wrong shape");
      match Json.member "b" j with
      | Some b ->
          Alcotest.(check bool)
            "nested member" true
            (Json.member "c" b = Some Json.Null)
      | None -> Alcotest.fail "field b missing"));
  List.iter
    (fun bad ->
      match Json.of_string bad with
      | Ok _ -> Alcotest.failf "accepted malformed input %S" bad
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\" 1}"; "tru"; "\"unterminated"; "1 2" ]

let test_json_nonfinite () =
  Alcotest.(check string)
    "non-finite floats emit as null" "[null,null,null]"
    (Json.to_string ~pretty:false
       (Json.List
          [ Json.Float Float.nan; Json.Float Float.infinity;
            Json.Float Float.neg_infinity ]))

(* --- Hist --- *)

let test_hist_buckets () =
  let h = Hist.create () in
  List.iter (Hist.add h) [ 0; 1; 2; 3; 4; 7; 8; 1024; -5 ];
  Alcotest.(check int) "count" 9 (Hist.count h);
  Alcotest.(check int) "total (negative clamped)" 1049 (Hist.total h);
  Alcotest.(check int) "min" 0 (Hist.min_value h);
  Alcotest.(check int) "max" 1024 (Hist.max_value h);
  let buckets = ref [] in
  Hist.iter_buckets h (fun ~lo ~hi ~count -> buckets := (lo, hi, count) :: !buckets);
  Alcotest.(check (list (triple int int int)))
    "power-of-two bucket boundaries"
    [ (0, 0, 2); (1, 1, 1); (2, 3, 2); (4, 7, 2); (8, 15, 1); (1024, 2047, 1) ]
    (List.rev !buckets);
  let h2 = Hist.create () in
  Hist.add h2 16;
  Hist.merge h2 h;
  Alcotest.(check int) "merge accumulates" 10 (Hist.count h2);
  Alcotest.(check int) "merge keeps max" 1024 (Hist.max_value h2);
  match Json.member "count" (Hist.to_json h) with
  | Some (Json.Int 9) -> ()
  | _ -> Alcotest.fail "to_json count field"

(* --- Ring --- *)

let test_ring_wraparound () =
  let r = Ring.create 4 in
  for k = 0 to 5 do
    Ring.push r ~kind:k ~a:(10 * k) ~b:0 ~c:0
  done;
  Alcotest.(check int) "pushed counts overwritten records" 6 (Ring.pushed r);
  Alcotest.(check int) "length capped at capacity" 4 (Ring.length r);
  let seen = ref [] in
  Ring.iter r (fun ~kind ~a ~b:_ ~c:_ -> seen := (kind, a) :: !seen);
  Alcotest.(check (list (pair int int)))
    "holds the most recent window, oldest first"
    [ (2, 20); (3, 30); (4, 40); (5, 50) ]
    (List.rev !seen)

(* --- the invariant matrix --- *)

let widths = [ 2; 4; 8; 16 ]

let matrix_variants =
  Runner.Baseline
  :: List.concat_map
       (fun w -> [ Runner.Liquid w; Runner.Liquid_oracle w ])
       widths

(* The explicit single-writer assertions the issue calls out: the Stats
   mirror of each unit counter must equal the unit's own tally. These
   are also inside [Snapshot.violations]; stating them directly keeps
   the guarantee visible even if the violation list is refactored. *)
let explicit_mirror_mismatches (run : Cpu.run) =
  let s = run.Cpu.stats in
  let bad = ref [] in
  let expect name a b =
    if a <> b then bad := Printf.sprintf "%s: %d <> %d" name a b :: !bad
  in
  (match run.Cpu.icache_counters with
  | None -> ()
  | Some c ->
      expect "icache hits" s.Stats.icache_hits c.Cache.c_hits;
      expect "icache misses" s.Stats.icache_misses c.Cache.c_misses);
  (match run.Cpu.dcache_counters with
  | None -> ()
  | Some c ->
      expect "dcache hits" s.Stats.dcache_hits c.Cache.c_hits;
      expect "dcache misses" s.Stats.dcache_misses c.Cache.c_misses);
  expect "branches" s.Stats.branches run.Cpu.bpred_counters.Branch_pred.p_lookups;
  expect "mispredicts" s.Stats.branch_mispredicts
    run.Cpu.bpred_counters.Branch_pred.p_mispredicts;
  expect "ucode installs" s.Stats.ucode_installs
    run.Cpu.ucache_counters.Ucode_cache.u_installs;
  expect "ucode evictions" s.Stats.ucode_evictions
    run.Cpu.ucache_counters.Ucode_cache.u_evictions;
  List.rev !bad

let check_case label (problems : string list) =
  if problems <> [] then
    Alcotest.failf "%s:@.  %s" label (String.concat "\n  " problems)

let test_invariant_matrix () =
  let jobs =
    List.concat_map
      (fun (w : Workload.t) -> List.map (fun v -> (w, v)) matrix_variants)
      (Workload.all ())
  in
  let results =
    Runner.run_many
      (fun ((w : Workload.t), v) ->
        let result = Runner.run_cached w v in
        let snap = Runner.snapshot result in
        let label =
          Printf.sprintf "%s / %s" w.Workload.name (Runner.variant_name v)
        in
        let problems =
          Snapshot.violations snap
          @ explicit_mirror_mismatches result.Runner.run
          @ List.map
              (fun e -> "schema: " ^ e)
              (Schema.snapshot (Snapshot.to_json snap))
        in
        (label, problems))
      jobs
  in
  Alcotest.(check int)
    "matrix covers all workloads x (baseline + liquid/oracle per width)"
    (List.length (Workload.all ()) * (1 + (2 * List.length widths)))
    (List.length results);
  List.iter (fun (label, problems) -> check_case label problems) results

(* Fixed-seed fault campaign: the invariants must also hold while the
   translation path is being actively attacked (forced aborts, corrupted
   feeds, mid-run evictions). Runs stopped by the fuel watchdog return
   [Error] and have no final counters to check; they are skipped. *)
let test_fault_campaign_invariants () =
  let module F = Liquid_faults.Fault in
  let module C = Liquid_faults.Campaign in
  let targets = C.plan ~widths:[ 8 ] ~seed:2007 () in
  Alcotest.(check bool) "campaign has cases" true (targets <> []);
  let results =
    Runner.run_many
      (fun (t : C.target) ->
        let label =
          Printf.sprintf "%s / width %d / %s" t.C.t_workload.Workload.name
            t.C.t_width (F.to_string t.C.t_fault)
        in
        let program = Runner.program_of t.C.t_workload (Runner.Liquid t.C.t_width) in
        let armed = F.arm t.C.t_fault in
        let base = Cpu.liquid_config ~lanes:t.C.t_width in
        let config =
          {
            base with
            Cpu.faults = armed.F.hooks;
            Cpu.fuel = Option.value armed.F.fuel ~default:base.Cpu.fuel;
          }
        in
        match Cpu.run_result ~config (Image.of_program program) with
        | Error _ -> (label, [])
        | Ok run ->
            let snap =
              Snapshot.of_run ~label:t.C.t_workload.Workload.name
                ~variant:"liquid/faulted" run
            in
            (label, Snapshot.violations snap @ explicit_mirror_mismatches run))
      targets
  in
  List.iter (fun (label, problems) -> check_case label problems) results

(* --- collector + snapshot plumbing on one real run --- *)

let test_collector_fir () =
  let w = find "FIR" in
  let program = Runner.program_of w (Runner.Liquid 8) in
  let tmp = Filename.temp_file "liquid_obs" ".jsonl" in
  let oc = open_out tmp in
  let collector = Collector.create ~ring_capacity:64 ~jsonl:oc () in
  let config = Collector.wrap collector (Cpu.liquid_config ~lanes:8) in
  let run = Cpu.run ~config (Image.of_program program) in
  close_out oc;
  Alcotest.(check int)
    "one latency sample per completed translation"
    run.Cpu.stats.Stats.ucode_installs
    (Hist.count (Collector.translation_latency collector));
  Alcotest.(check int)
    "ring saw every trace event"
    (Collector.events collector)
    (Ring.pushed (Collector.ring collector));
  Alcotest.(check int) "ring window is full" 64 (Ring.length (Collector.ring collector));
  let lines =
    In_channel.with_open_text tmp In_channel.input_lines
    |> List.filter (fun l -> String.trim l <> "")
  in
  Sys.remove tmp;
  Alcotest.(check bool) "jsonl sink wrote events" true (lines <> []);
  let parsed =
    List.map
      (fun l ->
        match Json.of_string l with
        | Ok j -> j
        | Error e -> Alcotest.failf "jsonl line does not parse (%s): %s" e l)
      lines
  in
  let has_type ty =
    List.exists (fun j -> Json.member "type" j = Some (Json.Str ty)) parsed
  in
  Alcotest.(check bool) "stream has region events" true (has_type "region");
  Alcotest.(check bool) "stream has translation events" true (has_type "translation");
  let snap =
    Snapshot.of_run ~label:w.Workload.name ~variant:"liquid/8-wide" ~collector
      run
  in
  check_case "FIR snapshot invariants" (Snapshot.violations snap);
  check_case "FIR snapshot schema" (Schema.snapshot (Snapshot.to_json snap));
  Alcotest.(check int)
    "latency histogram lands in the snapshot" 1
    (Hist.count snap.Snapshot.s_latency_hist);
  let csv = Snapshot.to_csv snap in
  List.iter
    (fun needle ->
      if not
           (List.exists
              (fun line -> String.length line >= String.length needle
                           && String.sub line 0 (String.length needle) = needle)
              (String.split_on_char '\n' csv))
      then Alcotest.failf "csv is missing a %S row" needle)
    [ "stats.cycles,"; "ucode_cache.installs,"; "hist.inter_call_gap_cycles.count," ]

let test_schema_rejects () =
  let snap = Runner.snapshot (Runner.run_cached (find "FFT") (Runner.Liquid 8)) in
  let strip name = function
    | Json.Obj fields -> Json.Obj (List.remove_assoc name fields)
    | j -> j
  in
  let json = Snapshot.to_json snap in
  List.iter
    (fun name ->
      match Schema.snapshot (strip name json) with
      | [] -> Alcotest.failf "schema accepted a document without %S" name
      | _ -> ())
    [ "schema"; "stats"; "histograms"; "invariants"; "regions" ];
  match Schema.bench json with
  | [] -> Alcotest.fail "bench schema accepted a snapshot document"
  | _ -> ()

(* --- the shared BENCH.json emitter --- *)

let bench_fixture =
  {
    Bench_report.b_report_wall_s = 1.25;
    b_sim_cycles = 123456;
    b_sim_wall_s = 0.5;
    b_sim_cycles_per_s = 246912.0;
    b_block_speedup = 1.8;
    b_super_speedup = 1.3;
    b_fault_wall_s = 2.0;
    b_fault_cases = 75;
    b_fault_survived = true;
    b_service_jobs_s = 42.0;
    b_fuzz_cases_per_s = 17.5;
    b_tests =
      [
        { Bench_report.t_name = "core_simulate_scalar"; t_ns_per_run = 51000.0 };
        { Bench_report.t_name = "table2_synthesis"; t_ns_per_run = 900.0 };
      ];
  }

let test_bench_report () =
  check_case "fixture validates" (Schema.bench (Bench_report.to_json bench_fixture));
  let tmp = Filename.temp_file "liquid_bench" ".json" in
  Bench_report.write ~path:tmp bench_fixture;
  check_case "written file validates" (Bench_report.validate_file tmp);
  (match Json.of_string (In_channel.with_open_text tmp In_channel.input_all) with
  | Error e -> Alcotest.failf "written file does not parse: %s" e
  | Ok j ->
      Alcotest.(check bool)
        "file round-trips the record" true
        (Json.equal j (Bench_report.to_json bench_fixture)));
  Out_channel.with_open_text tmp (fun oc -> output_string oc "{}\n");
  (match Bench_report.validate_file tmp with
  | [] -> Alcotest.fail "validator accepted an empty object"
  | _ -> ());
  Sys.remove tmp;
  match Bench_report.validate_file tmp with
  | [] -> Alcotest.fail "validator accepted a missing file"
  | _ -> ()

let tests =
  [
    Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case "json parser" `Quick test_json_parse;
    Alcotest.test_case "json non-finite floats" `Quick test_json_nonfinite;
    Alcotest.test_case "histogram buckets" `Quick test_hist_buckets;
    Alcotest.test_case "ring wrap-around" `Quick test_ring_wraparound;
    Alcotest.test_case "collector + snapshot on FIR" `Quick test_collector_fir;
    Alcotest.test_case "schema rejects malformed documents" `Quick
      test_schema_rejects;
    Alcotest.test_case "bench report emitter" `Quick test_bench_report;
    Alcotest.test_case "invariant matrix (all workloads x variants x widths)"
      `Slow test_invariant_matrix;
    Alcotest.test_case "invariants under fault campaign" `Slow
      test_fault_campaign_invariants;
  ]
