(* Unit tests for the scalar ISA: 32-bit word arithmetic, element sizes,
   condition codes, opcodes and instruction metadata. *)

open Liquid_isa

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Word --- *)

let max_int32 = 0x7FFFFFFF
let min_int32 = -0x80000000

let test_word_wrap () =
  check "max+1 wraps" min_int32 (Word.add max_int32 1)

let test_word_arith () =
  check "add" 7 (Word.add 3 4);
  check "sub" (-1) (Word.sub 3 4);
  check "rsb" 1 (Word.rsb 3 4);
  check "mul" 12 (Word.mul 3 4);
  check "mul wrap" 0 (Word.mul 0x10000 0x10000);
  check "mul wrap sign" (-65536) (Word.mul 0x10000 0xFFFF)

let test_word_logic () =
  check "and" 0b100 (Word.logand 0b110 0b101);
  check "or" 0b111 (Word.logor 0b110 0b101);
  check "xor" 0b011 (Word.logxor 0b110 0b101);
  check "bic" 0b010 (Word.bic 0b110 0b101)

let test_word_shifts () =
  check "shl" 16 (Word.shl 1 4);
  (* shift amounts are mod 32, as on a barrel shifter *)
  check "shl mod 32" 1 (Word.shl 1 32);
  check "shr logical" 0x7FFFFFFF (Word.shr (-1) 1);
  check "sar arithmetic" (-1) (Word.sar (-1) 1);
  check "sar positive" 2 (Word.sar 4 1)

let test_word_minmax () =
  check "smin" (-3) (Word.smin (-3) 2);
  check "smax" 2 (Word.smax (-3) 2)

let test_word_saturation () =
  check "byte unsigned clamps high" 255
    (Word.sat_add Esize.Byte ~signed:false 200 100);
  check "byte unsigned clamps low" 0
    (Word.sat_sub Esize.Byte ~signed:false 10 20);
  check "byte signed clamps high" 127
    (Word.sat_add Esize.Byte ~signed:true 100 100);
  check "byte signed clamps low" (-128)
    (Word.sat_add Esize.Byte ~signed:true (-100) (-100));
  check "half signed high" 32767
    (Word.sat_add Esize.Half ~signed:true 30000 10000);
  check "no clamp in range" 50 (Word.sat_add Esize.Byte ~signed:false 20 30);
  (* Idiom-faithful edges: the scalar lowering wraps at 32 bits before
     its compares, clamps only the high bound for unsigned add and only
     zero for unsigned sub — the vector op must agree on out-of-domain
     inputs or translated regions diverge from their scalar fallback. *)
  check "signed wraps before clamping" (-128)
    (Word.sat_sub Esize.Byte ~signed:true 0x7FFFFFFF (-3));
  check "word signed wraps like the idiom" (Word.of_int 0x800000F0)
    (Word.sat_add Esize.Word ~signed:true 0x7FFFFFF0 0x100);
  check "unsigned add keeps wrapped negatives" (-5)
    (Word.sat_add Esize.Byte ~signed:false (-10) 5);
  check "unsigned sub keeps high overshoot" 300
    (Word.sat_sub Esize.Byte ~signed:false 400 100)

(* --- Esize --- *)

let test_esize_metrics () =
  check "byte bytes" 1 (Esize.bytes Esize.Byte);
  check "half shift" 1 (Esize.shift Esize.Half);
  check "word bits" 32 (Esize.bits Esize.Word);
  check "byte max unsigned" 255 (Esize.max_unsigned Esize.Byte);
  check "half min signed" (-32768) (Esize.min_signed Esize.Half);
  check "half max signed" 32767 (Esize.max_signed Esize.Half)

let test_esize_truncate () =
  check "byte wrap" (-1) (Esize.truncate Esize.Byte 0xFF);
  check "byte wrap pos" 1 (Esize.truncate Esize.Byte 0x101);
  check "unsigned" 0xFF (Esize.truncate_unsigned Esize.Byte (-1));
  check "word id" (-7) (Esize.truncate Esize.Word (-7))

let test_esize_of_shift () =
  List.iter
    (fun e ->
      Alcotest.(check bool)
        "shift roundtrip" true
        (Esize.of_shift (Esize.shift e) = Some e))
    Esize.all;
  Alcotest.(check bool) "bad shift" true (Esize.of_shift 3 = None)

(* --- Flags and Cond --- *)

let test_cond_eval () =
  let lt = Flags.of_compare 1 2 in
  let eq = Flags.of_compare 2 2 in
  let gt = Flags.of_compare 3 2 in
  let holds c f = Cond.holds c f in
  check_bool "al" true (holds Cond.Al lt);
  check_bool "eq on eq" true (holds Cond.Eq eq);
  check_bool "eq on lt" false (holds Cond.Eq lt);
  check_bool "ne on lt" true (holds Cond.Ne lt);
  check_bool "lt" true (holds Cond.Lt lt);
  check_bool "le on eq" true (holds Cond.Le eq);
  check_bool "gt on gt" true (holds Cond.Gt gt);
  check_bool "gt on eq" false (holds Cond.Gt eq);
  check_bool "ge on eq" true (holds Cond.Ge eq)

let test_cond_int_roundtrip () =
  List.iter
    (fun c ->
      Alcotest.(check bool) "roundtrip" true (Cond.of_int (Cond.to_int c) = Some c))
    Cond.all;
  Alcotest.(check bool) "bad code" true (Cond.of_int 7 = None)

let test_flags_signed_compare () =
  check_bool "negative vs positive" true (Flags.lt (Flags.of_compare (-1) 1));
  check_bool "equal" true (Flags.eq (Flags.of_compare 5 5))

(* --- Opcode --- *)

let test_opcode_eval () =
  check "add" 5 (Opcode.eval Opcode.Add 2 3);
  check "sub" (-1) (Opcode.eval Opcode.Sub 2 3);
  check "rsb" 1 (Opcode.eval Opcode.Rsb 2 3);
  check "lsl" 8 (Opcode.eval Opcode.Lsl 1 3);
  check "asr" (-2) (Opcode.eval Opcode.Asr (-8) 2);
  check "smin" 2 (Opcode.eval Opcode.Smin 2 3)

let test_opcode_commutativity () =
  List.iter
    (fun op ->
      if Opcode.commutative op then
        List.iter
          (fun (a, b) ->
            check
              (Opcode.mnemonic op ^ " commutes")
              (Opcode.eval op a b) (Opcode.eval op b a))
          [ (3, 7); (-2, 9); (0, -1) ])
    Opcode.all

let test_opcode_int_roundtrip () =
  List.iter
    (fun op ->
      Alcotest.(check bool)
        "roundtrip" true
        (Opcode.of_int (Opcode.to_int op) = Some op))
    Opcode.all;
  Alcotest.(check bool) "bad code" true (Opcode.of_int 13 = None)

(* --- Reg --- *)

let test_reg_bounds () =
  check "index" 5 (Reg.index (Reg.make 5));
  check "lr" 14 (Reg.index Reg.lr);
  check "count" 16 (List.length Reg.all);
  Alcotest.check_raises "r16" (Invalid_argument "Reg.make: r16 out of range")
    (fun () -> ignore (Reg.make 16));
  Alcotest.check_raises "r-1" (Invalid_argument "Reg.make: r-1 out of range")
    (fun () -> ignore (Reg.make (-1)))

(* --- Insn metadata --- *)

let r = Reg.make

let test_insn_defs_uses () =
  let open Insn in
  let dp : exec = Dp { cond = Cond.Al; op = Opcode.Add; dst = r 1; src1 = r 2; src2 = Reg (r 3) } in
  Alcotest.(check (list int)) "dp defs" [ 1 ] (List.map Reg.index (defs dp));
  Alcotest.(check (list int)) "dp uses" [ 2; 3 ] (List.map Reg.index (uses dp));
  let pred_mov : exec = Mov { cond = Cond.Gt; dst = r 4; src = Imm 9 } in
  Alcotest.(check (list int)) "predicated mov reads dst" [ 4 ]
    (List.map Reg.index (uses pred_mov));
  let ld : exec =
    Ld { esize = Esize.Word; signed = true; dst = r 5; base = Sym 0x100; index = Reg (r 0); shift = 2 }
  in
  Alcotest.(check (list int)) "ld uses index" [ 0 ] (List.map Reg.index (uses ld));
  let st : exec =
    St { esize = Esize.Byte; src = r 6; base = Breg (r 7); index = Imm 3; shift = 0 }
  in
  Alcotest.(check (list int)) "st uses src+base" [ 6; 7 ]
    (List.map Reg.index (uses st));
  let bl : exec = Bl { target = 12; region = true } in
  Alcotest.(check (list int)) "bl defines lr" [ 14 ] (List.map Reg.index (defs bl));
  Alcotest.(check (list int)) "ret uses lr" [ 14 ]
    (List.map Reg.index (uses (Ret : exec)))

let test_insn_equal () =
  let open Insn in
  let a : exec = Cmp { src1 = r 1; src2 = Imm 5 } in
  let b : exec = Cmp { src1 = r 1; src2 = Imm 5 } in
  let c : exec = Cmp { src1 = r 1; src2 = Imm 6 } in
  check_bool "equal" true (equal_exec a b);
  check_bool "not equal" false (equal_exec a c);
  check_bool "different kinds" false (equal_exec a (Halt : exec))

let test_insn_branch_class () =
  let open Insn in
  check_bool "b" true (is_branch (B { cond = Cond.Al; target = 3 } : exec));
  check_bool "bl" true (is_branch (Bl { target = 3; region = false } : exec));
  check_bool "ret" true (is_branch (Ret : exec));
  check_bool "mov" false
    (is_branch (Mov { cond = Cond.Al; dst = r 1; src = Imm 0 } : exec))

let test_insn_pp () =
  let open Insn in
  let s insn = Format.asprintf "%a" pp_asm insn in
  Alcotest.(check string) "mov" "mov r1, #5"
    (s (Mov { cond = Cond.Al; dst = r 1; src = Imm 5 }));
  Alcotest.(check string) "movgt" "movgt r1, #255"
    (s (Mov { cond = Cond.Gt; dst = r 1; src = Imm 255 }));
  Alcotest.(check string) "ldb" "ldb r2, [arr + r0]"
    (s (Ld { esize = Esize.Byte; signed = false; dst = r 2; base = Sym "arr"; index = Reg (r 0); shift = 0 }));
  Alcotest.(check string) "ldsb scaled" "ldbs r2, [arr + r0 lsl 1]"
    (s (Ld { esize = Esize.Byte; signed = true; dst = r 2; base = Sym "arr"; index = Reg (r 0); shift = 1 }));
  Alcotest.(check string) "blt" "blt top" (s (B { cond = Cond.Lt; target = "top" }));
  Alcotest.(check string) "bl region" "bl.region f"
    (s (Bl { target = "f"; region = true }))

let tests =
  [
    Alcotest.test_case "word: wrap" `Quick test_word_wrap;
    Alcotest.test_case "word: arithmetic" `Quick test_word_arith;
    Alcotest.test_case "word: logic" `Quick test_word_logic;
    Alcotest.test_case "word: shifts" `Quick test_word_shifts;
    Alcotest.test_case "word: min/max" `Quick test_word_minmax;
    Alcotest.test_case "word: saturation" `Quick test_word_saturation;
    Alcotest.test_case "esize: metrics" `Quick test_esize_metrics;
    Alcotest.test_case "esize: truncate" `Quick test_esize_truncate;
    Alcotest.test_case "esize: of_shift" `Quick test_esize_of_shift;
    Alcotest.test_case "cond: evaluation" `Quick test_cond_eval;
    Alcotest.test_case "cond: int roundtrip" `Quick test_cond_int_roundtrip;
    Alcotest.test_case "flags: signed compare" `Quick test_flags_signed_compare;
    Alcotest.test_case "opcode: eval" `Quick test_opcode_eval;
    Alcotest.test_case "opcode: commutativity" `Quick test_opcode_commutativity;
    Alcotest.test_case "opcode: int roundtrip" `Quick test_opcode_int_roundtrip;
    Alcotest.test_case "reg: bounds" `Quick test_reg_bounds;
    Alcotest.test_case "insn: defs/uses" `Quick test_insn_defs_uses;
    Alcotest.test_case "insn: equality" `Quick test_insn_equal;
    Alcotest.test_case "insn: branch class" `Quick test_insn_branch_class;
    Alcotest.test_case "insn: pretty printing" `Quick test_insn_pp;
  ]
