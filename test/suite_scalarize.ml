(* Unit tests for the scalarizer: Table 1 rule emission, permutation
   fusion, loop fission, size splitting, idiom expansion, generated
   arrays, and the code generator facade. *)

open Liquid_isa
open Liquid_visa
open Liquid_prog
open Liquid_scalarize
open Helpers
open Build

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let simple_data count =
  [
    Data.make ~name:"a" ~esize:Esize.Word (Array.init count (fun i -> i));
    Data.make ~name:"b" ~esize:Esize.Word (Array.init count (fun i -> i * 2));
    Data.zeros ~name:"c" ~esize:Esize.Word count;
  ]

let mk_loop ?(name = "l") ?(count = 32) ?(reductions = []) body =
  { Vloop.name; count; body; reductions }

let insns_of items =
  List.filter_map
    (function Program.I (Minsn.S i) -> Some i | Program.I (Minsn.V _) | Program.Label _ -> None)
    items

(* --- basic emission --- *)

let test_vadd_emission () =
  let out =
    Scalarize.scalarize
      (mk_loop [ vld (v 1) "a"; vld (v 2) "b"; vadd (v 3) (v 1) (vr (v 2)); vst (v 3) "c" ])
  in
  check "one segment" 1 (List.length out.Scalarize.segments);
  check "one call" 1 (List.length out.Scalarize.call_items);
  (* mov + 4 body + add/cmp/blt + ret = 9 static instructions *)
  (match out.Scalarize.static_sizes with
  | [ (label, n) ] ->
      Alcotest.(check string) "label" "region_l_0" label;
      check "static size" 9 n
  | _ -> Alcotest.fail "one region expected");
  check_bool "region is callable" true
    (List.exists
       (function
         | Program.I (Minsn.S (Insn.Bl { region = true; _ })) -> true
         | _ -> false)
       out.Scalarize.call_items)

let test_element_scaled_addressing () =
  let out =
    Scalarize.scalarize
      (mk_loop
         [
           vld ~esize:Esize.Byte ~signed:false (v 1) "a";
           vst ~esize:Esize.Byte (v 1) "c";
         ])
  in
  let loads =
    List.filter_map
      (function
        | Insn.Ld { esize; shift; _ } -> Some (esize, shift)
        | _ -> None)
      (insns_of out.Scalarize.region_items)
  in
  List.iter
    (fun (esize, shift) -> check "shift matches esize" (Esize.shift esize) shift)
    loads

let test_reduction_emission () =
  let out =
    Scalarize.scalarize
      (mk_loop ~reductions:[ (r 5, 42) ]
         [ vld (v 1) "a"; vred Opcode.Add (r 5) (v 1) ])
  in
  let insns = insns_of out.Scalarize.region_items in
  check_bool "init mov" true
    (List.exists
       (function
         | Insn.Mov { dst; src = Insn.Imm 42; _ } -> Reg.index dst = 5
         | _ -> false)
       insns);
  check_bool "loop-carried form" true
    (List.exists
       (function
         | Insn.Dp { op = Opcode.Add; dst; src1; _ } ->
             Reg.index dst = 5 && Reg.index src1 = 5
         | _ -> false)
       insns)

let test_sat_idiom_unsigned () =
  let out =
    Scalarize.scalarize
      (mk_loop
         [
           vld (v 1) "a";
           vld (v 2) "b";
           Vinsn.Vsat { op = `Add; esize = Esize.Byte; signed = false; dst = v 3; src1 = v 1; src2 = v 2 };
           vst (v 3) "c";
         ])
  in
  let insns = insns_of out.Scalarize.region_items in
  check_bool "cmp 255" true
    (List.exists
       (function Insn.Cmp { src2 = Insn.Imm 255; _ } -> true | _ -> false)
       insns);
  check_bool "movgt 255" true
    (List.exists
       (function
         | Insn.Mov { cond = Cond.Gt; src = Insn.Imm 255; _ } -> true
         | _ -> false)
       insns)

let test_sat_idiom_signed_has_both_clamps () =
  let out =
    Scalarize.scalarize
      (mk_loop
         [
           vld (v 1) "a";
           vld (v 2) "b";
           Vinsn.Vsat { op = `Sub; esize = Esize.Half; signed = true; dst = v 3; src1 = v 1; src2 = v 2 };
           vst (v 3) "c";
         ])
  in
  let insns = insns_of out.Scalarize.region_items in
  check_bool "upper clamp" true
    (List.exists
       (function
         | Insn.Mov { cond = Cond.Gt; src = Insn.Imm 32767; _ } -> true
         | _ -> false)
       insns);
  check_bool "lower clamp" true
    (List.exists
       (function
         | Insn.Mov { cond = Cond.Lt; src = Insn.Imm (-32768); _ } -> true
         | _ -> false)
       insns)

(* --- constant vectors and offset arrays --- *)

let test_vconst_generates_array () =
  let out =
    Scalarize.scalarize
      (mk_loop [ vld (v 1) "a"; vand (v 2) (v 1) (vmask [ 1; 0; 1; 0 ]); vst (v 2) "c" ])
  in
  (match out.Scalarize.data with
  | [ d ] ->
      check "tiled to count" 32 (Array.length d.Data.values);
      check "lane 0" (-1) d.Data.values.(0);
      check "lane 1" 0 d.Data.values.(1);
      check "periodic" (-1) d.Data.values.(4)
  | ds -> Alcotest.failf "expected one generated array, got %d" (List.length ds));
  let insns = insns_of out.Scalarize.region_items in
  check_bool "mask loaded via scratch" true
    (List.exists
       (function
         | Insn.Ld { dst; _ } -> Reg.equal dst Vloop.scratch
         | _ -> false)
       insns)

let test_offsets_array_shared () =
  (* Two loops using the same pattern at the same count share one offset
     array name; the program-level dedup keeps a single copy. *)
  let body =
    [ vld (v 1) "a"; vbfly 4 (v 1) (v 1); vst (v 1) "c" ]
  in
  let p =
    {
      Vloop.name = "p";
      sections =
        [ Vloop.Loop (mk_loop ~name:"l1" body); Vloop.Loop (mk_loop ~name:"l2" body) ];
      data = simple_data 32;
    }
  in
  let prog = Codegen.liquid p in
  let off_arrays =
    List.filter
      (fun (d : Data.t) -> String.length d.Data.name >= 4 && String.sub d.Data.name 0 4 = "off_")
      prog.Program.data
  in
  check "one shared offsets array" 1 (List.length off_arrays)

(* --- permutation placement --- *)

let test_load_fused_perm () =
  let out =
    Scalarize.scalarize
      (mk_loop [ vld (v 1) "a"; vbfly 4 (v 1) (v 1); vst (v 1) "c" ])
  in
  check "no fission" 1 (List.length out.Scalarize.segments);
  let insns = insns_of out.Scalarize.region_items in
  (* offset load, add, element load: 3 loads total including the store
     path *)
  check_bool "offset add present" true
    (List.exists
       (function
         | Insn.Dp { op = Opcode.Add; src1; src2 = Insn.Reg s2; _ } ->
             Reg.equal src1 Vloop.induction && Reg.equal s2 Vloop.scratch
         | _ -> false)
       insns)

let test_perm_after_load_fuses_even_renaming () =
  (* vld v1; vrev v2<-v1: the value is permuted straight out of the load
     into v2 (v1 is dead afterwards). *)
  let out =
    Scalarize.scalarize
      (mk_loop [ vld (v 1) "a"; vrev 4 (v 2) (v 1); vst (v 2) "c" ])
  in
  check "no fission" 1 (List.length out.Scalarize.segments);
  match out.Scalarize.segments with
  | [ { Scalarize.items; _ } ] ->
      check_bool "load carries the permutation into the new register" true
        (List.exists
           (function
             | Scalarize.FLoad { perm = Some (Perm.Reverse 4); dst; _ } ->
                 Vreg.index dst = 2
             | _ -> false)
           items)
  | _ -> Alcotest.fail "segments"

let test_store_fused_perm () =
  (* The permuted value is computed (not freshly loaded), and flows
     straight into a store: the permutation folds into the store's
     offset addressing. *)
  let out =
    Scalarize.scalarize
      (mk_loop
         [
           vld (v 1) "a";
           vadd (v 1) (v 1) (vi 1);
           vrev 4 (v 2) (v 1);
           vst (v 2) "c";
         ])
  in
  check "no fission" 1 (List.length out.Scalarize.segments);
  match out.Scalarize.segments with
  | [ { Scalarize.items; _ } ] ->
      check_bool "store carries the permutation" true
        (List.exists
           (function
             | Scalarize.FStore { perm = Some (Perm.Reverse 4); _ } -> true
             | _ -> false)
           items)
  | _ -> Alcotest.fail "segments"

let test_midloop_perm_forces_fission () =
  (* The permuted value is consumed by an add (not a store), and its
     source is not freshly loaded: the loop must split (paper §3.4). *)
  let out =
    Scalarize.scalarize
      (mk_loop
         [
           vld (v 1) "a";
           vld (v 2) "b";
           vadd (v 1) (v 1) (vr (v 2));
           vbfly 4 (v 1) (v 1);
           vadd (v 1) (v 1) (vr (v 2));
           vst (v 1) "c";
         ])
  in
  check "two segments" 2 (List.length out.Scalarize.segments);
  (* Temporaries spill v1 (and v2, still live) through memory. *)
  check_bool "temporary arrays created" true
    (List.exists
       (fun (d : Data.t) ->
         String.length d.Data.name >= 5 && String.sub d.Data.name 0 5 = "l_tmp")
       out.Scalarize.data);
  (* The reload of the permuted value carries the pattern. *)
  match out.Scalarize.segments with
  | [ _; { Scalarize.items; _ } ] ->
      check_bool "permutation folded into reload" true
        (List.exists
           (function
             | Scalarize.FLoad { perm = Some (Perm.Halfswap 4); _ } -> true
             | _ -> false)
           items)
  | _ -> Alcotest.fail "segments"

let test_fission_preserves_semantics () =
  (* Execute baseline (inline, fissioned) code and compare against the
     vector reference semantics computed by hand. *)
  let count = 16 in
  let loop =
    mk_loop ~count
      [
        vld (v 1) "a";
        vld (v 2) "b";
        vadd (v 1) (v 1) (vr (v 2));
        vbfly 4 (v 1) (v 1);
        vadd (v 1) (v 1) (vr (v 2));
        vst (v 1) "c";
      ]
  in
  let p = { Vloop.name = "fiss"; sections = [ Vloop.Loop loop ]; data = simple_data count } in
  let prog = Codegen.baseline p in
  let run = run_image prog in
  let a = Array.init count (fun i -> i) and b = Array.init count (fun i -> i * 2) in
  let sum = Array.init count (fun i -> a.(i) + b.(i)) in
  let shuffled = Perm.apply (Perm.Halfswap 4) sum in
  let expected = Array.init count (fun i -> shuffled.(i) + b.(i)) in
  check_arrays "fissioned result" expected (read_array run prog "c")

(* --- size splitting --- *)

let big_mac_loop terms =
  let body =
    vld (v 1) "a" :: vmul (v 1) (v 1) (vi 1)
    :: List.concat
         (List.init terms (fun k ->
              [ vld (v 2) "b"; vmul (v 2) (v 2) (vi (k + 1)); vadd (v 1) (v 1) (vr (v 2)) ]))
    @ [ vst (v 1) "c" ]
  in
  mk_loop ~name:"big" body

let test_size_split () =
  let out = Scalarize.scalarize (big_mac_loop 25) in
  check_bool "splits into multiple segments" true
    (List.length out.Scalarize.segments >= 2);
  List.iter
    (fun (_, n) ->
      check_bool (Printf.sprintf "segment size %d under buffer" n) true (n <= 64))
    out.Scalarize.static_sizes

let test_size_split_semantics () =
  let count = 16 in
  let p =
    { Vloop.name = "bigp"; sections = [ Vloop.Loop (big_mac_loop 25) ]; data = simple_data count }
  in
  let loop25 = big_mac_loop 25 in
  let p = { p with Vloop.sections = [ Vloop.Loop { loop25 with Vloop.count } ] } in
  let prog = Codegen.baseline p in
  let run = run_image prog in
  let a = Array.init count (fun i -> i) and b = Array.init count (fun i -> i * 2) in
  let expected =
    Array.init count (fun i ->
        let acc = ref a.(i) in
        for k = 0 to 24 do
          acc := !acc + (b.(i) * (k + 1))
        done;
        !acc)
  in
  check_arrays "split result" expected (read_array run prog "c")

let test_max_scalar_configurable () =
  let out = Scalarize.scalarize ~max_scalar:12 (big_mac_loop 6) in
  check_bool "smaller budget, more segments" true
    (List.length out.Scalarize.segments >= 2)

(* --- validation --- *)

let expect_error loop =
  match Scalarize.scalarize loop with
  | exception Scalarize.Error _ -> ()
  | _ -> Alcotest.fail "expected Scalarize.Error"

let test_validation_errors () =
  expect_error (mk_loop ~count:0 [ vld (v 1) "a" ]);
  (* count must be positive *)
  expect_error (mk_loop [ vld (v 0) "a" ]);
  (* v0 is the induction image *)
  expect_error (mk_loop [ vld (v 12) "a" ]);
  (* v12 is reserved for glue *)
  expect_error (mk_loop [ vadd (v 1) (v 1) (vr (v 2)) ]);
  (* use of undefined register *)
  expect_error
    (mk_loop ~reductions:[ (r 1, 0) ] [ vld (v 1) "a"; vred Opcode.Add (r 1) (v 1) ])
(* accumulator aliases v1 *)

let test_estimated_costs () =
  check "plain load" 1
    (Scalarize.estimated_cost
       (Scalarize.FLoad { esize = Esize.Word; signed = true; dst = v 1; sym = "a"; perm = None }));
  check "permuted store" 3
    (Scalarize.estimated_cost
       (Scalarize.FStore { esize = Esize.Word; src = v 1; sym = "a"; perm = Some (Perm.Reverse 4) }));
  check "signed saturation" 5
    (Scalarize.estimated_cost
       (Scalarize.FSat { op = `Add; esize = Esize.Half; signed = true; dst = v 1; src1 = v 1; src2 = v 2 }));
  check "const operand" 2
    (Scalarize.estimated_cost
       (Scalarize.FDp { op = Opcode.And; dst = v 1; src1 = v 1; src2 = VConst [| 1 |] }))

(* --- codegen facade --- *)

let test_codegen_flavours () =
  let count = 32 in
  let loop =
    mk_loop ~count [ vld (v 1) "a"; vmul (v 1) (v 1) (vi 3); vst (v 1) "c" ]
  in
  let p = { Vloop.name = "cg"; sections = [ Vloop.Loop loop ]; data = simple_data count } in
  let liquid = Codegen.liquid p in
  check_bool "liquid is scalar-only" true (Program.scalar_only liquid);
  check_bool "liquid has a region" true
    (List.length (Image.of_program liquid).Image.region_entries = 1);
  let baseline = Codegen.baseline p in
  check_bool "baseline is scalar-only" true (Program.scalar_only baseline);
  check "baseline has no regions" 0
    (List.length (Image.of_program baseline).Image.region_entries);
  let native = Codegen.native ~width:8 p in
  check_bool "native has vector instructions" true
    (not (Program.scalar_only native))

let test_native_unsupported_width () =
  let loop = mk_loop [ vld (v 1) "a"; vbfly 8 (v 1) (v 1); vst (v 1) "c" ] in
  let p = { Vloop.name = "nu"; sections = [ Vloop.Loop loop ]; data = simple_data 32 } in
  check_bool "width 4 rejected" true
    (try
       ignore (Codegen.native ~width:4 p);
       false
     with Codegen.Unsupported_width _ -> true);
  check_bool "width 8 fine" true
    (try
       ignore (Codegen.native ~width:8 p);
       true
     with Codegen.Unsupported_width _ -> false)

let test_native_wide_constant_spills_to_memory () =
  (* A constant vector with period 8 on a 4-wide machine must come from
     memory each iteration. *)
  let loop =
    mk_loop
      [ vld (v 1) "a"; vand (v 1) (v 1) (vmask [ 1; 1; 1; 1; 0; 0; 0; 0 ]); vst (v 1) "c" ]
  in
  let p = { Vloop.name = "wc"; sections = [ Vloop.Loop loop ]; data = simple_data 32 } in
  let native = Codegen.native ~width:4 p in
  check_bool "vcnst array" true
    (List.exists
       (fun (d : Data.t) ->
         String.length d.Data.name >= 5 && String.sub d.Data.name 0 5 = "vcnst")
       native.Program.data);
  let vlds =
    List.filter (function Minsn.V (Vinsn.Vld _) -> true | _ -> false)
      (Program.insns native)
  in
  check "extra vector load for the constant" 2 (List.length vlds)

let test_outlined_sizes_match_scalarize () =
  let loop = mk_loop [ vld (v 1) "a"; vst (v 1) "c" ] in
  let p = { Vloop.name = "sz"; sections = [ Vloop.Loop loop ]; data = simple_data 32 } in
  match Codegen.outlined_sizes p with
  | [ (label, n) ] ->
      Alcotest.(check string) "label" "region_l_0" label;
      check "size" 7 n
  | _ -> Alcotest.fail "one region"

let tests =
  [
    Alcotest.test_case "vadd emission" `Quick test_vadd_emission;
    Alcotest.test_case "element-scaled addressing" `Quick test_element_scaled_addressing;
    Alcotest.test_case "reduction emission" `Quick test_reduction_emission;
    Alcotest.test_case "unsigned saturation idiom" `Quick test_sat_idiom_unsigned;
    Alcotest.test_case "signed saturation idiom" `Quick
      test_sat_idiom_signed_has_both_clamps;
    Alcotest.test_case "constant vector array" `Quick test_vconst_generates_array;
    Alcotest.test_case "offset arrays shared" `Quick test_offsets_array_shared;
    Alcotest.test_case "load-fused permutation" `Quick test_load_fused_perm;
    Alcotest.test_case "renaming load-fused permutation" `Quick
      test_perm_after_load_fuses_even_renaming;
    Alcotest.test_case "store-fused permutation" `Quick test_store_fused_perm;
    Alcotest.test_case "mid-loop permutation fissions" `Quick
      test_midloop_perm_forces_fission;
    Alcotest.test_case "fission preserves semantics" `Quick
      test_fission_preserves_semantics;
    Alcotest.test_case "size split" `Quick test_size_split;
    Alcotest.test_case "size split semantics" `Quick test_size_split_semantics;
    Alcotest.test_case "max_scalar configurable" `Quick test_max_scalar_configurable;
    Alcotest.test_case "validation errors" `Quick test_validation_errors;
    Alcotest.test_case "estimated costs" `Quick test_estimated_costs;
    Alcotest.test_case "codegen flavours" `Quick test_codegen_flavours;
    Alcotest.test_case "native unsupported width" `Quick test_native_unsupported_width;
    Alcotest.test_case "native wide constant" `Quick
      test_native_wide_constant_spills_to_memory;
    Alcotest.test_case "outlined sizes" `Quick test_outlined_sizes_match_scalarize;
  ]

let test_aliased_permuted_store_fissions () =
  (* Regression (found by property testing): a permuted store to an
     array the segment already stores would observe a different memory
     order in scalar (per-iteration) and vector (per-block) form. The
     scalarizer must split the loop so each phase owns the array. *)
  let loop =
    mk_loop ~count:16
      [
        vld (v 6) "b";
        vmin (v 1) (v 6) (vr (v 6));
        vst (v 6) "c";
        vred Opcode.Add (r 10) (v 1);
        vst (v 1) "a2";
        vrot ~block:4 ~by:1 (v 1) (v 1);
        vst (v 1) "c";
      ]
  in
  let loop = { loop with Vloop.reductions = [ (r 10, 0) ] } in
  let out = Scalarize.scalarize loop in
  check_bool "fissioned" true (List.length out.Scalarize.segments >= 2);
  (* And the result is the vector semantics: the scatter wins on every
     element of c. *)
  let data =
    [
      Data.make ~name:"b" ~esize:Esize.Word (Array.init 16 (fun i -> 100 + i));
      Data.zeros ~name:"c" ~esize:Esize.Word 16;
      Data.zeros ~name:"a2" ~esize:Esize.Word 16;
    ]
  in
  let p = { Vloop.name = "alias"; sections = [ Vloop.Loop loop ]; data } in
  let base_prog = Codegen.baseline p in
  let base = Helpers.run_image base_prog in
  let rot = Perm.apply (Perm.Rotate { block = 4; by = 1 }) in
  let expected = rot (Array.init 16 (fun i -> 100 + i)) in
  check_arrays "scatter wins" expected (Helpers.read_array base base_prog "c");
  let liquid_prog = Codegen.liquid p in
  let run =
    Helpers.run_image
      ~config:(Liquid_pipeline.Cpu.liquid_config ~lanes:16)
      liquid_prog
  in
  check_arrays "translated agrees" expected (Helpers.read_array run liquid_prog "c")

let test_aliasing_validation () =
  (* Gather-from-stored-array and mixed strided access are rejected at
     the IR level. *)
  let expect_invalid body =
    match Vloop.validate (mk_loop body) with
    | Error _ -> ()
    | Ok () -> Alcotest.fail "expected a validation error"
  in
  expect_invalid
    [ vld (v 1) "a"; vtbl (v 2) "c" (v 1); vst (v 2) "c" ];
  expect_invalid
    [ vlds ~stride:2 ~phase:0 (v 1) "a"; vld (v 2) "a"; vst (v 2) "c" ];
  expect_invalid
    [
      vld (v 1) "a";
      vsts ~stride:2 ~phase:1 (v 1) "c";
      vsts ~stride:2 ~phase:1 (v 1) "c";
    ];
  expect_invalid
    [
      vld (v 1) "a";
      vsts ~stride:2 ~phase:0 (v 1) "c";
      vsts ~stride:4 ~phase:1 (v 1) "c";
    ]

let tests =
  tests
  @ [
      Alcotest.test_case "aliased permuted store fissions" `Quick
        test_aliased_permuted_store_fissions;
      Alcotest.test_case "aliasing validation" `Quick test_aliasing_validation;
    ]
