(* Differential golden tests.

   Every workload is simulated under the four headline variants
   (baseline scalar, Liquid at 8 fixed lanes, Liquid on the 8-lane
   VLA target, Liquid on the 8-lane RVV target — the latter often
   installing LMUL-grouped 16-wide microcode) and every observable of
   the run
   is pinned: the full [Stats.t] counter set plus FNV-1a hashes of the
   final register file and of every data array's bytes in memory. The
   pinned values were captured before the fast-path memory / zero-
   allocation stepping rewrite, so any behavioural drift in the
   simulation core — timing model or architectural state — fails here
   byte-for-byte.

   A separate case pins the Vgather bus charge: the old charge computed
   [lanes * (bytes + bus - 1) / bus] which, by precedence, multiplied
   before dividing and overcharged one beat per gather (9 instead of 8
   beats for 8 word lanes on a 16-byte bus). The corrected per-lane
   ceiling [lanes * ((bytes + bus - 1) / bus)] is asserted against the
   old formula explicitly, and a gather microprogram's total cycle
   count is pinned. *)

open Liquid_isa
open Liquid_prog
open Liquid_scalarize
open Liquid_harness
open Liquid_workloads
open Helpers
module Stats = Liquid_machine.Stats
module Memory = Liquid_machine.Memory

type golden = {
  g_cycles : int;
  g_scalar : int;
  g_vector : int;
  g_loads : int;
  g_stores : int;
  g_branches : int;
  g_mispredicts : int;
  g_dhits : int;
  g_dmisses : int;
  g_ihits : int;
  g_imisses : int;
  g_region_calls : int;
  g_ucode_hits : int;
  g_installs : int;
  g_fetches : int;
  g_uops : int;
  g_evictions : int;
  g_tr_started : int;
  g_tr_aborted : int;
  g_regs_hash : int;
  g_mem_hash : int;
}

(* The FNV-1a fingerprints live in [Liquid_faults.Fingerprint], shared
   with the fault-injection oracle so the two observers can never
   disagree about what "identical state" means. The pinned values below
   predate the shared module and must survive any refactor of it. *)
let regs_hash = Liquid_faults.Fingerprint.regs_hash
let mem_hash = Liquid_faults.Fingerprint.mem_hash

let goldens =
  [
    ("052.alvinn", "baseline", { g_cycles = 281840; g_scalar = 212990; g_vector = 0; g_loads = 48720; g_stores = 6144; g_branches = 30263; g_mispredicts = 4; g_dhits = 54608; g_dmisses = 256; g_ihits = 212985; g_imisses = 5; g_region_calls = 0; g_ucode_hits = 0; g_installs = 0; g_fetches = 212990; g_uops = 0; g_evictions = 0; g_tr_started = 0; g_tr_aborted = 0; g_regs_hash = 0x4207be414f6fa218; g_mem_hash = 0x3414aedbe1508ed1 });
    ("052.alvinn", "liquid/8-wide", { g_cycles = 151780; g_scalar = 104622; g_vector = 9856; g_loads = 24080; g_stores = 1216; g_branches = 20429; g_mispredicts = 48; g_dhits = 25040; g_dmisses = 256; g_ihits = 100327; g_imisses = 5; g_region_calls = 24; g_ucode_hits = 22; g_installs = 2; g_fetches = 100332; g_uops = 14146; g_evictions = 0; g_tr_started = 2; g_tr_aborted = 0; g_regs_hash = 0xf89f0cdb2a5c3af; g_mem_hash = 0x3414aedbe1508ed1 });
    ("056.ear", "baseline", { g_cycles = 954357; g_scalar = 616602; g_vector = 0; g_loads = 173480; g_stores = 15360; g_branches = 40329; g_mispredicts = 5; g_dhits = 188328; g_dmisses = 512; g_ihits = 616588; g_imisses = 14; g_region_calls = 0; g_ucode_hits = 0; g_installs = 0; g_fetches = 616602; g_uops = 0; g_evictions = 0; g_tr_started = 0; g_tr_aborted = 0; g_regs_hash = 0x2d2a640cf575569; g_mem_hash = 0x4aa6e5e2b11bed55 });
    ("056.ear", "liquid/8-wide", { g_cycles = 335337; g_scalar = 179478; g_vector = 50112; g_loads = 56552; g_stores = 3264; g_branches = 28260; g_mispredicts = 35; g_dhits = 59304; g_dmisses = 512; g_ihits = 174225; g_imisses = 15; g_region_calls = 30; g_ucode_hits = 27; g_installs = 3; g_fetches = 174240; g_uops = 55350; g_evictions = 0; g_tr_started = 3; g_tr_aborted = 0; g_regs_hash = 0x49246d2627a2fe14; g_mem_hash = 0x4aa6e5e2b11bed55 });
    ("093.nasa7", "baseline", { g_cycles = 2719488; g_scalar = 1670687; g_vector = 0; g_loads = 519568; g_stores = 36864; g_branches = 37251; g_mispredicts = 25; g_dhits = 556176; g_dmisses = 256; g_ihits = 1670610; g_imisses = 77; g_region_calls = 0; g_ucode_hits = 0; g_installs = 0; g_fetches = 1670687; g_uops = 0; g_evictions = 0; g_tr_started = 0; g_tr_aborted = 0; g_regs_hash = 0x1aff8d73b60293dd; g_mem_hash = 0x15093959aff1d229 });
    ("093.nasa7", "liquid/8-wide", { g_cycles = 553738; g_scalar = 154559; g_vector = 178464; g_loads = 103152; g_stores = 7296; g_branches = 7815; g_mispredicts = 169; g_dhits = 110192; g_dmisses = 256; g_ihits = 141543; g_imisses = 80; g_region_calls = 144; g_ucode_hits = 132; g_installs = 12; g_fetches = 141623; g_uops = 191400; g_evictions = 4; g_tr_started = 12; g_tr_aborted = 0; g_regs_hash = 0x11c14de492fea2c4; g_mem_hash = 0x15093959aff1d229 });
    ("101.tomcatv", "baseline", { g_cycles = 415156; g_scalar = 266912; g_vector = 0; g_loads = 77680; g_stores = 8960; g_branches = 13619; g_mispredicts = 8; g_dhits = 86448; g_dmisses = 192; g_ihits = 266886; g_imisses = 26; g_region_calls = 0; g_ucode_hits = 0; g_installs = 0; g_fetches = 266912; g_uops = 0; g_evictions = 0; g_tr_started = 0; g_tr_aborted = 0; g_regs_hash = 0x6f67f7f6030c1b24; g_mem_hash = 0x4a090c03d9722f86 });
    ("101.tomcatv", "liquid/8-wide", { g_cycles = 123022; g_scalar = 56504; g_vector = 23760; g_loads = 20944; g_stores = 1904; g_branches = 7625; g_mispredicts = 68; g_dhits = 22656; g_dmisses = 192; g_ihits = 53777; g_imisses = 27; g_region_calls = 60; g_ucode_hits = 54; g_installs = 6; g_fetches = 53804; g_uops = 26460; g_evictions = 0; g_tr_started = 6; g_tr_aborted = 0; g_regs_hash = 0x5d6b4a00d344c83c; g_mem_hash = 0x4a090c03d9722f86 });
    ("104.hydro2d", "baseline", { g_cycles = 2254062; g_scalar = 1425721; g_vector = 0; g_loads = 424436; g_stores = 55296; g_branches = 55777; g_mispredicts = 37; g_dhits = 479348; g_dmisses = 384; g_ihits = 1425650; g_imisses = 71; g_region_calls = 0; g_ucode_hits = 0; g_installs = 0; g_fetches = 1425721; g_uops = 0; g_evictions = 0; g_tr_started = 0; g_tr_aborted = 0; g_regs_hash = 0x4e3d29527abce5bb; g_mem_hash = 0x2a80ca2f5e9cafdd });
    ("104.hydro2d", "liquid/8-wide", { g_cycles = 467454; g_scalar = 141353; g_vector = 142912; g_loads = 83348; g_stores = 10944; g_branches = 11623; g_mispredicts = 253; g_dhits = 93908; g_dmisses = 384; g_ihits = 121874; g_imisses = 75; g_region_calls = 216; g_ucode_hits = 198; g_installs = 18; g_fetches = 121949; g_uops = 162316; g_evictions = 10; g_tr_started = 18; g_tr_aborted = 0; g_regs_hash = 0x65fe4c48ce59fea5; g_mem_hash = 0x2a80ca2f5e9cafdd });
    ("171.swim", "baseline", { g_cycles = 1474851; g_scalar = 928616; g_vector = 0; g_loads = 283324; g_stores = 27648; g_branches = 28338; g_mispredicts = 19; g_dhits = 310652; g_dmisses = 320; g_ihits = 928571; g_imisses = 45; g_region_calls = 0; g_ucode_hits = 0; g_installs = 0; g_fetches = 928616; g_uops = 0; g_evictions = 0; g_tr_started = 0; g_tr_aborted = 0; g_regs_hash = 0x2587f52fdfc0e710; g_mem_hash = 0x4d6da78b5f247dda });
    ("171.swim", "liquid/8-wide", { g_cycles = 307515; g_scalar = 90720; g_vector = 95040; g_loads = 55228; g_stores = 5472; g_branches = 6261; g_mispredicts = 127; g_dhits = 60380; g_dmisses = 320; g_ihits = 80971; g_imisses = 47; g_region_calls = 108; g_ucode_hits = 99; g_installs = 9; g_fetches = 81018; g_uops = 104742; g_evictions = 1; g_tr_started = 9; g_tr_aborted = 0; g_regs_hash = 0x342f2cc999a4d341; g_mem_hash = 0x4d6da78b5f247dda });
    ("172.mgrid", "baseline", { g_cycles = 1433354; g_scalar = 883838; g_vector = 0; g_loads = 274944; g_stores = 19968; g_branches = 19955; g_mispredicts = 26; g_dhits = 294752; g_dmisses = 160; g_ihits = 883757; g_imisses = 81; g_region_calls = 0; g_ucode_hits = 0; g_installs = 0; g_fetches = 883838; g_uops = 0; g_evictions = 0; g_tr_started = 0; g_tr_aborted = 0; g_regs_hash = 0x58dd648452b6e4e7; g_mem_hash = 0x13512ebe969f78a2 });
    ("172.mgrid", "liquid/8-wide", { g_cycles = 293040; g_scalar = 81414; g_vector = 93984; g_loads = 54064; g_stores = 3952; g_branches = 4082; g_mispredicts = 182; g_dhits = 57856; g_dmisses = 160; g_ihits = 74180; g_imisses = 84; g_region_calls = 156; g_ucode_hits = 143; g_installs = 13; g_fetches = 74264; g_uops = 101134; g_evictions = 5; g_tr_started = 13; g_tr_aborted = 0; g_regs_hash = 0x65d8444875735f59; g_mem_hash = 0x13512ebe969f78a2 });
    ("179.art", "baseline", { g_cycles = 5041517; g_scalar = 1130537; g_vector = 0; g_loads = 270336; g_stores = 49152; g_branches = 159725; g_mispredicts = 8; g_dhits = 198144; g_dmisses = 121344; g_ihits = 1130527; g_imisses = 10; g_region_calls = 0; g_ucode_hits = 0; g_installs = 0; g_fetches = 1130537; g_uops = 0; g_evictions = 0; g_tr_started = 0; g_tr_aborted = 0; g_regs_hash = 0x4f161a1b7125a780; g_mem_hash = 0x79642fbeb2290094 });
    ("179.art", "liquid/8-wide", { g_cycles = 4481500; g_scalar = 719943; g_vector = 34816; g_loads = 166912; g_stores = 20480; g_branches = 123895; g_mispredicts = 25; g_dhits = 69120; g_dmisses = 118272; g_ihits = 704550; g_imisses = 11; g_region_calls = 15; g_ucode_hits = 10; g_installs = 5; g_fetches = 704561; g_uops = 50198; g_evictions = 0; g_tr_started = 5; g_tr_aborted = 0; g_regs_hash = 0x63d1ff8f95d9500d; g_mem_hash = 0x79642fbeb2290094 });
    ("MPEG2 Dec.", "baseline", { g_cycles = 32207; g_scalar = 25732; g_vector = 0; g_loads = 4420; g_stores = 1280; g_branches = 3694; g_mispredicts = 5; g_dhits = 5637; g_dmisses = 63; g_ihits = 25727; g_imisses = 5; g_region_calls = 0; g_ucode_hits = 0; g_installs = 0; g_fetches = 25732; g_uops = 0; g_evictions = 0; g_tr_started = 0; g_tr_aborted = 0; g_regs_hash = 0x5519977aad13fc54; g_mem_hash = 0x26544ea03304d210 });
    ("MPEG2 Dec.", "liquid/8-wide", { g_cycles = 19680; g_scalar = 13886; g_vector = 948; g_loads = 2761; g_stores = 174; g_branches = 2746; g_mispredicts = 5; g_dhits = 2872; g_dmisses = 63; g_ihits = 13090; g_imisses = 6; g_region_calls = 160; g_ucode_hits = 158; g_installs = 2; g_fetches = 13096; g_uops = 1738; g_evictions = 0; g_tr_started = 2; g_tr_aborted = 0; g_regs_hash = 0x1bcf0269b8440d7f; g_mem_hash = 0x26544ea03304d210 });
    ("MPEG2 Enc.", "baseline", { g_cycles = 63771; g_scalar = 43547; g_vector = 0; g_loads = 9800; g_stores = 2240; g_branches = 4864; g_mispredicts = 8; g_dhits = 11873; g_dmisses = 167; g_ihits = 43538; g_imisses = 9; g_region_calls = 0; g_ucode_hits = 0; g_installs = 0; g_fetches = 43547; g_uops = 0; g_evictions = 0; g_tr_started = 0; g_tr_aborted = 0; g_regs_hash = 0x6e9e1f6a272b010b; g_mem_hash = 0x275f612760d7a748 });
    ("MPEG2 Enc.", "liquid/8-wide", { g_cycles = 30797; g_scalar = 17200; g_vector = 2362; g_loads = 4092; g_stores = 518; g_branches = 2910; g_mispredicts = 17; g_dhits = 4443; g_dmisses = 167; g_ihits = 15854; g_imisses = 10; g_region_calls = 185; g_ucode_hits = 181; g_installs = 4; g_fetches = 15864; g_uops = 3698; g_evictions = 0; g_tr_started = 4; g_tr_aborted = 0; g_regs_hash = 0x6a5115306df22006; g_mem_hash = 0x275f612760d7a748 });
    ("GSM Dec.", "baseline", { g_cycles = 15473; g_scalar = 12014; g_vector = 0; g_loads = 2100; g_stores = 480; g_branches = 1127; g_mispredicts = 3; g_dhits = 2571; g_dmisses = 9; g_ihits = 12010; g_imisses = 4; g_region_calls = 0; g_ucode_hits = 0; g_installs = 0; g_fetches = 12014; g_uops = 0; g_evictions = 0; g_tr_started = 0; g_tr_aborted = 0; g_regs_hash = 0x32aa8a03ad0159a2; g_mem_hash = 0x56d5a25b100840b0 });
    ("GSM Dec.", "liquid/8-wide", { g_cycles = 6323; g_scalar = 4283; g_vector = 605; g_loads = 945; g_stores = 95; g_branches = 753; g_mispredicts = 15; g_dhits = 1031; g_dmisses = 9; g_ihits = 4091; g_imisses = 5; g_region_calls = 12; g_ucode_hits = 11; g_installs = 1; g_fetches = 4096; g_uops = 792; g_evictions = 0; g_tr_started = 1; g_tr_aborted = 0; g_regs_hash = 0x766a75295998790e; g_mem_hash = 0x56d5a25b100840b0 });
    ("GSM Enc.", "baseline", { g_cycles = 20234; g_scalar = 15122; g_vector = 0; g_loads = 3000; g_stores = 480; g_branches = 1535; g_mispredicts = 4; g_dhits = 3464; g_dmisses = 16; g_ihits = 15116; g_imisses = 6; g_region_calls = 0; g_ucode_hits = 0; g_installs = 0; g_fetches = 15122; g_uops = 0; g_evictions = 0; g_tr_started = 0; g_tr_aborted = 0; g_regs_hash = 0x28278e77cd87b534; g_mem_hash = 0x3ea5bae8a05b640b });
    ("GSM Enc.", "liquid/8-wide", { g_cycles = 7374; g_scalar = 4500; g_vector = 825; g_loads = 1075; g_stores = 95; g_branches = 787; g_mispredicts = 28; g_dhits = 1154; g_dmisses = 16; g_ihits = 4087; g_imisses = 6; g_region_calls = 24; g_ucode_hits = 22; g_installs = 2; g_fetches = 4093; g_uops = 1232; g_evictions = 0; g_tr_started = 2; g_tr_aborted = 0; g_regs_hash = 0x64d2d3159d824ee7; g_mem_hash = 0x3ea5bae8a05b640b });
    ("LU", "baseline", { g_cycles = 264901; g_scalar = 195170; g_vector = 0; g_loads = 45568; g_stores = 16384; g_branches = 29167; g_mispredicts = 3; g_dhits = 61696; g_dmisses = 256; g_ihits = 195167; g_imisses = 3; g_region_calls = 0; g_ucode_hits = 0; g_installs = 0; g_fetches = 195170; g_uops = 0; g_evictions = 0; g_tr_started = 0; g_tr_aborted = 0; g_regs_hash = 0x7622662e8b5300ef; g_mem_hash = 0x3aed967999fc3d56 });
    ("LU", "liquid/8-wide", { g_cycles = 119061; g_scalar = 78082; g_vector = 9600; g_loads = 18688; g_stores = 2944; g_branches = 15742; g_mispredicts = 19; g_dhits = 21376; g_dmisses = 256; g_ihits = 72289; g_imisses = 3; g_region_calls = 16; g_ucode_hits = 15; g_installs = 1; g_fetches = 72292; g_uops = 15390; g_evictions = 0; g_tr_started = 1; g_tr_aborted = 0; g_regs_hash = 0x5601294057161143; g_mem_hash = 0x3aed967999fc3d56 });
    ("FFT", "baseline", { g_cycles = 71547; g_scalar = 48602; g_vector = 0; g_loads = 15720; g_stores = 2560; g_branches = 2889; g_mispredicts = 5; g_dhits = 18200; g_dmisses = 80; g_ihits = 48591; g_imisses = 11; g_region_calls = 0; g_ucode_hits = 0; g_installs = 0; g_fetches = 48602; g_uops = 0; g_evictions = 0; g_tr_started = 0; g_tr_aborted = 0; g_regs_hash = 0x85cc5c4bbf0963f; g_mem_hash = 0x719465a51335200 });
    ("FFT", "liquid/8-wide", { g_cycles = 22335; g_scalar = 10142; g_vector = 3888; g_loads = 3768; g_stores = 544; g_branches = 1404; g_mispredicts = 35; g_dhits = 4232; g_dmisses = 80; g_ihits = 9428; g_imisses = 12; g_region_calls = 30; g_ucode_hits = 27; g_installs = 3; g_fetches = 9440; g_uops = 4590; g_evictions = 0; g_tr_started = 3; g_tr_aborted = 0; g_regs_hash = 0x56cda5cd869430ab; g_mem_hash = 0x719465a51335200 });
    ("FIR", "baseline", { g_cycles = 1367421; g_scalar = 942202; g_vector = 0; g_loads = 208800; g_stores = 102400; g_branches = 106299; g_mispredicts = 3; g_dhits = 310816; g_dmisses = 384; g_ihits = 942199; g_imisses = 3; g_region_calls = 0; g_ucode_hits = 0; g_installs = 0; g_fetches = 942202; g_uops = 0; g_evictions = 0; g_tr_started = 0; g_tr_aborted = 0; g_regs_hash = 0x57f905d7fcb4a3c6; g_mem_hash = 0x382cb893bfb2c94e });
    ("FIR", "liquid/8-wide", { g_cycles = 227441; g_scalar = 68034; g_vector = 76032; g_loads = 31392; g_stores = 13696; g_branches = 17694; g_mispredicts = 103; g_dhits = 44704; g_dmisses = 384; g_ihits = 29817; g_imisses = 3; g_region_calls = 100; g_ucode_hits = 99; g_installs = 1; g_fetches = 29820; g_uops = 114246; g_evictions = 0; g_tr_started = 1; g_tr_aborted = 0; g_regs_hash = 0x6f0a169e11961692; g_mem_hash = 0x382cb893bfb2c94e });
    ("052.alvinn", "liquid-vla/8-wide", { g_cycles = 151742; g_scalar = 104644; g_vector = 9856; g_loads = 24080; g_stores = 1216; g_branches = 20429; g_mispredicts = 28; g_dhits = 25040; g_dmisses = 256; g_ihits = 100327; g_imisses = 5; g_region_calls = 24; g_ucode_hits = 22; g_installs = 2; g_fetches = 100332; g_uops = 14168; g_evictions = 0; g_tr_started = 2; g_tr_aborted = 0; g_regs_hash = 0xf89f0cdb2a5c3af; g_mem_hash = 0x3414aedbe1508ed1 });
    ("056.ear", "liquid-vla/8-wide", { g_cycles = 335364; g_scalar = 179505; g_vector = 50112; g_loads = 56552; g_stores = 3264; g_branches = 28260; g_mispredicts = 35; g_dhits = 59304; g_dmisses = 512; g_ihits = 174225; g_imisses = 15; g_region_calls = 30; g_ucode_hits = 27; g_installs = 3; g_fetches = 174240; g_uops = 55377; g_evictions = 0; g_tr_started = 3; g_tr_aborted = 0; g_regs_hash = 0x49246d2627a2fe14; g_mem_hash = 0x4aa6e5e2b11bed55 });
    ("093.nasa7", "liquid-vla/8-wide", { g_cycles = 553870; g_scalar = 154691; g_vector = 178464; g_loads = 103152; g_stores = 7296; g_branches = 7815; g_mispredicts = 169; g_dhits = 110192; g_dmisses = 256; g_ihits = 141543; g_imisses = 80; g_region_calls = 144; g_ucode_hits = 132; g_installs = 12; g_fetches = 141623; g_uops = 191532; g_evictions = 4; g_tr_started = 12; g_tr_aborted = 0; g_regs_hash = 0x11c14de492fea2c4; g_mem_hash = 0x15093959aff1d229 });
    ("101.tomcatv", "liquid-vla/8-wide", { g_cycles = 124870; g_scalar = 56558; g_vector = 23490; g_loads = 22960; g_stores = 1904; g_branches = 7625; g_mispredicts = 84; g_dhits = 24672; g_dmisses = 192; g_ihits = 53777; g_imisses = 27; g_region_calls = 60; g_ucode_hits = 54; g_installs = 6; g_fetches = 53804; g_uops = 26244; g_evictions = 0; g_tr_started = 6; g_tr_aborted = 0; g_regs_hash = 0x5d6b4a00d344c83c; g_mem_hash = 0x4a090c03d9722f86 });
    ("104.hydro2d", "liquid-vla/8-wide", { g_cycles = 471898; g_scalar = 141551; g_vector = 142230; g_loads = 88276; g_stores = 10944; g_branches = 11623; g_mispredicts = 253; g_dhits = 98836; g_dmisses = 384; g_ihits = 121874; g_imisses = 75; g_region_calls = 216; g_ucode_hits = 198; g_installs = 18; g_fetches = 121949; g_uops = 161832; g_evictions = 10; g_tr_started = 18; g_tr_aborted = 0; g_regs_hash = 0x65fe4c48ce59fea5; g_mem_hash = 0x2a80ca2f5e9cafdd });
    ("171.swim", "liquid-vla/8-wide", { g_cycles = 316106; g_scalar = 90819; g_vector = 93676; g_loads = 65084; g_stores = 5472; g_branches = 6261; g_mispredicts = 127; g_dhits = 70236; g_dmisses = 320; g_ihits = 80971; g_imisses = 47; g_region_calls = 108; g_ucode_hits = 99; g_installs = 9; g_fetches = 81018; g_uops = 103477; g_evictions = 1; g_tr_started = 9; g_tr_aborted = 0; g_regs_hash = 0x342f2cc999a4d341; g_mem_hash = 0x4d6da78b5f247dda });
    ("172.mgrid", "liquid-vla/8-wide", { g_cycles = 295317; g_scalar = 81557; g_vector = 93654; g_loads = 56528; g_stores = 3952; g_branches = 4082; g_mispredicts = 182; g_dhits = 60320; g_dmisses = 160; g_ihits = 74180; g_imisses = 84; g_region_calls = 156; g_ucode_hits = 143; g_installs = 13; g_fetches = 74264; g_uops = 100947; g_evictions = 5; g_tr_started = 13; g_tr_aborted = 0; g_regs_hash = 0x65d8444875735f59; g_mem_hash = 0x13512ebe969f78a2 });
    ("179.art", "liquid-vla/8-wide", { g_cycles = 4493802; g_scalar = 719953; g_vector = 32772; g_loads = 181248; g_stores = 20480; g_branches = 123895; g_mispredicts = 25; g_dhits = 83456; g_dmisses = 118272; g_ihits = 704550; g_imisses = 11; g_region_calls = 15; g_ucode_hits = 10; g_installs = 5; g_fetches = 704561; g_uops = 48164; g_evictions = 0; g_tr_started = 5; g_tr_aborted = 0; g_regs_hash = 0x63d1ff8f95d9500d; g_mem_hash = 0x79642fbeb2290094 });
    ("MPEG2 Dec.", "liquid-vla/8-wide", { g_cycles = 19838; g_scalar = 14044; g_vector = 948; g_loads = 2761; g_stores = 174; g_branches = 2746; g_mispredicts = 5; g_dhits = 2872; g_dmisses = 63; g_ihits = 13090; g_imisses = 6; g_region_calls = 160; g_ucode_hits = 158; g_installs = 2; g_fetches = 13096; g_uops = 1896; g_evictions = 0; g_tr_started = 2; g_tr_aborted = 0; g_regs_hash = 0x1bcf0269b8440d7f; g_mem_hash = 0x26544ea03304d210 });
    ("MPEG2 Enc.", "liquid-vla/8-wide", { g_cycles = 30966; g_scalar = 17381; g_vector = 2362; g_loads = 4092; g_stores = 518; g_branches = 2910; g_mispredicts = 13; g_dhits = 4443; g_dmisses = 167; g_ihits = 15854; g_imisses = 10; g_region_calls = 185; g_ucode_hits = 181; g_installs = 4; g_fetches = 15864; g_uops = 3879; g_evictions = 0; g_tr_started = 4; g_tr_aborted = 0; g_regs_hash = 0x6a5115306df22006; g_mem_hash = 0x275f612760d7a748 });
    ("GSM Dec.", "liquid-vla/8-wide", { g_cycles = 6334; g_scalar = 4294; g_vector = 605; g_loads = 945; g_stores = 95; g_branches = 753; g_mispredicts = 15; g_dhits = 1031; g_dmisses = 9; g_ihits = 4091; g_imisses = 5; g_region_calls = 12; g_ucode_hits = 11; g_installs = 1; g_fetches = 4096; g_uops = 803; g_evictions = 0; g_tr_started = 1; g_tr_aborted = 0; g_regs_hash = 0x766a75295998790e; g_mem_hash = 0x56d5a25b100840b0 });
    ("GSM Enc.", "liquid-vla/8-wide", { g_cycles = 7396; g_scalar = 4522; g_vector = 825; g_loads = 1075; g_stores = 95; g_branches = 787; g_mispredicts = 28; g_dhits = 1154; g_dmisses = 16; g_ihits = 4087; g_imisses = 6; g_region_calls = 24; g_ucode_hits = 22; g_installs = 2; g_fetches = 4093; g_uops = 1254; g_evictions = 0; g_tr_started = 2; g_tr_aborted = 0; g_regs_hash = 0x64d2d3159d824ee7; g_mem_hash = 0x3ea5bae8a05b640b });
    ("LU", "liquid-vla/8-wide", { g_cycles = 119076; g_scalar = 78097; g_vector = 9600; g_loads = 18688; g_stores = 2944; g_branches = 15742; g_mispredicts = 19; g_dhits = 21376; g_dmisses = 256; g_ihits = 72289; g_imisses = 3; g_region_calls = 16; g_ucode_hits = 15; g_installs = 1; g_fetches = 72292; g_uops = 15405; g_evictions = 0; g_tr_started = 1; g_tr_aborted = 0; g_regs_hash = 0x5601294057161143; g_mem_hash = 0x3aed967999fc3d56 });
    ("FFT", "liquid-vla/8-wide", { g_cycles = 23676; g_scalar = 10169; g_vector = 3690; g_loads = 5280; g_stores = 544; g_branches = 1404; g_mispredicts = 35; g_dhits = 5744; g_dmisses = 80; g_ihits = 9428; g_imisses = 12; g_region_calls = 30; g_ucode_hits = 27; g_installs = 3; g_fetches = 9440; g_uops = 4419; g_evictions = 0; g_tr_started = 3; g_tr_aborted = 0; g_regs_hash = 0x56cda5cd869430ab; g_mem_hash = 0x719465a51335200 });
    ("FIR", "liquid-vla/8-wide", { g_cycles = 227540; g_scalar = 68133; g_vector = 76032; g_loads = 31392; g_stores = 13696; g_branches = 17694; g_mispredicts = 103; g_dhits = 44704; g_dmisses = 384; g_ihits = 29817; g_imisses = 3; g_region_calls = 100; g_ucode_hits = 99; g_installs = 1; g_fetches = 29820; g_uops = 114345; g_evictions = 0; g_tr_started = 1; g_tr_aborted = 0; g_regs_hash = 0x6f0a169e11961692; g_mem_hash = 0x382cb893bfb2c94e });
    ("052.alvinn", "liquid-rvv/8-wide", { g_cycles = 145054; g_scalar = 102532; g_vector = 4928; g_loads = 22320; g_stores = 864; g_branches = 19725; g_mispredicts = 28; g_dhits = 25040; g_dmisses = 256; g_ihits = 100327; g_imisses = 5; g_region_calls = 24; g_ucode_hits = 22; g_installs = 2; g_fetches = 100332; g_uops = 7128; g_evictions = 0; g_tr_started = 2; g_tr_aborted = 0; g_regs_hash = 0xf89f0cdb2a5c3af; g_mem_hash = 0x3414aedbe1508ed1 });
    ("056.ear", "liquid-rvv/8-wide", { g_cycles = 308580; g_scalar = 176913; g_vector = 25056; g_loads = 48200; g_stores = 2400; g_branches = 27396; g_mispredicts = 35; g_dhits = 59304; g_dmisses = 512; g_ihits = 174225; g_imisses = 15; g_region_calls = 30; g_ucode_hits = 27; g_installs = 3; g_fetches = 174240; g_uops = 27729; g_evictions = 0; g_tr_started = 3; g_tr_aborted = 0; g_regs_hash = 0x49246d2627a2fe14; g_mem_hash = 0x4aa6e5e2b11bed55 });
    ("093.nasa7", "liquid-rvv/8-wide", { g_cycles = 460414; g_scalar = 148355; g_vector = 89232; g_loads = 73408; g_stores = 5184; g_branches = 5703; g_mispredicts = 169; g_dhits = 110192; g_dmisses = 256; g_ihits = 141543; g_imisses = 80; g_region_calls = 144; g_ucode_hits = 132; g_installs = 12; g_fetches = 141623; g_uops = 95964; g_evictions = 4; g_tr_started = 12; g_tr_aborted = 0; g_regs_hash = 0x11c14de492fea2c4; g_mem_hash = 0x15093959aff1d229 });
    ("101.tomcatv", "liquid-rvv/8-wide", { g_cycles = 112270; g_scalar = 55262; g_vector = 11754; g_loads = 19216; g_stores = 1400; g_branches = 7193; g_mispredicts = 84; g_dhits = 24672; g_dmisses = 192; g_ihits = 53777; g_imisses = 27; g_region_calls = 60; g_ucode_hits = 54; g_installs = 6; g_fetches = 53804; g_uops = 13212; g_evictions = 0; g_tr_started = 6; g_tr_aborted = 0; g_regs_hash = 0x5d6b4a00d344c83c; g_mem_hash = 0x4a090c03d9722f86 });
    ("104.hydro2d", "liquid-rvv/8-wide", { g_cycles = 394634; g_scalar = 132047; g_vector = 71126; g_loads = 64868; g_stores = 7776; g_branches = 8455; g_mispredicts = 253; g_dhits = 98836; g_dmisses = 384; g_ihits = 121874; g_imisses = 75; g_region_calls = 216; g_ucode_hits = 198; g_installs = 18; g_fetches = 121949; g_uops = 81224; g_evictions = 10; g_tr_started = 18; g_tr_aborted = 0; g_regs_hash = 0x65fe4c48ce59fea5; g_mem_hash = 0x2a80ca2f5e9cafdd });
    ("171.swim", "liquid-rvv/8-wide", { g_cycles = 265418; g_scalar = 86067; g_vector = 46860; g_loads = 50300; g_stores = 3888; g_branches = 4677; g_mispredicts = 127; g_dhits = 70236; g_dmisses = 320; g_ihits = 80971; g_imisses = 47; g_region_calls = 108; g_ucode_hits = 99; g_installs = 9; g_fetches = 81018; g_uops = 51909; g_evictions = 1; g_tr_started = 9; g_tr_aborted = 0; g_regs_hash = 0x342f2cc999a4d341; g_mem_hash = 0x4d6da78b5f247dda });
    ("172.mgrid", "liquid-rvv/8-wide", { g_cycles = 246037; g_scalar = 78125; g_vector = 46838; g_loads = 41128; g_stores = 2808; g_branches = 2938; g_mispredicts = 182; g_dhits = 60320; g_dmisses = 160; g_ihits = 74180; g_imisses = 84; g_region_calls = 156; g_ucode_hits = 143; g_installs = 13; g_fetches = 74264; g_uops = 50699; g_evictions = 5; g_tr_started = 13; g_tr_aborted = 0; g_regs_hash = 0x65d8444875735f59; g_mem_hash = 0x13512ebe969f78a2 });
    ("179.art", "liquid-rvv/8-wide", { g_cycles = 4472810; g_scalar = 712273; g_vector = 16388; g_loads = 176640; g_stores = 18432; g_branches = 121335; g_mispredicts = 25; g_dhits = 83456; g_dmisses = 118272; g_ihits = 704550; g_imisses = 11; g_region_calls = 15; g_ucode_hits = 10; g_installs = 5; g_fetches = 704561; g_uops = 24100; g_evictions = 0; g_tr_started = 5; g_tr_aborted = 0; g_regs_hash = 0x63d1ff8f95d9500d; g_mem_hash = 0x79642fbeb2290094 });
    ("MPEG2 Dec.", "liquid-rvv/8-wide", { g_cycles = 20154; g_scalar = 14044; g_vector = 948; g_loads = 2761; g_stores = 174; g_branches = 2746; g_mispredicts = 5; g_dhits = 2872; g_dmisses = 63; g_ihits = 13090; g_imisses = 6; g_region_calls = 160; g_ucode_hits = 158; g_installs = 2; g_fetches = 13096; g_uops = 1896; g_evictions = 0; g_tr_started = 2; g_tr_aborted = 0; g_regs_hash = 0x1bcf0269b8440d7f; g_mem_hash = 0x26544ea03304d210 });
    ("MPEG2 Enc.", "liquid-rvv/8-wide", { g_cycles = 30424; g_scalar = 17189; g_vector = 1594; g_loads = 3836; g_stores = 454; g_branches = 2846; g_mispredicts = 13; g_dhits = 4443; g_dmisses = 167; g_ihits = 15854; g_imisses = 10; g_region_calls = 185; g_ucode_hits = 181; g_installs = 4; g_fetches = 15864; g_uops = 2919; g_evictions = 0; g_tr_started = 4; g_tr_aborted = 0; g_regs_hash = 0x6a5115306df22006; g_mem_hash = 0x275f612760d7a748 });
    ("GSM Dec.", "liquid-rvv/8-wide", { g_cycles = 6114; g_scalar = 4228; g_vector = 363; g_loads = 879; g_stores = 73; g_branches = 731; g_mispredicts = 15; g_dhits = 943; g_dmisses = 9; g_ihits = 4091; g_imisses = 5; g_region_calls = 12; g_ucode_hits = 11; g_installs = 1; g_fetches = 4096; g_uops = 495; g_evictions = 0; g_tr_started = 1; g_tr_aborted = 0; g_regs_hash = 0x766a75295998790e; g_mem_hash = 0x56d5a25b100840b0 });
    ("GSM Enc.", "liquid-rvv/8-wide", { g_cycles = 6978; g_scalar = 4390; g_vector = 495; g_loads = 965; g_stores = 73; g_branches = 743; g_mispredicts = 28; g_dhits = 1022; g_dmisses = 16; g_ihits = 4087; g_imisses = 6; g_region_calls = 24; g_ucode_hits = 22; g_installs = 2; g_fetches = 4093; g_uops = 792; g_evictions = 0; g_tr_started = 2; g_tr_aborted = 0; g_regs_hash = 0x64d2d3159d824ee7; g_mem_hash = 0x3ea5bae8a05b640b });
    ("LU", "liquid-rvv/8-wide", { g_cycles = 113316; g_scalar = 75217; g_vector = 4800; g_loads = 16768; g_stores = 1984; g_branches = 14782; g_mispredicts = 19; g_dhits = 21376; g_dmisses = 256; g_ihits = 72289; g_imisses = 3; g_region_calls = 16; g_ucode_hits = 15; g_installs = 1; g_fetches = 72292; g_uops = 7725; g_evictions = 0; g_tr_started = 1; g_tr_aborted = 0; g_regs_hash = 0x5601294057161143; g_mem_hash = 0x3aed967999fc3d56 });
    ("FFT", "liquid-rvv/8-wide", { g_cycles = 22200; g_scalar = 9953; g_vector = 2322; g_loads = 4848; g_stores = 472; g_branches = 1332; g_mispredicts = 35; g_dhits = 5744; g_dmisses = 80; g_ihits = 9428; g_imisses = 12; g_region_calls = 30; g_ucode_hits = 27; g_installs = 3; g_fetches = 9440; g_uops = 2835; g_evictions = 0; g_tr_started = 3; g_tr_aborted = 0; g_regs_hash = 0x56cda5cd869430ab; g_mem_hash = 0x719465a51335200 });
    ("FIR", "liquid-rvv/8-wide", { g_cycles = 176852; g_scalar = 49125; g_vector = 38016; g_loads = 18720; g_stores = 7360; g_branches = 11358; g_mispredicts = 103; g_dhits = 44704; g_dmisses = 384; g_ihits = 29817; g_imisses = 3; g_region_calls = 100; g_ucode_hits = 99; g_installs = 1; g_fetches = 29820; g_uops = 57321; g_evictions = 0; g_tr_started = 1; g_tr_aborted = 0; g_regs_hash = 0x6f0a169e11961692; g_mem_hash = 0x382cb893bfb2c94e });
  ]

let variant_of_name = function
  | "baseline" -> Runner.Baseline
  | "liquid/8-wide" -> Runner.Liquid 8
  | "liquid-vla/8-wide" -> Runner.Liquid_vla 8
  | "liquid-rvv/8-wide" -> Runner.Liquid_rvv 8
  | s -> invalid_arg ("variant_of_name: " ^ s)

let check_row (wname, vname, g) () =
  let w =
    match Workload.find wname with
    | Some w -> w
    | None -> Alcotest.failf "unknown workload %s" wname
  in
  let { Runner.run; program; _ } = Runner.run_cached w (variant_of_name vname) in
  let s = run.Cpu.stats in
  let ck what = Alcotest.(check int) what in
  ck "cycles" g.g_cycles s.Stats.cycles;
  ck "scalar insns" g.g_scalar s.Stats.scalar_insns;
  ck "vector insns" g.g_vector s.Stats.vector_insns;
  ck "loads" g.g_loads s.Stats.loads;
  ck "stores" g.g_stores s.Stats.stores;
  ck "branches" g.g_branches s.Stats.branches;
  ck "mispredicts" g.g_mispredicts s.Stats.branch_mispredicts;
  ck "dcache hits" g.g_dhits s.Stats.dcache_hits;
  ck "dcache misses" g.g_dmisses s.Stats.dcache_misses;
  ck "icache hits" g.g_ihits s.Stats.icache_hits;
  ck "icache misses" g.g_imisses s.Stats.icache_misses;
  ck "region calls" g.g_region_calls s.Stats.region_calls;
  ck "ucode hits" g.g_ucode_hits s.Stats.ucode_hits;
  ck "ucode installs" g.g_installs s.Stats.ucode_installs;
  ck "fetches" g.g_fetches s.Stats.fetches;
  ck "uops retired" g.g_uops s.Stats.uops_retired;
  ck "ucode evictions" g.g_evictions s.Stats.ucode_evictions;
  ck "translations started" g.g_tr_started s.Stats.translations_started;
  ck "translations aborted" g.g_tr_aborted s.Stats.translations_aborted;
  (* The derived counters must equal the units' own tallies — the
     single-writer discipline with no second bookkeeper. *)
  (match run.Cpu.icache_counters with
  | None -> Alcotest.fail "expected an instruction cache"
  | Some c ->
      ck "stats icache hits = cache hits" s.Stats.icache_hits c.Liquid_machine.Cache.c_hits;
      ck "stats icache misses = cache misses" s.Stats.icache_misses
        c.Liquid_machine.Cache.c_misses);
  ck "stats mispredicts = predictor mispredicts" s.Stats.branch_mispredicts
    run.Cpu.bpred_counters.Liquid_machine.Branch_pred.p_mispredicts;
  ck "stats evictions = ucache evictions" s.Stats.ucode_evictions
    run.Cpu.ucache_counters.Liquid_pipeline.Ucode_cache.u_evictions;
  ck "register file hash" g.g_regs_hash (regs_hash run.Cpu.regs);
  ck "memory hash" g.g_mem_hash
    (mem_hash (Image.of_program program) run.Cpu.memory)

(* --- Vgather bus charge regression --- *)

let gather_loop =
  let open Build in
  {
    Vloop.name = "gat";
    count = 16;
    body = [ vld (v 1) "gidx"; vtbl (v 2) "gtab" (v 1); vst (v 2) "gout" ];
    reductions = [];
  }

let gather_data =
  [
    Kernels.warray "gidx" 16 (fun i -> 15 - i);
    Kernels.warray "gtab" 16 (fun i -> 3 * i);
    Kernels.wzeros "gout" 16;
  ]

let test_gather_charge () =
  let cfg = Cpu.liquid_config ~lanes:8 in
  let lanes = 8 in
  let bus = cfg.Cpu.vec_bus_bytes in
  let bytes = Esize.bytes Esize.Word in
  (* The corrected charge takes the per-lane ceiling; the pre-fix
     expression associated left-to-right and overcharged a beat. *)
  Alcotest.(check int) "bus bytes" 16 bus;
  Alcotest.(check int)
    "per-gather beats (corrected)" 8
    (lanes * ((bytes + bus - 1) / bus));
  Alcotest.(check int)
    "per-gather beats (old precedence, one beat too many)" 9
    (lanes * (bytes + bus - 1) / bus);
  let p = simple_program ~name:"gatp" ~frames:4 ~data:gather_data gather_loop in
  let prog = Codegen.liquid p in
  let run = run_image ~config:cfg prog in
  check_arrays "gather result"
    (Array.init 16 (fun i -> 3 * (15 - i)))
    (read_array run prog "gout");
  (* Three of the four frames run from microcode, 16/8 = 2 gathers per
     frame: 6 vector gathers at one extra beat each under the old
     formula, which reported 520 cycles where the fix reports 514. *)
  Alcotest.(check int) "pinned gather cycles" 514 run.Cpu.stats.Stats.cycles

let tests =
  List.map
    (fun ((wname, vname, _) as row) ->
      Alcotest.test_case
        (Printf.sprintf "%s / %s" wname vname)
        `Quick (check_row row))
    goldens
  @ [ Alcotest.test_case "vgather bus charge" `Quick test_gather_charge ]
