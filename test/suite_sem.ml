(* Unit tests for the architectural semantics: one instruction at a time
   against a hand-built context. *)

open Liquid_isa
open Liquid_visa
open Liquid_pipeline
module Memory = Liquid_machine.Memory

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let r = Reg.make
let v = Vreg.make

let ctx () = Sem.create_ctx (Memory.create ())
let reg ctx i = ctx.Sem.regs.(i)
let setr ctx i value = ctx.Sem.regs.(i) <- value
let lane ctx vi l = ctx.Sem.vregs.(vi).(l)
let set_lanes ctx vi values = Array.blit values 0 ctx.Sem.vregs.(vi) 0 (Array.length values)

let step c insn = Sem.step_scalar c ~pc:10 insn
let stepv c vinsn = Sem.step_vector c vinsn

(* --- scalar --- *)

let test_mov_imm () =
  let c = ctx () in
  let outcome, eff = step c (Insn.Mov { cond = Cond.Al; dst = r 1; src = Imm 42 }) in
  check_bool "next" true (outcome = Sem.Next);
  check "reg" 42 (reg c 1);
  check_bool "value reported" true (eff.Sem.value = Some 42)

let test_mov_predicated () =
  let c = ctx () in
  setr c 1 7;
  c.Sem.flags <- Flags.of_compare 1 2 (* lt *);
  let _, eff = step c (Insn.Mov { cond = Cond.Gt; dst = r 1; src = Imm 99 }) in
  check "untouched when false" 7 (reg c 1);
  check_bool "no value" true (eff.Sem.value = None);
  let _, _ = step c (Insn.Mov { cond = Cond.Lt; dst = r 1; src = Imm 99 }) in
  check "written when true" 99 (reg c 1)

let test_dp () =
  let c = ctx () in
  setr c 2 6;
  setr c 3 7;
  ignore (step c (Insn.Dp { cond = Cond.Al; op = Opcode.Mul; dst = r 1; src1 = r 2; src2 = Reg (r 3) }));
  check "mul" 42 (reg c 1);
  ignore (step c (Insn.Dp { cond = Cond.Al; op = Opcode.Sub; dst = r 4; src1 = r 1; src2 = Imm 2 }));
  check "sub imm" 40 (reg c 4)

let test_ld_st_scaled () =
  let c = ctx () in
  Memory.write c.Sem.mem ~addr:(0x2000 + 12) ~bytes:4 (-77);
  setr c 0 3;
  let _, eff =
    step c
      (Insn.Ld { esize = Esize.Word; signed = true; dst = r 1; base = Sym 0x2000; index = Reg (r 0); shift = 2 })
  in
  check "loaded" (-77) (reg c 1);
  (match eff.Sem.accesses with
  | [ { Sem.addr; bytes; write } ] ->
      check "addr" (0x2000 + 12) addr;
      check "bytes" 4 bytes;
      check_bool "read" false write
  | _ -> Alcotest.fail "expected one access");
  setr c 2 1234;
  ignore
    (step c (Insn.St { esize = Esize.Half; src = r 2; base = Sym 0x3000; index = Imm 5; shift = 1 }));
  check "stored half" 1234 (Memory.read c.Sem.mem ~addr:(0x3000 + 10) ~bytes:2 ~signed:true)

let test_ld_sign_modes () =
  let c = ctx () in
  Memory.write c.Sem.mem ~addr:0x100 ~bytes:1 0xF0;
  ignore
    (step c (Insn.Ld { esize = Esize.Byte; signed = true; dst = r 1; base = Sym 0x100; index = Imm 0; shift = 0 }));
  check "signed byte" (-16) (reg c 1);
  ignore
    (step c (Insn.Ld { esize = Esize.Byte; signed = false; dst = r 2; base = Sym 0x100; index = Imm 0; shift = 0 }));
  check "unsigned byte" 0xF0 (reg c 2)

let test_st_truncates () =
  let c = ctx () in
  setr c 1 0x1FF;
  ignore (step c (Insn.St { esize = Esize.Byte; src = r 1; base = Sym 0x400; index = Imm 0; shift = 0 }));
  check "truncated" 0xFF (Memory.read_byte c.Sem.mem 0x400)

let test_branches () =
  let c = ctx () in
  c.Sem.flags <- Flags.of_compare 3 3;
  let outcome, eff = step c (Insn.B { cond = Cond.Eq; target = 55 }) in
  check_bool "taken" true (outcome = Sem.Jump 55);
  check_bool "reported taken" true (eff.Sem.taken = Some true);
  let outcome, eff = step c (Insn.B { cond = Cond.Lt; target = 55 }) in
  check_bool "not taken" true (outcome = Sem.Next);
  check_bool "reported not taken" true (eff.Sem.taken = Some false)

let test_call_ret () =
  let c = ctx () in
  let outcome, _ = step c (Insn.Bl { target = 20; region = true }) in
  check_bool "call" true (outcome = Sem.Call { target = 20; region = true });
  check "lr" 11 (reg c 14);
  let outcome, _ = step c Insn.Ret in
  check_bool "return" true (outcome = Sem.Return)

let test_cmp_halt () =
  let c = ctx () in
  setr c 1 5;
  ignore (step c (Insn.Cmp { src1 = r 1; src2 = Imm 9 }));
  check_bool "flags lt" true (Flags.lt c.Sem.flags);
  let outcome, _ = step c Insn.Halt in
  check_bool "stop" true (outcome = Sem.Stop)

(* --- vector --- *)

let test_vld_vst () =
  let c = ctx () in
  c.Sem.lanes <- 4;
  for i = 0 to 7 do
    Memory.write c.Sem.mem ~addr:(0x5000 + (i * 4)) ~bytes:4 (100 + i)
  done;
  setr c 0 4 (* element index *);
  let eff =
    stepv c (Vinsn.Vld { esize = Esize.Word; signed = true; dst = v 1; base = Insn.Sym 0x5000; index = r 0 })
  in
  check "lane0" 104 (lane c 1 0);
  check "lane3" 107 (lane c 1 3);
  (match eff.Sem.accesses with
  | [ { Sem.addr; bytes; _ } ] ->
      check "base addr" (0x5000 + 16) addr;
      check "bytes" 16 bytes
  | _ -> Alcotest.fail "one access");
  setr c 0 0;
  ignore (stepv c (Vinsn.Vst { esize = Esize.Word; src = v 1; base = Insn.Sym 0x6000; index = r 0 }));
  check "stored lane2" 106 (Memory.read c.Sem.mem ~addr:(0x6000 + 8) ~bytes:4 ~signed:true)

let test_vld_subword () =
  let c = ctx () in
  c.Sem.lanes <- 2;
  Memory.write c.Sem.mem ~addr:0x700 ~bytes:1 0x80;
  Memory.write c.Sem.mem ~addr:0x701 ~bytes:1 0x7F;
  setr c 0 0;
  ignore
    (stepv c (Vinsn.Vld { esize = Esize.Byte; signed = true; dst = v 2; base = Insn.Sym 0x700; index = r 0 }));
  check "signed lane" (-128) (lane c 2 0);
  check "positive lane" 127 (lane c 2 1)

let test_vdp_variants () =
  let c = ctx () in
  c.Sem.lanes <- 4;
  set_lanes c 1 [| 1; 2; 3; 4 |];
  set_lanes c 2 [| 10; 20; 30; 40 |];
  ignore (stepv c (Vinsn.Vdp { op = Opcode.Add; dst = v 3; src1 = v 1; src2 = VR (v 2) }));
  Alcotest.(check (array int)) "vr" [| 11; 22; 33; 44 |] (Array.sub c.Sem.vregs.(3) 0 4);
  ignore (stepv c (Vinsn.Vdp { op = Opcode.Mul; dst = v 4; src1 = v 1; src2 = VImm 3 }));
  Alcotest.(check (array int)) "vimm" [| 3; 6; 9; 12 |] (Array.sub c.Sem.vregs.(4) 0 4);
  ignore
    (stepv c (Vinsn.Vdp { op = Opcode.And; dst = v 5; src1 = v 2; src2 = VConst [| -1; 0; -1; 0 |] }));
  Alcotest.(check (array int)) "vconst mask" [| 10; 0; 30; 0 |]
    (Array.sub c.Sem.vregs.(5) 0 4)

let test_vdp_in_place () =
  let c = ctx () in
  c.Sem.lanes <- 2;
  set_lanes c 1 [| 5; 7 |];
  ignore (stepv c (Vinsn.Vdp { op = Opcode.Mul; dst = v 1; src1 = v 1; src2 = VR (v 1) }));
  Alcotest.(check (array int)) "squares in place" [| 25; 49 |]
    (Array.sub c.Sem.vregs.(1) 0 2)

let test_vconst_width_mismatch () =
  let c = ctx () in
  c.Sem.lanes <- 4;
  Alcotest.check_raises "sigill" (Sem.Sigill "constant vector width mismatch")
    (fun () ->
      ignore
        (stepv c (Vinsn.Vdp { op = Opcode.Add; dst = v 1; src1 = v 1; src2 = VConst [| 1; 2 |] })))

let test_vsat () =
  let c = ctx () in
  c.Sem.lanes <- 4;
  set_lanes c 1 [| 200; 100; 10; 255 |];
  set_lanes c 2 [| 100; 100; 5; 255 |];
  ignore
    (stepv c
       (Vinsn.Vsat { op = `Add; esize = Esize.Byte; signed = false; dst = v 3; src1 = v 1; src2 = v 2 }));
  Alcotest.(check (array int)) "saturated" [| 255; 200; 15; 255 |]
    (Array.sub c.Sem.vregs.(3) 0 4)

let test_vperm () =
  let c = ctx () in
  c.Sem.lanes <- 8;
  set_lanes c 1 [| 0; 1; 2; 3; 4; 5; 6; 7 |];
  ignore (stepv c (Vinsn.Vperm { pattern = Perm.Halfswap 8; dst = v 2; src = v 1 }));
  Alcotest.(check (array int)) "bfly" [| 4; 5; 6; 7; 0; 1; 2; 3 |]
    (Array.sub c.Sem.vregs.(2) 0 8)

let test_vperm_unsupported () =
  let c = ctx () in
  c.Sem.lanes <- 4;
  Alcotest.(check bool) "sigill" true
    (try
       ignore (stepv c (Vinsn.Vperm { pattern = Perm.Halfswap 8; dst = v 1; src = v 1 }));
       false
     with Sem.Sigill _ -> true)

let test_vred () =
  let c = ctx () in
  c.Sem.lanes <- 4;
  set_lanes c 1 [| 9; -3; 7; 2 |];
  setr c 5 100;
  let eff = stepv c (Vinsn.Vred { op = Opcode.Add; acc = r 5; src = v 1 }) in
  check "sum accumulates" 115 (reg c 5);
  check_bool "value" true (eff.Sem.value = Some 115);
  setr c 6 0;
  ignore (stepv c (Vinsn.Vred { op = Opcode.Smin; acc = r 6; src = v 1 }));
  check "min" (-3) (reg c 6)

let test_vector_width_respected () =
  (* Only the first [lanes] lanes participate. *)
  let c = ctx () in
  c.Sem.lanes <- 2;
  set_lanes c 1 [| 1; 1; 99; 99 |];
  setr c 5 0;
  ignore (stepv c (Vinsn.Vred { op = Opcode.Add; acc = r 5; src = v 1 }));
  check "only two lanes" 2 (reg c 5)

let tests =
  [
    Alcotest.test_case "scalar: mov imm" `Quick test_mov_imm;
    Alcotest.test_case "scalar: predicated mov" `Quick test_mov_predicated;
    Alcotest.test_case "scalar: dp" `Quick test_dp;
    Alcotest.test_case "scalar: ld/st scaled" `Quick test_ld_st_scaled;
    Alcotest.test_case "scalar: load sign modes" `Quick test_ld_sign_modes;
    Alcotest.test_case "scalar: store truncates" `Quick test_st_truncates;
    Alcotest.test_case "scalar: branches" `Quick test_branches;
    Alcotest.test_case "scalar: call/ret" `Quick test_call_ret;
    Alcotest.test_case "scalar: cmp/halt" `Quick test_cmp_halt;
    Alcotest.test_case "vector: vld/vst" `Quick test_vld_vst;
    Alcotest.test_case "vector: sub-word load" `Quick test_vld_subword;
    Alcotest.test_case "vector: vdp variants" `Quick test_vdp_variants;
    Alcotest.test_case "vector: in-place vdp" `Quick test_vdp_in_place;
    Alcotest.test_case "vector: vconst width mismatch" `Quick test_vconst_width_mismatch;
    Alcotest.test_case "vector: saturation" `Quick test_vsat;
    Alcotest.test_case "vector: permutation" `Quick test_vperm;
    Alcotest.test_case "vector: unsupported permutation" `Quick test_vperm_unsupported;
    Alcotest.test_case "vector: reduction" `Quick test_vred;
    Alcotest.test_case "vector: width respected" `Quick test_vector_width_respected;
  ]

let test_register_based_addressing () =
  (* Breg bases exist for completeness of the ISA (the generated code
     always uses symbols). *)
  let c = ctx () in
  Memory.write c.Sem.mem ~addr:0x900 ~bytes:4 55;
  setr c 8 0x900;
  ignore
    (step c (Insn.Ld { esize = Esize.Word; signed = true; dst = r 1; base = Breg (r 8); index = Imm 0; shift = 0 }));
  check "loaded via register base" 55 (reg c 1);
  c.Sem.lanes <- 2;
  setr c 0 0;
  ignore
    (stepv c (Vinsn.Vld { esize = Esize.Word; signed = true; dst = v 1; base = Insn.Breg (r 8); index = r 0 }));
  check "vector register base" 55 (lane c 1 0)

let test_negative_index_addressing () =
  let c = ctx () in
  Memory.write c.Sem.mem ~addr:(0x1000 - 4) ~bytes:4 77;
  setr c 2 (-1);
  ignore
    (step c (Insn.Ld { esize = Esize.Word; signed = true; dst = r 1; base = Sym 0x1000; index = Reg (r 2); shift = 2 }));
  check "negative scaled index" 77 (reg c 1)

let tests =
  tests
  @ [
      Alcotest.test_case "register-based addressing" `Quick
        test_register_based_addressing;
      Alcotest.test_case "negative index" `Quick test_negative_index_addressing;
    ]
