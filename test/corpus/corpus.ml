(* Pinned regression corpus: one hand-distilled Vloop program per bug
   the differential fuzzing campaign has surfaced. Each entry is the
   minimal shape that diverged before its fix; the fuzz suite replays
   all of them through the full differential matrix and requires a
   clean outcome, so a regression in any of these translator/semantics
   areas fails immediately with a named case. *)

open Liquid_isa
open Liquid_scalarize
open Build

(* Two region calls: the frame loop re-enters every vector loop once
   more, which is what exposes stale cached microcode. *)
let framed ?(frames = 1) ~name ~data sections =
  let pre = Vloop.Code [ mov (r 15) 0; label "frame_top" ] in
  let post =
    Vloop.Code
      [
        addi (r 15) (r 15) 1; cmp (r 15) (i frames); b ~cond:Cond.Lt "frame_top";
      ]
  in
  let p = { Vloop.name; sections = (pre :: sections) @ [ post ]; data } in
  (match Vloop.validate_program p with
  | Ok () -> ()
  | Error m -> invalid_arg (Printf.sprintf "Corpus.%s: invalid: %s" name m));
  (name, p)

let words name values = Liquid_prog.Data.make ~name ~esize:Esize.Word values

(* Word.sat_add/sat_sub clamped the mathematically exact sum instead of
   the 32-bit wrapped one. The scalar idiom computes a wrapping add/sub
   and then clamps, so an operand pair whose exact result overflows
   32 bits must saturate toward the *wrapped* sign: 0x7FFFFFFF - (-3)
   wraps negative and clamps to the byte minimum, while the unwrapped
   value would have clamped to the maximum. *)
let sat_signed_wrap =
  framed ~name:"sat-signed-wrap"
    ~data:
      [
        words "a0" (Array.make 16 0x7FFFFFFF);
        words "a1" (Array.make 16 (-3));
        words "a2" (Array.make 16 0);
      ]
    [
      Vloop.Loop
        {
          Vloop.name = "l0";
          count = 16;
          body =
            [
              vld (v 1) "a0";
              vld (v 2) "a1";
              vqsub ~esize:Esize.Byte ~signed:true (v 3) (v 1) (v 2);
              vst (v 3) "a2";
            ];
          reductions = [];
        };
    ]

(* The unsigned saturating idiom is one-sided: add clamps only against
   the type maximum, sub only at zero. Word.sat_* clamped both sides,
   so a wrapped-negative addend (kept negative by the scalar form) was
   forced to 0, and an overshooting difference (400 - 100 = 300, kept
   by the scalar form) was forced to 255. *)
let sat_unsigned_one_sided =
  framed ~name:"sat-unsigned-one-sided"
    ~data:
      [
        words "a0" (Array.make 16 (-10));
        words "a1" (Array.make 16 5);
        words "a2" (Array.make 16 400);
        words "a3" (Array.make 16 100);
        words "a4" (Array.make 16 0);
        words "a5" (Array.make 16 0);
      ]
    [
      Vloop.Loop
        {
          Vloop.name = "l0";
          count = 16;
          body =
            [
              vld (v 1) "a0";
              vld (v 2) "a1";
              vqadd ~esize:Esize.Byte ~signed:false (v 3) (v 1) (v 2);
              vst (v 3) "a4";
              vld (v 4) "a2";
              vld (v 5) "a3";
              vqsub ~esize:Esize.Byte ~signed:false (v 6) (v 4) (v 5);
              vst (v 6) "a5";
            ];
          reductions = [];
        };
    ]

(* Rule-7 constant folding baked the loaded operand stream of an
   in-place update (load and store on the same array) into a vector
   constant: the second frame then reran microcode computed from the
   first frame's values. Loop-invariance of the source array is a
   precondition for the fold. *)
let const_fold_in_place =
  framed ~frames:2 ~name:"const-fold-in-place"
    ~data:[ words "a0" [| -58; 43; 8; -56; -49; 17; -93; -67 |] ]
    [
      Vloop.Loop
        {
          Vloop.name = "l0";
          count = 8;
          body = [ vld (v 1) "a0"; vadd (v 5) (v 1) (vr (v 1)); vst (v 5) "a0" ];
          reductions = [];
        };
    ]

(* The cross-region variant: a mid-loop butterfly fissions the loop
   into two regions that communicate through a scratch array. The
   second region's fold of the scratch values passes any in-region
   invariance check (region 1 never stores to the scratch), yet the
   first region rewrites the scratch every frame — only a per-call
   live-invariance guard over the folded elements catches it. *)
let const_fold_fission_scratch =
  framed ~frames:2 ~name:"const-fold-fission-scratch"
    ~data:[ words "a0" [| -58; 43; 8; -56; -49; 17; -93; -67 |] ]
    [
      Vloop.Loop
        {
          Vloop.name = "l0";
          count = 8;
          body =
            [
              vld (v 1) "a0";
              vbfly 8 (v 1) (v 1);
              vadd (v 5) (v 1) (vr (v 1));
              vst (v 5) "a0";
            ];
          reductions = [];
        };
    ]

let cases =
  [
    sat_signed_wrap;
    sat_unsigned_one_sided;
    const_fold_in_place;
    const_fold_fission_scratch;
  ]
