(** Pinned regression corpus of the differential fuzzing campaign.

    One hand-distilled {!Liquid_scalarize.Vloop} program per bug the
    campaign has surfaced, named after the defect it reproduces. The
    fuzz suite replays every entry through the full differential matrix
    and requires a clean outcome. *)

val cases : (string * Liquid_scalarize.Vloop.program) list
(** [(name, program)] pairs; every program passes
    {!Liquid_scalarize.Vloop.validate_program}. *)
