let () =
  Alcotest.run "liquid_simd"
    [
      ("machine", Suite_machine.tests);
      ("isa", Suite_isa.tests);
      ("visa", Suite_visa.tests);
      ("prog", Suite_prog.tests);
      ("parse", Suite_parse.tests);
      ("sem", Suite_sem.tests);
      ("scalarize", Suite_scalarize.tests);
      ("cpu", Suite_cpu.tests);
      ("pipeline-units", Suite_pipeline_units.tests);
      ("interleave", Suite_interleave.tests);
      ("microcode", Suite_microcode.tests);
      ("kernels", Suite_kernels.tests);
      ("workloads", Suite_workloads.tests);
      ("props", Suite_props.tests);
      ("harness", Suite_harness.tests);
      ("translator", Suite_translator.tests);
      ("fidelity", Suite_fidelity.tests);
      ("golden", Suite_golden.tests);
      ("vla", Suite_vla.tests);
      ("rvv", Suite_rvv.tests);
      ("blocks", Suite_blocks.tests);
      ("superblocks", Suite_superblocks.tests);
      ("obs", Suite_obs.tests);
      ("faults", Suite_faults.tests);
      ("fuzz", Suite_fuzz.tests);
      ("service", Suite_service.tests);
      ("smoke", Suite_smoke.tests);
    ]
