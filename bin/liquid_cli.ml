(* Command-line driver: list workloads, disassemble binaries, run a
   benchmark under a chosen machine, inspect translated microcode, and
   regenerate the paper's tables and figures. *)

open Cmdliner
open Liquid_prog
open Liquid_pipeline
open Liquid_harness
open Liquid_workloads

let workload_conv =
  let parse s =
    match Workload.find s with
    | Some w -> Ok w
    | None ->
        Error
          (`Msg
             (Printf.sprintf "unknown workload %S; try one of: %s" s
                (String.concat ", " (Workload.names ()))))
  in
  Arg.conv (parse, fun ppf (w : Workload.t) -> Format.pp_print_string ppf w.name)

(* The one shared parser (Runner.variant_of_string) — the CLI and the
   sweep-service protocol accept identical spellings by construction. *)
let variant_conv =
  let parse s =
    match Runner.variant_of_string s with
    | Ok v -> Ok v
    | Error m -> Error (`Msg m)
  in
  Arg.conv
    (parse, fun ppf v -> Format.pp_print_string ppf (Runner.variant_to_string v))

let workload_arg =
  Arg.(
    required
    & pos 0 (some workload_conv) None
    & info [] ~docv:"WORKLOAD" ~doc:"Benchmark name (see $(b,list)).")

let variant_arg =
  Arg.(
    value
    & opt variant_conv (Runner.Liquid 8)
    & info [ "m"; "machine" ] ~docv:"VARIANT"
        ~doc:
          "Machine/binary flavour: $(b,baseline), $(b,liquid:scalar), \
           $(b,liquid:WIDTH), $(b,vla:WIDTH), $(b,rvv:WIDTH), \
           $(b,oracle:WIDTH), $(b,vla-oracle:WIDTH), $(b,rvv-oracle:WIDTH) \
           or $(b,native:WIDTH).")

let no_blocks_arg =
  Arg.(
    value & flag
    & info [ "no-blocks" ]
        ~doc:
          "Disable the pre-decoded translation-block engine and simulate \
           instruction by instruction. Counters are bit-identical either \
           way; this is an escape hatch for debugging the engine and for \
           measuring its speedup.")

let no_superblocks_arg =
  Arg.(
    value & flag
    & info [ "no-superblocks" ]
        ~doc:
          "Disable the block engine's trace-superblock tier (keep plain \
           translation blocks). No effect together with $(b,--no-blocks). \
           Counters are bit-identical either way; this is an escape hatch \
           for debugging the trace tier and for measuring its speedup.")

(* --- list --- *)

let list_cmd =
  let doc = "List the available benchmarks" in
  let run () =
    List.iter
      (fun (w : Workload.t) ->
        Format.printf "%-12s  %-10s  %s@." w.name
          (Workload.suite_name w.suite)
          w.description)
      (Workload.all ())
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

(* --- disasm --- *)

let disasm_cmd =
  let doc = "Print a benchmark's program listing for a binary flavour" in
  let binary_arg =
    Arg.(
      value & flag
      & info [ "binary" ]
          ~doc:
            "Encode to the 32-bit binary format and disassemble it back              (annotated with recovered labels and symbols).")
  in
  let run w variant binary =
    match Runner.program_of w variant with
    | program ->
        if binary then print_string (Disasm.of_image (Image.of_program program))
        else print_string (Parse.emit program)
    | exception Liquid_scalarize.Codegen.Unsupported_width m ->
        Format.printf "cannot generate this binary: %s@." m;
        exit 1
  in
  Cmd.v (Cmd.info "disasm" ~doc)
    Term.(const run $ workload_arg $ variant_arg $ binary_arg)

(* --- exec: assemble a source file and run it --- *)

let machine_config variant = Runner.config_of variant

let pp_trace_event ppf = function
  | Cpu.T_insn { pc; insn } ->
      Format.fprintf ppf "@%-5d %a" pc Liquid_visa.Minsn.pp_exec insn
  | Cpu.T_uop { entry; index; uop } ->
      Format.fprintf ppf "u%d/%-4d %a" entry index Liquid_translate.Ucode.pp_uop
        uop
  | Cpu.T_region { label; event } ->
      Format.fprintf ppf ">> %s: %s" label
        (match event with
        | `Scalar_call -> "called (scalar)"
        | `Ucode_call -> "called (microcode)"
        | `Translated w -> Printf.sprintf "translated at %d lanes" w
        | `Aborted a -> "aborted: " ^ Liquid_translate.Abort.to_string a)
  | Cpu.T_translation { label; width; uops; latency; _ } ->
      Format.fprintf ppf ">> %s: microcode ready (%d-wide, %d uops, %d cycles)"
        label width uops latency

let exec_cmd =
  let doc = "Assemble a .s source file and simulate it" in
  let file_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Assembly source file.")
  in
  let trace_arg =
    Arg.(
      value & opt int 0
      & info [ "trace" ] ~docv:"N"
          ~doc:"Print the first $(docv) execution/region trace events.")
  in
  let run file variant trace_n no_blocks no_superblocks =
    let source = In_channel.with_open_text file In_channel.input_all in
    match Parse.program ~name:(Filename.basename file) source with
    | exception Parse.Parse_error { line; message } ->
        Format.printf "%s:%d: %s@." file line message;
        exit 1
    | program -> (
        match Program.validate program with
        | Error m ->
            Format.printf "%s: %s@." file m;
            exit 1
        | Ok () ->
            let remaining = ref trace_n in
            let on_trace =
              if trace_n = 0 then None
              else
                Some
                  (fun ev ->
                    if !remaining > 0 then begin
                      decr remaining;
                      Format.printf "%a@." pp_trace_event ev
                    end)
            in
            let config =
              {
                (machine_config variant) with
                Cpu.on_trace;
                Cpu.blocks = not no_blocks;
                Cpu.superblocks = not no_superblocks;
              }
            in
            let run = Cpu.run ~config (Image.of_program program) in
            Format.printf "%a@." Liquid_machine.Stats.pp run.Cpu.stats;
            List.iter
              (fun (r : Cpu.region_report) ->
                Format.printf "  region %-20s calls=%-3d ucode=%d@." r.Cpu.label
                  (List.length r.Cpu.calls) r.Cpu.ucode_served)
              run.Cpu.regions)
  in
  Cmd.v (Cmd.info "exec" ~doc)
    Term.(
      const run $ file_arg $ variant_arg $ trace_arg $ no_blocks_arg
      $ no_superblocks_arg)

(* --- run --- *)

let run_cmd =
  let doc = "Simulate a benchmark and print statistics" in
  let run w variant no_blocks no_superblocks =
    match
      Runner.run ~blocks:(not no_blocks) ~superblocks:(not no_superblocks) w
        variant
    with
    | { Runner.run; _ } ->
        Format.printf "%s on %s:@.%a@." w.Workload.name
          (Runner.variant_name variant)
          Liquid_machine.Stats.pp run.Cpu.stats;
        List.iter
          (fun (r : Cpu.region_report) ->
            Format.printf "  region %-20s calls=%-3d ucode=%-3d %s@."
              r.Cpu.label (List.length r.Cpu.calls) r.Cpu.ucode_served
              (match r.Cpu.outcome with
              | Cpu.R_untried -> "never translated"
              | Cpu.R_installed { width; uops } ->
                  Printf.sprintf "translated (%d-wide, %d uops)" width uops
              | Cpu.R_failed a ->
                  "aborted: " ^ Liquid_translate.Abort.to_string a))
          run.Cpu.regions
    | exception Liquid_scalarize.Codegen.Unsupported_width m ->
        Format.printf "cannot generate this binary: %s@." m;
        exit 1
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const run $ workload_arg $ variant_arg $ no_blocks_arg
      $ no_superblocks_arg)

(* --- translate: show the microcode produced for each region --- *)

let translate_cmd =
  let doc = "Show the SIMD microcode the translator produces for a benchmark" in
  let width_arg =
    Arg.(
      value & opt int 8
      & info [ "w"; "width" ] ~docv:"LANES" ~doc:"Accelerator lane count.")
  in
  let backend_arg =
    let backend_conv =
      Arg.conv
        ( (fun s ->
            match Liquid_translate.Backend.of_string s with
            | Some b -> Ok b
            | None -> Error (`Msg "expected fixed, vla or rvv")),
          fun ppf b ->
            Format.pp_print_string ppf (Liquid_translate.Backend.name_of b) )
    in
    Arg.(
      value
      & opt backend_conv Liquid_translate.Backend.fixed
      & info [ "backend" ] ~docv:"BACKEND"
          ~doc:
            "Translation target: $(b,fixed) (Neon-like, width must divide \
             the trip count), $(b,vla) (length-agnostic with predicated \
             final iteration) or $(b,rvv) (vsetvl-stripmined with LMUL \
             register grouping).")
  in
  let run (w : Workload.t) lanes backend =
    let program = Liquid_scalarize.Codegen.liquid w.Workload.program in
    let image = Image.of_program program in
    let mem = Liquid_machine.Memory.create () in
    Image.load_memory image mem;
    (* Drive each region once through the architectural interpreter and
       feed the retirement stream to a fresh translator session. *)
    List.iter
      (fun (entry, label) ->
        let ctx = Sem.create_ctx mem in
        let tr =
          Liquid_translate.Translator.create
            (Liquid_translate.Translator.default_config ~backend ~lanes ())
        in
        let pc = ref entry in
        let running = ref true in
        let steps = ref 0 in
        while !running && !steps < 2_000_000 do
          incr steps;
          let insn =
            match image.Image.code.(!pc) with
            | Liquid_visa.Minsn.S i -> i
            | Liquid_visa.Minsn.V _ -> failwith "vector insn in liquid binary"
          in
          let outcome, eff = Sem.step_scalar ctx ~pc:!pc insn in
          Liquid_translate.Translator.feed tr
            (Liquid_translate.Event.make ~pc:!pc ?value:eff.Sem.value insn);
          match outcome with
          | Sem.Next -> incr pc
          | Sem.Jump t -> pc := t
          | Sem.Return | Sem.Stop -> running := false
          | Sem.Call _ -> failwith "call inside region"
        done;
        Format.printf "=== %s ===@." label;
        match Liquid_translate.Translator.finish tr with
        | Liquid_translate.Translator.Translated u ->
            Format.printf "%a@." Liquid_translate.Ucode.pp u
        | Liquid_translate.Translator.Aborted reason ->
            Format.printf "aborted: %a@." Liquid_translate.Abort.pp reason)
      image.Image.region_entries
  in
  Cmd.v (Cmd.info "translate" ~doc)
    Term.(const run $ workload_arg $ width_arg $ backend_arg)

(* --- report: the paper's tables/figures, or one workload's snapshot --- *)

(* [report <workload>] runs the workload once with a Liquid_obs collector
   attached and prints the full observability snapshot as schema-valid
   JSON (stats, unit counters, per-region timelines, translation-latency
   and inter-call-gap histograms, invariant verdict). Any conservation
   violation is printed to stderr and exits non-zero — the same checks
   the test suite runs, available against a live machine. *)
let report_snapshot (w : Workload.t) variant jsonl_path csv_dir =
  match Runner.program_of w variant with
  | exception Liquid_scalarize.Codegen.Unsupported_width m ->
      Format.printf "cannot generate this binary: %s@." m;
      exit 1
  | program ->
      let jsonl_oc = Option.map open_out jsonl_path in
      let collector = Liquid_obs.Collector.create ?jsonl:jsonl_oc () in
      let config =
        Liquid_obs.Collector.wrap collector (machine_config variant)
      in
      let run = Cpu.run ~config (Image.of_program program) in
      Option.iter close_out jsonl_oc;
      let snap =
        Liquid_obs.Snapshot.of_run ~label:w.name
          ~variant:(Runner.variant_name variant) ~collector run
      in
      let json = Liquid_obs.Snapshot.to_json snap in
      (match Liquid_obs.Schema.snapshot json with
      | [] -> ()
      | errs ->
          List.iter (Format.eprintf "schema: %s@.") errs;
          exit 1);
      (* stdout carries the JSON document and nothing else (pipeable);
         the CSV notice goes to stderr. *)
      print_endline (Liquid_obs.Json.to_string ~pretty:true json);
      (match csv_dir with
      | None -> ()
      | Some dir ->
          let sanitized =
            String.map
              (fun c ->
                match c with
                | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> c
                | _ -> '_')
              w.name
          in
          let path = Filename.concat dir (sanitized ^ ".csv") in
          Out_channel.with_open_text path (fun oc ->
              Out_channel.output_string oc (Liquid_obs.Snapshot.to_csv snap));
          Format.eprintf "wrote %s@." path);
      (match Liquid_obs.Snapshot.violations snap with
      | [] -> ()
      | viols ->
          List.iter (Format.eprintf "invariant violated: %s@.") viols;
          exit 1)

let report_cmd =
  let doc =
    "Regenerate the paper's tables and figures, or emit one workload's \
     observability snapshot as JSON"
  in
  let which_arg =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"WHICH"
          ~doc:
            "One of table2, table5, table6, figure6, codesize, ucode, \
             latency, overhead, translator, ablations (omit for all) — or a \
             workload name (see $(b,list)) to emit that run's observability \
             snapshot as JSON.")
  in
  let csv_arg =
    Arg.(
      value
      & opt (some dir) None
      & info [ "csv" ] ~docv:"DIR"
          ~doc:
            "Also write machine-readable CSVs (table5/table6/figure6, or the              workload snapshot) into $(docv).")
  in
  let jsonl_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "jsonl" ] ~docv:"FILE"
          ~doc:
            "Workload-snapshot mode: stream region-level trace events \
             (calls, translations, aborts) to $(docv), one JSON object per \
             line.")
  in
  let run which csv_dir variant jsonl_path =
    let all = which = None in
    let want w = all || which = Some w in
    let write_csv name contents =
      match csv_dir with
      | None -> ()
      | Some dir ->
          let path = Filename.concat dir name in
          Out_channel.with_open_text path (fun oc ->
              Out_channel.output_string oc contents);
          Format.printf "wrote %s@." path
    in
    match Option.bind which Workload.find with
    | Some w -> report_snapshot w variant jsonl_path csv_dir
    | None ->
    if want "table2" then
      Format.printf "%a@.@." Experiments.pp_table2 (Experiments.table2 ());
    if want "table5" then begin
      let rows = Experiments.table5 () in
      Format.printf "%a@.@." Experiments.pp_table5 rows;
      write_csv "table5.csv" (Experiments.csv_table5 rows)
    end;
    if want "table6" then begin
      let rows = Experiments.table6 () in
      Format.printf "%a@.@." Experiments.pp_table6 rows;
      write_csv "table6.csv" (Experiments.csv_table6 rows)
    end;
    if want "figure6" then begin
      let rows = Experiments.figure6 () in
      Format.printf "%a@.@." Experiments.pp_figure6 rows;
      write_csv "figure6.csv" (Experiments.csv_figure6 rows)
    end;
    if want "codesize" then
      Format.printf "%a@.@." Experiments.pp_code_size (Experiments.code_size ());
    if want "ucode" then
      Format.printf "%a@.@." Experiments.pp_ucode_cache
        (Experiments.ucode_cache ());
    if want "latency" then
      Format.printf "%a@.@." Experiments.pp_latency
        (Experiments.latency_ablation ());
    if want "overhead" then
      Format.printf "%a@.@." Experiments.pp_overhead
        (Experiments.overhead_convergence ());
    if want "translator" then
      Format.printf "%a@.@." Experiments.pp_kind
        (Experiments.translator_kind_ablation ());
    if want "ablations" then begin
      Format.printf "%a@.@."
        (Experiments.pp_sweep
           ~title:
             "Microcode cache capacity (8 hot loops round-robin, 8 lanes)"
           ~value_label:"Entries")
        (Experiments.ucode_entries_ablation ());
      Format.printf "%a@.@."
        (Experiments.pp_sweep
           ~title:
             "Microcode buffer capacity (101.tomcatv, largest loop 63 uops)"
           ~value_label:"Capacity")
        (Experiments.buffer_ablation ());
      Format.printf "%a@.@."
        (Experiments.pp_sweep
           ~title:"Vector memory bus width (FIR, 16 lanes)"
           ~value_label:"Bus bytes")
        (Experiments.bus_ablation ());
      Format.printf "%a@.@."
        (Experiments.pp_sweep
           ~title:
             "Context-switch interval in cycles (FFT, 8 lanes; 0 = never)"
           ~value_label:"Interval")
        (Experiments.interrupt_ablation ())
    end
  in
  Cmd.v (Cmd.info "report" ~doc)
    Term.(const run $ which_arg $ csv_arg $ variant_arg $ jsonl_arg)

(* --- encode: binary footprint breakdown --- *)

let encode_cmd =
  let doc = "Show the encoded binary footprint of a benchmark" in
  let run (w : Workload.t) variant =
    match Runner.program_of w variant with
    | exception Liquid_scalarize.Codegen.Unsupported_width m ->
        Format.printf "cannot generate this binary: %s@." m;
        exit 1
    | program ->
        let image = Image.of_program program in
        let enc = Encode.encode image.Image.code in
        let words = 4 * Array.length enc.Encode.words in
        let pool = 4 * Array.length enc.Encode.pool in
        Format.printf
          "%s (%s)@.  instructions: %6d (%d bytes)@.  literal pool: %6d            entries (%d bytes)@.  data segment: %6d bytes@.  total:                   %6d bytes@."
          w.Workload.name
          (Runner.variant_name variant)
          (Array.length enc.Encode.words)
          words
          (Array.length enc.Encode.pool)
          pool image.Image.data_bytes
          (words + pool + image.Image.data_bytes)
  in
  Cmd.v (Cmd.info "encode" ~doc) Term.(const run $ workload_arg $ variant_arg)

(* --- summary: one-line dashboard per benchmark --- *)

let summary_cmd =
  let doc = "Run every benchmark at one width and summarize" in
  let width_arg =
    Arg.(value & opt int 8 & info [ "w"; "width" ] ~docv:"LANES" ~doc:"Lane count.")
  in
  let run lanes =
    Format.printf "%-12s %9s %9s %8s %6s %7s@." "benchmark" "baseline"
      "liquid" "speedup" "ucode%" "aborts";
    List.iter
      (fun (w : Workload.t) ->
        let base = (Runner.run w Runner.Baseline).Runner.run in
        let { Runner.run = lrun; _ } = Runner.run w (Runner.Liquid lanes) in
        let stats = lrun.Cpu.stats in
        Format.printf "%-12s %9d %9d %7.2fx %5.0f%% %7d@." w.Workload.name
          base.Cpu.stats.Liquid_machine.Stats.cycles
          stats.Liquid_machine.Stats.cycles
          (Runner.speedup ~baseline:base lrun)
          (100.0
          *. float_of_int stats.Liquid_machine.Stats.ucode_hits
          /. float_of_int (max 1 stats.Liquid_machine.Stats.region_calls))
          stats.Liquid_machine.Stats.translations_aborted)
      (Workload.all ())
  in
  Cmd.v (Cmd.info "summary" ~doc) Term.(const run $ width_arg)

(* --- hwmodel --- *)

let hwmodel_cmd =
  let doc = "Estimate translator area/delay for a configuration" in
  let lanes_arg =
    Arg.(value & opt int 8 & info [ "w"; "width" ] ~docv:"LANES" ~doc:"Lane count.")
  in
  let regs_arg =
    Arg.(
      value & opt int 16
      & info [ "r"; "registers" ] ~docv:"N" ~doc:"Architectural registers.")
  in
  let buffer_arg =
    Arg.(
      value & opt int 64
      & info [ "b"; "buffer" ] ~docv:"N" ~doc:"Microcode buffer entries.")
  in
  let target_arg =
    let module H = Liquid_hwmodel.Hwmodel in
    let target_conv =
      Arg.conv
        ( (function
            | "fixed" -> Ok H.Fixed_width
            | "vla" -> Ok H.Vla
            | "rvv" -> Ok H.Rvv
            | _ -> Error (`Msg "expected fixed, vla or rvv")),
          fun ppf t -> Format.pp_print_string ppf (H.target_name t) )
    in
    Arg.(
      value
      & opt target_conv H.Fixed_width
      & info [ "target" ] ~docv:"TARGET"
          ~doc:
            "Translation target the hardware emits for: $(b,fixed), \
             $(b,vla) (adds the whilelt comparator and predicate file) or \
             $(b,rvv) (adds the vsetvl grant unit and LMUL regroup muxes).")
  in
  let lmul_arg =
    Arg.(
      value & opt int 1
      & info [ "lmul" ] ~docv:"M"
          ~doc:
            "Register-group factor provisioned for the $(b,rvv) target \
             (sizes the previous-value state and regroup muxes); ignored \
             for the other targets.")
  in
  let run lanes registers buffer_entries target lmul =
    let module H = Liquid_hwmodel.Hwmodel in
    let rep = H.estimate { H.lanes; registers; buffer_entries; target; lmul } in
    Format.printf "%a@." H.pp_report rep;
    Format.printf
      "  decoder %d | legality %d | register state %d (%.0f%%) | opcode gen        %d | buffer %d cells@."
      rep.H.decoder_cells rep.H.legality_cells rep.H.regstate_cells
      (100.0 *. float_of_int rep.H.regstate_cells /. float_of_int rep.H.total_cells)
      rep.H.opgen_cells rep.H.buffer_cells;
    if rep.H.pred_cells > 0 then
      Format.printf "  predication (whilelt + predicate file) %d cells@."
        rep.H.pred_cells;
    if rep.H.tbl_cells > 0 then
      Format.printf
        "  table-lookup unit (pattern store + index adders) %d cells@."
        rep.H.tbl_cells
  in
  Cmd.v (Cmd.info "hwmodel" ~doc)
    Term.(const run $ lanes_arg $ regs_arg $ buffer_arg $ target_arg $ lmul_arg)

(* --- faults: seeded injection campaign with survival report --- *)

let faults_cmd =
  let doc = "Run a seeded fault-injection campaign and print a survival report" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Attacks the translation path of every selected workload: forced \
         translation aborts of every class at seeded sites, corrupted \
         instruction feeds, mid-run microcode-cache evictions, and \
         watchdog exhaustion. After each fault the final register and \
         memory state is compared (FNV fingerprints) against the pure \
         scalar execution of the same binary — the paper's abort-safety \
         claim, checked mechanically. Exits non-zero if any case \
         diverges or crashes.";
    ]
  in
  let seed_arg =
    Arg.(
      value & opt int 2007
      & info [ "s"; "seed" ] ~docv:"SEED"
          ~doc:"Campaign seed; the same seed replays the same plan.")
  in
  let widths_arg =
    Arg.(
      value & opt_all int []
      & info [ "w"; "width" ] ~docv:"LANES"
          ~doc:"Accelerator width to attack (repeatable; default 2 4 8 16).")
  in
  let workloads_arg =
    Arg.(
      value & opt_all workload_conv []
      & info [ "b"; "benchmark" ] ~docv:"WORKLOAD"
          ~doc:"Benchmark to attack (repeatable; default: all fifteen).")
  in
  let verbose_arg =
    Arg.(
      value & flag
      & info [ "v"; "verbose" ] ~doc:"Print every case, not just failures.")
  in
  let backend_arg =
    let backend_conv =
      Arg.conv
        ( (fun s ->
            match Liquid_translate.Backend.of_string s with
            | Some b -> Ok b
            | None -> Error (`Msg "expected fixed, vla or rvv")),
          fun ppf b ->
            Format.pp_print_string ppf (Liquid_translate.Backend.name_of b) )
    in
    Arg.(
      value
      & opt backend_conv Liquid_translate.Backend.fixed
      & info [ "backend" ] ~docv:"BACKEND"
          ~doc:
            "Translation target under attack: $(b,fixed), $(b,vla) or \
             $(b,rvv).")
  in
  let run seed widths workloads verbose backend =
    let module C = Liquid_faults.Campaign in
    let widths = if widths = [] then None else Some widths in
    let workloads = if workloads = [] then None else Some workloads in
    let report = C.run ~backend ?workloads ?widths ~seed () in
    List.iter
      (fun (c : C.case) ->
        match c.C.c_verdict with
        | C.Safe | C.Not_triggered ->
            if verbose then Format.printf "%a@." C.pp_case c
        | _ -> Format.printf "%a@." C.pp_case c)
      report.C.r_cases;
    Format.printf "%a@." C.pp_report report;
    if not (C.survived report) then exit 1
  in
  Cmd.v (Cmd.info "faults" ~doc ~man)
    Term.(
      const run $ seed_arg $ widths_arg $ workloads_arg $ verbose_arg
      $ backend_arg)

(* --- fuzz: the generative differential campaign over the Vloop IR --- *)

let fuzz_cmd =
  let doc = "Run a seeded differential fuzzing campaign over generated programs" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Generates random Vloop IR programs (arbitrary op mixes, \
         reductions, saturating idioms, permutations — including \
         fission-inducing mid-loop ones — strided and gathered memory, \
         adversarial trip counts) and runs every case through the full \
         differential matrix: pure-scalar reference vs the inline-loop \
         baseline binary, fixed-width, VLA and RVV translation at widths \
         2, 4, 8 and 16 with the block engine and trace-superblock tier \
         on and off, oracle translation, and seeded translation-path \
         faults. Prints the campaign report (abort-class and divergence \
         histograms); for each failing case, re-derives and prints a \
         shrunk minimal repro. Exits non-zero on any divergence.";
    ]
  in
  let seed_arg =
    Arg.(
      value & opt int 2026
      & info [ "s"; "seed" ] ~docv:"SEED"
          ~doc:"Campaign seed; the same seed replays the same cases.")
  in
  let cases_arg =
    Arg.(
      value & opt int 500
      & info [ "n"; "cases" ] ~docv:"N" ~doc:"Number of generated cases.")
  in
  let smoke_arg =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:"Quick mode for CI: 40 cases regardless of $(b,--cases).")
  in
  let domains_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ] ~docv:"N"
          ~doc:"Worker domains (default: the runtime's recommendation).")
  in
  let no_faults_arg =
    Arg.(
      value & flag
      & info [ "no-faults" ]
          ~doc:"Skip the seeded translation-path fault runs in each matrix.")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Print the schema-validated JSON report instead.")
  in
  let run seed cases smoke domains no_faults json =
    let module Campaign = Liquid_fuzz.Campaign in
    let cases = if smoke then 40 else cases in
    let faults = not no_faults in
    let report = Campaign.run ?domains ~faults ~seed ~cases () in
    if json then
      print_endline
        (Liquid_obs.Json.to_string ~pretty:true (Campaign.to_json report))
    else Format.printf "%a@." Campaign.pp report;
    if report.Campaign.r_divergent <> [] then begin
      List.iter
        (fun (index, _) ->
          match Campaign.shrunk_repro ~faults ~seed ~index () with
          | None ->
              Format.eprintf "case %d: divergence did not reproduce in-process@."
                index
          | Some repro ->
              Format.eprintf "@[<v>shrunk repro of case %d (fault seed %d):@ %a@]@."
                index
                (Campaign.fault_seed_of ~seed ~index)
                Liquid_fuzz.Gen.pp_program repro)
        report.Campaign.r_divergent;
      exit 1
    end
  in
  Cmd.v (Cmd.info "fuzz" ~doc ~man)
    Term.(
      const run $ seed_arg $ cases_arg $ smoke_arg $ domains_arg $ no_faults_arg
      $ json_arg)

(* --- serve: the persistent fault-tolerant sweep server --- *)

let serve_cmd =
  let doc = "Serve simulation jobs over a JSONL request/reply protocol" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Reads one JSON object per line from standard input and answers \
         on standard output. A job line names a workload and a variant \
         (plus optional supervision knobs: priority, fuel, deadline_ms, \
         retries, blocks, superblocks, fault_seed, transient_attempts); \
         control lines are {\"op\": \"sync\"} to drain the queue, \
         {\"op\": \"metrics\"} for the counters document and {\"op\": \
         \"quit\"} to drain and stop. Every job is supervised: deadlines, \
         bounded retry with exponential backoff on transient failures, a \
         per-(workload, variant) circuit breaker that degrades poisoned \
         combinations to the scalar baseline, load shedding above the \
         high-water mark, and reply deduplication. The protocol reference \
         is in docs/ARCHITECTURE.md.";
    ]
  in
  let script_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "script" ] ~docv:"FILE"
          ~doc:
            "Read the whole request script from $(docv) instead of serving \
             standard input interactively (used by the golden-transcript \
             test).")
  in
  let domains_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "Worker domains for the dispatch pool (default: the runtime's \
             recommendation). Use 1 for a deterministic reply order.")
  in
  let retries_arg =
    Arg.(
      value & opt int Liquid_service.Service.default_config.Liquid_service.Service.retries
      & info [ "retries" ] ~docv:"N"
          ~doc:"Default transient re-attempts per job.")
  in
  let seed_arg =
    Arg.(
      value & opt int Liquid_service.Service.default_config.Liquid_service.Service.seed
      & info [ "seed" ] ~docv:"SEED" ~doc:"Backoff-jitter seed.")
  in
  let high_water_arg =
    Arg.(
      value
      & opt int Liquid_service.Service.default_config.Liquid_service.Service.high_water
      & info [ "high-water" ] ~docv:"N"
          ~doc:"Queue depth above which the lowest-priority job is shed.")
  in
  let threshold_arg =
    Arg.(
      value
      & opt int
          Liquid_service.Service.default_config
            .Liquid_service.Service.breaker_threshold
      & info [ "breaker-threshold" ] ~docv:"K"
          ~doc:
            "Consecutive permanent failures of one (workload, variant) that \
             open its circuit breaker.")
  in
  let deadline_arg =
    Arg.(
      value
      & opt float
          Liquid_service.Service.default_config.Liquid_service.Service.deadline_ms
      & info [ "deadline-ms" ] ~docv:"MS" ~doc:"Default per-job deadline.")
  in
  let run script domains retries seed high_water breaker_threshold deadline_ms =
    let config =
      {
        Liquid_service.Service.default_config with
        Liquid_service.Service.domains;
        retries;
        seed;
        high_water;
        breaker_threshold;
        deadline_ms;
      }
    in
    match script with
    | Some path ->
        let text = In_channel.with_open_text path In_channel.input_all in
        print_string (Liquid_service.Service.run_script ~config text)
    | None -> Liquid_service.Service.serve ~config stdin stdout
  in
  Cmd.v (Cmd.info "serve" ~doc ~man)
    Term.(
      const run $ script_arg $ domains_arg $ retries_arg $ seed_arg
      $ high_water_arg $ threshold_arg $ deadline_arg)

let main =
  let doc = "Liquid SIMD: dynamic mapping of scalarized loops onto SIMD accelerators" in
  Cmd.group (Cmd.info "liquid_cli" ~doc)
    [
      list_cmd;
      disasm_cmd;
      run_cmd;
      exec_cmd;
      translate_cmd;
      report_cmd;
      encode_cmd;
      summary_cmd;
      hwmodel_cmd;
      faults_cmd;
      fuzz_cmd;
      serve_cmd;
    ]

let () = exit (Cmd.eval main)
